package mptcpsim_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageComments gates the documentation pass: every package in the
// module must carry a real package comment ("Package <name> ..." for
// libraries, "Command <name> ..." for binaries), so godoc renders a
// description for each and a new package cannot land undocumented.
func TestPackageComments(t *testing.T) {
	var dirs []string
	for _, root := range []string{".", "internal", "cmd", "examples"} {
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatalf("reading %s: %v", root, err)
		}
		if root == "." {
			dirs = append(dirs, ".")
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, filepath.Join(root, e.Name()))
			}
		}
	}

	fset := token.NewFileSet()
	for _, dir := range dirs {
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		var sources []string
		for _, m := range matches {
			if !strings.HasSuffix(m, "_test.go") {
				sources = append(sources, m)
			}
		}
		if len(sources) == 0 {
			continue // no buildable package here (e.g. testdata-only dir)
		}
		var doc, pkgName string
		for _, src := range sources {
			f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("parsing %s: %v", src, err)
			}
			pkgName = f.Name.Name
			if f.Doc != nil {
				doc = f.Doc.Text()
				break
			}
		}
		if doc == "" {
			t.Errorf("%s: package %s has no package comment on any file", dir, pkgName)
			continue
		}
		want := "Package " + pkgName + " "
		if pkgName == "main" {
			want = "Command "
		}
		if !strings.HasPrefix(doc, want) {
			t.Errorf("%s: package comment starts %q, want %q", dir, firstLine(doc), want)
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
