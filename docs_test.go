package mptcpsim_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestPackageComments gates the documentation pass: every package in the
// module must carry a real package comment ("Package <name> ..." for
// libraries, "Command <name> ..." for binaries), so godoc renders a
// description for each and a new package cannot land undocumented.
func TestPackageComments(t *testing.T) {
	var dirs []string
	for _, root := range []string{".", "internal", "cmd", "examples"} {
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatalf("reading %s: %v", root, err)
		}
		if root == "." {
			dirs = append(dirs, ".")
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, filepath.Join(root, e.Name()))
			}
		}
	}

	fset := token.NewFileSet()
	for _, dir := range dirs {
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		var sources []string
		for _, m := range matches {
			if !strings.HasSuffix(m, "_test.go") {
				sources = append(sources, m)
			}
		}
		if len(sources) == 0 {
			continue // no buildable package here (e.g. testdata-only dir)
		}
		var doc, pkgName string
		for _, src := range sources {
			f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("parsing %s: %v", src, err)
			}
			pkgName = f.Name.Name
			if f.Doc != nil {
				doc = f.Doc.Text()
				break
			}
		}
		if doc == "" {
			t.Errorf("%s: package %s has no package comment on any file", dir, pkgName)
			continue
		}
		want := "Package " + pkgName + " "
		if pkgName == "main" {
			want = "Command "
		}
		if !strings.HasPrefix(doc, want) {
			t.Errorf("%s: package comment starts %q, want %q", dir, firstLine(doc), want)
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// goPackageDirs returns every directory under the roots that holds a
// buildable (non-test) Go file, skipping testdata.
func goPackageDirs(t *testing.T, roots ...string) []string {
	t.Helper()
	var dirs []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
					dirs = append(dirs, filepath.ToSlash(path))
					break
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(dirs)
	return dirs
}

// TestPackageMapCoversEveryPackage pins the README architecture block and
// the ARCHITECTURE.md package map to the package tree: every internal
// package and every command must be listed in both, so a new package
// cannot ship without its one-line role in the prose.
func TestPackageMapCoversEveryPackage(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range goPackageDirs(t, "internal", "cmd") {
		var wantReadme, wantArch string
		if strings.HasPrefix(dir, "cmd/") {
			wantReadme, wantArch = dir, "`"+dir+"`"
		} else {
			name := strings.TrimPrefix(dir, "internal/")
			// README lists bare names at two-space indent in the
			// architecture block; ARCHITECTURE uses the full path in code
			// font.
			wantReadme, wantArch = "\n  "+name+" ", "`internal/"+name+"`"
		}
		if !strings.Contains(string(readme), wantReadme) {
			t.Errorf("README.md architecture block does not list %s (looked for %q)", dir, wantReadme)
		}
		if !strings.Contains(string(arch), wantArch) {
			t.Errorf("ARCHITECTURE.md package map does not list %s (looked for %q)", dir, wantArch)
		}
	}
}

// cliFlags extracts the flag names a command file registers: any call
// shaped like <recv>.String("name", ...) (or Bool / Int / Int64 / Uint64 /
// Float64 / Duration) with a string-literal first argument. Matching on
// the method name alone covers both the flag.FlagSet style (mptcp-bench,
// mptcp-sim) and the package-level flag style (bench-diff).
func cliFlags(t *testing.T, file string) (names []string, doc string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if f.Doc != nil {
		doc = f.Doc.Text()
	}
	kinds := map[string]bool{
		"String": true, "Bool": true, "Int": true, "Int64": true,
		"Uint64": true, "Float64": true, "Duration": true,
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !kinds[sel.Sel.Name] || len(call.Args) < 3 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if name, err := strconv.Unquote(lit.Value); err == nil && name != "" {
			names = append(names, name)
		}
		return true
	})
	sort.Strings(names)
	return names, doc
}

// TestCLIFlagsDocumented requires every flag a command registers to be
// mentioned as "-name" in that command's package comment — the text godoc
// and the README point at. A flag added without prose fails here.
func TestCLIFlagsDocumented(t *testing.T) {
	mains, err := filepath.Glob("cmd/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(mains) == 0 {
		t.Fatal("no cmd/*/main.go files found")
	}
	for _, file := range mains {
		names, doc := cliFlags(t, file)
		if len(names) == 0 {
			t.Errorf("%s: found no flag registrations; the extractor or the command is broken", file)
			continue
		}
		for _, name := range names {
			// Word-boundary match so -j is not satisfied by -json.
			re := regexp.MustCompile(`-` + regexp.QuoteMeta(name) + `\b`)
			if !re.MatchString(doc) {
				t.Errorf("%s: flag -%s is not mentioned in the package comment", file, name)
			}
		}
	}
}

var (
	// mdLinkRe matches markdown link targets: ](target).
	mdLinkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	// mdFileRefRe matches backticked repo-file references like
	// `docs/backends.md` — the cross-linking style these docs mostly use.
	mdFileRefRe = regexp.MustCompile("`([A-Za-z0-9_\\-./]+\\.(?:md|go|mod|json|txt|sh|ya?ml))`")
)

// TestMarkdownFileReferencesResolve checks every relative link and
// backticked file path in the core docs against the tree, so renaming or
// deleting a file flags the prose that still points at it. Planning docs
// (ROADMAP, PAPERS, SNIPPETS, CHANGES, ISSUE) reference external material
// and are deliberately out of scope.
func TestMarkdownFileReferencesResolve(t *testing.T) {
	docs := []string{"README.md", "ARCHITECTURE.md", "DESIGN.md", "EXPERIMENTS.md"}
	extra, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, extra...)
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		var targets []string
		for _, m := range mdLinkRe.FindAllStringSubmatch(string(data), -1) {
			targets = append(targets, m[1])
		}
		for _, m := range mdFileRefRe.FindAllStringSubmatch(string(data), -1) {
			targets = append(targets, m[1])
		}
		for _, target := range targets {
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			// Templated or wildcard paths name generated artifacts
			// (campaign dirs, trace files), not checked-in sources.
			if strings.ContainsAny(target, "*<>$") || strings.HasPrefix(target, "/") {
				continue
			}
			// Bare filenames without a path separator are usually runtime
			// artifacts (results.txt, campaign.json) or files discussed in
			// the context of their package; only path-qualified references
			// are held to existence.
			if !strings.Contains(target, "/") {
				continue
			}
			if !fileExistsAt(doc, target) {
				t.Errorf("%s references %q, which exists neither relative to the doc nor to the repo root", doc, target)
			}
		}
	}
}

// fileExistsAt resolves target against the referencing doc's directory,
// then against the repo root.
func fileExistsAt(doc, target string) bool {
	for _, base := range []string{filepath.Dir(doc), "."} {
		if _, err := os.Stat(filepath.Join(base, target)); err == nil {
			return true
		}
	}
	return false
}
