// Command mptcp-sim runs one ad-hoc MPTCP scenario and prints transport
// and energy metrics, for quick exploration outside the figure harness.
//
//	mptcp-sim -topo twopath -alg dts -duration 60s
//	mptcp-sim -topo fattree -alg lia -subflows 8 -hosts 16
//	mptcp-sim -topo hetwireless -alg dts-lia -cross
//	mptcp-sim -topo twopath -alg lia -bytes 20000000 -fault "path1:down@2s,up@5s"
//	mptcp-sim -topo twopath -alg dts -runs 8 -j 4   # 8 seeds, 4 at a time
//	mptcp-sim -topo twopath -alg dts -trace run.jsonl -sample-interval 50ms
//	mptcp-sim -topo fattree -alg lia -churn 5000 -max-flows 600 -check
//
// -seed picks the base random seed (runs use seed..seed+runs-1), -rwnd caps
// the connection receive window in segments, and -timeout sets a per-run
// wall-clock deadline enforced by the run supervisor.
//
// -churn N replaces the single measured connection with an open-loop
// population (internal/flows): N flows arrive Poisson across random host
// pairs of a multi-host topology (fattree, vl2, bcube, ec2), with a
// heavy-tailed web/bulk/stream size mix, and are torn down as they
// complete. -arrival sets the rate in flows/sec (default 40 per host);
// -max-flows caps concurrency — arrivals past the cap are shed
// deterministically and accounted, never silently dropped. The run prints
// the offered = completed + shed + cut reconciliation plus per-flow FCT,
// goodput and marginal-energy percentiles; -trace records one "flow" line
// per outcome. -churn is open-loop, so -bytes, -cross, -fault, -rwnd and
// -runs > 1 do not apply.
//
// -trace streams a machine-readable run record (JSONL, see internal/obsv
// and EXPERIMENTS.md): per-subflow cwnd/SRTT/loss series, algorithm
// internals for introspectable algorithms, host power, and failover events.
// With -runs > 1 each run writes its own file with the seed inserted before
// the extension.
//
// -check runs the internal/check invariant checker alongside the
// simulation: byte conservation, cwnd/seq bounds, energy accounting and
// subflow state transitions are evaluated periodically and once at the end.
// Violations fail the run; with -runs > 1 they fail the whole summary,
// naming each offending seed.
//
// -soak replaces the single scenario with a chaos soak: randomized
// scenario/fault/workload draws run until the given count ("60") or
// duration ("10m") is spent, each under the invariant checker and a
// -soak-events event budget. Failures are shrunk and quarantined into
// -soak-dir; -replay re-runs a quarantined artifact and exits 0 only if
// the recorded failure reproduces; -inject arms a failpoint on every Nth
// soak scenario as a self-test of the quarantine pipeline.
//
// SIGINT/SIGTERM stop the invocation gracefully: the running simulation is
// stopped at the next event boundary (batch mode additionally dispatches no
// further seeds), traces and meters flush, and the process exits 4
// (supervise.ExitInterrupted). A second signal kills immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mptcpsim/internal/chaos"
	"mptcpsim/internal/check"
	"mptcpsim/internal/core"
	"mptcpsim/internal/energy"
	"mptcpsim/internal/faults"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/obsv"
	"mptcpsim/internal/runner"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/supervise"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mptcp-sim:", err)
		var ec *supervise.ExitCodeError
		if errors.As(err, &ec) {
			os.Exit(ec.Code)
		}
		os.Exit(1)
	}
}

// signalContext cancels on the first SIGINT/SIGTERM so in-flight work
// drains; the AfterFunc restores default signal dispositions the moment the
// context dies, so a second signal kills the process immediately instead of
// waiting out the drain.
func signalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	context.AfterFunc(ctx, func() { stop() })
	return ctx, stop
}

// stopOnCancel schedules a periodic engine event that stops the engine once
// ctx is cancelled, so a signal ends the simulation at a clean event
// boundary — metrics, traces and meters then flush normally over whatever
// simulated time actually elapsed. The check touches no RNG, so an
// uncancelled run's results are unchanged by it.
func stopOnCancel(ctx context.Context, eng *sim.Engine) {
	if ctx == nil {
		return
	}
	const every = 100 * sim.Millisecond
	var tick func()
	tick = func() {
		if ctx.Err() != nil {
			eng.Stop()
			return
		}
		eng.ScheduleAfter(every, tick)
	}
	eng.ScheduleAfter(every, tick)
}

// interruptedErr is the exit-4 error for a signal-stopped invocation.
func interruptedErr(msg string) error {
	return &supervise.ExitCodeError{Code: supervise.ExitInterrupted, Msg: msg}
}

// scenario carries every knob one simulation run needs, so repeated runs
// differ only in their seed.
type scenario struct {
	topo       string
	alg        string
	subflows   int
	hosts      int
	duration   time.Duration
	transfer   int64
	cross      bool
	rwnd       int64
	fault      string
	trace      string
	sampleInt  time.Duration
	multiTrace bool // -runs > 1: insert the seed into each trace filename
	check      bool
}

// runResult summarises one completed run for the multi-run table.
type runResult struct {
	seed       int64
	simSecs    float64
	wallSecs   float64
	events     uint64
	goodputBps float64
	acked      uint64
	joules     float64
	meanPower  float64
	reinj      int64
	// interrupted: a signal stopped this run before its horizon; the
	// metrics cover only the simulated time that elapsed.
	interrupted bool
	err         error
}

func run(args []string) error {
	fs := flag.NewFlagSet("mptcp-sim", flag.ContinueOnError)
	var (
		topoName  = fs.String("topo", "twopath", "scenario: twopath, hetwireless, dumbbell, ec2, fattree, vl2, bcube")
		alg       = fs.String("alg", "lia", "congestion control: "+strings.Join(core.Names(), ", "))
		subflows  = fs.Int("subflows", 2, "subflows for the datacenter topologies")
		hosts     = fs.Int("hosts", 16, "hosts for the ec2 topology")
		duration  = fs.Duration("duration", 30*time.Second, "simulated duration")
		transfer  = fs.Int64("bytes", 0, "transfer size (0 = long-lived flow)")
		seed      = fs.Int64("seed", 1, "random seed")
		cross     = fs.Bool("cross", false, "add Pareto bursty cross traffic (twopath/hetwireless)")
		rwnd      = fs.Int64("rwnd", 0, "connection receive window in segments (0 = unlimited)")
		fault     = fs.String("fault", "", `fault schedule, e.g. "path1:down@2s,up@5s;path0:flap@1s+6s/500ms" (see internal/faults)`)
		runs      = fs.Int("runs", 1, "independent runs with seeds seed..seed+runs-1")
		workers   = fs.Int("j", runner.DefaultWorkers(), "concurrent runs when -runs > 1")
		traceOut  = fs.String("trace", "", "stream a JSONL run record to this file (per-seed files when -runs > 1)")
		sampleInt = fs.Duration("sample-interval", 0, "run-record sampling period in simulated time (0 = 100ms)")
		checkInv  = fs.Bool("check", false, "evaluate simulator invariants during the run; violations fail the run")
		timeout   = fs.Duration("timeout", 0, "per-run wall-clock deadline enforced by the run supervisor (0 = none)")
		soakSpec  = fs.String("soak", "", "run a chaos soak instead of one scenario: a count (\"60\") or a duration (\"10m\")")
		soakDir   = fs.String("soak-dir", "quarantine", "directory soak failures are shrunk and quarantined into")
		soakEv    = fs.Uint64("soak-events", 0, "per-scenario event budget during soak (0 = 20M)")
		inject    = fs.Int("inject", 0, "arm a failpoint on every Nth soak scenario (quarantine self-test, 0 = off)")
		replay    = fs.String("replay", "", "replay a quarantined artifact; exits 0 only if the recorded failure reproduces")
		churn     = fs.Int("churn", 0, "run an open-loop population of this many flows instead of one connection (fattree, vl2, bcube, ec2)")
		arrival   = fs.Float64("arrival", 0, "churn arrival rate in flows/sec (0 = 40 per host)")
		maxFlows  = fs.Int("max-flows", 0, "churn admission cap on concurrent flows; excess arrivals are shed and accounted (0 = uncapped)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *churn <= 0 && (*arrival != 0 || *maxFlows != 0) {
		return fmt.Errorf("-arrival and -max-flows require -churn")
	}

	ctx, stop := signalContext()
	defer stop()

	if *replay != "" {
		return runReplay(*replay, *timeout, *soakEv)
	}
	if *soakSpec != "" {
		return runSoak(ctx, *soakSpec, *seed, *workers, *soakDir, *timeout, *soakEv, *inject)
	}

	sc := scenario{
		topo: *topoName, alg: *alg, subflows: *subflows, hosts: *hosts,
		duration: *duration, transfer: *transfer, cross: *cross,
		rwnd: *rwnd, fault: *fault,
		trace: *traceOut, sampleInt: *sampleInt, multiTrace: *runs > 1,
		check: *checkInv,
	}

	if *churn > 0 {
		// The population is open-loop: the single-connection knobs have no
		// meaning, and accepting them silently would misreport the scenario.
		if *transfer != 0 || *cross || *fault != "" || *rwnd != 0 || *runs > 1 {
			return fmt.Errorf("-churn is incompatible with -bytes, -cross, -fault, -rwnd and -runs > 1")
		}
		co := churnOpts{flows: *churn, arrival: *arrival, maxFlows: *maxFlows}
		if *timeout <= 0 {
			return runChurnScenario(ctx, sc, co, *seed, nil)
		}
		sup := supervise.New(supervise.Budget{Wall: *timeout})
		rep := sup.Run(supervise.RunID{Seed: *seed, Scenario: sc.topo, Phase: "churn"},
			func(wd *supervise.Watchdog) error { return runChurnScenario(ctx, sc, co, *seed, wd) })
		if rep.Outcome.Failed() {
			return rep.Err
		}
		return nil
	}

	if *runs <= 1 {
		if *timeout <= 0 {
			return runOne(ctx, sc, *seed, nil)
		}
		sup := supervise.New(supervise.Budget{Wall: *timeout})
		rep := sup.Run(supervise.RunID{Seed: *seed, Scenario: sc.topo, Phase: "adhoc"},
			func(wd *supervise.Watchdog) error { return runOne(ctx, sc, *seed, wd) })
		if rep.Outcome.Failed() {
			return rep.Err
		}
		return nil
	}

	// Every run of a batch executes under the supervisor: a panicking or
	// invariant-violating seed is quarantined into its row instead of
	// killing the batch, and -timeout bounds each run's wall clock. A
	// signal drains the in-flight seeds and skips the rest.
	sup := supervise.New(supervise.Budget{Wall: *timeout})
	results, done := runner.MapCtx(ctx, *workers, *runs, func(i int) runResult {
		s := *seed + int64(i)
		var r runResult
		rep := sup.Run(supervise.RunID{Seed: s, Scenario: sc.topo, Phase: "adhoc"},
			func(wd *supervise.Watchdog) error {
				r = runQuiet(ctx, sc, s, wd)
				return r.err
			})
		if rep.Outcome.Failed() {
			r = runResult{seed: s, err: rep.Err}
		}
		return r
	})
	fmt.Printf("%-6s %12s %10s %12s %10s %10s %8s\n",
		"seed", "goodput_mbps", "acked_mb", "energy_j", "mean_w", "events", "wall_s")
	var sumGoodput, sumJoules float64
	var failed []runResult
	var skipped, cut int
	for i, r := range results {
		if done != nil && !done[i] {
			fmt.Printf("%-6d skipped (interrupted before start)\n", *seed+int64(i))
			skipped++
			continue
		}
		if r.err != nil {
			// Report the failure in the row, keep printing the other seeds,
			// and fail the whole invocation below. A bad seed must not be
			// silently averaged away — nor hide the remaining results.
			fmt.Printf("%-6d FAILED: %v\n", r.seed, r.err)
			failed = append(failed, r)
			continue
		}
		if r.interrupted {
			// Stopped mid-run by the signal: the partial metrics would skew
			// the mean, so the row reports how far it got and nothing more.
			fmt.Printf("%-6d interrupted at %.1fs simulated (partial, excluded from mean)\n",
				r.seed, r.simSecs)
			cut++
			continue
		}
		fmt.Printf("%-6d %12.2f %10.1f %12.1f %10.2f %10d %8.2f\n",
			r.seed, r.goodputBps/1e6, float64(r.acked)/(1<<20),
			r.joules, r.meanPower, r.events, r.wallSecs)
		sumGoodput += r.goodputBps
		sumJoules += r.joules
	}
	if n := float64(len(results) - len(failed) - skipped - cut); n > 0 {
		fmt.Printf("mean over %d runs: goodput %.2f Mb/s, energy %.1f J\n",
			int(n), sumGoodput/n/1e6, sumJoules/n)
	}
	fmt.Printf("outcomes: %s\n", sup.Counts())
	if skipped+cut > 0 {
		// Exit 4: a signal stopped the batch early; completed rows above
		// are valid and were flushed before exit.
		return interruptedErr(fmt.Sprintf(
			"interrupted: %d of %d runs completed (%d cut mid-run, %d never started)",
			len(results)-len(failed)-skipped-cut, len(results), cut, skipped))
	}
	if len(failed) > 0 {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d of %d runs quarantined:", len(failed), len(results))
		for _, r := range failed {
			fmt.Fprintf(&sb, "\n  seed %d: %v", r.seed, r.err)
		}
		// Exit 3: the batch completed and the surviving rows above are
		// valid, but at least one run was quarantined.
		return &supervise.ExitCodeError{Code: supervise.ExitQuarantined, Msg: sb.String()}
	}
	return nil
}

// runSoak runs a chaos campaign (-soak), writing shrunk failing scenarios
// into the quarantine directory. The argument is a scenario count or a
// wall-clock duration.
func runSoak(ctx context.Context, spec string, seed int64, workers int, dir string, timeout time.Duration, events uint64, inject int) error {
	cfg := chaos.SoakConfig{
		Seed: seed, Workers: workers, Dir: dir,
		Timeout: timeout, MaxEvents: events, Inject: inject, Ctx: ctx,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "soak: "+format+"\n", args...)
		},
	}
	if n, err := strconv.Atoi(spec); err == nil {
		if n <= 0 {
			return fmt.Errorf("-soak count must be positive, got %d", n)
		}
		cfg.Count = n
	} else if d, derr := time.ParseDuration(spec); derr == nil {
		cfg.Duration = d
	} else {
		return fmt.Errorf("-soak wants a count or a duration, got %q", spec)
	}
	res, err := chaos.Soak(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("soak: %d scenarios, %s\n", res.Scenarios, res.Counts)
	for _, f := range res.Failures {
		loc := f.Artifact
		if loc == "" {
			loc = "(artifact not written)"
		}
		fmt.Printf("  chaos[%d] %s %s shrink_runs=%d %s\n", f.Index, f.Outcome, f.Signature, f.ShrinkRuns, loc)
	}
	if res.Interrupted {
		// Exit 4: the soak was stopped by a signal; artifacts written so far
		// are complete and valid.
		return interruptedErr(fmt.Sprintf(
			"soak interrupted after %d scenarios (%d quarantined)", res.Scenarios, len(res.Failures)))
	}
	if res.Failed() {
		return &supervise.ExitCodeError{
			Code: supervise.ExitQuarantined,
			Msg:  fmt.Sprintf("soak quarantined %d of %d scenarios", len(res.Failures), res.Scenarios),
		}
	}
	return nil
}

// runReplay re-runs a quarantined artifact (-replay) and succeeds only if
// the recorded failure signature reproduces.
func runReplay(path string, timeout time.Duration, events uint64) error {
	rr, err := chaos.Replay(path, supervise.Budget{Wall: timeout, Events: events})
	if err != nil {
		return err
	}
	a := rr.Artifact
	fmt.Printf("replay: %s\n", a.Scenario)
	fmt.Printf("recorded: %s (%s)\n", a.Signature, a.Failure.Msg)
	observed := rr.Signature
	if observed == "" {
		observed = "clean run"
	}
	fmt.Printf("observed: %s (%s)\n", observed, rr.Outcome)
	if !rr.Match {
		return fmt.Errorf("replay did not reproduce the recorded failure")
	}
	fmt.Println("reproduced")
	return nil
}

// startCheck attaches the invariant checker to one run when -check is set.
// It runs in collect mode rather than panicking, so a violating seed in a
// multi-run batch reports cleanly alongside the surviving rows.
func startCheck(eng *sim.Engine, sc scenario, conn *mptcp.Conn, meter *energy.Meter) *check.Invariants {
	if !sc.check {
		return nil
	}
	inv := check.New(eng)
	inv.Watch("", conn)
	inv.WatchMeter("host", meter)
	inv.Start()
	return inv
}

// finishCheck evaluates the invariants one final time and converts any
// recorded violations into the run's error.
func finishCheck(inv *check.Invariants) error {
	if inv == nil {
		return nil
	}
	inv.Final()
	return inv.Err()
}

// setup wires the scenario onto a fresh engine and returns the connection
// and energy meter; it is the shared front half of runOne and runQuiet.
func setup(eng *sim.Engine, sc scenario) (*mptcp.Conn, *energy.Meter, error) {
	paths, crossLinks, err := buildScenario(eng, sc.topo, sc.subflows, sc.hosts)
	if err != nil {
		return nil, nil, err
	}
	if sc.fault != "" {
		pfs, err := faults.Parse(sc.fault)
		if err != nil {
			return nil, nil, err
		}
		// Reject schedules that target absent paths or lie entirely past
		// the horizon before the run starts, instead of silently no-opping.
		if err := faults.Validate(pfs, paths, sim.FromDuration(sc.duration)); err != nil {
			return nil, nil, err
		}
		for _, pf := range pfs {
			p, err := faults.Resolve(pf.Target, paths)
			if err != nil {
				return nil, nil, err
			}
			faults.Apply(eng, p, pf.Faults...)
		}
	}
	if sc.cross {
		for _, l := range crossLinks {
			workload.NewParetoOnOff(eng, []*netem.Link{l}, workload.ParetoConfig{
				RateBps: l.Rate() * 9 / 10,
			}).Start()
		}
	}

	conn, err := mptcp.New(eng, mptcp.Config{
		Algorithm:     sc.alg,
		TransferBytes: sc.transfer,
		RwndSegments:  sc.rwnd,
	}, 1, paths...)
	if err != nil {
		return nil, nil, err
	}
	meter := energy.NewMeter(eng, energy.NewI7(), energy.ConnProbe(conn), 0)
	meter.Start()
	return conn, meter, nil
}

// tracePath names the run record file for one seed. Single runs use the
// -trace argument verbatim; multi-run invocations insert the seed before the
// extension so every run keeps its own record.
func tracePath(base string, seed int64, multi bool) string {
	if !multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + fmt.Sprintf("_seed%d", seed) + ext
}

// startTrace attaches a JSONL run recorder when -trace is set, returning a
// finish func that completes the record after the engine has run. Both
// returns are nil when tracing is off.
func startTrace(eng *sim.Engine, sc scenario, seed int64, conn *mptcp.Conn, meter *energy.Meter) (func() error, error) {
	if sc.trace == "" {
		return nil, nil
	}
	f, err := os.Create(tracePath(sc.trace, seed, sc.multiTrace))
	if err != nil {
		return nil, err
	}
	rec := obsv.NewRecorder(eng, obsv.Meta{
		Experiment: "adhoc",
		Scenario:   sc.topo,
		Algorithm:  sc.alg,
		Seed:       seed,
	}, obsv.Options{Interval: sim.FromDuration(sc.sampleInt), Stream: f})
	rec.WatchConn("", conn)
	rec.WatchMeter("host", meter)
	rec.Start()
	return func() error {
		rec.SetSummary("goodput_mbps", conn.MeanThroughputBps()/1e6)
		rec.SetSummary("energy_j", meter.Joules())
		rec.SetSummary("reinjected_segs", float64(conn.ReinjectedSegs()))
		err := rec.Close()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}, nil
}

// runQuiet executes one run and returns only the summary, for -runs > 1.
func runQuiet(ctx context.Context, sc scenario, seed int64, wd *supervise.Watchdog) runResult {
	eng := sim.NewEngine(seed)
	wd.Attach(eng)
	stopOnCancel(ctx, eng)
	conn, meter, err := setup(eng, sc)
	if err != nil {
		return runResult{seed: seed, err: err}
	}
	finish, err := startTrace(eng, sc, seed, conn, meter)
	if err != nil {
		return runResult{seed: seed, err: err}
	}
	inv := startCheck(eng, sc, conn, meter)
	if sc.transfer > 0 {
		conn.OnComplete = func(sim.Time) {
			meter.Stop()
			eng.Stop()
		}
	}
	start := time.Now()
	conn.Start()
	eng.Run(sim.FromDuration(sc.duration))
	meter.Flush() // integrate the residual when the horizon cut the run off
	if err := finishCheck(inv); err != nil {
		return runResult{seed: seed, err: err}
	}
	if finish != nil {
		if err := finish(); err != nil {
			return runResult{seed: seed, err: err}
		}
	}
	return runResult{
		seed:        seed,
		simSecs:     eng.Now().Seconds(),
		wallSecs:    time.Since(start).Seconds(),
		events:      eng.Processed(),
		goodputBps:  conn.MeanThroughputBps(),
		acked:       conn.AckedBytes(),
		joules:      meter.Joules(),
		meanPower:   meter.MeanPower(),
		reinj:       conn.ReinjectedSegs(),
		interrupted: ctx != nil && ctx.Err() != nil,
	}
}

// runOne executes a single run with the full per-subflow report.
func runOne(ctx context.Context, sc scenario, seed int64, wd *supervise.Watchdog) error {
	eng := sim.NewEngine(seed)
	wd.Attach(eng)
	stopOnCancel(ctx, eng)
	conn, meter, err := setup(eng, sc)
	if err != nil {
		return err
	}
	finish, err := startTrace(eng, sc, seed, conn, meter)
	if err != nil {
		return err
	}
	inv := startCheck(eng, sc, conn, meter)
	if sc.transfer > 0 {
		conn.OnComplete = func(at sim.Time) {
			fmt.Printf("transfer completed at %.3fs\n", at.Seconds())
			meter.Stop()
			eng.Stop()
		}
	}

	start := time.Now()
	conn.Start()
	eng.Run(sim.FromDuration(sc.duration))
	meter.Flush() // integrate the residual when the horizon cut the run off
	if err := finishCheck(inv); err != nil {
		return err
	}
	if inv != nil {
		fmt.Printf("checks:  %d invariant evaluations, clean\n", inv.Checks())
	}
	if finish != nil {
		if err := finish(); err != nil {
			return err
		}
		fmt.Printf("trace:   %s\n", tracePath(sc.trace, seed, sc.multiTrace))
	}

	fmt.Printf("simulated %.1fs in %.2fs wall (%d events)\n",
		eng.Now().Seconds(), time.Since(start).Seconds(), eng.Processed())
	fmt.Printf("goodput: %.2f Mb/s (%.1f MB acked)\n",
		conn.MeanThroughputBps()/1e6, float64(conn.AckedBytes())/(1<<20))
	fmt.Printf("energy:  %.1f J (mean %.2f W)\n", meter.Joules(), meter.MeanPower())
	if reinj := conn.ReinjectedSegs(); reinj > 0 {
		fmt.Printf("failover: %d segments re-injected onto surviving subflows\n", reinj)
	}
	for _, s := range conn.Subflows() {
		st := s.Stats()
		fmt.Printf("  subflow %d %-12s %-8s cwnd=%6.1f srtt=%-12v acked=%-8d loss=%-4d rtx=%-5d timeouts=%d fails=%d probes=%d revivals=%d\n",
			s.ID(), s.Path().Name, s.State(), s.Cwnd(), s.SRTT().Duration(), s.Acked(),
			st.LossEvents, st.PktsRtx, st.Timeouts, st.Fails, st.Probes, st.Revivals)
		if tl := s.Transitions(); tl.Len() > 0 {
			fmt.Printf("    transitions:")
			for _, e := range tl.Events {
				fmt.Printf(" %s@%.3fs", e.Label, e.T.Seconds())
			}
			fmt.Println()
		}
	}
	if ctx != nil && ctx.Err() != nil {
		// Exit 4: the metrics above cover the simulated time that elapsed
		// before the signal; trace and meter were flushed.
		return interruptedErr(fmt.Sprintf(
			"interrupted at %.1fs simulated (of %s requested)", eng.Now().Seconds(), sc.duration))
	}
	return nil
}

// buildScenario wires the requested topology and returns the paths of the
// measured connection plus links suitable for cross-traffic injection.
func buildScenario(eng *sim.Engine, name string, subflows, hosts int) ([]*netem.Path, []*netem.Link, error) {
	switch name {
	case "twopath":
		tp := topo.NewTwoPath(eng, topo.TwoPathConfig{})
		return tp.Paths(), []*netem.Link{tp.CrossEntry(0), tp.CrossEntry(1)}, nil
	case "hetwireless":
		h := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
		return h.Paths(), []*netem.Link{h.CrossEntry(0), h.CrossEntry(1)}, nil
	case "dumbbell":
		d := topo.NewDumbbell(eng, topo.DumbbellConfig{Users: 1})
		return d.MPTCPPaths(0), nil, nil
	case "ec2":
		v := topo.NewEC2VPC(eng, topo.EC2Config{Hosts: hosts})
		return v.Paths(0, 1, subflows), nil, nil
	case "fattree":
		ft, err := topo.NewFatTree(eng, topo.FatTreeConfig{K: 4})
		if err != nil {
			return nil, nil, err
		}
		return ft.Paths(0, ft.Hosts()-1, subflows), nil, nil
	case "vl2":
		v, err := topo.NewVL2(eng, topo.VL2Config{HostsPerToR: 2, ToRs: 8, Aggs: 4, Ints: 4})
		if err != nil {
			return nil, nil, err
		}
		return v.Paths(0, v.Hosts()-1, subflows), nil, nil
	case "bcube":
		b, err := topo.NewBCube(eng, topo.BCubeConfig{N: 3, K: 1})
		if err != nil {
			return nil, nil, err
		}
		return b.Paths(0, b.Hosts()-1, subflows), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown topology %q", name)
	}
}
