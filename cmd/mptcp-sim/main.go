// Command mptcp-sim runs one ad-hoc MPTCP scenario and prints transport
// and energy metrics, for quick exploration outside the figure harness.
//
//	mptcp-sim -topo twopath -alg dts -duration 60s
//	mptcp-sim -topo fattree -alg lia -subflows 8 -hosts 16
//	mptcp-sim -topo hetwireless -alg dts-lia -cross
//	mptcp-sim -topo twopath -alg lia -bytes 20000000 -fault "path1:down@2s,up@5s"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mptcpsim/internal/core"
	"mptcpsim/internal/energy"
	"mptcpsim/internal/faults"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mptcp-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mptcp-sim", flag.ContinueOnError)
	var (
		topoName = fs.String("topo", "twopath", "scenario: twopath, hetwireless, dumbbell, ec2, fattree, vl2, bcube")
		alg      = fs.String("alg", "lia", "congestion control: "+strings.Join(core.Names(), ", "))
		subflows = fs.Int("subflows", 2, "subflows for the datacenter topologies")
		hosts    = fs.Int("hosts", 16, "hosts for the ec2 topology")
		duration = fs.Duration("duration", 30*time.Second, "simulated duration")
		transfer = fs.Int64("bytes", 0, "transfer size (0 = long-lived flow)")
		seed     = fs.Int64("seed", 1, "random seed")
		cross    = fs.Bool("cross", false, "add Pareto bursty cross traffic (twopath/hetwireless)")
		rwnd     = fs.Int64("rwnd", 0, "connection receive window in segments (0 = unlimited)")
		fault    = fs.String("fault", "", `fault schedule, e.g. "path1:down@2s,up@5s;path0:flap@1s+6s/500ms" (see internal/faults)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng := sim.NewEngine(*seed)
	paths, crossLinks, err := buildScenario(eng, *topoName, *subflows, *hosts)
	if err != nil {
		return err
	}
	if *fault != "" {
		pfs, err := faults.Parse(*fault)
		if err != nil {
			return err
		}
		for _, pf := range pfs {
			p, err := faults.Resolve(pf.Target, paths)
			if err != nil {
				return err
			}
			faults.Apply(eng, p, pf.Faults...)
		}
	}
	if *cross {
		for _, l := range crossLinks {
			workload.NewParetoOnOff(eng, []*netem.Link{l}, workload.ParetoConfig{
				RateBps: l.Rate() * 9 / 10,
			}).Start()
		}
	}

	conn, err := mptcp.New(eng, mptcp.Config{
		Algorithm:     *alg,
		TransferBytes: *transfer,
		RwndSegments:  *rwnd,
	}, 1, paths...)
	if err != nil {
		return err
	}
	meter := energy.NewMeter(eng, energy.NewI7(), energy.ConnProbe(conn), 0)
	meter.Start()
	if *transfer > 0 {
		conn.OnComplete = func(at sim.Time) {
			fmt.Printf("transfer completed at %.3fs\n", at.Seconds())
			meter.Stop()
			eng.Stop()
		}
	}

	start := time.Now()
	conn.Start()
	eng.Run(sim.FromDuration(*duration))

	fmt.Printf("simulated %.1fs in %.2fs wall (%d events)\n",
		eng.Now().Seconds(), time.Since(start).Seconds(), eng.Processed())
	fmt.Printf("goodput: %.2f Mb/s (%.1f MB acked)\n",
		conn.MeanThroughputBps()/1e6, float64(conn.AckedBytes())/(1<<20))
	fmt.Printf("energy:  %.1f J (mean %.2f W)\n", meter.Joules(), meter.MeanPower())
	if reinj := conn.ReinjectedSegs(); reinj > 0 {
		fmt.Printf("failover: %d segments re-injected onto surviving subflows\n", reinj)
	}
	for _, s := range conn.Subflows() {
		st := s.Stats()
		fmt.Printf("  subflow %d %-12s %-8s cwnd=%6.1f srtt=%-12v acked=%-8d loss=%-4d rtx=%-5d timeouts=%d fails=%d probes=%d revivals=%d\n",
			s.ID(), s.Path().Name, s.State(), s.Cwnd(), s.SRTT().Duration(), s.Acked(),
			st.LossEvents, st.PktsRtx, st.Timeouts, st.Fails, st.Probes, st.Revivals)
		if tl := s.Transitions(); tl.Len() > 0 {
			fmt.Printf("    transitions:")
			for _, e := range tl.Events {
				fmt.Printf(" %s@%.3fs", e.Label, e.T.Seconds())
			}
			fmt.Println()
		}
	}
	return nil
}

// buildScenario wires the requested topology and returns the paths of the
// measured connection plus links suitable for cross-traffic injection.
func buildScenario(eng *sim.Engine, name string, subflows, hosts int) ([]*netem.Path, []*netem.Link, error) {
	switch name {
	case "twopath":
		tp := topo.NewTwoPath(eng, topo.TwoPathConfig{})
		return tp.Paths(), []*netem.Link{tp.CrossEntry(0), tp.CrossEntry(1)}, nil
	case "hetwireless":
		h := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
		return h.Paths(), []*netem.Link{h.CrossEntry(0), h.CrossEntry(1)}, nil
	case "dumbbell":
		d := topo.NewDumbbell(eng, topo.DumbbellConfig{Users: 1})
		return d.MPTCPPaths(0), nil, nil
	case "ec2":
		v := topo.NewEC2VPC(eng, topo.EC2Config{Hosts: hosts})
		return v.Paths(0, 1, subflows), nil, nil
	case "fattree":
		ft, err := topo.NewFatTree(eng, topo.FatTreeConfig{K: 4})
		if err != nil {
			return nil, nil, err
		}
		return ft.Paths(0, ft.Hosts()-1, subflows), nil, nil
	case "vl2":
		v, err := topo.NewVL2(eng, topo.VL2Config{HostsPerToR: 2, ToRs: 8, Aggs: 4, Ints: 4})
		if err != nil {
			return nil, nil, err
		}
		return v.Paths(0, v.Hosts()-1, subflows), nil, nil
	case "bcube":
		b, err := topo.NewBCube(eng, topo.BCubeConfig{N: 3, K: 1})
		if err != nil {
			return nil, nil, err
		}
		return b.Paths(0, b.Hosts()-1, subflows), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown topology %q", name)
	}
}
