package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"mptcpsim/internal/check"
	"mptcpsim/internal/flows"
	"mptcpsim/internal/obsv"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/stats"
	"mptcpsim/internal/supervise"
	"mptcpsim/internal/topo"
)

// churnOpts carries the -churn mode knobs: an open-loop flow population
// replaces the single measured connection.
type churnOpts struct {
	flows    int     // -churn: total flows to offer
	arrival  float64 // -arrival: flows/sec (0 = 40 per host)
	maxFlows int     // -max-flows: admission cap (0 = uncapped)
}

// buildChurnNet wires one of the many-host topologies for a churn run. The
// twopath/hetwireless/dumbbell scenarios have a single measured route, so a
// population makes no sense there.
func buildChurnNet(eng *sim.Engine, name string, hosts int) (flows.Net, error) {
	switch name {
	case "fattree":
		return topo.NewFatTree(eng, topo.FatTreeConfig{K: 4})
	case "vl2":
		return topo.NewVL2(eng, topo.VL2Config{HostsPerToR: 2, ToRs: 8, Aggs: 4, Ints: 4})
	case "bcube":
		return topo.NewBCube(eng, topo.BCubeConfig{N: 3, K: 1})
	case "ec2":
		return topo.NewEC2VPC(eng, topo.EC2Config{Hosts: hosts}), nil
	default:
		return nil, fmt.Errorf("-churn needs a multi-host topology (fattree, vl2, bcube, ec2), not %q", name)
	}
}

// runChurnScenario executes one open-loop churn run: Poisson arrivals of
// heavy-tailed flows across random host pairs, torn down as they complete,
// with deterministic shedding at the admission cap. It prints the offered /
// completed / shed / cut reconciliation and per-flow percentiles.
func runChurnScenario(ctx context.Context, sc scenario, co churnOpts, seed int64, wd *supervise.Watchdog) error {
	eng := sim.NewEngine(seed)
	wd.Attach(eng)
	stopOnCancel(ctx, eng)

	net, err := buildChurnNet(eng, sc.topo, sc.hosts)
	if err != nil {
		return err
	}
	rate := co.arrival
	if rate <= 0 {
		rate = float64(net.Hosts()) * 40
	}

	var inv *check.Invariants
	if sc.check {
		inv = check.New(eng)
	}
	var rec *obsv.Recorder
	var traceFile *os.File
	if sc.trace != "" {
		f, err := os.Create(tracePath(sc.trace, seed, sc.multiTrace))
		if err != nil {
			return err
		}
		traceFile = f
		rec = obsv.NewRecorder(eng, obsv.Meta{
			Experiment: "churn",
			Scenario:   sc.topo,
			Algorithm:  sc.alg,
			Seed:       seed,
		}, obsv.Options{Interval: sim.FromDuration(sc.sampleInt), Stream: f})
	}

	mgr, err := flows.New(eng, net, flows.Config{
		Algorithm:     sc.alg,
		Subflows:      sc.subflows,
		TotalFlows:    co.flows,
		MaxConcurrent: co.maxFlows,
		Arrivals:      flows.Poisson{Rate: rate},
		Check:         inv,
		Emit: func(r flows.Report) {
			if rec == nil {
				return
			}
			rec.EmitFlow(obsv.Flow{
				T: r.At.Seconds(), ID: r.ID, Class: r.Class.String(),
				Bytes: r.Bytes, FCTSeconds: r.FCT.Seconds(),
				GoodputBps: r.GoodputBps, Joules: r.Joules,
				Subflows: r.Subflows, Shed: r.Shed,
			})
		},
	})
	if err != nil {
		return err
	}
	if rec != nil {
		rec.AddSampler("flows.live", func() float64 { return float64(mgr.Live()) })
		rec.Start()
	}
	if inv != nil {
		inv.Start()
	}

	mgr.OnDrained = eng.Stop
	start := time.Now()
	mgr.Start()
	eng.Run(sim.FromDuration(sc.duration))
	mgr.CutLive()

	if inv != nil {
		inv.Final()
		if err := inv.Err(); err != nil {
			return err
		}
		fmt.Printf("checks:  %d invariant evaluations, clean\n", inv.Checks())
	}

	st := mgr.Stats()
	fmt.Printf("simulated %.1fs in %.2fs wall (%d events)\n",
		eng.Now().Seconds(), time.Since(start).Seconds(), eng.Processed())
	fmt.Printf("flows:   %d offered = %d completed + %d shed + %d cut (peak live %d)\n",
		st.Offered, st.Completed, st.ShedCapacity, st.Cut, st.PeakLive)
	if fcts := mgr.FCTs(); len(fcts) > 0 {
		gputs, joules := mgr.Goodputs(), mgr.Joules()
		fmt.Printf("fct:     p50 %.3fs  p95 %.3fs  p99 %.3fs\n",
			stats.Percentile(fcts, 50), stats.Percentile(fcts, 95), stats.Percentile(fcts, 99))
		fmt.Printf("goodput: p50 %.2f Mb/s\n", stats.Percentile(gputs, 50)/1e6)
		fmt.Printf("energy:  p50 %.3f J/flow  p99 %.3f J/flow (marginal over idle)\n",
			stats.Percentile(joules, 50), stats.Percentile(joules, 99))
	}

	if rec != nil {
		rec.SetSummary("flows_offered", float64(st.Offered))
		rec.SetSummary("flows_completed", float64(st.Completed))
		rec.SetSummary("flows_shed", float64(st.ShedCapacity))
		rec.SetSummary("flows_cut", float64(st.Cut))
		err := rec.Close()
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("trace:   %s\n", tracePath(sc.trace, seed, sc.multiTrace))
	}
	if ctx != nil && ctx.Err() != nil {
		return interruptedErr(fmt.Sprintf(
			"interrupted at %.1fs simulated (%d of %d flows offered)",
			eng.Now().Seconds(), st.Offered, uint64(co.flows)))
	}
	return nil
}
