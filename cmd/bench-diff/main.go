// Command bench-diff gates performance regressions: it compares the per-experiment
// events/sec of a freshly produced BENCH JSON (-new) against a committed
// baseline (-old) and exits non-zero when any experiment present in both
// regressed by more than the threshold (-max-regress, a fraction). For
// churn-style experiments both files also carry flows/sec; when both sides
// report it, that rate is gated by the same threshold.
// Experiments named in -allow are still reported but never fatal — the escape hatch for known, accepted slowdowns (wired
// through the Makefile's BENCH_ALLOW variable and the CI bench job).
//
// Two baseline schemas are understood, because the committed BENCH_seed.json
// predates the meta/payload split:
//
//	flat:  {"experiments": [{"experiment": ..., "events_per_sec": ...}]}
//	split: {"meta": {"timings": [{"experiment": ..., "events_per_sec": ...}]}}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type timing struct {
	Experiment   string  `json:"experiment"`
	EventsPerSec float64 `json:"events_per_sec"`
	FlowsPerSec  float64 `json:"flows_per_sec"`
}

// benchFile matches both schemas at once; whichever list is populated wins
// (the flat schema has no "meta" key, the split schema no "experiments").
type benchFile struct {
	Experiments []timing `json:"experiments"`
	Meta        struct {
		Timings []timing `json:"timings"`
	} `json:"meta"`
}

// load reads one BENCH JSON in either schema and returns experiment →
// timing, preserving first-seen order in the returned slice of names.
func load(path string) (map[string]timing, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	timings := f.Experiments
	if len(timings) == 0 {
		timings = f.Meta.Timings
	}
	if len(timings) == 0 {
		return nil, nil, fmt.Errorf("%s: no experiment timings (neither \"experiments\" nor \"meta.timings\")", path)
	}
	rates := make(map[string]timing, len(timings))
	var order []string
	for _, t := range timings {
		if t.Experiment == "" || t.EventsPerSec <= 0 {
			return nil, nil, fmt.Errorf("%s: bad timing entry %+v", path, t)
		}
		if _, dup := rates[t.Experiment]; !dup {
			order = append(order, t.Experiment)
		}
		rates[t.Experiment] = t
	}
	return rates, order, nil
}

func parseAllow(s string) map[string]bool {
	allow := make(map[string]bool)
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			allow[name] = true
		}
	}
	return allow
}

func run(oldPath, newPath string, maxRegress float64, allow map[string]bool, out *strings.Builder) (failed []string, err error) {
	oldRates, _, err := load(oldPath)
	if err != nil {
		return nil, err
	}
	newRates, newOrder, err := load(newPath)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "%-12s %-8s %14s %14s %8s\n", "experiment", "rate", "base", "new", "ratio")
	compared := 0
	for _, name := range newOrder {
		base, ok := oldRates[name]
		if !ok {
			fmt.Fprintf(out, "%-12s %-8s %14s %14.0f %8s  (not in baseline, skipped)\n", name, "ev/s", "-", newRates[name].EventsPerSec, "-")
			continue
		}
		compared++
		gates := []struct {
			label        string
			baseRate, nw float64
		}{
			{"ev/s", base.EventsPerSec, newRates[name].EventsPerSec},
			{"flows/s", base.FlowsPerSec, newRates[name].FlowsPerSec},
		}
		for _, g := range gates {
			if g.label == "flows/s" && (g.baseRate <= 0 || g.nw <= 0) {
				// Flow throughput is only gated once both sides report it,
				// so adding the metric never fails older baselines.
				continue
			}
			ratio := g.nw / g.baseRate
			note := ""
			if ratio < 1-maxRegress {
				if allow[name] {
					note = fmt.Sprintf("  REGRESSED >%g%% (allowed)", maxRegress*100)
				} else {
					note = fmt.Sprintf("  REGRESSED >%g%%", maxRegress*100)
					failed = append(failed, name)
				}
			}
			fmt.Fprintf(out, "%-12s %-8s %14.0f %14.0f %7.2fx%s\n", name, g.label, g.baseRate, g.nw, ratio, note)
		}
	}
	if compared == 0 {
		return nil, fmt.Errorf("no experiment appears in both %s and %s", oldPath, newPath)
	}
	return failed, nil
}

func main() {
	oldPath := flag.String("old", "BENCH_seed.json", "baseline BENCH JSON (flat or meta/payload schema)")
	newPath := flag.String("new", "", "freshly produced BENCH JSON to gate")
	maxRegress := flag.Float64("max-regress", 0.10, "fatal fractional events/sec regression (0.10 = 10%)")
	allowFlag := flag.String("allow", "", "comma-separated experiments exempt from the gate")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "bench-diff: -new is required")
		flag.Usage()
		os.Exit(2)
	}
	var out strings.Builder
	failed, err := run(*oldPath, *newPath, *maxRegress, parseAllow(*allowFlag), &out)
	os.Stdout.WriteString(out.String())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: %v\n", err)
		os.Exit(2)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "bench-diff: events/sec regressed >%g%% on: %s\n",
			*maxRegress*100, strings.Join(failed, ", "))
		os.Exit(1)
	}
	fmt.Println("bench-diff: OK")
}
