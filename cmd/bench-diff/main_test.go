package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// flatBase is the committed BENCH_seed.json schema (pre meta/payload split).
const flatBase = `{"scale":0.25,"experiments":[
	{"experiment":"fig1","wall_seconds":0.6,"events":600000,"events_per_sec":1000000},
	{"experiment":"fig3a","wall_seconds":0.5,"events":1000000,"events_per_sec":2000000}]}`

func splitNew(fig1, fig3a float64) string {
	return fmt.Sprintf(`{"meta":{"timings":[
		{"experiment":"fig1","events_per_sec":%g},
		{"experiment":"fig3a","events_per_sec":%g},
		{"experiment":"fig6","events_per_sec":5000000}]},"payload":{}}`, fig1, fig3a)
}

func TestNoRegressionPasses(t *testing.T) {
	old := writeFile(t, "old.json", flatBase)
	niu := writeFile(t, "new.json", splitNew(1200000, 1900000)) // fig3a -5%: inside 10%
	var out strings.Builder
	failed, err := run(old, niu, 0.10, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("unexpected failures %v\n%s", failed, out.String())
	}
	if !strings.Contains(out.String(), "not in baseline, skipped") {
		t.Errorf("fig6 (baseline-only miss) should be reported as skipped:\n%s", out.String())
	}
}

func TestRegressionFails(t *testing.T) {
	old := writeFile(t, "old.json", flatBase)
	niu := writeFile(t, "new.json", splitNew(1200000, 1700000)) // fig3a -15%
	var out strings.Builder
	failed, err := run(old, niu, 0.10, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != "fig3a" {
		t.Fatalf("want [fig3a] failed, got %v\n%s", failed, out.String())
	}
}

func TestAllowListExemptsExperiment(t *testing.T) {
	old := writeFile(t, "old.json", flatBase)
	niu := writeFile(t, "new.json", splitNew(1200000, 1700000))
	var out strings.Builder
	failed, err := run(old, niu, 0.10, parseAllow(" fig3a , "), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("allow-listed regression must not fail, got %v", failed)
	}
	if !strings.Contains(out.String(), "(allowed)") {
		t.Errorf("allowed regression should still be reported:\n%s", out.String())
	}
}

func TestBothSchemasLoad(t *testing.T) {
	// flat vs flat and split vs split must also work, not just mixed.
	flat := writeFile(t, "flat.json", flatBase)
	split := writeFile(t, "split.json", splitNew(1000000, 2000000))
	for _, tc := range [][2]string{{flat, flat}, {split, split}, {split, flat}} {
		var out strings.Builder
		if failed, err := run(tc[0], tc[1], 0.10, nil, &out); err != nil || len(failed) != 0 {
			t.Fatalf("run(%s, %s): failed=%v err=%v", tc[0], tc[1], failed, err)
		}
	}
}

func TestDisjointExperimentSetsError(t *testing.T) {
	old := writeFile(t, "old.json", flatBase)
	niu := writeFile(t, "new.json",
		`{"meta":{"timings":[{"experiment":"fig17","events_per_sec":1}]}}`)
	var out strings.Builder
	if _, err := run(old, niu, 0.10, nil, &out); err == nil {
		t.Fatal("disjoint experiment sets should be an error, not a silent pass")
	}
}

func TestEmptyTimingsError(t *testing.T) {
	path := writeFile(t, "empty.json", `{"payload":{}}`)
	if _, _, err := load(path); err == nil {
		t.Fatal("file with no timings should fail to load")
	}
}

func churnJSON(evps, flps float64) string {
	return fmt.Sprintf(`{"meta":{"timings":[
		{"experiment":"churn","events_per_sec":%g,"flows_per_sec":%g}]},"payload":{}}`, evps, flps)
}

func TestFlowsPerSecGated(t *testing.T) {
	// Events/sec holds steady but flow turnover collapses — a lifecycle
	// regression the events gate alone cannot see.
	old := writeFile(t, "old.json", churnJSON(1000000, 5000))
	niu := writeFile(t, "new.json", churnJSON(1000000, 4000)) // flows -20%
	var out strings.Builder
	failed, err := run(old, niu, 0.10, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != "churn" {
		t.Fatalf("want [churn] failed on flows/s, got %v\n%s", failed, out.String())
	}
	if !strings.Contains(out.String(), "flows/s") {
		t.Errorf("report should name the flows/s rate:\n%s", out.String())
	}
}

func TestFlowsPerSecSkippedWhenBaselineLacksIt(t *testing.T) {
	// An old baseline without flows_per_sec must not fail a new report that
	// has it (and vice versa).
	old := writeFile(t, "old.json", churnJSON(1000000, 0))
	niu := writeFile(t, "new.json", churnJSON(1000000, 4000))
	var out strings.Builder
	failed, err := run(old, niu, 0.10, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("missing baseline flows/s must not gate, got %v\n%s", failed, out.String())
	}
}
