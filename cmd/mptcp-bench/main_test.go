package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseLoads(t *testing.T) {
	got, err := parseLoads("0:0.15:4")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.05, 0.1, 0.15}
	if len(got) != len(want) {
		t.Fatalf("parseLoads(0:0.15:4) = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("parseLoads(0:0.15:4) = %v, want %v", got, want)
		}
	}
	if got, err := parseLoads("0.2"); err != nil || len(got) != 1 || got[0] != 0.2 {
		t.Errorf("parseLoads(0.2) = %v, %v", got, err)
	}
	if got, err := parseLoads("0, 0.1"); err != nil || len(got) != 2 || got[1] != 0.1 {
		t.Errorf("parseLoads(\"0, 0.1\") = %v, %v", got, err)
	}
	if got, err := parseLoads("0.3:0.3:1"); err != nil || len(got) != 1 || got[0] != 0.3 {
		t.Errorf("parseLoads(0.3:0.3:1) = %v, %v", got, err)
	}
	for _, bad := range []string{"1:0:5", "0:1:0", "0:1", "a,b", "0:1:2:3"} {
		if _, err := parseLoads(bad); err == nil {
			t.Errorf("parseLoads(%q) accepted", bad)
		}
	}
}

func TestSweepSpecFromFlags(t *testing.T) {
	sw, err := sweepSpecFromFlags("hybrid", "", "", "", 0.05, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Topologies) == 0 || len(sw.Algorithms) == 0 || len(sw.Loads) == 0 {
		t.Fatalf("defaults left an axis empty: %+v", sw)
	}
	for _, a := range sw.Algorithms {
		if a == "coupled" {
			t.Error("default algorithm set includes coupled; the calibration excluded it")
		}
	}
	sw, err = sweepSpecFromFlags("fluid", "twopath-sym", " ewtcp , dts ", "0:0.1:3", -1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(sw.Topologies, ",") != "twopath-sym" ||
		strings.Join(sw.Algorithms, ",") != "ewtcp,dts" ||
		len(sw.Loads) != 3 || sw.Backend != "fluid" || sw.SpotCheck != -1 || sw.Tol != 0.2 {
		t.Errorf("narrowed spec = %+v", sw)
	}
	if _, err := sweepSpecFromFlags("hybrid", "", "", "0:1:bad", 0.05, 0.1); err == nil {
		t.Error("bad -loads accepted")
	}
}

func TestRunRejectsSweepFlagMisuse(t *testing.T) {
	if err := run([]string{"-backend", "fluid"}); err == nil || !strings.Contains(err.Error(), "-backend requires -sweep") {
		t.Errorf("run(-backend without -sweep) = %v", err)
	}
	if err := run([]string{"-sweep", "-loads", "nope"}); err == nil {
		t.Error("run(-sweep -loads nope) accepted")
	}
	if err := run([]string{"-sweep", "-backend", "quantum", "-loads", "0"}); err == nil {
		t.Error("run(-sweep -backend quantum) accepted")
	}
}
