// Command mptcp-bench runs the paper-reproduction experiments and prints
// the rows each figure plots.
//
// Usage:
//
//	mptcp-bench [-exp figN[,figM...]] [-scale 0.3] [-seed 1] [-reps 0] [-full] [-j 8]
//	mptcp-bench -sweep [-backend hybrid] [-topos a,b] [-algs x,y] [-loads 0:0.15:28] [-spot-check 0.05] [-tol 0.10]
//	mptcp-bench -campaign DIR [-exp ...] [-sweep ...] [-seeds 1,2,3] [-scale ...] [-records] [-shard i/n]
//	mptcp-bench -resume DIR [-j 8] [-shard i/n]
//
// -list prints the experiment IDs and exits; -markdown wraps each printed
// table in a fenced block ready for EXPERIMENTS.md.
//
// -full sets scale to 1.0 (the published parameters); the default scale
// keeps the whole suite fast enough for a laptop. -j controls how many
// simulation runs execute concurrently (tables are byte-identical for any
// value). -cpuprofile/-memprofile write pprof profiles, and -json records
// per-experiment wall-clock and event throughput to BENCH_<timestamp>.json.
// -out DIR exports one machine-readable run record (JSONL + CSV, see
// internal/obsv and EXPERIMENTS.md) per simulation run; -sample-interval
// sets the record's sampling period in simulated time.
//
// -sweep fans a (topology × algorithm × load) grid through the backend
// engines (internal/backend, docs/backends.md) instead of the figure
// experiments. -backend picks the engine mix: "fluid" solves every point on
// the Eq. 3 model, "packet" runs every point on the discrete-event stack,
// and "hybrid" (the default) solves everything on the fluid engine and
// re-runs a deterministic seed-derived -spot-check fraction on the packet
// engine, comparing per-path shares within -tol. -topos/-algs narrow the
// grid (defaults: every registered topology, the calibrated algorithm
// set); -loads takes either a comma-separated list or lo:hi:n for n evenly
// spaced loads. A disagreeing spot check exits 3 naming the points. With
// -campaign, -sweep adds its grid to the campaign as journaled units — see
// EXPERIMENTS.md, "Hybrid sweeps"; without an explicit -exp the campaign is
// then sweep-only.
//
// -campaign expands the selected experiments × -seeds into a checkpointed
// campaign under DIR (see internal/campaign and EXPERIMENTS.md, "Resumable
// campaigns"): every completed unit is journaled, so a killed invocation
// continues with -resume DIR, re-running only unfinished units, and the
// merged results.txt / campaign.json are byte-identical to an uninterrupted
// run. -shard i/n restricts one process to its slice of the campaign so n
// processes (or CI jobs) can split the manifest; -records exports obsv run
// records under each unit directory.
//
// Every simulation run executes under a run supervisor (internal/supervise):
// a panicking or invariant-violating run is quarantined — its rows dropped,
// its identity noted on the table and in the -json report — instead of
// aborting the suite, and the whole invocation exits 3 when anything was
// quarantined. -timeout bounds each run's wall clock (0 = none).
//
// SIGINT/SIGTERM stop the invocation gracefully: in-flight simulation runs
// drain, writers and the campaign journal flush, and the process exits 4
// (supervise.ExitInterrupted) — in campaign mode the directory resumes
// exactly where it left off. A second signal kills immediately.
//
// -check runs the internal/check invariant checker on every simulation run
// (violations quarantine the failing run). -validate
// skips the experiments and instead runs the fluid-model conformance suite,
// printing the table compared against internal/check/testdata/
// conformance_golden.txt in CI; a non-OK row exits non-zero. See
// EXPERIMENTS.md, "Validation methodology".
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mptcpsim/internal/backend"
	"mptcpsim/internal/campaign"
	"mptcpsim/internal/check"
	"mptcpsim/internal/exp"
	"mptcpsim/internal/runner"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/supervise"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mptcp-bench:", err)
		var ec *supervise.ExitCodeError
		if errors.As(err, &ec) {
			os.Exit(ec.Code)
		}
		os.Exit(1)
	}
}

// signalContext cancels on the first SIGINT/SIGTERM so in-flight work
// drains; the AfterFunc restores default signal dispositions the moment the
// context dies, so a second signal kills the process immediately instead of
// waiting out the drain.
func signalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	context.AfterFunc(ctx, func() { stop() })
	return ctx, stop
}

// benchTiming is one experiment's wall-clock row — volatile by nature, so
// it lives in the report's meta section. FlowsPerSec appears only for
// experiments that churn a flow population (Result.Flows > 0).
type benchTiming struct {
	Experiment   string  `json:"experiment"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	FlowsPerSec  float64 `json:"flows_per_sec,omitempty"`
}

// benchMeta is the volatile half of the -json report: clocks, versions and
// machine facts that legitimately differ between two otherwise identical
// invocations. Diff tooling ignores this section.
type benchMeta struct {
	Timestamp    string        `json:"timestamp"`
	GoVersion    string        `json:"go_version"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Workers      int           `json:"workers"`
	TotalWallSec float64       `json:"total_wall_seconds"`
	Timings      []benchTiming `json:"timings"`
	// Interrupted: the suite was stopped by SIGINT/SIGTERM before finishing;
	// the payload covers only the experiments that completed.
	Interrupted bool `json:"interrupted,omitempty"`
}

// benchRecord is one experiment's row in the deterministic payload. Flows
// counts the offered flow population for churn-style experiments (0 and
// omitted elsewhere).
type benchRecord struct {
	Experiment string `json:"experiment"`
	Events     uint64 `json:"events"`
	Flows      uint64 `json:"flows,omitempty"`
}

// benchOutcomes mirrors supervise.Counts into the -json report.
type benchOutcomes struct {
	OK          int64 `json:"ok"`
	Retried     int64 `json:"retried"`
	Quarantined int64 `json:"quarantined"`
	TimedOut    int64 `json:"timed_out"`
	OverBudget  int64 `json:"over_budget"`
}

// benchPayload is the deterministic half of the -json report: everything in
// it derives from (scale, seed, reps, experiment set) alone, so two runs of
// the same commit with the same flags produce byte-identical payloads at
// any -j — `jq .payload` diffs cleanly across machines.
type benchPayload struct {
	Scale       float64       `json:"scale"`
	Seed        int64         `json:"seed"`
	Reps        int           `json:"reps"`
	Experiments []benchRecord `json:"experiments"`
	TotalEvents uint64        `json:"total_events"`
	// Outcomes counts every supervised simulation run across the suite;
	// Quarantined lists each failed run's identity and error.
	Outcomes    benchOutcomes `json:"outcomes"`
	Quarantined []string      `json:"quarantined,omitempty"`
}

// benchReport is the whole -json document, split so the volatile and
// deterministic parts diff independently.
type benchReport struct {
	Meta    benchMeta    `json:"meta"`
	Payload benchPayload `json:"payload"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("mptcp-bench", flag.ContinueOnError)
	var (
		expFlag     = fs.String("exp", "all", "comma-separated experiment IDs (see -list) or 'all'")
		scale       = fs.Float64("scale", 0.25, "scale factor in (0,1]: users, sizes and horizons")
		seed        = fs.Int64("seed", 1, "random seed")
		reps        = fs.Int("reps", 0, "override repetition count (0 = scaled default)")
		full        = fs.Bool("full", false, "run at the published scale (same as -scale 1)")
		list        = fs.Bool("list", false, "list experiment IDs and exit")
		markdown    = fs.Bool("markdown", false, "wrap each table in a fenced block for EXPERIMENTS.md")
		workers     = fs.Int("j", runner.DefaultWorkers(), "concurrent simulation runs (results are identical for any value)")
		cpuprofile  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
		jsonOut     = fs.Bool("json", false, "write per-experiment timing and event counts to BENCH_<timestamp>.json")
		outDir      = fs.String("out", "", "write one JSONL+CSV run record per (algorithm, scenario, seed) to this directory")
		sampleInt   = fs.Duration("sample-interval", 0, "run-record sampling period in simulated time (0 = 100ms)")
		checkInv    = fs.Bool("check", false, "run the invariant checker on every simulation run (violations quarantine the run)")
		validate    = fs.Bool("validate", false, "run the fluid-vs-packet conformance suite instead of experiments")
		timeout     = fs.Duration("timeout", 0, "per-run wall-clock deadline enforced by the run supervisor (0 = none)")
		campaignDir = fs.String("campaign", "", "start (or continue) a checkpointed campaign in this directory")
		resumeDir   = fs.String("resume", "", "resume an interrupted campaign from this directory (spec comes from its manifest)")
		seedsFlag   = fs.String("seeds", "", "campaign seed list, comma-separated (campaign mode only; default: -seed)")
		shardFlag   = fs.String("shard", "", "run only this slice of the campaign, as i/n (campaign mode only)")
		records     = fs.Bool("records", false, "export obsv run records under each campaign unit directory (campaign mode only)")
		sweepFlag   = fs.Bool("sweep", false, "run a (topology × algorithm × load) backend sweep instead of the figure experiments")
		backendName = fs.String("backend", "hybrid", "sweep engine mix: packet, fluid, or hybrid (fluid + packet spot checks)")
		toposFlag   = fs.String("topos", "", "sweep topologies, comma-separated (default: all registered)")
		algsFlag    = fs.String("algs", "", "sweep algorithms, comma-separated (default: the calibrated sweep set)")
		loadsFlag   = fs.String("loads", "", "sweep cross-load axis: lo:hi:n or a comma-separated list (default 0,0.05,0.1,0.15)")
		spotCheck   = fs.Float64("spot-check", 0.05, "fraction of hybrid sweep points re-run on the packet engine (negative disables)")
		tol         = fs.Float64("tol", 0.10, "maximum fluid-vs-packet share disagreement a spot check accepts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !*sweepFlag {
		for _, name := range []string{"backend", "topos", "algs", "loads", "spot-check", "tol"} {
			if explicit[name] {
				return fmt.Errorf("-%s requires -sweep", name)
			}
		}
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *validate {
		c, err := check.RunConformance(check.ConformanceConfig{Seed: *seed})
		if err != nil {
			return fmt.Errorf("conformance: %w", err)
		}
		fmt.Print(c.Format())
		if !c.OK() {
			return fmt.Errorf("conformance: packet-level behaviour disagrees with the fluid model (see rows above)")
		}
		return nil
	}
	if *full {
		*scale = 1
	}

	ctx, stop := signalContext()
	defer stop()

	if *campaignDir != "" || *resumeDir != "" {
		if *campaignDir != "" && *resumeDir != "" {
			return fmt.Errorf("-campaign and -resume are mutually exclusive")
		}
		shard, err := parseShard(*shardFlag)
		if err != nil {
			return err
		}
		seeds, err := parseSeeds(*seedsFlag)
		if err != nil {
			return err
		}
		if seeds == nil {
			seeds = []int64{*seed}
		}
		experiments := exp.IDs()
		if *expFlag != "all" {
			experiments = nil
			for _, id := range strings.Split(*expFlag, ",") {
				experiments = append(experiments, strings.TrimSpace(id))
			}
		}
		spec := campaign.Spec{
			Experiments: experiments, Seeds: seeds, Scale: *scale, Reps: *reps,
			Records: *records, Check: *checkInv,
		}
		if *sweepFlag {
			sw, err := sweepSpecFromFlags(*backendName, *toposFlag, *algsFlag, *loadsFlag, *spotCheck, *tol)
			if err != nil {
				return err
			}
			spec.Sweep = &sw
			// -sweep -campaign without an explicit -exp is a sweep-only
			// campaign; "all" is only the default for figure campaigns.
			if !explicit["exp"] {
				spec.Experiments = nil
			}
		}
		opt := campaign.Options{
			Workers: *workers, Shard: shard, Timeout: *timeout,
			SyncEvery: campaign.DefaultSyncEvery, SampleInterval: sim.Time(*sampleInt),
			Log: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
			},
		}
		return runCampaign(ctx, *campaignDir, *resumeDir, spec, opt)
	}
	if *seedsFlag != "" || *shardFlag != "" || *records {
		return fmt.Errorf("-seeds, -shard and -records require -campaign or -resume")
	}

	if *sweepFlag {
		sw, err := sweepSpecFromFlags(*backendName, *toposFlag, *algsFlag, *loadsFlag, *spotCheck, *tol)
		if err != nil {
			return err
		}
		sw.Seed = *seed
		sw.Workers = *workers
		res, err := backend.Sweep(ctx, sw)
		if err != nil {
			if ctx.Err() != nil {
				return &supervise.ExitCodeError{
					Code: supervise.ExitInterrupted,
					Msg:  "interrupted by signal before the sweep finished",
				}
			}
			return err
		}
		fmt.Print(res.Format())
		if !res.OK() {
			// Exit 3: the table above is complete, but the fluid answers at
			// the named points cannot be trusted.
			return &supervise.ExitCodeError{
				Code: supervise.ExitQuarantined,
				Msg: fmt.Sprintf("fluid/packet disagreement at %d of %d checked points: %s",
					len(res.Disagreements), res.Checked, strings.Join(res.Disagreements, "; ")),
			}
		}
		return nil
	}

	sup := supervise.New(supervise.Budget{Wall: *timeout})
	cfg := exp.Config{
		Seed: *seed, Scale: *scale, Reps: *reps, Workers: *workers,
		OutDir: *outDir, SampleInterval: sim.Time(*sampleInt), Check: *checkInv,
		Sup: sup, Ctx: ctx,
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	var selected []exp.Experiment
	if *expFlag == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := exp.Lookup(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(exp.IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}

	report := benchReport{
		Meta: benchMeta{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Workers:    *workers,
		},
		Payload: benchPayload{Scale: *scale, Seed: *seed, Reps: *reps},
	}
	interrupted := false
	suiteStart := time.Now()
	for _, e := range selected {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		start := time.Now()
		res := e.Run(cfg)
		wall := time.Since(start).Seconds()
		if res.Interrupted {
			// A partial figure is not a result: note the interruption and
			// keep it out of the payload entirely.
			interrupted = true
			fmt.Fprintf(os.Stderr, "interrupted during %s; its rows are discarded\n", e.ID)
			break
		}
		if *markdown {
			fmt.Printf("### %s — %s\n\n```\n%s```\n\n", res.ID, e.Title, res)
		} else {
			fmt.Println(res)
			fmt.Printf("(%s took %.1fs)\n\n", e.ID, wall)
		}
		t := benchTiming{Experiment: e.ID, WallSeconds: wall}
		if wall > 0 {
			t.EventsPerSec = float64(res.Events) / wall
			t.FlowsPerSec = float64(res.Flows) / wall
		}
		report.Meta.Timings = append(report.Meta.Timings, t)
		report.Payload.Experiments = append(report.Payload.Experiments, benchRecord{Experiment: e.ID, Events: res.Events, Flows: res.Flows})
		report.Payload.TotalEvents += res.Events
	}
	report.Meta.TotalWallSec = time.Since(suiteStart).Seconds()
	report.Meta.Interrupted = interrupted
	counts := sup.Counts()
	report.Payload.Outcomes = benchOutcomes{
		OK: counts.OK, Retried: counts.Retried, Quarantined: counts.Quarantined,
		TimedOut: counts.TimedOut, OverBudget: counts.OverBudget,
	}
	for _, f := range sup.Failures() {
		report.Payload.Quarantined = append(report.Payload.Quarantined, fmt.Sprintf("%s: %s: %s", f.ID, f.Kind, f.Msg))
	}
	fmt.Printf("outcomes: %s\n", counts)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}

	if *jsonOut {
		name := fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments, %.1fs, %d events)\n",
			name, len(report.Payload.Experiments), report.Meta.TotalWallSec, report.Payload.TotalEvents)
	}
	if interrupted {
		// Exit 4: stopped by signal after a clean drain — the printed tables
		// and any written report cover only completed experiments.
		return &supervise.ExitCodeError{
			Code: supervise.ExitInterrupted,
			Msg:  "interrupted by signal; completed experiments were flushed",
		}
	}
	if counts.Failed() > 0 {
		// Exit 3: the tables above are valid partial results, but at least
		// one supervised run was quarantined.
		return &supervise.ExitCodeError{
			Code: supervise.ExitQuarantined,
			Msg:  fmt.Sprintf("%d of %d supervised runs quarantined (see report)", counts.Failed(), counts.Total()),
		}
	}
	return nil
}

// runCampaign drives a checkpointed campaign (start or resume) and maps its
// summary onto the CLI exit-code contract: 4 when interrupted (resumable),
// 3 when finished with quarantined units, 0 when clean.
func runCampaign(ctx context.Context, startDir, resumeDir string, spec campaign.Spec, opt campaign.Options) error {
	var (
		sum *campaign.Summary
		dir string
		err error
	)
	if startDir != "" {
		dir = startDir
		sum, err = campaign.Start(ctx, dir, spec, opt)
	} else {
		dir = resumeDir
		sum, err = campaign.Resume(ctx, dir, opt)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign: %d units (%d reused, %d ran, %d quarantined, %d pending); supervised runs: %s\n",
		sum.Total, sum.Reused, sum.Ran, sum.Quarantined, sum.Pending, sum.Counts)
	if sum.Merged {
		results, rerr := os.ReadFile(filepath.Join(dir, "results.txt"))
		if rerr != nil {
			return rerr
		}
		os.Stdout.Write(results)
		fmt.Fprintf(os.Stderr, "campaign: merged %s and %s\n",
			filepath.Join(dir, "results.txt"), filepath.Join(dir, "campaign.json"))
	}
	if sum.Interrupted {
		return &supervise.ExitCodeError{
			Code: supervise.ExitInterrupted,
			Msg:  fmt.Sprintf("interrupted; continue with -resume %s", dir),
		}
	}
	if !sum.Merged {
		fmt.Fprintln(os.Stderr, "campaign: other shards still pending; the last shard to finish merges")
	}
	if sum.Quarantined > 0 {
		return &supervise.ExitCodeError{
			Code: supervise.ExitQuarantined,
			Msg:  fmt.Sprintf("%d of %d units quarantined (see results)", sum.Quarantined, sum.Total),
		}
	}
	return nil
}

// parseShard parses "i/n" into a Shard.
func parseShard(s string) (campaign.Shard, error) {
	if s == "" {
		return campaign.Shard{}, nil
	}
	var i, n int
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil || n <= 0 || i < 0 || i >= n {
		return campaign.Shard{}, fmt.Errorf("bad -shard %q (want i/n with 0 <= i < n)", s)
	}
	return campaign.Shard{Index: i, Count: n}, nil
}

// sweepSpecFromFlags builds the sweep grid from the CLI axes, starting from
// the calibrated defaults (backend.DefaultSweepSpec) and narrowing whatever
// the user pinned. Seed and Workers stay zero here: the standalone path
// fills them from -seed/-j, the campaign path from its own manifest.
func sweepSpecFromFlags(backendName, topos, algs, loads string, spotCheck, tol float64) (backend.SweepSpec, error) {
	sw := backend.DefaultSweepSpec()
	sw.Seed = 0
	sw.Backend = backendName
	sw.SpotCheck = spotCheck
	sw.Tol = tol
	if topos != "" {
		sw.Topologies = splitList(topos)
	}
	if algs != "" {
		sw.Algorithms = splitList(algs)
	}
	if loads != "" {
		parsed, err := parseLoads(loads)
		if err != nil {
			return backend.SweepSpec{}, err
		}
		sw.Loads = parsed
	}
	return sw, nil
}

// parseLoads parses the -loads axis: "lo:hi:n" expands to n evenly spaced
// values (endpoints included), anything else is a comma-separated list.
func parseLoads(s string) ([]float64, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -loads %q (want lo:hi:n or a comma-separated list)", s)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		n, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || n < 1 || hi < lo {
			return nil, fmt.Errorf("bad -loads %q (want lo:hi:n with hi >= lo and n >= 1)", s)
		}
		if n == 1 {
			return []float64{lo}, nil
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		return out, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -loads entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// splitList splits a comma-separated flag value, trimming whitespace.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

// parseSeeds parses a comma-separated seed list.
func parseSeeds(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
