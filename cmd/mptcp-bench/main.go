// Command mptcp-bench runs the paper-reproduction experiments and prints
// the rows each figure plots.
//
// Usage:
//
//	mptcp-bench [-exp figN[,figM...]] [-scale 0.3] [-seed 1] [-reps 0] [-full] [-j 8]
//
// -full sets scale to 1.0 (the published parameters); the default scale
// keeps the whole suite fast enough for a laptop. -j controls how many
// simulation runs execute concurrently (tables are byte-identical for any
// value). -cpuprofile/-memprofile write pprof profiles, and -json records
// per-experiment wall-clock and event throughput to BENCH_<timestamp>.json.
// -out DIR exports one machine-readable run record (JSONL + CSV, see
// internal/obsv and EXPERIMENTS.md) per simulation run; -sample-interval
// sets the record's sampling period in simulated time.
//
// Every simulation run executes under a run supervisor (internal/supervise):
// a panicking or invariant-violating run is quarantined — its rows dropped,
// its identity noted on the table and in the -json report — instead of
// aborting the suite, and the whole invocation exits 3 when anything was
// quarantined. -timeout bounds each run's wall clock (0 = none).
//
// -check runs the internal/check invariant checker on every simulation run
// (violations quarantine the failing run). -validate
// skips the experiments and instead runs the fluid-model conformance suite,
// printing the table compared against internal/check/testdata/
// conformance_golden.txt in CI; a non-OK row exits non-zero. See
// EXPERIMENTS.md, "Validation methodology".
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mptcpsim/internal/check"
	"mptcpsim/internal/exp"
	"mptcpsim/internal/runner"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/supervise"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mptcp-bench:", err)
		var ec *supervise.ExitCodeError
		if errors.As(err, &ec) {
			os.Exit(ec.Code)
		}
		os.Exit(1)
	}
}

// benchRecord is one experiment's row in the -json report.
type benchRecord struct {
	Experiment   string  `json:"experiment"`
	WallSeconds  float64 `json:"wall_seconds"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// benchOutcomes mirrors supervise.Counts into the -json report.
type benchOutcomes struct {
	OK          int64 `json:"ok"`
	Retried     int64 `json:"retried"`
	Quarantined int64 `json:"quarantined"`
	TimedOut    int64 `json:"timed_out"`
	OverBudget  int64 `json:"over_budget"`
}

// benchReport is the whole -json document, with enough metadata to compare
// reports across machines and commits.
type benchReport struct {
	Timestamp    string        `json:"timestamp"`
	GoVersion    string        `json:"go_version"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Workers      int           `json:"workers"`
	Scale        float64       `json:"scale"`
	Seed         int64         `json:"seed"`
	Reps         int           `json:"reps"`
	Experiments  []benchRecord `json:"experiments"`
	TotalWallSec float64       `json:"total_wall_seconds"`
	TotalEvents  uint64        `json:"total_events"`
	// Outcomes counts every supervised simulation run across the suite;
	// Quarantined lists each failed run's identity and error.
	Outcomes    benchOutcomes `json:"outcomes"`
	Quarantined []string      `json:"quarantined,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("mptcp-bench", flag.ContinueOnError)
	var (
		expFlag    = fs.String("exp", "all", "comma-separated experiment IDs (see -list) or 'all'")
		scale      = fs.Float64("scale", 0.25, "scale factor in (0,1]: users, sizes and horizons")
		seed       = fs.Int64("seed", 1, "random seed")
		reps       = fs.Int("reps", 0, "override repetition count (0 = scaled default)")
		full       = fs.Bool("full", false, "run at the published scale (same as -scale 1)")
		list       = fs.Bool("list", false, "list experiment IDs and exit")
		markdown   = fs.Bool("markdown", false, "wrap each table in a fenced block for EXPERIMENTS.md")
		workers    = fs.Int("j", runner.DefaultWorkers(), "concurrent simulation runs (results are identical for any value)")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
		jsonOut    = fs.Bool("json", false, "write per-experiment timing and event counts to BENCH_<timestamp>.json")
		outDir     = fs.String("out", "", "write one JSONL+CSV run record per (algorithm, scenario, seed) to this directory")
		sampleInt  = fs.Duration("sample-interval", 0, "run-record sampling period in simulated time (0 = 100ms)")
		checkInv   = fs.Bool("check", false, "run the invariant checker on every simulation run (violations quarantine the run)")
		validate   = fs.Bool("validate", false, "run the fluid-vs-packet conformance suite instead of experiments")
		timeout    = fs.Duration("timeout", 0, "per-run wall-clock deadline enforced by the run supervisor (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *validate {
		c, err := check.RunConformance(check.ConformanceConfig{Seed: *seed})
		if err != nil {
			return fmt.Errorf("conformance: %w", err)
		}
		fmt.Print(c.Format())
		if !c.OK() {
			return fmt.Errorf("conformance: packet-level behaviour disagrees with the fluid model (see rows above)")
		}
		return nil
	}
	if *full {
		*scale = 1
	}
	sup := supervise.New(supervise.Budget{Wall: *timeout})
	cfg := exp.Config{
		Seed: *seed, Scale: *scale, Reps: *reps, Workers: *workers,
		OutDir: *outDir, SampleInterval: sim.Time(*sampleInt), Check: *checkInv,
		Sup: sup,
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	var selected []exp.Experiment
	if *expFlag == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := exp.Lookup(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(exp.IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}

	report := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		Scale:      *scale,
		Seed:       *seed,
		Reps:       *reps,
	}
	suiteStart := time.Now()
	for _, e := range selected {
		start := time.Now()
		res := e.Run(cfg)
		wall := time.Since(start).Seconds()
		if *markdown {
			fmt.Printf("### %s — %s\n\n```\n%s```\n\n", res.ID, e.Title, res)
		} else {
			fmt.Println(res)
			fmt.Printf("(%s took %.1fs)\n\n", e.ID, wall)
		}
		rec := benchRecord{Experiment: e.ID, WallSeconds: wall, Events: res.Events}
		if wall > 0 {
			rec.EventsPerSec = float64(res.Events) / wall
		}
		report.Experiments = append(report.Experiments, rec)
		report.TotalEvents += res.Events
	}
	report.TotalWallSec = time.Since(suiteStart).Seconds()
	counts := sup.Counts()
	report.Outcomes = benchOutcomes{
		OK: counts.OK, Retried: counts.Retried, Quarantined: counts.Quarantined,
		TimedOut: counts.TimedOut, OverBudget: counts.OverBudget,
	}
	for _, f := range sup.Failures() {
		report.Quarantined = append(report.Quarantined, fmt.Sprintf("%s: %s: %s", f.ID, f.Kind, f.Msg))
	}
	fmt.Printf("outcomes: %s\n", counts)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}

	if *jsonOut {
		name := fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments, %.1fs, %d events)\n",
			name, len(report.Experiments), report.TotalWallSec, report.TotalEvents)
	}
	if counts.Failed() > 0 {
		// Exit 3: the tables above are valid partial results, but at least
		// one supervised run was quarantined.
		return &supervise.ExitCodeError{
			Code: supervise.ExitQuarantined,
			Msg:  fmt.Sprintf("%d of %d supervised runs quarantined (see report)", counts.Failed(), counts.Total()),
		}
	}
	return nil
}
