// Command mptcp-bench runs the paper-reproduction experiments and prints
// the rows each figure plots.
//
// Usage:
//
//	mptcp-bench [-exp figN[,figM...]] [-scale 0.3] [-seed 1] [-reps 0] [-full]
//
// -full sets scale to 1.0 (the published parameters); the default scale
// keeps the whole suite fast enough for a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mptcpsim/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mptcp-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mptcp-bench", flag.ContinueOnError)
	var (
		expFlag  = fs.String("exp", "all", "comma-separated experiment IDs (see -list) or 'all'")
		scale    = fs.Float64("scale", 0.25, "scale factor in (0,1]: users, sizes and horizons")
		seed     = fs.Int64("seed", 1, "random seed")
		reps     = fs.Int("reps", 0, "override repetition count (0 = scaled default)")
		full     = fs.Bool("full", false, "run at the published scale (same as -scale 1)")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		markdown = fs.Bool("markdown", false, "wrap each table in a fenced block for EXPERIMENTS.md")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *full {
		*scale = 1
	}
	cfg := exp.Config{Seed: *seed, Scale: *scale, Reps: *reps}

	var selected []exp.Experiment
	if *expFlag == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := exp.Lookup(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(exp.IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		start := time.Now()
		res := e.Run(cfg)
		if *markdown {
			fmt.Printf("### %s — %s\n\n```\n%s```\n\n", res.ID, e.Title, res)
		} else {
			fmt.Println(res)
			fmt.Printf("(%s took %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}
	return nil
}
