// Command algocompare runs the Fig. 5a / Fig. 6 scenario at example scale: N MPTCP
// users and 2N TCP users share two bottlenecks; each MPTCP user moves
// 16 MB and we compare the per-user energy distribution across the four
// TCP-friendly coupled algorithms.
//
//	go run ./examples/algocompare
package main

import (
	"fmt"
	"log"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/stats"
	"mptcpsim/internal/topo"
)

const (
	users    = 8
	transfer = 16 << 20
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("%d MPTCP users (16 MB each) + %d TCP users, two 100 Mb/s bottlenecks\n", users, 2*users)
	fmt.Printf("%-8s %10s %10s %10s %10s %10s\n", "alg", "min_j", "q1_j", "median_j", "q3_j", "max_j")
	for _, alg := range []string{"lia", "olia", "balia", "ecmtcp", "dts"} {
		joules, err := one(alg)
		if err != nil {
			return err
		}
		b := stats.NewBox(joules)
		fmt.Printf("%-8s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			alg, b.Min, b.Q1, b.Median, b.Q3, b.Max)
	}
	return nil
}

func one(alg string) ([]float64, error) {
	eng := sim.NewEngine(11)
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{Users: 3 * users})

	remaining := users
	meters := make([]*energy.Meter, users)
	for u := 0; u < users; u++ {
		u := u
		conn, err := mptcp.New(eng,
			mptcp.Config{Algorithm: alg, TransferBytes: transfer},
			uint64(u+1), d.MPTCPPaths(u)...)
		if err != nil {
			return nil, err
		}
		meters[u] = energy.NewMeter(eng, energy.NewI7(), energy.ConnProbe(conn), 0)
		meters[u].Start()
		conn.OnComplete = func(sim.Time) {
			meters[u].Stop()
			if remaining--; remaining == 0 {
				eng.Stop()
			}
		}
		conn.Start()
	}
	for u := 0; u < users; u++ {
		for b := 0; b < 2; b++ {
			bg, err := mptcp.New(eng, mptcp.Config{Algorithm: "reno"},
				uint64(1000+2*u+b), d.TCPPath((b+1)*users+u, b))
			if err != nil {
				return nil, err
			}
			bg.Start()
		}
	}
	eng.Run(300 * sim.Second)

	out := make([]float64, users)
	for u, m := range meters {
		out[u] = m.Joules()
	}
	return out, nil
}
