// Command hetwireless reproduces the paper's Fig. 17 scenario interactively: a
// handset with a WiFi and a 4G interface transfers data under bursty cross
// traffic, comparing LIA against the paper's DTS for handset energy.
//
//	go run ./examples/hetwireless
package main

import (
	"fmt"
	"log"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("WiFi 10 Mb/s / 40 ms + 4G 20 Mb/s / 100 ms, bursty cross traffic, 120 s")
	fmt.Printf("%-6s %14s %12s %12s\n", "alg", "goodput_mbps", "energy_j", "j_per_gbit")
	for _, alg := range []string{"lia", "dts", "dtsep"} {
		tput, joules, err := one(alg)
		if err != nil {
			return err
		}
		gbits := tput * 120 / 1e9
		fmt.Printf("%-6s %14.2f %12.1f %12.1f\n", alg, tput/1e6, joules, joules/gbits)
	}
	return nil
}

func one(alg string) (tputBps, joules float64, err error) {
	eng := sim.NewEngine(7)
	het := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
	if alg == "dtsep" {
		// Price the energy-hungry 4G hop for the compensative term (Eq. 9).
		for _, l := range het.Paths()[1].Forward {
			l.SetPrice(2.0, 0.1, 12)
		}
	}

	// Bursty cross traffic on both radio links (Pareto bursts).
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(0)},
		workload.ParetoConfig{RateBps: 8 * netem.Mbps}).Start()
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(1)},
		workload.ParetoConfig{RateBps: 16 * netem.Mbps}).Start()

	conn, err := mptcp.New(eng, mptcp.Config{
		Algorithm:    alg,
		RwndSegments: 45, // the paper's 64 KB receive buffer
	}, 1, het.Paths()...)
	if err != nil {
		return 0, 0, err
	}

	// Handset energy: SoC plus both radios, with per-radio throughput.
	nexus := energy.NewNexus()
	var (
		lastWiFi, lastLTE int64
		joulesAcc         float64
		lastT             sim.Time
	)
	var tick func()
	tick = func() {
		now := eng.Now()
		dt := now - lastT
		lastT = now
		subs := conn.Subflows()
		dWiFi := subs[0].Acked() - lastWiFi
		dLTE := subs[1].Acked() - lastLTE
		lastWiFi, lastLTE = subs[0].Acked(), subs[1].Acked()
		wifi := energy.Sample{ThroughputBps: float64(dWiFi) * 1448 * 8 / dt.Seconds(), Subflows: 1}
		lte := energy.Sample{ThroughputBps: float64(dLTE) * 1448 * 8 / dt.Seconds(), Subflows: 1}
		joulesAcc += nexus.PowerSplit(wifi, lte) * dt.Seconds()
		eng.After(energy.DefaultInterval, tick)
	}
	eng.After(energy.DefaultInterval, tick)

	conn.Start()
	eng.Run(120 * sim.Second)
	return conn.MeanThroughputBps(), joulesAcc, nil
}
