// Command datacenter runs permutation traffic on a FatTree and shows how MPTCP's
// subflow count changes utilization and energy overhead (the Fig. 12-14
// experiment at example scale).
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("FatTree(k=4), 16 hosts, permutation traffic, LIA, 20 s")
	fmt.Printf("%-9s %16s %12s %12s\n", "subflows", "agg_goodput_mbps", "energy_j", "j_per_gbit")
	for _, nsub := range []int{1, 2, 4, 8} {
		if err := one(nsub); err != nil {
			return err
		}
	}
	return nil
}

func one(nsub int) error {
	eng := sim.NewEngine(3)
	ft, err := topo.NewFatTree(eng, topo.FatTreeConfig{K: 4})
	if err != nil {
		return err
	}
	perm := workload.Permutation(eng, ft.Hosts())

	var (
		conns  []*mptcp.Conn
		meters []*energy.Meter
	)
	for h := 0; h < ft.Hosts(); h++ {
		conn, err := mptcp.New(eng, mptcp.Config{Algorithm: "lia"},
			uint64(h+1), ft.Paths(h, perm[h], nsub)...)
		if err != nil {
			return err
		}
		m := energy.NewMeter(eng, energy.NewI7(), energy.ConnProbe(conn), 0)
		m.Start()
		conns = append(conns, conn)
		meters = append(meters, m)
		conn.Start()
	}

	const horizon = 20 * sim.Second
	eng.Run(horizon)

	var joules float64
	var bytes uint64
	for i, c := range conns {
		joules += meters[i].Joules()
		bytes += c.AckedBytes()
	}
	agg := float64(bytes) * 8 / horizon.Seconds()
	fmt.Printf("%-9d %16.0f %12.0f %12.1f\n",
		nsub, agg/1e6, joules, energy.PerGigabit(joules, bytes))
	return nil
}
