// Command streaming exercises the paper's future-work scenario: a live media
// session over WiFi+4G MPTCP under bursty cross traffic, comparing
// congestion-control algorithms on playback smoothness and handset
// energy per media-second.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"mptcpsim/internal/app"
	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("8 Mb/s live stream over WiFi+4G, bursty cross traffic, 180 s")
	fmt.Printf("%-8s %9s %10s %12s %12s %14s\n",
		"alg", "startup", "rebuffers", "stall_ratio", "played_s", "j_per_media_s")
	for _, alg := range []string{"lia", "dts", "dts-lia"} {
		if err := one(alg); err != nil {
			return err
		}
	}
	return nil
}

func one(alg string) error {
	eng := sim.NewEngine(9)
	het := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(0)},
		workload.ParetoConfig{RateBps: 8 * netem.Mbps}).Start()
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(1)},
		workload.ParetoConfig{RateBps: 16 * netem.Mbps}).Start()

	conn, err := mptcp.New(eng, mptcp.Config{
		Algorithm:    alg,
		AppLimited:   true,
		RwndSegments: 45,
	}, 1, het.Paths()...)
	if err != nil {
		return err
	}
	stream := app.NewStream(eng, conn, app.StreamConfig{BitrateBps: 8_000_000})
	meter := energy.NewMeter(eng, energy.NewNexus(), energy.ConnProbe(conn), 0)
	meter.Start()

	stream.Start()
	eng.Run(180 * sim.Second)

	perMediaSec := 0.0
	if stream.PlayedSeconds() > 0 {
		perMediaSec = meter.Joules() / stream.PlayedSeconds()
	}
	fmt.Printf("%-8s %8.1fs %10d %12.2f %12.1f %14.2f\n",
		alg, stream.StartupDelay().Seconds(), stream.Rebuffers(),
		stream.RebufferRatio(), stream.PlayedSeconds(), perMediaSec)
	return nil
}
