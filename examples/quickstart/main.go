// Command quickstart builds a two-path network, runs an MPTCP transfer under the
// paper's DTS congestion control, and reports throughput and sender energy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One engine per simulation run; the seed makes the run reproducible.
	eng := sim.NewEngine(42)

	// Two disjoint paths: a fast low-delay one and a slower high-delay one.
	fast := makePath(eng, "fast", 50*netem.Mbps, 10*sim.Millisecond)
	slow := makePath(eng, "slow", 20*netem.Mbps, 40*sim.Millisecond)

	// An MPTCP connection carrying a 64 MiB transfer under DTS.
	conn, err := mptcp.New(eng, mptcp.Config{
		Algorithm:     "dts",
		TransferBytes: 64 << 20,
	}, 1 /* flow id */, fast, slow)
	if err != nil {
		return err
	}

	// Meter the sender host with the paper's i7 CPU power model.
	meter := energy.NewMeter(eng, energy.NewI7(), energy.ConnProbe(conn), 0)
	meter.Start()

	conn.OnComplete = func(at sim.Time) {
		fmt.Printf("transfer complete at t=%.2fs\n", at.Seconds())
		meter.Stop()
		eng.Stop()
	}

	conn.Start()
	eng.Run(120 * sim.Second)

	if !conn.Done() {
		return fmt.Errorf("transfer did not complete (acked %d bytes)", conn.AckedBytes())
	}
	fmt.Printf("mean goodput: %.1f Mb/s\n", conn.MeanThroughputBps()/1e6)
	fmt.Printf("sender energy: %.1f J (mean %.1f W)\n", meter.Joules(), meter.MeanPower())
	for _, s := range conn.Subflows() {
		fmt.Printf("  subflow %d (%s): acked %d segments, srtt %v, %d loss events\n",
			s.ID(), s.Path().Name, s.Acked(), s.SRTT().Duration(), s.Stats().LossEvents)
	}
	return nil
}

func makePath(eng *sim.Engine, name string, rate int64, delay sim.Time) *netem.Path {
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: name + "-fwd", Rate: rate, Delay: delay, QueueLimit: 200})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "-rev", Rate: rate, Delay: delay, QueueLimit: 200})
	return &netem.Path{Name: name, Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
}
