#!/usr/bin/env bash
# Resume-smoke: interrupt a campaign mid-flight with SIGINT, resume it, and
# require the merged outputs to be byte-identical to an uninterrupted run —
# the kill/resume determinism guarantee, exercised through the real binary
# and the real signal path (the in-process twin is
# internal/campaign.TestKillResumeDeterminism).
set -euo pipefail

bin=${1:-./mptcp-bench}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

spec=(-exp fig1,fig4 -seeds 1,2,3 -scale 0.05)

# Reference: an uninterrupted campaign.
"$bin" -campaign "$work/ref" "${spec[@]}" -j 2 > /dev/null

# Interrupted: SIGINT after 1s. The graceful drain makes the process exit 4
# (supervise.ExitInterrupted, resumable); on a fast machine the campaign may
# win the race and finish cleanly, which is also fine.
rc=0
timeout --signal=INT --preserve-status 1 \
  "$bin" -campaign "$work/int" "${spec[@]}" -j 1 > /dev/null || rc=$?
if [ "$rc" != 4 ] && [ "$rc" != 0 ]; then
  echo "resume-smoke: interrupted invocation exited $rc, want 4 (resumable) or 0" >&2
  exit 1
fi

# Resume at a different worker count: neither the kill point nor -j may
# leak into the merged outputs.
"$bin" -resume "$work/int" -j 4 > /dev/null

diff "$work/ref/results.txt" "$work/int/results.txt"
diff "$work/ref/campaign.json" "$work/int/campaign.json"
echo "resume-smoke: OK (interrupted rc=$rc; merged outputs byte-identical)"
