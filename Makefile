GO ?= go

.PHONY: all build vet test race bench experiments full clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

# -short skips the heavyweight single-threaded figure runners in
# internal/exp (no goroutines there; under the race detector they take
# hours while exercising no concurrency).
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Refresh the recorded tables in EXPERIMENTS.md (scale 0.15, seed 1).
experiments:
	$(GO) run ./cmd/mptcp-bench -scale 0.15 -seed 1 -markdown | tee experiments_output.md

full:
	$(GO) run ./cmd/mptcp-bench -full

clean:
	rm -f test_output.txt bench_output.txt experiments_output.md
