GO ?= go

.PHONY: all build vet test bench experiments full clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Refresh the recorded tables in EXPERIMENTS.md (scale 0.15, seed 1).
experiments:
	$(GO) run ./cmd/mptcp-bench -scale 0.15 -seed 1 -markdown | tee experiments_output.md

full:
	$(GO) run ./cmd/mptcp-bench -full

clean:
	rm -f test_output.txt bench_output.txt experiments_output.md
