GO ?= go

.PHONY: all build vet test race bench bench-engine bench-diff experiments full validate sweep docs soak campaign resume-smoke churn-smoke clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

# -short skips the heaviest figure runners in internal/exp (hours under
# the race detector); the worker-pool and determinism-across-worker-count
# tests stay enabled so the concurrent paths are race-checked.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Engine microbenchmarks only: must report 0 allocs/op.
bench-engine:
	$(GO) test ./internal/sim/ -run '^$$' -bench Engine -benchtime 200ms

# Regression gate: compare a fresh BENCH JSON (BENCH=<file>) against the
# committed baseline, failing if any shared experiment's events/sec
# dropped more than 10%. BENCH_ALLOW exempts comma-separated experiments
# from the gate (still reported) for known, accepted slowdowns:
#   make bench-diff BENCH=BENCH_20260808T...json BENCH_ALLOW=fig6
BENCH_BASE ?= BENCH_seed.json
BENCH_ALLOW ?=
bench-diff:
	$(GO) run ./cmd/bench-diff -old $(BENCH_BASE) -new $(BENCH) -allow "$(BENCH_ALLOW)"

# Refresh the recorded tables in EXPERIMENTS.md (scale 0.15, seed 1).
experiments:
	$(GO) run ./cmd/mptcp-bench -scale 0.15 -seed 1 -markdown | tee experiments_output.md

full:
	$(GO) run ./cmd/mptcp-bench -full

# Fluid-vs-packet conformance for every algorithm (EXPERIMENTS.md,
# "Validation methodology"); CI diffs this against the committed golden.
validate:
	$(GO) run ./cmd/mptcp-bench -validate

# Hybrid fluid/packet sweep over the calibrated default grid
# (docs/backends.md): 1008 points solved on the fluid engine with a
# deterministic 5% packet spot check. Exit 3 names any disagreeing point.
sweep:
	$(GO) run ./cmd/mptcp-bench -sweep -loads 0:0.15:28

# Documentation gates (docs_test.go): package comments, package-map
# coverage, CLI flag docs, and markdown file references.
docs:
	$(GO) test -run 'TestPackageComments|TestPackageMapCoversEveryPackage|TestCLIFlagsDocumented|TestMarkdownFileReferencesResolve' .

# Bounded chaos soak (EXPERIMENTS.md, "Soak & quarantine methodology"):
# 60 generated scenarios under invariants and the run supervisor. Exit 3
# means failing scenarios were shrunk and quarantined into ./quarantine/;
# replay one with: go run ./cmd/mptcp-sim -replay quarantine/<file>.json
soak:
	$(GO) run ./cmd/mptcp-sim -soak 60 -seed 1 -soak-dir quarantine

# Checkpointed, resumable campaign of every figure across three seeds
# (EXPERIMENTS.md, "Resumable campaigns"). Kill it at any point — Ctrl-C,
# OOM, CI timeout — and continue with:
#   go run ./cmd/mptcp-bench -resume campaign_out
campaign:
	$(GO) run ./cmd/mptcp-bench -campaign campaign_out -scale 0.15 -seeds 1,2,3

# Kill/resume determinism through the real binary and the real signal path:
# SIGINT a campaign mid-flight, resume it, byte-diff the merged outputs
# against an uninterrupted run (scripts/resume_smoke.sh).
resume-smoke:
	$(GO) build -o mptcp-bench ./cmd/mptcp-bench
	./scripts/resume_smoke.sh ./mptcp-bench
	rm -f mptcp-bench

# Population-churn smoke (EXPERIMENTS.md, "Population workloads"): an
# open-loop and an overloaded run under the invariant checker; overload
# must degrade by deterministic shedding (exit 0), never by failure.
churn-smoke:
	$(GO) run ./cmd/mptcp-sim -topo fattree -alg lia -churn 2000 -check
	$(GO) run ./cmd/mptcp-sim -topo fattree -alg lia -churn 2000 -max-flows 120 -check

clean:
	rm -f test_output.txt bench_output.txt experiments_output.md mptcp-bench
	rm -rf quarantine campaign_out
