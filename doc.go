// Package mptcpsim is a from-scratch Go reproduction of "On
// Energy-Efficient Congestion Control for Multipath TCP" (Zhao, Liu &
// Wang, IEEE ICDCS 2017): a deterministic packet-level network simulator,
// a full MPTCP transport with pluggable coupled congestion control, the
// paper's Eq. 3 congestion-control model with all the algorithms it
// generalizes, calibrated host/radio energy models, the evaluation
// topologies (two-bottleneck sharing, two-path shifting, EC2 VPC, FatTree,
// VL2, BCube, heterogeneous wireless), and a harness that regenerates
// every figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The runnable entry points
// are cmd/mptcp-bench (the experiment harness), cmd/mptcp-sim (ad-hoc
// scenarios) and the programs under examples/.
package mptcpsim
