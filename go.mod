module mptcpsim

go 1.22
