// Package obsv is the structured observability layer: it turns one
// simulation run into a machine-readable run record that downstream tooling
// (plotting, regression diffing, trajectory analysis) can consume, instead
// of the ASCII tables the experiment harness renders for humans.
//
// A Recorder attaches engine-driven samplers to a run — per-subflow cwnd,
// SRTT, inflight and loss counters, the congestion-control algorithm's
// introspected internals (ψ_r/ε_r for DTS), per-connection goodput and
// re-injections, per-host watts from the energy meter — plus the failover
// transitions each subflow records, and serializes the whole thing as JSONL
// (one sample per line, streamed, bounded memory) and CSV.
//
// The record format is line-oriented JSON with a `type` discriminator:
//
//	{"type":"meta", ...}     exactly once, first line: run identity
//	{"type":"sample", ...}   one per sampling tick: t_s plus a value map
//	{"type":"event", ...}    labelled instants (failover transitions)
//	{"type":"flow", ...}     one per finished flow: FCT/goodput/energy outcome
//	{"type":"summary", ...}  exactly once, last line: scalar outcomes
//
// Records are deterministic: value maps serialize with sorted keys, sample
// cadence is driven by the simulation clock, and nothing wall-clock-derived
// is ever written, so the same seeded run produces byte-identical records
// regardless of how many runs execute concurrently around it.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"mptcpsim/internal/sim"
)

// SchemaVersion identifies the record layout. Bump it when line shapes or
// field meanings change; the golden-record CI check pins the current value.
// v2 added the per-flow "flow" line for population-scale churn runs.
const SchemaVersion = 2

// Meta identifies one run. It is written as the record's first line.
type Meta struct {
	// Experiment is the figure or tool that produced the run (e.g. "fig9",
	// "mptcp-sim").
	Experiment string `json:"experiment"`
	// Scenario names the topology/variant within the experiment
	// (e.g. "twopath", "wired-600mbps").
	Scenario string `json:"scenario"`
	// Algorithm is the congestion-control algorithm under test.
	Algorithm string `json:"algorithm"`
	// Seed is the engine seed that reproduces the run.
	Seed int64 `json:"seed"`
	// Scale is the experiment scale knob (0 when not applicable).
	Scale float64 `json:"scale,omitempty"`
	// Config carries any further scenario knobs worth reproducing.
	Config map[string]string `json:"config,omitempty"`
}

// metaLine is the serialized form of Meta plus schema bookkeeping.
type metaLine struct {
	Type   string `json:"type"`
	Schema int    `json:"schema"`
	Meta
	SampleIntervalS float64  `json:"sample_interval_s"`
	Series          []string `json:"series"`
}

// sampleLine is one sampling tick: every registered series evaluated at t.
type sampleLine struct {
	Type string             `json:"type"`
	T    float64            `json:"t_s"`
	V    map[string]float64 `json:"v"`
}

// eventLine is one labelled instant (e.g. a subflow failover transition).
type eventLine struct {
	Type  string  `json:"type"`
	T     float64 `json:"t_s"`
	Label string  `json:"label"`
}

// Flow is one flow's lifecycle outcome in a population run: streamed as a
// bounded per-flow summary line the instant the outcome is decided, never
// retained by the Recorder (a 50k-flow run must not hold 50k rows).
type Flow struct {
	// T is the instant the outcome was decided, in seconds.
	T float64 `json:"t_s"`
	// ID is the flow's identifier within the run.
	ID uint64 `json:"id"`
	// Class is the workload class ("web", "bulk", "stream").
	Class string `json:"class"`
	// Bytes delivered (or requested, for flows shed at admission).
	Bytes uint64 `json:"bytes"`
	// FCTSeconds is the flow completion time (time alive, for cut flows).
	FCTSeconds float64 `json:"fct_s"`
	// GoodputBps is the delivered goodput over the flow's lifetime.
	GoodputBps float64 `json:"goodput_bps"`
	// Joules is the flow's attributable energy.
	Joules float64 `json:"joules"`
	// Subflows the flow ran with (0 for shed flows).
	Subflows int `json:"subflows"`
	// Shed is empty for completed flows, "capacity" for admission drops,
	// "horizon" for flows cut alive at the end of the run.
	Shed string `json:"shed,omitempty"`
}

// flowLine is the serialized form of Flow with its type discriminator.
type flowLine struct {
	Type string `json:"type"`
	Flow
}

// summaryLine closes the record with scalar outcomes.
type summaryLine struct {
	Type string             `json:"type"`
	V    map[string]float64 `json:"v"`
}

// sanitize maps NaN and ±Inf to 0: they cannot appear in JSON and a sampler
// hitting a 0/0 transient must not abort the whole record.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, 'f' format unless the magnitude calls for
// scientific notation (< 1e-6 or >= 1e21), with Go's two-digit negative
// exponents shortened ("e-09" → "e-9"). Keeping these bytes identical to
// json.Marshal is what lets the hot-path sample encoder replace it without
// perturbing golden records. f must be finite (sanitize first).
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendSampleLine appends one sample tick in the schema-v1 line format,
// byte-identical to json.Marshal(sampleLine{...}) plus the trailing newline:
// field order type,t_s,v and the value map with lexicographically sorted
// keys. keys holds the pre-encoded (quoted, escaped, colon-terminated) key
// bytes in sorted order; order maps each key to its series index in vals.
func appendSampleLine(buf []byte, t float64, keys [][]byte, order []int, vals []float64) []byte {
	buf = append(buf, `{"type":"sample","t_s":`...)
	buf = appendJSONFloat(buf, t)
	buf = append(buf, `,"v":{`...)
	for j, idx := range order {
		if j > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, keys[j]...)
		buf = appendJSONFloat(buf, vals[idx])
	}
	return append(buf, '}', '}', '\n')
}

// writeLine marshals v and appends it with a trailing newline.
func writeLine(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("obsv: marshal record line: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Row is one retained sample: the instant plus the value of every series,
// in series registration order.
type Row struct {
	T sim.Time
	V []float64
}

// WriteCSV renders retained rows as CSV: a t_s column followed by one
// column per series, one row per sampling tick. Values print in Go's
// shortest-round-trip float format, so the output is deterministic.
func WriteCSV(w io.Writer, series []string, rows []Row) error {
	if _, err := io.WriteString(w, "t_s"); err != nil {
		return err
	}
	for _, name := range series {
		if _, err := io.WriteString(w, ","+name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "%v", row.T.Seconds()); err != nil {
			return err
		}
		for _, v := range row.V {
			if _, err := fmt.Fprintf(w, ",%v", v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
