package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mptcpsim/internal/core"
	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/trace"
)

// DefaultInterval is the sampling period when Options.Interval is zero:
// 100 ms of simulated time, ten subflow samples per second — the cadence
// the paper's time-series figures (Fig. 5, Fig. 8) plot at.
const DefaultInterval = 100 * sim.Millisecond

// Options configures a Recorder.
type Options struct {
	// Interval is the sampling period (0 takes DefaultInterval).
	Interval sim.Time
	// Stream, when set, receives the JSONL record as the run progresses:
	// the meta line at Start, one sample line per tick, and the event and
	// summary lines at Close. Streaming keeps memory bounded.
	Stream io.Writer
	// Retain keeps every sample row in memory (Rows) so the record can be
	// exported as CSV or inspected programmatically after the run. Leave it
	// false for long runs where the JSONL stream is the only consumer.
	Retain bool
}

// Recorder samples registered observables on a fixed simulated-time cadence
// and assembles the run record. Register samplers before Start; the first
// sample is taken one interval after Start.
type Recorder struct {
	eng  *sim.Engine
	meta Meta
	opt  Options

	names    []string
	samplers []func() float64

	timelines []watchedTimeline
	summary   map[string]float64

	rows    []Row
	started bool
	closed  bool
	err     error
	tickFn  func()

	// Hot-path buffers, built once at Start so the steady-state tick
	// allocates nothing: the sampler scratch row, the JSONL line buffer,
	// and the sample line's value keys pre-sorted and pre-encoded
	// (quoted, escaped, colon-terminated) with their series indices.
	vals     []float64
	buf      []byte
	keyOrder []int
	keyJSON  [][]byte
}

// watchedTimeline is a Timeline whose events are folded into the record at
// Close, each label prefixed (e.g. "sub1.dead").
type watchedTimeline struct {
	prefix string
	tl     *trace.Timeline
}

// NewRecorder creates a recorder for one run on eng.
func NewRecorder(eng *sim.Engine, meta Meta, opt Options) *Recorder {
	if opt.Interval <= 0 {
		opt.Interval = DefaultInterval
	}
	r := &Recorder{eng: eng, meta: meta, opt: opt, summary: make(map[string]float64)}
	r.tickFn = r.tick
	return r
}

// Interval returns the sampling period.
func (r *Recorder) Interval() sim.Time { return r.opt.Interval }

// Err returns the first stream-write error, if any.
func (r *Recorder) Err() error { return r.err }

// Series returns the registered series names in registration order.
func (r *Recorder) Series() []string { return r.names }

// Rows returns the retained sample rows (empty unless Options.Retain).
func (r *Recorder) Rows() []Row { return r.rows }

// AddSampler registers a named series sampled every tick. It panics after
// Start: the series set is part of the record header.
func (r *Recorder) AddSampler(name string, fn func() float64) {
	if r.started {
		panic("obsv: AddSampler after Start")
	}
	r.names = append(r.names, name)
	r.samplers = append(r.samplers, fn)
}

// AddTimeline registers a timeline whose events are written to the record
// at Close, labels prefixed with prefix.
func (r *Recorder) AddTimeline(prefix string, tl *trace.Timeline) {
	r.timelines = append(r.timelines, watchedTimeline{prefix: prefix, tl: tl})
}

// SetSummary records one scalar outcome for the closing summary line.
// Calling it again with the same name overwrites.
func (r *Recorder) SetSummary(name string, v float64) {
	r.summary[name] = sanitize(v)
}

// WatchConn registers the standard per-connection and per-subflow series
// for conn, all names prefixed with prefix (use "" for a single-connection
// run): goodput, re-injections, and for each subflow cwnd, SRTT, inflight
// and the cumulative loss/RTO counters. When the connection's algorithm
// implements core.Introspector its internal components (e.g. DTS's ε_r and
// ψ_r) are sampled per subflow as well. Subflow failover transitions are
// folded in as events automatically.
func (r *Recorder) WatchConn(prefix string, conn *mptcp.Conn) {
	var lastBytes uint64
	interval := r.opt.Interval.Seconds()
	r.AddSampler(prefix+"conn.goodput_mbps", func() float64 {
		acked := conn.AckedBytes()
		delta := acked - lastBytes
		lastBytes = acked
		return float64(delta) * 8 / interval / 1e6
	})
	r.AddSampler(prefix+"conn.acked_mb", func() float64 {
		return float64(conn.AckedBytes()) / 1e6
	})
	r.AddSampler(prefix+"conn.reinjected_segs", func() float64 {
		return float64(conn.ReinjectedSegs())
	})

	intr, _ := conn.Alg().(core.Introspector)
	for i, s := range conn.Subflows() {
		i, s := i, s
		sub := fmt.Sprintf("%ssub%d.", prefix, i)
		r.AddSampler(sub+"cwnd", func() float64 { return s.Cwnd() })
		r.AddSampler(sub+"srtt_ms", func() float64 { return s.SRTT().Seconds() * 1e3 })
		r.AddSampler(sub+"inflight", func() float64 { return float64(s.Inflight()) })
		r.AddSampler(sub+"acked_segs", func() float64 { return float64(s.Acked()) })
		r.AddSampler(sub+"loss_events", func() float64 { return float64(s.Stats().LossEvents) })
		r.AddSampler(sub+"timeouts", func() float64 { return float64(s.Stats().Timeouts) })
		r.AddSampler(sub+"state", func() float64 { return float64(s.State()) })
		if intr != nil {
			// The key set is fixed at registration so the record's series
			// list (and the CSV header) is complete up front.
			keys := sortedKeys(intr.Introspect(conn.Views(), i))
			if len(keys) > 0 {
				// All key samplers for this subflow share one component row,
				// refreshed on the first access of each tick; with an
				// IntrospectorInto the row map is reused across ticks, so
				// steady-state introspection allocates nothing.
				into, _ := intr.(core.IntrospectorInto)
				row := make(map[string]float64, len(keys))
				stamp := sim.Time(-1)
				component := func(key string) float64 {
					if now := r.eng.Now(); now != stamp {
						stamp = now
						if into != nil {
							into.IntrospectInto(conn.Views(), i, row)
						} else {
							row = intr.Introspect(conn.Views(), i)
						}
					}
					return row[key]
				}
				for _, key := range keys {
					key := key
					r.AddSampler(sub+key, func() float64 { return component(key) })
				}
			}
		}
		r.AddTimeline(sub, s.Transitions())
	}
}

// WatchMeter registers the host's power and energy series for an energy
// meter, using the meter's Trace hook for instantaneous watts. The meter's
// Trace must be unset and the meter not yet sampling when WatchMeter is
// called (attach before the first meter tick).
func (r *Recorder) WatchMeter(prefix string, m *energy.Meter) {
	if m.Trace == nil {
		m.Trace = &trace.Series{Name: prefix + ".watts"}
	}
	tr := m.Trace
	r.AddSampler(prefix+".watts", tr.Last)
	r.AddSampler(prefix+".joules", m.Joules)
}

// Start writes the meta line and begins sampling. The series set is frozen
// from here on.
func (r *Recorder) Start() {
	if r.started {
		return
	}
	r.started = true
	r.vals = make([]float64, len(r.samplers))
	if r.opt.Stream != nil {
		r.buildKeyTable()
		names := r.names
		if names == nil {
			names = []string{}
		}
		r.emit(metaLine{
			Type:            "meta",
			Schema:          SchemaVersion,
			Meta:            r.meta,
			SampleIntervalS: r.opt.Interval.Seconds(),
			Series:          names,
		})
	}
	r.eng.ScheduleAfter(r.opt.Interval, r.tickFn)
}

// buildKeyTable precomputes the sample line's value-map layout: the series
// names deduplicated (later registrations win, matching the map semantics
// the line schema is defined by), sorted, and JSON-encoded once, so tick
// only appends floats.
func (r *Recorder) buildKeyTable() {
	last := make(map[string]int, len(r.names))
	for i, name := range r.names {
		last[name] = i
	}
	uniq := make([]string, 0, len(last))
	for name := range last {
		uniq = append(uniq, name)
	}
	sort.Strings(uniq)
	r.keyOrder = make([]int, len(uniq))
	r.keyJSON = make([][]byte, len(uniq))
	for j, name := range uniq {
		r.keyOrder[j] = last[name]
		enc, err := json.Marshal(name)
		if err != nil { // unreachable: strings always marshal
			panic("obsv: encode series name: " + err.Error())
		}
		r.keyJSON[j] = append(enc, ':')
	}
}

func (r *Recorder) tick() {
	if r.closed {
		return
	}
	now := r.eng.Now()
	vals := r.vals
	for i, fn := range r.samplers {
		vals[i] = sanitize(fn())
	}
	if r.opt.Stream != nil && r.err == nil {
		r.buf = appendSampleLine(r.buf[:0], now.Seconds(), r.keyJSON, r.keyOrder, vals)
		if _, err := r.opt.Stream.Write(r.buf); err != nil {
			r.err = err
		}
	}
	if r.opt.Retain {
		row := make([]float64, len(vals))
		copy(row, vals)
		r.rows = append(r.rows, Row{T: now, V: row})
	}
	r.eng.ScheduleAfter(r.opt.Interval, r.tickFn)
}

// EmitFlow streams one flow outcome line. Flow lines are written the moment
// the outcome is decided and are never retained — the whole point of the
// per-flow record is that a 50k-flow churn run costs the recorder zero
// resident rows. Calling EmitFlow before Start, after Close, or without a
// Stream is a no-op.
func (r *Recorder) EmitFlow(f Flow) {
	if !r.started || r.closed || r.opt.Stream == nil {
		return
	}
	f.T = sanitize(f.T)
	f.FCTSeconds = sanitize(f.FCTSeconds)
	f.GoodputBps = sanitize(f.GoodputBps)
	f.Joules = sanitize(f.Joules)
	r.emit(flowLine{Type: "flow", Flow: f})
}

// Close stops sampling and completes the record: watched timeline events
// (merged and time-ordered) followed by the summary line. It returns the
// first stream-write error encountered over the record's lifetime.
func (r *Recorder) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	if r.opt.Stream != nil {
		for _, ev := range r.collectEvents() {
			r.emit(ev)
		}
		v := make(map[string]float64, len(r.summary))
		for k, val := range r.summary {
			v[k] = val
		}
		r.emit(summaryLine{Type: "summary", V: v})
	}
	return r.err
}

// Events returns the watched timelines' events merged into one time-ordered
// list with prefixed labels (registration order breaks ties, keeping the
// merge deterministic).
func (r *Recorder) Events() []trace.Event {
	var out []trace.Event
	for _, wt := range r.timelines {
		for _, ev := range wt.tl.Events {
			out = append(out, trace.Event{T: ev.T, Label: wt.prefix + ev.Label})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

func (r *Recorder) collectEvents() []eventLine {
	events := r.Events()
	lines := make([]eventLine, len(events))
	for i, ev := range events {
		lines[i] = eventLine{Type: "event", T: ev.T.Seconds(), Label: ev.Label}
	}
	return lines
}

func (r *Recorder) emit(line any) {
	if r.err != nil {
		return
	}
	r.err = writeLine(r.opt.Stream, line)
}
