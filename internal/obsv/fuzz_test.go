package obsv

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

// FuzzParseRecord feeds arbitrary bytes to the record parser. It must
// accept or reject them without panicking, and never hand back a nil
// record without an error.
func FuzzParseRecord(f *testing.F) {
	f.Add([]byte(`{"type":"meta","schema":1,"experiment":"fig9","scenario":"twopath","algorithm":"dts","seed":1,"sample_interval_s":0.1,"series":["conn.cwnd"]}
{"type":"sample","t_s":0.1,"v":{"conn.cwnd":10}}
{"type":"event","t_s":0.2,"label":"subflow 1: active->dead"}
{"type":"summary","v":{"goodput_mbps":93.5}}
`))
	f.Add([]byte(`{"type":"meta","schema":2,"experiment":"churn","scenario":"fattree","algorithm":"lia","seed":1,"sample_interval_s":0.1,"series":[]}
{"type":"flow","t_s":0.7,"id":1,"class":"web","bytes":65536,"fct_s":0.42,"goodput_bps":1.2e6,"joules":0.03,"subflows":2}
{"type":"flow","t_s":0.9,"id":2,"class":"bulk","bytes":1048576,"fct_s":0,"goodput_bps":0,"joules":0,"subflows":0,"shed":"capacity"}
{"type":"summary","v":{"flows_completed":1}}
`))
	f.Add([]byte(`{"type":"sample","t_s":0.1,"v":{}}`))
	f.Add([]byte("{\"type\":\"meta\",\"schema\":1,\"experiment\":\"\",\"scenario\":\"\",\"algorithm\":\"\",\"seed\":0,\"sample_interval_s\":0,\"series\":null}\n"))
	f.Add([]byte("not json\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ParseRecord(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rec == nil {
			t.Fatal("ParseRecord returned nil record without error")
		}
	})
}

// FuzzRecordRoundTrip writes a synthetic record through the same line
// structs the Recorder serializes with, then requires ParseRecord to return
// exactly what was written.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add("fig9", "twopath", "conn.cwnd", int64(7), 0.5, 3.25, 12.0, "subflow 1: active->dead", uint64(3), "web", "")
	f.Add("", "", "", int64(-1), -0.0, 1e300, -1e-300, "", uint64(0), "", "capacity")
	f.Add("churn", "fattree", "x", int64(9), 1.5, 0.5, 2.0, "e", uint64(1<<40), "stream", "horizon")
	f.Fuzz(func(t *testing.T, expID, scenario, series string, seed int64, t0, v0, summary float64, label string, flowID uint64, class, shed string) {
		for _, s := range []string{expID, scenario, series, label, class, shed} {
			if !utf8.ValidString(s) {
				t.Skip("json coerces invalid utf-8; not a round-trippable input")
			}
		}
		// NaN and ±Inf cannot appear in JSON; the writer sanitizes values
		// the same way before emitting them.
		t0, v0, summary = sanitize(t0), sanitize(v0), sanitize(summary)

		var buf bytes.Buffer
		lines := []any{
			metaLine{
				Type: "meta", Schema: SchemaVersion,
				Meta:   Meta{Experiment: expID, Scenario: scenario, Algorithm: "lia", Seed: seed},
				Series: []string{series},
			},
			sampleLine{Type: "sample", T: t0, V: map[string]float64{series: v0}},
			eventLine{Type: "event", T: t0, Label: label},
			flowLine{Type: "flow", Flow: Flow{
				T: t0, ID: flowID, Class: class, Bytes: flowID,
				FCTSeconds: v0, GoodputBps: v0, Joules: summary,
				Subflows: int(seed & 7), Shed: shed,
			}},
			summaryLine{Type: "summary", V: map[string]float64{"goodput_mbps": summary}},
		}
		for _, l := range lines {
			if err := writeLine(&buf, l); err != nil {
				t.Fatalf("writeLine: %v", err)
			}
		}

		rec, err := ParseRecord(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ParseRecord rejected a writer-produced record: %v\n%s", err, buf.Bytes())
		}
		if rec.Schema != SchemaVersion || rec.Meta.Experiment != expID ||
			rec.Meta.Scenario != scenario || rec.Meta.Seed != seed {
			t.Fatalf("meta mismatch: %+v", rec)
		}
		if len(rec.Series) != 1 || rec.Series[0] != series {
			t.Fatalf("series mismatch: %q", rec.Series)
		}
		if len(rec.Samples) != 1 || rec.Samples[0].T != t0 || rec.Samples[0].V[series] != v0 {
			t.Fatalf("sample mismatch: %+v (want t=%v %q=%v)", rec.Samples, t0, series, v0)
		}
		if len(rec.Events) != 1 || rec.Events[0].Label != label {
			t.Fatalf("event mismatch: %+v", rec.Events)
		}
		if len(rec.Flows) != 1 {
			t.Fatalf("flow mismatch: %+v", rec.Flows)
		}
		if fl := rec.Flows[0]; fl.ID != flowID || fl.Class != class || fl.Shed != shed ||
			fl.T != t0 || fl.FCTSeconds != v0 || fl.GoodputBps != v0 ||
			fl.Joules != summary || fl.Bytes != flowID || fl.Subflows != int(seed&7) {
			t.Fatalf("flow round-trip mismatch: %+v", fl)
		}
		if rec.Summary["goodput_mbps"] != summary {
			t.Fatalf("summary mismatch: %v", rec.Summary)
		}
	})
}
