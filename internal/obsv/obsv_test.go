package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/trace"
)

// recordLines parses a JSONL record into generic maps, one per line.
func recordLines(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d: %v (%q)", i, err, line)
		}
		out = append(out, m)
	}
	return out
}

// runSynthetic drives a recorder with synthetic samplers over a 1 s horizon
// at a 100 ms interval and returns the streamed record plus the recorder.
func runSynthetic(t *testing.T, opt Options) (*Recorder, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if opt.Stream == nil {
		opt.Stream = &buf
	}
	eng := sim.NewEngine(7)
	rec := NewRecorder(eng, Meta{
		Experiment: "test", Scenario: "synthetic", Algorithm: "none", Seed: 7,
	}, opt)

	ticks := 0.0
	rec.AddSampler("count", func() float64 { ticks++; return ticks })
	rec.AddSampler("clock_s", func() float64 { return eng.Now().Seconds() })
	rec.AddSampler("bad", func() float64 { return math.NaN() })

	tl := &trace.Timeline{}
	tl.Add(250*sim.Millisecond, "blip")
	tl.Add(750*sim.Millisecond, "recover")
	rec.AddTimeline("p0.", tl)

	rec.SetSummary("total", 42)
	rec.SetSummary("broken", math.Inf(1)) // sanitized to 0

	rec.Start()
	eng.Run(1 * sim.Second)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return rec, buf.Bytes()
}

func TestRecorderRecordShape(t *testing.T) {
	rec, data := runSynthetic(t, Options{Retain: true})
	lines := recordLines(t, data)

	// meta first, then 10 samples (100ms..1s inclusive), 2 events, summary.
	if want := 1 + 10 + 2 + 1; len(lines) != want {
		t.Fatalf("got %d lines, want %d", len(lines), want)
	}

	meta := lines[0]
	if meta["type"] != "meta" {
		t.Fatalf("first line type = %v, want meta", meta["type"])
	}
	if meta["schema"] != float64(SchemaVersion) {
		t.Errorf("schema = %v, want %d", meta["schema"], SchemaVersion)
	}
	if meta["sample_interval_s"] != 0.1 {
		t.Errorf("sample_interval_s = %v, want 0.1", meta["sample_interval_s"])
	}
	series, _ := meta["series"].([]any)
	if len(series) != 3 || series[0] != "count" || series[1] != "clock_s" || series[2] != "bad" {
		t.Errorf("series = %v, want [count clock_s bad] in registration order", series)
	}

	for i := 1; i <= 10; i++ {
		s := lines[i]
		if s["type"] != "sample" {
			t.Fatalf("line %d type = %v, want sample", i, s["type"])
		}
		wantT := float64(i) * 0.1
		if got := s["t_s"].(float64); math.Abs(got-wantT) > 1e-9 {
			t.Errorf("sample %d t_s = %v, want %v", i, got, wantT)
		}
		v := s["v"].(map[string]any)
		if v["count"] != float64(i) {
			t.Errorf("sample %d count = %v, want %d", i, v["count"], i)
		}
		if v["bad"] != 0.0 {
			t.Errorf("sample %d bad = %v, want 0 (NaN sanitized)", i, v["bad"])
		}
	}

	if lines[11]["type"] != "event" || lines[11]["label"] != "p0.blip" || lines[11]["t_s"] != 0.25 {
		t.Errorf("event 1 = %v, want p0.blip at 0.25", lines[11])
	}
	if lines[12]["type"] != "event" || lines[12]["label"] != "p0.recover" {
		t.Errorf("event 2 = %v, want p0.recover", lines[12])
	}

	sum := lines[13]
	if sum["type"] != "summary" {
		t.Fatalf("last line type = %v, want summary", sum["type"])
	}
	v := sum["v"].(map[string]any)
	if v["total"] != 42.0 || v["broken"] != 0.0 {
		t.Errorf("summary v = %v, want total=42 broken=0", v)
	}

	// Retained rows mirror the streamed samples.
	rows := rec.Rows()
	if len(rows) != 10 {
		t.Fatalf("retained %d rows, want 10", len(rows))
	}
	if rows[4].T != 500*sim.Millisecond || rows[4].V[0] != 5 {
		t.Errorf("row 4 = %+v, want T=500ms count=5", rows[4])
	}
	if rows[0].V[2] != 0 {
		t.Errorf("row 0 bad = %v, want 0 (sanitized before retention)", rows[0].V[2])
	}
}

// TestEmitFlowRoundTrip streams flow lines mid-run and round-trips the
// record through ParseRecord: every outcome comes back verbatim, in order,
// and the recorder retains nothing for them.
func TestEmitFlowRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	eng := sim.NewEngine(3)
	rec := NewRecorder(eng, Meta{Experiment: "churn", Scenario: "fattree", Algorithm: "lia", Seed: 3}, Options{Stream: &buf})

	flows := []Flow{
		{T: 0.25, ID: 1, Class: "web", Bytes: 65536, FCTSeconds: 0.2, GoodputBps: 2.6e6, Joules: 0.05, Subflows: 2},
		{T: 0.30, ID: 2, Class: "bulk", Bytes: 1 << 20, Shed: "capacity"},
		{T: 0.95, ID: 3, Class: "stream", Bytes: 4096, FCTSeconds: 0.7, GoodputBps: 46811, Joules: math.NaN(), Subflows: 2, Shed: "horizon"},
	}
	// Before Start: dropped, not buffered.
	rec.EmitFlow(Flow{ID: 99})
	rec.Start()
	for _, f := range flows {
		f := f
		eng.At(sim.Time(f.T*float64(sim.Second)), func() { rec.EmitFlow(f) })
	}
	eng.Run(1 * sim.Second)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After Close: dropped.
	rec.EmitFlow(Flow{ID: 100})

	parsed, err := ParseRecord(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseRecord: %v\n%s", err, buf.Bytes())
	}
	if parsed.Schema != SchemaVersion {
		t.Errorf("schema %d, want %d", parsed.Schema, SchemaVersion)
	}
	if len(parsed.Flows) != len(flows) {
		t.Fatalf("got %d flows, want %d: %+v", len(parsed.Flows), len(flows), parsed.Flows)
	}
	for i, want := range flows {
		got := parsed.Flows[i]
		if want.Joules != want.Joules { // the NaN joules sanitizes to 0
			want.Joules = 0
		}
		if got != want {
			t.Errorf("flow %d round-trip: got %+v, want %+v", i, got, want)
		}
	}
	if len(rec.Rows()) != 0 {
		t.Errorf("recorder retained %d rows; flow lines must not be retained", len(rec.Rows()))
	}
	// Grammar: a flow line after the summary is rejected.
	bad := buf.String() + `{"type":"flow","t_s":2,"id":9,"class":"web","bytes":1,"fct_s":1,"goodput_bps":8,"joules":0,"subflows":1}` + "\n"
	if _, err := ParseRecord(strings.NewReader(bad)); err == nil {
		t.Error("flow line after summary parsed without error")
	}
}

func TestRecorderDeterministic(t *testing.T) {
	_, a := runSynthetic(t, Options{})
	_, b := runSynthetic(t, Options{})
	if !bytes.Equal(a, b) {
		t.Error("two identical runs produced different records")
	}
}

func TestRecorderNoRetain(t *testing.T) {
	rec, _ := runSynthetic(t, Options{Retain: false})
	if n := len(rec.Rows()); n != 0 {
		t.Errorf("Retain=false kept %d rows, want 0", n)
	}
}

func TestRecorderAddSamplerAfterStartPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(eng, Meta{}, Options{})
	rec.Start()
	defer func() {
		if recover() == nil {
			t.Error("AddSampler after Start did not panic")
		}
	}()
	rec.AddSampler("late", func() float64 { return 0 })
}

func TestWriteCSV(t *testing.T) {
	rows := []Row{
		{T: 100 * sim.Millisecond, V: []float64{1, 2.5}},
		{T: 200 * sim.Millisecond, V: []float64{3, 0}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"x", "y"}, rows); err != nil {
		t.Fatal(err)
	}
	want := "t_s,x,y\n0.1,1,2.5\n0.2,3,0\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

// TestWatchConn pins the standard series set WatchConn registers, including
// the introspected algorithm internals, against a real two-path connection.
func TestWatchConn(t *testing.T) {
	var buf bytes.Buffer
	eng := sim.NewEngine(3)
	tp := topo.NewTwoPath(eng, topo.TwoPathConfig{})
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "dts"}, 1, tp.Paths()...)

	rec := NewRecorder(eng, Meta{Experiment: "test", Scenario: "twopath", Algorithm: "dts", Seed: 3},
		Options{Stream: &buf})
	rec.WatchConn("", conn)

	wantSeries := []string{
		"conn.goodput_mbps", "conn.acked_mb", "conn.reinjected_segs",
		"sub0.cwnd", "sub0.srtt_ms", "sub0.inflight", "sub0.acked_segs",
		"sub0.loss_events", "sub0.timeouts", "sub0.state",
		"sub0.eps", "sub0.psi", "sub0.rtt_ratio",
		"sub1.cwnd", "sub1.srtt_ms", "sub1.inflight", "sub1.acked_segs",
		"sub1.loss_events", "sub1.timeouts", "sub1.state",
		"sub1.eps", "sub1.psi", "sub1.rtt_ratio",
	}
	got := rec.Series()
	if len(got) != len(wantSeries) {
		t.Fatalf("series = %v, want %v", got, wantSeries)
	}
	for i := range got {
		if got[i] != wantSeries[i] {
			t.Fatalf("series[%d] = %q, want %q", i, got[i], wantSeries[i])
		}
	}

	rec.Start()
	conn.Start()
	eng.Run(2 * sim.Second)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	lines := recordLines(t, buf.Bytes())
	var samples int
	for _, l := range lines[1:] {
		if l["type"] != "sample" {
			continue
		}
		samples++
		v := l["v"].(map[string]any)
		if len(v) != len(wantSeries) {
			t.Fatalf("sample has %d values, want %d", len(v), len(wantSeries))
		}
		if v["sub0.cwnd"].(float64) <= 0 {
			t.Errorf("sub0.cwnd = %v, want > 0", v["sub0.cwnd"])
		}
	}
	if samples != 20 {
		t.Errorf("got %d samples over 2s at 100ms, want 20", samples)
	}
}
