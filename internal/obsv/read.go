package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Record is one parsed run record: the reader-side counterpart of the JSONL
// format the Recorder streams. Tooling that post-processes run records
// (plotting, regression diffing) parses them with ParseRecord instead of
// re-implementing the line grammar.
type Record struct {
	Schema          int
	Meta            Meta
	SampleIntervalS float64
	Series          []string
	Samples         []Sample
	Events          []Event
	Flows           []Flow
	Summary         map[string]float64
}

// Sample is one parsed sampling tick.
type Sample struct {
	T float64
	V map[string]float64
}

// Event is one parsed labelled instant.
type Event struct {
	T     float64
	Label string
}

// ParseRecord reads a JSONL run record and validates its line grammar: a
// meta line first, then any mix of sample, event and flow lines, and at
// most one summary line which must be last. Unknown line types and malformed JSON
// are errors, so a truncated or corrupted record never parses silently.
func ParseRecord(r io.Reader) (*Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	rec := &Record{}
	sawMeta, sawSummary := false, false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var disc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &disc); err != nil {
			return nil, fmt.Errorf("obsv: record line %d: %w", lineNo, err)
		}
		if sawSummary {
			return nil, fmt.Errorf("obsv: record line %d: %q line after summary", lineNo, disc.Type)
		}
		if !sawMeta && disc.Type != "meta" {
			return nil, fmt.Errorf("obsv: record line %d: first line is %q, want meta", lineNo, disc.Type)
		}
		switch disc.Type {
		case "meta":
			if sawMeta {
				return nil, fmt.Errorf("obsv: record line %d: duplicate meta line", lineNo)
			}
			var m metaLine
			if err := json.Unmarshal(line, &m); err != nil {
				return nil, fmt.Errorf("obsv: record line %d: meta: %w", lineNo, err)
			}
			rec.Schema = m.Schema
			rec.Meta = m.Meta
			rec.SampleIntervalS = m.SampleIntervalS
			rec.Series = m.Series
			sawMeta = true
		case "sample":
			var s sampleLine
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("obsv: record line %d: sample: %w", lineNo, err)
			}
			rec.Samples = append(rec.Samples, Sample{T: s.T, V: s.V})
		case "event":
			var e eventLine
			if err := json.Unmarshal(line, &e); err != nil {
				return nil, fmt.Errorf("obsv: record line %d: event: %w", lineNo, err)
			}
			rec.Events = append(rec.Events, Event{T: e.T, Label: e.Label})
		case "flow":
			var f flowLine
			if err := json.Unmarshal(line, &f); err != nil {
				return nil, fmt.Errorf("obsv: record line %d: flow: %w", lineNo, err)
			}
			rec.Flows = append(rec.Flows, f.Flow)
		case "summary":
			var s summaryLine
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("obsv: record line %d: summary: %w", lineNo, err)
			}
			rec.Summary = s.V
			sawSummary = true
		default:
			return nil, fmt.Errorf("obsv: record line %d: unknown type %q", lineNo, disc.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obsv: reading record: %w", err)
	}
	if !sawMeta {
		return nil, fmt.Errorf("obsv: record has no meta line")
	}
	return rec, nil
}
