package obsv

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
)

// TestAppendJSONFloatMatchesMarshal pins the hand-rolled float encoder to
// encoding/json byte-for-byte: the schema guarantee is that replacing
// json.Marshal on the sample hot path changes nothing downstream.
func TestAppendJSONFloatMatchesMarshal(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.1, -0.1, 2.5, 1e-6, 9.999999e-7, 1e-7, -1e-7,
		1e20, 1e21, -1e21, 1.5e22, 1e-300, 1e300, 5e-324,
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		0.30000000000000004, 1.0 / 3.0, 42, 1234.5678, 8e6, 3659547.7111299993,
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		// Sweep magnitudes across the f/e format boundary on both sides.
		v := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(60)-30))
		cases = append(cases, v)
	}
	for _, v := range cases {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		got := appendJSONFloat(nil, v)
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSONFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

// TestAppendSampleLineMatchesMarshal pins the full sample line — field
// order, key sorting, key escaping, duplicate-name semantics — against the
// json.Marshal encoding it replaces.
func TestAppendSampleLineMatchesMarshal(t *testing.T) {
	names := []string{
		"sub0.cwnd", "conn.goodput_mbps", "a<b", "x&y", "q\"uote",
		"unié", "tab\tname", "sub0.cwnd", // duplicate: later index wins
	}
	vals := []float64{1.5, 0, 2e-9, 1e22, -3.25, 7, 0.30000000000000004, 99}

	// Reference encoding: the old map-based line.
	v := make(map[string]float64, len(vals))
	for i, n := range names {
		v[n] = vals[i]
	}
	want, err := json.Marshal(sampleLine{Type: "sample", T: 0.30000000000000004, V: v})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')

	// Hot-path encoding via the precomputed key table.
	r := &Recorder{names: names}
	r.buildKeyTable()
	got := appendSampleLine(nil, 0.30000000000000004, r.keyJSON, r.keyOrder, vals)
	if !bytes.Equal(got, want) {
		t.Errorf("appendSampleLine = %q, want %q", got, want)
	}

	// Empty series set still emits a well-formed empty value map.
	e := &Recorder{}
	e.buildKeyTable()
	wantEmpty, _ := json.Marshal(sampleLine{Type: "sample", T: 0.1, V: map[string]float64{}})
	wantEmpty = append(wantEmpty, '\n')
	if gotEmpty := appendSampleLine(nil, 0.1, e.keyJSON, e.keyOrder, nil); !bytes.Equal(gotEmpty, wantEmpty) {
		t.Errorf("empty appendSampleLine = %q, want %q", gotEmpty, wantEmpty)
	}
}

// TestBuildKeyTableOrder pins the key table to sorted unique names with
// last-registration-wins indices (the map semantics of the old encoder).
func TestBuildKeyTableOrder(t *testing.T) {
	r := &Recorder{names: []string{"b", "a", "c", "a"}}
	r.buildKeyTable()
	var keys []string
	for _, k := range r.keyJSON {
		keys = append(keys, string(k))
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("keyJSON not sorted: %v", keys)
	}
	if len(r.keyOrder) != 3 {
		t.Fatalf("keyOrder has %d entries, want 3 (dedup)", len(r.keyOrder))
	}
	if r.keyOrder[0] != 3 { // "a" registered at 1 then 3: later wins
		t.Errorf("duplicate key resolved to index %d, want 3", r.keyOrder[0])
	}
}

// TestRecorderStreamingSampleAllocs asserts the steady-state sampling tick
// — sampler sweep, line encoding, stream write, introspection — allocates
// nothing once buffers are warm.
func TestRecorderStreamingSampleAllocs(t *testing.T) {
	eng := sim.NewEngine(3)
	tp := topo.NewTwoPath(eng, topo.TwoPathConfig{})
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "dtsep"}, 1, tp.Paths()...)

	rec := NewRecorder(eng, Meta{Experiment: "alloc", Algorithm: "dtsep", Seed: 3},
		Options{Stream: io.Discard})
	rec.WatchConn("", conn)
	rec.Start()

	// Warm up: grow the line buffer, the engine's event slab and the
	// introspection row maps. The connection stays idle so the measured
	// window is sampling work only.
	next := eng.Now()
	for i := 0; i < 10; i++ {
		next += rec.Interval()
		eng.Run(next)
	}

	avg := testing.AllocsPerRun(100, func() {
		next += rec.Interval()
		eng.Run(next)
	})
	if avg != 0 {
		t.Errorf("steady-state sampling tick allocates %.1f times, want 0", avg)
	}
}

// BenchmarkSampleLineEncode times one streamed sampling tick end to end
// (23 series, introspected DTS internals included); allocs/op must be 0.
func BenchmarkSampleLineEncode(b *testing.B) {
	eng := sim.NewEngine(3)
	tp := topo.NewTwoPath(eng, topo.TwoPathConfig{})
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "dts"}, 1, tp.Paths()...)
	rec := NewRecorder(eng, Meta{Experiment: "bench", Algorithm: "dts", Seed: 3},
		Options{Stream: io.Discard})
	rec.WatchConn("", conn)
	rec.Start()
	next := eng.Now()
	for i := 0; i < 10; i++ {
		next += rec.Interval()
		eng.Run(next)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next += rec.Interval()
		eng.Run(next)
	}
}
