package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Status is a journaled unit's terminal state.
type Status string

const (
	// StatusDone: the unit completed and its artifacts carry the recorded
	// digest. Resume skips it after re-verifying the digest.
	StatusDone Status = "done"
	// StatusQuarantined: the unit failed permanently (deterministic panic,
	// retry exhaustion). Resume does not re-run it — a deterministic
	// failure reproduces — and the merge degrades it to a note, exactly
	// like exp.Config.Sup degrades a failed row inside a figure.
	StatusQuarantined Status = "quarantined"
)

// Entry is one journal line: the write-ahead record that a unit reached a
// terminal state. Digest covers every file under the unit's directory, so
// a resume detects stale or truncated artifacts instead of trusting them.
type Entry struct {
	ID       string `json:"id"`
	Status   Status `json:"status"`
	Digest   string `json:"digest,omitempty"`
	Events   uint64 `json:"events"`
	Attempts int    `json:"attempts,omitempty"`
	// Note carries a quarantined unit's deterministic failure message; it
	// becomes the unit's stanza in the merged results.
	Note string `json:"note,omitempty"`
}

// DefaultSyncEvery bounds journal fsync staleness: an append syncs when at
// least this much wall time has passed since the last sync (and Close and
// the signal path always sync). Units completing inside the final unsynced
// window of a hard kill (SIGKILL) simply re-run on resume — the journal
// trades at most one sync interval of redone work for not paying an fsync
// per line.
const DefaultSyncEvery = 250 * time.Millisecond

// Journal is an append-only JSONL checkpoint log. One writer per process;
// Append is not safe for concurrent use (the campaign serializes appends
// through a mutex in the run loop).
type Journal struct {
	f         *os.File
	syncEvery time.Duration
	lastSync  time.Time
	now       func() time.Time // test seam
}

// journalName returns the journal filename for a shard ("journal.jsonl"
// unsharded, "journal.shard<i>-<n>.jsonl" for shard i of n).
func journalName(s Shard) string {
	if s.Count <= 1 {
		return "journal.jsonl"
	}
	return fmt.Sprintf("journal.shard%d-%d.jsonl", s.Index, s.Count)
}

// Recovery describes what OpenJournal found and repaired.
type Recovery struct {
	// Entries is every valid journal line across all shard journals in the
	// directory, last-write-wins per unit ID.
	Entries map[string]Entry
	// TornLines counts trailing lines discarded as torn (a crash mid-write
	// leaves a partial final line; it is truncated away, and its unit —
	// never having committed — re-runs).
	TornLines int
}

// OpenJournal opens (creating if absent) the journal for the given shard
// under dir, first reading every journal file in the directory to build
// the completed-unit map. A torn final line in any journal is recovered by
// discarding it; a malformed line anywhere else poisons the journal and
// errors, because silently skipping interior corruption could resurrect a
// unit state that later lines depended on. The shard's own journal file is
// physically truncated past its last good line so appends never chase torn
// bytes.
func OpenJournal(dir string, shard Shard, syncEvery time.Duration) (*Journal, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec := &Recovery{Entries: make(map[string]Entry)}
	names, err := filepath.Glob(filepath.Join(dir, "journal*.jsonl"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(names) // deterministic read order across shards
	own := filepath.Join(dir, journalName(shard))
	var ownGood int64 // byte offset past the last good line of our own file
	for _, name := range names {
		good, torn, err := readJournal(name, rec.Entries)
		if err != nil {
			return nil, nil, err
		}
		if torn {
			rec.TornLines++
		}
		if name == own {
			ownGood = good
		}
	}
	f, err := os.OpenFile(own, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(ownGood); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(ownGood, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	if syncEvery <= 0 {
		syncEvery = DefaultSyncEvery
	}
	return &Journal{f: f, syncEvery: syncEvery, now: time.Now}, rec, nil
}

// readJournal parses one journal file into entries, returning the byte
// offset past the last good line and whether a torn trailing line was
// discarded.
func readJournal(name string, entries map[string]Entry) (good int64, torn bool, err error) {
	data, err := os.ReadFile(name)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	off := 0
	for off < len(data) {
		rest := data[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// Trailing bytes with no newline: the final write was cut
			// mid-line. Even if the fragment parses, the commit never
			// finished — discard it; the unit simply re-runs.
			return int64(off), true, nil
		}
		line := rest[:nl]
		var e Entry
		if uerr := json.Unmarshal(line, &e); uerr != nil || e.ID == "" || !validStatus(e.Status) {
			if off+nl+1 == len(data) {
				// Unparseable final line: torn write, recoverable.
				return int64(off), true, nil
			}
			return 0, false, fmt.Errorf(
				"campaign: journal %s corrupt at byte %d (not a trailing torn line): %q",
				name, off, truncateForErr(line))
		}
		entries[e.ID] = e
		off += nl + 1
	}
	return int64(off), false, nil
}

func validStatus(s Status) bool { return s == StatusDone || s == StatusQuarantined }

func truncateForErr(b []byte) string {
	const max = 120
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}

// Append writes one entry and syncs if the bounded sync interval elapsed.
func (j *Journal) Append(e Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return err
	}
	if j.now().Sub(j.lastSync) >= j.syncEvery {
		return j.Sync()
	}
	return nil
}

// Sync fsyncs the journal to stable storage.
func (j *Journal) Sync() error {
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.lastSync = j.now()
	return nil
}

// Close syncs and releases the journal.
func (j *Journal) Close() error {
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
