// Package campaign makes a whole experiment sweep as survivable as the
// individual runs internal/supervise already protects. A campaign expands
// its spec into a manifest of deterministic unit identities up front, runs
// the units across a worker pool (optionally sharded over processes), and
// checkpoints every completed unit in a write-ahead journal, so a campaign
// killed at any point — OOM, CI timeout, Ctrl-C — resumes by re-executing
// only the remainder. Because each unit's artifacts derive only from its
// own identity (seeds come from the manifest, never from scheduling), an
// interrupted-then-resumed campaign merges to byte-identical outputs at
// any worker count and any kill point; the tests assert exactly that.
//
// On-disk layout of a campaign directory:
//
//	manifest.json         spec + expanded unit IDs, written once at start
//	journal.jsonl         write-ahead journal, one line per finished unit
//	units/<id>/table.txt  the unit's rendered figure table
//	units/<id>/records/   obsv JSONL/CSV run records (Spec.Records)
//	results.txt           merged tables in manifest order (after Merge)
//	campaign.json         deterministic merged payload (after Merge)
//	campaign_meta.json    volatile sidecar: timestamps, versions, timings
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mptcpsim/internal/backend"
	"mptcpsim/internal/exp"
)

// ManifestVersion guards the on-disk manifest/journal schema; Resume
// refuses directories written by a version it does not understand.
const ManifestVersion = 1

// Spec declares what a campaign runs. Everything in the Spec shapes the
// deterministic payload (unit set, digests, merged outputs), so it is
// persisted in the manifest and a resume always uses the stored spec —
// never the flags of the resuming invocation.
type Spec struct {
	// Experiments are exp figure IDs, in the order their tables merge.
	Experiments []string `json:"experiments"`
	// Seeds are the campaign's repetition axis: every experiment runs once
	// per seed. Empty means {1}.
	Seeds []int64 `json:"seeds"`
	// Scale and Reps are forwarded to exp.Config.
	Scale float64 `json:"scale"`
	Reps  int     `json:"reps"`
	// Records exports obsv JSONL/CSV run records under each unit's
	// directory; they join the unit digest, so resumed and uninterrupted
	// campaigns must agree on record bytes too.
	Records bool `json:"records"`
	// Check runs the invariant checker on every simulation run.
	Check bool `json:"check"`

	// Sweep, when set, adds hybrid backend-sweep units (see
	// internal/backend): one cheap "sweep-fluid" unit per
	// seed × topology × algorithm covering the whole load axis, plus one
	// ordinary-cost "sweep-check" packet unit per spot-checked grid point.
	// The spot-check sample is derived from the unit identities and the
	// campaign seed, so the manifest — and therefore resume — pins exactly
	// which points get packet verification. A campaign may be sweep-only
	// (no Experiments).
	Sweep *backend.SweepSpec `json:"sweep,omitempty"`
}

func (s Spec) withDefaults() Spec {
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1}
	}
	if s.Scale <= 0 || s.Scale > 1 {
		s.Scale = 1
	}
	return s
}

// Unit is one schedulable run identity. The Algorithm and Scenario axes
// are pinned to the figure's declared splittable values (exp.Experiment
// .Algorithms/.Scenarios), so shards and resume checkpoints split within a
// figure; a figure that declares no axis (or couples runs across it) keeps
// the coarse "all" unit covering its whole internal grid.
type Unit struct {
	Experiment string `json:"experiment"`
	Algorithm  string `json:"algorithm"`
	Scenario   string `json:"scenario"`
	Seed       int64  `json:"seed"`
}

// ID is the unit's stable identity: equal units get equal IDs across
// processes, machines and code versions, which is what lets journals
// written by one invocation be trusted by the next.
func (u Unit) ID() string {
	return fmt.Sprintf("%s_%s_%s_seed%d",
		slug(u.Experiment), slug(u.Algorithm), slug(u.Scenario), u.Seed)
}

// Dir returns the unit's artifact directory under the campaign dir.
func (u Unit) Dir(dir string) string { return filepath.Join(dir, "units", u.ID()) }

// Manifest is the expanded, ordered unit list of one campaign.
type Manifest struct {
	Version int    `json:"version"`
	Spec    Spec   `json:"spec"`
	Units   []Unit `json:"units"`
}

// Expand validates the spec and expands it into the manifest: experiments
// in spec order × the figure's declared scenario axis × its declared
// algorithm axis × seeds in spec order (undeclared axes stay "all", one
// unit covering the figure's whole internal grid). Scenario-major order
// mirrors the figures' own row order, so the merged results read the same
// as an unsplit table. The expansion is the merge order, fixed here once —
// scheduling never reorders it.
func Expand(spec Spec) (*Manifest, error) {
	spec = spec.withDefaults()
	if len(spec.Experiments) == 0 && spec.Sweep == nil {
		return nil, fmt.Errorf("campaign: spec names no experiments and no sweep")
	}
	seen := make(map[string]bool)
	m := &Manifest{Version: ManifestVersion, Spec: spec}
	for _, id := range spec.Experiments {
		e, ok := exp.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("campaign: unknown experiment %q", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("campaign: experiment %q listed twice", id)
		}
		seen[id] = true
		algs, scenarios := e.Algorithms, e.Scenarios
		if len(algs) == 0 {
			algs = []string{"all"}
		}
		if len(scenarios) == 0 {
			scenarios = []string{"all"}
		}
		for _, scenario := range scenarios {
			for _, alg := range algs {
				for _, seed := range spec.Seeds {
					m.Units = append(m.Units, Unit{
						Experiment: id, Algorithm: alg, Scenario: scenario, Seed: seed,
					})
				}
			}
		}
	}
	if spec.Sweep != nil {
		if err := expandSweep(spec, m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Shard selects the subset of the manifest one process executes: unit i
// runs on the shard where i % Count == Index. The zero Shard means "all
// units". Shards share the campaign directory (their unit sets are
// disjoint) but append to per-shard journals; Merge reads them all.
type Shard struct {
	Index, Count int
}

func (s Shard) validate() error {
	if s.Count <= 0 {
		return nil
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("campaign: shard index %d out of range for %d shards", s.Index, s.Count)
	}
	return nil
}

// owns reports whether this shard executes manifest index i.
func (s Shard) owns(i int) bool {
	if s.Count <= 1 {
		return true
	}
	return i%s.Count == s.Index
}

// manifestPath is the manifest file under a campaign directory.
func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

// WriteManifest persists the manifest atomically (temp file + rename), so
// concurrent shard processes starting the same campaign either see a
// complete manifest or none.
func WriteManifest(dir string, m *Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), manifestPath(dir))
}

// LoadManifest reads a campaign directory's manifest.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("campaign: bad manifest %s: %w", manifestPath(dir), err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("campaign: manifest version %d, this build understands %d",
			m.Version, ManifestVersion)
	}
	return &m, nil
}

// specEqual compares two specs structurally (order-sensitive: the spec
// fixes merge order).
func specEqual(a, b Spec) bool {
	aj, _ := json.Marshal(a.withDefaults())
	bj, _ := json.Marshal(b.withDefaults())
	return string(aj) == string(bj)
}

// slug normalizes an ID component exactly like internal/exp's record
// filenames: lower case, anything outside [a-z0-9._-] collapsed to '-'.
func slug(s string) string {
	s = strings.ToLower(s)
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}
