package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// ErrIncomplete marks a merge attempted while manifest units are still
// unfinished (interrupted campaign, or sibling shards still running).
var ErrIncomplete = errors.New("campaign: incomplete")

// unitPayload is one unit's row in the deterministic merged payload.
type unitPayload struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
	Digest string `json:"digest,omitempty"`
	Events uint64 `json:"events"`
	Note   string `json:"note,omitempty"`
}

// payload is campaign.json: everything in it derives from the manifest and
// the units' deterministic artifacts, never from the clock, the machine or
// the schedule — CI byte-diffs it between interrupted-then-resumed and
// uninterrupted campaigns. Volatile facts (timestamps, versions, attempt
// counts) live in the campaign_meta.json sidecar instead.
type payload struct {
	Version     int           `json:"version"`
	Spec        Spec          `json:"spec"`
	Units       []unitPayload `json:"units"`
	TotalEvents uint64        `json:"total_events"`
}

// meta is campaign_meta.json: volatile by design, excluded from diffs.
type meta struct {
	MergedAt  string `json:"merged_at"`
	GoVersion string `json:"go_version"`
}

// MergeResult reports what a merge produced.
type MergeResult struct {
	Units       int
	Quarantined int
	TotalEvents uint64
}

// Merge folds a finished campaign's per-unit artifacts into the campaign
// outputs: results.txt (tables in manifest order; a quarantined unit
// degrades to a note stanza) and campaign.json (the deterministic payload),
// plus the campaign_meta.json sidecar. It errors with ErrIncomplete while
// any manifest unit lacks a terminal journal entry. Merging is idempotent
// and deterministic: any shard or resume may run it last, concurrent
// mergers write identical bytes via atomic rename.
func Merge(dir string) (*MergeResult, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	entries := make(map[string]Entry)
	names, err := filepath.Glob(filepath.Join(dir, "journal*.jsonl"))
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if _, _, err := readJournal(name, entries); err != nil {
			return nil, err
		}
	}

	var missing []string
	for _, u := range m.Units {
		if _, ok := entries[u.ID()]; !ok {
			missing = append(missing, u.ID())
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("%w: %d of %d units unfinished (first: %s)",
			ErrIncomplete, len(missing), len(m.Units), missing[0])
	}

	var (
		results strings.Builder
		pl      = payload{Version: ManifestVersion, Spec: m.Spec}
		res     MergeResult
	)
	for _, u := range m.Units {
		e := entries[u.ID()]
		up := unitPayload{ID: e.ID, Status: e.Status, Digest: e.Digest, Events: e.Events, Note: e.Note}
		pl.Units = append(pl.Units, up)
		pl.TotalEvents += e.Events
		res.Units++
		switch e.Status {
		case StatusDone:
			table, rerr := os.ReadFile(filepath.Join(u.Dir(dir), "table.txt"))
			if rerr != nil {
				return nil, fmt.Errorf("campaign: unit %s journaled done but %w", u.ID(), rerr)
			}
			results.Write(table)
		case StatusQuarantined:
			res.Quarantined++
			fmt.Fprintf(&results, "== %s: quarantined ==\nnote: %s\n", u.ID(), e.Note)
		}
		results.WriteByte('\n')
	}
	res.TotalEvents = pl.TotalEvents

	if err := writeFileAtomic(dir, "results.txt", []byte(results.String())); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(pl, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(dir, "campaign.json", append(data, '\n')); err != nil {
		return nil, err
	}
	md, err := json.MarshalIndent(meta{
		MergedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(dir, "campaign_meta.json", append(md, '\n')); err != nil {
		return nil, err
	}
	return &res, nil
}

// writeFileAtomic writes name under dir via temp file + rename, so a
// reader (or a concurrent merger) never sees a half-written file.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "."+name+"-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name))
}
