package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mptcpsim/internal/backend"
	"mptcpsim/internal/sim"
)

// sweepSpec is a small hybrid sweep: 4 grid points, of which SpotCheck 0.05
// pins exactly one (ceil(0.05·4)) as a packet check unit.
func sweepSpec() Spec {
	return Spec{Sweep: &backend.SweepSpec{
		Topologies: []string{"twopath-asym"},
		Algorithms: []string{"ewtcp", "dts"},
		Loads:      []float64{0, 0.1},
		SpotCheck:  0.05,
	}}
}

func TestSweepExpandDeterminismAndSample(t *testing.T) {
	spec := sweepSpec()
	spec.Seeds = []int64{1, 2}
	m1, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	ids := func(m *Manifest) []string {
		var out []string
		for _, u := range m.Units {
			out = append(out, u.ID())
		}
		return out
	}
	if got, want := strings.Join(ids(m1), ","), strings.Join(ids(m2), ","); got != want {
		t.Fatalf("two expansions differ:\n%s\n%s", got, want)
	}

	// Per seed: 1 topology × 2 algorithms fluid units + 1 spot-check unit.
	if got := len(m1.Units); got != 2*(2+1) {
		t.Fatalf("expanded %d units, want 6", got)
	}
	// The check units must be exactly the backend's seed-derived sample, so
	// the manifest pins the same points backend.Sweep would re-run.
	for _, seed := range spec.Seeds {
		sw := spec.Sweep.WithDefaults()
		sw.Seed = seed
		pts := sw.Grid()
		picked := sw.SpotIndices(pts)
		var want []string
		for i, p := range pts {
			if picked[i] {
				want = append(want, Unit{
					Experiment: "sweep-check", Algorithm: p.Algorithm,
					Scenario: checkScenario(p), Seed: seed,
				}.ID())
			}
		}
		var got []string
		for _, u := range m1.Units {
			if u.Experiment == sweepCheckExp && u.Seed == seed {
				got = append(got, u.ID())
			}
		}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("seed %d check units %v, want the backend sample %v", seed, got, want)
		}
	}

	// Sweep-only specs are legal; a sweep with no points is not.
	if _, err := Expand(Spec{Sweep: &backend.SweepSpec{}}); err == nil {
		t.Error("empty sweep grid accepted")
	}
	bad := sweepSpec()
	bad.Sweep.Backend = "quantum"
	if _, err := Expand(bad); err == nil {
		t.Error("unknown sweep backend accepted")
	}
	badAlg := sweepSpec()
	badAlg.Sweep.Algorithms = []string{"no-such-alg"}
	if _, err := Expand(badAlg); err == nil {
		t.Error("unknown sweep algorithm accepted")
	}
}

func TestSweepExpandPerBackend(t *testing.T) {
	count := func(m *Manifest, exp string) int {
		n := 0
		for _, u := range m.Units {
			if u.Experiment == exp {
				n++
			}
		}
		return n
	}
	fluidOnly := sweepSpec()
	fluidOnly.Sweep.Backend = "fluid"
	m, err := Expand(fluidOnly)
	if err != nil {
		t.Fatal(err)
	}
	if count(m, sweepFluidExp) != 2 || count(m, sweepCheckExp) != 0 {
		t.Errorf("fluid backend expanded %d fluid + %d check units, want 2 + 0",
			count(m, sweepFluidExp), count(m, sweepCheckExp))
	}
	pktOnly := sweepSpec()
	pktOnly.Sweep.Backend = "packet"
	m, err = Expand(pktOnly)
	if err != nil {
		t.Fatal(err)
	}
	if count(m, sweepFluidExp) != 0 || count(m, sweepCheckExp) != 4 {
		t.Errorf("packet backend expanded %d fluid + %d check units, want 0 + 4",
			count(m, sweepFluidExp), count(m, sweepCheckExp))
	}
}

func TestParseCheckScenarioRoundTrip(t *testing.T) {
	p := backend.Point{Topology: "twopath-asym", Algorithm: "dts", Load: 0.1}
	topoName, load, err := parseCheckScenario(checkScenario(p))
	if err != nil {
		t.Fatal(err)
	}
	if topoName != p.Topology || load != p.Load {
		t.Errorf("round trip gave %s@%v, want %s@%v", topoName, load, p.Topology, p.Load)
	}
	if _, _, err := parseCheckScenario("no-load-marker"); err == nil {
		t.Error("scenario without @load accepted")
	}
	if _, _, err := parseCheckScenario("topo@not-a-number"); err == nil {
		t.Error("unparsable load accepted")
	}
}

// TestSweepCampaignMergesIdenticalAcrossWorkers runs the same sweep-only
// campaign at one and at two workers and requires byte-identical merged
// outputs, then resumes the finished directory and requires every unit to
// be reused from the journal.
func TestSweepCampaignMergesIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full-horizon packet spot checks")
	}
	ctx := context.Background()
	spec := sweepSpec()

	dirA, dirB := t.TempDir(), t.TempDir()
	sumA, err := Start(ctx, dirA, spec, Options{Workers: 1})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if _, err := Start(ctx, dirB, spec, Options{Workers: 2}); err != nil {
		t.Fatalf("workers=2: %v", err)
	}
	if sumA.Quarantined != 0 {
		t.Fatalf("%d units quarantined; the default grid points must pass their checks", sumA.Quarantined)
	}
	ra, pa := mustOutputs(t, dirA)
	rb, pb := mustOutputs(t, dirB)
	if ra != rb {
		t.Errorf("results.txt differs across worker counts:\n-j1:\n%s\n-j2:\n%s", ra, rb)
	}
	if pa != pb {
		t.Errorf("campaign.json differs across worker counts:\n-j1:\n%s\n-j2:\n%s", pa, pb)
	}
	if !strings.Contains(ra, "twopath-asym/ewtcp@0") {
		t.Errorf("merged results lack the sweep table rows:\n%s", ra)
	}

	sum, err := Resume(ctx, dirA, Options{Workers: 1})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if sum.Reused != sum.Total || sum.Ran != 0 {
		t.Errorf("resume reused %d/%d and ran %d; a finished sweep campaign must be fully journal-backed",
			sum.Reused, sum.Total, sum.Ran)
	}
	rr, _ := mustOutputs(t, dirA)
	if rr != ra {
		t.Errorf("results.txt changed across resume")
	}
}

// TestSweepCampaignQuarantinesDisagreement: a spot check that fails its
// tolerance is a quarantined unit — the campaign finishes, the journal
// notes the disagreeing point, and the unit's table records the row.
func TestSweepCampaignQuarantinesDisagreement(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full-horizon packet spot check")
	}
	spec := Spec{Sweep: &backend.SweepSpec{
		Topologies: []string{"twopath-asym"},
		Algorithms: []string{"coupled"}, // calibrated over-tolerance under cross load
		Loads:      []float64{0.1},
		SpotCheck:  1,
	}}
	dir := t.TempDir()
	sum, err := Start(context.Background(), dir, spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 1 {
		t.Fatalf("quarantined %d units, want exactly the disagreeing check unit", sum.Quarantined)
	}
	journal, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(journal), "disagreement") || !strings.Contains(string(journal), "twopath-asym/coupled@0.1") {
		t.Errorf("journal does not name the disagreeing point:\n%s", journal)
	}
	u := Unit{Experiment: sweepCheckExp, Algorithm: "coupled", Scenario: "twopath-asym@0.1", Seed: 1}
	table, err := os.ReadFile(filepath.Join(u.Dir(dir), "table.txt"))
	if err != nil {
		t.Fatalf("the failing unit must still write its table: %v", err)
	}
	if !strings.Contains(string(table), "FAIL") {
		t.Errorf("unit table does not flag the failing row:\n%s", table)
	}
}

// TestSweepUnitInterrupted: cancelling mid-unit reports Interrupted instead
// of failing the unit, so the campaign can resume it later.
func TestSweepUnitInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := sweepSpec()
	sw := *spec.Sweep
	sw.Horizon = 6 * sim.Second
	sw.Warmup = 2 * sim.Second
	spec.Sweep = &sw
	u := Unit{Experiment: sweepCheckExp, Algorithm: "ewtcp", Scenario: "twopath-asym@0", Seed: 1}
	out, err := execSweepUnit(ctx, u, t.TempDir(), spec)
	if err != nil {
		t.Fatalf("cancelled unit returned error %v, want Interrupted output", err)
	}
	if !out.Interrupted {
		t.Error("cancelled unit not marked Interrupted")
	}
}

func TestSweepUnitRejectsForeignUnit(t *testing.T) {
	spec := sweepSpec()
	if _, err := execSweepUnit(context.Background(), Unit{Experiment: "fig1"}, t.TempDir(), spec); err == nil {
		t.Error("non-sweep unit accepted by the sweep executor")
	}
	if _, err := execSweepUnit(context.Background(), Unit{Experiment: sweepFluidExp}, t.TempDir(), Spec{}); err == nil {
		t.Error("sweep unit accepted by a spec with no sweep")
	}
}
