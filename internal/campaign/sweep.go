package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mptcpsim/internal/backend"
	"mptcpsim/internal/exp"
	"mptcpsim/internal/supervise"
)

// The sweep pseudo-experiments. They are unit namespaces, not exp figures:
// a "sweep-fluid" unit solves one (topology × algorithm) row of the load
// axis on the fluid engine — a journal entry that costs microseconds — and
// a "sweep-check" unit is an ordinary packet run verifying one
// spot-checked grid point against its fluid answer.
const (
	sweepFluidExp = "sweep-fluid"
	sweepCheckExp = "sweep-check"
)

// expandSweep appends the sweep units to the manifest: per campaign seed,
// the fluid units in topology-major/algorithm-minor grid order, then the
// packet spot-check units in grid order. The spot-check sample is
// recomputed here from unit identities and the seed only
// (backend.SweepSpec.SpotIndices), so expanding the same spec always pins
// the same check units — the property resume and sharding rely on.
func expandSweep(spec Spec, m *Manifest) error {
	sw := spec.Sweep.WithDefaults()
	switch sw.Backend {
	case "fluid", "packet", "hybrid":
	default:
		return fmt.Errorf("campaign: unknown sweep backend %q", sw.Backend)
	}
	pts := sw.Grid()
	if len(pts) == 0 {
		return fmt.Errorf("campaign: sweep grid is empty")
	}
	for _, p := range pts {
		if err := p.Scenario(sw).Validate(); err != nil {
			return fmt.Errorf("campaign: sweep point %s: %w", p.ID(), err)
		}
	}
	for _, seed := range spec.Seeds {
		seeded := sw
		seeded.Seed = seed
		if sw.Backend != "packet" {
			for _, t := range sw.Topologies {
				for _, a := range sw.Algorithms {
					m.Units = append(m.Units, Unit{
						Experiment: sweepFluidExp, Algorithm: a, Scenario: t, Seed: seed,
					})
				}
			}
		}
		if sw.Backend == "packet" {
			for _, p := range pts {
				m.Units = append(m.Units, Unit{
					Experiment: sweepCheckExp, Algorithm: p.Algorithm,
					Scenario: checkScenario(p), Seed: seed,
				})
			}
			continue
		}
		if sw.Backend == "hybrid" {
			picked := seeded.SpotIndices(pts)
			for i, p := range pts {
				if !picked[i] {
					continue
				}
				m.Units = append(m.Units, Unit{
					Experiment: sweepCheckExp, Algorithm: p.Algorithm,
					Scenario: checkScenario(p), Seed: seed,
				})
			}
		}
	}
	return nil
}

// checkScenario encodes a grid point's topology and load into the unit's
// scenario axis: "topo@load" with the load in shortest-round-trip form.
func checkScenario(p backend.Point) string {
	return p.Topology + "@" + strconv.FormatFloat(p.Load, 'g', -1, 64)
}

// parseCheckScenario is the inverse of checkScenario.
func parseCheckScenario(s string) (topoName string, load float64, err error) {
	topoName, loadStr, ok := strings.Cut(s, "@")
	if !ok {
		return "", 0, fmt.Errorf("campaign: sweep-check scenario %q has no @load", s)
	}
	load, err = strconv.ParseFloat(loadStr, 64)
	if err != nil {
		return "", 0, fmt.Errorf("campaign: sweep-check scenario %q: %w", s, err)
	}
	return topoName, load, nil
}

// isSweepUnit reports whether the unit belongs to the sweep namespace.
func isSweepUnit(u Unit) bool {
	return u.Experiment == sweepFluidExp || u.Experiment == sweepCheckExp
}

// execSweepUnit is the unit executor for the sweep namespace. Both unit
// kinds delegate to backend.Sweep narrowed to the unit's slice of the
// grid, so the campaign path and the ad-hoc `mptcp-bench -sweep` path
// produce identical tables for identical points.
func execSweepUnit(ctx context.Context, u Unit, udir string, spec Spec) (UnitOutput, error) {
	if spec.Sweep == nil {
		return UnitOutput{}, fmt.Errorf("campaign: manifest holds sweep unit %s but the spec has no sweep", u.ID())
	}
	sw := spec.Sweep.WithDefaults()
	sw.Seed = u.Seed
	sw.Workers = 1 // the campaign parallelizes across units, not inside them

	switch u.Experiment {
	case sweepFluidExp:
		sw.Backend = "fluid"
		sw.Topologies = []string{u.Scenario}
		sw.Algorithms = []string{u.Algorithm}
	case sweepCheckExp:
		topoName, load, err := parseCheckScenario(u.Scenario)
		if err != nil {
			return UnitOutput{}, err
		}
		sw.Backend = "hybrid"
		sw.SpotCheck = 1 // this unit IS the spot check: verify its one point
		sw.Topologies = []string{topoName}
		sw.Algorithms = []string{u.Algorithm}
		sw.Loads = []float64{load}
	default:
		return UnitOutput{}, fmt.Errorf("campaign: %s is not a sweep unit", u.ID())
	}

	res, err := backend.Sweep(ctx, sw)
	if err != nil {
		if ctx.Err() != nil {
			return UnitOutput{Interrupted: true}, nil
		}
		return UnitOutput{}, err
	}
	if err := os.WriteFile(filepath.Join(udir, "table.txt"), []byte(res.Format()), 0o644); err != nil {
		return UnitOutput{}, supervise.Transient(err)
	}
	var events uint64
	for _, p := range res.Points {
		if p.Packet != nil {
			events += p.Packet.Events
		}
	}
	// A failed spot check is a quarantine-grade finding, not a crash: the
	// unit's table records the disagreement and the error surfaces it in
	// the journal note and the campaign summary.
	if !res.OK() {
		return UnitOutput{Events: events}, fmt.Errorf(
			"campaign: fluid/packet disagreement: %s", strings.Join(res.Disagreements, "; "))
	}
	return UnitOutput{Events: events}, nil
}

// dispatchUnit routes a unit to the sweep executor or the exp figure
// executor. It is the production Options.Exec.
func dispatchUnit(spec Spec) func(context.Context, Unit, string, exp.Config) (UnitOutput, error) {
	return func(ctx context.Context, u Unit, udir string, cfg exp.Config) (UnitOutput, error) {
		if isSweepUnit(u) {
			return execSweepUnit(ctx, u, udir, spec)
		}
		return execUnit(ctx, u, udir, cfg)
	}
}
