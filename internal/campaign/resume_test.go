package campaign

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

// realSpec exercises the production executor end to end: two figures with
// different shapes (fig1 sweeps subflow counts, fig4 is the energy/utility
// frontier) at a scale small enough for CI, across two seeds.
var realSpec = Spec{Experiments: []string{"fig1", "fig4"}, Seeds: []int64{1, 2}, Scale: 0.05}

// cleanRun executes an uninterrupted campaign and returns its merged
// deterministic outputs. Since campaign.json embeds each unit's artifact
// digest, comparing it between two runs compares every artifact byte —
// including obsv records when Spec.Records is set.
func cleanRun(t *testing.T, spec Spec, workers int) (results, payload string) {
	t.Helper()
	dir := t.TempDir()
	sum, err := Start(context.Background(), dir, spec, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Merged || sum.Quarantined != 0 {
		t.Fatalf("clean campaign did not merge cleanly: %+v", sum)
	}
	return mustOutputs(t, dir)
}

// TestKillResumeDeterminism is the headline robustness guarantee: a campaign
// interrupted after the k-th checkpoint and resumed merges to byte-identical
// outputs as an uninterrupted campaign, for several kill points k and at
// both -j 1 and -j 8. Determinism comes from unit identity (seeds live in
// the manifest, not the schedule), so neither the kill point nor the worker
// count may leak into results.txt or campaign.json.
func TestKillResumeDeterminism(t *testing.T) {
	wantResults, wantPayload := cleanRun(t, realSpec, 1)
	if r8, p8 := cleanRun(t, realSpec, 8); r8 != wantResults || p8 != wantPayload {
		t.Fatal("uninterrupted campaign differs between -j 1 and -j 8; kill/resume cannot be tested on top of that")
	}

	workerCounts := []int{1, 8}
	killPoints := []int{1, 2, 3}
	if testing.Short() {
		workerCounts = []int{8}
		killPoints = []int{1}
	}
	for _, j := range workerCounts {
		for _, k := range killPoints {
			t.Run(fmt.Sprintf("j%d_kill%d", j, k), func(t *testing.T) {
				dir := t.TempDir()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var done atomic.Int64
				sum, err := Start(ctx, dir, realSpec, Options{
					Workers: j,
					OnUnitDone: func(Unit, Entry) {
						if done.Add(1) == int64(k) {
							cancel()
						}
					},
				})
				if err != nil {
					t.Fatalf("interrupted invocation errored: %v", err)
				}
				// At -j 8 every unit may already be in flight when the cancel
				// lands; draining them can finish the campaign. That is legal —
				// cancellation stops dispatch, it does not discard finished work.
				if sum.Ran < k {
					t.Fatalf("killed after %d checkpoints but only %d ran: %+v", k, sum.Ran, sum)
				}

				sum2, err := Resume(context.Background(), dir, Options{Workers: j})
				if err != nil {
					t.Fatalf("resume errored: %v", err)
				}
				if !sum2.Merged || sum2.Interrupted {
					t.Fatalf("resume did not complete the campaign: %+v", sum2)
				}
				if sum2.Reused < k {
					t.Fatalf("resume reran checkpointed units: %+v", sum2)
				}
				gotResults, gotPayload := mustOutputs(t, dir)
				if gotResults != wantResults {
					t.Errorf("results.txt differs from uninterrupted run:\n%s\nwant:\n%s", gotResults, wantResults)
				}
				if gotPayload != wantPayload {
					t.Errorf("campaign.json differs from uninterrupted run:\n%s\nwant:\n%s", gotPayload, wantPayload)
				}
			})
		}
	}
}

// TestKillResumeChurnCampaign runs the kill/resume guarantee over the churn
// experiment: its units each birth and tear down a whole flow population
// (with per-flow record lines when Records is on), so a resumed campaign
// reproducing the uninterrupted digests proves the open-loop lifecycle —
// arrivals, shedding, horizon cuts — is deterministic across interruption.
func TestKillResumeChurnCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("churn campaign units simulate thousands of flows each")
	}
	spec := Spec{Experiments: []string{"churn"}, Seeds: []int64{1}, Scale: 0.05, Records: true, Check: true}
	wantResults, wantPayload := cleanRun(t, spec, 8)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	if _, err := Start(ctx, dir, spec, Options{
		Workers: 2,
		OnUnitDone: func(Unit, Entry) {
			if done.Add(1) == 1 {
				cancel()
			}
		},
	}); err != nil {
		t.Fatalf("interrupted invocation errored: %v", err)
	}
	sum, err := Resume(context.Background(), dir, Options{Workers: 8})
	if err != nil || !sum.Merged {
		t.Fatalf("resume: sum=%+v err=%v", sum, err)
	}
	if sum.Reused < 1 {
		t.Fatalf("resume reran checkpointed churn units: %+v", sum)
	}
	gotResults, gotPayload := mustOutputs(t, dir)
	if gotResults != wantResults {
		t.Errorf("results.txt differs from uninterrupted churn run:\n%s\nwant:\n%s", gotResults, wantResults)
	}
	if gotPayload != wantPayload {
		t.Error("campaign.json differs from uninterrupted churn run (unit digests changed)")
	}
}

// TestKillResumeDeterminismWithRecords repeats the kill/resume check with
// obsv record export on. Records join the unit digest, and the digest is in
// campaign.json, so the payload comparison proves record bytes survived the
// interruption identically too.
func TestKillResumeDeterminismWithRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("records variant doubles the campaign count; the digest mechanism is covered above")
	}
	spec := realSpec
	spec.Records = true
	wantResults, wantPayload := cleanRun(t, spec, 1)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	if _, err := Start(ctx, dir, spec, Options{
		Workers: 8,
		OnUnitDone: func(Unit, Entry) {
			if done.Add(1) == 2 {
				cancel()
			}
		},
	}); err != nil {
		t.Fatalf("interrupted invocation errored: %v", err)
	}
	sum, err := Resume(context.Background(), dir, Options{Workers: 8})
	if err != nil || !sum.Merged {
		t.Fatalf("resume: sum=%+v err=%v", sum, err)
	}
	gotResults, gotPayload := mustOutputs(t, dir)
	if gotResults != wantResults {
		t.Error("results.txt differs from uninterrupted records run")
	}
	if gotPayload != wantPayload {
		t.Errorf("campaign.json differs from uninterrupted records run:\n%s\nwant:\n%s", gotPayload, wantPayload)
	}
}
