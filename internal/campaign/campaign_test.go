package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mptcpsim/internal/exp"
	"mptcpsim/internal/supervise"
)

func TestExpandManifestOrderAndValidation(t *testing.T) {
	m, err := Expand(Spec{Experiments: []string{"fig4", "fig1"}, Seeds: []int64{2, 1}, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, u := range m.Units {
		ids = append(ids, u.ID())
	}
	want := []string{"fig4_all_all_seed2", "fig4_all_all_seed1", "fig1_all_all_seed2", "fig1_all_all_seed1"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Fatalf("expansion order %v, want %v (spec order is merge order)", ids, want)
	}

	if _, err := Expand(Spec{Experiments: []string{"nope"}}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := Expand(Spec{Experiments: []string{"fig1", "fig1"}}); err == nil {
		t.Fatal("duplicate experiment accepted")
	}
	if _, err := Expand(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

// TestExpandSplitsDeclaredAxes pins the finer-grained expansion: a figure
// that declares algorithm/scenario axes gets one unit per (scenario,
// algorithm, seed) cell, scenario-major to mirror the figure's own row
// order, while undeclared figures keep the coarse "all" unit.
func TestExpandSplitsDeclaredAxes(t *testing.T) {
	faultsExp, ok := exp.Lookup("faults")
	if !ok {
		t.Fatal("faults experiment not registered")
	}
	if len(faultsExp.Algorithms) == 0 || len(faultsExp.Scenarios) == 0 {
		t.Fatal("faults declares no splittable axes; this test expects both")
	}

	m, err := Expand(Spec{Experiments: []string{"faults", "fig1"}, Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	wantFaults := len(faultsExp.Scenarios) * len(faultsExp.Algorithms) * 2
	if got := len(m.Units); got != wantFaults+2 {
		t.Fatalf("expanded %d units, want %d faults cells + 2 coarse fig1 units", got, wantFaults)
	}
	if id := m.Units[0].ID(); id != "faults_ewtcp_outage_seed1" {
		t.Errorf("first unit %s, want faults_ewtcp_outage_seed1 (scenario-major, alg, then seed)", id)
	}
	if id := m.Units[1].ID(); id != "faults_ewtcp_outage_seed2" {
		t.Errorf("second unit %s, want faults_ewtcp_outage_seed2 (seeds innermost)", id)
	}
	if id := m.Units[2].ID(); id != "faults_coupled_outage_seed1" {
		t.Errorf("third unit %s, want faults_coupled_outage_seed1 (algorithms before scenarios)", id)
	}
	if id := m.Units[wantFaults].ID(); id != "fig1_all_all_seed1" {
		t.Errorf("first fig1 unit %s, want coarse fig1_all_all_seed1", id)
	}

	// The pinned axes reach the unit's exp.Config; the coarse sentinel
	// must not (an "all" filter would select nothing).
	var mu sync.Mutex
	cfgs := map[string]exp.Config{}
	fe := func(ctx context.Context, u Unit, udir string, cfg exp.Config) (UnitOutput, error) {
		mu.Lock()
		cfgs[u.ID()] = cfg
		mu.Unlock()
		if err := os.WriteFile(filepath.Join(udir, "table.txt"), []byte(u.ID()+"\n"), 0o644); err != nil {
			return UnitOutput{}, supervise.Transient(err)
		}
		return UnitOutput{Events: 1}, nil
	}
	dir := t.TempDir()
	spec := Spec{Experiments: []string{"faults", "fig1"}, Seeds: []int64{1}}
	if _, err := Start(context.Background(), dir, spec, Options{Workers: 2, Exec: fe}); err != nil {
		t.Fatal(err)
	}
	got := cfgs["faults_dts_flap_seed1"]
	if got.Algorithm != "dts" || got.Scenario != "flap" {
		t.Errorf("pinned unit ran with filter %q/%q, want dts/flap", got.Algorithm, got.Scenario)
	}
	coarse := cfgs["fig1_all_all_seed1"]
	if coarse.Algorithm != "" || coarse.Scenario != "" {
		t.Errorf("coarse unit ran with filter %q/%q, want empty", coarse.Algorithm, coarse.Scenario)
	}
}

// fakeExec is a deterministic unit executor for journal/merge tests: cheap,
// content derived only from the unit identity, and it records which units
// ran. fail selects unit IDs that fail permanently; transientFails counts
// down Transient failures before success.
type fakeExec struct {
	mu             sync.Mutex
	ran            []string
	fail           map[string]bool
	transientFails map[string]int
}

func (f *fakeExec) exec(ctx context.Context, u Unit, udir string, cfg exp.Config) (UnitOutput, error) {
	f.mu.Lock()
	f.ran = append(f.ran, u.ID())
	if n := f.transientFails[u.ID()]; n > 0 {
		f.transientFails[u.ID()] = n - 1
		f.mu.Unlock()
		return UnitOutput{}, supervise.Transient(errors.New("flaky filesystem"))
	}
	f.mu.Unlock()
	if f.fail != nil && f.fail[u.ID()] {
		return UnitOutput{}, fmt.Errorf("deterministic failure in %s", u.ID())
	}
	table := fmt.Sprintf("== %s ==\nrow for seed %d\n", u.ID(), u.Seed)
	if err := os.WriteFile(filepath.Join(udir, "table.txt"), []byte(table), 0o644); err != nil {
		return UnitOutput{}, supervise.Transient(err)
	}
	return UnitOutput{Events: uint64(u.Seed) * 100}, nil
}

func (f *fakeExec) runCount(id string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, r := range f.ran {
		if r == id {
			n++
		}
	}
	return n
}

var fakeSpec = Spec{Experiments: []string{"fig1", "fig4"}, Seeds: []int64{1, 2}, Scale: 0.1}

// mustOutputs reads the two merged artifacts a finished campaign must have.
func mustOutputs(t *testing.T, dir string) (results, payload string) {
	t.Helper()
	r, err := os.ReadFile(filepath.Join(dir, "results.txt"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := os.ReadFile(filepath.Join(dir, "campaign.json"))
	if err != nil {
		t.Fatal(err)
	}
	return string(r), string(p)
}

func TestJournalTornTailRecovered(t *testing.T) {
	ref := t.TempDir()
	fe := &fakeExec{}
	if sum, err := Start(context.Background(), ref, fakeSpec, Options{Workers: 1, Exec: fe.exec}); err != nil || !sum.Merged {
		t.Fatalf("reference campaign: sum=%+v err=%v", sum, err)
	}
	wantResults, wantPayload := mustOutputs(t, ref)

	dir := t.TempDir()
	fe2 := &fakeExec{}
	if _, err := Start(context.Background(), dir, fakeSpec, Options{Workers: 1, Exec: fe2.exec}); err != nil {
		t.Fatal(err)
	}
	// Tear the journal's final line mid-write, as a crash between write and
	// newline would. The victim unit's commit is lost; resume must detect
	// the torn line, truncate it away and re-run exactly that unit.
	jpath := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(jpath, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	fe3 := &fakeExec{}
	sum, err := Resume(context.Background(), dir, Options{Workers: 1, Exec: fe3.exec})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran != 1 || sum.Reused != 3 {
		t.Fatalf("resume after torn line: ran=%d reused=%d, want 1/3", sum.Ran, sum.Reused)
	}
	if !sum.Merged {
		t.Fatal("resume did not merge")
	}
	gotResults, gotPayload := mustOutputs(t, dir)
	if gotResults != wantResults {
		t.Errorf("results.txt differs after torn-journal resume:\n%s\nwant:\n%s", gotResults, wantResults)
	}
	if gotPayload != wantPayload {
		t.Errorf("campaign.json differs after torn-journal resume:\n%s\nwant:\n%s", gotPayload, wantPayload)
	}
}

func TestJournalInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	fe := &fakeExec{}
	if _, err := Start(context.Background(), dir, fakeSpec, Options{Workers: 1, Exec: fe.exec}); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the FIRST line: not a torn tail, must refuse to resume
	// rather than silently dropping committed state.
	corrupt := "garbage{{{\n" + string(data[strings.IndexByte(string(data), '\n')+1:])
	if err := os.WriteFile(jpath, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(context.Background(), dir, Options{Workers: 1, Exec: fe.exec}); err == nil {
		t.Fatal("interior journal corruption accepted")
	}
}

func TestDigestMismatchReruns(t *testing.T) {
	dir := t.TempDir()
	fe := &fakeExec{}
	if _, err := Start(context.Background(), dir, fakeSpec, Options{Workers: 1, Exec: fe.exec}); err != nil {
		t.Fatal(err)
	}
	wantResults, wantPayload := mustOutputs(t, dir)

	// Hand-edit one unit's artifact; its journaled digest no longer
	// matches, so resume must re-run it instead of trusting the artifact.
	victim := Unit{Experiment: "fig4", Algorithm: "all", Scenario: "all", Seed: 2}
	if err := os.WriteFile(filepath.Join(victim.Dir(dir), "table.txt"), []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fe2 := &fakeExec{}
	sum, err := Resume(context.Background(), dir, Options{Workers: 1, Exec: fe2.exec})
	if err != nil {
		t.Fatal(err)
	}
	if fe2.runCount(victim.ID()) != 1 || sum.Ran != 1 {
		t.Fatalf("tampered unit not re-run exactly once (ran=%v)", fe2.ran)
	}
	gotResults, gotPayload := mustOutputs(t, dir)
	if gotResults != wantResults || gotPayload != wantPayload {
		t.Error("outputs differ after digest-mismatch re-run")
	}
}

func TestQuarantinedUnitDegradesToNote(t *testing.T) {
	dir := t.TempDir()
	badID := "fig4_all_all_seed1"
	fe := &fakeExec{fail: map[string]bool{badID: true}}
	sum, err := Start(context.Background(), dir, fakeSpec, Options{Workers: 1, Exec: fe.exec})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 1 || !sum.Merged {
		t.Fatalf("sum=%+v, want one quarantined unit and a merge", sum)
	}
	results, payload := mustOutputs(t, dir)
	if !strings.Contains(results, "== "+badID+": quarantined ==") ||
		!strings.Contains(results, "deterministic failure in "+badID) {
		t.Errorf("merged results missing quarantine stanza:\n%s", results)
	}
	if !strings.Contains(payload, `"status": "quarantined"`) {
		t.Errorf("payload missing quarantined status:\n%s", payload)
	}

	// Resume must not re-run a deterministic failure.
	fe2 := &fakeExec{fail: map[string]bool{badID: true}}
	sum2, err := Resume(context.Background(), dir, Options{Workers: 1, Exec: fe2.exec})
	if err != nil {
		t.Fatal(err)
	}
	if len(fe2.ran) != 0 || sum2.Reused != 4 {
		t.Fatalf("resume re-ran quarantined unit: ran=%v sum=%+v", fe2.ran, sum2)
	}
}

func TestTransientFailureRetriesThenSucceeds(t *testing.T) {
	dir := t.TempDir()
	flaky := "fig1_all_all_seed2"
	fe := &fakeExec{transientFails: map[string]int{flaky: 2}}
	sum, err := Start(context.Background(), dir, fakeSpec, Options{Workers: 1, Exec: fe.exec, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 0 || sum.Ran != 4 {
		t.Fatalf("transient failures not retried to success: %+v", sum)
	}
	if n := fe.runCount(flaky); n != 3 {
		t.Fatalf("flaky unit ran %d times, want 3 (two transient failures + success)", n)
	}
}

func TestTransientExhaustionQuarantines(t *testing.T) {
	dir := t.TempDir()
	flaky := "fig1_all_all_seed1"
	fe := &fakeExec{transientFails: map[string]int{flaky: 99}}
	sum, err := Start(context.Background(), dir, fakeSpec, Options{Workers: 1, Exec: fe.exec, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 1 {
		t.Fatalf("exhausted transient retries did not quarantine: %+v", sum)
	}
}

func TestStartRefusesDifferentSpec(t *testing.T) {
	dir := t.TempDir()
	fe := &fakeExec{}
	if _, err := Start(context.Background(), dir, fakeSpec, Options{Workers: 1, Exec: fe.exec}); err != nil {
		t.Fatal(err)
	}
	other := fakeSpec
	other.Seeds = []int64{7}
	if _, err := Start(context.Background(), dir, other, Options{Workers: 1, Exec: fe.exec}); err == nil {
		t.Fatal("directory with a different spec accepted")
	}
	// Identical spec continues (shard-friendly idempotent start).
	sum, err := Start(context.Background(), dir, fakeSpec, Options{Workers: 1, Exec: fe.exec})
	if err != nil || sum.Reused != 4 {
		t.Fatalf("idempotent restart: sum=%+v err=%v", sum, err)
	}
}

func TestShardedCampaignMergesIdentical(t *testing.T) {
	ref := t.TempDir()
	fe := &fakeExec{}
	if _, err := Start(context.Background(), ref, fakeSpec, Options{Workers: 1, Exec: fe.exec}); err != nil {
		t.Fatal(err)
	}
	wantResults, wantPayload := mustOutputs(t, ref)

	dir := t.TempDir()
	var lastSum *Summary
	for shard := 0; shard < 2; shard++ {
		fs := &fakeExec{}
		sum, err := Start(context.Background(), dir, fakeSpec, Options{
			Workers: 1, Exec: fs.exec, Shard: Shard{Index: shard, Count: 2},
		})
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if sum.Total != 2 || sum.Ran != 2 {
			t.Fatalf("shard %d ran %d of %d units, want 2 of 2", shard, sum.Ran, sum.Total)
		}
		lastSum = sum
	}
	if !lastSum.Merged {
		t.Fatal("final shard did not merge")
	}
	gotResults, gotPayload := mustOutputs(t, dir)
	if gotResults != wantResults {
		t.Errorf("sharded results.txt differs from unsharded:\n%s\nwant:\n%s", gotResults, wantResults)
	}
	if gotPayload != wantPayload {
		t.Errorf("sharded campaign.json differs from unsharded:\n%s\nwant:\n%s", gotPayload, wantPayload)
	}
}

// TestShardedAxisSplitCampaignMergesIdentical is the sharded-merge
// equivalence guarantee at the finer unit grain: a figure split into
// per-(scenario, algorithm) units merges to byte-identical outputs across
// any shard count, including shard counts that cut through the middle of
// one figure's cells.
func TestShardedAxisSplitCampaignMergesIdentical(t *testing.T) {
	spec := Spec{Experiments: []string{"faults", "fig1"}, Seeds: []int64{1, 2}}
	m, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Units) <= 10 {
		t.Fatalf("spec expanded to only %d units; axis splitting is not in effect", len(m.Units))
	}

	ref := t.TempDir()
	fe := &fakeExec{}
	if sum, err := Start(context.Background(), ref, spec, Options{Workers: 2, Exec: fe.exec}); err != nil || !sum.Merged {
		t.Fatalf("reference campaign: sum=%+v err=%v", sum, err)
	}
	wantResults, wantPayload := mustOutputs(t, ref)
	for _, u := range m.Units {
		if !strings.Contains(wantResults, u.ID()) {
			t.Fatalf("merged results missing unit %s", u.ID())
		}
	}

	const shards = 5 // does not divide 50 units evenly: shards own ragged slices of the faults grid
	dir := t.TempDir()
	var lastSum *Summary
	for shard := 0; shard < shards; shard++ {
		fs := &fakeExec{}
		sum, err := Start(context.Background(), dir, spec, Options{
			Workers: 2, Exec: fs.exec, Shard: Shard{Index: shard, Count: shards},
		})
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		lastSum = sum
	}
	if !lastSum.Merged {
		t.Fatal("final shard did not merge")
	}
	gotResults, gotPayload := mustOutputs(t, dir)
	if gotResults != wantResults {
		t.Errorf("axis-split sharded results.txt differs from unsharded")
	}
	if gotPayload != wantPayload {
		t.Errorf("axis-split sharded campaign.json differs from unsharded")
	}
}

func TestResumeWithoutManifestErrors(t *testing.T) {
	if _, err := Resume(context.Background(), t.TempDir(), Options{}); err == nil {
		t.Fatal("resume of an empty directory accepted")
	}
}
