package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mptcpsim/internal/exp"
	"mptcpsim/internal/runner"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/supervise"
)

// Options controls how a campaign executes — scheduling and robustness
// knobs only. Nothing in Options may change the deterministic payload;
// anything that would belongs in Spec, where it is persisted.
type Options struct {
	// Workers sizes the unit pool. Units run with exp.Config.Workers = 1 —
	// the campaign parallelizes across units, not inside them — so -j
	// bounds total engine goroutines. 0 means one worker per CPU.
	Workers int
	// Shard restricts this process to its slice of the manifest.
	Shard Shard
	// Timeout bounds each simulation run's wall clock via the supervisor
	// (0 = none).
	Timeout time.Duration
	// Retries is how many times a transient unit failure (file system
	// errors, not simulation failures) is re-attempted before quarantine.
	// 0 means DefaultRetries; negative disables retry.
	Retries int
	// SyncEvery bounds journal fsync staleness (0 = DefaultSyncEvery).
	SyncEvery time.Duration
	// SampleInterval is the obsv record sampling period when Spec.Records
	// is set (0 = obsv.DefaultInterval).
	SampleInterval sim.Time
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)

	// Exec overrides unit execution (test seam; nil = the exp-backed
	// executor).
	Exec func(ctx context.Context, u Unit, dir string, cfg exp.Config) (UnitOutput, error)
	// OnUnitDone runs after a unit's journal line is appended (test seam
	// for simulating kills at exact checkpoint boundaries).
	OnUnitDone func(u Unit, e Entry)
}

// DefaultRetries is the transient-failure retry budget per unit.
const DefaultRetries = 2

// UnitOutput is what a unit executor reports back.
type UnitOutput struct {
	// Events is the unit's simulation event count (journaled, merged).
	Events uint64
	// Interrupted reports the unit was cut short by cancellation: its
	// artifacts are partial and it must not be checkpointed.
	Interrupted bool
}

// Summary is the outcome of one campaign invocation.
type Summary struct {
	// Total is the number of units this shard owns; Reused were satisfied
	// from the journal, Ran executed now, Quarantined failed permanently
	// (including reused quarantines), Pending remain unfinished.
	Total, Reused, Ran, Quarantined, Pending int
	// Interrupted: the invocation was cancelled before finishing; the
	// directory resumes exactly where the journal left off.
	Interrupted bool
	// Merged: every manifest unit (all shards) reached a terminal state
	// and the merged outputs were (re)written.
	Merged bool
	// Counts aggregates the figure-level supervised run outcomes of the
	// units that executed in this invocation.
	Counts supervise.Counts
}

// Start begins (or, when the directory already holds an identical spec,
// continues) a campaign in dir. A directory holding a different spec is
// refused — a campaign directory belongs to exactly one manifest.
func Start(ctx context.Context, dir string, spec Spec, opt Options) (*Summary, error) {
	m, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	existing, lerr := LoadManifest(dir)
	switch {
	case lerr == nil:
		if !specEqual(existing.Spec, m.Spec) {
			return nil, fmt.Errorf(
				"campaign: %s already holds a different campaign (use -resume to continue it, or a fresh directory)", dir)
		}
		m = existing
	case errors.Is(lerr, fs.ErrNotExist):
		if err := WriteManifest(dir, m); err != nil {
			return nil, err
		}
	default:
		return nil, lerr
	}
	return run(ctx, dir, m, opt)
}

// Resume continues an interrupted campaign from its manifest and journal:
// completed units are verified by digest and skipped, quarantined units
// stay quarantined, everything else re-runs. The spec comes from the
// manifest, never from the caller.
func Resume(ctx context.Context, dir string, opt Options) (*Summary, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("campaign: %s holds no campaign manifest (start one first)", dir)
		}
		return nil, err
	}
	return run(ctx, dir, m, opt)
}

func run(ctx context.Context, dir string, m *Manifest, opt Options) (*Summary, error) {
	if err := opt.Shard.validate(); err != nil {
		return nil, err
	}
	if opt.Workers <= 0 {
		opt.Workers = runner.DefaultWorkers()
	}
	if opt.Retries == 0 {
		opt.Retries = DefaultRetries
	}
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	execFn := opt.Exec
	if execFn == nil {
		execFn = dispatchUnit(m.Spec)
	}

	journal, recovery, err := OpenJournal(dir, opt.Shard, opt.SyncEvery)
	if err != nil {
		return nil, err
	}
	defer journal.Close()
	if recovery.TornLines > 0 {
		logf("journal: discarded %d torn trailing line(s); the affected units re-run", recovery.TornLines)
	}

	sum := &Summary{}
	var pending []Unit
	for i, u := range m.Units {
		if !opt.Shard.owns(i) {
			continue
		}
		sum.Total++
		e, ok := recovery.Entries[u.ID()]
		if ok && e.Status == StatusQuarantined {
			sum.Reused++
			sum.Quarantined++
			continue
		}
		if ok && e.Status == StatusDone {
			if d, derr := digestDir(u.Dir(dir)); derr == nil && d == e.Digest {
				sum.Reused++
				continue
			}
			logf("unit %s: journaled digest no longer matches its artifacts; re-running", u.ID())
		}
		pending = append(pending, u)
	}
	logf("%d units total on this shard: %d reused from journal, %d to run",
		sum.Total, sum.Reused, len(pending))

	runSup := supervise.New(supervise.Budget{Wall: opt.Timeout})
	var (
		mu          sync.Mutex // journal appends and summary updates
		interrupted bool
	)
	_, errs := runner.MapErrCtx(ctx, opt.Workers, len(pending), func(i int) (struct{}, error) {
		u := pending[i]
		cfg := exp.Config{
			Seed: u.Seed, Scale: m.Spec.Scale, Reps: m.Spec.Reps,
			Workers: 1, Check: m.Spec.Check, Sup: runSup, Ctx: ctx,
			SampleInterval: opt.SampleInterval,
		}
		// A pinned axis value narrows the figure to this unit's slice; the
		// sentinel "all" (undeclared axis, or a manifest from before the
		// axis was declared) leaves the filter off.
		if u.Algorithm != "all" {
			cfg.Algorithm = u.Algorithm
		}
		if u.Scenario != "all" {
			cfg.Scenario = u.Scenario
		}
		entry, out, uerr := runUnit(ctx, u, u.Dir(dir), cfg, m.Spec.Records, opt.Retries, execFn)
		mu.Lock()
		defer mu.Unlock()
		if out.Interrupted {
			interrupted = true
			sum.Pending++
			return struct{}{}, nil
		}
		if uerr != nil {
			// Journal append or digest failure: the unit ran but could not
			// be checkpointed. Fail hard — a journal that cannot be written
			// cannot promise resumability.
			return struct{}{}, uerr
		}
		if err := journal.Append(entry); err != nil {
			return struct{}{}, fmt.Errorf("campaign: journal append: %w", err)
		}
		sum.Ran++
		if entry.Status == StatusQuarantined {
			sum.Quarantined++
			logf("unit %s quarantined: %s", u.ID(), entry.Note)
		} else {
			logf("unit %s done (%d events)", u.ID(), entry.Events)
		}
		if opt.OnUnitDone != nil {
			opt.OnUnitDone(u, entry)
		}
		return struct{}{}, nil
	})
	for _, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, runner.ErrSkipped) {
			interrupted = true
			sum.Pending++
			continue
		}
		return nil, e
	}
	if err := journal.Sync(); err != nil {
		return nil, fmt.Errorf("campaign: journal sync: %w", err)
	}
	sum.Interrupted = interrupted || ctx.Err() != nil
	sum.Counts = runSup.Counts()

	// Merge when every unit across all shards is terminal; an incomplete
	// campaign (interrupted, or other shards still running) leaves the
	// previous merge untouched.
	if _, err := Merge(dir); err == nil {
		sum.Merged = true
	} else if !errors.Is(err, ErrIncomplete) {
		return nil, err
	}
	return sum, nil
}

// runUnit executes one unit with transient retry, returning its journal
// entry. The unit directory is wiped before each attempt so artifacts are
// exactly what this execution wrote — never a blend with a dead one.
func runUnit(ctx context.Context, u Unit, udir string, cfg exp.Config, records bool,
	retries int, execFn func(context.Context, Unit, string, exp.Config) (UnitOutput, error),
) (Entry, UnitOutput, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return Entry{}, UnitOutput{Interrupted: true}, nil
		}
		if err := os.RemoveAll(udir); err != nil {
			lastErr = supervise.Transient(err)
		} else if err := os.MkdirAll(udir, 0o755); err != nil {
			lastErr = supervise.Transient(err)
		} else {
			if records {
				cfg.OutDir = filepath.Join(udir, "records")
			}
			out, err := execSafe(ctx, u, udir, cfg, execFn)
			if err == nil {
				if out.Interrupted {
					return Entry{}, out, nil
				}
				digest, derr := digestDir(udir)
				if derr != nil {
					return Entry{}, UnitOutput{}, fmt.Errorf("campaign: digesting %s: %w", udir, derr)
				}
				return Entry{
					ID: u.ID(), Status: StatusDone, Digest: digest,
					Events: out.Events, Attempts: attempt,
				}, out, nil
			}
			lastErr = err
		}
		if supervise.IsTransient(lastErr) && attempt <= retries {
			time.Sleep(backoff(attempt))
			continue
		}
		// Permanent failure: quarantine the unit. Its stanza in the merged
		// results degrades to a note, mirroring how exp.Config.Sup drops a
		// failed row inside a figure.
		return Entry{
			ID: u.ID(), Status: StatusQuarantined,
			Attempts: attempt, Note: lastErr.Error(),
		}, UnitOutput{}, nil
	}
}

// execSafe invokes the unit executor with a panic guard: an escaped panic
// becomes the unit's quarantine note instead of killing the campaign.
func execSafe(ctx context.Context, u Unit, udir string, cfg exp.Config,
	execFn func(context.Context, Unit, string, exp.Config) (UnitOutput, error),
) (out UnitOutput, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return execFn(ctx, u, udir, cfg)
}

// backoff is the capped exponential delay before transient retry attempt
// (1-based).
func backoff(attempt int) time.Duration {
	d := 100 * time.Millisecond << (attempt - 1)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// execUnit is the production unit executor: it runs the unit's figure at
// the unit's seed and writes the rendered table as the unit's deterministic
// artifact (plus obsv records when cfg.OutDir is set).
func execUnit(ctx context.Context, u Unit, udir string, cfg exp.Config) (UnitOutput, error) {
	e, ok := exp.Lookup(u.Experiment)
	if !ok {
		// Expand validated the spec; reaching this means the manifest names
		// an experiment this build no longer has.
		return UnitOutput{}, fmt.Errorf("campaign: experiment %q unknown to this build", u.Experiment)
	}
	res := e.Run(cfg)
	if res.Interrupted {
		return UnitOutput{Interrupted: true}, nil
	}
	if err := os.WriteFile(filepath.Join(udir, "table.txt"), []byte(res.String()), 0o644); err != nil {
		return UnitOutput{}, supervise.Transient(err)
	}
	return UnitOutput{Events: res.Events}, nil
}

// digestDir hashes every regular file under dir (relative path, size and
// content, in sorted path order) into a stable identity for the unit's
// artifacts. The journal stores it at checkpoint; resume recomputes it so
// stale, truncated or hand-edited artifacts are re-run, not trusted.
func digestDir(dir string) (string, error) {
	var files []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			rel, rerr := filepath.Rel(dir, path)
			if rerr != nil {
				return rerr
			}
			files = append(files, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	h := sha256.New()
	for _, rel := range files {
		f, err := os.Open(filepath.Join(dir, filepath.FromSlash(rel)))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00", rel)
		_, cerr := io.Copy(h, f)
		f.Close()
		if cerr != nil {
			return "", cerr
		}
		h.Write([]byte{0})
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
