package check

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the conformance golden table")

// TestConformance runs the full differential harness — every algorithm's
// packet run against its fluid equilibrium — and requires (a) every row
// within its tolerance band and (b) the formatted table byte-identical to
// the committed golden, which CI diffs.
func TestConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance harness runs minutes of simulated time; skipped in -short")
	}
	c, err := RunConformance(ConformanceConfig{})
	if err != nil {
		t.Fatalf("RunConformance: %v", err)
	}
	got := c.Format()
	t.Logf("conformance table:\n%s", got)
	if !c.OK() {
		t.Errorf("conformance rows outside tolerance:\n%s", got)
	}

	golden := filepath.Join("testdata", "conformance_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("conformance table drifted from golden.\ngot:\n%s\nwant:\n%s\nIf the change is intended, regenerate with: go test ./internal/check -run TestConformance -update", got, want)
	}
}

// TestConformanceShiftMovesShare spot-checks the traffic-shifting property
// directly: under cross traffic on path1, both the fluid and the packet
// DTS shares on path0 must exceed the clean-scenario shares.
func TestConformanceShiftMovesShare(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the harness scenarios; skipped in -short")
	}
	c, err := RunConformance(ConformanceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var clean, shifted *ConfRow
	for i := range c.Rows {
		switch c.Rows[i].Algorithm {
		case "dts":
			clean = &c.Rows[i]
		case "dts-shift":
			shifted = &c.Rows[i]
		}
	}
	if clean == nil || shifted == nil {
		t.Fatal("harness lost its dts rows")
	}
	if shifted.PacketShare[0] <= clean.PacketShare[0] {
		t.Errorf("packet DTS did not shift toward the clean path: %.3f -> %.3f",
			clean.PacketShare[0], shifted.PacketShare[0])
	}
	if shifted.FluidShare[0] <= clean.FluidShare[0] {
		t.Errorf("fluid DTS did not shift toward the clean path: %.3f -> %.3f",
			clean.FluidShare[0], shifted.FluidShare[0])
	}
}
