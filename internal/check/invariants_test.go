package check

import (
	"strings"
	"testing"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

// cleanConn is a healthy two-subflow connection snapshot used as the base
// state every mutation test corrupts. All mutation tests share it, so a
// mutation that trips an unrelated invariant is caught too.
func cleanConn() ConnState {
	return ConnState{
		Name:       "c",
		Sent:       90, // 60+50 maxSent minus 20 reinjected
		Acked:      70,
		Reinjected: 20,
		Credits:    []int64{0, 15},
		Subflows: []SubflowState{
			{
				ID: 0, Cwnd: 10, SSThresh: 8, MinCwnd: 1,
				CumAck: 55, NextSeq: 60, MaxSent: 60,
				Inflight: 5, Outstanding: 4,
				State: "active",
			},
			{
				ID: 1, Cwnd: 1, SSThresh: 4, MinCwnd: 1,
				CumAck: 30, NextSeq: 30, MaxSent: 50,
				Inflight: 0, Outstanding: 0,
				State:           "probing",
				Transitions:     []string{"dead", "probing"},
				TransitionTimes: []sim.Time{sim.Second, 2 * sim.Second},
			},
		},
		Weights: []float64{0.6, 0.4},
	}
}

func TestCheckConnClean(t *testing.T) {
	if vs := CheckConn(0, cleanConn()); len(vs) != 0 {
		t.Fatalf("clean state reported violations: %v", vs)
	}
}

// TestMutationsTrip is the mutation suite: every invariant gets at least one
// deliberately broken state that must trip it — and must name the right
// invariant, so a checker that flags everything as one generic failure
// cannot pass.
func TestMutationsTrip(t *testing.T) {
	cases := []struct {
		name   string
		want   string // invariant that must fire
		mutate func(*ConnState)
	}{
		{
			name:   "sent segments vanish",
			want:   InvConnConserv,
			mutate: func(st *ConnState) { st.Sent -= 7 },
		},
		{
			name:   "maxSent inflated without charge",
			want:   InvConnConserv,
			mutate: func(st *ConnState) { st.Subflows[0].MaxSent += 3; st.Subflows[0].NextSeq += 3 },
		},
		{
			name:   "acked exceeds sent",
			want:   InvConnConserv,
			mutate: func(st *ConnState) { st.Acked = st.Sent + 1 },
		},
		{
			name:   "negative acked counter",
			want:   InvConnConserv,
			mutate: func(st *ConnState) { st.Acked = -1 },
		},
		{
			name: "negative reinjection credit",
			want: InvCredit,
			mutate: func(st *ConnState) {
				// Keep ΣMaxSent = Sent+Reinjected intact so only the credit
				// invariant can catch this.
				st.Credits[0] = -5
			},
		},
		{
			name:   "credit exceeds unacked range",
			want:   InvCredit,
			mutate: func(st *ConnState) { st.Credits[1] = st.Subflows[1].MaxSent - st.Subflows[1].CumAck + 1 },
		},
		{
			name:   "credits exceed lifetime reinjected",
			want:   InvCredit,
			mutate: func(st *ConnState) { st.Credits[0] = 10; st.Credits[1] = 15; st.Reinjected = 20 },
		},
		{
			name:   "cumAck past nextSeq",
			want:   InvSeq,
			mutate: func(st *ConnState) { st.Subflows[1].CumAck = st.Subflows[1].NextSeq + 1 },
		},
		{
			name:   "nextSeq past maxSent",
			want:   InvSeq,
			mutate: func(st *ConnState) { st.Subflows[1].NextSeq = st.Subflows[1].MaxSent + 2 },
		},
		{
			name:   "negative inflight",
			want:   InvSeq,
			mutate: func(st *ConnState) { st.Subflows[0].Inflight = -1; st.Subflows[0].Outstanding = -1 },
		},
		{
			name:   "pipe above inflight",
			want:   InvSeq,
			mutate: func(st *ConnState) { st.Subflows[0].Outstanding = st.Subflows[0].Inflight + 1 },
		},
		{
			name:   "cwnd below floor",
			want:   InvCwnd,
			mutate: func(st *ConnState) { st.Subflows[0].Cwnd = 0.5 },
		},
		{
			name:   "cwnd NaN",
			want:   InvCwnd,
			mutate: func(st *ConnState) { st.Subflows[0].Cwnd = nan() },
		},
		{
			name:   "cwnd ran away",
			want:   InvCwnd,
			mutate: func(st *ConnState) { st.Subflows[0].Cwnd = 1e18 },
		},
		{
			name:   "ssthresh below two",
			want:   InvCwnd,
			mutate: func(st *ConnState) { st.Subflows[0].SSThresh = 1 },
		},
		{
			name:   "unknown subflow state",
			want:   InvState,
			mutate: func(st *ConnState) { st.Subflows[0].State = "zombie" },
		},
		{
			name:   "illegal transition active to probing",
			want:   InvState,
			mutate: func(st *ConnState) { st.Subflows[1].Transitions = []string{"probing"} },
		},
		{
			name: "transition timeline out of order",
			want: InvState,
			mutate: func(st *ConnState) {
				st.Subflows[1].TransitionTimes = []sim.Time{2 * sim.Second, sim.Second}
			},
		},
		{
			name:   "timeline disagrees with state",
			want:   InvState,
			mutate: func(st *ConnState) { st.Subflows[1].State = "dead" },
		},
		{
			name: "weights sum drifted",
			want: InvWeights,
			// The pre-fix wVegas failure mode: a subflow dies, nobody
			// renormalizes, and the survivors keep only part of the budget.
			mutate: func(st *ConnState) { st.Weights = []float64{0.6, 0} },
		},
		{
			name:   "negative weight",
			want:   InvWeights,
			mutate: func(st *ConnState) { st.Weights = []float64{1.2, -0.2} },
		},
		{
			name:   "weight NaN",
			want:   InvWeights,
			mutate: func(st *ConnState) { st.Weights = []float64{nan(), 1} },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := cleanConn()
			tc.mutate(&st)
			vs := CheckConn(0, st)
			if len(vs) == 0 {
				t.Fatalf("mutation not detected")
			}
			for _, v := range vs {
				if v.Invariant == tc.want {
					return
				}
			}
			t.Fatalf("mutation tripped %v, want invariant %q", vs, tc.want)
		})
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

func TestCheckLinkMutations(t *testing.T) {
	clean := LinkState{Name: "l", Arrived: 100, Delivered: 80, Dropped: 10, RandDropped: 3, OutageDropped: 2, Queued: 5}
	if vs := CheckLink(0, clean); len(vs) != 0 {
		t.Fatalf("clean link reported violations: %v", vs)
	}
	lost := clean
	lost.Delivered-- // one packet unaccounted for
	vs := CheckLink(0, lost)
	if len(vs) != 1 || vs[0].Invariant != InvLinkConserv {
		t.Fatalf("packet leak not detected: %v", vs)
	}
	dup := clean
	dup.Arrived-- // one packet delivered out of thin air
	if vs := CheckLink(0, dup); len(vs) != 1 || vs[0].Invariant != InvLinkConserv {
		t.Fatalf("packet duplication not detected: %v", vs)
	}
}

func TestCheckMeterMutations(t *testing.T) {
	clean := MeterState{Name: "m", Joules: 10, PrevJoules: 8, MeanPower: 2}
	if vs := CheckMeter(0, clean); len(vs) != 0 {
		t.Fatalf("clean meter reported violations: %v", vs)
	}
	cases := []struct {
		name   string
		mutate func(*MeterState)
	}{
		{"negative joules", func(st *MeterState) { st.Joules = -1; st.PrevJoules = -2 }},
		{"joules decreased", func(st *MeterState) { st.Joules = 7 }},
		{"NaN joules", func(st *MeterState) { st.Joules = nan() }},
		{"negative mean power", func(st *MeterState) { st.MeanPower = -0.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := clean
			tc.mutate(&st)
			vs := CheckMeter(0, st)
			if len(vs) == 0 {
				t.Fatalf("mutation not detected")
			}
			for _, v := range vs {
				if v.Invariant != InvEnergy {
					t.Fatalf("wrong invariant %q", v.Invariant)
				}
			}
		})
	}
}

// TestInvariantsLiveRun drives a real lossy two-path simulation — enough
// congestion for fast retransmits, timeouts and an outage-driven failover —
// with the checker at a tight cadence, and requires zero violations.
func TestInvariantsLiveRun(t *testing.T) {
	eng := sim.NewEngine(42)
	net := topo.NewTwoPath(eng, topo.TwoPathConfig{
		Rates:      [2]int64{8 * netem.Mbps, 4 * netem.Mbps},
		QueueLimit: 20,
	})
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia"}, 1, net.Paths()...)

	// Saturating cross traffic on path1 forces drops; a mid-run outage on
	// path0 forces a failover (dead → probing → active), exercising the
	// credit invariants.
	workload.NewCBR(eng, net.Paths()[1].Forward[1:], 3*netem.Mbps, 1500).Start()
	l0 := net.Paths()[0].Forward[0]
	eng.Schedule(3*sim.Second, l0.SetDown)
	eng.Schedule(8*sim.Second, l0.SetUp)

	meter := energy.NewMeter(eng, energy.NewI7(), energy.ConnProbe(conn), 100*sim.Millisecond)

	inv := New(eng)
	inv.SetInterval(10 * sim.Millisecond)
	inv.Watch("conn", conn)
	inv.WatchPaths(net.Paths()...)
	inv.WatchMeter("nic", meter)
	inv.Start()

	conn.Start()
	meter.Start()
	eng.Run(15 * sim.Second)
	inv.Final()

	if err := inv.Err(); err != nil {
		t.Fatalf("live run violated invariants: %v", err)
	}
	if inv.Checks() < 100 {
		t.Fatalf("checker barely ran: %d checks", inv.Checks())
	}
	if conn.Subflows()[0].Stats().Fails == 0 {
		t.Fatalf("outage did not trigger failover; test lost its teeth")
	}
}

// TestUnwatch verifies a churning population can bound the watched set:
// unwatched connections are no longer checked (their later corruption is
// invisible), other watches and the links stay.
func TestUnwatch(t *testing.T) {
	eng := sim.NewEngine(5)
	net := topo.NewTwoPath(eng, topo.TwoPathConfig{})
	a := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia"}, 1, net.Paths()...)
	b := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia"}, 2, net.Paths()...)

	inv := New(eng)
	inv.Watch("a", a)
	inv.Watch("b", b)
	if len(inv.conns) != 2 {
		t.Fatalf("watching %d conns, want 2", len(inv.conns))
	}
	links := len(inv.links)
	inv.Unwatch(a)
	if len(inv.conns) != 1 || inv.conns[0].conn != b {
		t.Fatalf("Unwatch(a) left %+v", inv.conns)
	}
	if len(inv.links) != links {
		t.Errorf("Unwatch dropped links: %d -> %d", links, len(inv.links))
	}
	// Unwatching an unknown conn is a no-op, not a panic.
	inv.Unwatch(a)
	if len(inv.conns) != 1 {
		t.Fatalf("double Unwatch removed another conn")
	}
	// The surviving watch still checks clean on the live engine.
	inv.Start()
	b.Start()
	eng.Run(2 * sim.Second)
	inv.Final()
	if err := inv.Err(); err != nil {
		t.Fatalf("post-Unwatch run violated invariants: %v", err)
	}
	if inv.Checks() == 0 {
		t.Error("checker never ran after Unwatch")
	}
}

// TestFailFastPanics verifies FailFast mode actually halts the run with the
// violation detail (the experiment harness relies on this surfacing).
func TestFailFastPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	inv := New(eng)
	inv.FailFast = true
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("FailFast did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, InvEnergy) {
			t.Fatalf("panic %v does not name the invariant", r)
		}
	}()
	inv.report(CheckMeter(0, MeterState{Name: "m", Joules: -1})...)
}

// TestErrSummarizes checks the collected-mode error names the violations.
func TestErrSummarizes(t *testing.T) {
	eng := sim.NewEngine(1)
	inv := New(eng)
	inv.report(Violation{T: sim.Second, Invariant: InvClock, Detail: "x"})
	err := inv.Err()
	if err == nil || !strings.Contains(err.Error(), InvClock) {
		t.Fatalf("Err() = %v, want mention of %s", err, InvClock)
	}
}

// TestInject verifies the chaos failpoint hook behaves exactly like a
// checker-found violation in both modes.
func TestInject(t *testing.T) {
	eng := sim.NewEngine(1)
	inv := New(eng)
	v := Violation{T: sim.Second, Invariant: "chaos.failpoint", Detail: "injected"}
	inv.Inject(v)
	if err := inv.Err(); err == nil || !strings.Contains(err.Error(), "chaos.failpoint") {
		t.Fatalf("Err() = %v, want injected violation", err)
	}

	ff := New(eng)
	ff.FailFast = true
	defer func() {
		r := recover()
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "chaos.failpoint") {
			t.Fatalf("recovered %v, want FailFast panic naming the invariant", r)
		}
	}()
	ff.Inject(v)
	t.Fatalf("FailFast Inject did not panic")
}
