// Package check is the model-conformance and invariant-checking layer: the
// machinery that continuously proves the packet-level simulator, the
// congestion-control algorithms and the energy accounting agree with the
// structural rules they claim to follow and with the paper's Eq. 3 fluid
// model.
//
// It has two halves:
//
// Invariants hooks a running simulation (connections, links, energy meters,
// the engine clock) and asserts structural invariants on a fixed simulated-
// time cadence: end-to-end segment conservation (distinct segments charged =
// delivered + in flight + re-injected), per-link packet conservation
// (arrived = delivered + dropped + queued), cwnd/ssthresh bounds, a
// non-decreasing clock, non-negative inflight and joules, the re-injection
// credit balance of the failover design, and legal subflow state
// transitions. Both CLIs expose it behind -check, and the experiment
// harness turns it on for every test run via exp.Config.Check. Invariant
// evaluation is split into snapshot extraction (thin, trusted) and pure
// functions over snapshot structs, so each invariant is independently
// testable against deliberately broken synthetic states.
//
// Conformance is the differential half: for every multipath algorithm it
// solves the Eq. 3 fluid equilibrium with internal/fluid, runs the matching
// packet-level scenario, and asserts the per-path throughput shares (and
// DTS's traffic-shifting ratio) land within a documented tolerance band.
// cmd/mptcp-bench -validate renders the comparison as a table whose golden
// copy is committed and diffed in CI; see EXPERIMENTS.md ("Validation
// methodology") for the bands and the regeneration procedure.
package check
