package check

import (
	"fmt"
	"math"
	"strings"

	"mptcpsim/internal/core"
	"mptcpsim/internal/fluid"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

// The differential-conformance harness: for every multipath algorithm it
// runs the asymmetric two-path packet scenario, parameterizes the Eq. 3
// fluid model at the packet run's measured operating point (per-path SRTT
// and baseRTT/RTT ratio), solves the fluid equilibrium, and compares the
// per-path throughput shares. Agreement within each row's tolerance band is
// the evidence that the packet-level implementations follow the model they
// claim to implement. See EXPERIMENTS.md, "Validation methodology".

// ConformanceConfig parameterizes the harness. The zero value takes the
// documented defaults, which are what the committed golden was generated
// with.
type ConformanceConfig struct {
	Seed     int64    // engine seed (default 1)
	Duration sim.Time // total simulated run length (default 60 s)
	Warmup   sim.Time // excluded from measurement (default 20 s)
}

func (c ConformanceConfig) withDefaults() ConformanceConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration == 0 {
		c.Duration = 60 * sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * sim.Second
	}
	return c
}

// The fixed two-path scenario every row runs: asymmetric capacity (2:1) so
// the equilibrium shares are distinguishable from an even split, equal
// propagation delays so capacity — not RTT bias — drives the split.
const (
	confRate0    = 16 * netem.Mbps
	confRate1    = 8 * netem.Mbps
	confDelay    = 20 * sim.Millisecond
	confQueue    = 50
	confWirePkt  = 1500           // wire size of a full segment (MSS 1448 + 52)
	// Cross traffic for the shifting row: half of path1's capacity. Loading
	// the path much harder starves it entirely in the fluid model (rates can
	// fall to zero there), while a packet subflow never drops below one
	// segment per RTT — the comparison is only meaningful while both sides
	// keep the path alive.
	confCrossBps = 4 * netem.Mbps
	confPriceRho = 1.0            // Eq. 6 price on path0's switch link (dtsep row)
)

// ConfRow is one algorithm's conformance verdict.
type ConfRow struct {
	Algorithm   string
	FluidShare  [2]float64 // per-path share of the fluid equilibrium
	PacketShare [2]float64 // per-path share measured in the packet run
	Delta       float64    // max |fluid − packet| over the two paths
	Tol         float64    // documented tolerance band
	Converged   bool       // fluid integration reached equilibrium
	OK          bool
}

// Conformance is the harness result: one row per algorithm plus the DTS
// traffic-shifting row.
type Conformance struct {
	Rows []ConfRow
}

// OK reports whether every row passed.
func (c *Conformance) OK() bool {
	for _, r := range c.Rows {
		if !r.OK {
			return false
		}
	}
	return true
}

// confSpec describes how to validate one algorithm. The fluid side of each
// row — ψ builder or oracle — comes from fluid.ModelFor, the same mapping
// the backend fluid engine uses (internal/backend), so the validator and
// the backend cannot drift apart.
type confSpec struct {
	name string
	alg  string // registry name for the packet run (defaults to name)
	tol  float64

	// phi adds a compensative term (dtsep row). nil for none.
	phi func(x []float64, r int) float64

	// price, when non-zero, is applied to path0's switch-to-switch link
	// before the packet run (the Eq. 6 charge the dtsep row needs).
	price float64

	// cross, when non-zero, runs CBR cross traffic at this rate on path1 —
	// the traffic-shifting scenario.
	cross int64
}

// algName returns the registry name the row runs and models.
func (s confSpec) algName() string {
	if s.alg != "" {
		return s.alg
	}
	return s.name
}

func confSpecs() []confSpec {
	return []confSpec{
		{name: "ewtcp", tol: 0.10},
		{name: "coupled", tol: 0.10},
		{name: "lia", tol: 0.10},
		{name: "olia", tol: 0.10},
		{name: "balia", tol: 0.10},
		// cubic: per-subflow CUBIC is uncoupled, and on disjoint DropTail
		// bottlenecks any uncoupled loss-based law settles at the capacity
		// split — fluid.ModelFor maps it to ψ_r = (Σx)²/x_r² (n independent
		// flows; the window-law details shift the loss rate, not the
		// equilibrium share).
		{name: "cubic", tol: 0.10},
		// wVegas is delay-based: it keeps per-path backlog near its Vegas
		// target instead of probing for loss, so the Kelly loss price of
		// Eq. 3 does not model it. fluid.ModelFor gives it the
		// free-capacity-split oracle the paper expects of it on disjoint
		// bottlenecks; same for plain per-subflow Vegas, which holds each
		// path's backlog in [α, β] independently.
		{name: "wvegas", tol: 0.10},
		{name: "vegas", tol: 0.10},
		{name: "dts", tol: 0.10},
		// dtsep: path0's switch link charges the Eq. 6 price rho, and the
		// fluid side carries the matching compensative term
		// φ_0 = κ·ρ·x_0² (Eq. 9 converted to rate form).
		{name: "dtsep", tol: 0.10, price: confPriceRho,
			phi: func(x []float64, r int) float64 {
				if r != 0 {
					return 0
				}
				return core.DefaultKappa * confPriceRho * x[0] * x[0]
			}},
		// dts-shift: DTS with cross traffic on path1 — the traffic-shifting
		// scenario. Wider band than the clean rows: the fluid model treats
		// cross traffic as an unresponsive constant load, but in the packet
		// scenario the DropTail queue drops CBR packets too, which leaves the
		// subflow a larger share than Eq. 3 predicts. The shifting DIRECTION
		// is asserted exactly (see TestConformanceShiftMovesShare); the
		// magnitude gets the 0.15 band.
		{name: "dts-shift", alg: "dts", tol: 0.15, cross: confCrossBps},
	}
}

// packetResult is the measured operating point of one packet-level run.
type packetResult struct {
	share [2]float64 // per-path goodput shares over the measurement window
	srtt  [2]float64 // time-averaged SRTT, seconds
	frac  [2]float64 // baseRTT / avg SRTT
}

// runPacket executes the two-path scenario for one spec and measures it.
func runPacket(cfg ConformanceConfig, spec confSpec) (packetResult, error) {
	eng := sim.NewEngine(cfg.Seed)
	net := topo.NewTwoPath(eng, topo.TwoPathConfig{
		Rates:      [2]int64{confRate0, confRate1},
		Delay:      confDelay,
		QueueLimit: confQueue,
	})
	if spec.price != 0 {
		// The switch-to-switch hop of path0 (the Eq. 6 charge point).
		net.Paths()[0].Forward[1].SetPrice(spec.price, 0, 0)
	}
	conn, err := mptcp.New(eng, mptcp.Config{Algorithm: spec.algName()}, 1, net.Paths()...)
	if err != nil {
		return packetResult{}, err
	}
	if spec.cross != 0 {
		workload.NewCBR(eng, net.Paths()[1].Forward[1:], spec.cross, confWirePkt).Start()
	}

	inv := New(eng)
	inv.FailFast = true
	inv.Watch(spec.name, conn)
	inv.WatchPaths(net.Paths()...)
	inv.Start()

	// Measurement: snapshot cumulative acks at warmup, sample SRTT on a
	// fixed cadence through the window, read the deltas at the horizon.
	var ackAt [2]int64
	var srttSum [2]float64
	var srttN int
	subs := conn.Subflows()
	eng.Schedule(cfg.Warmup, func() {
		for r := range ackAt {
			ackAt[r] = subs[r].Acked()
		}
	})
	var sample func()
	sample = func() {
		for r := range srttSum {
			srttSum[r] += subs[r].SRTT().Seconds()
		}
		srttN++
		if eng.Now() < cfg.Duration {
			eng.ScheduleAfter(250*sim.Millisecond, sample)
		}
	}
	eng.Schedule(cfg.Warmup, sample)

	conn.Start()
	eng.Run(cfg.Duration)
	inv.Final()

	var res packetResult
	var total float64
	var delta [2]float64
	for r := range delta {
		delta[r] = float64(subs[r].Acked() - ackAt[r])
		total += delta[r]
	}
	if total <= 0 {
		return res, fmt.Errorf("conformance %s: no goodput in measurement window", spec.name)
	}
	for r := range delta {
		res.share[r] = delta[r] / total
		res.srtt[r] = srttSum[r] / float64(srttN)
		if base := subs[r].BaseRTT().Seconds(); base > 0 && res.srtt[r] > 0 {
			res.frac[r] = math.Min(base/res.srtt[r], 1)
		} else {
			res.frac[r] = 1
		}
	}
	return res, nil
}

// confPaths is the fluid view of the fixed two-path scenario, optionally
// with the shifting row's cross load on path1.
func confPaths(pr packetResult, cross int64) []fluid.Path {
	paths := []fluid.Path{
		{RTT: pr.srtt[0], Capacity: float64(confRate0) / (8 * confWirePkt)},
		{RTT: pr.srtt[1], Capacity: float64(confRate1) / (8 * confWirePkt)},
	}
	if cross != 0 {
		paths[1].Cross = float64(cross) / (8 * confWirePkt)
	}
	return paths
}

// solveFluid computes the Eq. 3 equilibrium shares at the measured
// operating point, via the same fluid.ModelFor mapping and
// EquilibriumShares solve path the backend fluid engine uses.
func solveFluid(model fluid.AlgModel, spec confSpec, pr packetResult) ([2]float64, bool) {
	// PriceExp sharpens the Kelly price beyond its default b=6: the packet
	// scenario's DropTail queues are a hard capacity knee (no loss below
	// capacity, heavy loss above), and a soft price would tax flows well
	// below capacity — visibly starving the cross-loaded path of the
	// shifting row where the real subflow still holds its share.
	s := &fluid.System{Paths: confPaths(pr, spec.cross), PriceExp: 20}
	s.Psi = model.Psi(pr.srtt[:], pr.frac[:])
	s.Phi = spec.phi
	shares, _, ok := s.EquilibriumShares(1e-3, 400000)
	return [2]float64{shares[0], shares[1]}, ok
}

// RunConformance runs the full differential harness.
func RunConformance(cfg ConformanceConfig) (*Conformance, error) {
	cfg = cfg.withDefaults()
	out := &Conformance{}
	for _, spec := range confSpecs() {
		model, ok := fluid.ModelFor(spec.algName())
		if !ok {
			return nil, fmt.Errorf("conformance %s: no fluid mapping for %q", spec.name, spec.algName())
		}
		pr, err := runPacket(cfg, spec)
		if err != nil {
			return nil, err
		}
		row := ConfRow{Algorithm: spec.name, PacketShare: pr.share, Tol: spec.tol}
		if model.Psi != nil {
			row.FluidShare, row.Converged = solveFluid(model, spec, pr)
		} else {
			shares := model.Oracle(confPaths(pr, spec.cross))
			row.FluidShare = [2]float64{shares[0], shares[1]}
			row.Converged = true
		}
		for r := range row.FluidShare {
			if d := math.Abs(row.FluidShare[r] - row.PacketShare[r]); d > row.Delta {
				row.Delta = d
			}
		}
		row.OK = row.Converged && row.Delta <= row.Tol
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format renders the conformance table — the artifact CI diffs against the
// committed golden, so it is deliberately plain and byte-stable.
func (c *Conformance) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %8s %7s %6s  %s\n",
		"algorithm", "fluid0", "fluid1", "pkt0", "pkt1", "delta", "tol", "status")
	for _, r := range c.Rows {
		status := "ok"
		if !r.Converged {
			status = "no-converge"
		} else if !r.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "%-10s %8.3f %8.3f %8.3f %8.3f %7.3f %6.2f  %s\n",
			r.Algorithm, r.FluidShare[0], r.FluidShare[1],
			r.PacketShare[0], r.PacketShare[1], r.Delta, r.Tol, status)
	}
	return sb.String()
}
