package check

import (
	"fmt"
	"math"
	"strings"

	"mptcpsim/internal/core"
	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// DefaultInterval is the invariant-evaluation cadence in simulated time.
// Fifty milliseconds keeps the overhead far below the packet event rate
// while still catching transient corruption within a few RTTs.
const DefaultInterval = 50 * sim.Millisecond

// Violation is one failed invariant: where in simulated time, which rule,
// and the concrete numbers that broke it.
type Violation struct {
	T         sim.Time
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.3fs %s: %s", v.T.Seconds(), v.Invariant, v.Detail)
}

// The invariant names, as they appear in Violation.Invariant. Each has a
// matching negative test in invariants_test.go that must trip it.
const (
	InvClock       = "clock"             // engine time never decreases
	InvConnConserv = "conn.conservation" // ΣMaxSent = Sent+Reinjected; Acked ≤ Sent
	InvCredit      = "conn.credit"       // re-injection credits balanced and bounded
	InvSeq         = "subflow.seq"       // 0 ≤ CumAck ≤ NextSeq ≤ MaxSent; pipes non-negative
	InvCwnd        = "subflow.cwnd"      // MinCwnd ≤ cwnd, ssthresh ≥ 2, all finite
	InvState       = "subflow.state"     // legal failover transitions, ordered in time
	InvEnergy      = "meter.energy"      // joules non-negative, non-decreasing, finite
	InvLinkConserv = "link.conservation" // arrived = delivered + dropped + queued
	InvWeights     = "alg.weights"       // Σ weights = 1 ± ε, each in [0, 1], finite
)

// weightSumTol bounds |Σ weights − 1| for weighted algorithms: the vector
// is renormalized exactly on membership changes and preserved by the EWMA
// round update, so only float rounding accumulates.
const weightSumTol = 1e-6

// --- snapshot layer -------------------------------------------------------
//
// Invariants are evaluated against plain snapshot structs, never against
// live objects, so each rule is a pure function that the negative tests can
// feed deliberately broken states.

// SubflowState is the checked view of one tcp.Subflow.
type SubflowState struct {
	ID              int
	Cwnd, SSThresh  float64
	MinCwnd         float64
	CumAck          int64
	NextSeq         int64
	MaxSent         int64
	Inflight        int64
	Outstanding     int64
	State           string   // "active", "dead" or "probing"
	Transitions     []string // failover timeline labels, in order
	TransitionTimes []sim.Time
}

// ConnState is the checked view of one mptcp.Conn.
type ConnState struct {
	Name       string
	Sent       int64 // distinct segments currently charged (net of handbacks)
	Acked      int64 // segments counted as delivered at the connection level
	Reinjected int64 // lifetime total of segments handed back at failures
	Credits    []int64
	Subflows   []SubflowState

	// Weights is the algorithm's per-subflow weight vector when the
	// algorithm is core.Weighted (wVegas) and has initialized it; nil
	// otherwise. Σ weights must stay at 1 within weightSumTol.
	Weights []float64
}

// LinkState is the checked view of one netem.Link's conservation counters.
type LinkState struct {
	Name          string
	Arrived       uint64
	Delivered     uint64
	Dropped       uint64
	RandDropped   uint64
	OutageDropped uint64
	Queued        int
}

// MeterState is the checked view of one energy.Meter: the current reading
// plus the reading at the previous check, for monotonicity.
type MeterState struct {
	Name       string
	Joules     float64
	PrevJoules float64
	MeanPower  float64
}

// SnapshotConn extracts the checked state of a connection.
func SnapshotConn(name string, c *mptcp.Conn) ConnState {
	st := ConnState{
		Name:       name,
		Sent:       c.SentSegs(),
		Acked:      c.AckedSegs(),
		Reinjected: c.ReinjectedSegs(),
		Credits:    c.ReinjectCredits(),
	}
	if w, ok := c.Alg().(core.Weighted); ok {
		if ws := w.Weights(); len(ws) > 0 {
			st.Weights = append([]float64(nil), ws...)
		}
	}
	for _, s := range c.Subflows() {
		sub := SubflowState{
			ID:          s.ID(),
			Cwnd:        s.Cwnd(),
			SSThresh:    s.SSThresh(),
			MinCwnd:     s.Config().MinCwnd,
			CumAck:      s.Acked(),
			NextSeq:     s.NextSeq(),
			MaxSent:     s.MaxSent(),
			Inflight:    s.Inflight(),
			Outstanding: s.Outstanding(),
			State:       s.State().String(),
		}
		for _, ev := range s.Transitions().Events {
			sub.Transitions = append(sub.Transitions, ev.Label)
			sub.TransitionTimes = append(sub.TransitionTimes, ev.T)
		}
		st.Subflows = append(st.Subflows, sub)
	}
	return st
}

// SnapshotLink extracts the checked state of a link.
func SnapshotLink(l *netem.Link) LinkState {
	return LinkState{
		Name:          l.Name(),
		Arrived:       l.Arrived(),
		Delivered:     l.Delivered(),
		Dropped:       l.Dropped(),
		RandDropped:   l.RandDropped(),
		OutageDropped: l.OutageDropped(),
		Queued:        l.QueueLen(),
	}
}

// --- pure invariant checks ------------------------------------------------

// CheckConn evaluates the connection-level and per-subflow invariants at
// instant t.
func CheckConn(t sim.Time, st ConnState) []Violation {
	var out []Violation
	add := func(inv, format string, args ...any) {
		out = append(out, Violation{T: t, Invariant: inv,
			Detail: fmt.Sprintf("conn %s: ", st.Name) + fmt.Sprintf(format, args...)})
	}

	// Segment conservation. Every distinct segment is charged exactly once
	// per subflow that carries it (NoteSend), and failures move charges from
	// Sent to Reinjected without creating or destroying any.
	var sumMaxSent int64
	for _, s := range st.Subflows {
		sumMaxSent += s.MaxSent
	}
	if sumMaxSent != st.Sent+st.Reinjected {
		add(InvConnConserv, "ΣMaxSent=%d but Sent+Reinjected=%d+%d=%d",
			sumMaxSent, st.Sent, st.Reinjected, st.Sent+st.Reinjected)
	}
	if st.Sent < 0 || st.Acked < 0 || st.Reinjected < 0 {
		add(InvConnConserv, "negative counter: sent=%d acked=%d reinjected=%d",
			st.Sent, st.Acked, st.Reinjected)
	}
	if st.Acked > st.Sent {
		add(InvConnConserv, "delivered more than charged: acked=%d > sent=%d",
			st.Acked, st.Sent)
	}

	// Re-injection credit balance: every credit is non-negative, never
	// exceeds the frozen unacked range of its subflow, and the total never
	// exceeds what was handed back over the connection's lifetime.
	var sumCredit int64
	for r, credit := range st.Credits {
		sumCredit += credit
		if credit < 0 {
			add(InvCredit, "subflow %d credit %d < 0", r, credit)
			continue
		}
		if r < len(st.Subflows) {
			if unacked := st.Subflows[r].MaxSent - st.Subflows[r].CumAck; credit > unacked {
				add(InvCredit, "subflow %d credit %d exceeds unacked range %d", r, credit, unacked)
			}
		}
	}
	if sumCredit > st.Reinjected {
		add(InvCredit, "Σcredit=%d exceeds lifetime reinjected=%d", sumCredit, st.Reinjected)
	}

	// Weighted algorithms (wVegas): the rate-share weight vector stays a
	// probability vector — each weight finite in [0, 1], summing to 1.
	if len(st.Weights) > 0 {
		var sum float64
		for r, w := range st.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 || w > 1+weightSumTol {
				add(InvWeights, "weight[%d]=%g outside [0, 1]", r, w)
			}
			sum += w
		}
		if math.Abs(sum-1) > weightSumTol {
			add(InvWeights, "Σweights=%g differs from 1 by more than %g", sum, weightSumTol)
		}
	}

	for _, s := range st.Subflows {
		out = append(out, checkSubflow(t, st.Name, s)...)
	}
	return out
}

// validStates are the legal subflow failover states and their legal
// successors in the transition timeline. A subflow starts active; "active"
// in the timeline is a revival.
var validSuccessor = map[string]map[string]bool{
	"active":  {"dead": true},
	"dead":    {"probing": true, "active": true},
	"probing": {"active": true},
}

func checkSubflow(t sim.Time, conn string, s SubflowState) []Violation {
	var out []Violation
	add := func(inv, format string, args ...any) {
		out = append(out, Violation{T: t, Invariant: inv,
			Detail: fmt.Sprintf("conn %s subflow %d: ", conn, s.ID) + fmt.Sprintf(format, args...)})
	}

	// Sequence-space ordering and non-negative pipes.
	if s.CumAck < 0 || s.CumAck > s.NextSeq || s.NextSeq > s.MaxSent {
		add(InvSeq, "sequence order broken: 0 ≤ cumAck=%d ≤ nextSeq=%d ≤ maxSent=%d",
			s.CumAck, s.NextSeq, s.MaxSent)
	}
	if s.Inflight < 0 {
		add(InvSeq, "negative inflight %d", s.Inflight)
	}
	if s.Outstanding < 0 || s.Outstanding > s.Inflight {
		add(InvSeq, "outstanding=%d outside [0, inflight=%d]", s.Outstanding, s.Inflight)
	}

	// Window bounds. The transport floors cwnd at MinCwnd and ssthresh at 2
	// on every write; 1<<30 is the initial "infinite" ssthresh, so anything
	// above it means arithmetic ran away.
	const maxWindow = float64(1 << 30)
	if math.IsNaN(s.Cwnd) || math.IsInf(s.Cwnd, 0) || s.Cwnd < s.MinCwnd || s.Cwnd > maxWindow {
		add(InvCwnd, "cwnd=%g outside [minCwnd=%g, %g]", s.Cwnd, s.MinCwnd, maxWindow)
	}
	if math.IsNaN(s.SSThresh) || math.IsInf(s.SSThresh, 0) || s.SSThresh < 2 || s.SSThresh > maxWindow {
		add(InvCwnd, "ssthresh=%g outside [2, %g]", s.SSThresh, maxWindow)
	}

	// Failover state machine: a known state, a timeline that moves forward
	// in time through legal transitions, ending at the current state.
	if _, ok := validSuccessor[s.State]; !ok {
		add(InvState, "unknown state %q", s.State)
		return out
	}
	prev := "active"
	var prevT sim.Time
	for i, label := range s.Transitions {
		if !validSuccessor[prev][label] {
			add(InvState, "illegal transition %s→%s at timeline index %d", prev, label, i)
		}
		if i < len(s.TransitionTimes) {
			if tt := s.TransitionTimes[i]; tt < prevT {
				add(InvState, "transition %s at %.3fs before previous at %.3fs",
					label, tt.Seconds(), prevT.Seconds())
			} else {
				prevT = tt
			}
		}
		prev = label
	}
	if prev != s.State {
		add(InvState, "timeline ends at %q but state is %q", prev, s.State)
	}
	return out
}

// CheckLink evaluates per-link packet conservation at instant t: every
// packet presented to the link is delivered, dropped (overflow, random loss
// or outage) or still queued — nothing appears or vanishes.
func CheckLink(t sim.Time, st LinkState) []Violation {
	accounted := st.Delivered + st.Dropped + st.RandDropped + st.OutageDropped + uint64(st.Queued)
	if st.Arrived != accounted {
		return []Violation{{T: t, Invariant: InvLinkConserv, Detail: fmt.Sprintf(
			"link %s: arrived=%d but delivered+dropped+rand+outage+queued=%d+%d+%d+%d+%d=%d",
			st.Name, st.Arrived, st.Delivered, st.Dropped, st.RandDropped,
			st.OutageDropped, st.Queued, accounted)}}
	}
	return nil
}

// CheckMeter evaluates the energy-accounting invariants at instant t:
// joules are finite, non-negative and non-decreasing, and mean power is
// finite and non-negative.
func CheckMeter(t sim.Time, st MeterState) []Violation {
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{T: t, Invariant: InvEnergy,
			Detail: fmt.Sprintf("meter %s: ", st.Name) + fmt.Sprintf(format, args...)})
	}
	if math.IsNaN(st.Joules) || math.IsInf(st.Joules, 0) || st.Joules < 0 {
		add("joules=%g not a finite non-negative value", st.Joules)
	}
	if st.Joules < st.PrevJoules {
		add("joules decreased: %g after %g", st.Joules, st.PrevJoules)
	}
	if math.IsNaN(st.MeanPower) || math.IsInf(st.MeanPower, 0) || st.MeanPower < 0 {
		add("mean power %g not a finite non-negative value", st.MeanPower)
	}
	return out
}

// --- runtime --------------------------------------------------------------

// Invariants hooks a running simulation and evaluates every registered
// invariant on a fixed simulated-time cadence (and once more via Final at
// the end of the run). Register objects before Start; the checker is as
// deterministic as the run it watches.
type Invariants struct {
	eng      *sim.Engine
	interval sim.Time

	// FailFast panics on the first violation with full detail, freezing the
	// run at the instant the invariant broke. The experiment harness and
	// tests use it; the CLIs collect violations and report them as errors.
	FailFast bool

	// MaxRecorded caps the stored violations (the count keeps rising).
	MaxRecorded int

	conns  []watchedConn
	links  []*netem.Link
	meters []*watchedMeter

	lastNow    sim.Time
	checks     uint64
	violations []Violation
	dropped    int // violations beyond MaxRecorded
	started    bool
	tickFn     func()
}

type watchedConn struct {
	name string
	conn *mptcp.Conn
}

type watchedMeter struct {
	name       string
	meter      *energy.Meter
	prevJoules float64
}

// New creates a checker on eng with the default cadence.
func New(eng *sim.Engine) *Invariants {
	inv := &Invariants{eng: eng, interval: DefaultInterval, MaxRecorded: 32}
	inv.tickFn = inv.tick
	return inv
}

// SetInterval overrides the evaluation cadence; call before Start.
func (inv *Invariants) SetInterval(d sim.Time) {
	if d > 0 {
		inv.interval = d
	}
}

// Watch registers a connection (and through it every subflow, plus every
// link of the subflows' paths for packet conservation). name tags
// violations when a run has several connections; "" is fine for one.
func (inv *Invariants) Watch(name string, c *mptcp.Conn) {
	inv.conns = append(inv.conns, watchedConn{name: name, conn: c})
	for _, s := range c.Subflows() {
		inv.WatchPaths(s.Path())
	}
}

// Unwatch removes a previously watched connection so a churning population
// can keep the watched set bounded by concurrency. Links stay watched —
// link-level conservation is cumulative and cheap, and a link outlives the
// flows crossing it. Unwatching a connection that was never watched is a
// no-op.
func (inv *Invariants) Unwatch(c *mptcp.Conn) {
	for i, wc := range inv.conns {
		if wc.conn == c {
			inv.conns = append(inv.conns[:i], inv.conns[i+1:]...)
			return
		}
	}
}

// WatchLinks registers links for per-link packet conservation.
func (inv *Invariants) WatchLinks(links ...*netem.Link) {
	inv.links = append(inv.links, links...)
}

// WatchPaths registers every distinct link of the given paths.
func (inv *Invariants) WatchPaths(paths ...*netem.Path) {
	seen := make(map[*netem.Link]bool)
	for _, l := range inv.links {
		seen[l] = true
	}
	for _, p := range paths {
		for _, dir := range [][]*netem.Link{p.Forward, p.Reverse} {
			for _, l := range dir {
				if !seen[l] {
					seen[l] = true
					inv.links = append(inv.links, l)
				}
			}
		}
	}
}

// WatchMeter registers an energy meter.
func (inv *Invariants) WatchMeter(name string, m *energy.Meter) {
	inv.meters = append(inv.meters, &watchedMeter{name: name, meter: m})
}

// Start begins periodic evaluation. Calling Start twice is a no-op.
func (inv *Invariants) Start() {
	if inv.started {
		return
	}
	inv.started = true
	inv.lastNow = inv.eng.Now()
	inv.eng.ScheduleAfter(inv.interval, inv.tickFn)
}

func (inv *Invariants) tick() {
	inv.Check()
	inv.eng.ScheduleAfter(inv.interval, inv.tickFn)
}

// Check evaluates every invariant right now. The periodic tick calls it;
// tests and the CLIs may call it at interesting instants as well.
func (inv *Invariants) Check() {
	now := inv.eng.Now()
	inv.checks++
	if now < inv.lastNow {
		inv.report(Violation{T: now, Invariant: InvClock, Detail: fmt.Sprintf(
			"engine clock went backwards: %.6fs after %.6fs", now.Seconds(), inv.lastNow.Seconds())})
	}
	inv.lastNow = now
	for _, wc := range inv.conns {
		inv.report(CheckConn(now, SnapshotConn(wc.name, wc.conn))...)
	}
	for _, l := range inv.links {
		inv.report(CheckLink(now, SnapshotLink(l))...)
	}
	for _, wm := range inv.meters {
		st := MeterState{
			Name:       wm.name,
			Joules:     wm.meter.Joules(),
			PrevJoules: wm.prevJoules,
			MeanPower:  wm.meter.MeanPower(),
		}
		inv.report(CheckMeter(now, st)...)
		wm.prevJoules = st.Joules
	}
}

// Final runs one last evaluation; call it after the engine returns so the
// end-of-run state is covered even when the horizon fell between ticks.
func (inv *Invariants) Final() { inv.Check() }

// Inject reports v as if a checker had found it, honouring FailFast. It is
// the failpoint hook the chaos subsystem uses to exercise the quarantine
// and shrinking machinery with a synthetic, perfectly reproducible
// violation — production checkers never call it.
func (inv *Invariants) Inject(v Violation) { inv.report(v) }

func (inv *Invariants) report(vs ...Violation) {
	if len(vs) == 0 {
		return
	}
	if inv.FailFast {
		panic("check: invariant violated: " + vs[0].String())
	}
	for _, v := range vs {
		if len(inv.violations) < inv.MaxRecorded {
			inv.violations = append(inv.violations, v)
		} else {
			inv.dropped++
		}
	}
}

// Checks reports how many evaluation passes have run.
func (inv *Invariants) Checks() uint64 { return inv.checks }

// Violations returns the recorded violations (up to MaxRecorded).
func (inv *Invariants) Violations() []Violation { return inv.violations }

// Err returns nil when every check passed, or an error summarizing the
// violations.
func (inv *Invariants) Err() error {
	if len(inv.violations) == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d invariant violation(s)", len(inv.violations)+inv.dropped)
	const show = 8
	for i, v := range inv.violations {
		if i == show {
			fmt.Fprintf(&sb, "; … %d more", len(inv.violations)+inv.dropped-show)
			break
		}
		sb.WriteString("; ")
		sb.WriteString(v.String())
	}
	return fmt.Errorf("check: %s", sb.String())
}
