package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{5}, want: 5},
		{name: "several", give: []float64{1, 2, 3, 4}, want: 2.5},
		{name: "negative", give: []float64{-2, 2}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of one sample should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile of empty slice should be 0")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestNewBoxBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := NewBox(xs)
	if b.Median != 5 {
		t.Errorf("Median = %v, want 5", b.Median)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("Q1,Q3 = %v,%v, want 3,7", b.Q1, b.Q3)
	}
	if b.Min != 1 || b.Max != 9 {
		t.Errorf("whiskers = %v,%v, want 1,9", b.Min, b.Max)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("Outliers = %v, want none", b.Outliers)
	}
	if b.N != 9 {
		t.Errorf("N = %d, want 9", b.N)
	}
}

func TestNewBoxOutliers(t *testing.T) {
	// IQR fences: Q1=2.75, Q3=5.25, IQR=2.5 -> [-1, 9]; 100 is an outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 100}
	b := NewBox(xs)
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("Outliers = %v, want [100]", b.Outliers)
	}
	if b.Max != 6 {
		t.Errorf("upper whisker = %v, want 6 (outlier excluded)", b.Max)
	}
}

func TestNewBoxEmpty(t *testing.T) {
	b := NewBox(nil)
	if b.N != 0 {
		t.Error("empty box should have N=0")
	}
}

func TestRelChange(t *testing.T) {
	if got := RelChange(100, 80); got != -0.2 {
		t.Errorf("RelChange(100,80) = %v, want -0.2", got)
	}
	if RelChange(0, 5) != 0 {
		t.Error("RelChange from 0 should be 0")
	}
}

// Property: the box invariant min <= Q1 <= median <= Q3 <= max holds, and
// outliers lie strictly outside the whiskers.
func TestBoxInvariantProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		b := NewBox(xs)
		if !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max) {
			return false
		}
		for _, o := range b.Outliers {
			if o >= b.Min && o <= b.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p and bounded by the data range.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, pa, pb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p1, p2 := float64(pa%101), float64(pb%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return v1 <= v2 && v1 >= sorted[0] && v2 <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m := Mean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPercentileEdgeRanks(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"p0-is-min", []float64{5, 1, 9, 3}, 0, 1},
		{"p100-is-max", []float64{5, 1, 9, 3}, 100, 9},
		{"negative-p-clamps-to-min", []float64{5, 1, 9, 3}, -10, 1},
		{"over-100-clamps-to-max", []float64{5, 1, 9, 3}, 250, 9},
		{"single-element-any-p", []float64{42}, 37, 42},
		{"single-element-p0", []float64{42}, 0, 42},
		{"single-element-p100", []float64{42}, 100, 42},
		{"empty", nil, 50, 0},
		{"integer-rank-no-interp", []float64{10, 20, 30, 40, 50}, 50, 30},
		{"interp-between-ranks", []float64{10, 20}, 50, 15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Percentile(tc.xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Percentile(%v, %v) = %v, want %v", tc.xs, tc.p, got, tc.want)
			}
		})
	}
}

func TestNewBoxDegenerate(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want Box
	}{
		// n < 4: quartiles interpolate over a tiny sample; no outliers
		// possible because the fences always contain the data.
		{"n1", []float64{7}, Box{Min: 7, Q1: 7, Median: 7, Q3: 7, Max: 7, N: 1}},
		{"n2", []float64{2, 6}, Box{Min: 2, Q1: 3, Median: 4, Q3: 5, Max: 6, N: 2}},
		{"n3", []float64{1, 2, 9}, Box{Min: 1, Q1: 1.5, Median: 2, Q3: 5.5, Max: 9, N: 3}},
		// Lower whisker clamp: Q1 = 75, but the smallest inside-fence sample
		// is 100 > Q1, so Min retreats to Q1 rather than sitting above the box.
		{"lower-whisker-clamp", []float64{0, 100, 100, 100},
			Box{Min: 75, Q1: 75, Median: 100, Q3: 100, Max: 100, Outliers: []float64{0}, N: 4}},
		// Mirror image: Q3 = 25, largest inside sample 0 < Q3, Max clamps up.
		{"upper-whisker-clamp", []float64{0, 0, 0, 100},
			Box{Min: 0, Q1: 0, Median: 0, Q3: 25, Max: 25, Outliers: []float64{100}, N: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := NewBox(tc.xs)
			approx := func(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }
			if !approx(got.Min, tc.want.Min) || !approx(got.Q1, tc.want.Q1) ||
				!approx(got.Median, tc.want.Median) || !approx(got.Q3, tc.want.Q3) ||
				!approx(got.Max, tc.want.Max) || got.N != tc.want.N {
				t.Errorf("NewBox(%v) = %+v, want %+v", tc.xs, got, tc.want)
			}
			if len(got.Outliers) != len(tc.want.Outliers) {
				t.Errorf("NewBox(%v) outliers = %v, want %v", tc.xs, got.Outliers, tc.want.Outliers)
			}
		})
	}
}

func TestNewBoxAllOutliersFallback(t *testing.T) {
	// All-+Inf samples leave the whisker scan empty-handed (Inf < Inf never
	// holds, so Min stays the +Inf sentinel): the fallback resets the
	// whiskers to the data extremes and clears the outlier list rather than
	// reporting an empty box.
	xs := []float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	b := NewBox(xs)
	if !math.IsInf(b.Min, 1) || !math.IsInf(b.Max, 1) {
		t.Errorf("fallback whiskers = [%v, %v], want the +Inf data extremes", b.Min, b.Max)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("fallback kept %d outliers, want none", len(b.Outliers))
	}
	if b.N != 3 {
		t.Errorf("N = %d, want 3", b.N)
	}
}
