package stats

import (
	"strings"
	"testing"
)

func TestBoxString(t *testing.T) {
	b := NewBox([]float64{1, 2, 3, 4, 100})
	s := b.String()
	for _, frag := range []string{"min=", "q1=", "med=", "q3=", "max=", "out=1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Box.String() = %q missing %q", s, frag)
		}
	}
}

func TestBoxSingleSample(t *testing.T) {
	b := NewBox([]float64{7})
	if b.Min != 7 || b.Median != 7 || b.Max != 7 || b.N != 1 {
		t.Errorf("single-sample box = %+v", b)
	}
}

func TestBoxAllEqual(t *testing.T) {
	b := NewBox([]float64{5, 5, 5, 5})
	if b.Min != 5 || b.Q1 != 5 || b.Median != 5 || b.Q3 != 5 || b.Max != 5 {
		t.Errorf("constant box = %+v", b)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("constant data produced outliers: %v", b.Outliers)
	}
}

func TestNewBoxDoesNotMutateInput(t *testing.T) {
	xs := []float64{9, 1, 5}
	NewBox(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Error("NewBox mutated its input")
	}
}
