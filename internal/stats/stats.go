// Package stats provides the summary statistics used by the experiment
// harness, most importantly the box-whisker summary the paper's Fig. 6 uses.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Box is the five-number summary plus outliers, with the whisker convention
// the paper states for Fig. 6: whiskers extend to the most extreme samples
// within [Q1 - 1.5*IQR, Q3 + 1.5*IQR]; samples outside are outliers.
type Box struct {
	Min      float64 // lower whisker end
	Q1       float64
	Median   float64
	Q3       float64
	Max      float64 // upper whisker end
	Outliers []float64
	N        int
}

// NewBox computes the box-whisker summary of xs.
func NewBox(xs []float64) Box {
	if len(xs) == 0 {
		return Box{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	b := Box{
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		N:      len(sorted),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr

	b.Min = math.Inf(1)
	b.Max = math.Inf(-1)
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.Min {
			b.Min = x
		}
		if x > b.Max {
			b.Max = x
		}
	}
	if math.IsInf(b.Min, 1) { // every sample was an outlier (degenerate)
		b.Min, b.Max = sorted[0], sorted[len(sorted)-1]
		b.Outliers = nil
	}
	// Whiskers never retreat inside the box (the matplotlib convention when
	// every sample on one side is an outlier of the interpolated quartile).
	if b.Min > b.Q1 {
		b.Min = b.Q1
	}
	if b.Max < b.Q3 {
		b.Max = b.Q3
	}
	return b
}

// String renders the box compactly for table output.
func (b Box) String() string {
	return fmt.Sprintf("min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f out=%d",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, len(b.Outliers))
}

// RelChange returns (b-a)/a, the relative change from a to b, or 0 when a is 0.
func RelChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a
}
