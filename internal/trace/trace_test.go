package trace

import (
	"math"
	"testing"

	"mptcpsim/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Add(sim.Second, 1)
	s.Add(2*sim.Second, 3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Mean() != 2 {
		t.Errorf("Mean = %v, want 2", s.Mean())
	}
	if s.Last() != 3 {
		t.Errorf("Last = %v, want 3", s.Last())
	}
	if vs := s.Values(); len(vs) != 2 || vs[0] != 1 || vs[1] != 3 {
		t.Errorf("Values = %v", vs)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Last() != 0 || s.Len() != 0 {
		t.Error("empty series should report zeros")
	}
}

func TestRateMeterExactRate(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewRateMeter(eng, 1) // no smoothing
	// 1250 bytes over 1 ms = 10 Mb/s.
	eng.At(sim.Millisecond, func() {
		m.Count(1250)
		if got := m.Sample(); math.Abs(got-10e6) > 1 {
			t.Errorf("rate = %v, want 10e6", got)
		}
	})
	eng.Drain()
	if m.TotalBytes() != 1250 {
		t.Errorf("TotalBytes = %d, want 1250", m.TotalBytes())
	}
}

func TestRateMeterZeroWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewRateMeter(eng, 1)
	eng.At(sim.Millisecond, func() {
		m.Count(1250)
		first := m.Sample()
		second := m.Sample() // same instant: returns previous estimate
		if first != second {
			t.Errorf("same-instant Sample changed estimate: %v vs %v", first, second)
		}
	})
	eng.Drain()
}

func TestRateMeterSameInstantSemantics(t *testing.T) {
	// Pins Sample's zero-width-window behavior: the window stays open,
	// bytes counted at the same instant roll into the next real window, and
	// the returned value is the smoothed EWMA — not the last raw rate.
	eng := sim.NewEngine(1)
	m := NewRateMeter(eng, 0.5)
	eng.At(sim.Millisecond, func() {
		m.Count(1250) // 10 Mb/s window seeds the EWMA
		if got := m.Sample(); math.Abs(got-10e6) > 1 {
			t.Fatalf("seed sample = %v, want 10e6", got)
		}
		m.Count(1250) // counted at the sample instant: pends for the next window
		if got := m.Sample(); math.Abs(got-10e6) > 1 {
			t.Errorf("same-instant Sample = %v, want unchanged EWMA 10e6", got)
		}
	})
	eng.At(2*sim.Millisecond, func() {
		// The pending 1250 bytes over 1 ms are a 10 Mb/s instantaneous rate;
		// EWMA with alpha 0.5 stays at 10 Mb/s. Had the same-instant Sample
		// dropped them, this window would read 0 and the EWMA 5 Mb/s.
		if got := m.Sample(); math.Abs(got-10e6) > 1 {
			t.Errorf("next window = %v, want 10e6 (same-instant bytes lost?)", got)
		}
	})
	eng.Drain()
}

func TestRateMeterEWMA(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewRateMeter(eng, 0.5)
	eng.At(sim.Millisecond, func() {
		m.Count(1250) // 10 Mb/s window
		m.Sample()    // first sample seeds the EWMA
	})
	eng.At(2*sim.Millisecond, func() {
		// idle window: instantaneous 0, EWMA halves.
		if got := m.Sample(); math.Abs(got-5e6) > 1 {
			t.Errorf("EWMA after idle window = %v, want 5e6", got)
		}
	})
	eng.Drain()
}

func TestRateMeterBadAlphaDefaultsToOne(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewRateMeter(eng, -3)
	eng.At(sim.Millisecond, func() {
		m.Count(125)
		if got := m.Sample(); math.Abs(got-1e6) > 1 {
			t.Errorf("rate = %v, want 1e6 with alpha clamped to 1", got)
		}
	})
	eng.Drain()
}
