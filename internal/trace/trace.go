// Package trace provides light-weight time-series recording and rate
// estimation for simulation runs.
package trace

import (
	"mptcpsim/internal/sim"
)

// Point is one sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// Series records (time, value) samples, e.g. cwnd, throughput or power over
// a run.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Values returns just the sampled values, in order.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vs[i] = p.V
	}
	return vs
}

// Mean returns the time-unweighted mean of the samples (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Last returns the most recent sample value (0 when empty).
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Event is one labelled instant on a Timeline.
type Event struct {
	T     sim.Time
	Label string
}

// Timeline records labelled state transitions over a run — e.g. a subflow
// going active → dead → probing → active as its path fails and heals.
type Timeline struct {
	Events []Event
}

// Add appends an event.
func (tl *Timeline) Add(t sim.Time, label string) {
	tl.Events = append(tl.Events, Event{T: t, Label: label})
}

// Len reports the number of recorded events.
func (tl *Timeline) Len() int { return len(tl.Events) }

// RateMeter turns a running byte count into a throughput estimate. A sampler
// (the energy meter) calls Sample periodically; the meter reports the rate
// over the elapsed window and keeps an EWMA for smoothing.
type RateMeter struct {
	eng *sim.Engine

	bytes      uint64 // since last sample
	totalBytes uint64
	lastSample sim.Time
	ewma       float64
	alpha      float64
	hasSample  bool
}

// NewRateMeter creates a meter with EWMA smoothing factor alpha in (0, 1];
// alpha of 1 disables smoothing.
func NewRateMeter(eng *sim.Engine, alpha float64) *RateMeter {
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	return &RateMeter{eng: eng, alpha: alpha, lastSample: eng.Now()}
}

// Count records bytes transferred at the current instant.
func (m *RateMeter) Count(bytes int) {
	m.bytes += uint64(bytes)
	m.totalBytes += uint64(bytes)
}

// TotalBytes reports all bytes ever counted.
func (m *RateMeter) TotalBytes() uint64 { return m.totalBytes }

// Sample closes the current window and returns the smoothed rate in bits per
// second. A zero-width window (a second call at the same instant) does not
// close anything: the window stays open, bytes counted since the last real
// sample keep accumulating into it, and the current smoothed EWMA estimate —
// not the previous window's raw rate — is returned unchanged.
func (m *RateMeter) Sample() float64 {
	now := m.eng.Now()
	dt := now - m.lastSample
	if dt <= 0 {
		return m.ewma
	}
	inst := float64(m.bytes) * 8 * float64(sim.Second) / float64(dt)
	m.bytes = 0
	m.lastSample = now
	if !m.hasSample {
		m.ewma = inst
		m.hasSample = true
	} else {
		m.ewma = m.alpha*inst + (1-m.alpha)*m.ewma
	}
	return m.ewma
}

// Rate returns the current smoothed estimate without closing the window.
func (m *RateMeter) Rate() float64 { return m.ewma }
