package trace

import (
	"testing"

	"mptcpsim/internal/sim"
)

func TestRateMeterTotalAcrossWindows(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewRateMeter(eng, 1)
	for i := 1; i <= 5; i++ {
		i := i
		eng.At(sim.Time(i)*sim.Millisecond, func() {
			m.Count(1000)
			m.Sample()
		})
	}
	eng.Drain()
	if m.TotalBytes() != 5000 {
		t.Errorf("TotalBytes = %d, want 5000", m.TotalBytes())
	}
}

func TestSeriesValuesCopy(t *testing.T) {
	var s Series
	s.Add(0, 1)
	vs := s.Values()
	vs[0] = 99
	if s.Points[0].V != 1 {
		t.Error("Values returned a view into internal storage")
	}
}
