package topo

import (
	"fmt"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// FatTree is the k-ary fat tree of Al-Fares et al. (SIGCOMM 2008). The
// paper's configuration — 128 hosts, 80 switches, 100 Mb/s links — is
// exactly FatTree(k=8): 32 edge + 32 aggregation + 16 core switches.
type FatTree struct {
	g *graph
	k int
}

// FatTreeConfig parameterizes the fat tree; zero values take the paper's
// settings (k=8, 100 Mb/s, queue 100).
type FatTreeConfig struct {
	K          int
	Rate       int64
	Delay      sim.Time
	QueueLimit int
}

func (c FatTreeConfig) withDefaults() FatTreeConfig {
	if c.K == 0 {
		c.K = 8
	}
	if c.Rate == 0 {
		c.Rate = 100 * netem.Mbps
	}
	if c.Delay == 0 {
		// The paper prints "100ms links"; we read that as the
		// htsim-typical 100 us — at 100 ms per hop a datacenter path's
		// bandwidth-delay product dwarfs any realistic switch buffer and
		// every algorithm collapses, which is clearly not what the paper
		// simulated.
		c.Delay = 100 * sim.Microsecond
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 100
	}
	return c
}

// Node ID blocks. Hosts live at 100000+h.
const (
	ftHostBase int32 = 100000
	ftEdgeBase int32 = 1000
	ftAggBase  int32 = 2000
	ftCoreBase int32 = 3000
)

// NewFatTree builds the topology. k must be even.
func NewFatTree(eng *sim.Engine, cfg FatTreeConfig) (*FatTree, error) {
	cfg = cfg.withDefaults()
	k := cfg.K
	if k%2 != 0 || k < 2 {
		return nil, fmt.Errorf("topo: fat tree arity k=%d must be even and >= 2", k)
	}
	g := newGraph(eng)
	lc := netem.LinkConfig{Name: "ft", Rate: cfg.Rate, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	half := k / 2
	ft := &FatTree{g: g, k: k}

	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			// Hosts under edge(p, e).
			for h := 0; h < half; h++ {
				g.biLink(ft.host(p*half*half+e*half+h), ft.edge(p, e), lc)
			}
			// Edge to every aggregation switch in the pod.
			for a := 0; a < half; a++ {
				g.biLink(ft.edge(p, e), ft.agg(p, a), lc)
			}
		}
		// Aggregation a connects to core group a.
		for a := 0; a < half; a++ {
			for o := 0; o < half; o++ {
				g.biLink(ft.agg(p, a), ft.core(a, o), lc)
			}
		}
	}
	return ft, nil
}

// Hosts returns the number of hosts, k³/4.
func (f *FatTree) Hosts() int { return f.k * f.k * f.k / 4 }

// Switches returns the number of switches, 5k²/4.
func (f *FatTree) Switches() int { return 5 * f.k * f.k / 4 }

func (f *FatTree) host(h int) int32    { return ftHostBase + int32(h) }
func (f *FatTree) edge(p, e int) int32 { return ftEdgeBase + int32(p*(f.k/2)+e) }
func (f *FatTree) agg(p, a int) int32  { return ftAggBase + int32(p*(f.k/2)+a) }
func (f *FatTree) core(g, o int) int32 { return ftCoreBase + int32(g*(f.k/2)+o) }
func (f *FatTree) podOf(h int) int     { return h / (f.k * f.k / 4) }
func (f *FatTree) edgeIdxOf(h int) int { return (h % (f.k * f.k / 4)) / (f.k / 2) }

// Paths returns n routes from src to dst, spread over the distinct
// equal-cost routes (different core switches across pods, different
// aggregation switches within a pod). When n exceeds the distinct routes
// available, routes repeat — the MPTCP path manager's multiple subflows
// per physical route (the kernel's num_subflows parameter).
func (f *FatTree) Paths(src, dst, n int) []*netem.Path {
	if src == dst {
		return nil
	}
	half := f.k / 2
	ps, pd := f.podOf(src), f.podOf(dst)
	es, ed := f.edgeIdxOf(src), f.edgeIdxOf(dst)
	out := make([]*netem.Path, 0, n)

	// Spread route choices by a per-pair offset, the ECMP-style hashing
	// real fabrics do; without it every pair would collide on the same
	// core switch.
	h := (src*131 + dst*31) % (half * half)
	switch {
	case ps != pd:
		for i := 0; i < n; i++ {
			gIdx := (i + h) % half
			o := (i/half + h/half) % half
			out = append(out, f.g.path(
				fmt.Sprintf("ft%d-%d.%d", src, dst, i),
				f.host(src), f.edge(ps, es), f.agg(ps, gIdx),
				f.core(gIdx, o),
				f.agg(pd, gIdx), f.edge(pd, ed), f.host(dst)))
		}
	case es != ed:
		for i := 0; i < n; i++ {
			a := (i + h) % half
			out = append(out, f.g.path(
				fmt.Sprintf("ft%d-%d.%d", src, dst, i),
				f.host(src), f.edge(ps, es), f.agg(ps, a), f.edge(pd, ed), f.host(dst)))
		}
	default:
		for i := 0; i < n; i++ {
			out = append(out, f.g.path(
				fmt.Sprintf("ft%d-%d.%d", src, dst, i),
				f.host(src), f.edge(ps, es), f.host(dst)))
		}
	}
	return out
}

// Links exposes every link.
func (f *FatTree) Links() []*netem.Link { return f.g.Links() }

// SwitchLinks returns the switch-to-switch links (edge-agg and agg-core),
// the set the extended DTS prices (Eq. 6 charges only inter-switch links),
// in deterministic (from, to) key order so fault schedules that index into
// the slice target the same physical link on every run.
func (f *FatTree) SwitchLinks() []*netem.Link {
	return f.g.linksWhere(func(key [2]int32) bool {
		return key[0] >= ftEdgeBase && key[0] < ftHostBase && key[1] >= ftEdgeBase && key[1] < ftHostBase
	})
}
