package topo

import (
	"fmt"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// VL2 is the Clos network of Greenberg et al. (SIGCOMM 2009): servers
// under ToR switches, every ToR dual-homed to aggregation switches, and a
// full bipartite mesh between aggregation and intermediate switches with
// faster inter-switch links. The paper's configuration — 128 hosts, 80
// switches — is 64 ToRs (2 hosts each) + 8 aggregation + 8 intermediate.
type VL2 struct {
	g   *graph
	cfg VL2Config
}

// VL2Config parameterizes the Clos; zero values take the paper's settings.
type VL2Config struct {
	HostsPerToR int
	ToRs        int
	Aggs        int
	Ints        int
	ServerRate  int64 // host-ToR links (paper: 1 Gb/s)
	SwitchRate  int64 // inter-switch links (VL2 uses faster: default 10x)
	Delay       sim.Time
	QueueLimit  int
}

func (c VL2Config) withDefaults() VL2Config {
	if c.HostsPerToR == 0 {
		c.HostsPerToR = 2
	}
	if c.ToRs == 0 {
		c.ToRs = 64
	}
	if c.Aggs == 0 {
		c.Aggs = 8
	}
	if c.Ints == 0 {
		c.Ints = 8
	}
	if c.ServerRate == 0 {
		c.ServerRate = netem.Gbps
	}
	if c.SwitchRate == 0 {
		c.SwitchRate = 10 * netem.Gbps
	}
	if c.Delay == 0 {
		// The paper prints "100ms links"; we read that as the
		// htsim-typical 100 us — at 100 ms per hop a datacenter path's
		// bandwidth-delay product dwarfs any realistic switch buffer and
		// every algorithm collapses, which is clearly not what the paper
		// simulated.
		c.Delay = 100 * sim.Microsecond
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 100
	}
	return c
}

const (
	vl2HostBase int32 = 100000
	vl2ToRBase  int32 = 1000
	vl2AggBase  int32 = 2000
	vl2IntBase  int32 = 3000
)

// NewVL2 builds the topology.
func NewVL2(eng *sim.Engine, cfg VL2Config) (*VL2, error) {
	cfg = cfg.withDefaults()
	if cfg.Aggs < 2 {
		return nil, fmt.Errorf("topo: VL2 needs at least 2 aggregation switches, got %d", cfg.Aggs)
	}
	// Paths indexes ToRs, hosts and intermediate switches modulo these
	// counts; non-positive values would panic there instead of erroring here.
	if cfg.HostsPerToR < 1 || cfg.ToRs < 1 || cfg.Ints < 1 {
		return nil, fmt.Errorf("topo: VL2 needs at least one ToR, host per ToR and intermediate switch, got tors=%d hosts/tor=%d ints=%d",
			cfg.ToRs, cfg.HostsPerToR, cfg.Ints)
	}
	g := newGraph(eng)
	v := &VL2{g: g, cfg: cfg}
	server := netem.LinkConfig{Name: "vl2-srv", Rate: cfg.ServerRate, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	sw := netem.LinkConfig{Name: "vl2-sw", Rate: cfg.SwitchRate, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}

	for t := 0; t < cfg.ToRs; t++ {
		for h := 0; h < cfg.HostsPerToR; h++ {
			g.biLink(v.host(t*cfg.HostsPerToR+h), v.tor(t), server)
		}
		g.biLink(v.tor(t), v.agg(v.torAgg(t, 0)), sw)
		g.biLink(v.tor(t), v.agg(v.torAgg(t, 1)), sw)
	}
	for a := 0; a < cfg.Aggs; a++ {
		for i := 0; i < cfg.Ints; i++ {
			g.biLink(v.agg(a), v.inter(i), sw)
		}
	}
	return v, nil
}

// Hosts returns the host count.
func (v *VL2) Hosts() int { return v.cfg.ToRs * v.cfg.HostsPerToR }

// Switches returns the switch count.
func (v *VL2) Switches() int { return v.cfg.ToRs + v.cfg.Aggs + v.cfg.Ints }

func (v *VL2) host(h int) int32  { return vl2HostBase + int32(h) }
func (v *VL2) tor(t int) int32   { return vl2ToRBase + int32(t) }
func (v *VL2) agg(a int) int32   { return vl2AggBase + int32(a) }
func (v *VL2) inter(i int) int32 { return vl2IntBase + int32(i) }

// torAgg returns the a-th (0 or 1) aggregation switch of ToR t.
func (v *VL2) torAgg(t, a int) int {
	if a == 0 {
		return t % v.cfg.Aggs
	}
	return (t + v.cfg.Aggs/2) % v.cfg.Aggs
}

// Paths returns n routes between two hosts, spread over intermediate
// switches and the dual-homed aggregation choices (VL2's valiant load
// balancing, enumerated deterministically).
func (v *VL2) Paths(src, dst, n int) []*netem.Path {
	if src == dst {
		return nil
	}
	ts, td := src/v.cfg.HostsPerToR, dst/v.cfg.HostsPerToR
	out := make([]*netem.Path, 0, n)
	if ts == td {
		for i := 0; i < n; i++ {
			out = append(out, v.g.path(
				fmt.Sprintf("vl2-%d-%d.%d", src, dst, i),
				v.host(src), v.tor(ts), v.host(dst)))
		}
		return out
	}
	h := (src*131 + dst*31) % v.cfg.Ints
	for i := 0; i < n; i++ {
		inter := (i + h) % v.cfg.Ints
		aggS := v.torAgg(ts, (i+h)%2)
		aggD := v.torAgg(td, (i/2+h)%2)
		out = append(out, v.g.path(
			fmt.Sprintf("vl2-%d-%d.%d", src, dst, i),
			v.host(src), v.tor(ts), v.agg(aggS), v.inter(inter),
			v.agg(aggD), v.tor(td), v.host(dst)))
	}
	return out
}

// Links exposes every link.
func (v *VL2) Links() []*netem.Link { return v.g.Links() }

// SwitchLinks returns the switch-to-switch links for energy pricing, in
// deterministic (from, to) key order (see graph.linksWhere).
func (v *VL2) SwitchLinks() []*netem.Link {
	return v.g.linksWhere(func(key [2]int32) bool {
		return key[0] < vl2HostBase && key[1] < vl2HostBase
	})
}
