// Package topo builds the network scenarios of the paper's evaluation:
// the two-bottleneck sharing scenario (Fig. 5a), the two-path traffic-
// shifting scenario (Fig. 5b), the EC2 VPC (Fig. 10), the three datacenter
// topologies FatTree, VL2 and BCube (Fig. 11-16), and the heterogeneous
// wireless WiFi+4G scenario (Fig. 17).
//
// Builders wire netem.Links between integer node IDs and enumerate
// multipath routes between hosts as netem.Paths ready for mptcp.New.
package topo

import (
	"fmt"
	"sort"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// graph tracks directed links between node IDs, creating each once.
type graph struct {
	eng   *sim.Engine
	links map[[2]int32]*netem.Link
}

func newGraph(eng *sim.Engine) *graph {
	return &graph{eng: eng, links: make(map[[2]int32]*netem.Link)}
}

// biLink creates both directions of an edge with the same configuration.
func (g *graph) biLink(a, b int32, cfg netem.LinkConfig) {
	g.dirLink(a, b, cfg)
	g.dirLink(b, a, cfg)
}

func (g *graph) dirLink(from, to int32, cfg netem.LinkConfig) {
	key := [2]int32{from, to}
	if _, ok := g.links[key]; ok {
		return
	}
	cfg.Name = fmt.Sprintf("%s:%d->%d", cfg.Name, from, to)
	g.links[key] = netem.NewLink(g.eng, cfg)
}

// chain resolves the directed links along a node sequence; it panics on a
// missing edge, which is always a builder bug.
func (g *graph) chain(nodes ...int32) []*netem.Link {
	out := make([]*netem.Link, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		l, ok := g.links[[2]int32{nodes[i], nodes[i+1]}]
		if !ok {
			panic(fmt.Sprintf("topo: no link %d->%d", nodes[i], nodes[i+1]))
		}
		out = append(out, l)
	}
	return out
}

// path builds a bidirectional netem.Path along a node sequence, using the
// reversed sequence for ACKs.
func (g *graph) path(name string, nodes ...int32) *netem.Path {
	rev := make([]int32, len(nodes))
	for i, n := range nodes {
		rev[len(nodes)-1-i] = n
	}
	return &netem.Path{
		Name:    name,
		Forward: g.chain(nodes...),
		Reverse: g.chain(rev...),
	}
}

// Links returns every link in the network (for counters and utilization
// sweeps).
func (g *graph) Links() []*netem.Link {
	return g.linksWhere(func([2]int32) bool { return true })
}

// linksWhere returns the links whose (from, to) key satisfies pred, in
// key order. Callers slice and index the result — fault schedules pick
// links[0] to kill — so the order must not depend on map iteration, or
// two runs of the same seed would fault different links.
func (g *graph) linksWhere(pred func(key [2]int32) bool) []*netem.Link {
	keys := make([][2]int32, 0, len(g.links))
	for key := range g.links {
		if pred(key) {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]*netem.Link, len(keys))
	for i, key := range keys {
		out[i] = g.links[key]
	}
	return out
}
