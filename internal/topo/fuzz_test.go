package topo

import (
	"testing"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// boundCfg maps a fuzzed int into (-m, m), keeping sign and zero so the
// constructors' validation and defaulting paths both stay reachable while
// topology sizes remain small enough to build per fuzz iteration.
func boundCfg(v, m int) int { return v % m }

// FuzzConstructors drives the datacenter topology builders with arbitrary
// arities. A constructor must either return an error or produce a topology
// whose host-to-host paths resolve to complete link chains — graph.chain
// panics on a missing edge, so any wiring gap aborts the fuzzer.
func FuzzConstructors(f *testing.F) {
	f.Add(4, 5, 2, 2, 8, 4, 4)   // the paper's figure configurations
	f.Add(8, 3, 1, 4, 64, 8, 8)  // published VL2 scale
	f.Add(-2, 2, 0, 1, 1, 2, 1)  // minimal and invalid corners
	f.Add(0, 0, 0, 0, 0, 0, 0)   // all defaults
	f.Fuzz(func(t *testing.T, ftK, bcN, bcK, perToR, tors, aggs, ints int) {
		eng := sim.NewEngine(1)
		if ft, err := NewFatTree(eng, FatTreeConfig{K: boundCfg(ftK, 11)}); err == nil {
			requirePaths(t, "fattree", ft.Paths(0, ft.Hosts()-1, 3))
		}
		if bc, err := NewBCube(eng, BCubeConfig{N: boundCfg(bcN, 7), K: boundCfg(bcK, 4)}); err == nil {
			requirePaths(t, "bcube", bc.Paths(0, bc.Hosts()-1, 3))
		}
		v, err := NewVL2(eng, VL2Config{
			HostsPerToR: boundCfg(perToR, 5), ToRs: boundCfg(tors, 65),
			Aggs: boundCfg(aggs, 17), Ints: boundCfg(ints, 17),
		})
		if err == nil && v.Hosts() > 1 {
			requirePaths(t, "vl2", v.Paths(0, v.Hosts()-1, 3))
		}
	})
}

// requirePaths asserts every returned path is a usable route: both
// directions present with no nil links.
func requirePaths(t *testing.T, kind string, paths []*netem.Path) {
	t.Helper()
	if len(paths) == 0 {
		t.Fatalf("%s: no paths between first and last host", kind)
	}
	for _, p := range paths {
		if p == nil || len(p.Forward) == 0 || len(p.Reverse) == 0 {
			t.Fatalf("%s: incomplete path %+v", kind, p)
		}
		for _, l := range append(append([]*netem.Link{}, p.Forward...), p.Reverse...) {
			if l == nil {
				t.Fatalf("%s: path %s has a nil link", kind, p.Name)
			}
		}
	}
}
