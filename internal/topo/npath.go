package topo

import (
	"fmt"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// NPath generalizes the Fig. 5b two-path scenario to any number of
// parallel, link-disjoint paths between one sender-receiver pair, each with
// its own capacity, delay and queue. It is the scenario the backend sweep
// engines fan over: per-path asymmetry makes equilibrium shares
// distinguishable, and disjoint bottlenecks match the fluid model's
// per-path loss signal (see internal/backend and docs/backends.md).
//
// With two paths of equal configuration NPath wires exactly the same nodes,
// links and names as NewTwoPath, so packet runs over either builder are
// event-for-event identical (asserted by TestNPathTwoPathEquivalence).
type NPath struct {
	g     *graph
	paths []*netem.Path
}

// NPathSpec describes one path of an NPath scenario.
type NPathSpec struct {
	Rate  int64    // bottleneck capacity (default 100 Mb/s)
	Delay sim.Time // one-way end-to-end delay (default 10 ms)
	Queue int      // per-hop DropTail queue (default 100)
}

func (s NPathSpec) withDefaults() NPathSpec {
	if s.Rate == 0 {
		s.Rate = 100 * netem.Mbps
	}
	if s.Delay == 0 {
		s.Delay = 10 * sim.Millisecond
	}
	if s.Queue == 0 {
		s.Queue = 100
	}
	return s
}

// NewNPath builds the scenario: sender node 0, receiver node 1, and one
// relay switch (node 10+i) per path, mirroring NewTwoPath's layout.
func NewNPath(eng *sim.Engine, specs ...NPathSpec) *NPath {
	if len(specs) == 0 {
		panic("topo: NewNPath needs at least one path spec")
	}
	g := newGraph(eng)
	n := &NPath{g: g}
	for i, spec := range specs {
		spec = spec.withDefaults()
		relay := int32(10 + i)
		lc := netem.LinkConfig{Name: "tp", Rate: spec.Rate, Delay: spec.Delay / 2, QueueLimit: spec.Queue}
		g.biLink(0, relay, lc)
		g.biLink(relay, 1, lc)
		n.paths = append(n.paths, g.path(fmt.Sprintf("path%d", i), 0, relay, 1))
	}
	return n
}

// Paths returns the sender's paths in spec order.
func (n *NPath) Paths() []*netem.Path { return n.paths }

// CrossEntry returns the forward link of path i that cross traffic shares
// (the second hop, keeping the sender's access hop clean — the same
// convention as TwoPath.CrossEntry).
func (n *NPath) CrossEntry(i int) *netem.Link { return n.paths[i].Forward[1] }

// Links exposes every link for utilization accounting.
func (n *NPath) Links() []*netem.Link { return n.g.Links() }
