package topo

import (
	"testing"

	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// TestNPathTwoPathEquivalence pins the builder contract the backend relies
// on: NPath with two equal-delay specs wires the same nodes, link names and
// rates as NewTwoPath, so a packet run over either is event-for-event
// identical — same acked counts, same engine event total.
func TestNPathTwoPathEquivalence(t *testing.T) {
	run := func(build func(eng *sim.Engine) []*netem.Path) (acked [2]int64, events uint64) {
		eng := sim.NewEngine(7)
		paths := build(eng)
		conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia"}, 1, paths...)
		conn.Start()
		eng.Run(10 * sim.Second)
		for r, s := range conn.Subflows() {
			acked[r] = s.Acked()
		}
		return acked, eng.Processed()
	}

	twoAck, twoEv := run(func(eng *sim.Engine) []*netem.Path {
		return NewTwoPath(eng, TwoPathConfig{
			Rates: [2]int64{16 * netem.Mbps, 8 * netem.Mbps},
			Delay: 20 * sim.Millisecond, QueueLimit: 50,
		}).Paths()
	})
	nAck, nEv := run(func(eng *sim.Engine) []*netem.Path {
		return NewNPath(eng,
			NPathSpec{Rate: 16 * netem.Mbps, Delay: 20 * sim.Millisecond, Queue: 50},
			NPathSpec{Rate: 8 * netem.Mbps, Delay: 20 * sim.Millisecond, Queue: 50},
		).Paths()
	})
	if twoAck != nAck {
		t.Errorf("acked mismatch: TwoPath %v vs NPath %v", twoAck, nAck)
	}
	if twoEv != nEv {
		t.Errorf("event count mismatch: TwoPath %d vs NPath %d", twoEv, nEv)
	}
}

// TestNPathThreePaths exercises the generalization beyond two paths: three
// asymmetric paths all carry traffic, and the bottleneck ordering shows in
// the goodput ordering.
func TestNPathThreePaths(t *testing.T) {
	eng := sim.NewEngine(3)
	n := NewNPath(eng,
		NPathSpec{Rate: 24 * netem.Mbps},
		NPathSpec{Rate: 12 * netem.Mbps},
		NPathSpec{Rate: 6 * netem.Mbps},
	)
	if got := len(n.Paths()); got != 3 {
		t.Fatalf("got %d paths, want 3", got)
	}
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "olia"}, 1, n.Paths()...)
	conn.Start()
	eng.Run(30 * sim.Second)
	subs := conn.Subflows()
	for r := 0; r+1 < len(subs); r++ {
		if subs[r].Acked() <= subs[r+1].Acked() {
			t.Errorf("path %d (faster) acked %d <= path %d acked %d",
				r, subs[r].Acked(), r+1, subs[r+1].Acked())
		}
	}
	for r, s := range subs {
		if s.Acked() == 0 {
			t.Errorf("path %d carried no traffic", r)
		}
	}
	if got := len(n.Links()); got != 12 {
		t.Errorf("got %d links, want 12 (3 paths x 2 hops x 2 directions)", got)
	}
}
