package topo

import (
	"fmt"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// Dumbbell is the Fig. 5a scenario: sender hosts reach receiver hosts
// through two shared bottleneck links. Every MPTCP user gets one path over
// each bottleneck; every TCP user gets a single path over one bottleneck.
type Dumbbell struct {
	g *graph

	users      int
	bottleneck [2]*netem.Link // forward direction
}

// DumbbellConfig parameterizes the Fig. 5a scenario.
type DumbbellConfig struct {
	Users          int      // how many per-user access pairs to provision
	BottleneckRate int64    // per-bottleneck capacity (default 100 Mb/s)
	AccessRate     int64    // per-user access capacity (default 1 Gb/s)
	Delay          sim.Time // one-way per-hop delay (default 5 ms)
	QueueLimit     int      // bottleneck queue (default 100)
}

// Node layout: user u's source host is 1000+u, its sink host is 2000+u;
// the two aggregation switches are 1 (ingress) and two egress switches 2, 3
// — bottleneck b runs ingress->egress_b.
const (
	dumbIngress int32 = 1
	dumbEgress0 int32 = 2
	dumbEgress1 int32 = 3
)

// NewDumbbell builds the scenario.
func NewDumbbell(eng *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	if cfg.BottleneckRate == 0 {
		cfg.BottleneckRate = 100 * netem.Mbps
	}
	if cfg.AccessRate == 0 {
		cfg.AccessRate = netem.Gbps
	}
	if cfg.Delay == 0 {
		cfg.Delay = 5 * sim.Millisecond
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = 100
	}
	g := newGraph(eng)
	btl := netem.LinkConfig{Name: "btl", Rate: cfg.BottleneckRate, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	g.biLink(dumbIngress, dumbEgress0, btl)
	g.biLink(dumbIngress, dumbEgress1, btl)
	acc := netem.LinkConfig{Name: "acc", Rate: cfg.AccessRate, Delay: cfg.Delay, QueueLimit: 1000}
	for u := 0; u < cfg.Users; u++ {
		g.biLink(srcHost(u), dumbIngress, acc)
		g.biLink(dumbEgress0, dstHost(u), acc)
		g.biLink(dumbEgress1, dstHost(u), acc)
	}
	return &Dumbbell{
		g:     g,
		users: cfg.Users,
		bottleneck: [2]*netem.Link{
			g.links[[2]int32{dumbIngress, dumbEgress0}],
			g.links[[2]int32{dumbIngress, dumbEgress1}],
		},
	}
}

func srcHost(u int) int32 { return int32(1000 + u) }
func dstHost(u int) int32 { return int32(2000 + u) }

// MPTCPPaths returns user u's two paths, one through each bottleneck.
func (d *Dumbbell) MPTCPPaths(u int) []*netem.Path {
	return []*netem.Path{
		d.g.path(fmt.Sprintf("u%d-b0", u), srcHost(u), dumbIngress, dumbEgress0, dstHost(u)),
		d.g.path(fmt.Sprintf("u%d-b1", u), srcHost(u), dumbIngress, dumbEgress1, dstHost(u)),
	}
}

// TCPPath returns user u's single path through bottleneck b (0 or 1).
func (d *Dumbbell) TCPPath(u, b int) *netem.Path {
	egress := dumbEgress0
	if b == 1 {
		egress = dumbEgress1
	}
	return d.g.path(fmt.Sprintf("u%d-tcp%d", u, b), srcHost(u), dumbIngress, egress, dstHost(u))
}

// Bottlenecks returns the two shared forward bottleneck links.
func (d *Dumbbell) Bottlenecks() [2]*netem.Link { return d.bottleneck }

// TwoPath is the Fig. 5b scenario: one sender-receiver pair connected by
// two independent paths whose quality flips between Good and Bad as bursty
// cross traffic comes and goes. CrossEntry(i) exposes the link cross
// traffic must be injected into.
type TwoPath struct {
	g     *graph
	paths []*netem.Path
}

// TwoPathConfig parameterizes the Fig. 5b scenario.
type TwoPathConfig struct {
	Rate       int64    // per-path capacity (default 100 Mb/s)
	Delay      sim.Time // one-way path delay (default 10 ms)
	QueueLimit int      // per-path queue (default 100)

	// Rates, when non-zero, overrides Rate per path (index 0 and 1) so the
	// two paths can have asymmetric capacity. The conformance harness uses
	// this to make the fluid equilibrium's per-path shares distinguishable.
	Rates [2]int64
}

// NewTwoPath builds the scenario.
func NewTwoPath(eng *sim.Engine, cfg TwoPathConfig) *TwoPath {
	if cfg.Rate == 0 {
		cfg.Rate = 100 * netem.Mbps
	}
	for i := range cfg.Rates {
		if cfg.Rates[i] == 0 {
			cfg.Rates[i] = cfg.Rate
		}
	}
	if cfg.Delay == 0 {
		cfg.Delay = 10 * sim.Millisecond
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = 100
	}
	g := newGraph(eng)
	// Nodes: sender 0, receiver 1, relay switches 10 and 11 (one per path).
	lc0 := netem.LinkConfig{Name: "tp", Rate: cfg.Rates[0], Delay: cfg.Delay / 2, QueueLimit: cfg.QueueLimit}
	lc1 := netem.LinkConfig{Name: "tp", Rate: cfg.Rates[1], Delay: cfg.Delay / 2, QueueLimit: cfg.QueueLimit}
	g.biLink(0, 10, lc0)
	g.biLink(10, 1, lc0)
	g.biLink(0, 11, lc1)
	g.biLink(11, 1, lc1)
	return &TwoPath{
		g: g,
		paths: []*netem.Path{
			g.path("path0", 0, 10, 1),
			g.path("path1", 0, 11, 1),
		},
	}
}

// Paths returns the sender's two paths.
func (t *TwoPath) Paths() []*netem.Path { return t.paths }

// CrossEntry returns the forward link of path i that cross traffic shares
// (the second hop, so the sender's access hop stays clean).
func (t *TwoPath) CrossEntry(i int) *netem.Link { return t.paths[i].Forward[1] }

// HetWireless is the Fig. 17 scenario: a mobile sender with a WiFi path
// (10 Mb/s, 40 ms) and a 4G path (20 Mb/s, 100 ms), DropTail queues of 50
// packets, as in the paper's ns-2 setup.
type HetWireless struct {
	g     *graph
	paths []*netem.Path
}

// HetWirelessConfig parameterizes the Fig. 17 scenario; zero values take
// the paper's settings.
type HetWirelessConfig struct {
	WiFiRate  int64
	WiFiDelay sim.Time
	LTERate   int64
	LTEDelay  sim.Time
	Queue     int
	// WiFiLoss adds random loss on the WiFi link (wireless error), 0 by
	// default as in the paper's base setup.
	WiFiLoss float64
}

// NewHetWireless builds the scenario.
func NewHetWireless(eng *sim.Engine, cfg HetWirelessConfig) *HetWireless {
	if cfg.WiFiRate == 0 {
		cfg.WiFiRate = 10 * netem.Mbps
	}
	if cfg.WiFiDelay == 0 {
		cfg.WiFiDelay = 40 * sim.Millisecond
	}
	if cfg.LTERate == 0 {
		cfg.LTERate = 20 * netem.Mbps
	}
	if cfg.LTEDelay == 0 {
		cfg.LTEDelay = 100 * sim.Millisecond
	}
	if cfg.Queue == 0 {
		cfg.Queue = 50
	}
	g := newGraph(eng)
	// Nodes: sender 0, receiver 1, WiFi AP 10, 4G base station 11.
	wifi := netem.LinkConfig{Name: "wifi", Rate: cfg.WiFiRate, Delay: cfg.WiFiDelay / 2, QueueLimit: cfg.Queue, LossProb: cfg.WiFiLoss}
	lte := netem.LinkConfig{Name: "lte", Rate: cfg.LTERate, Delay: cfg.LTEDelay / 2, QueueLimit: cfg.Queue}
	g.biLink(0, 10, wifi)
	g.biLink(10, 1, wifi)
	g.biLink(0, 11, lte)
	g.biLink(11, 1, lte)
	return &HetWireless{
		g: g,
		paths: []*netem.Path{
			g.path("wifi", 0, 10, 1),
			g.path("lte", 0, 11, 1),
		},
	}
}

// Paths returns the WiFi path (index 0) and the 4G path (index 1).
func (h *HetWireless) Paths() []*netem.Path { return h.paths }

// CrossEntry returns the shared hop of path i for cross-traffic injection.
func (h *HetWireless) CrossEntry(i int) *netem.Link { return h.paths[i].Forward[1] }

// EC2VPC is the Fig. 10 scenario: hosts with four elastic network
// interfaces, each on its own subnet, giving four routes between every
// host pair. ENI capacity is 256 Mb/s as in the paper.
type EC2VPC struct {
	g     *graph
	hosts int
	nets  int
}

// EC2Config parameterizes the VPC.
type EC2Config struct {
	Hosts   int      // default 40
	Subnets int      // default 4 (= ENIs per host)
	ENIRate int64    // default 256 Mb/s
	Delay   sim.Time // default 250 us intra-DC hop
	// MarkThreshold enables DCTCP-style ECN marking on the ENI links.
	MarkThreshold int
}

// NewEC2VPC builds the VPC.
func NewEC2VPC(eng *sim.Engine, cfg EC2Config) *EC2VPC {
	if cfg.Hosts == 0 {
		cfg.Hosts = 40
	}
	if cfg.Subnets == 0 {
		cfg.Subnets = 4
	}
	if cfg.ENIRate == 0 {
		cfg.ENIRate = 256 * netem.Mbps
	}
	if cfg.Delay == 0 {
		cfg.Delay = 250 * sim.Microsecond
	}
	g := newGraph(eng)
	// Nodes: host h = 1000+h; subnet switch s = 1+s. Every host has one
	// ENI (link) to every subnet switch.
	lc := netem.LinkConfig{Name: "eni", Rate: cfg.ENIRate, Delay: cfg.Delay, QueueLimit: 100, MarkThreshold: cfg.MarkThreshold}
	for h := 0; h < cfg.Hosts; h++ {
		for s := 0; s < cfg.Subnets; s++ {
			g.biLink(int32(1000+h), int32(1+s), lc)
		}
	}
	return &EC2VPC{g: g, hosts: cfg.Hosts, nets: cfg.Subnets}
}

// Hosts returns the host count.
func (v *EC2VPC) Hosts() int { return v.hosts }

// Paths returns up to n routes between two hosts, one per subnet.
func (v *EC2VPC) Paths(src, dst, n int) []*netem.Path {
	if n <= 0 || n > v.nets {
		n = v.nets
	}
	out := make([]*netem.Path, 0, n)
	h := (src + dst) % v.nets
	for s := 0; s < n; s++ {
		subnet := (s + h) % v.nets
		out = append(out, v.g.path(
			fmt.Sprintf("h%d-h%d-net%d", src, dst, subnet),
			int32(1000+src), int32(1+subnet), int32(1000+dst)))
	}
	return out
}

// Links exposes every link for utilization accounting.
func (v *EC2VPC) Links() []*netem.Link { return v.g.Links() }
