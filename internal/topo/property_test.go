package topo

import (
	"testing"
	"testing/quick"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// Property: for random host pairs and subflow counts, every enumerated
// route is well-formed — positive bottleneck rate, positive base RTT,
// matching forward/reverse hop counts — across all three datacenter
// topologies.
func TestDatacenterPathsWellFormedProperty(t *testing.T) {
	eng := sim.NewEngine(1)
	ft, err := NewFatTree(eng, FatTreeConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	vl2, err := NewVL2(eng, VL2Config{HostsPerToR: 2, ToRs: 8, Aggs: 4, Ints: 4})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := NewBCube(eng, BCubeConfig{N: 3, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	nets := []struct {
		name  string
		hosts int
		paths func(src, dst, n int) []*netem.Path
	}{
		{name: "fattree", hosts: ft.Hosts(), paths: ft.Paths},
		{name: "vl2", hosts: vl2.Hosts(), paths: vl2.Paths},
		{name: "bcube", hosts: bc.Hosts(), paths: bc.Paths},
	}

	f := func(rawSrc, rawDst, rawN uint8) bool {
		for _, net := range nets {
			src := int(rawSrc) % net.hosts
			dst := int(rawDst) % net.hosts
			n := int(rawN)%8 + 1
			paths := net.paths(src, dst, n)
			if src == dst {
				if paths != nil {
					t.Logf("%s: self-pair returned paths", net.name)
					return false
				}
				continue
			}
			if len(paths) != n {
				t.Logf("%s: got %d paths, want %d", net.name, len(paths), n)
				return false
			}
			for _, p := range paths {
				if p.MinRate() <= 0 {
					t.Logf("%s: %s has no bottleneck rate", net.name, p.Name)
					return false
				}
				if p.BaseRTT(1500, 52) <= 0 {
					t.Logf("%s: %s has non-positive RTT", net.name, p.Name)
					return false
				}
				if len(p.Forward) == 0 || len(p.Forward) != len(p.Reverse) {
					t.Logf("%s: %s asymmetric (%d fwd, %d rev)",
						net.name, p.Name, len(p.Forward), len(p.Reverse))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: BCube routes never visit the same link twice (loop freedom).
func TestBCubeLoopFreeProperty(t *testing.T) {
	eng := sim.NewEngine(1)
	bc, err := NewBCube(eng, BCubeConfig{N: 4, K: 2, UseDetours: true})
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawSrc, rawDst uint8) bool {
		src := int(rawSrc) % bc.Hosts()
		dst := int(rawDst) % bc.Hosts()
		if src == dst {
			return true
		}
		for _, p := range bc.Paths(src, dst, 6) {
			seen := make(map[*netem.Link]bool, len(p.Forward))
			for _, l := range p.Forward {
				if seen[l] {
					t.Logf("route %s revisits link %s", p.Name, l.Name())
					return false
				}
				seen[l] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
