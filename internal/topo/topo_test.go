package topo

import (
	"testing"

	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// transferOK runs a small MPTCP transfer over the given paths and reports
// whether it completes — the functional proof that a route is wired
// correctly end to end.
func transferOK(t *testing.T, eng *sim.Engine, paths []*netem.Path) bool {
	t.Helper()
	c, err := mptcp.New(eng, mptcp.Config{Algorithm: "lia", TransferBytes: 200 << 10}, 1, paths...)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	eng.Run(eng.Now() + 120*sim.Second)
	return c.Done()
}

func TestFatTreePaperScale(t *testing.T) {
	eng := sim.NewEngine(1)
	ft, err := NewFatTree(eng, FatTreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Hosts() != 128 {
		t.Errorf("FatTree(8) hosts = %d, want 128", ft.Hosts())
	}
	if ft.Switches() != 80 {
		t.Errorf("FatTree(8) switches = %d, want 80", ft.Switches())
	}
	// Total links: host links (128) + edge-agg (k * k/2 * k/2 = 128) +
	// agg-core (k * k/2 * k/2 = 128), each bidirectional.
	if got := len(ft.Links()); got != 2*(128+128+128) {
		t.Errorf("FatTree(8) directed links = %d, want 768", got)
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	eng := sim.NewEngine(1)
	if _, err := NewFatTree(eng, FatTreeConfig{K: 3}); err == nil {
		t.Error("odd k accepted")
	}
}

func TestFatTreePathShapes(t *testing.T) {
	eng := sim.NewEngine(1)
	ft, err := NewFatTree(eng, FatTreeConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Hosts() != 16 || ft.Switches() != 20 {
		t.Fatalf("FatTree(4): %d hosts %d switches, want 16/20", ft.Hosts(), ft.Switches())
	}
	tests := []struct {
		name     string
		src, dst int
		wantHops int // forward links
	}{
		{name: "inter-pod", src: 0, dst: 15, wantHops: 6},
		{name: "intra-pod", src: 0, dst: 3, wantHops: 4},
		{name: "same-edge", src: 0, dst: 1, wantHops: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			paths := ft.Paths(tt.src, tt.dst, 4)
			if len(paths) != 4 {
				t.Fatalf("got %d paths, want 4", len(paths))
			}
			for _, p := range paths {
				if len(p.Forward) != tt.wantHops {
					t.Errorf("path %s has %d hops, want %d", p.Name, len(p.Forward), tt.wantHops)
				}
				if len(p.Reverse) != tt.wantHops {
					t.Errorf("path %s reverse has %d hops, want %d", p.Name, len(p.Reverse), tt.wantHops)
				}
			}
		})
	}
}

func TestFatTreeInterPodPathsDisjoint(t *testing.T) {
	eng := sim.NewEngine(1)
	ft, _ := NewFatTree(eng, FatTreeConfig{K: 4})
	paths := ft.Paths(0, 15, 4) // (k/2)^2 = 4 distinct core routes
	seen := make(map[*netem.Link]int)
	for _, p := range paths {
		// The middle hops (agg->core, core->agg) must differ across paths.
		seen[p.Forward[2]]++
		seen[p.Forward[3]]++
	}
	for l, n := range seen {
		if n > 1 {
			t.Errorf("core link %s shared by %d of the 4 equal-cost paths", l.Name(), n)
		}
	}
}

func TestFatTreeSamePairNoPaths(t *testing.T) {
	eng := sim.NewEngine(1)
	ft, _ := NewFatTree(eng, FatTreeConfig{K: 4})
	if p := ft.Paths(3, 3, 2); p != nil {
		t.Error("src == dst should yield no paths")
	}
}

func TestFatTreeEndToEnd(t *testing.T) {
	eng := sim.NewEngine(1)
	ft, _ := NewFatTree(eng, FatTreeConfig{K: 4, Delay: sim.Millisecond})
	if !transferOK(t, eng, ft.Paths(0, 13, 4)) {
		t.Error("transfer across FatTree(4) did not complete")
	}
}

func TestFatTreeSwitchLinks(t *testing.T) {
	eng := sim.NewEngine(1)
	ft, _ := NewFatTree(eng, FatTreeConfig{K: 4})
	// edge-agg: 4 pods * 2 * 2 = 16 bidirectional = 32 directed; agg-core
	// same again.
	if got := len(ft.SwitchLinks()); got != 64 {
		t.Errorf("switch links = %d, want 64", got)
	}
}

// Link enumeration order must not depend on map iteration: fault schedules
// index into these slices (kill links[0], flap links[1]), so a reshuffled
// order would fault different physical links run to run and break the
// byte-identical determinism contract.
func TestLinkEnumerationDeterministic(t *testing.T) {
	names := func(ls []*netem.Link) []string {
		out := make([]string, len(ls))
		for i, l := range ls {
			out[i] = l.Name()
		}
		return out
	}
	build := func(eng *sim.Engine) [][]string {
		ft, _ := NewFatTree(eng, FatTreeConfig{K: 4})
		vl, _ := NewVL2(eng, VL2Config{})
		return [][]string{names(ft.SwitchLinks()), names(ft.Links()), names(vl.SwitchLinks())}
	}
	a := build(sim.NewEngine(1))
	for trial := 0; trial < 5; trial++ {
		b := build(sim.NewEngine(1))
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Fatalf("enumeration %d: %d links vs %d", i, len(a[i]), len(b[i]))
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("enumeration %d reordered at %d: %q vs %q", i, j, a[i][j], b[i][j])
				}
			}
		}
	}
}

func TestVL2PaperScale(t *testing.T) {
	eng := sim.NewEngine(1)
	v, err := NewVL2(eng, VL2Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Hosts() != 128 {
		t.Errorf("VL2 hosts = %d, want 128", v.Hosts())
	}
	if v.Switches() != 80 {
		t.Errorf("VL2 switches = %d, want 80", v.Switches())
	}
}

func TestVL2PathShapes(t *testing.T) {
	eng := sim.NewEngine(1)
	v, err := NewVL2(eng, VL2Config{HostsPerToR: 2, ToRs: 8, Aggs: 4, Ints: 4, Delay: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	paths := v.Paths(0, 15, 8)
	if len(paths) != 8 {
		t.Fatalf("got %d paths, want 8", len(paths))
	}
	for _, p := range paths {
		if len(p.Forward) != 6 {
			t.Errorf("inter-ToR path %s has %d hops, want 6", p.Name, len(p.Forward))
		}
	}
	// Distinct intermediates across the first Ints paths.
	inter := make(map[*netem.Link]bool)
	for _, p := range paths[:4] {
		inter[p.Forward[2]] = true
	}
	if len(inter) != 4 {
		t.Errorf("first 4 paths use %d distinct agg->intermediate links, want 4", len(inter))
	}
	// Same-ToR pair: two hops through the ToR.
	same := v.Paths(0, 1, 2)
	for _, p := range same {
		if len(p.Forward) != 2 {
			t.Errorf("same-ToR path has %d hops, want 2", len(p.Forward))
		}
	}
}

func TestVL2EndToEnd(t *testing.T) {
	eng := sim.NewEngine(1)
	v, _ := NewVL2(eng, VL2Config{HostsPerToR: 2, ToRs: 8, Aggs: 4, Ints: 4, Delay: sim.Millisecond})
	if !transferOK(t, eng, v.Paths(0, 9, 4)) {
		t.Error("transfer across VL2 did not complete")
	}
}

func TestBCubePaperScale(t *testing.T) {
	eng := sim.NewEngine(1)
	b, err := NewBCube(eng, BCubeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Hosts() != 125 {
		t.Errorf("BCube(5,2) hosts = %d, want 125", b.Hosts())
	}
	if b.Switches() != 75 {
		t.Errorf("BCube(5,2) switches = %d, want 75", b.Switches())
	}
}

func TestBCubeSwitchAdjacency(t *testing.T) {
	eng := sim.NewEngine(1)
	b, err := NewBCube(eng, BCubeConfig{N: 3, K: 1, Delay: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// BCube(3,1): 9 hosts, 6 switches, each host 2 ports: 18 bidirectional
	// links -> 36 directed.
	if b.Hosts() != 9 || b.Switches() != 6 {
		t.Fatalf("BCube(3,1): %d hosts %d switches", b.Hosts(), b.Switches())
	}
	if got := len(b.Links()); got != 36 {
		t.Errorf("BCube(3,1) directed links = %d, want 36", got)
	}
}

func TestBCubePathsAlternateHostSwitch(t *testing.T) {
	eng := sim.NewEngine(1)
	b, _ := NewBCube(eng, BCubeConfig{N: 3, K: 1, Delay: sim.Millisecond})
	// Hosts 0 (digits 00) and 8 (digits 22) differ in both digits: the
	// direct rotation paths have 2 server hops = 4 links.
	paths := b.Paths(0, 8, 2)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if len(p.Forward) != 4 {
			t.Errorf("path %s has %d links, want 4 (two server hops)", p.Name, len(p.Forward))
		}
	}
	// The two rotations must not share links.
	used := make(map[*netem.Link]bool)
	for _, l := range paths[0].Forward {
		used[l] = true
	}
	for _, l := range paths[1].Forward {
		if used[l] {
			t.Errorf("rotation paths share link %s", l.Name())
		}
	}
}

func TestBCubeDetourPathsDistinct(t *testing.T) {
	eng := sim.NewEngine(1)
	b, _ := NewBCube(eng, BCubeConfig{N: 5, K: 2, Delay: sim.Millisecond, UseDetours: true})
	paths := b.Paths(0, 124, 8)
	if len(paths) != 8 {
		t.Fatalf("got %d paths, want 8", len(paths))
	}
	keys := make(map[string]bool)
	for _, p := range paths {
		key := ""
		for _, l := range p.Forward {
			key += l.Name() + "|"
		}
		keys[key] = true
	}
	if len(keys) < 6 {
		t.Errorf("only %d distinct routes among 8 requested; BCube(5,2) has plenty", len(keys))
	}
}

func TestBCubeEndToEnd(t *testing.T) {
	eng := sim.NewEngine(1)
	b, _ := NewBCube(eng, BCubeConfig{N: 3, K: 1, Delay: sim.Millisecond})
	if !transferOK(t, eng, b.Paths(1, 7, 3)) {
		t.Error("transfer across BCube did not complete")
	}
}

func TestEC2VPCPaths(t *testing.T) {
	eng := sim.NewEngine(1)
	v := NewEC2VPC(eng, EC2Config{})
	if v.Hosts() != 40 {
		t.Errorf("hosts = %d, want 40", v.Hosts())
	}
	paths := v.Paths(0, 1, 0)
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4 (one per subnet)", len(paths))
	}
	for _, p := range paths {
		if len(p.Forward) != 2 {
			t.Errorf("VPC path has %d hops, want 2", len(p.Forward))
		}
		if p.MinRate() != 256*netem.Mbps {
			t.Errorf("ENI rate = %d, want 256 Mb/s", p.MinRate())
		}
	}
	if !transferOK(t, eng, paths) {
		t.Error("transfer across VPC did not complete")
	}
}

func TestDumbbellScenario(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDumbbell(eng, DumbbellConfig{Users: 3})
	mp := d.MPTCPPaths(0)
	if len(mp) != 2 {
		t.Fatalf("MPTCP user has %d paths, want 2", len(mp))
	}
	if mp[0].Forward[1] == mp[1].Forward[1] {
		t.Error("the two MPTCP paths share a bottleneck")
	}
	b := d.Bottlenecks()
	if mp[0].Forward[1] != b[0] || mp[1].Forward[1] != b[1] {
		t.Error("MPTCP paths do not traverse the dumbbell bottlenecks")
	}
	if tp := d.TCPPath(1, 0); tp.Forward[1] != b[0] {
		t.Error("TCP path misses bottleneck 0")
	}
	if !transferOK(t, eng, mp) {
		t.Error("transfer across dumbbell did not complete")
	}
}

func TestTwoPathScenario(t *testing.T) {
	eng := sim.NewEngine(1)
	tp := NewTwoPath(eng, TwoPathConfig{})
	paths := tp.Paths()
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if tp.CrossEntry(0) == tp.CrossEntry(1) {
		t.Error("cross-traffic entries coincide")
	}
	if tp.CrossEntry(0) != paths[0].Forward[1] {
		t.Error("cross entry is not the shared hop of path 0")
	}
	if !transferOK(t, eng, paths) {
		t.Error("transfer across two-path scenario did not complete")
	}
}

func TestHetWirelessScenario(t *testing.T) {
	eng := sim.NewEngine(1)
	h := NewHetWireless(eng, HetWirelessConfig{})
	paths := h.Paths()
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if paths[0].MinRate() != 10*netem.Mbps || paths[1].MinRate() != 20*netem.Mbps {
		t.Errorf("rates = %d, %d; want WiFi 10 Mb/s, LTE 20 Mb/s",
			paths[0].MinRate(), paths[1].MinRate())
	}
	wifiRTT := paths[0].BaseRTT(1500, 52)
	lteRTT := paths[1].BaseRTT(1500, 52)
	if wifiRTT >= lteRTT {
		t.Errorf("WiFi base RTT %v >= LTE %v", wifiRTT.Duration(), lteRTT.Duration())
	}
	if !transferOK(t, eng, paths) {
		t.Error("transfer across het-wireless did not complete")
	}
}
