package topo

import (
	"fmt"
	"strings"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// BCube is the server-centric hypercube of Guo et al. (SIGCOMM 2009):
// BCube(n, k) has n^(k+1) hosts, each with k+1 ports, and (k+1)·n^k
// n-port switches arranged in k+1 levels. Servers relay traffic between
// levels, which is what gives BCube its many parallel paths. The paper's
// "128 hosts, 64 switches" is approximated by BCube(5, 2): 125 hosts, 75
// switches — the nearest valid BCube of that scale (matching Raiciu et
// al.'s htsim setup, which this paper reuses).
type BCube struct {
	g   *graph
	cfg BCubeConfig
	dim int // k+1 digits
}

// BCubeConfig parameterizes the cube; zero values take BCube(5, 2) with
// the paper's 100 Mb/s links.
type BCubeConfig struct {
	N          int // switch port count / digit base
	K          int // levels - 1
	Rate       int64
	Delay      sim.Time
	QueueLimit int

	// UseDetours also enumerates the longer altered paths that relay
	// through extra intermediate servers (Guo et al.'s BuildPathSet).
	// They add path diversity but consume ~2x the link capacity per bit,
	// so the default assigns extra subflows to the k+1 short disjoint
	// rotation paths instead, as the htsim MPTCP evaluation does.
	UseDetours bool
}

func (c BCubeConfig) withDefaults() BCubeConfig {
	if c.N == 0 {
		c.N = 5
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.Rate == 0 {
		c.Rate = 100 * netem.Mbps
	}
	if c.Delay == 0 {
		// The paper prints "100ms links"; we read that as the
		// htsim-typical 100 us — at 100 ms per hop a datacenter path's
		// bandwidth-delay product dwarfs any realistic switch buffer and
		// every algorithm collapses, which is clearly not what the paper
		// simulated.
		c.Delay = 100 * sim.Microsecond
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 100
	}
	return c
}

const (
	bcHostBase   int32 = 100000
	bcSwitchBase int32 = 1000
)

// NewBCube builds the topology.
func NewBCube(eng *sim.Engine, cfg BCubeConfig) (*BCube, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 || cfg.K < 0 {
		return nil, fmt.Errorf("topo: BCube needs n >= 2 and k >= 0, got n=%d k=%d", cfg.N, cfg.K)
	}
	b := &BCube{g: newGraph(eng), cfg: cfg, dim: cfg.K + 1}
	lc := netem.LinkConfig{Name: "bc", Rate: cfg.Rate, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	for h := 0; h < b.Hosts(); h++ {
		for level := 0; level < b.dim; level++ {
			b.g.biLink(b.host(h), b.swit(level, b.switchIdx(h, level)), lc)
		}
	}
	return b, nil
}

// Hosts returns n^(k+1).
func (b *BCube) Hosts() int {
	return pow(b.cfg.N, b.dim)
}

// Switches returns (k+1)·n^k.
func (b *BCube) Switches() int {
	return b.dim * pow(b.cfg.N, b.cfg.K)
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

func (b *BCube) host(h int) int32 { return bcHostBase + int32(h) }

func (b *BCube) swit(level, idx int) int32 {
	return bcSwitchBase + int32(level*pow(b.cfg.N, b.cfg.K)+idx)
}

// digit returns digit `level` of host h in base n.
func (b *BCube) digit(h, level int) int {
	return h / pow(b.cfg.N, level) % b.cfg.N
}

// setDigit returns h with digit `level` replaced by v.
func (b *BCube) setDigit(h, level, v int) int {
	p := pow(b.cfg.N, level)
	return h - b.digit(h, level)*p + v*p
}

// switchIdx returns the index of the level-`level` switch adjacent to host
// h: the host's digits with digit `level` removed.
func (b *BCube) switchIdx(h, level int) int {
	lowPow := pow(b.cfg.N, level)
	low := h % lowPow
	high := h / (lowPow * b.cfg.N)
	return high*lowPow + low
}

// hopNodes appends the two links of one server hop — through the level
// switch from cur to next — as node IDs.
func (b *BCube) hopNodes(nodes []int32, cur, level, next int) []int32 {
	return append(nodes, b.swit(level, b.switchIdx(cur, level)), b.host(next))
}

// route builds the node sequence from src to dst correcting digits in
// rotation order starting at level start; detour != 0 first moves the
// start digit to an intermediate value (BCube's altered parallel paths).
func (b *BCube) route(src, dst, start, detour int) []int32 {
	nodes := []int32{b.host(src)}
	cur := src
	if detour != 0 && b.dim > 0 {
		level := start % b.dim
		v := (b.digit(dst, level) + detour) % b.cfg.N
		if v != b.digit(cur, level) {
			next := b.setDigit(cur, level, v)
			nodes = b.hopNodes(nodes, cur, level, next)
			cur = next
		}
	}
	for i := 0; i < b.dim; i++ {
		level := (start + i) % b.dim
		if b.digit(cur, level) == b.digit(dst, level) {
			continue
		}
		next := b.setDigit(cur, level, b.digit(dst, level))
		nodes = b.hopNodes(nodes, cur, level, next)
		cur = next
	}
	// A detour may leave the start digit still wrong; the loop above fixes
	// it on its pass, except when the detour landed after its turn.
	for level := 0; level < b.dim; level++ {
		if b.digit(cur, level) != b.digit(dst, level) {
			next := b.setDigit(cur, level, b.digit(dst, level))
			nodes = b.hopNodes(nodes, cur, level, next)
			cur = next
		}
	}
	return nodes
}

// Paths returns n routes between two hosts: the k+1 digit-rotation
// parallel paths (and, with UseDetours, altered paths relaying through
// extra intermediate servers), deduplicated; once the distinct routes run
// out, routes repeat (multiple subflows per route).
func (b *BCube) Paths(src, dst, n int) []*netem.Path {
	if src == dst {
		return nil
	}
	maxDetour := 1
	if b.cfg.UseDetours {
		maxDetour = b.cfg.N
	}
	seen := make(map[string]bool, n)
	var routes [][]int32
	h := (src*131 + dst*31) % b.dim
	for detour := 0; detour < maxDetour && len(routes) < n; detour++ {
		for start := 0; start < b.dim && len(routes) < n; start++ {
			nodes := b.route(src, dst, (start+h)%b.dim, detour)
			key := routeKey(nodes)
			if seen[key] {
				continue
			}
			seen[key] = true
			routes = append(routes, nodes)
		}
	}
	out := make([]*netem.Path, 0, n)
	for i := 0; i < n; i++ {
		nodes := routes[i%len(routes)]
		out = append(out, b.g.path(fmt.Sprintf("bc%d-%d.%d", src, dst, i), nodes...))
	}
	return out
}

func routeKey(nodes []int32) string {
	var sb strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&sb, "%d,", n)
	}
	return sb.String()
}

// Links exposes every link.
func (b *BCube) Links() []*netem.Link { return b.g.Links() }
