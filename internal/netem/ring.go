package netem

// pktRing is a fixed-capacity FIFO of packets backing a link's DropTail
// queue. The previous queue was a plain slice advanced with queue[1:] and
// refilled with append, which regrows the backing array perpetually (every
// element of the array is used exactly once); the ring reuses its backing
// array forever, so a link in steady state never allocates. Capacity grows
// geometrically up to the link's queue limit and then stays fixed — the
// limit itself may be large (fuzzed configs), so it is not allocated
// eagerly.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

// ringInitialCap is the smallest backing array a non-empty ring allocates.
const ringInitialCap = 16

func (r *pktRing) len() int { return r.n }

// front returns the oldest packet without removing it.
func (r *pktRing) front() *Packet { return r.buf[r.head] }

// push appends a packet, growing toward limit if the backing array is full.
// The caller enforces the queue limit; pushing past it panics via index
// arithmetic only after grow declines to exceed limit.
func (r *pktRing) push(p *Packet, limit int) {
	if r.n == len(r.buf) {
		r.grow(limit)
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = p
	r.n++
}

// pop removes and returns the oldest packet.
func (r *pktRing) pop() *Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	if r.n == 0 {
		r.head = 0
	}
	return p
}

// popBack removes and returns the newest packet (queue flush on link-down).
func (r *pktRing) popBack() *Packet {
	r.n--
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	p := r.buf[i]
	r.buf[i] = nil
	return p
}

func (r *pktRing) grow(limit int) {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = ringInitialCap
	}
	if newCap > limit {
		newCap = limit
	}
	if newCap <= r.n {
		panic("netem: ring grown past its queue limit")
	}
	buf := make([]*Packet, newCap)
	m := copy(buf, r.buf[r.head:])
	copy(buf[m:], r.buf[:r.head])
	r.buf, r.head = buf, 0
}
