package netem

import "mptcpsim/internal/sim"

// Path is one end-to-end route of a (sub)flow: the chain of links data
// packets traverse and the chain ACKs take back.
type Path struct {
	Name    string
	Forward []*Link
	Reverse []*Link

	pool Pool
}

// Pool returns the path's packet free list. Every sender over the path draws
// data packets from it; ACKs answer from the same pool via Packet.Pool, so
// the whole round trip recycles in one single-threaded domain.
func (p *Path) Pool() *Pool { return &p.pool }

// MinRate returns the smallest line rate along the forward direction — the
// path's bottleneck bandwidth.
func (p *Path) MinRate() int64 {
	var min int64
	for _, l := range p.Forward {
		if min == 0 || l.Rate() < min {
			min = l.Rate()
		}
	}
	return min
}

// BaseRTT returns the no-queueing round-trip time for a data packet of
// dataSize bytes acknowledged by an ACK of ackSize bytes: propagation both
// ways plus per-hop serialization.
func (p *Path) BaseRTT(dataSize, ackSize int) sim.Time {
	var rtt sim.Time
	for _, l := range p.Forward {
		rtt += l.Delay() + l.TxTime(dataSize)
	}
	for _, l := range p.Reverse {
		rtt += l.Delay() + l.TxTime(ackSize)
	}
	return rtt
}

// PriceSum returns the current total energy price along the forward links.
// It is the oracle form of the in-band price that data packets accumulate.
func (p *Path) PriceSum() float64 {
	var sum float64
	for _, l := range p.Forward {
		sum += l.Price()
	}
	return sum
}
