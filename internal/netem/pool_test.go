package netem

import (
	"reflect"
	"testing"

	"mptcpsim/internal/sim"
)

// poolCarryFields are the unexported Packet fields that intentionally
// survive recycling: the cached forward closure (bound to the packet
// pointer), the pool backpointer and the generation/release bookkeeping.
var poolCarryFields = map[string]bool{
	"fwdFn": true, "pool": true, "gen": true, "pooled": true,
}

// TestPoolRecycleScrubsEveryField sets every exported Packet field to a
// non-zero value, releases the packet, and asserts the recycled object —
// which the LIFO free list guarantees is the same one — comes back with
// every field zeroed except the intentional carry-overs. Reflection walks
// the struct so a future field added to Packet without scrub coverage
// fails here instead of leaking stale flags, ECN marks or timestamps into
// the next incarnation.
func TestPoolRecycleScrubsEveryField(t *testing.T) {
	var pool Pool
	p := pool.Get()
	rv := reflect.ValueOf(p).Elem()
	rt := rv.Type()
	set := 0
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		if !f.CanSet() {
			continue // unexported: route state, scrubbed wholesale by Get
		}
		switch f.Kind() {
		case reflect.Bool:
			f.SetBool(true)
		case reflect.Int, reflect.Int64:
			f.SetInt(77)
		case reflect.Uint, reflect.Uint64:
			f.SetUint(77)
		case reflect.Float64:
			f.SetFloat(7.5)
		default:
			t.Fatalf("Packet.%s has kind %s this test cannot poison — extend it", rt.Field(i).Name, f.Kind())
		}
		set++
	}
	if set == 0 {
		t.Fatal("poisoned no fields; reflection walk is broken")
	}
	p.SetRoute([]*Link{}, nil) // poison the unexported route state too
	p.Release()

	q := pool.Get()
	if q != p {
		t.Fatal("free list did not recycle the released packet")
	}
	for i := 0; i < rv.NumField(); i++ {
		name := rt.Field(i).Name
		if poolCarryFields[name] {
			continue
		}
		if f := rv.Field(i); !f.IsZero() {
			t.Errorf("recycled packet leaks %s (non-zero after Get)", name)
		}
	}
	q.Release()
}

func TestPacketPoolReuseIsClean(t *testing.T) {
	p := NewPacket()
	p.Seq = 42
	p.IsAck = true
	p.Price = 7
	p.SackSeq = 9
	p.Release()
	q := NewPacket()
	// The pool may or may not hand back the same object; either way every
	// field must be zeroed.
	if q.Seq != 0 || q.IsAck || q.Price != 0 || q.SackSeq != 0 || q.CE {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}
	q.Release()
}

func TestPooledPacketForwardAfterReuse(t *testing.T) {
	// The cached forward closure must keep working across pool cycles.
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: Gbps, Delay: sim.Microsecond})
	c := &collector{eng: eng}
	for i := 0; i < 100; i++ {
		p := NewPacket()
		p.Seq = int64(i)
		p.Size = 100
		p.SetRoute([]*Link{l}, c)
		p.Send()
		eng.Drain()
	}
	if len(c.pkts) != 100 {
		t.Fatalf("delivered %d packets through pool cycles, want 100", len(c.pkts))
	}
	for i, p := range c.pkts {
		// The collector retains pointers, but since this test releases
		// nothing after delivery, sequence numbers must be intact.
		if p.Seq != int64(i) {
			t.Fatalf("packet %d has seq %d; pooled state leaked", i, p.Seq)
		}
	}
}

func TestDroppedPacketsAreReleased(t *testing.T) {
	// Overflow drops release packets back to the pool; this must not
	// corrupt packets still in flight.
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 10 * Mbps, Delay: sim.Millisecond, QueueLimit: 4})
	c := &collector{eng: eng}
	for i := 0; i < 50; i++ {
		p := NewPacket()
		p.Seq = int64(i)
		p.Size = 1500
		p.SetRoute([]*Link{l}, c)
		p.Send()
	}
	eng.Drain()
	if len(c.pkts) != 4 {
		t.Fatalf("delivered %d, want 4 (queue limit)", len(c.pkts))
	}
	for i, p := range c.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("in-flight packet %d corrupted by drop recycling (seq %d)", i, p.Seq)
		}
	}
}

func TestLinkPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLink with zero rate did not panic")
		}
	}()
	NewLink(sim.NewEngine(1), LinkConfig{Name: "bad"})
}

func TestUtilizationIdleLink(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: Gbps, Delay: 0})
	eng.Run(sim.Second)
	if u := l.Utilization(); u != 0 {
		t.Errorf("idle link utilization = %v, want 0", u)
	}
}

func TestSetPriceTakesEffect(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: Gbps, Delay: 0})
	if l.Price() != 0 {
		t.Fatal("unpriced link has a price")
	}
	l.SetPrice(1.5, 0, 0)
	if l.Price() != 1.5 {
		t.Errorf("Price = %v after SetPrice, want 1.5", l.Price())
	}
}
