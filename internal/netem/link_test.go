package netem

import (
	"testing"
	"testing/quick"

	"mptcpsim/internal/sim"
)

type collector struct {
	eng  *sim.Engine
	pkts []*Packet
	at   []sim.Time
}

func (c *collector) Receive(p *Packet) {
	c.pkts = append(c.pkts, p)
	c.at = append(c.at, c.eng.Now())
}

func sendOne(eng *sim.Engine, links []*Link, dst Endpoint, size int, seq int64) *Packet {
	p := &Packet{Seq: seq, Size: size}
	p.SetRoute(links, dst)
	p.Send()
	return p
}

func TestLinkDeliveryLatencyUnloaded(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 100 * Mbps, Delay: 10 * sim.Millisecond})
	c := &collector{eng: eng}
	sendOne(eng, []*Link{l}, c, 1500, 0)
	eng.Run(sim.Second)

	// 1500 B at 100 Mb/s = 120 us serialization, plus 10 ms propagation.
	want := l.TxTime(1500) + 10*sim.Millisecond
	if len(c.at) != 1 || c.at[0] != want {
		t.Fatalf("delivered at %v, want %v", c.at, want)
	}
	if l.TxTime(1500) != 120*sim.Microsecond {
		t.Errorf("TxTime(1500) = %v, want 120us", l.TxTime(1500).Duration())
	}
}

func TestLinkFIFOOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 10 * Mbps, Delay: sim.Millisecond})
	c := &collector{eng: eng}
	for i := int64(0); i < 50; i++ {
		sendOne(eng, []*Link{l}, c, 1500, i)
	}
	eng.Run(sim.Second)
	if len(c.pkts) != 50 {
		t.Fatalf("delivered %d packets, want 50", len(c.pkts))
	}
	for i, p := range c.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("packet %d has seq %d; FIFO violated", i, p.Seq)
		}
	}
}

func TestLinkBackToBackSpacing(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 100 * Mbps, Delay: sim.Millisecond})
	c := &collector{eng: eng}
	sendOne(eng, []*Link{l}, c, 1500, 0)
	sendOne(eng, []*Link{l}, c, 1500, 1)
	eng.Run(sim.Second)
	if len(c.at) != 2 {
		t.Fatalf("delivered %d, want 2", len(c.at))
	}
	gap := c.at[1] - c.at[0]
	if gap != l.TxTime(1500) {
		t.Errorf("back-to-back gap %v, want one serialization time %v",
			gap.Duration(), l.TxTime(1500).Duration())
	}
}

func TestLinkDropTail(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 10 * Mbps, Delay: sim.Millisecond, QueueLimit: 5})
	c := &collector{eng: eng}
	for i := int64(0); i < 20; i++ {
		sendOne(eng, []*Link{l}, c, 1500, i)
	}
	// Queue limit 5: one in service + 4 waiting admitted at t=0... the
	// serializing packet still occupies the queue slice, so exactly 5 admitted.
	if got := l.Dropped(); got != 15 {
		t.Errorf("Dropped = %d immediately after burst, want 15", got)
	}
	eng.Run(sim.Second)
	if len(c.pkts) != 5 {
		t.Errorf("delivered %d, want 5", len(c.pkts))
	}
	if l.Delivered() != 5 {
		t.Errorf("Delivered = %d, want 5", l.Delivered())
	}
}

func TestLinkThroughputMatchesRate(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 10 * Mbps, Delay: 0, QueueLimit: 10000})
	c := &collector{eng: eng}
	// Offer 2x the line rate for one second.
	for i := int64(0); i < 2000; i++ {
		i := i
		eng.At(sim.Time(i)*sim.Millisecond/2, func() {
			sendOne(eng, []*Link{l}, c, 1500, i)
		})
	}
	eng.Run(sim.Second)
	// 10 Mb/s for 1 s = 1.25 MB = ~833 packets of 1500 B.
	got := len(c.pkts)
	if got < 820 || got > 840 {
		t.Errorf("delivered %d packets in 1s at 10Mb/s, want ~833", got)
	}
	if u := l.Utilization(); u < 0.98 || u > 1.0 {
		t.Errorf("Utilization = %f, want ~1.0 under overload", u)
	}
}

func TestLinkECNMarking(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{
		Name: "l", Rate: 10 * Mbps, Delay: 0, QueueLimit: 100, MarkThreshold: 3,
	})
	c := &collector{eng: eng}
	for i := int64(0); i < 10; i++ {
		sendOne(eng, []*Link{l}, c, 1500, i)
	}
	eng.Run(sim.Second)
	marked := 0
	for _, p := range c.pkts {
		if p.CE {
			marked++
		}
	}
	// Packets 0,1,2 arrive to queue lengths 0,1,2 (unmarked); 3..9 see >= 3.
	if marked != 7 {
		t.Errorf("marked %d packets, want 7", marked)
	}
}

func TestLinkECNDoesNotMarkAcks(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{
		Name: "l", Rate: 10 * Mbps, Delay: 0, QueueLimit: 100, MarkThreshold: 1,
	})
	c := &collector{eng: eng}
	for i := int64(0); i < 5; i++ {
		p := &Packet{IsAck: true, Size: 40}
		p.SetRoute([]*Link{l}, c)
		p.Send()
	}
	eng.Run(sim.Second)
	for _, p := range c.pkts {
		if p.CE {
			t.Fatal("ACK packet was ECN-marked")
		}
	}
}

func TestLinkRandomLoss(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{
		Name: "l", Rate: Gbps, Delay: 0, QueueLimit: 1 << 20, LossProb: 0.3,
	})
	c := &collector{eng: eng}
	const n = 5000
	for i := int64(0); i < n; i++ {
		sendOne(eng, []*Link{l}, c, 100, i)
	}
	eng.Drain()
	lost := int(l.RandDropped())
	if lost < n*25/100 || lost > n*35/100 {
		t.Errorf("random loss dropped %d of %d, want ~30%%", lost, n)
	}
	if len(c.pkts)+lost != n {
		t.Errorf("delivered(%d) + lost(%d) != offered(%d)", len(c.pkts), lost, n)
	}
}

func TestLinkPriceAccumulation(t *testing.T) {
	eng := sim.NewEngine(1)
	l1 := NewLink(eng, LinkConfig{Name: "sw1", Rate: Gbps, Delay: 0, PriceRho: 0.5})
	l2 := NewLink(eng, LinkConfig{Name: "sw2", Rate: Gbps, Delay: 0, PriceRho: 0.25, PriceGamma: 1, PriceQTarget: 0})
	c := &collector{eng: eng}
	sendOne(eng, []*Link{l1, l2}, c, 1500, 0)
	eng.Drain()
	if len(c.pkts) != 1 {
		t.Fatal("packet not delivered")
	}
	// l1 contributes rho=0.5; l2 contributes rho=0.25 (queue empty on arrival).
	if got := c.pkts[0].Price; got != 0.75 {
		t.Errorf("accumulated price = %v, want 0.75", got)
	}
}

func TestMultiHopRoute(t *testing.T) {
	eng := sim.NewEngine(1)
	var links []*Link
	for i := 0; i < 4; i++ {
		links = append(links, NewLink(eng, LinkConfig{
			Name: "hop", Rate: 100 * Mbps, Delay: 5 * sim.Millisecond,
		}))
	}
	c := &collector{eng: eng}
	sendOne(eng, links, c, 1500, 7)
	eng.Drain()
	if len(c.pkts) != 1 {
		t.Fatal("packet lost on multi-hop route")
	}
	want := 4 * (5*sim.Millisecond + links[0].TxTime(1500))
	if c.at[0] != want {
		t.Errorf("delivered at %v, want %v", c.at[0].Duration(), want.Duration())
	}
}

func TestEmptyRouteLoopback(t *testing.T) {
	eng := sim.NewEngine(1)
	c := &collector{eng: eng}
	sendOne(eng, nil, c, 100, 3)
	if len(c.pkts) != 1 || c.pkts[0].Seq != 3 {
		t.Fatal("loopback delivery failed")
	}
}

func TestPathBaseRTT(t *testing.T) {
	eng := sim.NewEngine(1)
	fwd := NewLink(eng, LinkConfig{Name: "f", Rate: 100 * Mbps, Delay: 10 * sim.Millisecond})
	rev := NewLink(eng, LinkConfig{Name: "r", Rate: 100 * Mbps, Delay: 10 * sim.Millisecond})
	p := &Path{Forward: []*Link{fwd}, Reverse: []*Link{rev}}
	want := 20*sim.Millisecond + fwd.TxTime(1500) + rev.TxTime(40)
	if got := p.BaseRTT(1500, 40); got != want {
		t.Errorf("BaseRTT = %v, want %v", got.Duration(), want.Duration())
	}
	if p.MinRate() != 100*Mbps {
		t.Errorf("MinRate = %d, want 100Mbps", p.MinRate())
	}
}

// Property: conservation — every offered packet is delivered or counted as
// dropped, for any queue limit and offered count.
func TestLinkConservationProperty(t *testing.T) {
	f := func(limit uint8, count uint8) bool {
		eng := sim.NewEngine(3)
		l := NewLink(eng, LinkConfig{
			Name: "l", Rate: 10 * Mbps, Delay: sim.Millisecond,
			QueueLimit: int(limit%32) + 1,
		})
		c := &collector{eng: eng}
		n := int(count)
		for i := 0; i < n; i++ {
			sendOne(eng, []*Link{l}, c, 1500, int64(i))
		}
		eng.Drain()
		return len(c.pkts)+int(l.Dropped()) == n && int(l.Delivered()) == len(c.pkts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: delivered bytes never exceed rate * elapsed time.
func TestLinkRateNeverExceededProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.NewEngine(9)
		l := NewLink(eng, LinkConfig{Name: "l", Rate: 10 * Mbps, Delay: 0, QueueLimit: 1 << 16})
		c := &collector{eng: eng}
		for i, s := range sizes {
			size := int(s%1460) + 40
			sendOne(eng, []*Link{l}, c, size, int64(i))
		}
		horizon := 100 * sim.Millisecond
		eng.Run(horizon)
		maxBytes := uint64(10*Mbps) * uint64(horizon) / (8 * uint64(sim.Second))
		return l.BytesDelivered() <= maxBytes+1500 // one in-flight packet of slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
