// Package netem provides the packet-level network elements of the simulator:
// packets, links with finite-rate serialization and DropTail/ECN queues, and
// source-routed forwarding between them.
package netem

import (
	"sync"

	"mptcpsim/internal/sim"
)

// Endpoint consumes packets at the end of a route. Transport receivers and
// senders (for ACKs) implement it.
type Endpoint interface {
	Receive(p *Packet)
}

// Packet is a simulated network packet. Sequence and acknowledgement numbers
// are in MSS units (one data packet carries one segment); Size is the wire
// size in bytes and is what links serialize.
type Packet struct {
	// Flow identifies the transport flow; Subflow the MPTCP subflow index
	// within it. Both are carried for tracing and demultiplexing.
	Flow    uint64
	Subflow int

	Seq   int64 // data: segment sequence number
	Size  int   // wire size in bytes
	IsAck bool
	Ack   int64 // ack: cumulative acknowledgement (next expected Seq)

	// SackSeq, on ACKs, is the sequence number of the data segment whose
	// arrival generated this ACK — per-segment selective acknowledgement,
	// the idealized equivalent of the SACK option.
	SackSeq int64

	// CE is the ECN Congestion Experienced codepoint, set by marking queues
	// on data packets. ECE echoes it back on ACKs (for DCTCP).
	CE  bool
	ECE bool

	// SentAt is the simulated send time of a data packet. EchoedAt carries
	// it back on the corresponding ACK, giving the sender an exact RTT
	// sample (the TCP timestamp option, idealized).
	SentAt   sim.Time
	EchoedAt sim.Time

	// Price accumulates per-link energy prices on data packets (Eq. 6-9 of
	// the paper, carried as in-band telemetry). EchoPrice returns it on ACKs.
	Price     float64
	EchoPrice float64

	route []*Link
	hop   int
	dst   Endpoint
	fwdFn func()
}

var pktPool = sync.Pool{New: func() any { return &Packet{} }}

// NewPacket returns a zeroed packet, recycled from the pool when possible.
// Hot paths (transports, traffic generators) pair it with Release; plain
// &Packet{} literals remain fine for everything else.
func NewPacket() *Packet {
	p := pktPool.Get().(*Packet)
	fn := p.fwdFn // survives reuse; it is bound to this same pointer
	*p = Packet{}
	p.fwdFn = fn
	return p
}

// Release returns the packet to the pool. Only the final consumer — the
// endpoint that fully processed it, or the link that dropped it — may call
// it, and the packet must not be touched afterwards.
func (p *Packet) Release() {
	pktPool.Put(p)
}

// SetRoute assigns the chain of links the packet will traverse and the
// endpoint that consumes it after the last link.
func (p *Packet) SetRoute(links []*Link, dst Endpoint) {
	p.route = links
	p.hop = 0
	p.dst = dst
}

// Send injects the packet into the first link of its route, or delivers it
// directly when the route is empty (loopback).
func (p *Packet) Send() {
	p.forward()
}

// fwd returns a cached closure over forward, so scheduling a hop does not
// allocate.
func (p *Packet) fwd() func() {
	if p.fwdFn == nil {
		p.fwdFn = p.forward
	}
	return p.fwdFn
}

func (p *Packet) forward() {
	if p.hop >= len(p.route) {
		p.dst.Receive(p)
		return
	}
	l := p.route[p.hop]
	p.hop++
	l.Enqueue(p)
}
