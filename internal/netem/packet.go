// Package netem provides the packet-level network elements of the simulator:
// packets, links with finite-rate serialization and DropTail/ECN queues, and
// source-routed forwarding between them.
package netem

import "mptcpsim/internal/sim"

// Endpoint consumes packets at the end of a route. Transport receivers and
// senders (for ACKs) implement it.
type Endpoint interface {
	Receive(p *Packet)
}

// Packet is a simulated network packet. Sequence and acknowledgement numbers
// are in MSS units (one data packet carries one segment); Size is the wire
// size in bytes and is what links serialize.
type Packet struct {
	// Flow identifies the transport flow; Subflow the MPTCP subflow index
	// within it. Both are carried for tracing and demultiplexing.
	Flow    uint64
	Subflow int

	Seq   int64 // data: segment sequence number
	Size  int   // wire size in bytes
	IsAck bool
	Ack   int64 // ack: cumulative acknowledgement (next expected Seq)

	// SackSeq, on ACKs, is the sequence number of the data segment whose
	// arrival generated this ACK — per-segment selective acknowledgement,
	// the idealized equivalent of the SACK option.
	SackSeq int64

	// CE is the ECN Congestion Experienced codepoint, set by marking queues
	// on data packets. ECE echoes it back on ACKs (for DCTCP).
	CE  bool
	ECE bool

	// SentAt is the simulated send time of a data packet. EchoedAt carries
	// it back on the corresponding ACK, giving the sender an exact RTT
	// sample (the TCP timestamp option, idealized).
	SentAt   sim.Time
	EchoedAt sim.Time

	// Price accumulates per-link energy prices on data packets (Eq. 6-9 of
	// the paper, carried as in-band telemetry). EchoPrice returns it on ACKs.
	Price     float64
	EchoPrice float64

	route []*Link
	hop   int
	dst   Endpoint
	fwdFn func()

	pool   *Pool
	gen    uint64
	pooled bool
}

// poolMaxFree bounds each free list; beyond it released packets fall back to
// the garbage collector, so a transient burst cannot pin memory forever.
const poolMaxFree = 4096

// Pool is a generation-counted packet free list, the packet-side twin of the
// engine's event recycling: Release bumps the packet's generation and pushes
// it on the list, Get pops and re-zeroes it. A pool belongs to one simulation
// domain (a Path, a traffic generator) and therefore one engine, so unlike
// the sync.Pool it replaces it needs no synchronization and recycles across
// the whole run instead of per-GC-cycle. The zero value is ready to use.
type Pool struct {
	free []*Packet
}

// Get returns a zeroed packet, recycled from the free list when possible.
// Get on a nil pool degrades to a plain allocation, so consumers can pass
// through the pool of whatever packet they are answering without caring
// whether it was pooled at all.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	n := len(pl.free)
	if n == 0 {
		return &Packet{pool: pl}
	}
	p := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	// The forward closure is bound to this same pointer and survives reuse;
	// the generation counter survives so stale holders stay detectable.
	fn, gen := p.fwdFn, p.gen
	*p = Packet{}
	p.fwdFn, p.pool, p.gen = fn, pl, gen
	return p
}

// FreeLen reports the packets currently parked on the free list.
func (pl *Pool) FreeLen() int { return len(pl.free) }

// NewPacket returns a freshly allocated, unpooled packet. Hot paths allocate
// from a Pool instead; plain packets remain fine for tests and one-shot use,
// and Release on them is a no-op.
func NewPacket() *Packet {
	return &Packet{}
}

// Release returns the packet to its pool. Only the final consumer — the
// endpoint that fully processed it, or the link that dropped it — may call
// it, and the packet must not be touched afterwards: the generation bump
// makes the retired incarnation detectable, and a double release panics.
func (p *Packet) Release() {
	if p.pool == nil {
		return
	}
	if p.pooled {
		panic("netem: packet released twice")
	}
	p.pooled = true
	p.gen++
	if len(p.pool.free) < poolMaxFree {
		p.pool.free = append(p.pool.free, p)
	}
}

// Pool returns the pool the packet was allocated from (nil for plain
// packets). Endpoints that emit a reply use it so the reply recycles in the
// same domain as the packet that provoked it.
func (p *Packet) Pool() *Pool { return p.pool }

// Gen returns the packet's recycle generation: a holder that recorded it at
// allocation can detect that the packet has since been released and reused.
func (p *Packet) Gen() uint64 { return p.gen }

// SetRoute assigns the chain of links the packet will traverse and the
// endpoint that consumes it after the last link.
func (p *Packet) SetRoute(links []*Link, dst Endpoint) {
	p.route = links
	p.hop = 0
	p.dst = dst
}

// Send injects the packet into the first link of its route, or delivers it
// directly when the route is empty (loopback).
func (p *Packet) Send() {
	if p.pooled {
		panic("netem: packet used after release")
	}
	p.forward()
}

// fwd returns a cached closure over forward, so scheduling a hop does not
// allocate.
func (p *Packet) fwd() func() {
	if p.fwdFn == nil {
		p.fwdFn = p.forward
	}
	return p.fwdFn
}

func (p *Packet) forward() {
	if p.hop >= len(p.route) {
		p.dst.Receive(p)
		return
	}
	l := p.route[p.hop]
	p.hop++
	l.Enqueue(p)
}
