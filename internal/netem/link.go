package netem

import (
	"fmt"

	"mptcpsim/internal/sim"
)

// Bandwidth constants in bits per second.
const (
	Kbps int64 = 1000
	Mbps       = 1000 * Kbps
	Gbps       = 1000 * Mbps
)

// DefaultQueueLimit is the DropTail queue capacity used when a LinkConfig
// leaves QueueLimit zero. It matches common simulator defaults (htsim, ns-2).
const DefaultQueueLimit = 100

// LinkConfig describes one unidirectional link.
type LinkConfig struct {
	Name  string
	Rate  int64    // line rate, bits per second
	Delay sim.Time // one-way propagation delay

	// QueueLimit is the DropTail capacity in packets (DefaultQueueLimit when 0).
	QueueLimit int

	// MarkThreshold, when positive, sets the ECN CE codepoint on packets
	// that arrive to a queue of at least this many packets (DCTCP-style
	// step marking).
	MarkThreshold int

	// LossProb drops arriving packets at random with this probability,
	// modelling a lossy (e.g. wireless) medium. Zero disables it.
	LossProb float64

	// FlushOnDown controls what happens to queued packets when the link is
	// taken down (SetDown): false lets the queue drain onto the wire (a
	// scheduled outage that stops admitting new traffic), true discards the
	// queue immediately (a cut cable / radio loss).
	FlushOnDown bool

	// PriceRho and PriceGamma configure the per-link energy price that data
	// packets accumulate in transit: rho + gamma*max(0, qlen-PriceQTarget).
	// The paper's U_ep (Eq. 6) charges this only on switch-to-switch links,
	// so topology builders set it there and leave it zero elsewhere.
	PriceRho     float64
	PriceGamma   float64
	PriceQTarget int
}

// Link is a unidirectional link: a DropTail FIFO drained at line rate, with
// each departing packet delivered to its next hop after the propagation
// delay. Propagation overlaps the serialization of subsequent packets.
type Link struct {
	eng *sim.Engine
	cfg LinkConfig

	queue pktRing
	busy  bool
	down  bool

	txDoneFn func() // cached method value for the hot path

	// Counters, exported via methods.
	arrived     uint64
	delivered   uint64
	dropped     uint64
	randDropped uint64
	outageDrops uint64
	bytesOut    uint64
	busyTime    sim.Time
	lastTxStart sim.Time
}

// NewLink creates a link driven by eng.
func NewLink(eng *sim.Engine, cfg LinkConfig) *Link {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("netem: link %q has non-positive rate %d", cfg.Name, cfg.Rate))
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	l := &Link{eng: eng, cfg: cfg}
	l.txDoneFn = l.txDone
	return l
}

// Name returns the configured link name.
func (l *Link) Name() string { return l.cfg.Name }

// Rate returns the line rate in bits per second.
func (l *Link) Rate() int64 { return l.cfg.Rate }

// Delay returns the one-way propagation delay.
func (l *Link) Delay() sim.Time { return l.cfg.Delay }

// QueueLen reports the number of packets currently queued or in
// serialization.
func (l *Link) QueueLen() int { return l.queue.len() }

// QueueLimit reports the DropTail capacity in packets.
func (l *Link) QueueLimit() int { return l.cfg.QueueLimit }

// Arrived reports packets presented to the link via Enqueue, whatever their
// fate. At any instant Arrived = Delivered + Dropped + RandDropped +
// OutageDropped + QueueLen — the conservation identity internal/check
// asserts.
func (l *Link) Arrived() uint64 { return l.arrived }

// Delivered reports packets fully forwarded to their next hop.
func (l *Link) Delivered() uint64 { return l.delivered }

// Dropped reports packets lost to queue overflow.
func (l *Link) Dropped() uint64 { return l.dropped }

// RandDropped reports packets lost to the random-loss model.
func (l *Link) RandDropped() uint64 { return l.randDropped }

// OutageDropped reports packets lost to link-down periods: arrivals while
// down, plus flushed queue contents when FlushOnDown is set.
func (l *Link) OutageDropped() uint64 { return l.outageDrops }

// LossProb returns the current random-loss probability.
func (l *Link) LossProb() float64 { return l.cfg.LossProb }

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// SetDown takes the link down: arriving packets are dropped (counted in
// OutageDropped) until SetUp. Already-queued packets drain onto the wire
// unless the link was configured with FlushOnDown, in which case they are
// discarded immediately (the packet mid-serialization is discarded when its
// serialization completes — it never reaches the far end).
func (l *Link) SetDown() {
	if l.down {
		return
	}
	l.down = true
	if l.cfg.FlushOnDown {
		keep := 0
		if l.busy {
			keep = 1 // head is mid-serialization; txDone discards it
		}
		for l.queue.len() > keep {
			l.outageDrops++
			l.queue.popBack().Release()
		}
	}
}

// SetUp brings the link back up and resumes serving whatever survived the
// outage.
func (l *Link) SetUp() {
	if !l.down {
		return
	}
	l.down = false
	if !l.busy && l.queue.len() > 0 {
		l.startTx()
	}
}

// SetRate changes the line rate. Packets already in serialization finish at
// the old rate; subsequent packets serialize at the new one.
func (l *Link) SetRate(rate int64) {
	if rate <= 0 {
		panic(fmt.Sprintf("netem: link %q rate set to non-positive %d", l.cfg.Name, rate))
	}
	l.cfg.Rate = rate
}

// SetDelay changes the one-way propagation delay for packets that finish
// serialization after the call.
func (l *Link) SetDelay(d sim.Time) {
	if d < 0 {
		d = 0
	}
	l.cfg.Delay = d
}

// SetLossProb changes the random-loss probability for subsequent arrivals.
func (l *Link) SetLossProb(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	l.cfg.LossProb = p
}

// BytesDelivered reports the payload bytes fully forwarded.
func (l *Link) BytesDelivered() uint64 { return l.bytesOut }

// Utilization reports the fraction of the interval [0, now] the link spent
// serializing packets.
func (l *Link) Utilization() float64 {
	now := l.eng.Now()
	if now == 0 {
		return 0
	}
	busy := l.busyTime
	if l.busy {
		busy += now - l.lastTxStart
	}
	return float64(busy) / float64(now)
}

// TxTime returns the serialization delay of a packet of size bytes.
func (l *Link) TxTime(size int) sim.Time {
	return sim.Time(int64(size) * 8 * int64(sim.Second) / l.cfg.Rate)
}

// SetPrice enables the energy price on an existing link (topology builders
// call it for switch-to-switch links, the set Eq. 6 charges).
func (l *Link) SetPrice(rho, gamma float64, qTarget int) {
	l.cfg.PriceRho = rho
	l.cfg.PriceGamma = gamma
	l.cfg.PriceQTarget = qTarget
}

// Price returns the link's current energy price contribution.
func (l *Link) Price() float64 {
	if l.cfg.PriceRho == 0 && l.cfg.PriceGamma == 0 {
		return 0
	}
	excess := l.queue.len() - l.cfg.PriceQTarget
	if excess < 0 {
		excess = 0
	}
	return l.cfg.PriceRho + l.cfg.PriceGamma*float64(excess)
}

// Enqueue admits a packet to the link, dropping it when the queue is full or
// the random-loss model fires. Admitted packets may be ECN-marked and
// accumulate the link's energy price.
func (l *Link) Enqueue(p *Packet) {
	l.arrived++
	if l.down {
		l.outageDrops++
		p.Release()
		return
	}
	if l.cfg.LossProb > 0 && l.eng.Rand().Float64() < l.cfg.LossProb {
		l.randDropped++
		p.Release()
		return
	}
	if l.queue.len() >= l.cfg.QueueLimit {
		l.dropped++
		p.Release()
		return
	}
	if l.cfg.MarkThreshold > 0 && l.queue.len() >= l.cfg.MarkThreshold && !p.IsAck {
		p.CE = true
	}
	if !p.IsAck {
		p.Price += l.Price()
	}
	l.queue.push(p, l.cfg.QueueLimit)
	if !l.busy {
		l.startTx()
	}
}

func (l *Link) startTx() {
	l.busy = true
	l.lastTxStart = l.eng.Now()
	l.eng.ScheduleAfter(l.TxTime(l.queue.front().Size), l.txDoneFn)
}

// txDone completes serialization of the head-of-line packet.
func (l *Link) txDone() {
	p := l.queue.pop()
	l.busyTime += l.eng.Now() - l.lastTxStart
	if l.down && l.cfg.FlushOnDown {
		// The link was cut mid-serialization: the packet never made it.
		l.outageDrops++
		p.Release()
	} else {
		l.delivered++
		l.bytesOut += uint64(p.Size)
		l.eng.ScheduleAfter(l.cfg.Delay, p.fwd())
	}
	if l.queue.len() > 0 {
		l.startTx()
	} else {
		l.busy = false
	}
}
