package netem

import (
	"testing"

	"mptcpsim/internal/sim"
)

func TestLinkDownDropsArrivalsQueueDrains(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 10 * Mbps, Delay: sim.Millisecond})
	c := &collector{eng: eng}
	for i := int64(0); i < 5; i++ {
		sendOne(eng, []*Link{l}, c, 1500, i)
	}
	l.SetDown()
	if !l.Down() {
		t.Fatal("Down() false after SetDown")
	}
	// Arrivals while down are dropped and counted.
	sendOne(eng, []*Link{l}, c, 1500, 99)
	eng.Run(sim.Second)
	if len(c.pkts) != 5 {
		t.Fatalf("delivered %d, want 5 (queue drains, arrival dropped)", len(c.pkts))
	}
	if got := l.OutageDropped(); got != 1 {
		t.Errorf("OutageDropped = %d, want 1", got)
	}
}

func TestLinkDownFlushDiscardsQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 10 * Mbps, Delay: sim.Millisecond, FlushOnDown: true})
	c := &collector{eng: eng}
	for i := int64(0); i < 5; i++ {
		sendOne(eng, []*Link{l}, c, 1500, i)
	}
	l.SetDown()
	eng.Run(sim.Second)
	// Everything dies: 4 flushed immediately, the in-serialization head
	// discarded when its transmission completes.
	if len(c.pkts) != 0 {
		t.Fatalf("delivered %d through a flushed dead link, want 0", len(c.pkts))
	}
	if got := l.OutageDropped(); got != 5 {
		t.Errorf("OutageDropped = %d, want all 5", got)
	}
	if l.QueueLen() != 0 {
		t.Errorf("QueueLen = %d after flush, want 0", l.QueueLen())
	}
}

func TestLinkSetUpResumesService(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 10 * Mbps, Delay: sim.Millisecond})
	c := &collector{eng: eng}
	eng.Schedule(0, func() { l.SetDown() })
	eng.Schedule(sim.Millisecond, func() { sendOne(eng, []*Link{l}, c, 1500, 0) }) // dropped
	eng.Schedule(10*sim.Millisecond, func() { l.SetUp() })
	eng.Schedule(11*sim.Millisecond, func() { sendOne(eng, []*Link{l}, c, 1500, 1) })
	eng.Run(sim.Second)
	if len(c.pkts) != 1 || c.pkts[0].Seq != 1 {
		t.Fatalf("delivered %v, want exactly the post-recovery packet", c.pkts)
	}
	if got := l.OutageDropped(); got != 1 {
		t.Errorf("OutageDropped = %d, want 1", got)
	}
}

func TestLinkSetRateChangesServiceTime(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 10 * Mbps, Delay: 0})
	c := &collector{eng: eng}
	slow := l.TxTime(1500)
	l.SetRate(100 * Mbps)
	if l.Rate() != 100*Mbps {
		t.Fatalf("Rate = %d after SetRate", l.Rate())
	}
	fast := l.TxTime(1500)
	if fast >= slow {
		t.Fatalf("TxTime did not shrink after rate increase: %v >= %v", fast, slow)
	}
	sendOne(eng, []*Link{l}, c, 1500, 0)
	eng.Run(sim.Second)
	if len(c.at) != 1 || c.at[0] != fast {
		t.Errorf("delivered at %v, want %v (new rate)", c.at, fast)
	}
}

func TestLinkSetDelayAndLossProbClamp(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, LinkConfig{Name: "l", Rate: 10 * Mbps, Delay: sim.Millisecond})
	l.SetDelay(-sim.Second)
	if l.Delay() != 0 {
		t.Errorf("negative delay not clamped to 0: %v", l.Delay())
	}
	l.SetDelay(5 * sim.Millisecond)
	if l.Delay() != 5*sim.Millisecond {
		t.Errorf("Delay = %v, want 5ms", l.Delay().Duration())
	}
	l.SetLossProb(2)
	if l.LossProb() != 1 {
		t.Errorf("LossProb = %v, want clamp at 1", l.LossProb())
	}
	l.SetLossProb(-0.5)
	if l.LossProb() != 0 {
		t.Errorf("LossProb = %v, want clamp at 0", l.LossProb())
	}
}
