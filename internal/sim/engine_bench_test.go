package sim

import "testing"

// The Engine benchmarks are the perf contract of the hot path: schedule and
// fire must stay allocation-free in steady state (b.ReportAllocs enforces it
// in review), and events/sec across these shapes is the number the BENCH
// JSON trajectory tracks. CI runs them with -bench=Engine.

// BenchmarkEngineScheduleFire is the minimal self-rescheduling tick: heap
// stays near size 1, so this isolates per-event fixed cost (push, pop,
// recycle, dispatch).
func BenchmarkEngineScheduleFire(b *testing.B) {
	eng := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		eng.ScheduleAfter(Microsecond, tick)
	}
	eng.ScheduleAfter(Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run(Time(b.N) * Microsecond)
	if n == 0 {
		b.Fatal("no events ran")
	}
	b.ReportMetric(float64(n)/float64(b.N), "events/op")
}

// BenchmarkEngineDeepQueue keeps 1024 self-rescheduling events in flight —
// the realistic shape for a figure run (hundreds of flows, each with link,
// meter and transport events pending) — so sift depth dominates.
func BenchmarkEngineDeepQueue(b *testing.B) {
	const depth = 1024
	eng := NewEngine(1)
	fired := 0
	for i := 0; i < depth; i++ {
		i := i
		var tick func()
		tick = func() {
			fired++
			// Staggered periods keep the heap genuinely unsorted.
			eng.ScheduleAfter(Time(1+i%7)*Microsecond, tick)
		}
		eng.ScheduleAfter(Time(1+i%7)*Microsecond, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for fired < b.N {
		eng.Run(eng.Now() + Millisecond)
	}
	b.StopTimer()
	if fired == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkEngineTimerChurn is the rearm-heavy pattern transports generate:
// schedule far ahead, cancel, reschedule. Cancelled timers must leave the
// queue rather than accumulate.
func BenchmarkEngineTimerChurn(b *testing.B) {
	eng := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	var tm Timer
	for i := 0; i < b.N; i++ {
		tm.Stop()
		tm = eng.After(Second, fn)
		if i%64 == 0 {
			eng.Run(eng.Now() + Microsecond)
		}
	}
}

// BenchmarkEngineTimerFire schedules tracked timers that actually fire, so
// the timer-handle path (not just Schedule) is covered by the recycle pool.
func BenchmarkEngineTimerFire(b *testing.B) {
	eng := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(Microsecond, fn)
		if i%64 == 63 {
			eng.Run(eng.Now() + 2*Microsecond)
		}
	}
	b.StopTimer()
	eng.Drain()
}
