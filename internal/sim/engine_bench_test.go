package sim

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	eng := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		eng.ScheduleAfter(Microsecond, tick)
	}
	eng.ScheduleAfter(Microsecond, tick)
	b.ResetTimer()
	eng.Run(Time(b.N) * Microsecond)
	if n == 0 {
		b.Fatal("no events ran")
	}
	b.ReportMetric(float64(n)/float64(b.N), "events/op")
}

func BenchmarkTimerChurn(b *testing.B) {
	// The rearm-heavy pattern transports generate: schedule far ahead,
	// cancel, reschedule.
	eng := NewEngine(1)
	b.ResetTimer()
	var tm *Timer
	for i := 0; i < b.N; i++ {
		if tm != nil {
			tm.Stop()
		}
		tm = eng.After(Second, func() {})
		if i%64 == 0 {
			eng.Run(eng.Now() + Microsecond)
		}
	}
}
