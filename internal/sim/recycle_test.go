package sim

import "testing"

func TestScheduleRunsLikeAt(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(2*Millisecond, func() { order = append(order, 2) })
	e.ScheduleAfter(Millisecond, func() { order = append(order, 1) })
	e.Run(Second)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestRecyclingPreservesOrderingUnderChurn(t *testing.T) {
	// Heavy schedule/fire churn exercises the free list; ordering and
	// counts must be unaffected.
	e := NewEngine(1)
	fired := 0
	var last Time
	var spawn func()
	spawn = func() {
		fired++
		if now := e.Now(); now < last {
			t.Fatalf("time went backwards: %v after %v", now, last)
		} else {
			last = now
		}
		if fired < 5000 {
			e.ScheduleAfter(Time(fired%7)*Microsecond, spawn)
		}
	}
	e.Schedule(0, spawn)
	e.Drain()
	if fired != 5000 {
		t.Fatalf("fired %d events, want 5000", fired)
	}
}

func TestTrackedTimersSurviveRecycling(t *testing.T) {
	// A Timer handle must stay valid (and Stop must work) even while
	// untracked events churn through the free list.
	e := NewEngine(1)
	var fired bool
	tm := e.At(Millisecond, func() { fired = true })
	for i := 0; i < 100; i++ {
		e.Schedule(Time(i)*Microsecond, func() {})
	}
	e.Run(500 * Microsecond)
	if !tm.Stop() {
		t.Fatal("Stop on pending tracked timer failed")
	}
	e.Run(Second)
	if fired {
		t.Fatal("stopped tracked timer fired after churn")
	}
}

func TestCancelledEventIsRecycledNotRun(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	tm := e.At(Millisecond, func() { ran++ })
	tm.Stop()
	// Fill and drain the queue a few times.
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			e.ScheduleAfter(Time(i)*Microsecond, func() { ran++ })
		}
		e.Run(e.Now() + Millisecond)
	}
	if ran != 150 {
		t.Fatalf("ran %d events, want exactly 150 (cancelled one excluded)", ran)
	}
}
