// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock from event to event. Events scheduled
// for the same instant run in the order they were scheduled, which — together
// with a seeded random source — makes every run fully reproducible.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is a simulated instant, measured in nanoseconds from the start of the
// run. It is deliberately distinct from time.Time: simulated time has no
// calendar and starts at zero.
type Time int64

// Common durations converted to simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// FromDuration converts a wall-clock duration to simulated time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts simulated time to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the instant as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	seq uint64
	fn  func()

	index    int // heap index; -1 once popped or cancelled
	canceled bool
	tracked  bool // referenced by a Timer; never recycled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero value is not usable; timers come from Engine.At/After.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.index == -1 {
		return false
	}
	t.ev.canceled = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && t.ev.index != -1
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; a simulation run owns exactly one engine.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	free []*event // recycled untracked events

	processed uint64
	stopped   bool
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have run so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at instant t. Scheduling in the past runs the event
// at the current time (it cannot rewind the clock). It returns a cancellable
// timer handle.
func (e *Engine) At(t Time, fn func()) *Timer {
	ev := e.push(t, fn)
	ev.tracked = true
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Schedule is the hot-path variant of At: it returns no timer handle and
// lets the engine recycle the event after it fires. Use it when the event
// never needs cancelling.
func (e *Engine) Schedule(t Time, fn func()) {
	e.push(t, fn)
}

// ScheduleAfter is Schedule relative to the current time.
func (e *Engine) ScheduleAfter(d Time, fn func()) {
	e.push(e.now+d, fn)
}

func (e *Engine) push(t Time, fn func()) *event {
	if t < e.now {
		t = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		*ev = event{at: t, seq: e.seq, fn: fn}
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Stop makes Run return after the event currently executing completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue empties or the
// clock would pass until. It returns the time at which it stopped: until if
// the horizon was reached, otherwise the time of the last event.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.events)
		if next.canceled {
			e.recycle(next)
			continue
		}
		e.now = next.at
		e.processed++
		fn := next.fn
		e.recycle(next)
		fn()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

func (e *Engine) recycle(ev *event) {
	if ev.tracked {
		return
	}
	ev.fn = nil
	if len(e.free) < 1024 {
		e.free = append(e.free, ev)
	}
}

// Drain runs every remaining event regardless of time, leaving the clock
// at the last event processed (so the engine stays usable afterwards).
// Intended for tests.
func (e *Engine) Drain() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		heap.Pop(&e.events)
		if next.canceled {
			e.recycle(next)
			continue
		}
		e.now = next.at
		e.processed++
		fn := next.fn
		e.recycle(next)
		fn()
	}
}

// Pending reports how many events (including cancelled ones not yet popped)
// remain queued.
func (e *Engine) Pending() int { return len(e.events) }
