// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock from event to event. Events scheduled
// for the same instant run in the order they were scheduled, which — together
// with a seeded random source — makes every run fully reproducible.
package sim

import (
	"math/rand"
	"time"
)

// Time is a simulated instant, measured in nanoseconds from the start of the
// run. It is deliberately distinct from time.Time: simulated time has no
// calendar and starts at zero.
type Time int64

// Common durations converted to simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// FromDuration converts a wall-clock duration to simulated time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts simulated time to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the instant as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a queue entry. Every event — timer-tracked or not — returns to
// the engine's free list once it fires or is stopped; gen is bumped on each
// recycle so a stale Timer handle can tell its event has moved on.
type event struct {
	at  Time
	seq uint64
	fn  func()

	index int    // heap index; -1 once popped or removed
	gen   uint64 // incremented on recycle; Timer handles compare against it
}

// less orders events by time, then by scheduling order (FIFO at equal
// instants).
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero value is an inert timer: Stop and Active are no-ops on it.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Stop cancels the timer, removing its event from the queue immediately. It
// reports whether the event had not yet fired. Stopping an already-fired or
// already-stopped timer is a no-op: the generation counter on the recycled
// event makes a stale handle harmless even after the event is reused.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.index < 0 {
		return false
	}
	t.eng.remove(t.ev)
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; a simulation run owns exactly one engine. Independent
// engines may run on separate goroutines (see internal/runner).
type Engine struct {
	now    Time
	events []*event // 4-ary min-heap ordered by (at, seq)
	seq    uint64
	rng    *rand.Rand

	free []*event // recycled events

	processed uint64
	stopped   bool

	maxProcessed uint64 // 0 = unlimited
	onBudget     func()
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have run so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at instant t. Scheduling in the past runs the event
// at the current time (it cannot rewind the clock). It returns a cancellable
// timer handle.
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.push(t, fn)
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Schedule is the no-handle variant of At, for events that never need
// cancelling.
func (e *Engine) Schedule(t Time, fn func()) {
	e.push(t, fn)
}

// ScheduleAfter is Schedule relative to the current time.
func (e *Engine) ScheduleAfter(d Time, fn func()) {
	e.push(e.now+d, fn)
}

func (e *Engine) push(t Time, fn func()) *event {
	if t < e.now {
		t = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = t, e.seq, fn
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn}
	}
	e.seq++
	ev.index = len(e.events)
	e.events = append(e.events, ev)
	e.siftUp(ev.index)
	return ev
}

// Stop makes Run return after the event currently executing completes.
func (e *Engine) Stop() { e.stopped = true }

// SetEventBudget arms a hard cap on processed events: once n events have
// run, the loop calls trip before firing event n+1 instead of processing it.
// Unlike a watchdog scheduled in simulated time, the in-loop check also
// catches event storms that never advance the clock (events rescheduling
// themselves at the same instant would starve any sim-time watchdog).
// trip may panic to abort the run (internal/supervise does), or merely
// record the fact — if it returns, the loop stops as if Stop were called.
// n = 0 removes the budget. The budget counts lifetime processed events,
// not events since SetEventBudget.
func (e *Engine) SetEventBudget(n uint64, trip func()) {
	e.maxProcessed = n
	e.onBudget = trip
}

// Run executes events in timestamp order until the queue empties or the
// clock would pass until. It returns the time at which it stopped: until if
// the horizon was reached, otherwise the time of the last event.
func (e *Engine) Run(until Time) Time {
	e.loop(until, true)
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// Drain runs every remaining event regardless of time, leaving the clock
// at the last event processed (so the engine stays usable afterwards).
// Intended for tests.
func (e *Engine) Drain() {
	e.loop(0, false)
}

// loop is the shared pop/fire cycle behind Run and Drain. Stopped timers
// leave the queue at Stop time, so every popped event fires.
func (e *Engine) loop(until Time, bounded bool) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if bounded && next.at > until {
			e.now = until
			return
		}
		if e.maxProcessed != 0 && e.processed >= e.maxProcessed {
			if e.onBudget != nil {
				e.onBudget()
			}
			e.stopped = true
			return
		}
		e.popTop()
		e.now = next.at
		e.processed++
		fn := next.fn
		e.recycle(next)
		fn()
	}
}

func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	if len(e.free) < 1024 {
		e.free = append(e.free, ev)
	}
}

// Pending reports how many scheduled events remain queued. Stopped timers
// are removed from the queue immediately, so they are never counted.
func (e *Engine) Pending() int { return len(e.events) }

// --- 4-ary min-heap ---
//
// A 4-ary heap halves sift depth versus the binary container/heap and keeps
// parent/child hops within one cache line of *event pointers; inlining it
// also removes the interface boxing of heap.Push/Pop from the hot path.

// popTop removes the minimum event, leaving its index at -1.
func (e *Engine) popTop() {
	h := e.events
	n := len(h) - 1
	h[0].index = -1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		last.index = 0
		h[0] = last
		e.siftDown(0)
	}
}

// remove deletes an arbitrary queued event (Timer.Stop) and recycles it.
func (e *Engine) remove(ev *event) {
	i := ev.index
	h := e.events
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	ev.index = -1
	if i < n {
		last.index = i
		h[i] = last
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	e.recycle(ev)
}

func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = ev
	ev.index = i
}

// siftDown restores heap order below i and reports whether the event moved.
func (e *Engine) siftDown(i int) bool {
	h := e.events
	n := len(h)
	ev := h[i]
	start := i
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(h[j], h[m]) {
				m = j
			}
		}
		if !less(h[m], ev) {
			break
		}
		h[i] = h[m]
		h[i].index = i
		i = m
	}
	h[i] = ev
	ev.index = i
	return i != start
}
