// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock from event to event. Events scheduled
// for the same instant run in the order they were scheduled, which — together
// with a seeded random source — makes every run fully reproducible.
package sim

import (
	"math/rand"
	"time"
)

// Time is a simulated instant, measured in nanoseconds from the start of the
// run. It is deliberately distinct from time.Time: simulated time has no
// calendar and starts at zero.
type Time int64

// Common durations converted to simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// FromDuration converts a wall-clock duration to simulated time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts simulated time to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the instant as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Events live in a slab addressed by a small integer id; the priority queue
// orders value-typed, pointer-free keys. Splitting the two means the 4-ary
// sift loops move 24-byte values with no GC write barriers and compare keys
// without chasing an event pointer per probe — the pointer-heavy heap was
// the single largest line in the packet-path CPU profile.

// slabEvent is an event's slab slot. gen is bumped on each recycle so a
// stale Timer handle can tell its event has moved on; index is the event's
// current heap position (indexInNowQ while batched for same-instant
// dispatch), maintained only for timer-tracked events.
type slabEvent struct {
	fn    func()
	gen   uint64
	index int32
}

// index sentinels. Untracked events keep indexNone throughout; a tracked
// event's index is its heap position while queued.
const (
	indexNone   int32 = -1
	indexInNowQ int32 = -2
)

// heapNode is one priority-queue entry: the ordering key (at, seq), the
// owning slab id, and whether that slot's index must be maintained (only
// events with live Timer handles need it).
type heapNode struct {
	at      Time
	seq     uint64
	id      int32
	tracked bool
}

// nowEntry is one same-instant batch entry. The generation pins the slab
// incarnation: a stopped entry's slot is recycled immediately, so a
// mismatch marks the entry as a tombstone to skip.
type nowEntry struct {
	id  int32
	gen uint64
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero value is an inert timer: Stop and Active are no-ops on it.
type Timer struct {
	eng *Engine
	id  int32
	gen uint64
}

// Stop cancels the timer, removing its event from the queue immediately. It
// reports whether the event had not yet fired. Stopping an already-fired or
// already-stopped timer is a no-op: the generation counter on the recycled
// slab slot makes a stale handle harmless even after the slot is reused.
func (t Timer) Stop() bool {
	if t.eng == nil {
		return false
	}
	e := t.eng
	ev := &e.slab[t.id]
	if ev.gen != t.gen {
		return false
	}
	if ev.index == indexInNowQ {
		// Queued in the same-instant batch: recycling the slot bumps its
		// generation, turning the queued entry into a tombstone the
		// dispatch loop skips.
		e.nowLive--
		e.recycle(t.id)
		return true
	}
	e.removeAt(int(ev.index))
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.eng != nil && t.eng.slab[t.id].gen == t.gen
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; a simulation run owns exactly one engine. Independent
// engines may run on separate goroutines (see internal/runner).
type Engine struct {
	now Time
	seq uint64
	rng *rand.Rand

	slab []slabEvent // all live and free event slots
	free []int32     // recycled slab ids

	heap []heapNode // 4-ary min-heap of future events, ordered by (at, seq)

	// Same-instant batch: events scheduled at (or clamped to) the current
	// instant append here and dispatch FIFO, so bursts that reschedule at
	// t=now drain without ever touching the heap. Every heap event with
	// at == now predates the instant and therefore has a smaller seq than
	// any batch entry, so "heap first while its top is due, then the batch
	// cursor" preserves exact (at, seq) order.
	nowQ    []nowEntry
	nowHead int
	nowLive int // batch entries that are not tombstones (Pending)

	processed uint64
	stopped   bool

	maxProcessed uint64 // 0 = unlimited
	onBudget     func()
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have run so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at instant t. Scheduling in the past runs the event
// at the current time (it cannot rewind the clock). It returns a cancellable
// timer handle.
func (e *Engine) At(t Time, fn func()) Timer {
	id := e.push(t, fn, true)
	return Timer{eng: e, id: id, gen: e.slab[id].gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Schedule is the no-handle variant of At, for events that never need
// cancelling.
func (e *Engine) Schedule(t Time, fn func()) {
	e.push(t, fn, false)
}

// ScheduleAfter is Schedule relative to the current time.
func (e *Engine) ScheduleAfter(d Time, fn func()) {
	e.push(e.now+d, fn, false)
}

func (e *Engine) push(t Time, fn func(), tracked bool) int32 {
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slab = append(e.slab, slabEvent{index: indexNone})
		id = int32(len(e.slab) - 1)
	}
	ev := &e.slab[id]
	ev.fn = fn
	if t <= e.now {
		// Due now (or clamped from the past): join the same-instant batch.
		ev.index = indexInNowQ
		e.nowQ = append(e.nowQ, nowEntry{id: id, gen: ev.gen})
		e.nowLive++
	} else {
		i := len(e.heap)
		if tracked {
			ev.index = int32(i)
		} else {
			ev.index = indexNone
		}
		e.heap = append(e.heap, heapNode{at: t, seq: e.seq, id: id, tracked: tracked})
		e.siftUp(i)
	}
	e.seq++
	return id
}

// recycle retires a slab slot: the generation bump invalidates every
// outstanding Timer handle and nowQ entry for this incarnation.
func (e *Engine) recycle(id int32) {
	ev := &e.slab[id]
	ev.fn = nil
	ev.gen++
	ev.index = indexNone
	e.free = append(e.free, id)
}

// Stop makes Run return after the event currently executing completes.
func (e *Engine) Stop() { e.stopped = true }

// SetEventBudget arms a hard cap on processed events: once n events have
// run, the loop calls trip before firing event n+1 instead of processing it.
// Unlike a watchdog scheduled in simulated time, the in-loop check also
// catches event storms that never advance the clock (events rescheduling
// themselves at the same instant would starve any sim-time watchdog).
// trip may panic to abort the run (internal/supervise does), or merely
// record the fact — if it returns, the loop stops as if Stop were called.
// n = 0 removes the budget. The budget counts lifetime processed events,
// not events since SetEventBudget.
func (e *Engine) SetEventBudget(n uint64, trip func()) {
	e.maxProcessed = n
	e.onBudget = trip
}

// Run executes events in timestamp order until the queue empties or the
// clock would pass until. It returns the time at which it stopped: until if
// the horizon was reached, otherwise the time of the last event.
func (e *Engine) Run(until Time) Time {
	e.loop(until, true)
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// Drain runs every remaining event regardless of time, leaving the clock
// at the last event processed (so the engine stays usable afterwards).
// Intended for tests.
func (e *Engine) Drain() {
	e.loop(0, false)
}

// loop is the shared dispatch cycle behind Run and Drain. Stopped heap
// timers leave the queue at Stop time and stopped batch entries become
// tombstones, so every event that reaches the budget check fires.
func (e *Engine) loop(until Time, bounded bool) {
	e.stopped = false
	for !e.stopped {
		// Skip tombstoned batch entries; compact once the cursor drains.
		for e.nowHead < len(e.nowQ) {
			en := e.nowQ[e.nowHead]
			if e.slab[en.id].gen == en.gen {
				break
			}
			e.nowHead++
		}
		if e.nowHead == len(e.nowQ) && e.nowHead > 0 {
			e.nowQ = e.nowQ[:0]
			e.nowHead = 0
		}

		// Select the next event in (at, seq) order: the heap owns anything
		// due at the current instant that predates it (smaller seq), then
		// the batch drains FIFO, then the heap advances the clock.
		fromHeap := false
		switch {
		case len(e.heap) > 0 && e.heap[0].at <= e.now:
			fromHeap = true
		case e.nowHead < len(e.nowQ):
			if bounded && e.now > until {
				e.now = until
				return
			}
		case len(e.heap) > 0:
			if bounded && e.heap[0].at > until {
				e.now = until
				return
			}
			fromHeap = true
		default:
			return
		}

		if e.maxProcessed != 0 && e.processed >= e.maxProcessed {
			if e.onBudget != nil {
				e.onBudget()
			}
			e.stopped = true
			return
		}

		var id int32
		if fromHeap {
			top := e.heap[0]
			e.popTop()
			e.now = top.at
			id = top.id
		} else {
			id = e.nowQ[e.nowHead].id
			e.nowHead++
			e.nowLive--
		}
		fn := e.slab[id].fn
		e.recycle(id)
		e.processed++
		fn()
	}
}

// Pending reports how many scheduled events remain queued. Stopped timers
// leave the count immediately, so they are never included.
func (e *Engine) Pending() int { return len(e.heap) + e.nowLive }

// --- 4-ary min-heap ---
//
// A 4-ary heap halves sift depth versus the binary container/heap and keeps
// parent/child hops within two cache lines of value-typed nodes; the inline
// key comparisons avoid both interface boxing and per-probe pointer chasing,
// and moving pointer-free nodes emits no GC write barriers.

// popTop removes the minimum node.
func (e *Engine) popTop() {
	h := e.heap
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if n > 0 {
		h[0] = last
		if last.tracked {
			e.slab[last.id].index = 0
		}
		e.siftDown(0)
	}
}

// removeAt deletes the heap node at index i (Timer.Stop) and recycles its
// event.
func (e *Engine) removeAt(i int) {
	h := e.heap
	id := h[i].id
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if i < n {
		h[i] = last
		if last.tracked {
			e.slab[last.id].index = int32(i)
		}
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	e.recycle(id)
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	nd := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if h[p].at < nd.at || (h[p].at == nd.at && h[p].seq < nd.seq) {
			break
		}
		h[i] = h[p]
		if h[i].tracked {
			e.slab[h[i].id].index = int32(i)
		}
		i = p
	}
	h[i] = nd
	if nd.tracked {
		e.slab[nd.id].index = int32(i)
	}
}

// siftDown restores heap order below i and reports whether the node moved.
func (e *Engine) siftDown(i int) bool {
	h := e.heap
	n := len(h)
	nd := h[i]
	start := i
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].at < h[m].at || (h[j].at == h[m].at && h[j].seq < h[m].seq) {
				m = j
			}
		}
		if nd.at < h[m].at || (nd.at == h[m].at && nd.seq < h[m].seq) {
			break
		}
		h[i] = h[m]
		if h[i].tracked {
			e.slab[h[i].id].index = int32(i)
		}
		i = m
	}
	h[i] = nd
	if nd.tracked {
		e.slab[nd.id].index = int32(i)
	}
	return i != start
}
