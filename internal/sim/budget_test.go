package sim

import "testing"

// TestEventBudgetTrips verifies that the in-loop budget fires trip before
// processing event n+1 and stops the run.
func TestEventBudgetTrips(t *testing.T) {
	eng := NewEngine(1)
	var fired int
	for i := 0; i < 10; i++ {
		eng.Schedule(Time(i)*Millisecond, func() { fired++ })
	}
	tripped := false
	eng.SetEventBudget(4, func() { tripped = true })
	eng.Run(Second)
	if !tripped {
		t.Fatalf("budget of 4 with 10 queued events did not trip")
	}
	if fired != 4 {
		t.Fatalf("fired %d events, want exactly 4", fired)
	}
	if got := eng.Processed(); got != 4 {
		t.Fatalf("Processed() = %d, want 4", got)
	}
}

// TestEventBudgetExactlyAtHorizon pins the boundary semantics: a run whose
// queue holds exactly the budgeted number of events inside the horizon
// completes cleanly — the budget only trips when one more event would run.
func TestEventBudgetExactlyAtHorizon(t *testing.T) {
	eng := NewEngine(1)
	for i := 0; i < 5; i++ {
		eng.Schedule(Time(i)*Millisecond, func() {})
	}
	// A sixth event beyond the horizon must not trigger the budget either:
	// the horizon check runs first.
	eng.Schedule(2*Second, func() {})
	tripped := false
	eng.SetEventBudget(5, func() { tripped = true })
	eng.Run(Second)
	if tripped {
		t.Fatalf("budget tripped although exactly 5 events ran inside the horizon")
	}
	if got := eng.Processed(); got != 5 {
		t.Fatalf("Processed() = %d, want 5", got)
	}
}

// TestEventBudgetCatchesSameInstantStorm verifies the property that makes
// the in-loop check necessary: events that reschedule themselves at the
// current instant never advance the clock, so only the budget stops them.
func TestEventBudgetCatchesSameInstantStorm(t *testing.T) {
	eng := NewEngine(1)
	var storm func()
	storm = func() { eng.Schedule(eng.Now(), storm) }
	eng.Schedule(0, storm)
	tripped := false
	eng.SetEventBudget(1000, func() { tripped = true })
	eng.Run(Second)
	if !tripped {
		t.Fatalf("same-instant event storm did not trip the budget")
	}
	if got := eng.Processed(); got != 1000 {
		t.Fatalf("Processed() = %d, want 1000", got)
	}
}

// TestEventBudgetTripMayPanic verifies a panicking trip aborts the run and
// propagates to the caller (the supervisor's quarantine path).
func TestEventBudgetTripMayPanic(t *testing.T) {
	eng := NewEngine(1)
	for i := 0; i < 10; i++ {
		eng.Schedule(Time(i)*Millisecond, func() {})
	}
	eng.SetEventBudget(3, func() { panic("over budget") })
	defer func() {
		if r := recover(); r != "over budget" {
			t.Fatalf("recovered %v, want the trip panic", r)
		}
	}()
	eng.Run(Second)
	t.Fatalf("Run returned without panicking")
}
