package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, at := range []Time{5 * Millisecond, Millisecond, 3 * Millisecond} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run(Second)
	want := []Time{Millisecond, 3 * Millisecond, 5 * Millisecond}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineSameTimestampFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(Millisecond, func() { order = append(order, i) })
	}
	e.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; same-time events must run FIFO", i, v)
		}
	}
}

func TestEngineClockAdvancesMonotonically(t *testing.T) {
	e := NewEngine(7)
	rng := rand.New(rand.NewSource(42))
	var stamps []Time
	for i := 0; i < 500; i++ {
		e.At(Time(rng.Int63n(int64(Second))), func() { stamps = append(stamps, e.Now()) })
	}
	e.Run(Second)
	if len(stamps) != 500 {
		t.Fatalf("ran %d events, want 500", len(stamps))
	}
	if !sort.SliceIsSorted(stamps, func(i, j int) bool { return stamps[i] < stamps[j] }) {
		t.Error("engine clock went backwards")
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(10*Millisecond, func() {
		e.After(5*Millisecond, func() { at = e.Now() })
	})
	e.Run(Second)
	if at != 15*Millisecond {
		t.Errorf("nested After fired at %v, want 15ms", at.Duration())
	}
}

func TestEngineSchedulingInPastClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(10*Millisecond, func() {
		e.At(Millisecond, func() { at = e.Now() })
	})
	e.Run(Second)
	if at != 10*Millisecond {
		t.Errorf("past event fired at %v, want clamped to 10ms", at.Duration())
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(2*Second, func() { ran = true })
	end := e.Run(Second)
	if ran {
		t.Error("event beyond horizon ran")
	}
	if end != Second {
		t.Errorf("Run returned %v, want horizon 1s", end.Duration())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	// A later Run picks the event up.
	e.Run(3 * Second)
	if !ran {
		t.Error("event did not run after horizon extended")
	}
}

func TestTimerStopPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	e.Run(Second)
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerActive(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(Millisecond, func() {})
	if !tm.Active() {
		t.Error("pending timer not Active")
	}
	e.Run(Second)
	if tm.Active() {
		t.Error("fired timer still Active")
	}
	tm2 := e.At(Millisecond, func() {})
	tm2.Stop()
	if tm2.Active() {
		t.Error("stopped timer still Active")
	}
}

func TestPendingExcludesStoppedTimers(t *testing.T) {
	// Pinned semantics: Pending counts events still scheduled to fire.
	// Stopping a timer removes its event from the queue immediately, so
	// cancelled events are never reported (and never occupy heap space).
	e := NewEngine(1)
	timers := make([]Timer, 3)
	for i := range timers {
		timers[i] = e.At(Time(i+1)*Millisecond, func() {})
	}
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	if !timers[1].Stop() {
		t.Fatal("Stop on pending timer failed")
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d after one Stop, want 2", e.Pending())
	}
	e.Run(Second)
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after Run, want 0", e.Pending())
	}
}

func TestStaleTimerHandleIsInert(t *testing.T) {
	// After an event fires it is recycled; a handle kept around must not be
	// able to cancel the event's next incarnation.
	e := NewEngine(1)
	tm := e.At(Millisecond, func() {})
	e.Run(2 * Millisecond)
	if tm.Active() {
		t.Error("fired timer still Active")
	}
	// Heavy churn forces reuse of the recycled event.
	fired := 0
	for i := 0; i < 200; i++ {
		e.After(Time(i)*Microsecond, func() { fired++ })
	}
	if tm.Stop() {
		t.Error("stale handle cancelled a recycled event")
	}
	e.Run(Second)
	if fired != 200 {
		t.Errorf("fired %d events, want 200 (stale Stop must be a no-op)", fired)
	}
}

func TestStopDuringRunRemovesFromQueue(t *testing.T) {
	// An event firing may stop another pending timer; the removal happens
	// mid-loop and must keep the heap consistent.
	e := NewEngine(1)
	var victims []Timer
	fired := 0
	for i := 0; i < 50; i++ {
		victims = append(victims, e.At(Time(10+i)*Millisecond, func() { fired++ }))
	}
	e.At(5*Millisecond, func() {
		for _, v := range victims {
			v.Stop()
		}
	})
	e.Run(Second)
	if fired != 0 {
		t.Errorf("%d stopped timers fired", fired)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

func TestEngineStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(Second)
	if count != 3 {
		t.Errorf("ran %d events after Stop, want 3", count)
	}
}

func TestEngineDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var out []int64
		var spawn func()
		spawn = func() {
			out = append(out, int64(e.Now())+e.Rand().Int63n(100))
			if len(out) < 200 {
				e.After(Time(e.Rand().Int63n(int64(Millisecond))), spawn)
			}
		}
		e.At(0, spawn)
		e.Run(Second)
		return out
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(100)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical runs; RNG not wired through")
	}
}

func TestEngineProcessedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 17; i++ {
		e.At(Time(i), func() {})
	}
	e.Run(Second)
	if e.Processed() != 17 {
		t.Errorf("Processed = %d, want 17", e.Processed())
	}
}

func TestTimeConversions(t *testing.T) {
	if FromDuration(time.Second) != Second {
		t.Error("FromDuration(1s) != Second")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds conversion wrong")
	}
	if (3 * Millisecond).Duration() != 3*time.Millisecond {
		t.Error("Duration conversion wrong")
	}
}

// Property: for any set of schedule times, events run sorted and none is lost.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine(5)
		var got []Time
		for _, r := range raw {
			at := Time(r % uint32(Second))
			e.At(at, func() { got = append(got, e.Now()) })
		}
		e.Drain()
		if len(got) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEngineDrainRunsEverything(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.At(5*Second, func() { n++; e.After(Second, func() { n++ }) })
	e.Drain()
	if n != 2 {
		t.Errorf("Drain ran %d events, want 2", n)
	}
}
