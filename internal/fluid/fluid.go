// Package fluid numerically integrates the paper's Eq. 3 fluid model
//
//	dx_r/dt = ψ_r(x)·x_r² / (RTT_r²·(Σ_k x_k)²) − β_r(x)·λ_r(x)·x_r² − φ_r(x)
//
// so the §IV/§V analysis can be checked independently of the packet
// simulator: equilibria, TCP-friendliness (Condition 1) and the effect of
// the compensative term are computed here and compared against packet-
// level runs in the tests.
//
// Loss signals use the standard Kelly congestion price: a path through a
// link of capacity C charges λ(y) = (y/C)^b for offered load y, with a
// large exponent b approximating a hard capacity constraint.
package fluid

import (
	"fmt"
	"math"

	"mptcpsim/internal/core"
)

// Path is one route of the modelled connection: a round-trip time, a
// bottleneck capacity, and optional constant cross traffic sharing it.
type Path struct {
	RTT      float64 // seconds
	Capacity float64 // packets per second
	Cross    float64 // packets per second of competing traffic
}

// System is an Eq. 3 instance over a set of paths. Psi/Beta/Phi follow the
// congestion-control model; nil Beta means the TCP standard 1/2 and nil
// Phi means no compensative term.
type System struct {
	Paths []Path
	Psi   func(x []float64, r int) float64
	Beta  func(x []float64, r int) float64
	Phi   func(x []float64, r int) float64

	// PriceExp is the Kelly price exponent b (default 6).
	PriceExp float64

	// SharedBottleneck, when set, derives every path's loss signal from
	// the aggregate rate over Paths[0].Capacity — the Fig. 5a situation of
	// all subflows crossing one link, where TCP-friendliness (Condition 1)
	// is defined.
	SharedBottleneck bool
}

func (s *System) priceExp() float64 {
	if s.PriceExp <= 0 {
		return 6
	}
	return s.PriceExp
}

// Lambda returns the loss signal λ_r at rate vector x.
func (s *System) Lambda(x []float64, r int) float64 {
	var load, capacity float64
	if s.SharedBottleneck {
		capacity = s.Paths[0].Capacity
		for k, p := range s.Paths {
			load += x[k] + p.Cross
		}
	} else {
		capacity = s.Paths[r].Capacity
		load = x[r] + s.Paths[r].Cross
	}
	if capacity <= 0 || load <= 0 {
		return 0
	}
	return math.Pow(load/capacity, s.priceExp())
}

// Derivative evaluates dx/dt into dx.
func (s *System) Derivative(x, dx []float64) {
	var sum float64
	for _, v := range x {
		sum += v
	}
	for r := range s.Paths {
		xr := x[r]
		if xr <= 0 {
			xr = 1e-9
		}
		rtt := s.Paths[r].RTT
		inc := s.Psi(x, r) * xr * xr / (rtt * rtt * sum * sum)
		beta := 0.5
		if s.Beta != nil {
			beta = s.Beta(x, r)
		}
		dec := beta * s.Lambda(x, r) * xr * xr
		var phi float64
		if s.Phi != nil {
			phi = s.Phi(x, r)
		}
		dx[r] = inc - dec - phi
	}
}

// Integrate advances the system from x0 with classic RK4 for steps of
// size dt and returns the final state. Rates are floored at a small
// positive value (a flow never fully disappears — its window is at least
// one segment).
func (s *System) Integrate(x0 []float64, dt float64, steps int) []float64 {
	n := len(x0)
	x := make([]float64, n)
	copy(x, x0)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)

	for i := 0; i < steps; i++ {
		s.Derivative(x, k1)
		for j := range tmp {
			tmp[j] = x[j] + dt/2*k1[j]
		}
		s.Derivative(tmp, k2)
		for j := range tmp {
			tmp[j] = x[j] + dt/2*k2[j]
		}
		s.Derivative(tmp, k3)
		for j := range tmp {
			tmp[j] = x[j] + dt*k3[j]
		}
		s.Derivative(tmp, k4)
		for j := range x {
			x[j] += dt / 6 * (k1[j] + 2*k2[j] + 2*k3[j] + k4[j])
			if x[j] < 1e-6 {
				x[j] = 1e-6
			}
		}
	}
	return x
}

// Equilibrium integrates until the relative derivative is below tol,
// returning the state and whether it converged within maxSteps.
//
// ok = false means the returned state is the LAST ITERATE of a run that
// never settled — typically an oscillation around the fixed point when the
// step size is too large for a stiff system (a sharp PriceExp knee).
// Callers must not present it as an equilibrium; use EquilibriumDamped to
// retry stiff systems at smaller steps, and surface the flag either way.
func (s *System) Equilibrium(x0 []float64, tol float64, maxSteps int) ([]float64, bool) {
	return s.equilibriumAt(x0, 0.25*s.minRTT(), tol, maxSteps)
}

// EquilibriumDamped is Equilibrium with a stiffness fallback: when the
// integration at the default step dt = minRTT/4 fails to settle (RK4
// oscillating around the fixed point instead of approaching it), it retries
// from x0 with the step halved, up to three times. A system that converges
// on the first attempt takes exactly the same trajectory as Equilibrium, so
// switching callers over cannot move an already-converging answer.
func (s *System) EquilibriumDamped(x0 []float64, tol float64, maxSteps int) ([]float64, bool) {
	dt := 0.25 * s.minRTT()
	var x []float64
	var ok bool
	for attempt := 0; attempt < 4; attempt++ {
		x, ok = s.equilibriumAt(x0, dt, tol, maxSteps)
		if ok {
			return x, true
		}
		dt /= 2
	}
	return x, false
}

func (s *System) equilibriumAt(x0 []float64, dt, tol float64, maxSteps int) ([]float64, bool) {
	x := make([]float64, len(x0))
	copy(x, x0)
	dx := make([]float64, len(x0))
	const batch = 200
	for step := 0; step < maxSteps; step += batch {
		x = s.Integrate(x, dt, batch)
		s.Derivative(x, dx)
		settled := true
		for r := range x {
			if math.Abs(dx[r]) > tol*math.Max(x[r], 1) {
				settled = false
				break
			}
		}
		if settled {
			return x, true
		}
	}
	return x, false
}

// EquilibriumShares solves the system from the standard seed — half the
// free capacity of each path, floored at one packet/s — and returns the
// per-path shares of the equilibrium aggregate alongside the raw rates.
// This is the one solve path both the conformance validator
// (internal/check) and the fluid backend engine (internal/backend) go
// through, so validator and backend answers cannot drift apart.
//
// Seeding at half the FREE capacity matters: starting a cross-loaded path
// above its free share puts it over capacity, where the price crushes the
// rate to the floor — and recovery from near-zero is glacial in Eq. 3 (the
// increase scales with x_r²), so the integrator would report a spuriously
// starved equilibrium.
//
// ok = false means the integration never settled even with damped retries;
// shares then describe the last iterate, not an equilibrium, and callers
// must surface that (conformance prints "no-converge", the fluid engine
// clears Result.Converged).
func (s *System) EquilibriumShares(tol float64, maxSteps int) (shares, rates []float64, ok bool) {
	x0 := make([]float64, len(s.Paths))
	for r, p := range s.Paths {
		x0[r] = math.Max((p.Capacity-p.Cross)/2, 1)
	}
	x, ok := s.EquilibriumDamped(x0, tol, maxSteps)
	agg := AggregateRate(x)
	if agg <= 0 {
		return make([]float64, len(x)), x, false
	}
	shares = make([]float64, len(x))
	for r, v := range x {
		shares[r] = v / agg
	}
	return shares, x, ok
}

func (s *System) minRTT() float64 {
	min := math.Inf(1)
	for _, p := range s.Paths {
		if p.RTT < min {
			min = p.RTT
		}
	}
	if math.IsInf(min, 1) {
		return 0.01
	}
	return min
}

// Views synthesizes core.View state from a rate vector so the packet-level
// ψ decompositions in internal/core can drive the fluid model.
// baseRTTFrac sets BaseRTT/RTT (the paper treats its expectation as 1/2).
func (s *System) Views(x []float64, baseRTTFrac float64) []core.View {
	views := make([]core.View, len(s.Paths))
	for r, p := range s.Paths {
		views[r] = core.View{
			Cwnd:    x[r] * p.RTT,
			SRTT:    p.RTT,
			LastRTT: p.RTT,
			BaseRTT: p.RTT * baseRTTFrac,
		}
	}
	return views
}

// FromParam adapts a core.ParamFunc (the §IV ψ decompositions) to the
// fluid model's signature.
func (s *System) FromParam(fn core.ParamFunc, baseRTTFrac float64) func(x []float64, r int) float64 {
	return func(x []float64, r int) float64 {
		return fn(s.Views(x, baseRTTFrac), r)
	}
}

// AggregateRate sums the rate vector.
func AggregateRate(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum
}

// String formats a rate vector for diagnostics.
func String(x []float64) string {
	out := "["
	for i, v := range x {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.1f", v)
	}
	return out + "]"
}
