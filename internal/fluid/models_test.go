package fluid

import (
	"math"
	"testing"

	"mptcpsim/internal/core"
)

// stiffSystem is a single-path system whose price knee is sharp enough
// (PriceExp 60) that RK4 at the default step dt = minRTT/4 oscillates around
// the fixed point instead of converging — the non-convergence mode the
// damped solver exists for.
func stiffSystem() *System {
	s := &System{Paths: []Path{{RTT: 0.05, Capacity: 100}}, PriceExp: 60}
	s.Psi = func(x []float64, r int) float64 { return 1 }
	return s
}

func TestEquilibriumDampedRecoversStiffSystem(t *testing.T) {
	s := stiffSystem()
	x0 := []float64{50}
	if _, ok := s.Equilibrium(x0, 1e-3, 40000); ok {
		t.Fatal("system unexpectedly converged undamped; the regression needs a stiff instance")
	}
	x, ok := s.EquilibriumDamped(x0, 1e-3, 40000)
	if !ok {
		t.Fatalf("damped solver did not converge: %s", String(x))
	}
	dx := make([]float64, 1)
	s.Derivative(x, dx)
	if math.Abs(dx[0]) > 1e-3*math.Max(x[0], 1) {
		t.Errorf("damped result is not an equilibrium: x=%s dx=%v", String(x), dx[0])
	}
}

func TestEquilibriumDampedMatchesEquilibriumWhenConverging(t *testing.T) {
	// On a non-stiff system the damped solver's first attempt IS the plain
	// solver, so the results must be bit-identical — the property that lets
	// the conformance harness switch over without moving its golden.
	s := &System{Paths: []Path{
		{RTT: 0.04, Capacity: 1333.3},
		{RTT: 0.05, Capacity: 666.6},
	}, PriceExp: 20}
	s.Psi = s.FromParam(core.PsiLIA, 0.5)
	x0 := []float64{100, 100}
	a, ok1 := s.Equilibrium(x0, 1e-3, 400000)
	b, ok2 := s.EquilibriumDamped(x0, 1e-3, 400000)
	if !ok1 || !ok2 {
		t.Fatalf("no convergence: ok1=%v ok2=%v", ok1, ok2)
	}
	for r := range a {
		if a[r] != b[r] {
			t.Errorf("path %d: Equilibrium %v != EquilibriumDamped %v", r, a[r], b[r])
		}
	}
}

func TestEquilibriumSharesSeedsAtHalfFreeCapacity(t *testing.T) {
	// EquilibriumShares must reproduce the documented seeding exactly:
	// x0 = max((cap−cross)/2, 1), then normalize.
	s := &System{Paths: []Path{
		{RTT: 0.04, Capacity: 1333.3},
		{RTT: 0.05, Capacity: 666.6, Cross: 333.3},
	}, PriceExp: 20}
	s.Psi = s.FromParam(core.PsiLIA, 0.5)
	shares, rates, ok := s.EquilibriumShares(1e-3, 400000)
	if !ok {
		t.Fatalf("no convergence: %s", String(rates))
	}
	x0 := []float64{
		math.Max((1333.3-0)/2, 1),
		math.Max((666.6-333.3)/2, 1),
	}
	want, _ := s.EquilibriumDamped(x0, 1e-3, 400000)
	agg := AggregateRate(want)
	for r := range shares {
		if rates[r] != want[r] {
			t.Errorf("path %d: rate %v, manual solve %v", r, rates[r], want[r])
		}
		if shares[r] != want[r]/agg {
			t.Errorf("path %d: share %v, want %v", r, shares[r], want[r]/agg)
		}
	}
	if sum := shares[0] + shares[1]; math.Abs(sum-1) > 1e-12 {
		t.Errorf("shares sum to %v, want 1", sum)
	}
}

func TestModelForCoversRegistry(t *testing.T) {
	// Every registered algorithm except DCTCP has a fluid mapping, and the
	// mapping is exactly one of Psi/Oracle.
	for _, name := range core.Names() {
		m, ok := ModelFor(name)
		if name == "dctcp" {
			if ok {
				t.Errorf("dctcp: unexpected fluid mapping (ECN threshold is not a Kelly price)")
			}
			continue
		}
		if !ok {
			t.Errorf("%s: no fluid mapping", name)
			continue
		}
		if (m.Psi == nil) == (m.Oracle == nil) {
			t.Errorf("%s: want exactly one of Psi/Oracle, got psi=%v oracle=%v",
				name, m.Psi != nil, m.Oracle != nil)
		}
	}
	if _, ok := ModelFor("no-such-alg"); ok {
		t.Error("unknown algorithm unexpectedly mapped")
	}
}

func TestModelForPsiRowsSolve(t *testing.T) {
	// Each Psi mapping must yield a converging system on the conformance
	// scenario's asymmetric two-path layout at a plausible operating point.
	rtt := []float64{0.045, 0.045}
	frac := []float64{0.9, 0.9}
	for _, name := range core.Names() {
		m, ok := ModelFor(name)
		if !ok || m.Psi == nil {
			continue
		}
		s := &System{Paths: []Path{
			{RTT: rtt[0], Capacity: 16e6 / (8 * 1500)},
			{RTT: rtt[1], Capacity: 8e6 / (8 * 1500)},
		}, PriceExp: 20}
		s.Psi = m.Psi(rtt, frac)
		shares, rates, ok := s.EquilibriumShares(1e-3, 400000)
		if !ok {
			t.Errorf("%s: no convergence: %s", name, String(rates))
			continue
		}
		// Capacity asymmetry 2:1 must show: path0 carries the larger share.
		if shares[0] <= shares[1] {
			t.Errorf("%s: path0 share %.3f not above path1 %.3f", name, shares[0], shares[1])
		}
	}
}

func TestFreeCapacityShares(t *testing.T) {
	got := FreeCapacityShares([]Path{
		{Capacity: 1200, Cross: 200},
		{Capacity: 600, Cross: 100},
		{Capacity: 400, Cross: 900}, // overloaded: clamps to zero
	})
	want := []float64{1000.0 / 1500, 500.0 / 1500, 0}
	for r := range want {
		if math.Abs(got[r]-want[r]) > 1e-12 {
			t.Errorf("path %d: share %v, want %v", r, got[r], want[r])
		}
	}
}
