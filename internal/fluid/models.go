package fluid

import (
	"math"

	"mptcpsim/internal/core"
)

// This file maps the registered congestion-control algorithms onto Eq. 3
// instances. It is the single source of that mapping: the conformance
// validator (internal/check) and the fluid backend engine
// (internal/backend) both build their Systems through ModelFor, so the
// validated model and the model answering sweeps are the same code.

// AlgModel describes how one algorithm enters the fluid model. Exactly one
// of Psi and Oracle is set.
type AlgModel struct {
	// Psi builds the traffic-shifting parameter ψ_r from the operating
	// point — per-path RTTs (seconds) and baseRTT/RTT fractions, measured
	// in a packet run (internal/check) or estimated from the topology
	// (internal/backend). The returned closure is System.Psi.
	Psi func(rtt, frac []float64) func(x []float64, r int) float64

	// Oracle, for delay-based algorithms that the Kelly loss price cannot
	// model (the Vegas family holds per-path backlog below the loss knee
	// instead of probing for it), returns the expected equilibrium shares
	// directly: the free-capacity split over the paths.
	Oracle func(paths []Path) []float64
}

// ModelFor returns the fluid mapping for a registered algorithm name.
// ok = false means the algorithm has no fluid counterpart (DCTCP — its
// equilibrium is set by the ECN marking threshold, which the Kelly price
// does not represent) and only the packet backend can answer for it.
func ModelFor(alg string) (AlgModel, bool) {
	switch alg {
	case "ewtcp":
		return AlgModel{Psi: uniformPsi(core.PsiEWTCP)}, true
	case "coupled":
		return AlgModel{Psi: uniformPsi(core.PsiCoupled)}, true
	case "lia":
		return AlgModel{Psi: uniformPsi(core.PsiLIA)}, true
	case "olia":
		return AlgModel{Psi: uniformPsi(core.PsiOLIA)}, true
	case "balia":
		return AlgModel{Psi: uniformPsi(core.PsiBalia)}, true
	case "ecmtcp":
		return AlgModel{Psi: uniformPsi(core.PsiECMTCP)}, true
	case "cubic", "reno":
		// Uncoupled loss-based laws: on disjoint DropTail bottlenecks any
		// of them settles at the capacity split — ψ_r = (Σx)²/x_r² models n
		// independent flows; the window-law details shift the loss rate,
		// not the equilibrium share.
		return AlgModel{Psi: uniformPsi(core.PsiUncoupled)}, true
	case "dts", "dtsep":
		// ψ_r = c·ε_r with c = 1 (Eq. 5); dtsep's compensative term is a
		// property of the scenario's link prices, not of ψ, and enters the
		// System through Phi (see internal/check's dtsep row).
		return AlgModel{Psi: epsPsi(core.EpsExact)}, true
	case "dts-taylor":
		// The kernel port's fixed-point ε (third-order Taylor, values
		// scaled by 100).
		return AlgModel{Psi: epsPsi(func(ratio float64) float64 {
			return float64(core.EpsTaylor(int64(math.Round(ratio*100)))) / 100
		})}, true
	case "dts-lia", "dtsep-lia":
		// Modified LIA: LIA's coupled ψ scaled by the Eq. 5 delay factor.
		return AlgModel{Psi: func(rtt, frac []float64) func(x []float64, r int) float64 {
			return func(x []float64, r int) float64 {
				return core.EpsExact(frac[r]) * core.PsiLIA(ViewsAt(x, rtt, frac), r)
			}
		}}, true
	case "wvegas", "vegas":
		return AlgModel{Oracle: FreeCapacityShares}, true
	default:
		return AlgModel{}, false
	}
}

// uniformPsi adapts a §IV ψ decomposition (core.ParamFunc) into an
// operating-point-parameterized System.Psi.
func uniformPsi(fn core.ParamFunc) func(rtt, frac []float64) func(x []float64, r int) float64 {
	return func(rtt, frac []float64) func(x []float64, r int) float64 {
		return func(x []float64, r int) float64 {
			return fn(ViewsAt(x, rtt, frac), r)
		}
	}
}

// epsPsi builds ψ_r = ε(baseRTT_r/RTT_r) for the DTS family from an ε
// evaluator.
func epsPsi(eps func(ratio float64) float64) func(rtt, frac []float64) func(x []float64, r int) float64 {
	return func(rtt, frac []float64) func(x []float64, r int) float64 {
		return func(x []float64, r int) float64 {
			return eps(frac[r])
		}
	}
}

// ViewsAt synthesizes core.Views from a fluid rate vector at per-path RTTs
// and baseRTT/RTT fractions (System.Views only supports one shared
// fraction).
func ViewsAt(x, rtt, frac []float64) []core.View {
	views := make([]core.View, len(x))
	for r := range x {
		views[r] = core.View{
			Cwnd:    x[r] * rtt[r],
			SRTT:    rtt[r],
			LastRTT: rtt[r],
			BaseRTT: rtt[r] * frac[r],
		}
	}
	return views
}

// FreeCapacityShares is the oracle for the Vegas family on disjoint
// bottlenecks: each path carries its share of the free (cross-traffic-
// discounted) capacity.
func FreeCapacityShares(paths []Path) []float64 {
	shares := make([]float64, len(paths))
	var total float64
	for r, p := range paths {
		free := p.Capacity - p.Cross
		if free < 0 {
			free = 0
		}
		shares[r] = free
		total += free
	}
	if total <= 0 {
		return shares
	}
	for r := range shares {
		shares[r] /= total
	}
	return shares
}
