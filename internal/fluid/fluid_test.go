package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"mptcpsim/internal/core"
)

// renoSystem builds a single-path TCP system (ψ = (Σx)²/x² gives the
// uncoupled per-ACK 1/w; on one path that is ψ = 1).
func renoSystem(capacity float64) *System {
	s := &System{Paths: []Path{{RTT: 0.05, Capacity: capacity}}}
	s.Psi = func(x []float64, r int) float64 { return 1 }
	return s
}

func TestSinglePathEquilibriumMatchesAnalytic(t *testing.T) {
	// Setting increase = decrease for ψ=1 on one path gives
	// (x/C)^b · x² · 1/2 = x²/RTT², i.e. x* = (2·C^b / RTT²)^(1/(b+2)).
	s := renoSystem(1000)
	x, ok := s.Equilibrium([]float64{10}, 1e-3, 200000)
	if !ok {
		t.Fatalf("did not converge: %s", String(x))
	}
	b := s.priceExp()
	want := math.Pow(2*math.Pow(1000, b)/(0.05*0.05), 1/(b+2))
	if math.Abs(x[0]-want)/want > 0.02 {
		t.Errorf("equilibrium rate %.1f, analytic %.1f", x[0], want)
	}
	// And the derivative there is ~0.
	dx := make([]float64, 1)
	s.Derivative(x, dx)
	if math.Abs(dx[0]) > 1 {
		t.Errorf("derivative at equilibrium = %v", dx[0])
	}
}

func TestEquilibriumMonotoneInCapacityProperty(t *testing.T) {
	f := func(c1, c2 uint16) bool {
		lo, hi := float64(c1%2000)+100, float64(c2%2000)+100
		if lo > hi {
			lo, hi = hi, lo
		}
		xLo, ok1 := renoSystem(lo).Equilibrium([]float64{10}, 1e-3, 100000)
		xHi, ok2 := renoSystem(hi).Equilibrium([]float64{10}, 1e-3, 100000)
		return ok1 && ok2 && xLo[0] <= xHi[0]*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSymmetricLIASplitsEvenly(t *testing.T) {
	s := &System{Paths: []Path{
		{RTT: 0.04, Capacity: 800},
		{RTT: 0.04, Capacity: 800},
	}}
	s.Psi = s.FromParam(core.PsiLIA, 0.5)
	x, ok := s.Equilibrium([]float64{50, 60}, 1e-3, 400000)
	if !ok {
		t.Fatalf("did not converge: %s", String(x))
	}
	if math.Abs(x[0]-x[1]) > 0.05*(x[0]+x[1]) {
		t.Errorf("asymmetric equilibrium on symmetric paths: %s", String(x))
	}
}

func TestLIACondition1AtFluidEquilibrium(t *testing.T) {
	// Condition 1 evaluated where it is defined: a shared bottleneck. Both
	// LIA subflows cross one 1000 pkt/s link; the aggregate must not exceed
	// what a single TCP gets on the best path of the same link.
	s := &System{
		Paths: []Path{
			{RTT: 0.03, Capacity: 1000},
			{RTT: 0.09, Capacity: 1000},
		},
		SharedBottleneck: true,
	}
	s.Psi = s.FromParam(core.PsiLIA, 0.5)
	x, ok := s.Equilibrium([]float64{50, 50}, 1e-3, 400000)
	if !ok {
		t.Fatalf("did not converge: %s", String(x))
	}
	views := s.Views(x, 0.5)
	if !core.SatisfiesCondition1(&core.Model{ModelName: "lia", Psi: core.PsiLIA}, views, 0.05) {
		h := core.BestPath(views)
		t.Errorf("LIA violates Condition 1 at fluid equilibrium %s: psi_h = %.3f",
			String(x), core.EffectivePsi(&core.Model{ModelName: "lia", Psi: core.PsiLIA}, views, h))
	}

	// A single-path TCP on the best (short-RTT) path of the same link
	// reaches at least the coupled aggregate.
	best := &System{Paths: []Path{s.Paths[0]}}
	best.Psi = func([]float64, int) float64 { return 1 }
	xb, _ := best.Equilibrium([]float64{50}, 1e-3, 400000)
	if agg := AggregateRate(x); agg > 1.15*xb[0] {
		t.Errorf("LIA aggregate %.1f exceeds best-path TCP %.1f", agg, xb[0])
	}

	// On disjoint bottlenecks the same algorithm legitimately aggregates
	// beyond the best path — that is MPTCP's purpose, not a violation.
	dis := &System{Paths: []Path{
		{RTT: 0.03, Capacity: 1000},
		{RTT: 0.09, Capacity: 600},
	}}
	dis.Psi = dis.FromParam(core.PsiLIA, 0.5)
	xd, ok := dis.Equilibrium([]float64{50, 50}, 1e-3, 400000)
	if !ok {
		t.Fatalf("disjoint system did not converge: %s", String(xd))
	}
	if AggregateRate(xd) <= xb[0] {
		t.Errorf("disjoint-path aggregate %.1f not above single best path %.1f",
			AggregateRate(xd), xb[0])
	}
}

func TestDTSEquilibriumMatchesOLIAAtHalfRatio(t *testing.T) {
	// At the design point baseRTT/RTT = 1/2, eps = 1, so ψ_DTS = ψ_OLIA = 1
	// and the two fluid systems share equilibria (§V-B's fairness choice).
	paths := []Path{{RTT: 0.05, Capacity: 900}, {RTT: 0.08, Capacity: 500}}
	mk := func(psi core.ParamFunc) []float64 {
		s := &System{Paths: paths}
		s.Psi = s.FromParam(psi, 0.5)
		x, ok := s.Equilibrium([]float64{40, 40}, 1e-3, 400000)
		if !ok {
			t.Fatalf("no convergence: %s", String(x))
		}
		return x
	}
	dts, olia := mk(core.PsiDTS), mk(core.PsiOLIA)
	for r := range dts {
		if math.Abs(dts[r]-olia[r]) > 0.02*olia[r]+1 {
			t.Errorf("path %d: DTS %.1f vs OLIA %.1f at eps=1", r, dts[r], olia[r])
		}
	}
}

func TestDTSSuppressedAtLowRatio(t *testing.T) {
	// When RTT doubles over base everywhere (ratio 1/3), eps < 1 and the
	// DTS equilibrium falls below OLIA's.
	paths := []Path{{RTT: 0.06, Capacity: 900}}
	mk := func(frac float64) float64 {
		s := &System{Paths: paths}
		s.Psi = s.FromParam(core.PsiDTS, frac)
		x, ok := s.Equilibrium([]float64{40}, 1e-3, 400000)
		if !ok {
			t.Fatalf("no convergence")
		}
		return x[0]
	}
	if lo, mid := mk(1.0/3), mk(0.5); lo >= mid {
		t.Errorf("DTS at ratio 1/3 (%.1f) not below ratio 1/2 (%.1f)", lo, mid)
	}
}

func TestPhiTermReducesEquilibrium(t *testing.T) {
	// The compensative term (Eq. 9) prices traffic and must lower the
	// equilibrium rate — the throughput/energy tradeoff knob.
	mk := func(kappa float64) float64 {
		s := &System{Paths: []Path{{RTT: 0.05, Capacity: 1000}}}
		s.Psi = func([]float64, int) float64 { return 1 }
		if kappa > 0 {
			s.Phi = func(x []float64, r int) float64 { return kappa * x[r] * x[r] }
		}
		x, ok := s.Equilibrium([]float64{40}, 1e-3, 400000)
		if !ok {
			t.Fatalf("no convergence")
		}
		return x[0]
	}
	free, priced := mk(0), mk(1e-4)
	if priced >= free {
		t.Errorf("priced equilibrium %.1f not below free %.1f", priced, free)
	}
	if priced < 0.3*free {
		t.Errorf("kappa=1e-4 collapsed the rate to %.1f (free %.1f); price too harsh", priced, free)
	}
}

func TestCrossTrafficShiftsEquilibrium(t *testing.T) {
	// Cross traffic on path 1 must move the coupled equilibrium toward
	// path 0 (the fluid version of traffic shifting).
	mk := func(cross float64) []float64 {
		s := &System{Paths: []Path{
			{RTT: 0.05, Capacity: 800},
			{RTT: 0.05, Capacity: 800, Cross: cross},
		}}
		s.Psi = s.FromParam(core.PsiLIA, 0.5)
		x, ok := s.Equilibrium([]float64{40, 40}, 1e-3, 400000)
		if !ok {
			t.Fatalf("no convergence")
		}
		return x
	}
	clean := mk(0)
	loaded := mk(500)
	shareClean := clean[0] / AggregateRate(clean)
	shareLoaded := loaded[0] / AggregateRate(loaded)
	if shareLoaded <= shareClean {
		t.Errorf("clean-path share did not grow under cross traffic: %.2f -> %.2f",
			shareClean, shareLoaded)
	}
}

func TestLambdaShape(t *testing.T) {
	s := renoSystem(1000)
	if l := s.Lambda([]float64{500}, 0); l <= 0 || l >= 1 {
		t.Errorf("price below capacity = %v, want in (0,1)", l)
	}
	if l := s.Lambda([]float64{2000}, 0); l <= 1 {
		t.Errorf("price above capacity = %v, want > 1", l)
	}
	if s.Lambda([]float64{0}, 0) != 0 {
		t.Error("price at zero load should be 0")
	}
}

func TestIntegrateIsDeterministic(t *testing.T) {
	s := renoSystem(500)
	a := s.Integrate([]float64{10}, 0.01, 5000)
	b := s.Integrate([]float64{10}, 0.01, 5000)
	if a[0] != b[0] {
		t.Errorf("integration not deterministic: %v vs %v", a[0], b[0])
	}
}
