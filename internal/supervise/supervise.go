// Package supervise keeps long simulation campaigns alive when individual
// runs misbehave. Every run executes under a Budget — a wall-clock
// deadline, an engine event cap and a simulated-time cap — enforced by a
// Watchdog attached to the run's engine. A panic or invariant trip inside
// the worker is caught and converted into a structured RunError (seed,
// scenario, phase, stack, last observation) and the run is quarantined
// instead of re-raised, so a campaign degrades gracefully to partial
// results. Transient failures are retried with capped exponential backoff
// and seed-derived jitter; every outcome (ok, retried, quarantined,
// timed-out, over-budget) is counted for the campaign summary.
//
// The package is deliberately engine-agnostic on the happy path: the
// supervisor never touches a run's engine itself, it only recovers what
// escapes the run closure and interrogates the Watchdog the closure
// attached. Determinism is preserved — supervision adds no randomness to
// the run (jitter only delays retries on the wall clock) and a given seed
// fails, retries or passes identically regardless of worker count.
package supervise

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies why a run failed.
type Kind string

const (
	// KindPanic is an uncontrolled panic out of the run closure.
	KindPanic Kind = "panic"
	// KindInvariant is an internal/check invariant violation (either the
	// FailFast panic or a collected checker error).
	KindInvariant Kind = "invariant"
	// KindTimeout is a wall-clock deadline trip.
	KindTimeout Kind = "timeout"
	// KindBudget is an engine event-budget or simulated-time-budget trip.
	KindBudget Kind = "budget"
	// KindError is a plain error returned by the run closure.
	KindError Kind = "error"
)

// Outcome is the terminal classification of one supervised run.
type Outcome int

const (
	// OK: the run succeeded on its first attempt.
	OK Outcome = iota
	// Retried: the run succeeded after at least one transient failure.
	Retried
	// Quarantined: the run failed permanently (panic, invariant trip, or
	// retry exhaustion) and was recorded instead of re-raised.
	Quarantined
	// TimedOut: the wall-clock deadline fired; not retried (a hang will
	// hang again, and retrying hangs multiplies the campaign's wall time).
	TimedOut
	// OverBudget: the event or simulated-time budget fired; not retried
	// (budgets are deterministic under a fixed seed).
	OverBudget
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Retried:
		return "retried"
	case Quarantined:
		return "quarantined"
	case TimedOut:
		return "timed-out"
	case OverBudget:
		return "over-budget"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Failed reports whether the outcome denotes a failed run.
func (o Outcome) Failed() bool { return o != OK && o != Retried }

// RunID names one run for reporting: the seed that reproduces it, the
// scenario it executed and the campaign phase (figure ID, "chaos", …) it
// belongs to.
type RunID struct {
	Seed     int64  `json:"seed"`
	Scenario string `json:"scenario"`
	Phase    string `json:"phase"`
}

func (id RunID) String() string {
	return fmt.Sprintf("%s/%s seed=%d", id.Phase, id.Scenario, id.Seed)
}

// RunError is the structured record of a failed run: everything the
// quarantine corpus needs to triage and replay it. It is JSON-serializable
// so chaos artifacts can embed it verbatim.
type RunError struct {
	ID       RunID  `json:"id"`
	Kind     Kind   `json:"kind"`
	Msg      string `json:"msg"`
	Stack    string `json:"stack,omitempty"`
	Attempts int    `json:"attempts"`
	// LastObsv is the final observation before the failure: the engine
	// clock and event count the watchdog saw, plus the run's own sample
	// when it registered one (see Watchdog.SetSample).
	LastObsv string `json:"last_obsv,omitempty"`
}

func (e *RunError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.ID, e.Kind, e.Msg)
}

// Report is the terminal result of one supervised run.
type Report struct {
	Outcome  Outcome
	Attempts int       // total attempts, >= 1
	Err      *RunError // nil for OK and Retried
}

// transientError marks an error as worth retrying.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient marks err as transient: the supervisor retries it (with capped
// exponential backoff) instead of quarantining immediately. Use it for
// failures outside the deterministic simulation — file systems, external
// processes — never for invariant trips, which reproduce under the same
// seed and would only burn the retry budget.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked with
// Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Counts aggregates run outcomes across a campaign.
type Counts struct {
	OK          int64 `json:"ok"`
	Retried     int64 `json:"retried"`
	Quarantined int64 `json:"quarantined"`
	TimedOut    int64 `json:"timed_out"`
	OverBudget  int64 `json:"over_budget"`
}

// Total is the number of supervised runs.
func (c Counts) Total() int64 {
	return c.OK + c.Retried + c.Quarantined + c.TimedOut + c.OverBudget
}

// Failed is the number of runs that did not end in success.
func (c Counts) Failed() int64 { return c.Quarantined + c.TimedOut + c.OverBudget }

func (c Counts) String() string {
	return fmt.Sprintf("ok=%d retried=%d quarantined=%d timed-out=%d over-budget=%d",
		c.OK, c.Retried, c.Quarantined, c.TimedOut, c.OverBudget)
}

// maxFailures bounds the retained RunError list; the counters keep rising
// past it.
const maxFailures = 64

// Supervisor runs closures under a shared Budget and retry policy and
// aggregates their outcomes. It is safe for concurrent use — one supervisor
// typically spans a whole campaign's worker pool.
type Supervisor struct {
	// Budget applies to every supervised run. The zero Budget enforces
	// nothing and the supervisor only provides panic quarantine.
	Budget Budget
	// Retries is how many times a transient failure is re-attempted before
	// quarantine (0 = never retry).
	Retries int
	// Backoff is the base delay before the first retry; each further retry
	// doubles it, capped at MaxBackoff. Defaults: 100ms base, 5s cap.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// sleep and now are test seams.
	sleep func(time.Duration)
	now   func() time.Time

	ok, retried, quarantined, timedOut, overBudget atomic.Int64

	mu       sync.Mutex
	failures []RunError
	dropped  int
}

// New returns a supervisor with the given budget and no retries.
func New(b Budget) *Supervisor {
	return &Supervisor{Budget: b}
}

func (s *Supervisor) sleepFn() func(time.Duration) {
	if s.sleep != nil {
		return s.sleep
	}
	return time.Sleep
}

func (s *Supervisor) nowFn() func() time.Time {
	if s.now != nil {
		return s.now
	}
	return time.Now
}

// backoffDelay computes the capped exponential backoff before retry
// attempt (1-based), with deterministic seed-derived jitter in
// [0, delay/2) so a batch of retrying runs does not thunder in lockstep.
func (s *Supervisor) backoffDelay(seed int64, attempt int) time.Duration {
	base := s.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := s.MaxBackoff
	if cap <= 0 {
		cap = 5 * time.Second
	}
	d := base << (attempt - 1)
	if d > cap || d <= 0 { // d <= 0 guards shift overflow
		d = cap
	}
	rng := rand.New(rand.NewSource(seed + int64(attempt)*0x9E3779B9))
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// Run executes fn under the supervisor's budget and retry policy. fn
// receives a Watchdog it must Attach to the run's engine for deadline and
// budget enforcement (a nil-safe no-op when the caller has no engine).
// Every failure mode — a returned error, a panic, a watchdog trip — ends in
// a Report instead of propagating, so callers on a worker pool can always
// collect partial results.
func (s *Supervisor) Run(id RunID, fn func(wd *Watchdog) error) Report {
	for attempt := 1; ; attempt++ {
		wd := &Watchdog{id: id, budget: s.Budget, now: s.nowFn()}
		err := runAttempt(wd, fn)
		if err == nil {
			if attempt > 1 {
				s.retried.Add(1)
				return Report{Outcome: Retried, Attempts: attempt}
			}
			s.ok.Add(1)
			return Report{Outcome: OK, Attempts: attempt}
		}
		re := s.classify(id, wd, err, attempt)
		switch re.Kind {
		case KindTimeout:
			s.timedOut.Add(1)
			s.record(*re)
			return Report{Outcome: TimedOut, Attempts: attempt, Err: re}
		case KindBudget:
			s.overBudget.Add(1)
			s.record(*re)
			return Report{Outcome: OverBudget, Attempts: attempt, Err: re}
		}
		if IsTransient(err) && attempt <= s.Retries {
			s.sleepFn()(s.backoffDelay(id.Seed, attempt))
			continue
		}
		s.quarantined.Add(1)
		s.record(*re)
		return Report{Outcome: Quarantined, Attempts: attempt, Err: re}
	}
}

// runAttempt executes fn once, converting panics (including watchdog
// trips, which travel as panics out of the engine loop) into errors.
func runAttempt(wd *Watchdog, fn func(*Watchdog) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*Trip); ok {
				err = t
				return
			}
			err = &panicked{value: r, stack: debug.Stack()}
		}
	}()
	return fn(wd)
}

// panicked carries a recovered panic payload and stack as an error.
type panicked struct {
	value any
	stack []byte
}

func (p *panicked) Error() string { return fmt.Sprintf("panic: %v", p.value) }

// classify builds the structured RunError for a failed attempt.
func (s *Supervisor) classify(id RunID, wd *Watchdog, err error, attempt int) *RunError {
	re := &RunError{ID: id, Attempts: attempt, LastObsv: wd.lastObsv()}
	var t *Trip
	var p *panicked
	switch {
	case errors.As(err, &t):
		re.Kind = t.Kind
		re.Msg = t.Msg
	case errors.As(err, &p):
		re.Kind = KindPanic
		re.Msg = fmt.Sprint(p.value)
		re.Stack = string(p.stack)
		if isInvariantMsg(re.Msg) {
			re.Kind = KindInvariant
		}
	default:
		re.Kind = KindError
		re.Msg = err.Error()
		if isInvariantMsg(re.Msg) {
			re.Kind = KindInvariant
		}
	}
	return re
}

// isInvariantMsg recognizes internal/check failures in both shapes: the
// FailFast panic ("check: invariant violated: …") and the collected error
// ("check: N invariant violation(s); …").
func isInvariantMsg(msg string) bool {
	return strings.Contains(msg, "invariant violat")
}

func (s *Supervisor) record(re RunError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.failures) < maxFailures {
		s.failures = append(s.failures, re)
	} else {
		s.dropped++
	}
}

// Counts snapshots the outcome counters.
func (s *Supervisor) Counts() Counts {
	return Counts{
		OK:          s.ok.Load(),
		Retried:     s.retried.Load(),
		Quarantined: s.quarantined.Load(),
		TimedOut:    s.timedOut.Load(),
		OverBudget:  s.overBudget.Load(),
	}
}

// Failures returns the retained RunErrors (bounded; the counters are not).
func (s *Supervisor) Failures() []RunError {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunError, len(s.failures))
	copy(out, s.failures)
	return out
}

// ExitCodeError carries a specific process exit code through an error
// return, so a CLI can distinguish "campaign completed with quarantined
// runs" (partial results, exit 3) from hard usage errors (exit 1).
type ExitCodeError struct {
	Code int
	Msg  string
}

func (e *ExitCodeError) Error() string { return e.Msg }

// Process exit codes shared by both CLIs (0 is success, 1 a usage or hard
// error). They are distinct so wrappers — CI, the resume smoke test, shard
// drivers — can branch on the kind of non-success without parsing output.
const (
	// ExitQuarantined: the campaign finished but quarantined at least one
	// run; the printed tables are valid partial results.
	ExitQuarantined = 3
	// ExitInterrupted: a SIGINT/SIGTERM stopped the invocation early.
	// In-flight runs were drained and every open writer (obsv records,
	// campaign journal) was flushed, so a campaign directory is resumable
	// with -resume exactly as it stands.
	ExitInterrupted = 4
)
