package supervise

import (
	"fmt"
	"runtime"
	"time"

	"mptcpsim/internal/sim"
)

// Budget bounds one supervised run. Zero fields enforce nothing.
type Budget struct {
	// Wall is the wall-clock deadline for a single attempt, checked by a
	// periodic watchdog event inside the engine loop. Wall timeouts are the
	// only nondeterministic trip — identical seeds can time out on a loaded
	// machine and pass on an idle one — so campaigns that need determinism
	// across worker counts should bound runs primarily with Events and keep
	// Wall as a generous backstop against true hangs.
	Wall time.Duration
	// Events caps processed engine events (deterministic; also catches
	// same-instant event storms that never advance the clock).
	Events uint64
	// SimTime caps the simulated clock, independent of the run's own
	// horizon (deterministic).
	SimTime sim.Time
	// HeapBytes caps the process's live heap (runtime.ReadMemStats
	// HeapAlloc), checked on a periodic engine event. Like Wall this is a
	// nondeterministic backstop — heap size depends on GC timing and on
	// whatever else shares the process — so it belongs on population-scale
	// runs as an OOM guard, not as a determinism-bearing bound.
	HeapBytes uint64
	// CheckEvery is the simulated cadence of the wall-clock check event.
	// Defaults to 10ms of simulated time.
	CheckEvery sim.Time
}

// Trip is the panic payload a watchdog throws through the engine loop when
// a budget is exhausted. It implements error so the supervisor's recover
// can classify it without string matching.
type Trip struct {
	Kind Kind
	Msg  string
}

func (t *Trip) Error() string { return fmt.Sprintf("%s: %s", t.Kind, t.Msg) }

// Watchdog enforces a Budget on one attempt of one run. The supervisor
// hands a fresh Watchdog to each attempt; the run closure must Attach it to
// the engine it builds (Attach is a nil-safe no-op, so the same closure
// works unsupervised). A tripped watchdog panics a *Trip out of eng.Run —
// the supervisor's recover converts it into a timed-out or over-budget
// Report, which is what lets the budget abort a run from inside the engine
// without any per-closure error plumbing.
type Watchdog struct {
	id       RunID
	budget   Budget
	now      func() time.Time
	deadline time.Time
	eng      *sim.Engine
	sample   func() string
}

// Attach arms the watchdog on eng: a periodic event checks the wall-clock
// deadline, the engine's event budget enforces the event cap, and a
// one-shot event enforces the simulated-time cap. Calling Attach on a nil
// watchdog or with a zero budget is a no-op. The watchdog's own periodic
// check events count toward the event budget; size Events accordingly
// (the default cadence adds ~100 events per simulated second).
func (w *Watchdog) Attach(eng *sim.Engine) {
	if w == nil || eng == nil {
		return
	}
	w.eng = eng
	if w.budget.Wall > 0 {
		if w.now == nil {
			w.now = time.Now
		}
		if w.deadline.IsZero() {
			w.deadline = w.now().Add(w.budget.Wall)
		}
		every := w.budget.CheckEvery
		if every <= 0 {
			every = 10 * sim.Millisecond
		}
		var tick func()
		tick = func() {
			if w.now().After(w.deadline) {
				panic(&Trip{Kind: KindTimeout, Msg: fmt.Sprintf(
					"wall-clock deadline %v exceeded at %s", w.budget.Wall, w.lastObsv())})
			}
			eng.ScheduleAfter(every, tick)
		}
		eng.ScheduleAfter(every, tick)
	}
	if w.budget.HeapBytes > 0 {
		// Heap checks are coarser than wall checks: ReadMemStats is not
		// free, so the cadence floors at 100ms of simulated time.
		every := w.budget.CheckEvery
		if every < 100*sim.Millisecond {
			every = 100 * sim.Millisecond
		}
		var tick func()
		tick = func() {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > w.budget.HeapBytes {
				panic(&Trip{Kind: KindBudget, Msg: fmt.Sprintf(
					"heap budget %d bytes exceeded (HeapAlloc=%d) at %s",
					w.budget.HeapBytes, ms.HeapAlloc, w.lastObsv())})
			}
			eng.ScheduleAfter(every, tick)
		}
		eng.ScheduleAfter(every, tick)
	}
	if w.budget.Events > 0 {
		eng.SetEventBudget(w.budget.Events, func() {
			panic(&Trip{Kind: KindBudget, Msg: fmt.Sprintf(
				"event budget %d exhausted at %s", w.budget.Events, w.lastObsv())})
		})
	}
	if w.budget.SimTime > 0 {
		eng.At(w.budget.SimTime, func() {
			panic(&Trip{Kind: KindBudget, Msg: fmt.Sprintf(
				"sim-time budget %.3fs exhausted at %s", w.budget.SimTime.Seconds(), w.lastObsv())})
		})
	}
}

// SetSample registers a hook returning a one-line snapshot of run state
// (e.g. per-subflow cwnd) to enrich RunError.LastObsv on failure.
func (w *Watchdog) SetSample(fn func() string) {
	if w == nil {
		return
	}
	w.sample = fn
}

// lastObsv renders the final observation for a RunError: engine clock and
// event count, plus the run's registered sample if any.
func (w *Watchdog) lastObsv() string {
	if w == nil || w.eng == nil {
		return ""
	}
	s := fmt.Sprintf("t=%.3fs events=%d", w.eng.Now().Seconds(), w.eng.Processed())
	if w.sample != nil {
		s += " " + w.sample()
	}
	return s
}
