package supervise

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mptcpsim/internal/sim"
)

// noSleep replaces the backoff sleep and records the delays it was asked
// to wait.
func noSleep() (*[]time.Duration, func(time.Duration)) {
	var mu sync.Mutex
	var ds []time.Duration
	return &ds, func(d time.Duration) {
		mu.Lock()
		ds = append(ds, d)
		mu.Unlock()
	}
}

func TestRunOK(t *testing.T) {
	s := New(Budget{})
	rep := s.Run(RunID{Seed: 1, Scenario: "ok", Phase: "test"}, func(wd *Watchdog) error {
		return nil
	})
	if rep.Outcome != OK || rep.Attempts != 1 || rep.Err != nil {
		t.Fatalf("got %+v, want OK on first attempt", rep)
	}
	if c := s.Counts(); c.OK != 1 || c.Total() != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestRetryThenSucceed(t *testing.T) {
	s := New(Budget{})
	s.Retries = 3
	delays, sleep := noSleep()
	s.sleep = sleep
	calls := 0
	rep := s.Run(RunID{Seed: 7, Scenario: "flaky", Phase: "test"}, func(wd *Watchdog) error {
		calls++
		if calls < 3 {
			return Transient(errors.New("io hiccup"))
		}
		return nil
	})
	if rep.Outcome != Retried {
		t.Fatalf("outcome = %v, want Retried", rep.Outcome)
	}
	if rep.Attempts != 3 || calls != 3 {
		t.Fatalf("attempts = %d, calls = %d, want 3", rep.Attempts, calls)
	}
	if len(*delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(*delays))
	}
	// Capped exponential: second delay's base doubles the first's, jitter
	// adds at most half the base on top.
	if (*delays)[1] < (*delays)[0]/2 {
		t.Fatalf("backoff not growing: %v", *delays)
	}
	if c := s.Counts(); c.Retried != 1 || c.Failed() != 0 {
		t.Fatalf("counts = %v", c)
	}
}

func TestRetryExhaustion(t *testing.T) {
	s := New(Budget{})
	s.Retries = 2
	_, s.sleep = func() (*[]time.Duration, func(time.Duration)) { return noSleep() }()
	calls := 0
	rep := s.Run(RunID{Seed: 9, Scenario: "doomed", Phase: "test"}, func(wd *Watchdog) error {
		calls++
		return Transient(errors.New("still broken"))
	})
	if rep.Outcome != Quarantined {
		t.Fatalf("outcome = %v, want Quarantined", rep.Outcome)
	}
	if calls != 3 { // initial + 2 retries
		t.Fatalf("calls = %d, want 3", calls)
	}
	if rep.Err == nil || rep.Err.Kind != KindError || rep.Err.Attempts != 3 {
		t.Fatalf("err = %+v", rep.Err)
	}
	if c := s.Counts(); c.Quarantined != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestNonTransientNotRetried(t *testing.T) {
	s := New(Budget{})
	s.Retries = 5
	calls := 0
	rep := s.Run(RunID{Seed: 2, Scenario: "hard", Phase: "test"}, func(wd *Watchdog) error {
		calls++
		return errors.New("deterministic failure")
	})
	if rep.Outcome != Quarantined || calls != 1 {
		t.Fatalf("outcome = %v calls = %d, want immediate quarantine", rep.Outcome, calls)
	}
}

func TestPanicQuarantinedWithStack(t *testing.T) {
	s := New(Budget{})
	s.Retries = 5 // panics must never be retried
	calls := 0
	rep := s.Run(RunID{Seed: 3, Scenario: "boom", Phase: "test"}, func(wd *Watchdog) error {
		calls++
		panic("kaboom")
	})
	if rep.Outcome != Quarantined || calls != 1 {
		t.Fatalf("outcome = %v calls = %d, want quarantined without retry", rep.Outcome, calls)
	}
	if rep.Err.Kind != KindPanic || rep.Err.Msg != "kaboom" {
		t.Fatalf("err = %+v", rep.Err)
	}
	if !strings.Contains(rep.Err.Stack, "supervise") {
		t.Fatalf("stack not captured: %q", rep.Err.Stack)
	}
}

func TestInvariantPanicClassified(t *testing.T) {
	s := New(Budget{})
	rep := s.Run(RunID{Seed: 4, Scenario: "inv", Phase: "test"}, func(wd *Watchdog) error {
		panic("check: invariant violated: t=1.000s conn.conservation: lost bytes")
	})
	if rep.Err == nil || rep.Err.Kind != KindInvariant {
		t.Fatalf("err = %+v, want KindInvariant", rep.Err)
	}
}

// TestDeadlineMidSlowStart drives a fake wall clock: the run's engine
// processes events normally until the clock (advanced by each watchdog
// check) passes the deadline mid-run, and the trip surfaces as TimedOut.
func TestDeadlineMidSlowStart(t *testing.T) {
	s := New(Budget{Wall: 100 * time.Millisecond, CheckEvery: sim.Millisecond})
	fake := time.Unix(0, 0)
	s.now = func() time.Time {
		fake = fake.Add(10 * time.Millisecond) // each check costs 10ms of "wall" time
		return fake
	}
	var lastT sim.Time
	rep := s.Run(RunID{Seed: 5, Scenario: "slow-start", Phase: "test"}, func(wd *Watchdog) error {
		eng := sim.NewEngine(5)
		wd.Attach(eng)
		// A long run: an event every 100us for 10 simulated seconds, far
		// more than the deadline allows.
		var step func()
		step = func() {
			lastT = eng.Now()
			eng.ScheduleAfter(100*sim.Microsecond, step)
		}
		eng.Schedule(0, step)
		eng.Run(10 * sim.Second)
		return nil
	})
	if rep.Outcome != TimedOut {
		t.Fatalf("outcome = %v, want TimedOut", rep.Outcome)
	}
	if rep.Err.Kind != KindTimeout {
		t.Fatalf("err = %+v", rep.Err)
	}
	if lastT == 0 || lastT >= 10*sim.Second {
		t.Fatalf("deadline should fire mid-run, last event at %v", lastT)
	}
	if !strings.Contains(rep.Err.LastObsv, "t=") {
		t.Fatalf("LastObsv missing engine sample: %q", rep.Err.LastObsv)
	}
	if c := s.Counts(); c.TimedOut != 1 {
		t.Fatalf("counts = %v", c)
	}
}

// TestTimeoutNotRetried pins that a timed-out run is terminal even with a
// retry budget: a hang will hang again.
func TestTimeoutNotRetried(t *testing.T) {
	s := New(Budget{Wall: time.Millisecond, CheckEvery: sim.Millisecond})
	s.Retries = 5
	fake := time.Unix(0, 0)
	s.now = func() time.Time {
		fake = fake.Add(time.Second)
		return fake
	}
	calls := 0
	rep := s.Run(RunID{Seed: 6, Scenario: "hang", Phase: "test"}, func(wd *Watchdog) error {
		calls++
		eng := sim.NewEngine(6)
		wd.Attach(eng)
		var spin func()
		spin = func() { eng.ScheduleAfter(sim.Millisecond, spin) }
		eng.Schedule(0, spin)
		eng.Run(sim.Second)
		return nil
	})
	if rep.Outcome != TimedOut || calls != 1 {
		t.Fatalf("outcome = %v calls = %d, want TimedOut without retry", rep.Outcome, calls)
	}
}

// TestBudgetExhaustionAtHorizon pins the boundary from the run's side: a
// scenario that needs exactly its budget completes OK, one more event trips
// OverBudget.
func TestBudgetExhaustionAtHorizon(t *testing.T) {
	run := func(events int) Report {
		s := New(Budget{Events: 100})
		return s.Run(RunID{Seed: 8, Scenario: "boundary", Phase: "test"}, func(wd *Watchdog) error {
			eng := sim.NewEngine(8)
			wd.Attach(eng)
			for i := 0; i < events; i++ {
				eng.Schedule(sim.Time(i)*sim.Millisecond, func() {})
			}
			eng.Run(sim.Second)
			return nil
		})
	}
	if rep := run(100); rep.Outcome != OK {
		t.Fatalf("exactly-at-budget run: outcome = %v (err %v), want OK", rep.Outcome, rep.Err)
	}
	rep := run(101)
	if rep.Outcome != OverBudget {
		t.Fatalf("one-over-budget run: outcome = %v, want OverBudget", rep.Outcome)
	}
	if rep.Err.Kind != KindBudget {
		t.Fatalf("err = %+v", rep.Err)
	}
}

func TestSimTimeBudget(t *testing.T) {
	s := New(Budget{SimTime: sim.Second})
	rep := s.Run(RunID{Seed: 10, Scenario: "simtime", Phase: "test"}, func(wd *Watchdog) error {
		eng := sim.NewEngine(10)
		wd.Attach(eng)
		var spin func()
		spin = func() { eng.ScheduleAfter(100*sim.Millisecond, spin) }
		eng.Schedule(0, spin)
		eng.Run(10 * sim.Second)
		return nil
	})
	if rep.Outcome != OverBudget || rep.Err.Kind != KindBudget {
		t.Fatalf("got %+v, want OverBudget", rep)
	}
}

// TestHeapBytesBudget arms the nondeterministic heap backstop. An
// impossible 1-byte budget must trip at the first heap check; a generous
// budget must not interfere.
func TestHeapBytesBudget(t *testing.T) {
	run := func(heap uint64) Report {
		s := New(Budget{HeapBytes: heap})
		return s.Run(RunID{Seed: 12, Scenario: "heap", Phase: "test"}, func(wd *Watchdog) error {
			eng := sim.NewEngine(12)
			wd.Attach(eng)
			var spin func()
			spin = func() { eng.ScheduleAfter(50*sim.Millisecond, spin) }
			eng.Schedule(0, spin)
			eng.Run(2 * sim.Second)
			return nil
		})
	}
	rep := run(1)
	if rep.Outcome != OverBudget || rep.Err.Kind != KindBudget {
		t.Fatalf("1-byte heap budget: got %+v, want OverBudget", rep)
	}
	if rep := run(64 << 30); rep.Outcome != OK {
		t.Fatalf("64 GiB heap budget tripped: %+v", rep)
	}
}

func TestFailuresBounded(t *testing.T) {
	s := New(Budget{})
	for i := 0; i < maxFailures+10; i++ {
		s.Run(RunID{Seed: int64(i), Scenario: "f", Phase: "test"}, func(wd *Watchdog) error {
			return fmt.Errorf("fail %d", i)
		})
	}
	if got := len(s.Failures()); got != maxFailures {
		t.Fatalf("retained %d failures, want cap %d", got, maxFailures)
	}
	if c := s.Counts(); c.Quarantined != maxFailures+10 {
		t.Fatalf("counter must keep rising past the cap: %v", c)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	s := New(Budget{})
	a := s.backoffDelay(42, 1)
	b := s.backoffDelay(42, 1)
	if a != b {
		t.Fatalf("jitter not seed-deterministic: %v vs %v", a, b)
	}
	s.Backoff = 100 * time.Millisecond
	s.MaxBackoff = 300 * time.Millisecond
	if d := s.backoffDelay(1, 30); d > 450*time.Millisecond {
		t.Fatalf("backoff not capped: %v", d)
	}
}

func TestTransientWrapping(t *testing.T) {
	base := errors.New("disk full")
	if !IsTransient(Transient(base)) {
		t.Fatal("Transient(err) not recognized")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", Transient(base))) {
		t.Fatal("wrapped transient not recognized")
	}
	if IsTransient(base) {
		t.Fatal("plain error misclassified as transient")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must be nil")
	}
}

func TestNilWatchdogNoop(t *testing.T) {
	var wd *Watchdog
	wd.Attach(sim.NewEngine(1)) // must not panic
	wd.SetSample(func() string { return "" })
	if got := wd.lastObsv(); got != "" {
		t.Fatalf("nil watchdog lastObsv = %q", got)
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OK: "ok", Retried: "retried", Quarantined: "quarantined",
		TimedOut: "timed-out", OverBudget: "over-budget",
	}
	for o, s := range want {
		if o.String() != s {
			t.Fatalf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
	c := Counts{OK: 1, Retried: 2, Quarantined: 3, TimedOut: 4, OverBudget: 5}
	if c.Total() != 15 || c.Failed() != 12 {
		t.Fatalf("Counts arithmetic wrong: %+v", c)
	}
	if !strings.Contains(c.String(), "quarantined=3") {
		t.Fatalf("Counts.String() = %q", c.String())
	}
}
