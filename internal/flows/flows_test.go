package flows

import (
	"fmt"
	"math"
	"testing"

	"mptcpsim/internal/check"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/supervise"
	"mptcpsim/internal/topo"
)

func TestClassString(t *testing.T) {
	want := map[Class]string{Web: "web", Bulk: "bulk", Stream: "stream", Class(99): "unknown"}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, s)
		}
	}
	if Classes() != [3]Class{Web, Bulk, Stream} {
		t.Errorf("Classes() = %v", Classes())
	}
}

func TestSizeDistBoundsAndMean(t *testing.T) {
	eng := sim.NewEngine(7)
	d := SizeDist{Alpha: 1.2, Min: 16 << 10, Max: 8 << 20}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := d.Sample(eng.Rand())
		if x < d.Min || x > d.Max {
			t.Fatalf("sample %d outside [%d, %d]", x, d.Min, d.Max)
		}
		sum += float64(x)
	}
	emp, ana := sum/n, d.Mean()
	if math.Abs(emp-ana)/ana > 0.15 {
		t.Errorf("empirical mean %.0f vs analytic %.0f: off by more than 15%%", emp, ana)
	}
	// Degenerate configs fall back to Min rather than NaN.
	if got := (SizeDist{Min: 5}).Sample(eng.Rand()); got != 5 {
		t.Errorf("degenerate Sample = %d, want 5", got)
	}
	if got := (SizeDist{Min: 5}).Mean(); got != 5 {
		t.Errorf("degenerate Mean = %v, want 5", got)
	}
	// Alpha == 1 has its own analytic branch.
	one := SizeDist{Alpha: 1, Min: 1000, Max: 100000}
	if m := one.Mean(); m <= 1000 || m >= 100000 || math.IsNaN(m) {
		t.Errorf("alpha=1 Mean = %v out of range", m)
	}
}

func TestPoissonGaps(t *testing.T) {
	eng := sim.NewEngine(3)
	p := Poisson{Rate: 100}
	var sum sim.Time
	const n = 10000
	for i := 0; i < n; i++ {
		g := p.Next(eng.Rand())
		if g <= 0 {
			t.Fatalf("gap %v not positive", g)
		}
		sum += g
	}
	mean := float64(sum) / n / float64(sim.Second)
	if math.Abs(mean-0.01)/0.01 > 0.1 {
		t.Errorf("mean gap %.5fs, want ~0.01s", mean)
	}
	if g := (Poisson{}).Next(eng.Rand()); g < sim.Time(math.MaxInt64/8) {
		t.Errorf("zero-rate Poisson gap %v should be effectively infinite", g)
	}
}

func TestMMPP2Advances(t *testing.T) {
	eng := sim.NewEngine(11)
	m := &MMPP2{RateLow: 10, RateHigh: 1000, MeanLow: 100 * sim.Millisecond, MeanHigh: 100 * sim.Millisecond}
	var sum sim.Time
	const n = 20000
	for i := 0; i < n; i++ {
		g := m.Next(eng.Rand())
		if g <= 0 {
			t.Fatalf("gap %v not positive", g)
		}
		sum += g
	}
	// Equal sojourns: long-run rate is the mean of the two states, 505/s.
	rate := n / (float64(sum) / float64(sim.Second))
	if rate < 350 || rate > 700 {
		t.Errorf("long-run MMPP rate %.0f/s, want ~505/s", rate)
	}
	// A silent low state still advances to the high state instead of hanging.
	s := &MMPP2{RateLow: 0, RateHigh: 100, MeanLow: 10 * sim.Millisecond, MeanHigh: sim.Second}
	if g := s.Next(eng.Rand()); g <= 0 || g > 10*sim.Second {
		t.Errorf("silent-state gap %v unreasonable", g)
	}
}

func TestNewValidates(t *testing.T) {
	eng := sim.NewEngine(1)
	ft, err := topo.NewFatTree(eng, topo.FatTreeConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, nil, Config{TotalFlows: 1}); err == nil {
		t.Error("nil net accepted")
	}
	if _, err := New(eng, ft, Config{}); err == nil {
		t.Error("zero TotalFlows accepted")
	}
	if _, err := New(eng, ft, Config{TotalFlows: 1, Mix: []ClassMix{{Web, -1}}}); err == nil {
		t.Error("negative mix weight accepted")
	}
	if _, err := New(eng, ft, Config{TotalFlows: 1, Mix: []ClassMix{{Web, 0}}}); err == nil {
		t.Error("zero-weight mix accepted")
	}
}

// runChurn drives one complete small churn run and returns the manager and
// its streamed reports.
func runChurn(t *testing.T, seed int64, cfg Config) (*Manager, []Report) {
	t.Helper()
	eng := sim.NewEngine(seed)
	ft, err := topo.NewFatTree(eng, topo.FatTreeConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	var reports []Report
	cfg.Emit = func(r Report) { reports = append(reports, r) }
	m, err := New(eng, ft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.OnDrained = eng.Stop
	m.Start()
	eng.Run(300 * sim.Second)
	m.CutLive()
	return m, reports
}

func TestManagerReconciles(t *testing.T) {
	cfg := Config{
		Algorithm:     "lia",
		TotalFlows:    400,
		MaxConcurrent: 20,
		Arrivals:      Poisson{Rate: 2000}, // storm: far beyond what 20 slots drain
		WebSizes:      SizeDist{Alpha: 1.2, Min: 8 << 10, Max: 64 << 10},
		BulkSizes:     SizeDist{Alpha: 1.3, Min: 64 << 10, Max: 256 << 10},
	}
	m, reports := runChurn(t, 42, cfg)
	st := m.Stats()

	if st.Offered != 400 {
		t.Fatalf("offered %d, want 400", st.Offered)
	}
	if st.Completed+st.ShedCapacity+st.Cut != st.Offered {
		t.Errorf("accounting leak: completed %d + shed %d + cut %d != offered %d",
			st.Completed, st.ShedCapacity, st.Cut, st.Offered)
	}
	if st.ShedCapacity == 0 {
		t.Error("overloaded run shed nothing; admission cap not exercised")
	}
	if st.Completed == 0 {
		t.Error("no flow completed")
	}
	if st.PeakLive > 20 {
		t.Errorf("peak live %d exceeds cap 20", st.PeakLive)
	}
	if len(reports) != int(st.Offered) {
		t.Errorf("%d reports for %d offered flows; every flow must be reported", len(reports), st.Offered)
	}
	// Per-class splits sum to the totals.
	var off, comp, shed, cut uint64
	for _, c := range Classes() {
		off += st.OfferedByClass[c]
		comp += st.CompletedByClass[c]
		shed += st.ShedByClass[c]
		cut += st.CutByClass[c]
	}
	if off != st.Offered || comp != st.Completed || shed != st.ShedCapacity || cut != st.Cut {
		t.Errorf("per-class splits don't sum: %d/%d %d/%d %d/%d %d/%d",
			off, st.Offered, comp, st.Completed, shed, st.ShedCapacity, cut, st.Cut)
	}
	// Pooled slots are bounded by peak concurrency, not offered flows.
	if m.SlotsAllocated() > st.PeakLive {
		t.Errorf("slots %d > peak live %d: pooling failed", m.SlotsAllocated(), st.PeakLive)
	}
	if got := len(m.FCTs()); got != int(st.Completed) {
		t.Errorf("%d FCT samples for %d completed flows", got, st.Completed)
	}
	// Completed flows carry the fields a report needs.
	for _, r := range reports {
		switch r.Shed {
		case "":
			if r.FCT <= 0 || r.Bytes == 0 || r.GoodputBps <= 0 || r.Subflows == 0 {
				t.Fatalf("incomplete completion report: %+v", r)
			}
			if r.Joules < 0 || math.IsNaN(r.Joules) {
				t.Fatalf("bad joules in %+v", r)
			}
		case ShedCapacity:
			if r.Bytes == 0 {
				t.Fatalf("capacity-shed report lost its offered size: %+v", r)
			}
		case ShedHorizon:
		default:
			t.Fatalf("unknown shed reason %q", r.Shed)
		}
	}
}

func TestManagerStreams(t *testing.T) {
	cfg := Config{
		Algorithm:  "lia",
		TotalFlows: 30,
		Arrivals:   Poisson{Rate: 50},
		Mix:        []ClassMix{{Stream, 1}},
		Stream:     StreamConfig{MeanDur: 2 * sim.Second},
	}
	m, reports := runChurn(t, 9, cfg)
	st := m.Stats()
	if st.Completed+st.Cut != 30 || st.ShedCapacity != 0 {
		t.Fatalf("stream accounting off: %+v", st)
	}
	var sawBytes bool
	for _, r := range reports {
		if r.Class != Stream {
			t.Fatalf("non-stream report %+v from all-stream mix", r)
		}
		if r.Shed == "" && r.Bytes > 0 {
			sawBytes = true
		}
	}
	if !sawBytes {
		t.Error("no completed stream delivered any bytes")
	}
}

func TestManagerDeterministic(t *testing.T) {
	cfg := Config{
		Algorithm:     "olia",
		TotalFlows:    250,
		MaxConcurrent: 30,
		Arrivals:      &MMPP2{RateLow: 100, RateHigh: 3000, MeanLow: 50 * sim.Millisecond, MeanHigh: 50 * sim.Millisecond},
		WebSizes:      SizeDist{Alpha: 1.2, Min: 8 << 10, Max: 64 << 10},
		BulkSizes:     SizeDist{Alpha: 1.3, Min: 64 << 10, Max: 256 << 10},
	}
	// Arrivals carry state, so each run gets a fresh copy.
	fresh := func() Config {
		c := cfg
		c.Arrivals = &MMPP2{RateLow: 100, RateHigh: 3000, MeanLow: 50 * sim.Millisecond, MeanHigh: 50 * sim.Millisecond}
		return c
	}
	_, a := runChurn(t, 5, fresh())
	_, b := runChurn(t, 5, fresh())
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("identical seeds produced different report streams")
	}
	_, c := runChurn(t, 6, fresh())
	if fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", c) {
		t.Fatal("different seeds produced identical report streams")
	}
}

// TestManagerInvariantsSampled wires a checker in and verifies the watched
// set stays bounded: completed flows are unwatched.
func TestManagerInvariantsSampled(t *testing.T) {
	eng := sim.NewEngine(21)
	ft, err := topo.NewFatTree(eng, topo.FatTreeConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	inv := check.New(eng)
	m := MustNew(eng, ft, Config{
		Algorithm:   "lia",
		TotalFlows:  120,
		Arrivals:    Poisson{Rate: 500},
		WebSizes:    SizeDist{Alpha: 1.2, Min: 8 << 10, Max: 32 << 10},
		BulkSizes:   SizeDist{Alpha: 1.3, Min: 32 << 10, Max: 128 << 10},
		Check:       inv,
		CheckSample: 8,
	})
	m.OnDrained = eng.Stop
	inv.Start()
	m.Start()
	eng.Run(300 * sim.Second)
	m.CutLive()
	inv.Final()
	if err := inv.Err(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if inv.Checks() == 0 {
		t.Error("checker never ran")
	}
	if st := m.Stats(); st.Completed+st.Cut != 120 {
		t.Fatalf("accounting: %+v", st)
	}
}

// TestChurn50kBounded is the acceptance-criteria run: >= 50,000 offered
// flows with >= 10,000 concurrent peak on a FatTree, under the supervisor's
// event budget, with memory bounded by peak concurrency (pooled slots, no
// per-flow retention beyond the percentile sample vectors).
func TestChurn50kBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-flow churn run is heavy; skipped in -short")
	}
	const total, cap = 50_000, 12_000
	var m *Manager
	var events uint64
	sup := supervise.New(supervise.Budget{Events: 500_000_000, HeapBytes: 4 << 30})
	rep := sup.Run(supervise.RunID{Seed: 1, Scenario: "fattree-overload", Phase: "churn50k"}, func(wd *supervise.Watchdog) error {
		eng := sim.NewEngine(1)
		wd.Attach(eng)
		ft, err := topo.NewFatTree(eng, topo.FatTreeConfig{K: 4})
		if err != nil {
			return err
		}
		inv := check.New(eng)
		m = MustNew(eng, ft, Config{
			Algorithm:     "lia",
			TotalFlows:    total,
			MaxConcurrent: cap,
			// Arrival storm far beyond the 16-host tree's drain rate, so
			// the live population climbs to the cap and admission sheds.
			Arrivals:  Poisson{Rate: 20_000},
			WebSizes:  SizeDist{Alpha: 1.2, Min: 4 << 10, Max: 64 << 10},
			BulkSizes: SizeDist{Alpha: 1.3, Min: 32 << 10, Max: 256 << 10},
			Mix:       []ClassMix{{Web, 0.85}, {Bulk, 0.1}, {Stream, 0.05}},
			Check:     inv,
		})
		m.OnDrained = eng.Stop
		inv.Start()
		m.Start()
		eng.Run(120 * sim.Second)
		m.CutLive()
		events = eng.Processed()
		inv.Final()
		return inv.Err()
	})
	if rep.Outcome.Failed() {
		t.Fatalf("supervised churn run failed: %+v", rep)
	}
	st := m.Stats()
	if st.Offered != total {
		t.Fatalf("offered %d, want %d", st.Offered, total)
	}
	if st.PeakLive < 10_000 {
		t.Errorf("peak live %d, want >= 10000", st.PeakLive)
	}
	if st.Completed+st.ShedCapacity+st.Cut != st.Offered {
		t.Errorf("silent flow loss: %d + %d + %d != %d",
			st.Completed, st.ShedCapacity, st.Cut, st.Offered)
	}
	if st.ShedCapacity == 0 {
		t.Error("overloaded run shed nothing")
	}
	// The memory bound: slots track peak concurrency (<= cap), never the
	// 50k offered flows.
	if m.SlotsAllocated() > cap {
		t.Errorf("slots %d exceed cap %d", m.SlotsAllocated(), cap)
	}
	t.Logf("offered=%d completed=%d shed=%d cut=%d peak=%d slots=%d events=%d",
		st.Offered, st.Completed, st.ShedCapacity, st.Cut, st.PeakLive,
		m.SlotsAllocated(), events)
}
