package flows

import (
	"fmt"

	"mptcpsim/internal/check"
	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// Net is the topology surface the manager places flows on: the datacenter
// topologies (FatTree, VL2, BCube) and the EC2 VPC all satisfy it.
type Net interface {
	Hosts() int
	Paths(src, dst, n int) []*netem.Path
}

// ClassMix is one class's share of the arrival stream.
type ClassMix struct {
	Class  Class
	Weight float64
}

// Report is one flow's lifecycle outcome: emitted exactly once per offered
// flow — on completion, on admission shed, or on the end-of-run cut — so
// offered load always reconciles against reported flows.
type Report struct {
	ID    uint64
	Class Class
	// At is the instant the outcome was decided (completion, shed or cut).
	At sim.Time
	// Bytes is what the network delivered (completed/cut flows) or what
	// the flow asked for (capacity-shed flows, which never sent anything).
	Bytes uint64
	// FCT is the flow completion time; for cut flows, the time alive.
	FCT sim.Time
	// GoodputBps is Bytes×8/FCT (0 when FCT is 0).
	GoodputBps float64
	// Joules is the flow's attributable energy: the power model evaluated
	// at the flow's operating point, minus the idle floor, integrated over
	// its lifetime.
	Joules float64
	// Subflows the flow ran with (0 for shed flows).
	Subflows int
	// Shed is "" for completed flows, "capacity" for admission drops and
	// "horizon" for flows cut alive at the end of the run.
	Shed string
}

// ShedCapacity and ShedHorizon are the Report.Shed reasons.
const (
	ShedCapacity = "capacity"
	ShedHorizon  = "horizon"
)

// Config parameterizes a Manager.
type Config struct {
	// Algorithm is the congestion-control algorithm every flow runs.
	Algorithm string
	// Subflows per flow (default 2).
	Subflows int
	// Arrivals drives session creation (default Poisson at 100 flows/s).
	Arrivals Arrivals
	// TotalFlows stops the arrival process after this many offered flows;
	// it must be positive (an open-loop run needs a defined population).
	TotalFlows int
	// MaxConcurrent is the admission cap: an arrival while this many flows
	// are live is shed with per-class accounting (0 = unlimited).
	MaxConcurrent int
	// Mix is the class mix (defaults to 70% web, 20% bulk, 10% stream).
	// Weights are relative; they need not sum to 1.
	Mix []ClassMix
	// WebSizes and BulkSizes are the per-class size distributions.
	WebSizes, BulkSizes SizeDist
	// Stream parameterizes streaming sessions.
	Stream StreamConfig
	// Model prices per-flow energy (default the i7 CPU model). Per-flow
	// joules are marginal: the model at the flow's operating point minus
	// its idle floor, so the shared idle burn is not multiply counted
	// across tens of thousands of flows.
	Model energy.Model
	// Emit, when set, receives every flow's Report as its outcome is
	// decided, in simulated-time order. The manager retains only bounded
	// aggregates; streaming per-flow records is the caller's business.
	Emit func(Report)
	// Check, when set, registers a deterministic sample of admitted flows
	// (every CheckSample-th, plus their paths' links) with the invariant
	// checker, unwatching each as it completes so the watched set stays
	// bounded by concurrency.
	Check *check.Invariants
	// CheckSample is the watch sampling stride (default 64).
	CheckSample int
}

func (c Config) withDefaults() Config {
	if c.Subflows <= 0 {
		c.Subflows = 2
	}
	if c.Arrivals == nil {
		c.Arrivals = Poisson{Rate: 100}
	}
	if len(c.Mix) == 0 {
		c.Mix = []ClassMix{{Web, 0.7}, {Bulk, 0.2}, {Stream, 0.1}}
	}
	if c.WebSizes == (SizeDist{}) {
		c.WebSizes = SizeDist{Alpha: 1.2, Min: 16 << 10, Max: 8 << 20}
	}
	if c.BulkSizes == (SizeDist{}) {
		c.BulkSizes = SizeDist{Alpha: 1.3, Min: 256 << 10, Max: 32 << 20}
	}
	c.Stream = c.Stream.withDefaults()
	if c.Model == nil {
		c.Model = energy.NewI7()
	}
	if c.CheckSample <= 0 {
		c.CheckSample = 64
	}
	return c
}

// Stats is the manager's bounded accounting: every offered flow lands in
// exactly one of Completed, ShedCapacity or Cut, so
// Offered == Completed + ShedCapacity + Cut once the run has drained (the
// zero-silent-loss contract callers should assert).
type Stats struct {
	Offered      uint64
	Admitted     uint64
	Completed    uint64
	ShedCapacity uint64
	Cut          uint64 // alive at CutLive (end of run)

	// Per-class splits, indexed by Class.
	OfferedByClass   [numClasses]uint64
	CompletedByClass [numClasses]uint64
	ShedByClass      [numClasses]uint64
	CutByClass       [numClasses]uint64

	// PeakLive is the maximum concurrent flow count observed.
	PeakLive int
	// OfferedBytes sums every offered flow's requested size (streams count
	// their produced bytes); AckedBytes sums what completed and cut flows
	// actually delivered. The gap is the shed/degraded load.
	OfferedBytes uint64
	AckedBytes   uint64
}

// flowSlot is one pooled per-flow record. Slots are recycled through a
// free list with a generation counter (the engine's timer-slab idiom), so
// a stale handle captured by an old flow's closure can never touch the
// slot's next tenant.
type flowSlot struct {
	gen      uint32
	id       uint64
	class    Class
	conn     *mptcp.Conn
	size     int64
	start    sim.Time
	subflows int
	watched  bool

	// Streaming state (Stream class only).
	streamEnd  sim.Time
	rung       int
	lastAcked  uint64
	chunkTimer sim.Timer
	endTimer   sim.Timer
}

// handle names a slot generation-safely.
type handle struct {
	idx int32
	gen uint32
}

// Manager owns the open-loop flow population on one engine: it draws
// arrivals, admits or sheds, creates and tears down real mptcp.Conns, and
// keeps bounded aggregate statistics (percentile sample vectors are one
// float per completed flow; per-flow state is recycled).
type Manager struct {
	eng *sim.Engine
	net Net
	cfg Config

	slots []flowSlot
	free  []int32
	live  int

	mixTotal float64
	stats    Stats
	drained  bool
	offering bool

	// Percentile samples for completed flows only — shed and cut flows are
	// accounted separately, not averaged in.
	fcts     []float64 // seconds
	goodputs []float64 // bits per second
	joules   []float64

	// OnDrained, when set, fires once the arrival process has offered
	// TotalFlows and the last live flow has finished — the natural moment
	// to stop the engine.
	OnDrained func()
}

// New creates a manager for net on eng. It validates the config eagerly so
// a misconfigured campaign unit fails at build time, not mid-run.
func New(eng *sim.Engine, net Net, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if net == nil || net.Hosts() < 2 {
		return nil, fmt.Errorf("flows: need a topology with at least 2 hosts")
	}
	if cfg.TotalFlows <= 0 {
		return nil, fmt.Errorf("flows: Config.TotalFlows must be positive, got %d", cfg.TotalFlows)
	}
	m := &Manager{eng: eng, net: net, cfg: cfg}
	for _, mx := range cfg.Mix {
		if mx.Weight < 0 || mx.Class >= numClasses {
			return nil, fmt.Errorf("flows: bad mix entry {%v %v}", mx.Class, mx.Weight)
		}
		m.mixTotal += mx.Weight
	}
	if m.mixTotal <= 0 {
		return nil, fmt.Errorf("flows: class mix has no weight")
	}
	m.fcts = make([]float64, 0, cfg.TotalFlows)
	m.goodputs = make([]float64, 0, cfg.TotalFlows)
	m.joules = make([]float64, 0, cfg.TotalFlows)
	return m, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(eng *sim.Engine, net Net, cfg Config) *Manager {
	m, err := New(eng, net, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Start begins the arrival process.
func (m *Manager) Start() {
	m.offering = true
	m.scheduleArrival()
}

// Stats returns the current accounting snapshot.
func (m *Manager) Stats() Stats { return m.stats }

// Live reports the current concurrent flow count.
func (m *Manager) Live() int { return m.live }

// SlotsAllocated reports how many pooled flow slots exist — bounded by peak
// concurrency, never by TotalFlows (the memory-boundedness tests pin this).
func (m *Manager) SlotsAllocated() int { return len(m.slots) }

// FCTs, Goodputs and Joules return the completed-flow percentile samples
// (one float64 per completed flow, in completion order).
func (m *Manager) FCTs() []float64     { return m.fcts }
func (m *Manager) Goodputs() []float64 { return m.goodputs }
func (m *Manager) Joules() []float64   { return m.joules }

func (m *Manager) scheduleArrival() {
	if int(m.stats.Offered) >= m.cfg.TotalFlows {
		m.offering = false
		m.maybeDrained()
		return
	}
	gap := m.cfg.Arrivals.Next(m.eng.Rand())
	m.eng.After(gap, m.arrive)
}

// arrive offers one flow: class, size and endpoints are always drawn in the
// same order, so the random sequence — and every later flow — is identical
// whether this one is admitted or shed.
func (m *Manager) arrive() {
	r := m.eng.Rand()
	class := m.drawClass(r)
	var size int64
	var streamDur sim.Time
	switch class {
	case Web:
		size = m.cfg.WebSizes.Sample(r)
	case Bulk:
		size = m.cfg.BulkSizes.Sample(r)
	case Stream:
		streamDur = expDraw(r, m.cfg.Stream.MeanDur)
		if streamDur < m.cfg.Stream.Chunk {
			streamDur = m.cfg.Stream.Chunk
		}
		// Offered bytes for a stream: the top rung over the session — what
		// the session would consume if the network kept up.
		top := m.cfg.Stream.Ladder[len(m.cfg.Stream.Ladder)-1]
		size = top * int64(streamDur) / int64(sim.Second) / 8
	}
	hosts := m.net.Hosts()
	src := r.Intn(hosts)
	dst := r.Intn(hosts - 1)
	if dst >= src {
		dst++
	}

	m.stats.Offered++
	m.stats.OfferedByClass[class]++
	m.stats.OfferedBytes += uint64(size)
	id := m.stats.Offered

	if m.cfg.MaxConcurrent > 0 && m.live >= m.cfg.MaxConcurrent {
		m.stats.ShedCapacity++
		m.stats.ShedByClass[class]++
		m.report(Report{
			ID: id, Class: class, At: m.eng.Now(), Bytes: uint64(size),
			Shed: ShedCapacity,
		})
		m.scheduleArrival()
		return
	}
	m.admit(id, class, size, streamDur, src, dst)
	m.scheduleArrival()
}

func (m *Manager) drawClass(r rng) Class {
	u := r.Float64() * m.mixTotal
	for _, mx := range m.cfg.Mix {
		if u < mx.Weight {
			return mx.Class
		}
		u -= mx.Weight
	}
	return m.cfg.Mix[len(m.cfg.Mix)-1].Class
}

// alloc takes a slot from the free list or grows the slab.
func (m *Manager) alloc() (int32, *flowSlot) {
	if n := len(m.free); n > 0 {
		idx := m.free[n-1]
		m.free = m.free[:n-1]
		return idx, &m.slots[idx]
	}
	m.slots = append(m.slots, flowSlot{})
	return int32(len(m.slots) - 1), &m.slots[len(m.slots)-1]
}

// release recycles a slot: the generation bump turns every outstanding
// handle into a tombstone, and the references the slot held are dropped so
// the connection's memory is reclaimable immediately.
func (m *Manager) release(idx int32) {
	s := &m.slots[idx]
	s.chunkTimer.Stop()
	s.endTimer.Stop()
	if s.watched && m.cfg.Check != nil {
		m.cfg.Check.Unwatch(s.conn)
	}
	*s = flowSlot{gen: s.gen + 1}
	m.free = append(m.free, idx)
	m.live--
	m.maybeDrained()
}

func (m *Manager) admit(id uint64, class Class, size int64, streamDur sim.Time, src, dst int) {
	idx, s := m.alloc()
	gen := s.gen
	h := handle{idx: idx, gen: gen}

	cfg := mptcp.Config{Algorithm: m.cfg.Algorithm}
	if class == Stream {
		cfg.AppLimited = true
	} else {
		cfg.TransferBytes = size
	}
	paths := m.net.Paths(src, dst, m.cfg.Subflows)
	conn := mptcp.MustNew(m.eng, cfg, id, paths...)

	s.id = id
	s.class = class
	s.conn = conn
	s.size = size
	s.start = m.eng.Now()
	s.subflows = len(conn.Subflows())

	m.stats.Admitted++
	m.live++
	if m.live > m.stats.PeakLive {
		m.stats.PeakLive = m.live
	}
	if m.cfg.Check != nil && (m.stats.Admitted-1)%uint64(m.cfg.CheckSample) == 0 {
		s.watched = true
		m.cfg.Check.Watch(fmt.Sprintf("flow%d", id), conn)
	}

	if class == Stream {
		s.streamEnd = s.start + streamDur
		s.rung = 0
		s.endTimer = m.eng.After(streamDur, func() { m.finishStream(h) })
		m.streamChunk(h)
	} else {
		conn.OnComplete = func(at sim.Time) { m.finish(h, at) }
	}
	conn.Start()
}

// slot resolves a handle, or nil if the flow it named is gone.
func (m *Manager) slot(h handle) *flowSlot {
	s := &m.slots[h.idx]
	if s.gen != h.gen {
		return nil
	}
	return s
}

// streamChunk produces one chunk at the current rung and adapts the rung to
// the goodput measured over the previous chunk, like a DASH player's
// throughput-rule ABR with a 0.8 safety margin.
func (m *Manager) streamChunk(h handle) {
	s := m.slot(h)
	if s == nil {
		return
	}
	chunk := m.cfg.Stream.Chunk
	acked := s.conn.AckedBytes()
	if delta := acked - s.lastAcked; s.lastAcked > 0 || delta > 0 {
		measured := float64(delta) * 8 / chunk.Seconds()
		rung := 0
		for i, rate := range m.cfg.Stream.Ladder {
			if 0.8*measured >= float64(rate) {
				rung = i
			}
		}
		s.rung = rung
	}
	s.lastAcked = acked
	rate := m.cfg.Stream.Ladder[s.rung]
	s.conn.Produce(rate * int64(chunk) / int64(sim.Second) / 8)
	s.chunkTimer = m.eng.After(chunk, func() { m.streamChunk(h) })
}

// finish closes out a completed finite transfer.
func (m *Manager) finish(h handle, at sim.Time) {
	s := m.slot(h)
	if s == nil {
		return
	}
	m.complete(s, at)
	m.release(h.idx)
}

// finishStream closes out a streaming session at its natural end.
func (m *Manager) finishStream(h handle) {
	s := m.slot(h)
	if s == nil {
		return
	}
	m.complete(s, m.eng.Now())
	m.release(h.idx)
}

// complete records one completed flow: percentile samples, per-class
// accounting and the streamed report.
func (m *Manager) complete(s *flowSlot, at sim.Time) {
	fct := at - s.start
	bytes := s.conn.AckedBytes()
	goodput := 0.0
	if fct > 0 {
		goodput = float64(bytes) * 8 / fct.Seconds()
	}
	j := m.flowJoules(s, goodput, fct)

	m.stats.Completed++
	m.stats.CompletedByClass[s.class]++
	m.stats.AckedBytes += bytes
	m.fcts = append(m.fcts, fct.Seconds())
	m.goodputs = append(m.goodputs, goodput)
	m.joules = append(m.joules, j)
	m.report(Report{
		ID: s.id, Class: s.class, At: at, Bytes: bytes, FCT: fct,
		GoodputBps: goodput, Joules: j, Subflows: s.subflows,
	})
}

// flowJoules prices a flow's attributable energy: the model at the flow's
// mean operating point minus the idle floor, over its lifetime. Per-flow
// meters would add one sampling event stream per live flow — a population
// of tens of thousands makes that the dominant event source — so the
// manager integrates analytically instead.
func (m *Manager) flowJoules(s *flowSlot, goodputBps float64, alive sim.Time) float64 {
	op := energy.Sample{
		ThroughputBps:  goodputBps,
		Subflows:       s.subflows,
		MeanRTTSeconds: s.conn.MeanSRTTSeconds(),
	}
	marginal := m.cfg.Model.Power(op) - m.cfg.Model.Power(energy.Sample{})
	if marginal < 0 {
		marginal = 0
	}
	return marginal * alive.Seconds()
}

// report streams one outcome to the Emit hook, if any.
func (m *Manager) report(rep Report) {
	if m.cfg.Emit != nil {
		m.cfg.Emit(rep)
	}
}

func (m *Manager) maybeDrained() {
	if m.drained || m.offering || m.live != 0 {
		return
	}
	m.drained = true
	if m.OnDrained != nil {
		m.OnDrained()
	}
}

// CutLive reports and releases every flow still alive — the end-of-run
// sweep that upholds the zero-silent-loss contract: a flow the horizon cut
// is accounted (Stats.Cut, Shed="horizon") with the bytes it delivered,
// never dropped from the books. After CutLive, Offered == Completed +
// ShedCapacity + Cut.
func (m *Manager) CutLive() {
	now := m.eng.Now()
	for idx := range m.slots {
		s := &m.slots[idx]
		if s.conn == nil {
			continue
		}
		alive := now - s.start
		bytes := s.conn.AckedBytes()
		goodput := 0.0
		if alive > 0 {
			goodput = float64(bytes) * 8 / alive.Seconds()
		}
		m.stats.Cut++
		m.stats.CutByClass[s.class]++
		m.stats.AckedBytes += bytes
		m.report(Report{
			ID: s.id, Class: s.class, At: now, Bytes: bytes, FCT: alive,
			GoodputBps: goodput, Joules: m.flowJoules(s, goodput, alive),
			Subflows: s.subflows, Shed: ShedHorizon,
		})
		m.release(int32(idx))
	}
}
