// Package flows is the population-scale open-loop workload layer: arrival
// processes (Poisson and 2-state MMPP) drive the creation of short- and
// long-lived MPTCP flows with heavy-tailed sizes (bounded Pareto for web and
// bulk transfers, a bitrate-ladder streaming model for video sessions), and
// a Manager owns the full flow lifecycle on a shared engine — admission,
// pooled per-flow state, completion accounting and per-flow FCT/goodput/
// energy reporting.
//
// The layer is open-loop on purpose: offered load is drawn independently of
// the network's state, so it can exceed capacity. Robustness is therefore
// part of the contract — a deterministic admission controller sheds flows
// beyond Config.MaxConcurrent with per-class drop accounting, flows still
// alive when the run ends are cut and reported (never silently lost), and
// per-flow state is recycled through a generation-counted slab so memory is
// bounded by peak concurrency, not by the total number of flows offered.
//
// Every random draw comes from the engine's RNG in a fixed order, so a run
// is fully determined by its seed regardless of admission outcomes or
// worker count.
package flows

import (
	"math"

	"mptcpsim/internal/sim"
)

// Class labels a flow's workload family; it drives the size model and the
// per-class admission accounting.
type Class uint8

const (
	// Web is a short request/response transfer (bounded Pareto sizes with
	// a light minimum — the heavy web-object tail).
	Web Class = iota
	// Bulk is a large background transfer (bounded Pareto with a megabyte
	// floor).
	Bulk
	// Stream is a bitrate-ladder video session: an app-limited connection
	// producing chunks at the highest ladder rung the measured goodput
	// sustains, for an exponentially distributed session duration.
	Stream

	numClasses = 3
)

// String returns the class label used in records and summaries.
func (c Class) String() string {
	switch c {
	case Web:
		return "web"
	case Bulk:
		return "bulk"
	case Stream:
		return "stream"
	default:
		return "unknown"
	}
}

// Classes lists the classes in declaration order, for deterministic
// iteration over per-class accounting.
func Classes() [numClasses]Class { return [numClasses]Class{Web, Bulk, Stream} }

// rng is the narrow randomness surface the samplers draw from; the engine's
// *rand.Rand satisfies it.
type rng interface {
	Float64() float64
	Intn(n int) int
}

// SizeDist is a bounded Pareto flow-size distribution on [Min, Max] bytes
// with tail index Alpha. Heavy-tailed but bounded: the unbounded Pareto's
// infinite-mean pathologies would make offered-load accounting meaningless.
type SizeDist struct {
	Alpha    float64
	Min, Max int64
}

// Sample draws one flow size by inverting the bounded-Pareto CDF.
func (d SizeDist) Sample(r rng) int64 {
	if d.Min <= 0 || d.Max <= d.Min || d.Alpha <= 0 {
		return d.Min
	}
	u := r.Float64()
	lh := math.Pow(float64(d.Min)/float64(d.Max), d.Alpha)
	x := float64(d.Min) / math.Pow(1-u*(1-lh), 1/d.Alpha)
	if x > float64(d.Max) {
		x = float64(d.Max)
	}
	return int64(x)
}

// Mean returns the distribution's analytic mean, for sizing offered load.
func (d SizeDist) Mean() float64 {
	if d.Min <= 0 || d.Max <= d.Min || d.Alpha <= 0 {
		return float64(d.Min)
	}
	a, l, h := d.Alpha, float64(d.Min), float64(d.Max)
	if a == 1 {
		return l * math.Log(h/l) / (1 - l/h)
	}
	lh := math.Pow(l/h, a)
	return math.Pow(l, a) / (1 - lh) * a / (a - 1) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

// Arrivals is a session arrival process: Next returns the gap until the
// next arrival, drawing from the given RNG. Implementations may carry
// state (MMPP2's modulating chain), so one instance belongs to one Manager.
type Arrivals interface {
	Next(r rng) sim.Time
}

// Poisson is a homogeneous Poisson arrival process with the given rate in
// flows per second: independent exponential inter-arrival gaps.
type Poisson struct {
	Rate float64 // arrivals per second
}

// Next draws one exponential gap.
func (p Poisson) Next(r rng) sim.Time {
	if p.Rate <= 0 {
		return sim.Time(math.MaxInt64 / 4)
	}
	return expDraw(r, sim.Time(float64(sim.Second)/p.Rate))
}

// MMPP2 is a 2-state Markov-modulated Poisson process: arrivals are Poisson
// at RateLow or RateHigh flows per second depending on the current state,
// and the state sojourns are exponential with the given means. It models
// arrival storms — bursts of RateHigh arrivals against a RateLow baseline.
// The zero state is low; the chain advances as gaps are drawn.
type MMPP2 struct {
	RateLow, RateHigh float64  // arrivals per second, per state
	MeanLow, MeanHigh sim.Time // mean state sojourn

	high    bool
	sojourn sim.Time // time left in the current state
}

// Next draws the gap to the next arrival, advancing the modulating chain
// through however many state changes the gap spans.
func (m *MMPP2) Next(r rng) sim.Time {
	var total sim.Time
	for i := 0; ; i++ {
		rate, mean := m.RateLow, m.MeanLow
		if m.high {
			rate, mean = m.RateHigh, m.MeanHigh
		}
		if mean <= 0 {
			mean = sim.Second
		}
		if m.sojourn <= 0 {
			m.sojourn = expDraw(r, mean)
		}
		var gap sim.Time
		if rate > 0 {
			gap = expDraw(r, sim.Time(float64(sim.Second)/rate))
		} else {
			gap = m.sojourn // silent state: skip straight to the flip
		}
		if gap < m.sojourn {
			m.sojourn -= gap
			return total + gap
		}
		total += m.sojourn
		m.sojourn = 0
		m.high = !m.high
		if i > 1<<20 { // both states silent: give up instead of spinning
			return total + sim.Time(math.MaxInt64/4)
		}
	}
}

// expDraw draws an exponential duration with the given mean.
func expDraw(r rng, mean sim.Time) sim.Time {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return sim.Time(float64(mean) * -math.Log(u))
}

// StreamConfig parameterizes the Stream class: a DASH-like session that
// produces chunks at one of the ladder's bitrates, stepping to the highest
// rung the measured goodput sustains (with a safety margin, as real ABR
// players do), for an exponentially distributed session duration.
type StreamConfig struct {
	// Ladder is the ascending bitrate ladder in bits per second.
	Ladder []int64
	// Chunk is the chunk duration; every chunk the session produces
	// Chunk×rate bits and re-evaluates the rung.
	Chunk sim.Time
	// MeanDur is the mean session duration (exponential draw, floored at
	// one chunk).
	MeanDur sim.Time
}

// withDefaults fills the zero values with a small 3-rung ladder, 1-second
// chunks and 8-second mean sessions.
func (s StreamConfig) withDefaults() StreamConfig {
	if len(s.Ladder) == 0 {
		s.Ladder = []int64{500e3, 1500e3, 4000e3}
	}
	if s.Chunk <= 0 {
		s.Chunk = sim.Second
	}
	if s.MeanDur <= 0 {
		s.MeanDur = 8 * sim.Second
	}
	return s
}
