// Package app provides application models on top of the MPTCP connection.
// The paper's future work names "energy-efficient designs for multimedia
// applications over MPTCP"; Stream implements that workload — a paced
// media source with a playback buffer — so the algorithms can be compared
// on streaming metrics (rebuffering, buffer health) as well as energy.
package app

import (
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
)

// StreamConfig parameterizes a media session.
type StreamConfig struct {
	// BitrateBps is the media encoding rate the source produces and the
	// player consumes.
	BitrateBps int64
	// Chunk is the production/playback granularity (default 100 ms).
	Chunk sim.Time
	// InitialBuffer is how much media the player buffers before starting
	// (default 2 s).
	InitialBuffer sim.Time
	// ResumeBuffer is how much media must accumulate after a stall before
	// playback resumes (default 1 s).
	ResumeBuffer sim.Time
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.BitrateBps == 0 {
		c.BitrateBps = 4_000_000
	}
	if c.Chunk == 0 {
		c.Chunk = 100 * sim.Millisecond
	}
	if c.InitialBuffer == 0 {
		c.InitialBuffer = 2 * sim.Second
	}
	if c.ResumeBuffer == 0 {
		c.ResumeBuffer = sim.Second
	}
	return c
}

// Stream drives an app-limited connection as a live media session and
// plays the delivered bytes out at the media rate, tracking stalls.
type Stream struct {
	eng  *sim.Engine
	cfg  StreamConfig
	conn *mptcp.Conn

	playing     bool
	started     bool
	startedAt   sim.Time
	playedBytes float64

	rebuffers    int
	stallSince   sim.Time
	stalledTotal sim.Time

	tickFn  func()
	stopped bool
}

// NewStream wraps conn (which must have been created with AppLimited set)
// in a media session.
func NewStream(eng *sim.Engine, conn *mptcp.Conn, cfg StreamConfig) *Stream {
	s := &Stream{eng: eng, cfg: cfg.withDefaults(), conn: conn}
	s.tickFn = s.tick
	return s
}

// Start begins producing and playing.
func (s *Stream) Start() {
	s.conn.Start()
	s.eng.ScheduleAfter(s.cfg.Chunk, s.tickFn)
}

// Stop halts the session after the current chunk.
func (s *Stream) Stop() { s.stopped = true }

func (s *Stream) tick() {
	if s.stopped {
		return
	}
	dt := s.cfg.Chunk
	// Produce the next chunk of media.
	s.conn.Produce(int64(float64(s.cfg.BitrateBps) * dt.Seconds() / 8))

	delivered := float64(s.conn.AckedBytes())
	bufferBytes := delivered - s.playedBytes
	bytesPerSec := float64(s.cfg.BitrateBps) / 8

	switch {
	case !s.started:
		if bufferBytes >= bytesPerSec*s.cfg.InitialBuffer.Seconds() {
			s.started = true
			s.playing = true
			s.startedAt = s.eng.Now()
		}
	case s.playing:
		need := bytesPerSec * dt.Seconds()
		if bufferBytes >= need {
			s.playedBytes += need
		} else {
			s.playing = false
			s.rebuffers++
			s.stallSince = s.eng.Now()
		}
	default: // stalled
		if bufferBytes >= bytesPerSec*s.cfg.ResumeBuffer.Seconds() {
			s.playing = true
			s.stalledTotal += s.eng.Now() - s.stallSince
		}
	}
	s.eng.ScheduleAfter(dt, s.tickFn)
}

// Started reports whether playback has begun.
func (s *Stream) Started() bool { return s.started }

// StartupDelay returns the time from Start to first playback (zero if
// playback never began).
func (s *Stream) StartupDelay() sim.Time { return s.startedAt }

// Rebuffers returns the number of playback stalls.
func (s *Stream) Rebuffers() int { return s.rebuffers }

// StalledTime returns the total time spent stalled (closed stalls only;
// an ongoing stall is counted up to now).
func (s *Stream) StalledTime() sim.Time {
	total := s.stalledTotal
	if s.started && !s.playing {
		total += s.eng.Now() - s.stallSince
	}
	return total
}

// PlayedSeconds returns the media time played out so far.
func (s *Stream) PlayedSeconds() float64 {
	return s.playedBytes * 8 / float64(s.cfg.BitrateBps)
}

// BufferSeconds returns the current playback buffer depth in media time.
func (s *Stream) BufferSeconds() float64 {
	return (float64(s.conn.AckedBytes()) - s.playedBytes) * 8 / float64(s.cfg.BitrateBps)
}

// RebufferRatio returns stalled time over elapsed wall time since playback
// started (0 before playback).
func (s *Stream) RebufferRatio() float64 {
	if !s.started {
		return 0
	}
	elapsed := s.eng.Now() - s.startedAt
	if elapsed <= 0 {
		return 0
	}
	return s.StalledTime().Seconds() / elapsed.Seconds()
}
