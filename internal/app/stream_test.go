package app

import (
	"testing"

	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

func streamOver(t *testing.T, eng *sim.Engine, paths []*netem.Path, bitrate int64) *Stream {
	t.Helper()
	conn, err := mptcp.New(eng, mptcp.Config{Algorithm: "lia", AppLimited: true}, 1, paths...)
	if err != nil {
		t.Fatal(err)
	}
	return NewStream(eng, conn, StreamConfig{BitrateBps: bitrate})
}

func twoPaths(eng *sim.Engine, rate int64) []*netem.Path {
	mk := func(name string) *netem.Path {
		fwd := netem.NewLink(eng, netem.LinkConfig{Name: name, Rate: rate, Delay: 10 * sim.Millisecond})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "r", Rate: rate, Delay: 10 * sim.Millisecond})
		return &netem.Path{Name: name, Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	}
	return []*netem.Path{mk("a"), mk("b")}
}

func TestStreamPlaysSmoothlyUnderCapacity(t *testing.T) {
	eng := sim.NewEngine(1)
	// 4 Mb/s media over 2x10 Mb/s paths: plenty of headroom.
	s := streamOver(t, eng, twoPaths(eng, 10*netem.Mbps), 4_000_000)
	s.Start()
	eng.Run(60 * sim.Second)

	if !s.Started() {
		t.Fatal("playback never started")
	}
	if s.Rebuffers() != 0 {
		t.Errorf("rebuffered %d times with 5x headroom", s.Rebuffers())
	}
	// ~2s initial buffer, then continuous playback.
	if d := s.StartupDelay(); d > 5*sim.Second {
		t.Errorf("startup delay %v, want a few seconds", d.Duration())
	}
	played := s.PlayedSeconds()
	if played < 50 {
		t.Errorf("played %.1f media-seconds of ~58 possible", played)
	}
}

func TestStreamRebuffersOverCapacity(t *testing.T) {
	eng := sim.NewEngine(1)
	// 12 Mb/s media over 2x4 Mb/s paths: undeliverable.
	s := streamOver(t, eng, twoPaths(eng, 4*netem.Mbps), 12_000_000)
	s.Start()
	eng.Run(60 * sim.Second)

	if !s.Started() {
		t.Fatal("playback never started (initial buffer eventually fills even slowly)")
	}
	if s.Rebuffers() == 0 {
		t.Error("no rebuffering although media rate exceeds capacity")
	}
	if s.RebufferRatio() <= 0.1 {
		t.Errorf("rebuffer ratio %.2f, want substantial", s.RebufferRatio())
	}
}

func TestStreamAppLimitedDoesNotBlast(t *testing.T) {
	eng := sim.NewEngine(1)
	paths := twoPaths(eng, 50*netem.Mbps)
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia", AppLimited: true}, 1, paths...)
	s := NewStream(eng, conn, StreamConfig{BitrateBps: 4_000_000})
	s.Start()
	eng.Run(30 * sim.Second)

	// The connection may only ship what the source produced.
	if int64(conn.AckedBytes()) > conn.ProducedBytes() {
		t.Errorf("acked %d > produced %d", conn.AckedBytes(), conn.ProducedBytes())
	}
	// And the source is the limit, not the network: goodput ~ bitrate.
	tput := conn.MeanThroughputBps()
	if tput < 3.2e6 || tput > 4.8e6 {
		t.Errorf("app-limited goodput %.1f Mb/s, want ~4", tput/1e6)
	}
}

func TestStreamOnHetWirelessWithCrossTraffic(t *testing.T) {
	// The future-work scenario: streaming on WiFi+4G under bursty cross
	// traffic; the session must start and keep the stall ratio bounded.
	// 4 Mb/s media: deliverable even during WiFi bursts, because the 64 KB
	// receive window caps the 200 ms-RTT LTE path at ~2.6 Mb/s and the
	// burst-squeezed WiFi adds ~2.
	eng := sim.NewEngine(3)
	het := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(0)},
		workload.ParetoConfig{RateBps: 8 * netem.Mbps}).Start()
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "dts-lia", AppLimited: true, RwndSegments: 45}, 1, het.Paths()...)
	s := NewStream(eng, conn, StreamConfig{BitrateBps: 4_000_000})
	s.Start()
	eng.Run(120 * sim.Second)

	if !s.Started() {
		t.Fatal("stream never started")
	}
	if r := s.RebufferRatio(); r > 0.35 {
		t.Errorf("rebuffer ratio %.2f, want mostly smooth playback", r)
	}
	if s.PlayedSeconds() < 50 {
		t.Errorf("played only %.1f media-seconds in 120 s", s.PlayedSeconds())
	}
}

func TestStreamStopHaltsTicks(t *testing.T) {
	eng := sim.NewEngine(1)
	s := streamOver(t, eng, twoPaths(eng, 10*netem.Mbps), 4_000_000)
	s.Start()
	eng.Run(5 * sim.Second)
	s.Stop()
	produced := s.conn.ProducedBytes()
	eng.Run(10 * sim.Second)
	if s.conn.ProducedBytes() != produced {
		t.Error("source kept producing after Stop")
	}
}
