package tcp

import "mptcpsim/internal/sim"

// RTTStats is the connection-grade round-trip estimator every subflow
// delegates to, modeled on quic-go's: a latest sample, an RFC 6298
// smoothed RTT with mean deviation, and a *windowed* minimum RTT that
// expires, so a path whose propagation delay ramps up (mobility, handover)
// does not pin delay-based algorithms to a stale floor forever.
//
// Sampling discipline lives with the caller: the subflow applies Karn's
// rule (no sample when the acknowledgement covers a retransmitted
// segment) and only forwards unambiguous samples here.
//
// The estimator follows the quic-go semantics exactly where they are
// defined:
//
//   - the minimum tracks the raw send delta, never the ack-delay-corrected
//     sample, so a peer reporting large ack delays cannot drive the floor
//     below the true propagation delay;
//   - the ack delay is subtracted from a sample only when the corrected
//     value would still be >= the current minimum;
//   - smoothing uses the standard EWMA gains alpha = 1/8, beta = 1/4.
//
// The min-RTT window is the one extension over quic-go's struct: instead
// of a lifetime minimum, the floor is the minimum over the trailing
// window, maintained with a Kathleen-Nichols-style streaming min filter
// (three timestamped estimates; O(1) per update). Window 0 keeps the
// quic-go lifetime-minimum behaviour.
type RTTStats struct {
	latest   sim.Time
	smoothed sim.Time
	meanDev  sim.Time
	window   sim.Time // 0 = lifetime minimum

	// The windowed min filter: est[0] is the current minimum, est[1] the
	// best since est[0] was recorded, est[2] the best since est[1]. Each
	// carries the time it was observed, so expiry is a comparison.
	est [3]minEstimate

	hasSample bool
}

type minEstimate struct {
	v  sim.Time
	at sim.Time
}

// SetWindow sets the min-RTT expiry window; 0 restores the lifetime
// minimum. Shrinking the window mid-connection only affects future
// updates.
func (r *RTTStats) SetWindow(w sim.Time) {
	if w < 0 {
		w = 0
	}
	r.window = w
}

// Window returns the configured min-RTT expiry window (0 = lifetime).
func (r *RTTStats) Window() sim.Time { return r.window }

// HasSample reports whether at least one valid sample has been taken.
func (r *RTTStats) HasSample() bool { return r.hasSample }

// LatestRTT returns the most recent (ack-delay-corrected) sample, 0
// before the first.
func (r *RTTStats) LatestRTT() sim.Time { return r.latest }

// SmoothedRTT returns the EWMA-smoothed RTT, 0 before the first sample.
func (r *RTTStats) SmoothedRTT() sim.Time { return r.smoothed }

// MeanDeviation returns the smoothed mean deviation (RFC 6298 RTTVAR).
func (r *RTTStats) MeanDeviation() sim.Time { return r.meanDev }

// MinRTT returns the minimum raw RTT over the trailing window (the
// lifetime minimum when no window is set), 0 before the first sample.
func (r *RTTStats) MinRTT() sim.Time {
	if !r.hasSample {
		return 0
	}
	return r.est[0].v
}

// SmoothedOrInitialRTT returns the smoothed RTT, or initial before the
// first sample.
func (r *RTTStats) SmoothedOrInitialRTT(initial sim.Time) sim.Time {
	if r.hasSample {
		return r.smoothed
	}
	return initial
}

// RTO returns the RFC 6298 retransmission timeout SRTT + 4·RTTVAR,
// clamped to [rtoMin, rtoMax]; before the first sample it returns rtoMax
// so callers fall back to their configured initial RTO explicitly.
func (r *RTTStats) RTO(rtoMin, rtoMax sim.Time) sim.Time {
	if !r.hasSample {
		return rtoMax
	}
	rto := r.smoothed + 4*r.meanDev
	if rto < rtoMin {
		rto = rtoMin
	}
	if rto > rtoMax {
		rto = rtoMax
	}
	return rto
}

// UpdateRTT takes one sample. sendDelta is the raw measured delta between
// first transmission and acknowledgement arrival; ackDelay is the delay
// the receiver reports having held the acknowledgement (0 when the peer
// acknowledges immediately, as the simulated receiver does); now is the
// current clock, anchoring the min window. Non-positive deltas are
// rejected. It reports whether the sample was accepted — the caller
// resets its RTO backoff exactly when it was (RFC 6298, 5.7).
func (r *RTTStats) UpdateRTT(sendDelta, ackDelay, now sim.Time) bool {
	if sendDelta <= 0 {
		return false
	}

	// The minimum tracks the raw delta (see the type comment).
	r.updateMin(sendDelta, now)

	// Correct for the reported ack delay only if the corrected sample
	// stays at or above the minimum; a coarse peer clock must not drag
	// the estimate below the propagation floor.
	sample := sendDelta
	if sample-r.est[0].v >= ackDelay {
		sample -= ackDelay
	}

	r.latest = sample
	if !r.hasSample {
		r.smoothed = sample
		r.meanDev = sample / 2
		r.hasSample = true
		return true
	}
	diff := r.smoothed - sample
	if diff < 0 {
		diff = -diff
	}
	r.meanDev = (3*r.meanDev + diff) / 4
	r.smoothed = (7*r.smoothed + sample) / 8
	return true
}

// updateMin runs the streaming min filter: a new overall minimum resets
// all three estimates; otherwise the sample refreshes the second/third
// estimates, and an expired front estimate shifts out.
func (r *RTTStats) updateMin(v, now sim.Time) {
	e := minEstimate{v: v, at: now}
	if !r.hasSample || v <= r.est[0].v {
		r.est[0], r.est[1], r.est[2] = e, e, e
		return
	}
	if v <= r.est[1].v {
		r.est[1], r.est[2] = e, e
	} else if v <= r.est[2].v {
		r.est[2] = e
	}
	if r.window > 0 && now-r.est[0].at > r.window {
		// The front minimum aged out: promote the fresher estimates. Chained
		// promotion covers the (rare) case where the runner-ups aged out
		// with it.
		r.est[0], r.est[1], r.est[2] = r.est[1], r.est[2], e
		if r.window > 0 && now-r.est[0].at > r.window {
			r.est[0], r.est[1] = r.est[1], r.est[2]
			if now-r.est[0].at > r.window {
				r.est[0] = e
			}
		}
	}
}
