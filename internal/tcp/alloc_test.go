package tcp

import (
	"testing"

	"mptcpsim/internal/core"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// allocCoord is a stubCoord whose Views does not allocate, so the measured
// window below exercises only the product hot path, not test scaffolding.
type allocCoord struct {
	stubCoord
	views [1]core.View
}

func (c *allocCoord) Views() []core.View {
	c.views[0] = c.sub.View()
	return c.views[:]
}

// TestSubflowSteadyStatePacketPathAllocs asserts the full data/ACK round
// trip — segment emission from the path pool, link queueing and forwarding,
// receiver SACK bookkeeping, ACK generation and the sender's per-ACK
// processing, including AIMD sawtooth losses and retransmissions — runs
// allocation-free once warmed up: the packet pool's free list covers the
// peak window after the first loss, and every slice (retransmit episode,
// reorder buffer, event heap, pool free list) has reached its steady
// capacity.
func TestSubflowSteadyStatePacketPathAllocs(t *testing.T) {
	eng := sim.NewEngine(1)
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 50 * netem.Mbps, Delay: 10 * sim.Millisecond, QueueLimit: 64})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 50 * netem.Mbps, Delay: 10 * sim.Millisecond, QueueLimit: 64})
	p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	coord := &allocCoord{stubCoord: stubCoord{alg: core.NewReno(), remaining: -1}}
	s := NewSubflow(eng, Config{}, coord, 1, 0, p)
	coord.sub = s
	s.Start()

	// Warm up through slow start and several loss episodes so all pools and
	// slices are at their sawtooth-peak capacity.
	eng.Run(30 * sim.Second)

	next := eng.Now()
	avg := testing.AllocsPerRun(50, func() {
		next += 100 * sim.Millisecond
		eng.Run(next)
	})
	if avg != 0 {
		t.Errorf("steady-state packet path allocates %.2f times per 100ms window, want 0", avg)
	}
}

// BenchmarkSubflowSteadyState drives the warmed-up data/ACK loop; allocs/op
// is the headline (must be 0), ns/op tracks per-event transport cost.
func BenchmarkSubflowSteadyState(b *testing.B) {
	eng := sim.NewEngine(1)
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 50 * netem.Mbps, Delay: 10 * sim.Millisecond, QueueLimit: 64})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 50 * netem.Mbps, Delay: 10 * sim.Millisecond, QueueLimit: 64})
	p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	coord := &allocCoord{stubCoord: stubCoord{alg: core.NewReno(), remaining: -1}}
	s := NewSubflow(eng, Config{}, coord, 1, 0, p)
	coord.sub = s
	s.Start()
	eng.Run(30 * sim.Second)

	b.ReportAllocs()
	b.ResetTimer()
	next := eng.Now()
	for i := 0; i < b.N; i++ {
		next += sim.Millisecond
		eng.Run(next)
	}
}
