package tcp

import (
	"testing"

	"mptcpsim/internal/sim"
)

const ms = sim.Millisecond

// TestRTTStatsFirstSample pins the RFC 6298 / quic-go initialization:
// smoothed = sample, meanDev = sample/2.
func TestRTTStatsFirstSample(t *testing.T) {
	var r RTTStats
	if r.HasSample() {
		t.Fatal("HasSample true before any sample")
	}
	if r.MinRTT() != 0 || r.SmoothedRTT() != 0 || r.LatestRTT() != 0 {
		t.Fatal("zero-value estimator reports non-zero RTTs")
	}
	if got := r.SmoothedOrInitialRTT(100 * ms); got != 100*ms {
		t.Fatalf("SmoothedOrInitialRTT before sample = %v, want initial", got)
	}
	if !r.UpdateRTT(300*ms, 0, 0) {
		t.Fatal("valid sample rejected")
	}
	if got := r.SmoothedRTT(); got != 300*ms {
		t.Errorf("smoothed after first sample = %v, want 300ms", got)
	}
	if got := r.MeanDeviation(); got != 150*ms {
		t.Errorf("meanDev after first sample = %v, want sample/2 = 150ms", got)
	}
	if got := r.LatestRTT(); got != 300*ms {
		t.Errorf("latest = %v, want 300ms", got)
	}
	if got := r.MinRTT(); got != 300*ms {
		t.Errorf("min = %v, want 300ms", got)
	}
	if got := r.SmoothedOrInitialRTT(100 * ms); got != 300*ms {
		t.Errorf("SmoothedOrInitialRTT after sample = %v, want smoothed", got)
	}
}

// TestRTTStatsSmoothing pins the EWMA gains byte-for-byte against the
// quic-go arithmetic: smoothed' = (7·smoothed + sample)/8, meanDev' =
// (3·meanDev + |smoothed − sample|)/4, evaluated in integer nanoseconds.
func TestRTTStatsSmoothing(t *testing.T) {
	var r RTTStats
	samples := []sim.Time{300 * ms, 300 * ms, 200 * ms, 287 * ms}
	smoothed, meanDev := samples[0], samples[0]/2
	r.UpdateRTT(samples[0], 0, 0)
	for _, s := range samples[1:] {
		diff := smoothed - s
		if diff < 0 {
			diff = -diff
		}
		meanDev = (3*meanDev + diff) / 4
		smoothed = (7*smoothed + s) / 8
		r.UpdateRTT(s, 0, 0)
		if r.SmoothedRTT() != smoothed || r.MeanDeviation() != meanDev {
			t.Fatalf("after sample %v: smoothed=%v meanDev=%v, want %v / %v",
				s, r.SmoothedRTT(), r.MeanDeviation(), smoothed, meanDev)
		}
	}
	if got := r.MinRTT(); got != 200*ms {
		t.Errorf("min = %v, want 200ms", got)
	}
}

// TestRTTStatsAckDelay pins the quic-go ack-delay rules: the minimum
// tracks the raw send delta, and the delay is subtracted only when the
// corrected sample stays at or above the minimum.
func TestRTTStatsAckDelay(t *testing.T) {
	var r RTTStats

	// First sample: sample − min == 0 < ackDelay, so no correction — a
	// reported delay cannot push the first estimate below the measurement.
	r.UpdateRTT(200*ms, 80*ms, 0)
	if got := r.LatestRTT(); got != 200*ms {
		t.Fatalf("first latest = %v, want uncorrected 200ms", got)
	}
	if got := r.MinRTT(); got != 200*ms {
		t.Fatalf("first min = %v, want raw 200ms", got)
	}

	// 300ms with 50ms ack delay: 300−200 ≥ 50, correction applies.
	r.UpdateRTT(300*ms, 50*ms, 0)
	if got := r.LatestRTT(); got != 250*ms {
		t.Errorf("corrected latest = %v, want 250ms", got)
	}
	if got := r.MinRTT(); got != 200*ms {
		t.Errorf("min moved to %v after corrected sample, want 200ms", got)
	}

	// 210ms with 50ms ack delay: 210−200 < 50, correction would cut below
	// the floor — use the raw sample.
	r.UpdateRTT(210*ms, 50*ms, 0)
	if got := r.LatestRTT(); got != 210*ms {
		t.Errorf("under-floor latest = %v, want uncorrected 210ms", got)
	}

	// A raw delta below the old min lowers the min even with a huge
	// reported delay (min ignores ack delay entirely).
	r.UpdateRTT(150*ms, 500*ms, 0)
	if got := r.MinRTT(); got != 150*ms {
		t.Errorf("min = %v after lower raw delta, want 150ms", got)
	}
}

// TestRTTStatsRejectsNonPositive pins Karn-adjacent input hygiene: zero
// and negative deltas are rejected without touching any state.
func TestRTTStatsRejectsNonPositive(t *testing.T) {
	var r RTTStats
	r.UpdateRTT(100*ms, 0, 0)
	for _, bad := range []sim.Time{0, -1, -100 * ms} {
		if r.UpdateRTT(bad, 0, 0) {
			t.Errorf("UpdateRTT(%v) accepted", bad)
		}
	}
	if r.SmoothedRTT() != 100*ms || r.LatestRTT() != 100*ms || r.MinRTT() != 100*ms {
		t.Error("rejected sample mutated the estimator")
	}
}

// TestRTTStatsWindowExpiry exercises the one extension over quic-go: a
// min-RTT observation older than the window expires and the floor rises to
// the best fresher estimate.
func TestRTTStatsWindowExpiry(t *testing.T) {
	var r RTTStats
	r.SetWindow(10 * sim.Second)

	r.UpdateRTT(100*ms, 0, 0)
	// Steady 150ms samples, one per second.
	for i := 1; i <= 10; i++ {
		now := sim.Time(i) * sim.Second
		r.UpdateRTT(150*ms, 0, now)
		if now-0 <= 10*sim.Second && r.MinRTT() != 100*ms {
			t.Fatalf("t=%ds: min = %v, want 100ms while inside the window", i, r.MinRTT())
		}
	}
	// t = 11s: the 100ms observation at t=0 is now older than the window.
	r.UpdateRTT(150*ms, 0, 11*sim.Second)
	if got := r.MinRTT(); got != 150*ms {
		t.Errorf("min = %v after the floor expired, want 150ms", got)
	}

	// A new lower sample resets the floor immediately.
	r.UpdateRTT(120*ms, 0, 12*sim.Second)
	if got := r.MinRTT(); got != 120*ms {
		t.Errorf("min = %v after lower sample, want 120ms", got)
	}
}

// TestRTTStatsLifetimeMinWithoutWindow pins the window-0 behaviour: the
// minimum never expires, matching quic-go's struct exactly.
func TestRTTStatsLifetimeMinWithoutWindow(t *testing.T) {
	var r RTTStats
	r.UpdateRTT(100*ms, 0, 0)
	for i := 1; i <= 1000; i++ {
		r.UpdateRTT(500*ms, 0, sim.Time(i)*sim.Second)
	}
	if got := r.MinRTT(); got != 100*ms {
		t.Errorf("lifetime min = %v, want 100ms forever with no window", got)
	}
	if r.Window() != 0 {
		t.Errorf("Window() = %v, want 0", r.Window())
	}
	r.SetWindow(-5)
	if r.Window() != 0 {
		t.Error("negative SetWindow did not clamp to 0")
	}
}

// TestRTTStatsStaircaseExpiry walks a rising delay staircase through a
// short window: the floor must follow the staircase up with at most one
// window of lag, never pinning to the global minimum.
func TestRTTStatsStaircaseExpiry(t *testing.T) {
	var r RTTStats
	r.SetWindow(2 * sim.Second)
	now := sim.Time(0)
	for step := 0; step < 5; step++ {
		rtt := sim.Time(100+50*step) * ms
		for i := 0; i < 40; i++ {
			now += 100 * ms
			r.UpdateRTT(rtt, 0, now)
		}
		if got := r.MinRTT(); got != rtt {
			t.Fatalf("step %d (rtt=%v): min = %v, want the step's own floor", step, rtt, got)
		}
	}
}

// TestRTTStatsRTO pins the RFC 6298 timeout: smoothed + 4·meanDev clamped
// to [rtoMin, rtoMax], rtoMax before the first sample.
func TestRTTStatsRTO(t *testing.T) {
	var r RTTStats
	if got := r.RTO(200*ms, 60*sim.Second); got != 60*sim.Second {
		t.Errorf("RTO before first sample = %v, want rtoMax", got)
	}
	r.UpdateRTT(100*ms, 0, 0)
	// smoothed=100ms, meanDev=50ms → raw RTO 300ms.
	if got := r.RTO(200*ms, 60*sim.Second); got != 300*ms {
		t.Errorf("RTO = %v, want 300ms", got)
	}
	if got := r.RTO(400*ms, 60*sim.Second); got != 400*ms {
		t.Errorf("RTO = %v, want clamped up to rtoMin", got)
	}
	if got := r.RTO(0, 250*ms); got != 250*ms {
		t.Errorf("RTO = %v, want clamped down to rtoMax", got)
	}
}

// FuzzUpdateRTT drives the estimator with arbitrary sample sequences and
// asserts its structural invariants hold regardless of input.
func FuzzUpdateRTT(f *testing.F) {
	f.Add(int64(300*ms), int64(50*ms), int64(0), int64(0))
	f.Add(int64(100*ms), int64(0), int64(sim.Second), int64(10*sim.Second))
	f.Add(int64(-5), int64(7), int64(3), int64(-1))
	f.Add(int64(1), int64(1<<62), int64(1<<62), int64(1))
	f.Fuzz(func(t *testing.T, d1, ackDelay, step, window int64) {
		// Bound everything to ±1h of simulated time: samples are clock
		// deltas, so magnitudes beyond the engine horizon are unreachable
		// and would only exercise int64 overflow in the EWMA arithmetic.
		const hour = int64(3600 * sim.Second)
		d1 %= hour
		ackDelay %= hour
		window %= hour
		step %= hour
		if step < 0 {
			step = -step
		}
		var r RTTStats
		r.SetWindow(sim.Time(window))
		now := sim.Time(0)
		// Derive a short deterministic sample sequence from the inputs.
		deltas := []sim.Time{sim.Time(d1), sim.Time(d1 / 2), sim.Time(d1) + sim.Time(ackDelay), sim.Time(d1 * 3)}
		for _, d := range deltas {
			accepted := r.UpdateRTT(d, sim.Time(ackDelay), now)
			if accepted != (d > 0) {
				t.Fatalf("UpdateRTT(%d) accepted=%v", d, accepted)
			}
			if step > 0 {
				now += sim.Time(step)
			}
			if !r.HasSample() {
				continue
			}
			if r.MinRTT() <= 0 {
				t.Fatalf("MinRTT = %v not positive after a sample", r.MinRTT())
			}
			if r.LatestRTT() <= 0 {
				t.Fatalf("LatestRTT = %v not positive after a sample", r.LatestRTT())
			}
			if accepted && r.MinRTT() > d {
				t.Fatalf("MinRTT = %v above the raw sample %v", r.MinRTT(), d)
			}
			if r.MeanDeviation() < 0 {
				t.Fatalf("MeanDeviation = %v negative", r.MeanDeviation())
			}
			if rto := r.RTO(200*ms, 60*sim.Second); rto < 200*ms || rto > 60*sim.Second {
				t.Fatalf("RTO = %v outside [rtoMin, rtoMax]", rto)
			}
		}
	})
}
