package tcp

import (
	"testing"

	"mptcpsim/internal/core"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// quietSubflow builds a subflow whose RTO cannot fire inside the test
// horizon, so hand-crafted ACKs fully control the estimator (no go-back-N
// resends sneak real traffic — and real echoes — onto the path).
func quietSubflow(eng *sim.Engine) (*Subflow, *netem.Path) {
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond, QueueLimit: 100})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond, QueueLimit: 100})
	p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	coord := &stubCoord{alg: core.NewReno(), remaining: 0}
	s := NewSubflow(eng, Config{RTOInit: 50 * sim.Second, RTOMin: 50 * sim.Second, RTOMax: 60 * sim.Second, DisableFailover: true}, coord, 1, 0, p)
	coord.sub = s
	return s, p
}

// craftAck delivers a hand-built cumulative ACK straight to the subflow.
func craftAck(s *Subflow, p *netem.Path, ack int64, echoedAt sim.Time) {
	pk := p.Pool().Get()
	pk.IsAck = true
	pk.Ack = ack
	pk.SackSeq = ack - 1
	pk.Size = 52
	pk.EchoedAt = echoedAt
	s.Receive(pk)
}

// TestKarnSkipsAmbiguousSample is the failing-before regression for the
// Karn fix: a cumulative ACK that covers a retransmitted segment carries an
// ambiguous timestamp (it may echo the first transmission), and sampling it
// used to blow SRTT and the RTO up by the whole loss-episode duration.
func TestKarnSkipsAmbiguousSample(t *testing.T) {
	eng := sim.NewEngine(1)
	s, p := quietSubflow(eng)
	// Pretend ten segments are in flight.
	s.nextSeq, s.maxSent = 10, 10

	// t=20ms: a clean ACK of segment 0 (sent at t=0) → one exact 20ms
	// sample; SRTT pins to 20ms.
	eng.Schedule(20*sim.Millisecond, func() { craftAck(s, p, 1, 0) })
	// Segment 1 is retransmitted during a loss episode, and the timer has
	// backed off meanwhile.
	eng.Schedule(21*sim.Millisecond, func() {
		s.noteRetransmitted(1)
		s.backoff = 3
	})
	// t=5s: the cumulative ACK finally covers the retransmitted segment,
	// echoing the FIRST transmission's timestamp — a 5-second "sample".
	eng.Schedule(5*sim.Second, func() { craftAck(s, p, 2, 0) })
	eng.Run(5500 * sim.Millisecond)

	if got := s.SRTT(); got != 20*sim.Millisecond {
		t.Errorf("SRTT = %v after ambiguous ACK, want 20ms untouched (Karn)", got.Duration())
	}
	if got := s.LastRTT(); got != 20*sim.Millisecond {
		t.Errorf("LastRTT = %v, want 20ms: the ambiguous sample must be skipped", got.Duration())
	}
	if got := s.RTO(); got != 50*sim.Second {
		t.Errorf("RTO = %v recomputed from an ambiguous sample, want untouched 50s", got.Duration())
	}
	// RFC 6298 5.7: only a VALID sample may reset the timer backoff; a bare
	// cumulative-ACK advance (this one was Karn-suppressed) must not.
	if s.backoff != 3 {
		t.Errorf("backoff = %d after Karn-suppressed ACK, want 3 preserved", s.backoff)
	}
}

// TestValidSampleResetsBackoff is the positive half of RFC 6298 5.7: the
// first unambiguous sample after a loss episode resets the exponential
// backoff and recomputes the RTO.
func TestValidSampleResetsBackoff(t *testing.T) {
	eng := sim.NewEngine(1)
	s, p := quietSubflow(eng)
	s.nextSeq, s.maxSent = 10, 10
	s.backoff = 4

	// The ACK covers only fresh data (nothing in s.retransmitted below it):
	// a clean 20ms sample.
	eng.Schedule(5*sim.Second, func() { craftAck(s, p, 1, 5*sim.Second-20*sim.Millisecond) })
	eng.Run(6 * sim.Second)

	if s.backoff != 0 {
		t.Errorf("backoff = %d after a valid RTT sample, want 0", s.backoff)
	}
	if got := s.SRTT(); got != 20*sim.Millisecond {
		t.Errorf("SRTT = %v, want 20ms", got.Duration())
	}
	if got := s.RTO(); got != 50*sim.Second {
		t.Errorf("RTO = %v, want clamped to RTOMin=50s", got.Duration())
	}
}

// TestRTOBackoffSequence pins the RFC 6298 §5 worked sequence end to end:
// consecutive timeouts double the armed timeout 1s → 2s → 4s → 8s (RTOInit
// with no samples), and the next valid sample collapses it back to the
// freshly computed RTO.
func TestRTOBackoffSequence(t *testing.T) {
	eng := sim.NewEngine(1)
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond, LossProb: 1})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond})
	p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	coord := &stubCoord{alg: core.NewReno(), remaining: -1}
	s := NewSubflow(eng, Config{DisableFailover: true}, coord, 1, 0, p)
	coord.sub = s
	s.Start()

	// With RTOInit=1s and every packet lost, timeouts land at t=1,3,7,15s —
	// the doubling staircase. Record each episode's instant.
	var at []sim.Time
	want := []sim.Time{sim.Second, 3 * sim.Second, 7 * sim.Second, 15 * sim.Second}
	sampleTimeouts := func() {
		to := s.Stats().Timeouts
		if int(to) > len(at) {
			at = append(at, eng.Now())
		}
	}
	var poll func()
	poll = func() {
		sampleTimeouts()
		if eng.Now() < 16*sim.Second {
			eng.ScheduleAfter(sim.Millisecond, poll)
		}
	}
	eng.Schedule(0, poll)
	eng.Run(16 * sim.Second)

	if len(at) < len(want) {
		t.Fatalf("observed %d timeouts, want at least %d", len(at), len(want))
	}
	for i, w := range want {
		if at[i] != w {
			t.Errorf("timeout %d at %v, want %v (exponential backoff broken)", i, at[i].Duration(), w.Duration())
		}
	}

	// Now the path "heals" (hand-delivered ACKs; the link stays black).
	// The first ACK covers the blackout's go-back-N resends, so Karn keeps
	// it from sampling — backoff must survive it.
	if s.backoff == 0 {
		t.Fatal("backoff did not accumulate during the blackout")
	}
	backoffBefore := s.backoff
	craftAck(s, p, s.MaxSent(), 0)
	if s.backoff != backoffBefore {
		t.Errorf("backoff = %d after ambiguous post-blackout ACK, want %d preserved", s.backoff, backoffBefore)
	}
	// That ACK moved the send point past every retransmission, so the next
	// ACK covers only fresh data: a valid sample, and the backoff collapses.
	if s.NextSeq() <= s.Acked() {
		t.Fatal("no fresh data sent after the recovery ACK")
	}
	craftAck(s, p, s.Acked()+1, eng.Now()-20*sim.Millisecond)
	if s.backoff != 0 {
		t.Errorf("backoff = %d after valid sample, want 0", s.backoff)
	}
	if got := s.RTO(); got != 200*sim.Millisecond {
		t.Errorf("RTO = %v after 20ms sample, want RTOMin=200ms", got.Duration())
	}
}

// TestBaseRTTWindowExpiresStaleFloor is the failing-before regression for
// the windowed min-RTT: when the path's propagation delay ramps up (fault
// injection, handover), the lifetime-minimum baseRTT used to pin
// delay-based algorithms to the old floor forever. With the window, the
// floor must follow the path within one window length.
func TestBaseRTTWindowExpiresStaleFloor(t *testing.T) {
	eng := sim.NewEngine(1)
	// A short queue (20 packets ≈ 4.8ms at 50 Mbps) keeps queueing delay
	// small next to the 10ms propagation floor, so the windowed minimum
	// tracks propagation, not standing queue.
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 50 * netem.Mbps, Delay: 5 * sim.Millisecond, QueueLimit: 20})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 50 * netem.Mbps, Delay: 5 * sim.Millisecond, QueueLimit: 20})
	p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	coord := &stubCoord{alg: core.NewReno(), remaining: -1}
	s := NewSubflow(eng, Config{MinRTTWindow: 5 * sim.Second}, coord, 1, 0, p)
	coord.sub = s
	s.Start()

	// Let the estimator learn the 10ms floor, then ramp the propagation
	// delay to 5× at t=10s (a handover to a far-away gateway).
	eng.Schedule(10*sim.Second, func() {
		fwd.SetDelay(25 * sim.Millisecond)
		rev.SetDelay(25 * sim.Millisecond)
	})
	var baseBefore sim.Time
	eng.Schedule(10*sim.Second, func() { baseBefore = s.BaseRTT() })
	eng.Run(25 * sim.Second)

	if baseBefore <= 0 || baseBefore > 15*sim.Millisecond {
		t.Fatalf("pre-ramp BaseRTT = %v, want ≈10ms floor", baseBefore.Duration())
	}
	// 15 s after the ramp — three windows — the stale 10ms floor must have
	// expired; with the old lifetime minimum BaseRTT would still equal
	// baseBefore.
	if got := s.BaseRTT(); got < 50*sim.Millisecond {
		t.Errorf("BaseRTT = %v long after the delay ramp, want ≥ the new 50ms floor (stale floor never expired)", got.Duration())
	}
}
