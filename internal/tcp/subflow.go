package tcp

import (
	"sort"

	"mptcpsim/internal/core"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/trace"
)

// Coordinator is the connection-level coordination a subflow needs: access
// to the shared congestion-control algorithm and the sibling subflows'
// state, admission of new data (finite transfers, connection-level receive
// window), and progress notifications.
type Coordinator interface {
	// Alg returns the connection's congestion-control algorithm.
	Alg() core.Algorithm
	// Views returns the current state of every subflow; index = subflow ID.
	Views() []core.View
	// AllowSend reports whether subflow r may put one new segment in
	// flight (data remains and the connection-level window has room).
	AllowSend(r int) bool
	// NoteSend records that subflow r sent one new segment.
	NoteSend(r int)
	// NoteAcked records that pkts segments of subflow r were newly acked.
	NoteAcked(r int, pkts int)
	// NoteFailed records that subflow r declared its path dead with unacked
	// segments still outstanding; the connection re-injects that much data
	// onto surviving subflows.
	NoteFailed(r int, unacked int64)
	// NoteRevived records that subflow r's path healed and it resumed.
	NoteRevived(r int)
}

// State is the failover state of a subflow.
type State int

const (
	// StateActive is normal operation.
	StateActive State = iota
	// StateDead means the path failed (FailTimeouts consecutive RTO
	// episodes with no cumulative-ACK progress); the subflow is frozen and
	// its unacked data has been handed back for re-injection.
	StateDead
	// StateProbing means the subflow is dead but has begun sending
	// exponentially backed-off probe retransmissions to detect healing.
	StateProbing
)

// String returns the lower-case state name.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateDead:
		return "dead"
	case StateProbing:
		return "probing"
	}
	return "unknown"
}

// Stats are cumulative subflow counters.
type Stats struct {
	PktsSent    uint64 // new segments (excluding retransmissions)
	PktsRtx     uint64
	PktsAcked   uint64
	LossEvents  uint64 // fast-retransmit episodes
	Timeouts    uint64
	RoundTrips  uint64
	MarkedAcked uint64 // ECE-carrying ACK arrivals
	Fails       uint64 // path-failure declarations (K consecutive RTOs)
	Probes      uint64 // probe segments sent while dead
	Revivals    uint64 // dead → active transitions
}

// Subflow is one TCP sender over one path, with selective acknowledgement:
// the receiver reports each arriving segment, so the sender retransmits
// exactly the holes (RFC 6675-style pipe accounting) and recovers multiple
// losses within one round trip, as SACK-enabled kernels do. It implements
// netem.Endpoint to consume ACKs coming back over the path's reverse
// direction.
type Subflow struct {
	eng   *sim.Engine
	cfg   Config
	coord Coordinator
	id    int
	flow  uint64
	path  *netem.Path
	rx    *Receiver

	cwnd     float64
	ssthresh float64
	nextSeq  int64
	maxSent  int64 // highest nextSeq reached; sends below it are re-sends
	cumAck   int64

	// sacked holds, sorted, the segments above cumAck the receiver has
	// reported; retransmitted holds, sorted, the holes already resent this
	// episode (the scan cursor makes inserts tail-appends in practice);
	// scanFrom remembers how far the hole scan has progressed, so each
	// sequence number is examined once per episode rather than once per
	// ACK (heavy-loss periods would otherwise make recovery quadratic).
	sacked        []int64
	retransmitted []int64
	scanFrom      int64

	inRecovery bool
	recover    int64

	// rtt is the shared estimator (smoothed RTT, mean deviation, windowed
	// min); the subflow enforces Karn's rule before feeding it samples.
	// rto caches the RFC 6298 timeout recomputed on every accepted sample;
	// backoff is the exponential timer backoff, reset only by a valid
	// sample (RFC 6298, 5.7), never by a bare cumulative-ACK advance.
	rtt     RTTStats
	rto     sim.Time
	backoff uint

	// Lazy retransmission timer: rtoDeadline moves forward on every ACK,
	// but the engine event only fires at the old deadline and reschedules
	// itself, so rearming costs no heap operations (the standard
	// simulator/kernel trick).
	rtoDeadline sim.Time
	rtoArmed    bool
	rtoTickFn   func()

	// Failover: consecRTO counts RTO episodes since the last cumulative-ACK
	// advance; at cfg.FailTimeouts the subflow freezes (state leaves
	// StateActive) and probes the path at probeIval, doubling up to RTOMax.
	state       State
	consecRTO   int
	probeIval   sim.Time
	probeTickFn func()
	transitions trace.Timeline

	price    float64
	roundEnd int64

	// view caches the last snapshot handed to the algorithm; every mutation
	// of a field View exposes marks it dirty, so the per-ack Views() fan-out
	// rebuilds only subflows that actually changed (the float conversions in
	// the rebuild dominate the per-ack cost otherwise).
	view      core.View
	viewDirty bool

	stats Stats
}

// NewSubflow wires a sender over path for subflow id of coordinator coord.
// The matching receiver is created automatically at the far end.
func NewSubflow(eng *sim.Engine, cfg Config, coord Coordinator, flow uint64, id int, path *netem.Path) *Subflow {
	cfg = cfg.withDefaults()
	s := &Subflow{
		eng:       eng,
		cfg:       cfg,
		coord:     coord,
		id:        id,
		flow:      flow,
		path:      path,
		cwnd:      cfg.InitialCwnd,
		ssthresh:  1 << 30,
		rto:       cfg.RTOInit,
		viewDirty: true,
	}
	s.rtoTickFn = s.rtoTick
	s.probeTickFn = s.probeTick
	if w := cfg.MinRTTWindow; w > 0 {
		s.rtt.SetWindow(w)
	}
	s.rx = &Receiver{eng: eng, sub: s}
	return s
}

// Start begins transmitting; call once after the connection is assembled.
func (s *Subflow) Start() { s.trySend() }

// ID returns the subflow index within its connection.
func (s *Subflow) ID() int { return s.id }

// Path returns the subflow's route.
func (s *Subflow) Path() *netem.Path { return s.path }

// Stats returns a copy of the subflow's counters.
func (s *Subflow) Stats() Stats { return s.stats }

// Config returns the subflow's transport parameters with defaults applied.
func (s *Subflow) Config() Config { return s.cfg }

// Cwnd returns the current congestion window in segments.
func (s *Subflow) Cwnd() float64 { return s.cwnd }

// SSThresh returns the current slow-start threshold in segments.
func (s *Subflow) SSThresh() float64 { return s.ssthresh }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Subflow) SRTT() sim.Time { return s.rtt.SmoothedRTT() }

// BaseRTT returns the minimum RTT over the configured min-RTT window
// (the lifetime minimum when the window is disabled).
func (s *Subflow) BaseRTT() sim.Time { return s.rtt.MinRTT() }

// LastRTT returns the latest RTT sample.
func (s *Subflow) LastRTT() sim.Time { return s.rtt.LatestRTT() }

// RTTStats exposes the subflow's estimator (read-only use).
func (s *Subflow) RTTStats() *RTTStats { return &s.rtt }

// RTO returns the current retransmission timeout before backoff.
func (s *Subflow) RTO() sim.Time { return s.rto }

// Inflight returns the segments sent and not yet cumulatively acked.
func (s *Subflow) Inflight() int64 { return s.nextSeq - s.cumAck }

// Outstanding returns the RFC 6675 pipe estimate: sent segments neither
// cumulatively acked nor selectively acknowledged. Only SACKs below the
// current send point count — after a post-RTO rewind, stale SACKs above
// it must not drive the pipe negative.
func (s *Subflow) Outstanding() int64 {
	n := sort.Search(len(s.sacked), func(i int) bool { return s.sacked[i] >= s.nextSeq })
	return s.nextSeq - s.cumAck - int64(n)
}

// Acked returns the cumulative acknowledged segment count.
func (s *Subflow) Acked() int64 { return s.cumAck }

// NextSeq returns the next sequence number the subflow will transmit.
// NextSeq below MaxSent means rolled-back data is being resent.
func (s *Subflow) NextSeq() int64 { return s.nextSeq }

// MaxSent returns the highest sequence number ever handed to the path —
// the count of distinct segments this subflow has been charged for via
// Coordinator.NoteSend (rewinds after an RTO or path failure lower NextSeq
// but never MaxSent).
func (s *Subflow) MaxSent() int64 { return s.maxSent }

// InRecovery reports whether a loss episode is in progress.
func (s *Subflow) InRecovery() bool { return s.inRecovery }

// State returns the failover state (active, dead or probing).
func (s *Subflow) State() State { return s.state }

// Transitions returns the recorded failover state changes, in order. The
// timeline is empty for a subflow that never failed.
func (s *Subflow) Transitions() *trace.Timeline { return &s.transitions }

// View snapshots the subflow state for the congestion-control algorithm.
// The snapshot is cached and rebuilt only after one of its inputs changed.
func (s *Subflow) View() core.View {
	if s.viewDirty {
		s.view = s.buildView()
		// Until the first RTT sample the snapshot substitutes the path's
		// live BaseRTT, which fault injection can change under us — keep
		// rebuilding until a sample pins the view to subflow state only.
		s.viewDirty = !s.rtt.HasSample()
	}
	return s.view
}

func (s *Subflow) buildView() core.View {
	srtt := s.rtt.SmoothedRTT()
	if !s.rtt.HasSample() {
		// Before any sample, present the path's unloaded RTT so coupled
		// algorithms have something sane to divide by.
		srtt = s.path.BaseRTT(s.cfg.WireSize(), s.cfg.AckBytes)
	}
	last := s.rtt.LatestRTT()
	if last == 0 {
		last = srtt
	}
	base := s.rtt.MinRTT()
	if base == 0 {
		base = srtt
	}
	return core.View{
		Cwnd:        s.cwnd,
		SSThresh:    s.ssthresh,
		SRTT:        srtt.Seconds(),
		LastRTT:     last.Seconds(),
		BaseRTT:     base.Seconds(),
		Price:       s.price,
		InSlowStart: s.cwnd < s.ssthresh,
	}
}

// trySend transmits while the congestion window allows: first any rolled-
// back data below maxSent (retransmissions — already charged to the
// connection's budget), then new segments as long as the coordinator
// grants them.
func (s *Subflow) trySend() {
	if s.state != StateActive {
		return
	}
	for float64(s.Outstanding()) < s.cwnd {
		if s.nextSeq < s.maxSent {
			s.sendSeq(s.nextSeq, true)
			s.nextSeq++
			continue
		}
		if !s.coord.AllowSend(s.id) {
			break
		}
		s.sendSeq(s.nextSeq, false)
		s.nextSeq++
		s.maxSent = s.nextSeq
		s.stats.PktsSent++
		s.coord.NoteSend(s.id)
	}
	s.ensureRTO()
}

func (s *Subflow) sendSeq(seq int64, rtx bool) {
	p := s.path.Pool().Get()
	p.Flow = s.flow
	p.Subflow = s.id
	p.Seq = seq
	p.Size = s.cfg.WireSize()
	p.SentAt = s.eng.Now()
	p.SetRoute(s.path.Forward, s.rx)
	p.Send()
	if rtx {
		// Single chokepoint for Karn's rule: every retransmission — SACK
		// holes, post-RTO go-back-N resends, probes — is recorded so the
		// ACK that covers it is recognized as ambiguous and not sampled.
		s.noteRetransmitted(seq)
		s.stats.PktsRtx++
	}
}

// ensureRTO starts the retransmission timer if it is not running (RFC
// 6298: start on sending data with no timer pending). It never pushes an
// existing deadline — in particular, duplicate ACKs must not keep a stuck
// flow's timer from ever firing.
func (s *Subflow) ensureRTO() {
	if s.Inflight() <= 0 {
		s.rtoDeadline = 0
		return
	}
	if s.rtoDeadline != 0 {
		return
	}
	s.setRTODeadline()
}

// restartRTO re-bases the deadline; called when the cumulative ACK
// advances (and after a timeout, with backoff applied).
func (s *Subflow) restartRTO() {
	if s.Inflight() <= 0 {
		s.rtoDeadline = 0
		return
	}
	s.setRTODeadline()
}

func (s *Subflow) setRTODeadline() {
	d := s.rto << s.backoff
	if d > s.cfg.RTOMax || d < s.rto {
		// Clamp the exponential backoff (and guard the shift against
		// overflow, which would make d negative).
		d = s.cfg.RTOMax
	}
	s.rtoDeadline = s.eng.Now() + d
	if !s.rtoArmed {
		s.rtoArmed = true
		s.eng.Schedule(s.rtoDeadline, s.rtoTickFn)
	}
}

// rtoTick fires at a (possibly stale) deadline: if the deadline moved
// forward since scheduling, chase it; if it was disarmed, stop.
func (s *Subflow) rtoTick() {
	s.rtoArmed = false
	if s.state != StateActive || s.rtoDeadline == 0 || s.Inflight() <= 0 {
		return
	}
	if now := s.eng.Now(); now < s.rtoDeadline {
		s.rtoArmed = true
		s.eng.Schedule(s.rtoDeadline, s.rtoTickFn)
		return
	}
	s.onRTO()
}

func (s *Subflow) onRTO() {
	if s.Inflight() <= 0 {
		return
	}
	s.stats.Timeouts++
	s.consecRTO++
	if !s.cfg.DisableFailover && s.consecRTO >= s.cfg.FailTimeouts {
		s.fail()
		return
	}
	s.ssthresh = max2(s.cwnd/2, 2)
	s.cwnd = s.cfg.MinCwnd
	s.viewDirty = true
	s.inRecovery = false
	if s.backoff < 6 {
		s.backoff++
	}
	if obs, ok := s.coord.Alg().(core.TimeoutObserver); ok {
		obs.OnTimeout(s.coord.Views(), s.id)
	}
	// Classic post-RTO behaviour: discard the scoreboard, roll the send
	// point back to the cumulative ACK and slow-start from there. Without
	// this, the surviving holes of a mass-loss burst keep inflating the
	// pipe estimate and recovery crawls at one segment per timeout.
	// Receiver-buffered runs make the cumulative ACK jump forward, so
	// little already-delivered data is actually resent.
	s.retransmitted = s.retransmitted[:0]
	s.sacked = s.sacked[:0]
	s.scanFrom = s.cumAck
	s.nextSeq = s.cumAck
	s.trySend()
	s.restartRTO()
}

// fail declares the path dead after cfg.FailTimeouts back-to-back RTO
// episodes: freeze the window, disarm the retransmission timer, roll the
// send point back to the cumulative ACK, hand the unacked range to the
// connection for re-injection elsewhere, and start probing for recovery.
func (s *Subflow) fail() {
	unacked := s.maxSent - s.cumAck
	s.state = StateDead
	s.stats.Fails++
	s.transitions.Add(s.eng.Now(), "dead")
	s.rtoDeadline = 0
	s.inRecovery = false
	s.retransmitted = s.retransmitted[:0]
	s.sacked = s.sacked[:0]
	s.scanFrom = s.cumAck
	// Rewind so the frozen range no longer counts as inflight; the
	// connection stops budgeting receive window for it, matching the
	// re-injection credit it is about to get back.
	s.nextSeq = s.cumAck
	s.ssthresh = max2(s.cwnd/2, 2)
	s.cwnd = s.cfg.MinCwnd
	s.viewDirty = true
	if obs, ok := s.coord.Alg().(core.TimeoutObserver); ok {
		obs.OnTimeout(s.coord.Views(), s.id)
	}
	s.probeIval = s.cfg.ProbeInterval
	s.eng.ScheduleAfter(s.probeIval, s.probeTickFn)
	// Notify last: the coordinator may immediately push the freed budget
	// onto sibling subflows.
	s.coord.NoteFailed(s.id, unacked)
}

// probeTick sends one probe — a retransmission of the first unacked
// segment — and reschedules itself with the interval doubled, clamped at
// RTOMax. The receiver's cumulative ACK always covers at least this
// segment's hole state, so any delivered probe draws an ACK that advances
// (or re-states) the cumulative ACK; an advance revives the subflow.
func (s *Subflow) probeTick() {
	if s.state == StateActive {
		return
	}
	if s.state == StateDead {
		s.state = StateProbing
		s.transitions.Add(s.eng.Now(), "probing")
	}
	s.stats.Probes++
	s.sendSeq(s.cumAck, true)
	s.probeIval *= 2
	if s.probeIval > s.cfg.RTOMax {
		s.probeIval = s.cfg.RTOMax
	}
	s.eng.ScheduleAfter(s.probeIval, s.probeTickFn)
}

// revive returns a dead subflow to service after an ACK proved the path
// carries traffic again: restart from the (just advanced) cumulative ACK
// with a minimal window, slow-starting like a fresh flow.
func (s *Subflow) revive() {
	s.state = StateActive
	s.stats.Revivals++
	s.transitions.Add(s.eng.Now(), "active")
	s.inRecovery = false
	s.retransmitted = s.retransmitted[:0]
	s.sacked = s.sacked[:0]
	s.scanFrom = s.cumAck
	s.nextSeq = s.cumAck
	s.cwnd = s.cfg.MinCwnd
	s.viewDirty = true
	s.coord.NoteRevived(s.id)
	s.trySend()
	s.restartRTO()
}

// Receive implements netem.Endpoint for returning ACKs.
func (s *Subflow) Receive(p *netem.Packet) {
	if !p.IsAck {
		p.Release() // a stray data packet addressed to the sender; drop it
		return
	}
	if p.ECE {
		s.stats.MarkedAcked++
	}
	s.noteSack(p.SackSeq)
	if p.Ack > s.cumAck {
		s.onNewAck(p)
	}
	// Duplicate ACKs carry only the SACK information recorded above.
	p.Release()
	if s.state != StateActive {
		// Still dead: a duplicate ACK (e.g. a straggler or an unanswered
		// probe's echo) is not proof of a healed path.
		return
	}
	s.sackRetransmit()
	s.trySend()
}

// noteSack records that segment seq has arrived at the receiver.
func (s *Subflow) noteSack(seq int64) {
	if seq < s.cumAck {
		return
	}
	i := sort.Search(len(s.sacked), func(i int) bool { return s.sacked[i] >= seq })
	if i < len(s.sacked) && s.sacked[i] == seq {
		return
	}
	s.sacked = append(s.sacked, 0)
	copy(s.sacked[i+1:], s.sacked[i:])
	s.sacked[i] = seq
}

// pruneBelow discards SACK and retransmission state below the cumulative
// acknowledgement. Both sets are sorted, so pruning is a cut at the first
// surviving entry — no per-entry iteration as with the map this replaces.
func (s *Subflow) pruneBelow(cum int64) {
	i := sort.Search(len(s.sacked), func(i int) bool { return s.sacked[i] >= cum })
	if i > 0 {
		s.sacked = append(s.sacked[:0], s.sacked[i:]...)
	}
	i = sort.Search(len(s.retransmitted), func(i int) bool { return s.retransmitted[i] >= cum })
	if i > 0 {
		s.retransmitted = append(s.retransmitted[:0], s.retransmitted[i:]...)
	}
}

func (s *Subflow) onNewAck(p *netem.Packet) {
	acked := int(p.Ack - s.cumAck)
	s.cumAck = p.Ack
	if s.nextSeq < s.cumAck {
		// Post-RTO resends can be cumulatively acked past the rolled-back
		// send point (the receiver had the rest buffered); skip ahead.
		s.nextSeq = s.cumAck
		s.maxSent = max64(s.maxSent, s.nextSeq)
	}
	// Karn's rule (RFC 6298, 3): an ACK covering a segment that was
	// retransmitted is ambiguous — the echoed timestamp may belong to
	// either transmission — so it must not produce an RTT sample (and,
	// with no sample, must not reset the timer backoff either; 5.7).
	// Decided before pruneBelow erases exactly the entries it consults.
	karn := len(s.retransmitted) > 0 && s.retransmitted[0] < p.Ack
	s.consecRTO = 0
	s.stats.PktsAcked += uint64(acked)
	if s.price != p.EchoPrice {
		s.price = p.EchoPrice
		s.viewDirty = true
	}
	s.pruneBelow(s.cumAck)

	if !karn {
		s.sampleRTT(s.eng.Now() - p.EchoedAt)
	}

	if s.state != StateActive {
		// The cumulative ACK moved while the subflow was dead: the path
		// answered (usually to a probe). Credit the connection before
		// reviving so the restarted sender sees the freed budget.
		s.coord.NoteAcked(s.id, acked)
		s.revive()
		return
	}

	alg := s.coord.Alg()
	views := s.coord.Views()
	if obs, ok := alg.(core.AckObserver); ok {
		obs.OnAck(views, s.id, acked, p.ECE)
	}

	if s.inRecovery {
		if s.cumAck >= s.recover {
			// Full acknowledgement: leave recovery with the deflated window.
			s.inRecovery = false
		}
	} else {
		s.grow(acked, views, alg)
	}

	s.roundTick(views, alg)
	s.coord.NoteAcked(s.id, acked)
	s.restartRTO()
}

// sackRetransmit detects holes with enough SACK evidence above them
// (DupAckThreshold segments, the RFC 6675 rule with per-segment ACKs) and
// retransmits each once per episode, within the pipe budget. The first
// detection of an episode triggers the congestion response.
func (s *Subflow) sackRetransmit() {
	if len(s.sacked) < s.cfg.DupAckThreshold {
		return
	}
	// Every hole below lostBound has >= DupAckThreshold sacked segments
	// above it.
	lostBound := s.sacked[len(s.sacked)-s.cfg.DupAckThreshold]
	if s.cumAck >= lostBound {
		return
	}

	if !s.inRecovery {
		s.enterRecovery()
	}

	// Walk the holes — gaps below sacked[0], then between consecutive
	// sacked entries, clipped to lostBound — resuming at the scan cursor.
	// Everything below the cursor was already retransmitted (or received),
	// so skipping it is sound until an RTO resets the episode.
	budget := func() bool { return float64(s.Outstanding()) < s.cwnd }
	h := s.scanFrom
	if h < s.cumAck {
		h = s.cumAck
	}
	idx := sort.Search(len(s.sacked), func(i int) bool { return s.sacked[i] >= h })
	for h < lostBound {
		if idx < len(s.sacked) && h == s.sacked[idx] {
			h++
			idx++
			continue
		}
		if !s.wasRetransmitted(h) {
			if !budget() {
				break
			}
			s.sendSeq(h, true) // records the retransmission itself
		}
		h++
	}
	s.scanFrom = h
	s.ensureRTO()
}

// wasRetransmitted reports whether hole seq was already resent this episode.
func (s *Subflow) wasRetransmitted(seq int64) bool {
	i := sort.Search(len(s.retransmitted), func(i int) bool { return s.retransmitted[i] >= seq })
	return i < len(s.retransmitted) && s.retransmitted[i] == seq
}

// noteRetransmitted records hole seq as resent. The hole scan walks
// sequence numbers upward and never behind the scan cursor, so in practice
// this is a tail append; the general sorted insert is kept for safety.
func (s *Subflow) noteRetransmitted(seq int64) {
	if n := len(s.retransmitted); n == 0 || s.retransmitted[n-1] < seq {
		s.retransmitted = append(s.retransmitted, seq)
		return
	}
	i := sort.Search(len(s.retransmitted), func(i int) bool { return s.retransmitted[i] >= seq })
	if i < len(s.retransmitted) && s.retransmitted[i] == seq {
		return
	}
	s.retransmitted = append(s.retransmitted, 0)
	copy(s.retransmitted[i+1:], s.retransmitted[i:])
	s.retransmitted[i] = seq
}

func (s *Subflow) enterRecovery() {
	s.stats.LossEvents++
	alg := s.coord.Alg()
	views := s.coord.Views()
	if obs, ok := alg.(core.LossObserver); ok {
		obs.OnLoss(views, s.id)
	}
	newCwnd := max2(alg.Decrease(views, s.id), s.cfg.MinCwnd)
	s.ssthresh = max2(newCwnd, 2)
	s.cwnd = newCwnd
	s.viewDirty = true
	s.inRecovery = true
	s.recover = s.nextSeq
}

func (s *Subflow) grow(acked int, views []core.View, alg core.Algorithm) {
	// Congestion-window validation (RFC 7661): only grow when the window
	// was actually the binding constraint. A receive-window- or
	// application-limited flow must not inflate cwnd it never uses.
	if float64(s.Inflight()+int64(acked)) < s.cwnd-1 {
		return
	}
	if s.cwnd < s.ssthresh {
		if !s.cfg.DisableHystart && s.delaySignal() {
			// HyStart-style exit: the RTT samples show queue build-up, so
			// stop doubling before overshooting into heavy loss. Clamped
			// like every other ssthresh assignment: right after a timeout
			// cwnd sits at MinCwnd, which can be below 2.
			s.ssthresh = max2(s.cwnd, 2)
			s.viewDirty = true
		} else {
			// Slow start: one segment per acked segment, not beyond ssthresh.
			s.cwnd += float64(acked)
			if s.cwnd > s.ssthresh {
				s.cwnd = s.ssthresh
			}
			s.viewDirty = true
			return
		}
	}
	s.cwnd += alg.Increase(views, s.id) * float64(acked)
	if s.cwnd < s.cfg.MinCwnd {
		s.cwnd = s.cfg.MinCwnd
	}
	s.viewDirty = true
}

// delaySignal reports whether the latest RTT sample shows enough queueing
// delay over the path floor to justify leaving slow start (the HyStart
// delay-increase heuristic: an eighth of the base RTT, clamped to
// [4 ms, 16 ms]).
func (s *Subflow) delaySignal() bool {
	base := s.rtt.MinRTT()
	if base == 0 {
		return false
	}
	thresh := base / 8
	if thresh < 4*sim.Millisecond {
		thresh = 4 * sim.Millisecond
	}
	if thresh > 16*sim.Millisecond {
		thresh = 16 * sim.Millisecond
	}
	return s.rtt.LatestRTT() >= base+thresh
}

func (s *Subflow) roundTick(views []core.View, alg core.Algorithm) {
	if s.cumAck < s.roundEnd {
		return
	}
	s.roundEnd = s.nextSeq
	s.stats.RoundTrips++
	if rt, ok := alg.(core.RoundTuner); ok {
		cwnd, ssthresh := rt.OnRound(views, s.id)
		s.cwnd = max2(cwnd, s.cfg.MinCwnd)
		s.ssthresh = max2(ssthresh, 2)
		s.viewDirty = true
	}
}

// sampleRTT feeds one unambiguous sample (Karn-filtered by the caller) to
// the estimator. An accepted sample recomputes the cached RTO and resets
// the exponential timer backoff — RFC 6298 5.7 resets backoff only here,
// never on a bare cumulative-ACK advance.
func (s *Subflow) sampleRTT(rtt sim.Time) {
	if !s.rtt.UpdateRTT(rtt, 0, s.eng.Now()) {
		return
	}
	s.viewDirty = true
	s.backoff = 0
	s.rto = s.rtt.RTO(s.cfg.RTOMin, s.cfg.RTOMax)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

var _ netem.Endpoint = (*Subflow)(nil)
