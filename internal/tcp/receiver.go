package tcp

import (
	"sort"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// Receiver is the far end of a subflow: it acknowledges every arriving data
// segment cumulatively, buffers out-of-order arrivals, echoes the sender's
// timestamp (exact RTT samples), the ECN CE codepoint (for DCTCP) and the
// accumulated path price (for the extended DTS).
type Receiver struct {
	eng *sim.Engine
	sub *Subflow

	rcvNext int64
	ooo     []int64 // sorted out-of-order buffer, every entry > rcvNext

	pktsReceived uint64
	oooPeak      int
}

// Received reports the number of data segments that have arrived (including
// duplicates).
func (r *Receiver) Received() uint64 { return r.pktsReceived }

// OutOfOrderPeak reports the largest reordering buffer occupancy seen.
func (r *Receiver) OutOfOrderPeak() int { return r.oooPeak }

// Receive implements netem.Endpoint for data segments.
func (r *Receiver) Receive(p *netem.Packet) {
	if p.IsAck {
		return
	}
	r.pktsReceived++

	switch {
	case p.Seq == r.rcvNext:
		r.rcvNext++
		// Consume the run of now-consecutive buffered segments. The buffer
		// is sorted and its minimum is always > the old rcvNext, so the run
		// is a prefix; compacting in place keeps the backing array.
		k := 0
		for k < len(r.ooo) && r.ooo[k] == r.rcvNext {
			k++
			r.rcvNext++
		}
		if k > 0 {
			n := copy(r.ooo, r.ooo[k:])
			r.ooo = r.ooo[:n]
		}
	case p.Seq > r.rcvNext:
		r.bufferOutOfOrder(p.Seq)
	default:
		// Duplicate of already-delivered data; still acknowledged below.
	}

	// Answer from the data packet's own pool (plain allocation for unpooled
	// packets), so the ACK recycles in the same domain it was provoked in.
	ack := p.Pool().Get()
	ack.Flow = p.Flow
	ack.Subflow = p.Subflow
	ack.IsAck = true
	ack.Ack = r.rcvNext
	ack.SackSeq = p.Seq
	ack.Size = r.sub.cfg.AckBytes
	ack.ECE = p.CE
	ack.EchoedAt = p.SentAt
	ack.EchoPrice = p.Price
	p.Release()
	ack.SetRoute(r.sub.path.Reverse, r.sub)
	ack.Send()
}

// bufferOutOfOrder inserts seq into the sorted reordering buffer, ignoring
// duplicates.
func (r *Receiver) bufferOutOfOrder(seq int64) {
	i := sort.Search(len(r.ooo), func(i int) bool { return r.ooo[i] >= seq })
	if i < len(r.ooo) && r.ooo[i] == seq {
		return
	}
	r.ooo = append(r.ooo, 0)
	copy(r.ooo[i+1:], r.ooo[i:])
	r.ooo[i] = seq
	if len(r.ooo) > r.oooPeak {
		r.oooPeak = len(r.ooo)
	}
}

var _ netem.Endpoint = (*Receiver)(nil)
