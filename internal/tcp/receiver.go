package tcp

import (
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// Receiver is the far end of a subflow: it acknowledges every arriving data
// segment cumulatively, buffers out-of-order arrivals, echoes the sender's
// timestamp (exact RTT samples), the ECN CE codepoint (for DCTCP) and the
// accumulated path price (for the extended DTS).
type Receiver struct {
	eng *sim.Engine
	sub *Subflow

	rcvNext int64
	ooo     map[int64]struct{}

	pktsReceived uint64
	oooPeak      int
}

// Received reports the number of data segments that have arrived (including
// duplicates).
func (r *Receiver) Received() uint64 { return r.pktsReceived }

// OutOfOrderPeak reports the largest reordering buffer occupancy seen.
func (r *Receiver) OutOfOrderPeak() int { return r.oooPeak }

// Receive implements netem.Endpoint for data segments.
func (r *Receiver) Receive(p *netem.Packet) {
	if p.IsAck {
		return
	}
	r.pktsReceived++

	switch {
	case p.Seq == r.rcvNext:
		r.rcvNext++
		for {
			if _, ok := r.ooo[r.rcvNext]; !ok {
				break
			}
			delete(r.ooo, r.rcvNext)
			r.rcvNext++
		}
	case p.Seq > r.rcvNext:
		if r.ooo == nil {
			r.ooo = make(map[int64]struct{})
		}
		r.ooo[p.Seq] = struct{}{}
		if len(r.ooo) > r.oooPeak {
			r.oooPeak = len(r.ooo)
		}
	default:
		// Duplicate of already-delivered data; still acknowledged below.
	}

	ack := netem.NewPacket()
	ack.Flow = p.Flow
	ack.Subflow = p.Subflow
	ack.IsAck = true
	ack.Ack = r.rcvNext
	ack.SackSeq = p.Seq
	ack.Size = r.sub.cfg.AckBytes
	ack.ECE = p.CE
	ack.EchoedAt = p.SentAt
	ack.EchoPrice = p.Price
	p.Release()
	ack.SetRoute(r.sub.path.Reverse, r.sub)
	ack.Send()
}

var _ netem.Endpoint = (*Receiver)(nil)
