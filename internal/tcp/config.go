// Package tcp implements the transport machinery both regular TCP and MPTCP
// subflows run on: a NewReno-style sender state machine (slow start,
// congestion avoidance, fast retransmit, recovery, RTO with an RFC 6298
// estimator) and a cumulative-ACK receiver. The congestion-avoidance window
// evolution is delegated to a core.Algorithm, which is where the paper's
// algorithms plug in.
package tcp

import "mptcpsim/internal/sim"

// Config carries the transport parameters shared by all subflows of a
// connection. The zero value is completed by withDefaults.
type Config struct {
	// MSS is the payload bytes per segment.
	MSS int
	// HeaderBytes is the per-segment header overhead; MSS+HeaderBytes is
	// the wire size links serialize.
	HeaderBytes int
	// AckBytes is the wire size of a pure ACK.
	AckBytes int

	// InitialCwnd is the initial congestion window in segments.
	InitialCwnd float64
	// MinCwnd is the floor the window never drops below.
	MinCwnd float64

	// RTOMin and RTOMax clamp the retransmission timeout; RTOInit is used
	// before the first RTT sample.
	RTOMin  sim.Time
	RTOMax  sim.Time
	RTOInit sim.Time

	// DupAckThreshold triggers fast retransmit (standard 3).
	DupAckThreshold int

	// DisableHystart turns off the delay-based slow-start exit (a
	// HyStart-style guard that leaves slow start when RTT samples show the
	// queue building, preventing the deep overshoot losses classic slow
	// start causes on big queues).
	DisableHystart bool

	// FailTimeouts is the number of consecutive RTO episodes (no cumulative
	// ACK progress in between) after which the subflow declares its path
	// dead, freezes, and hands its unacked data back to the connection for
	// re-injection on surviving subflows. Default 3.
	FailTimeouts int
	// DisableFailover keeps a subflow retransmitting forever instead of
	// declaring failure, restoring pre-failover behaviour (useful for
	// single-path runs and RTO-focused tests).
	DisableFailover bool
	// ProbeInterval is the initial spacing of the probe segments a dead
	// subflow sends to discover that its path healed; it doubles after
	// every unanswered probe, clamped at RTOMax. Default 1s.
	ProbeInterval sim.Time

	// MinRTTWindow bounds how long a min-RTT (baseRTT) observation stays
	// valid: the floor delay-based algorithms divide by is the minimum over
	// this trailing window, so a path whose propagation delay ramps up
	// (mobility, handover, faults delay schedules) re-learns its floor
	// instead of pinning to a stale lifetime minimum. 0 selects the default
	// of 30s; negative keeps the lifetime minimum (pre-window behaviour).
	MinRTTWindow sim.Time
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1448
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 52
	}
	if c.AckBytes == 0 {
		c.AckBytes = 52
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 10
	}
	if c.MinCwnd == 0 {
		c.MinCwnd = 1
	}
	if c.RTOMin == 0 {
		c.RTOMin = 200 * sim.Millisecond
	}
	if c.RTOMax == 0 {
		c.RTOMax = 60 * sim.Second
	}
	if c.RTOInit == 0 {
		c.RTOInit = sim.Second
	}
	if c.DupAckThreshold == 0 {
		c.DupAckThreshold = 3
	}
	if c.FailTimeouts == 0 {
		c.FailTimeouts = 3
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = sim.Second
	}
	if c.MinRTTWindow == 0 {
		c.MinRTTWindow = 30 * sim.Second
	}
	return c
}

// WireSize returns the on-the-wire size of one data segment.
func (c Config) WireSize() int { return c.MSS + c.HeaderBytes }
