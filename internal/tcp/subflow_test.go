package tcp

import (
	"testing"

	"mptcpsim/internal/core"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// stubCoord is a minimal single-subflow coordinator with a configurable
// data budget.
type stubCoord struct {
	alg       core.Algorithm
	sub       *Subflow
	remaining int64 // -1 = unlimited
	sent      int64
	acked     int64
}

func (c *stubCoord) Alg() core.Algorithm { return c.alg }

func (c *stubCoord) Views() []core.View { return []core.View{c.sub.View()} }

func (c *stubCoord) AllowSend(int) bool { return c.remaining < 0 || c.remaining > 0 }

func (c *stubCoord) NoteSend(int) {
	c.sent++
	if c.remaining > 0 {
		c.remaining--
	}
}

func (c *stubCoord) NoteAcked(_ int, pkts int) { c.acked += int64(pkts) }

func (c *stubCoord) NoteFailed(int, int64) {}

func (c *stubCoord) NoteRevived(int) {}

func newTestSubflow(eng *sim.Engine, rate int64, delay sim.Time, qlimit int, budget int64) (*Subflow, *stubCoord, *netem.Path) {
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: rate, Delay: delay, QueueLimit: qlimit})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: rate, Delay: delay, QueueLimit: qlimit})
	p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	coord := &stubCoord{alg: core.NewReno(), remaining: budget}
	s := NewSubflow(eng, Config{}, coord, 1, 0, p)
	coord.sub = s
	return s, coord, p
}

func TestSubflowDeliversExactBudget(t *testing.T) {
	eng := sim.NewEngine(1)
	s, coord, _ := newTestSubflow(eng, 10*netem.Mbps, 5*sim.Millisecond, 100, 50)
	s.Start()
	eng.Run(30 * sim.Second)
	if coord.acked != 50 {
		t.Fatalf("acked %d segments, want 50", coord.acked)
	}
	if s.Inflight() != 0 {
		t.Errorf("Inflight = %d after full delivery, want 0", s.Inflight())
	}
	if got := s.Stats().PktsSent; got != 50 {
		t.Errorf("PktsSent = %d, want exactly 50 (no spurious rtx)", got)
	}
}

func TestSubflowRTTEstimator(t *testing.T) {
	eng := sim.NewEngine(1)
	s, _, p := newTestSubflow(eng, 100*netem.Mbps, 20*sim.Millisecond, 1000, 200)
	s.Start()
	eng.Run(20 * sim.Second)
	base := p.BaseRTT(1500, 52)
	if s.BaseRTT() < base || s.BaseRTT() > base+2*sim.Millisecond {
		t.Errorf("BaseRTT = %v, path floor %v", s.BaseRTT().Duration(), base.Duration())
	}
	if s.SRTT() <= 0 || s.LastRTT() <= 0 {
		t.Error("RTT estimator produced no samples")
	}
}

func TestSubflowRecoversFromTotalBlackout(t *testing.T) {
	// Kill the forward link with 100% loss for a while: the subflow must
	// back off (few timeouts, not hundreds) and then recover go-back-N
	// style when the link heals.
	eng := sim.NewEngine(1)
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond, QueueLimit: 100, LossProb: 1})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond})
	p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	coord := &stubCoord{alg: core.NewReno(), remaining: -1}
	s := NewSubflow(eng, Config{}, coord, 1, 0, p)
	coord.sub = s

	// Heal the link at t=5s (LossProb is internal; rebuild-free healing via
	// SetPrice isn't possible, so use a second scenario: start broken, heal
	// by swapping the path's forward link is not supported either — use
	// the loss probability through a fresh link is simplest: instead run
	// blackout only, then check backoff kept timeouts modest).
	s.Start()
	eng.Run(10 * sim.Second)
	st := s.Stats()
	if st.Timeouts == 0 {
		t.Fatal("no timeouts during blackout")
	}
	if st.Timeouts > 12 {
		t.Errorf("timeouts = %d in 10 s; exponential backoff should cap retries", st.Timeouts)
	}
	if coord.acked != 0 {
		t.Errorf("acked %d segments through a dead link", coord.acked)
	}
}

func TestRTOBackoffClampedAtMax(t *testing.T) {
	// Regression: the doubled RTO must clamp at RTOMax across many
	// consecutive timeouts, and stats.Timeouts must count each episode
	// exactly once. With RTOInit=1s (no RTT samples ever arrive through a
	// fully black path) and RTOMax=2s, episodes land at t=1,3,5,...,29 —
	// exactly 15 in 30 s. Unclamped doubling would give only 4 (1,3,7,15)
	// and double-counting would give far more.
	eng := sim.NewEngine(1)
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond, LossProb: 1})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond})
	p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	coord := &stubCoord{alg: core.NewReno(), remaining: -1}
	s := NewSubflow(eng, Config{RTOMax: 2 * sim.Second, DisableFailover: true}, coord, 1, 0, p)
	coord.sub = s
	s.Start()
	eng.Run(30 * sim.Second)
	if got := s.Stats().Timeouts; got != 15 {
		t.Errorf("Timeouts = %d over 30 s with RTOMax=2s, want exactly 15", got)
	}
	if s.State() != StateActive {
		t.Errorf("state = %v with DisableFailover, want active", s.State())
	}
}

func TestSubflowFailsAfterKTimeoutsAndRevives(t *testing.T) {
	// Black out the forward direction; the subflow must declare failure
	// after exactly FailTimeouts RTO episodes, switch to backed-off
	// probing, and revive once the path heals.
	eng := sim.NewEngine(1)
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond, LossProb: 1})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond})
	p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	coord := &stubCoord{alg: core.NewReno(), remaining: -1}
	s := NewSubflow(eng, Config{}, coord, 1, 0, p)
	coord.sub = s
	s.Start()

	// Defaults: RTOInit=1s, so episodes at t=1,3,7 and failure at t=7.
	eng.Run(7500 * sim.Millisecond)
	st := s.Stats()
	if st.Timeouts != 3 || st.Fails != 1 {
		t.Fatalf("Timeouts=%d Fails=%d at t=7.5s, want 3 and 1", st.Timeouts, st.Fails)
	}
	if s.State() == StateActive {
		t.Fatal("subflow still active after FailTimeouts consecutive RTOs")
	}
	if s.Inflight() != 0 {
		t.Errorf("Inflight = %d while dead, want 0 (send point rewound)", s.Inflight())
	}

	// Probes at t=8,10,14,... Heal at t=11: the t=14 probe gets through.
	eng.Schedule(11*sim.Second, func() { fwd.SetLossProb(0) })
	eng.Run(20 * sim.Second)
	st = s.Stats()
	if st.Probes < 2 {
		t.Errorf("Probes = %d, want >= 2 (t=8 and t=10 at least)", st.Probes)
	}
	if st.Revivals != 1 || s.State() != StateActive {
		t.Fatalf("Revivals=%d state=%v after heal, want 1 and active", st.Revivals, s.State())
	}
	if coord.acked == 0 {
		t.Error("no segments acked after revival")
	}
	tl := s.Transitions()
	if tl.Len() < 3 {
		t.Fatalf("transitions = %v, want dead→probing→active", tl.Events)
	}
	want := []string{"dead", "probing", "active"}
	for i, w := range want {
		if tl.Events[i].Label != w {
			t.Errorf("transition %d = %q, want %q", i, tl.Events[i].Label, w)
		}
	}
}

func TestSubflowPostRTORewindRecovers(t *testing.T) {
	// Drop a long stretch by overflowing a tiny queue with a window burst,
	// then verify delivery completes quickly (the go-back-N rewind), with
	// the receiver's buffered tail acknowledged in jumps rather than
	// resent one-per-RTO.
	eng := sim.NewEngine(1)
	s, coord, _ := newTestSubflow(eng, 10*netem.Mbps, 5*sim.Millisecond, 8, 400)
	s.Start()
	eng.Run(30 * sim.Second)
	if coord.acked != 400 {
		t.Fatalf("acked %d of 400 segments; recovery stalled (timeouts=%d)",
			coord.acked, s.Stats().Timeouts)
	}
}

func TestSubflowOutstandingExcludesSacked(t *testing.T) {
	eng := sim.NewEngine(1)
	s, _, _ := newTestSubflow(eng, 10*netem.Mbps, 5*sim.Millisecond, 100, -1)
	// Simulate SACK state directly.
	s.nextSeq = 20
	s.maxSent = 20
	s.cumAck = 5
	s.noteSack(7)
	s.noteSack(8)
	s.noteSack(8) // duplicate must not double-count
	if got := s.Outstanding(); got != 13 {
		t.Errorf("Outstanding = %d, want 15 inflight - 2 sacked = 13", got)
	}
	if got := s.Inflight(); got != 15 {
		t.Errorf("Inflight = %d, want 15", got)
	}
}

func TestSubflowPruneBelow(t *testing.T) {
	eng := sim.NewEngine(1)
	s, _, _ := newTestSubflow(eng, 10*netem.Mbps, 5*sim.Millisecond, 100, -1)
	for _, seq := range []int64{3, 5, 9, 12} {
		s.noteSack(seq)
	}
	s.noteRetransmitted(4)
	s.noteRetransmitted(10)
	s.pruneBelow(9)
	if len(s.sacked) != 2 || s.sacked[0] != 9 || s.sacked[1] != 12 {
		t.Errorf("sacked after prune = %v, want [9 12]", s.sacked)
	}
	if s.wasRetransmitted(4) {
		t.Error("retransmitted entry below prune point survived")
	}
	if !s.wasRetransmitted(10) {
		t.Error("retransmitted entry above prune point was dropped")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MSS != 1448 || cfg.WireSize() != 1500 {
		t.Errorf("MSS/WireSize = %d/%d, want 1448/1500", cfg.MSS, cfg.WireSize())
	}
	if cfg.RTOMin != 200*sim.Millisecond || cfg.DupAckThreshold != 3 {
		t.Error("RTO/dupack defaults wrong")
	}
	// Explicit values survive.
	cfg2 := Config{MSS: 1000, DupAckThreshold: 5}.withDefaults()
	if cfg2.MSS != 1000 || cfg2.DupAckThreshold != 5 {
		t.Error("explicit config values overridden")
	}
}

func TestReceiverOutOfOrderBuffering(t *testing.T) {
	eng := sim.NewEngine(1)
	s, _, p := newTestSubflow(eng, 10*netem.Mbps, sim.Millisecond, 100, 0)
	rx := s.rx

	deliver := func(seq int64) {
		pkt := netem.NewPacket()
		pkt.Seq = seq
		pkt.Size = 1500
		pkt.SetRoute(nil, rx) // loopback delivery straight to the receiver
		pkt.Send()
	}
	// 0 arrives, then 2,3 (gap at 1), then 1 fills the gap.
	deliver(0)
	if rx.rcvNext != 1 {
		t.Fatalf("rcvNext = %d after in-order arrival, want 1", rx.rcvNext)
	}
	deliver(2)
	deliver(3)
	if rx.rcvNext != 1 {
		t.Fatalf("rcvNext = %d with a gap, want still 1", rx.rcvNext)
	}
	if rx.OutOfOrderPeak() != 2 {
		t.Errorf("ooo peak = %d, want 2", rx.OutOfOrderPeak())
	}
	deliver(1)
	if rx.rcvNext != 4 {
		t.Fatalf("rcvNext = %d after gap filled, want 4 (drained buffer)", rx.rcvNext)
	}
	if rx.Received() != 4 {
		t.Errorf("Received = %d, want 4", rx.Received())
	}
	_ = p
	eng.Run(eng.Now() + sim.Second) // let the generated ACKs drain back
}

func TestHystartCanBeDisabled(t *testing.T) {
	run := func(disable bool) float64 {
		eng := sim.NewEngine(1)
		fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 50 * netem.Mbps, Delay: 20 * sim.Millisecond, QueueLimit: 2000})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 50 * netem.Mbps, Delay: 20 * sim.Millisecond})
		p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
		coord := &stubCoord{alg: core.NewReno(), remaining: -1}
		s := NewSubflow(eng, Config{DisableHystart: disable}, coord, 1, 0, p)
		coord.sub = s
		s.Start()
		eng.Run(3 * sim.Second)
		return s.Cwnd()
	}
	withGuard, without := run(false), run(true)
	// Without the delay guard, slow start keeps doubling into the huge
	// queue and the window overshoots far beyond the guarded run.
	if without <= withGuard {
		t.Errorf("cwnd without HyStart (%.0f) not above guarded (%.0f)", without, withGuard)
	}
}
