package backend

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"mptcpsim/internal/sim"
)

// shortSpec is a fast hybrid grid for structural tests: short horizons keep
// each packet spot check around 20 ms of wall clock.
func shortSpec() SweepSpec {
	return SweepSpec{
		Topologies: []string{"twopath-asym", "twopath-sym"},
		Algorithms: []string{"ewtcp", "dts"},
		Loads:      []float64{0, 0.1, 0.15},
		SpotCheck:  0.5,
		Horizon:    6 * sim.Second,
		Warmup:     2 * sim.Second,
	}
}

func TestSpotIndicesDeterministic(t *testing.T) {
	spec := shortSpec().WithDefaults()
	pts := spec.Grid()
	a := spec.SpotIndices(pts)
	b := spec.SpotIndices(pts)
	if len(a) != 6 { // ceil(0.5 * 12)
		t.Fatalf("sample size %d, want 6", len(a))
	}
	for i := range a {
		if !b[i] {
			t.Fatalf("sample differs between identical calls at index %d", i)
		}
	}
	// The sample is a function of point identity and seed, not of grid
	// position: permuting the load axis must pick the same point IDs.
	perm := spec
	perm.Loads = []float64{0.15, 0, 0.1}
	ppts := perm.Grid()
	ids := func(pts []Point, picked map[int]bool) map[string]bool {
		out := make(map[string]bool)
		for i := range pts {
			if picked[i] {
				out[pts[i].ID()] = true
			}
		}
		return out
	}
	got, want := ids(ppts, perm.SpotIndices(ppts)), ids(pts, a)
	if len(got) != len(want) {
		t.Fatalf("permuted sample has %d points, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Errorf("permuted grid dropped %s from the sample", id)
		}
	}
	// A different seed picks a different sample. Use a grid wide enough
	// that an accidental coincidence is implausible: 128 points, 64 picked.
	wide := spec
	wide.Loads = make([]float64, 32)
	for i := range wide.Loads {
		wide.Loads[i] = 0.15 * float64(i) / 31
	}
	wpts := wide.Grid()
	seeded := wide
	seeded.Seed = 2
	w1, w2 := ids(wpts, wide.SpotIndices(wpts)), ids(wpts, seeded.SpotIndices(wpts))
	same := len(w1) == len(w2)
	for id := range w2 {
		if !w1[id] {
			same = false
		}
	}
	if same {
		t.Error("seed 1 and seed 2 picked identical samples; sampling ignores the seed")
	}
}

// TestSweepDeterministicAcrossWorkers is the hybrid-sweep determinism
// property: the same spec and seed produce a byte-identical table — same
// fluid answers, same spot-check sample, same packet results — whether the
// runs execute inline or across eight workers.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	one := shortSpec()
	one.Workers = 1
	eight := shortSpec()
	eight.Workers = 8

	r1, err := Sweep(ctx, one)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	r8, err := Sweep(ctx, eight)
	if err != nil {
		t.Fatalf("workers=8: %v", err)
	}
	if r1.Checked == 0 {
		t.Fatal("no points were spot-checked")
	}
	if got, want := r8.Format(), r1.Format(); got != want {
		t.Errorf("tables differ across worker counts:\n-j 1:\n%s\n-j 8:\n%s", want, got)
	}
	for i := range r1.Points {
		if r1.Points[i].Checked != r8.Points[i].Checked {
			t.Errorf("%s: checked %v at -j 1, %v at -j 8",
				r1.Points[i].ID(), r1.Points[i].Checked, r8.Points[i].Checked)
		}
	}
}

// TestSweepBudget is the acceptance bar from the issue: a 1000-point fluid
// sweep with at least 5% deterministic packet spot checks finishes inside
// 60 s of wall clock on one core, and every spot-checked point agrees
// within the conformance tolerance.
func TestSweepBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("fifty-odd full-horizon packet runs")
	}
	spec := DefaultSweepSpec()
	loads := make([]float64, 28)
	for i := range loads {
		loads[i] = 0.15 * float64(i) / float64(len(loads)-1)
	}
	spec.Loads = loads
	spec.Workers = 1

	start := time.Now()
	res, err := Sweep(context.Background(), spec)
	wall := time.Since(start)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if n := len(res.Points); n != 4*9*28 {
		t.Fatalf("grid has %d points, want %d", n, 4*9*28)
	}
	if min := (len(res.Points) + 19) / 20; res.Checked < min {
		t.Errorf("checked %d points, want >= %d (5%%)", res.Checked, min)
	}
	if !res.OK() {
		t.Errorf("spot checks disagree:\n%s", strings.Join(res.Disagreements, "\n"))
	}
	if wall > 60*time.Second {
		t.Errorf("sweep took %v, budget is 60s single-core", wall)
	}
	t.Logf("%d points, %d checked, %v wall", len(res.Points), res.Checked, wall)
}

// TestSweepDisagreementNamesPoint drives the failure path with a point the
// calibration pinned as over-tolerance: coupled's fully coupled window
// degenerates toward winner-take-all under cross load, which Eq. 3 does not
// reproduce — exactly why DefaultSweepSpec excludes it.
func TestSweepDisagreementNamesPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("one full-horizon packet run")
	}
	spec := SweepSpec{
		Topologies: []string{"twopath-asym"},
		Algorithms: []string{"coupled"},
		Loads:      []float64{0.1},
		SpotCheck:  1,
	}
	res, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.OK() {
		t.Fatalf("expected a disagreement, table:\n%s", res.Format())
	}
	if len(res.Disagreements) != 1 || !strings.Contains(res.Disagreements[0], "twopath-asym/coupled@0.1") {
		t.Errorf("disagreements do not name the point: %v", res.Disagreements)
	}
	if !strings.Contains(res.Format(), "FAIL") {
		t.Errorf("table does not flag the failing row:\n%s", res.Format())
	}
}

func TestSweepFluidBackendSkipsChecks(t *testing.T) {
	spec := shortSpec()
	spec.Backend = "fluid"
	res, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.Checked != 0 {
		t.Errorf("fluid backend checked %d points, want 0", res.Checked)
	}
	for _, p := range res.Points {
		if p.Packet != nil {
			t.Fatalf("%s: fluid backend ran a packet engine", p.ID())
		}
		if p.Fluid == nil || p.Fluid.Fidelity != "fluid" {
			t.Fatalf("%s: missing fluid result", p.ID())
		}
	}
}

func TestSweepPacketBackend(t *testing.T) {
	spec := shortSpec()
	spec.Backend = "packet"
	spec.Topologies = []string{"twopath-asym"}
	spec.Algorithms = []string{"ewtcp"}
	spec.Loads = []float64{0}
	res, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	p := res.Points[0]
	if p.Fluid != nil || p.Packet == nil || p.Packet.Fidelity != "packet" {
		t.Fatalf("packet backend produced fluid=%v packet=%v", p.Fluid, p.Packet)
	}
	if p.Packet.Events == 0 {
		t.Error("packet result reports zero events")
	}
}

func TestSweepRejectsBadSpecs(t *testing.T) {
	ctx := context.Background()
	bad := shortSpec()
	bad.Backend = "quantum"
	if _, err := Sweep(ctx, bad); err == nil || !strings.Contains(err.Error(), "quantum") {
		t.Errorf("unknown backend: err = %v", err)
	}
	empty := shortSpec()
	empty.Loads = nil
	if _, err := Sweep(ctx, empty); err == nil {
		t.Error("empty grid accepted")
	}
	badPoint := shortSpec()
	badPoint.Algorithms = []string{"no-such-alg"}
	err := func() error { _, err := Sweep(ctx, badPoint); return err }()
	if err == nil || !strings.Contains(err.Error(), "no-such-alg") {
		t.Errorf("bad algorithm: err = %v", err)
	}
}

func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, shortSpec()); err == nil {
		t.Error("cancelled sweep returned nil error")
	}
}

func TestPointID(t *testing.T) {
	p := Point{Topology: "twopath-sym", Algorithm: "dts", Load: 0.05}
	if got, want := p.ID(), "twopath-sym/dts@0.05"; got != want {
		t.Errorf("ID = %q, want %q", got, want)
	}
	if got, want := fmt.Sprint(Point{Topology: "t", Algorithm: "a"}.ID()), "t/a@0"; got != want {
		t.Errorf("zero-load ID = %q, want %q", got, want)
	}
}
