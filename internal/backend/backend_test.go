package backend

import (
	"context"
	"math"
	"sort"
	"strings"
	"testing"

	"mptcpsim/internal/sim"
)

func TestScenarioValidate(t *testing.T) {
	good := Scenario{Topology: "twopath-sym", Algorithm: "lia"}
	if err := good.Validate(); err != nil {
		t.Fatalf("zero-filled valid scenario rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"unknown topology", func(s *Scenario) { s.Topology = "mesh" }, "unknown topology"},
		{"unknown algorithm", func(s *Scenario) { s.Algorithm = "warp" }, "warp"},
		{"negative load", func(s *Scenario) { s.Load = -0.1 }, "load"},
		{"saturating load", func(s *Scenario) { s.Load = 1 }, "load"},
		{"warmup past horizon", func(s *Scenario) { s.Horizon = sim.Second; s.Warmup = 2 * sim.Second }, "warmup"},
		{"unknown energy model", func(s *Scenario) { s.EnergyModel = "solar" }, "energy"},
		{"op length mismatch", func(s *Scenario) { s.Op = &OperatingPoint{RTT: []float64{0.04}, Frac: []float64{1}} }, "operating point"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := good
			tc.mut(&sc)
			err := sc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestTopologiesRegistry(t *testing.T) {
	names := Topologies()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Topologies() not sorted: %v", names)
	}
	want := []string{"hetdelay", "threepath", "twopath-asym", "twopath-sym"}
	if len(names) != len(want) {
		t.Fatalf("Topologies() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Topologies() = %v, want %v", names, want)
		}
	}
	if _, ok := TopologyFor("twopath-asym"); !ok {
		t.Error("TopologyFor(twopath-asym) missing")
	}
	if _, ok := TopologyFor("mesh"); ok {
		t.Error("TopologyFor(mesh) resolved")
	}
}

// TestFluidEngineDCTCPUnmapped: dctcp is registered (the packet engine runs
// it) but has no Eq. 3 mapping, so the fluid engine must refuse it with a
// pointer at the packet engine rather than solve the wrong model.
func TestFluidEngineDCTCPUnmapped(t *testing.T) {
	sc := Scenario{Topology: "twopath-sym", Algorithm: "dctcp"}
	_, err := FluidEngine{}.Run(context.Background(), sc)
	if err == nil || !strings.Contains(err.Error(), "packet engine") {
		t.Errorf("fluid dctcp: err = %v, want no-mapping error", err)
	}
}

func TestEngineNames(t *testing.T) {
	if got := (PacketEngine{}).Name(); got != "packet" {
		t.Errorf("PacketEngine.Name() = %q", got)
	}
	if got := (FluidEngine{}).Name(); got != "fluid" {
		t.Errorf("FluidEngine.Name() = %q", got)
	}
}

// TestFluidEngineThreePath: the solver generalizes past TwoPath — on the
// 24/12/6 Mb/s grid the shares must order by capacity and sum to one.
func TestFluidEngineThreePath(t *testing.T) {
	sc := Scenario{Topology: "threepath", Algorithm: "lia"}
	res, err := FluidEngine{}.Run(context.Background(), sc)
	if err != nil {
		t.Fatalf("fluid: %v", err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if len(res.Shares) != 3 {
		t.Fatalf("got %d shares, want 3", len(res.Shares))
	}
	var sum float64
	for _, s := range res.Shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	if !(res.Shares[0] > res.Shares[1] && res.Shares[1] > res.Shares[2]) {
		t.Errorf("shares %v not ordered by capacity", res.Shares)
	}
	if res.Events != 0 {
		t.Errorf("fluid result reports %d events, want 0", res.Events)
	}
}

// TestFluidEngineOracleUnderLoad: the delay-based family maps to the
// free-capacity oracle; cross load on the last path must shrink its share
// exactly to the remaining free capacity's fraction.
func TestFluidEngineOracleUnderLoad(t *testing.T) {
	sc := Scenario{Topology: "twopath-asym", Algorithm: "wvegas", Load: 0.5}
	res, err := FluidEngine{}.Run(context.Background(), sc)
	if err != nil {
		t.Fatalf("fluid: %v", err)
	}
	// Free capacities: 16 Mb/s and 8·(1−0.5) = 4 Mb/s → shares 0.8 / 0.2.
	if math.Abs(res.Shares[0]-0.8) > 1e-9 || math.Abs(res.Shares[1]-0.2) > 1e-9 {
		t.Errorf("oracle shares = %v, want [0.8 0.2]", res.Shares)
	}
	if math.Abs(res.AggregateBps-20e6) > 1e-3*20e6 {
		t.Errorf("aggregate = %v, want ~20 Mb/s of free capacity", res.AggregateBps)
	}
}

func TestFluidEngineEnergyModels(t *testing.T) {
	base := Scenario{Topology: "twopath-sym", Algorithm: "lia"}
	withModel := base
	withModel.EnergyModel = "i7"
	res, err := FluidEngine{}.Run(context.Background(), withModel)
	if err != nil {
		t.Fatalf("fluid: %v", err)
	}
	if res.Joules <= 0 {
		t.Errorf("i7 model integrated %v J over the window, want > 0", res.Joules)
	}
	none := base
	none.EnergyModel = "none"
	nres, err := FluidEngine{}.Run(context.Background(), none)
	if err != nil {
		t.Fatalf("fluid: %v", err)
	}
	if nres.Joules != 0 {
		t.Errorf("EnergyModel none reported %v J", nres.Joules)
	}
}

func TestEnginesHonourCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := Scenario{Topology: "twopath-sym", Algorithm: "lia"}
	if _, err := (FluidEngine{}).Run(ctx, sc); err == nil {
		t.Error("fluid engine ignored cancelled context")
	}
	if _, err := (PacketEngine{}).Run(ctx, sc); err == nil {
		t.Error("packet engine ignored cancelled context")
	}
}

// TestPacketEngineShortRun exercises the packet engine end to end on a
// cheap horizon: measured shares, a measured operating point, and a
// positive energy reading.
func TestPacketEngineShortRun(t *testing.T) {
	sc := Scenario{
		Topology: "twopath-asym", Algorithm: "lia",
		Horizon: 6 * sim.Second, Warmup: 2 * sim.Second,
	}
	res, err := PacketEngine{}.Run(context.Background(), sc)
	if err != nil {
		t.Fatalf("packet: %v", err)
	}
	if res.Fidelity != "packet" || !res.Converged {
		t.Errorf("fidelity %q converged %v", res.Fidelity, res.Converged)
	}
	var sum float64
	for _, s := range res.Shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	if res.AggregateBps <= 0 || res.Events == 0 || res.Joules <= 0 {
		t.Errorf("agg %v events %d joules %v; all must be positive", res.AggregateBps, res.Events, res.Joules)
	}
	for r := range res.Op.RTT {
		if res.Op.RTT[r] <= 0 || res.Op.Frac[r] <= 0 || res.Op.Frac[r] > 1 {
			t.Errorf("operating point path %d: rtt %v frac %v", r, res.Op.RTT[r], res.Op.Frac[r])
		}
	}
}
