package backend

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"

	"mptcpsim/internal/runner"
	"mptcpsim/internal/sim"
)

// SweepSpec describes a (topology × algorithm × load) grid and how to run
// it. The zero values of Seed/SpotCheck/Tol/Backend take defaults;
// Topologies/Algorithms/Loads are required.
type SweepSpec struct {
	Topologies []string
	Algorithms []string
	Loads      []float64

	// Seed derives both the packet-engine seeds and the spot-check sample
	// (default 1). Two sweeps with the same spec and seed run the exact
	// same work regardless of worker count.
	Seed int64

	// Backend selects the engine mix: "fluid" (all points fluid, no
	// checks), "packet" (all points packet), or "hybrid" (default: all
	// points fluid, a deterministic sample re-run on packet and compared).
	Backend string

	// SpotCheck is the fraction of points hybrid mode re-runs on the
	// packet engine, rounded up (default 0.05; negative disables).
	SpotCheck float64

	// Tol is the maximum per-path share disagreement a spot check accepts
	// (default 0.10 — the conformance tolerance).
	Tol float64

	// Workers caps run-level parallelism (0 = one per CPU, 1 = inline).
	Workers int

	// Horizon/Warmup override the per-scenario defaults (60 s / 20 s).
	Horizon sim.Time
	Warmup  sim.Time
}

// DefaultSweepSpec is the stock hybrid grid mptcp-bench -sweep runs: every
// registered topology × the algorithms whose fluid mapping holds across the
// whole default load axis × light-to-moderate cross loads. Two calibrated
// exclusions, both documented in docs/backends.md: `coupled` (its fully
// coupled window collapses to a near-winner-take-all split under any cross
// load, which Eq. 3's smooth equilibrium does not reproduce) and loads
// above 0.15 (deterministic CBR cross traffic phase-locks against the
// DropTail queue, so the packet run's cross traffic either fully survives
// or fully starves — no constant-load fluid term matches either regime).
func DefaultSweepSpec() SweepSpec {
	return SweepSpec{
		Topologies: Topologies(),
		Algorithms: []string{"ewtcp", "lia", "olia", "balia", "cubic", "wvegas", "vegas", "dts", "dtsep"},
		Loads:      []float64{0, 0.05, 0.1, 0.15},
	}.WithDefaults()
}

// WithDefaults returns the spec with zero values replaced.
func (s SweepSpec) WithDefaults() SweepSpec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Backend == "" {
		s.Backend = "hybrid"
	}
	if s.SpotCheck == 0 {
		s.SpotCheck = 0.05
	}
	if s.Tol == 0 {
		s.Tol = 0.10
	}
	return s
}

// Point is one grid coordinate.
type Point struct {
	Topology  string
	Algorithm string
	Load      float64
}

// ID is the point's stable identity: topology/algorithm@load with the load
// in shortest-round-trip decimal form. Seeds and the spot-check sample
// derive from it, never from execution order.
func (p Point) ID() string {
	return p.Topology + "/" + p.Algorithm + "@" + strconv.FormatFloat(p.Load, 'g', -1, 64)
}

// Scenario expands the point into a runnable scenario under a spec.
func (p Point) Scenario(s SweepSpec) Scenario {
	return Scenario{
		Topology:  p.Topology,
		Algorithm: p.Algorithm,
		Load:      p.Load,
		Seed:      s.Seed,
		Horizon:   s.Horizon,
		Warmup:    s.Warmup,
	}
}

// Grid enumerates the points in topology-major, algorithm-middle,
// load-minor order — a pure function of the spec.
func (s SweepSpec) Grid() []Point {
	pts := make([]Point, 0, len(s.Topologies)*len(s.Algorithms)*len(s.Loads))
	for _, t := range s.Topologies {
		for _, a := range s.Algorithms {
			for _, l := range s.Loads {
				pts = append(pts, Point{Topology: t, Algorithm: a, Load: l})
			}
		}
	}
	return pts
}

// SpotIndices picks the hybrid sample: every point is ranked by the FNV-1a
// hash of its ID salted with the seed, and the ceil(SpotCheck·N) smallest
// hashes win. The sample is a function of point identities and the seed
// only — worker count, execution order and grid permutations of the other
// points cannot change whether a given point is checked.
func (s SweepSpec) SpotIndices(pts []Point) map[int]bool {
	if s.SpotCheck <= 0 || len(pts) == 0 {
		return nil
	}
	want := int(math.Ceil(s.SpotCheck * float64(len(pts))))
	if want > len(pts) {
		want = len(pts)
	}
	type ranked struct {
		hash uint64
		idx  int
	}
	rank := make([]ranked, len(pts))
	for i, p := range pts {
		// Seed first: FNV-1a mixes each byte into everything after it, so a
		// trailing seed would barely move the high bits and the ranking
		// would be nearly seed-invariant.
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s", s.Seed, p.ID())
		rank[i] = ranked{h.Sum64(), i}
	}
	sort.Slice(rank, func(a, b int) bool {
		if rank[a].hash != rank[b].hash {
			return rank[a].hash < rank[b].hash
		}
		return rank[a].idx < rank[b].idx
	})
	picked := make(map[int]bool, want)
	for _, r := range rank[:want] {
		picked[r.idx] = true
	}
	return picked
}

// PointResult is one grid point's outcome. Fluid is set unless the sweep
// ran packet-only; Packet is set for packet-only points and hybrid spot
// checks. Delta/OK are meaningful when Checked.
type PointResult struct {
	Point
	Fluid   *Result
	Packet  *Result
	Checked bool
	Delta   float64 // max per-path |fluid share − packet share|
	OK      bool
}

// SweepResult is the full grid outcome.
type SweepResult struct {
	Points  []PointResult
	Checked int

	// Disagreements names every checked point whose fluid answer could not
	// be trusted: share disagreement beyond tolerance, or a non-converged
	// fluid solve. Empty means the sweep passed.
	Disagreements []string
}

// OK reports whether every check passed.
func (r *SweepResult) OK() bool { return len(r.Disagreements) == 0 }

// Format renders the sweep as a plain byte-stable table: one row per
// point, with delta/status columns on checked rows.
func (r *SweepResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %-8s %10s %8s %8s  %s\n",
		"point", "fidelity", "agg_mbps", "share0", "delta", "status")
	for _, p := range r.Points {
		prim := p.Fluid
		if prim == nil {
			prim = p.Packet
		}
		status := "-"
		delta := "-"
		if p.Checked {
			delta = fmt.Sprintf("%.3f", p.Delta)
			if p.OK {
				status = "ok"
			} else if p.Fluid != nil && !p.Fluid.Converged {
				status = "no-converge"
			} else {
				status = "FAIL"
			}
		} else if prim.Fidelity == "fluid" && !prim.Converged {
			status = "no-converge"
		}
		fmt.Fprintf(&sb, "%-40s %-8s %10.2f %8.3f %8s  %s\n",
			p.ID(), prim.Fidelity, prim.AggregateBps/1e6, prim.Shares[0], delta, status)
	}
	fmt.Fprintf(&sb, "points %d  checked %d  disagreements %d\n",
		len(r.Points), r.Checked, len(r.Disagreements))
	return sb.String()
}

// Sweep fans the grid out. In hybrid mode (the default) every point gets a
// fluid answer, a deterministic seed-derived sample is re-run on the
// packet engine, and each sampled point's per-path shares are compared
// within Tol — the methodology EXPERIMENTS.md's "Hybrid sweeps" section
// documents. The sweep itself never fails on a disagreement; callers gate
// on SweepResult.OK (mptcp-bench exits non-zero naming the points).
//
// An error from any engine run (unknown name, cancelled context, starved
// scenario) aborts the sweep.
func Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	spec = spec.WithDefaults()
	switch spec.Backend {
	case "fluid", "packet", "hybrid":
	default:
		return nil, fmt.Errorf("backend: unknown backend %q (have packet, fluid, hybrid)", spec.Backend)
	}
	pts := spec.Grid()
	if len(pts) == 0 {
		return nil, fmt.Errorf("backend: empty sweep grid")
	}
	for _, p := range pts {
		if err := p.Scenario(spec).Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", p.ID(), err)
		}
	}

	out := &SweepResult{Points: make([]PointResult, len(pts))}

	if spec.Backend == "packet" {
		results, errs := runner.MapErrCtx(ctx, spec.Workers, len(pts), func(i int) (Result, error) {
			return PacketEngine{}.Run(ctx, pts[i].Scenario(spec))
		})
		if err := runner.FirstErr(errs); err != nil {
			return nil, err
		}
		for i := range pts {
			res := results[i]
			out.Points[i] = PointResult{Point: pts[i], Packet: &res}
		}
		return out, nil
	}

	// Fluid pass over the whole grid.
	results, errs := runner.MapErrCtx(ctx, spec.Workers, len(pts), func(i int) (Result, error) {
		return FluidEngine{}.Run(ctx, pts[i].Scenario(spec))
	})
	if err := runner.FirstErr(errs); err != nil {
		return nil, err
	}
	for i := range pts {
		res := results[i]
		out.Points[i] = PointResult{Point: pts[i], Fluid: &res}
	}
	if spec.Backend == "fluid" {
		return out, nil
	}

	// Packet spot checks on the seed-derived sample.
	picked := spec.SpotIndices(pts)
	sample := make([]int, 0, len(picked))
	for i := range pts {
		if picked[i] {
			sample = append(sample, i)
		}
	}
	checks, errs := runner.MapErrCtx(ctx, spec.Workers, len(sample), func(k int) (Result, error) {
		return PacketEngine{}.Run(ctx, pts[sample[k]].Scenario(spec))
	})
	if err := runner.FirstErr(errs); err != nil {
		return nil, err
	}
	for k, i := range sample {
		pr := &out.Points[i]
		res := checks[k]
		pr.Packet = &res
		pr.Checked = true
		for r := range pr.Fluid.Shares {
			if d := math.Abs(pr.Fluid.Shares[r] - res.Shares[r]); d > pr.Delta {
				pr.Delta = d
			}
		}
		pr.OK = pr.Fluid.Converged && pr.Delta <= spec.Tol
		out.Checked++
		if !pr.OK {
			out.Disagreements = append(out.Disagreements,
				fmt.Sprintf("%s: delta %.3f tol %.2f converged %v", pr.ID(), pr.Delta, spec.Tol, pr.Fluid.Converged))
		}
	}
	return out, nil
}
