package backend

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEnginesMatchConformanceGolden pins the backend engines to the
// committed conformance table: for every clean golden row (no Eq. 6 price,
// no cross traffic — those rows carry harness-only knobs the Scenario
// surface deliberately omits), the packet engine on "twopath-asym" must
// reproduce the golden's pkt columns and the fluid engine — evaluated at
// the packet run's measured operating point, exactly as the validator does
// — must reproduce the fluid columns, byte-for-byte at the golden's %.3f
// precision. This is what makes internal/check's validation transfer to
// the backend seam: the validator and the engines cannot drift apart
// without this test seeing it.
func TestEnginesMatchConformanceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("nine full-horizon packet runs")
	}
	data, err := os.ReadFile(filepath.Join("..", "check", "testdata", "conformance_golden.txt"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	// Rows whose harness spec sets price/phi/cross; the Scenario surface has
	// no per-link price and its Load axis is not the shifting row's setup.
	harnessOnly := map[string]bool{"dtsep": true, "dts-shift": true}

	rows := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Scan() // header
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 8 {
			t.Fatalf("malformed golden row %q", sc.Text())
		}
		alg := f[0]
		if harnessOnly[alg] {
			continue
		}
		rows++
		t.Run(alg, func(t *testing.T) {
			scenario := Scenario{Topology: "twopath-asym", Algorithm: alg, EnergyModel: "none"}
			pres, err := PacketEngine{}.Run(context.Background(), scenario)
			if err != nil {
				t.Fatalf("packet: %v", err)
			}
			for r, want := range []string{f[3], f[4]} {
				if got := fmt.Sprintf("%.3f", pres.Shares[r]); got != want {
					t.Errorf("packet share[%d] = %s, golden pkt%d = %s", r, got, r, want)
				}
			}

			fsc := scenario
			fsc.Op = &pres.Op
			fres, err := FluidEngine{}.Run(context.Background(), fsc)
			if err != nil {
				t.Fatalf("fluid: %v", err)
			}
			if !fres.Converged {
				t.Fatalf("fluid solve did not converge")
			}
			for r, want := range []string{f[1], f[2]} {
				if got := fmt.Sprintf("%.3f", fres.Shares[r]); got != want {
					t.Errorf("fluid share[%d] = %s, golden fluid%d = %s", r, got, r, want)
				}
			}
		})
	}
	if rows != 9 {
		t.Fatalf("matched %d clean golden rows, want 9", rows)
	}
}
