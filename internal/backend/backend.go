// Package backend puts the packet simulator and the Eq. 3 fluid model
// behind one backend-neutral seam: a Scenario (topology + algorithm +
// cross-traffic load + horizon) goes in, a Result (per-path equilibrium
// rates and shares, aggregate goodput, energy estimate, fidelity tag)
// comes out, and the Engine interface hides which machinery answered.
//
// Two engines implement it. PacketEngine runs the full netem/tcp/mptcp
// stack — every ACK clock, queue drop and RTO — and is the ground truth.
// FluidEngine solves the paper's Eq. 3 equilibrium through the same
// fluid.ModelFor mapping the conformance harness validates, at a fraction
// of the cost: microseconds per point instead of seconds. Sweep fans a
// (topology × algorithm × load) grid to the fluid engine and re-runs a
// deterministic, seed-derived sample on the packet engine so fluid answers
// are never trusted blind.
//
// The contract, the fidelity model (what fluid can and cannot answer), and
// backend-selection guidance are documented in docs/backends.md.
package backend

import (
	"context"
	"fmt"
	"sort"

	"mptcpsim/internal/core"
	"mptcpsim/internal/energy"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
)

// Wire conventions shared with the conformance harness (internal/check):
// a full segment occupies wirePkt bytes on the wire (MSS 1448 + 52 header),
// ACKs ride headerBytes-sized packets.
const (
	wirePkt     = 1500
	mssBytes    = 1448
	headerBytes = 52
)

// priceExp is the Kelly price exponent the fluid engine solves with — the
// same sharpened b = 20 the conformance harness uses, because the packet
// scenarios' DropTail queues are a hard capacity knee (no loss below
// capacity, heavy loss above) that the default soft price misrepresents.
const priceExp = 20

// Scenario is a backend-neutral experiment description: which topology,
// which algorithm, how much competing load, and how long to (simulatedly)
// run. The zero values of Seed/Horizon/Warmup/EnergyModel take defaults;
// Topology and Algorithm are required.
type Scenario struct {
	// Topology names a registered topology (see Topologies).
	Topology string

	// Algorithm names a registered congestion-control algorithm
	// (core.Names). The fluid engine additionally requires a fluid mapping
	// (fluid.ModelFor) — every registered algorithm has one except dctcp.
	Algorithm string

	// Load is the cross-traffic level: a CBR source on the LAST path's
	// shared hop sending at Load × that path's capacity. Zero means no
	// competing traffic; values at or above 1 saturate the path and are
	// rejected. Loading the last path follows the conformance harness's
	// traffic-shifting row (cross on the slower path).
	Load float64

	// Seed seeds the packet engine (default 1 — the conformance seed).
	// The fluid engine is deterministic and ignores it.
	Seed int64

	// Horizon is the simulated run length (default 60 s); Warmup is the
	// prefix excluded from measurement (default Horizon/3). The defaults
	// reproduce the conformance harness's 60 s / 20 s window.
	Horizon sim.Time
	Warmup  sim.Time

	// EnergyModel selects the host power model integrated over the
	// measurement window: "i7" (default), "xeon", or "none".
	EnergyModel string

	// Op, when set, pins the operating point (per-path SRTT and
	// baseRTT/SRTT) the fluid engine parameterizes ψ with, instead of the
	// engine's own topology-derived estimate. The conformance-parity tests
	// inject measured packet operating points here; ordinary sweeps leave
	// it nil. The packet engine ignores it.
	Op *OperatingPoint
}

// OperatingPoint is the measured or estimated state the Eq. 3 model is
// evaluated at: per-path smoothed RTTs (seconds) and baseRTT/SRTT
// fractions, index-aligned with the topology's paths.
type OperatingPoint struct {
	RTT  []float64
	Frac []float64
}

// WithDefaults returns the scenario with zero values replaced by the
// documented defaults.
func (s Scenario) WithDefaults() Scenario {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Horizon == 0 {
		s.Horizon = 60 * sim.Second
	}
	if s.Warmup == 0 {
		s.Warmup = s.Horizon / 3
	}
	if s.EnergyModel == "" {
		s.EnergyModel = "i7"
	}
	return s
}

// Validate checks the scenario against the registries. It validates the
// defaulted form, so a zero-filled scenario with valid Topology/Algorithm
// passes.
func (s Scenario) Validate() error {
	s = s.WithDefaults()
	top, ok := TopologyFor(s.Topology)
	if !ok {
		return fmt.Errorf("backend: unknown topology %q (have %v)", s.Topology, Topologies())
	}
	if _, err := core.New(s.Algorithm); err != nil {
		return fmt.Errorf("backend: %w", err)
	}
	if s.Load < 0 || s.Load >= 1 {
		return fmt.Errorf("backend: load %v outside [0, 1)", s.Load)
	}
	if s.Warmup >= s.Horizon {
		return fmt.Errorf("backend: warmup %v >= horizon %v", s.Warmup, s.Horizon)
	}
	if _, err := energyModel(s.EnergyModel); err != nil {
		return err
	}
	if s.Op != nil {
		if len(s.Op.RTT) != len(top.Paths) || len(s.Op.Frac) != len(top.Paths) {
			return fmt.Errorf("backend: operating point has %d/%d entries for %d paths",
				len(s.Op.RTT), len(s.Op.Frac), len(top.Paths))
		}
	}
	return nil
}

// Result is a backend-neutral answer. Fidelity tags which machinery
// produced it — "packet" results carry the full transient behaviour of the
// discrete-event run, "fluid" results are equilibrium solutions only (see
// docs/backends.md for what that excludes).
type Result struct {
	// Fidelity is "packet" or "fluid".
	Fidelity string

	// RateBps is the per-path goodput over the measurement window in
	// bits/s; Shares is the same normalized to the aggregate;
	// AggregateBps is the sum.
	RateBps      []float64
	Shares       []float64
	AggregateBps float64

	// Joules is the energy the scenario's host power model integrates over
	// the measurement window (0 when EnergyModel is "none").
	Joules float64

	// Converged is always true for packet results. For fluid results it
	// reports whether the integration settled — false means the rates are
	// the last iterate of a non-converging run and must not be read as an
	// equilibrium.
	Converged bool

	// Op is the operating point the result was computed at: measured
	// (packet) or estimated/injected (fluid).
	Op OperatingPoint

	// Events is the discrete-event count a packet run processed (0 for
	// fluid) — the cost signal behind the backend-selection guidance.
	Events uint64
}

// Engine answers scenarios at one fidelity. Implementations are stateless
// and safe for concurrent use; every Run builds its own world.
type Engine interface {
	Name() string
	Run(ctx context.Context, sc Scenario) (Result, error)
}

// Topology is a registered scenario topology: N parallel link-disjoint
// paths between one sender-receiver pair (topo.NPath).
type Topology struct {
	Name  string
	Desc  string
	Paths []topo.NPathSpec
}

// topologies is the registry. All specs are fully explicit (no NPathSpec
// defaults in play) so the fluid engine can read capacities and queues
// straight off them.
var topologies = map[string]Topology{
	"twopath-sym": {
		Name: "twopath-sym",
		Desc: "two symmetric 12 Mb/s paths, 20 ms delay",
		Paths: []topo.NPathSpec{
			{Rate: 12 * 1e6, Delay: 20 * sim.Millisecond, Queue: 50},
			{Rate: 12 * 1e6, Delay: 20 * sim.Millisecond, Queue: 50},
		},
	},
	"twopath-asym": {
		Name: "twopath-asym",
		Desc: "the conformance scenario: 16 + 8 Mb/s, 20 ms delay",
		Paths: []topo.NPathSpec{
			{Rate: 16 * 1e6, Delay: 20 * sim.Millisecond, Queue: 50},
			{Rate: 8 * 1e6, Delay: 20 * sim.Millisecond, Queue: 50},
		},
	},
	"threepath": {
		Name: "threepath",
		Desc: "three asymmetric paths: 24 + 12 + 6 Mb/s, 20 ms delay",
		Paths: []topo.NPathSpec{
			{Rate: 24 * 1e6, Delay: 20 * sim.Millisecond, Queue: 50},
			{Rate: 12 * 1e6, Delay: 20 * sim.Millisecond, Queue: 50},
			{Rate: 6 * 1e6, Delay: 20 * sim.Millisecond, Queue: 50},
		},
	},
	"hetdelay": {
		Name: "hetdelay",
		Desc: "heterogeneous delays: 16 Mb/s @ 10 ms + 8 Mb/s @ 40 ms",
		Paths: []topo.NPathSpec{
			{Rate: 16 * 1e6, Delay: 10 * sim.Millisecond, Queue: 50},
			{Rate: 8 * 1e6, Delay: 40 * sim.Millisecond, Queue: 50},
		},
	},
}

// Topologies lists the registered topology names in sorted order.
func Topologies() []string {
	names := make([]string, 0, len(topologies))
	for n := range topologies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TopologyFor looks a topology up by name.
func TopologyFor(name string) (Topology, bool) {
	t, ok := topologies[name]
	return t, ok
}

// energyModel resolves a Scenario.EnergyModel name; "none" returns nil.
func energyModel(name string) (energy.Model, error) {
	switch name {
	case "i7":
		return energy.NewI7(), nil
	case "xeon":
		return energy.NewXeon(), nil
	case "none":
		return nil, nil
	default:
		return nil, fmt.Errorf("backend: unknown energy model %q (have i7, xeon, none)", name)
	}
}
