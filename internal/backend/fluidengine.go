package backend

import (
	"context"
	"fmt"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/fluid"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
)

// FluidEngine answers scenarios by solving the paper's Eq. 3 equilibrium —
// the same model, algorithm mapping (fluid.ModelFor) and solver
// (EquilibriumShares) the conformance harness validates against packet
// runs. It costs microseconds per scenario where the packet engine costs
// seconds, and it answers only equilibrium questions: no loss-episode
// transients, no failover dynamics, no per-RTT behaviour (docs/backends.md
// spells out the fidelity model).
type FluidEngine struct{}

// Name implements Engine.
func (FluidEngine) Name() string { return "fluid" }

// Run implements Engine.
func (FluidEngine) Run(ctx context.Context, sc Scenario) (Result, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	top, _ := TopologyFor(sc.Topology)
	model, ok := fluid.ModelFor(sc.Algorithm)
	if !ok {
		return Result{}, fmt.Errorf("backend: %s has no fluid mapping; use the packet engine", sc.Algorithm)
	}

	paths, op := fluidPaths(top, sc)
	res := Result{Fidelity: "fluid", Op: op}

	var shares, rates []float64
	if model.Oracle != nil {
		// Delay-based family: the oracle fills each path's free capacity.
		shares = model.Oracle(paths)
		rates = make([]float64, len(paths))
		for r, p := range paths {
			free := p.Capacity - p.Cross
			if free < 0 {
				free = 0
			}
			rates[r] = free
		}
		res.Converged = true
	} else {
		s := &fluid.System{Paths: paths, PriceExp: priceExp}
		s.Psi = model.Psi(op.RTT, op.Frac)
		shares, rates, res.Converged = s.EquilibriumShares(1e-3, 400000)
	}

	res.Shares = shares
	res.RateBps = make([]float64, len(rates))
	for r, x := range rates {
		res.RateBps[r] = x * 8 * wirePkt
		res.AggregateBps += res.RateBps[r]
	}
	res.Joules = fluidJoules(sc, res, op)
	return res, nil
}

// fluidPaths converts a topology into Eq. 3 paths plus the operating point
// the model is evaluated at. Capacities and base RTTs are read off the
// built netem topology (so serialization delays are included exactly as
// the packet engine sees them). The default operating point models the
// loss-based steady state: the bottleneck DropTail queue oscillates
// between empty (right after a synchronized drop) and full, so SRTT is
// estimated at baseRTT plus half the queue's drain time. Scenario.Op
// overrides the estimate with a measured one.
func fluidPaths(top Topology, sc Scenario) ([]fluid.Path, OperatingPoint) {
	eng := sim.NewEngine(1)
	n := topo.NewNPath(eng, top.Paths...)
	ps := n.Paths()

	paths := make([]fluid.Path, len(ps))
	op := OperatingPoint{RTT: make([]float64, len(ps)), Frac: make([]float64, len(ps))}
	for r, p := range ps {
		rate := float64(p.MinRate())
		base := p.BaseRTT(wirePkt, headerBytes).Seconds()
		queueDelay := float64(top.Paths[r].Queue) * wirePkt * 8 / rate
		srtt := base + queueDelay/2
		op.RTT[r] = srtt
		op.Frac[r] = base / srtt
		paths[r] = fluid.Path{RTT: srtt, Capacity: rate / (8 * wirePkt)}
	}
	if sc.Op != nil {
		op = *sc.Op
		for r := range paths {
			paths[r].RTT = op.RTT[r]
		}
	}
	if sc.Load > 0 {
		last := len(paths) - 1
		paths[last].Cross = sc.Load * paths[last].Capacity
	}
	return paths, op
}

// fluidJoules estimates the measurement-window energy the packet engine's
// meter would integrate: the host power model evaluated once at the
// equilibrium (aggregate goodput, subflow count, traffic-weighted mean
// RTT) times the window — the steady-state reading, with no transient
// contribution by construction.
func fluidJoules(sc Scenario, res Result, op OperatingPoint) float64 {
	model, _ := energyModel(sc.EnergyModel)
	if model == nil {
		return 0
	}
	var rttWeighted, weight float64
	for r := range op.RTT {
		rttWeighted += res.RateBps[r] * op.RTT[r]
		weight += res.RateBps[r]
	}
	smp := energy.Sample{
		ThroughputBps: res.AggregateBps,
		Subflows:      len(op.RTT),
	}
	if weight > 0 {
		smp.MeanRTTSeconds = rttWeighted / weight
	}
	window := sc.Horizon - sc.Warmup
	return model.Power(smp) * window.Seconds()
}
