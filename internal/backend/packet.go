package backend

import (
	"context"
	"fmt"
	"math"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

// PacketEngine answers scenarios with a full discrete-event run of the
// netem/tcp/mptcp stack — the ground-truth backend. Its measurement
// protocol is the conformance harness's: snapshot cumulative acks at
// warmup, sample SRTT every 250 ms through the window, read the deltas at
// the horizon. On the conformance topology at the conformance seed it is
// run-for-run identical with internal/check's packet side.
type PacketEngine struct{}

// Name implements Engine.
func (PacketEngine) Name() string { return "packet" }

// Run implements Engine. Cancelling ctx stops the simulation at the next
// simulated-second boundary and returns the context's error.
func (PacketEngine) Run(ctx context.Context, sc Scenario) (Result, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	top, _ := TopologyFor(sc.Topology)

	eng := sim.NewEngine(sc.Seed)
	n := topo.NewNPath(eng, top.Paths...)
	conn, err := mptcp.New(eng, mptcp.Config{Algorithm: sc.Algorithm}, 1, n.Paths()...)
	if err != nil {
		return Result{}, fmt.Errorf("backend: %w", err)
	}
	if sc.Load > 0 {
		last := len(top.Paths) - 1
		rate := int64(sc.Load * float64(top.Paths[last].Rate))
		// Cross traffic enters at the shared hop, keeping the sender's
		// access link clean — the conformance convention.
		workload.NewCBR(eng, n.Paths()[last].Forward[1:], rate, wirePkt).Start()
	}

	var meter *energy.Meter
	if model, _ := energyModel(sc.EnergyModel); model != nil {
		meter = energy.NewMeter(eng, model, energy.ConnProbe(conn), 0)
	}

	subs := conn.Subflows()
	ackAt := make([]int64, len(subs))
	srttSum := make([]float64, len(subs))
	var srttN int
	eng.Schedule(sc.Warmup, func() {
		for r := range ackAt {
			ackAt[r] = subs[r].Acked()
		}
		if meter != nil {
			meter.Start()
		}
	})
	var sample func()
	sample = func() {
		for r := range srttSum {
			srttSum[r] += subs[r].SRTT().Seconds()
		}
		srttN++
		if eng.Now() < sc.Horizon {
			eng.ScheduleAfter(250*sim.Millisecond, sample)
		}
	}
	eng.Schedule(sc.Warmup, sample)

	// Cooperative cancellation: poll the context once per simulated second
	// and stop the engine early when it fires.
	var poll func()
	poll = func() {
		if ctx.Err() != nil {
			eng.Stop()
			return
		}
		if eng.Now() < sc.Horizon {
			eng.ScheduleAfter(sim.Second, poll)
		}
	}
	eng.ScheduleAfter(sim.Second, poll)

	conn.Start()
	eng.Run(sc.Horizon)
	if meter != nil {
		meter.Flush()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	res := Result{
		Fidelity:  "packet",
		Converged: true,
		Events:    eng.Processed(),
		Op:        OperatingPoint{RTT: make([]float64, len(subs)), Frac: make([]float64, len(subs))},
		RateBps:   make([]float64, len(subs)),
		Shares:    make([]float64, len(subs)),
	}
	window := (sc.Horizon - sc.Warmup).Seconds()
	var total float64
	delta := make([]float64, len(subs))
	for r, s := range subs {
		delta[r] = float64(s.Acked() - ackAt[r])
		total += delta[r]
	}
	if total <= 0 {
		return Result{}, fmt.Errorf("backend: %s/%s: no goodput in measurement window", sc.Topology, sc.Algorithm)
	}
	for r, s := range subs {
		res.Shares[r] = delta[r] / total
		res.RateBps[r] = delta[r] * 8 * mssBytes / window
		res.AggregateBps += res.RateBps[r]
		res.Op.RTT[r] = srttSum[r] / float64(srttN)
		if base := s.BaseRTT().Seconds(); base > 0 && res.Op.RTT[r] > 0 {
			res.Op.Frac[r] = math.Min(base/res.Op.RTT[r], 1)
		} else {
			res.Op.Frac[r] = 1
		}
	}
	if meter != nil {
		res.Joules = meter.Joules()
	}
	return res, nil
}
