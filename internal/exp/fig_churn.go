package exp

import (
	"fmt"

	"mptcpsim/internal/faults"
	"mptcpsim/internal/flows"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/obsv"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/stats"
	"mptcpsim/internal/supervise"
)

// This file adds the population-scale churn experiment the ROADMAP's
// "millions of users" axis calls for: an open-loop arrival process births
// and kills tens of thousands of short MPTCP flows on a FatTree while a
// deterministic fault schedule runs underneath, and the table reports the
// per-flow outcome percentiles (FCT, goodput, attributable joules) that
// the paper's steady-state energy claims translate to under churn.

// churnAlgorithms and churnScenarios are the experiment's axes. Both are
// splittable: every run's identity (seed, topology, record name) derives
// from the axis values alone, so campaign units shard and resume exactly
// like the other figures.
var (
	churnAlgorithms = []string{"lia", "olia", "dts-lia"}
	churnScenarios  = []string{"open", "overload"}
)

// churnOut is one run's rendered row plus the throughput counters the
// benchmark payload reports.
type churnOut struct {
	cells  []string
	events uint64
	flows  uint64
}

// runChurn executes one algorithm under one arrival regime on a FatTree
// sized by the scale knob, with a switch-link fault schedule running
// concurrently with the arrival storm.
func runChurn(cfg Config, wd *supervise.Watchdog, alg, scenario string) churnOut {
	seed := cfg.Seed
	eng := sim.NewEngine(seed)
	wd.Attach(eng)
	obs := cfg.observe(eng, "churn", scenario, alg, seed)

	net := dcBuild(eng, "fattree", cfg.Scale)
	hosts := net.Hosts()
	total := cfg.scaled(50_000, 800)

	// The open regime offers what the tree can drain; overload modulates
	// between a baseline and a storm an order of magnitude past it, with an
	// admission cap sized to hold >= 10k concurrent flows at full scale
	// (128 hosts x 94). The storm rate per admission slot (400/94 ~ 4.3/s)
	// exceeds the drain rate a congested tree manages at any scale, so the
	// live count hits the cap and shedding — not memory growth — absorbs
	// the excess.
	var arrivals flows.Arrivals
	var capFlows int
	openRate := float64(hosts) * 40
	switch scenario {
	case "open":
		arrivals = flows.Poisson{Rate: openRate}
	case "overload":
		arrivals = &flows.MMPP2{
			RateLow: float64(hosts) * 20, RateHigh: float64(hosts) * 400,
			MeanLow: 500 * sim.Millisecond, MeanHigh: 500 * sim.Millisecond,
		}
		capFlows = hosts * 94
	default:
		panic("exp: unknown churn scenario " + scenario)
	}

	mgr := flows.MustNew(eng, net, flows.Config{
		Algorithm:     alg,
		TotalFlows:    total,
		MaxConcurrent: capFlows,
		Arrivals:      arrivals,
		Check:         obs.Inv(),
		Emit: func(r flows.Report) {
			obs.Flow(obsv.Flow{
				T: r.At.Seconds(), ID: r.ID, Class: r.Class.String(),
				Bytes: r.Bytes, FCTSeconds: r.FCT.Seconds(),
				GoodputBps: r.GoodputBps, Joules: r.Joules,
				Subflows: r.Subflows, Shed: r.Shed,
			})
		},
	})
	obs.Sample("flows.live", func() float64 { return float64(mgr.Live()) })
	obs.Sample("flows.offered", func() float64 { return float64(mgr.Stats().Offered) })
	obs.Sample("flows.shed", func() float64 { return float64(mgr.Stats().ShedCapacity) })

	// Fault schedule concurrent with the churn: one switch link dies
	// mid-storm and heals, another flaps throughout — failover must keep
	// working while flows are being born and torn down. Instants are
	// fractions of the arrival phase so every scale exercises them while
	// arrivals are still coming.
	arrDur := sim.Time(float64(total) / openRate * float64(sim.Second))
	if sw, ok := net.(interface{ SwitchLinks() []*netem.Link }); ok {
		links := sw.SwitchLinks()
		faults.ApplyLinks(eng, links[:1], faults.Outage{Down: arrDur / 4, Up: arrDur / 2})
		faults.ApplyLinks(eng, links[1:2], faults.Flap{
			Start: arrDur / 6, Period: arrDur / 3, DownFor: arrDur / 12,
		})
	}

	mgr.OnDrained = eng.Stop
	obs.Start()
	mgr.Start()
	// Generous backstop: the run normally stops when the population
	// drains; whatever is still alive at the horizon is cut and accounted.
	eng.Run(4*arrDur + 60*sim.Second)
	mgr.CutLive()

	st := mgr.Stats()
	fcts, gputs, joules := mgr.FCTs(), mgr.Goodputs(), mgr.Joules()
	p := func(xs []float64, q float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		return stats.Percentile(xs, q)
	}
	obs.Summary("flows_offered", float64(st.Offered))
	obs.Summary("flows_completed", float64(st.Completed))
	obs.Summary("flows_shed", float64(st.ShedCapacity))
	obs.Summary("flows_cut", float64(st.Cut))
	obs.Summary("peak_live", float64(st.PeakLive))
	obs.Summary("fct_p99_s", p(fcts, 99))
	obs.Summary("j_per_flow_p99", p(joules, 99))
	obs.Close()

	return churnOut{
		cells: []string{
			scenario, alg,
			fmt.Sprintf("%d", st.Offered),
			fmt.Sprintf("%d", st.Completed),
			fmt.Sprintf("%d", st.ShedCapacity),
			fmt.Sprintf("%d", st.Cut),
			fmt.Sprintf("%d", st.PeakLive),
			fmtF(p(fcts, 50), 3), fmtF(p(fcts, 95), 3), fmtF(p(fcts, 99), 3),
			fmtF(p(gputs, 50)/1e6, 2),
			fmtF(p(joules, 50), 3), fmtF(p(joules, 95), 3), fmtF(p(joules, 99), 3),
		},
		events: eng.Processed(),
		flows:  st.Offered,
	}
}

// FigChurn runs the churn suite: each algorithm under the open and
// overloaded arrival regimes.
func FigChurn(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:    "churn",
		Title: "Population churn: open-loop arrivals on FatTree, per-flow FCT/energy",
		Columns: []string{"scenario", "alg", "offered", "completed", "shed", "cut", "peak",
			"fct_p50_s", "fct_p95_s", "fct_p99_s", "gput_p50_mbps",
			"j_p50", "j_p95", "j_p99"},
		Notes: []string{
			"open-loop Poisson/MMPP arrivals, heavy-tailed sizes (web/bulk/stream mix); percentiles over completed flows",
			"offered == completed + shed + cut always (zero silent loss); overload sheds deterministically at the admission cap",
			"switch-link outage+flap run concurrently with the arrival storm; joules are marginal energy over the idle floor",
		},
	}
	algs := filterAxis(churnAlgorithms, cfg.Algorithm)
	scenarios := filterAxis(churnScenarios, cfg.Scenario)
	outs := runPar(cfg, res, len(scenarios)*len(algs), func(i int, wd *supervise.Watchdog) churnOut {
		return runChurn(cfg, wd, algs[i%len(algs)], scenarios[i/len(algs)])
	})
	for _, o := range outs {
		if o.cells == nil {
			continue
		}
		res.AddRow(o.cells...)
		res.Events += o.events
		res.Flows += o.flows
	}
	return res
}
