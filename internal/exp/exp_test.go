package exp

import (
	"strconv"
	"strings"
	"testing"
)

// tiny is the configuration the test suite uses: small fan-outs, short
// horizons, single repetitions — with the invariant checker on, so every
// figure run in the suite is also a conformance run.
var tiny = Config{Seed: 1, Scale: 0.05, Reps: 1, Check: true}

// skipIfShort skips the heavyweight figure runners in -short mode. The
// runners are single-threaded simulation loops with no goroutines, so the
// race detector's ~20x slowdown buys nothing there and turns the suite
// into hours; `make race` and CI run `go test -race -short ./...` and get
// their race coverage from the transport packages (and the faults suite,
// which stays enabled).
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("figure runner skipped in -short mode")
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, res *Result, row int, col string) float64 {
	t.Helper()
	idx := -1
	for i, c := range res.Columns {
		if c == col {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("%s: no column %q in %v", res.ID, col, res.Columns)
	}
	if row >= len(res.Rows) {
		t.Fatalf("%s: row %d out of %d", res.ID, row, len(res.Rows))
	}
	v, err := strconv.ParseFloat(res.Rows[row][idx], 64)
	if err != nil {
		t.Fatalf("%s: cell %d/%s = %q is not numeric", res.ID, row, col, res.Rows[row][idx])
	}
	return v
}

// findRow locates the first row whose cells start with the given prefix
// values.
func findRow(t *testing.T, res *Result, prefix ...string) int {
	t.Helper()
	for i, row := range res.Rows {
		ok := true
		for j, p := range prefix {
			if j >= len(row) || row[j] != p {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	t.Fatalf("%s: no row with prefix %v", res.ID, prefix)
	return -1
}

func TestRegistryComplete(t *testing.T) {
	if got := len(All()); got != 22 {
		t.Errorf("registered %d experiments, want 16 figures + 4 ablations + faults + churn", got)
	}
	for _, id := range IDs() {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed for listed ID", id)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup of unknown ID succeeded")
	}
}

func TestResultRendering(t *testing.T) {
	res := &Result{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	res.AddRow("1", "2")
	out := res.String()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "bb") {
		t.Errorf("rendered table missing pieces:\n%s", out)
	}
}

func TestFig1PowerGrowsWithSubflows(t *testing.T) {
	skipIfShort(t)
	res := Fig1(tiny)
	if len(res.Rows) != 5 {
		t.Fatalf("fig1 has %d rows, want 5", len(res.Rows))
	}
	tcp := cell(t, res, 0, "power_w")
	first := cell(t, res, 1, "power_w")
	last := cell(t, res, len(res.Rows)-1, "power_w")
	if tcp >= first {
		t.Errorf("TCP power %.2f W not below MPTCP's %.2f W", tcp, first)
	}
	if last <= first {
		t.Errorf("power with 8 subflows (%.2f W) not above 2 subflows (%.2f W)", last, first)
	}
}

func TestFig2MPTCPCostsMoreOnHandset(t *testing.T) {
	skipIfShort(t)
	res := Fig2(tiny)
	wifi := cell(t, res, findRow(t, res, "tcp-wifi"), "power_w")
	lte := cell(t, res, findRow(t, res, "tcp-lte"), "power_w")
	both := cell(t, res, findRow(t, res, "mptcp-wifi+lte"), "power_w")
	if both <= wifi || both <= lte {
		t.Errorf("MPTCP power %.2f W not above TCP-WiFi %.2f W and TCP-LTE %.2f W", both, wifi, lte)
	}
}

func TestFig3aEnergyFallsPowerFlat(t *testing.T) {
	skipIfShort(t)
	res := Fig3a(tiny)
	e200 := cell(t, res, 0, "energy_j")
	e1000 := cell(t, res, len(res.Rows)-1, "energy_j")
	if e1000 >= e200 {
		t.Errorf("wired energy at 1 Gb/s (%.0f J) not below 200 Mb/s (%.0f J)", e1000, e200)
	}
	p200 := cell(t, res, 0, "power_w")
	p1000 := cell(t, res, len(res.Rows)-1, "power_w")
	rise := (p1000 - p200) / p200
	if rise < 0.05 || rise > 0.35 {
		t.Errorf("wired power rise %.0f%%, want gentle (~15%%)", rise*100)
	}
}

func TestFig3bPowerRisesSharply(t *testing.T) {
	skipIfShort(t)
	res := Fig3b(tiny)
	p10 := cell(t, res, 0, "power_w")
	p50 := cell(t, res, len(res.Rows)-1, "power_w")
	rise := (p50 - p10) / p10
	if rise < 0.5 {
		t.Errorf("WiFi power rise %.0f%%, want sharp (~90%%)", rise*100)
	}
	e10 := cell(t, res, 0, "energy_j")
	e50 := cell(t, res, len(res.Rows)-1, "energy_j")
	if e50 >= e10 {
		t.Errorf("WiFi energy at 50 Mb/s (%.0f J) not below 10 Mb/s (%.0f J)", e50, e10)
	}
}

func TestFig4PowerGrowsWithRTT(t *testing.T) {
	skipIfShort(t)
	res := Fig4(tiny)
	rtt1 := cell(t, res, 0, "mean_rtt_ms")
	rtt3 := cell(t, res, len(res.Rows)-1, "mean_rtt_ms")
	if rtt3 <= rtt1 {
		t.Errorf("measured RTT on high-delay paths (%.1f ms) not above low-delay (%.1f ms)", rtt3, rtt1)
	}
	p1 := cell(t, res, 0, "power_w")
	p3 := cell(t, res, len(res.Rows)-1, "power_w")
	if p3 <= p1 {
		t.Errorf("power on high-delay paths (%.2f W) not above low-delay (%.2f W)", p3, p1)
	}
	// Throughput is bottleneck-pinned: roughly equal across configs.
	t1 := cell(t, res, 0, "throughput_mbps")
	t3 := cell(t, res, len(res.Rows)-1, "throughput_mbps")
	if t3 < 0.8*t1 || t3 > 1.2*t1 {
		t.Errorf("throughput changed %.1f -> %.1f Mb/s; Fig. 4 holds it fixed", t1, t3)
	}
}

func TestFig6BoxesOrdered(t *testing.T) {
	skipIfShort(t)
	res := Fig6(tiny)
	if len(res.Rows) != 4*4 {
		t.Fatalf("fig6 has %d rows, want 16", len(res.Rows))
	}
	for i := range res.Rows {
		min := cell(t, res, i, "min_j")
		q1 := cell(t, res, i, "q1_j")
		med := cell(t, res, i, "median_j")
		q3 := cell(t, res, i, "q3_j")
		max := cell(t, res, i, "max_j")
		if !(min <= q1 && q1 <= med && med <= q3 && q3 <= max) {
			t.Errorf("row %v: box out of order", res.Rows[i])
		}
		if med <= 0 {
			t.Errorf("row %v: non-positive median energy", res.Rows[i])
		}
	}

	// The declared algorithm axis: an olia-only run reproduces the full
	// grid's olia rows byte-for-byte (campaign units split on this).
	sliceCfg := tiny
	sliceCfg.Algorithm = "olia"
	slice := Fig6(sliceCfg)
	var want [][]string
	for _, row := range res.Rows {
		if row[1] == "olia" {
			want = append(want, row)
		}
	}
	if len(slice.Rows) != len(want) {
		t.Fatalf("olia slice has %d rows, want %d", len(slice.Rows), len(want))
	}
	for i := range want {
		if strings.Join(slice.Rows[i], "|") != strings.Join(want[i], "|") {
			t.Errorf("olia-slice row %d = %v, full-grid twin %v", i, slice.Rows[i], want[i])
		}
	}
}

func TestFig7AllAlgorithmsProduceRows(t *testing.T) {
	skipIfShort(t)
	res := Fig7(tiny)
	if len(res.Rows) != len(fig7Algorithms) {
		t.Fatalf("fig7 has %d rows, want %d", len(res.Rows), len(fig7Algorithms))
	}
	for i := range res.Rows {
		if tput := cell(t, res, i, "throughput_mbps"); tput <= 0 {
			t.Errorf("%s: zero throughput", res.Rows[i][0])
		}
		if j := cell(t, res, i, "j_per_gbit"); j <= 0 {
			t.Errorf("%s: zero energy", res.Rows[i][0])
		}
	}
}

func TestFig8TraceShape(t *testing.T) {
	skipIfShort(t)
	res := Fig8(tiny)
	if len(res.Rows) != 20 {
		t.Fatalf("fig8 has %d rows, want 2 algs x 10 samples", len(res.Rows))
	}
	// Cumulative energy must be non-decreasing within each algorithm.
	var prev float64
	for i, row := range res.Rows {
		if row[0] == "lia" && i > 0 && res.Rows[i-1][0] == "lia" {
			if e := cell(t, res, i, "energy_j"); e < prev {
				t.Errorf("cumulative energy decreased at row %d", i)
			}
		}
		prev = cell(t, res, i, "energy_j")
	}
}

func TestFig9DTSSavesEnergy(t *testing.T) {
	skipIfShort(t)
	res := Fig9(Config{Seed: 1, Scale: 0.3, Reps: 3, Check: true})
	liaRow := findRow(t, res, "lia")
	if s := cell(t, res, liaRow, "saving_vs_lia_pct"); s != 0 {
		t.Errorf("LIA's saving vs itself = %v, want 0", s)
	}
	// The kernel variant (Modified LIA, Fig. 8) is the one the paper's
	// testbed numbers come from: it must save energy without degrading
	// throughput.
	saving := cell(t, res, findRow(t, res, "dts-lia"), "saving_vs_lia_pct")
	if saving <= 0 {
		t.Errorf("Modified LIA uses %.1f%% MORE energy per gigabit than LIA; paper expects savings", -saving)
	}
	liaTput := cell(t, res, liaRow, "throughput_mbps")
	dtsTput := cell(t, res, findRow(t, res, "dts-lia"), "throughput_mbps")
	if dtsTput < 0.9*liaTput {
		t.Errorf("Modified LIA throughput %.1f well below LIA's %.1f; paper says no degradation", dtsTput, liaTput)
	}
	// The Taylor kernel port should land close to the exact psi=c*eps DTS.
	tay := cell(t, res, findRow(t, res, "dts-taylor"), "j_per_gbit")
	exact := cell(t, res, findRow(t, res, "dts"), "j_per_gbit")
	if tay < 0.8*exact || tay > 1.2*exact {
		t.Errorf("Taylor DTS %.1f J/Gb far from exact %.1f J/Gb", tay, exact)
	}
}

func TestFig10MultipathSavesEnergy(t *testing.T) {
	skipIfShort(t)
	res := Fig10(tiny)
	reno := cell(t, res, findRow(t, res, "reno"), "aggregate_j")
	lia := cell(t, res, findRow(t, res, "lia"), "aggregate_j")
	dts := cell(t, res, findRow(t, res, "dts-lia"), "aggregate_j")
	if lia >= reno || dts >= reno {
		t.Errorf("multipath energy (lia %.0f, dts %.0f J) not below TCP's %.0f J", lia, dts, reno)
	}
	// The headline: big savings from 4x the interfaces.
	if saving := cell(t, res, findRow(t, res, "lia"), "saving_vs_tcp_pct"); saving < 30 {
		t.Errorf("LIA saves only %.0f%% vs TCP; paper reports up to ~70%%", saving)
	}
	// DTS ~ LIA in this scenario.
	if dts > 1.4*lia || lia > 1.4*dts {
		t.Errorf("DTS (%.0f J) and LIA (%.0f J) should be similar on EC2", dts, lia)
	}
}

func TestFig12BCubeOverheadDecreases(t *testing.T) {
	skipIfShort(t)
	// BCube's multi-NIC gain needs a cube with 3 NICs per host; scale 0.3
	// builds BCube(3,2) (27 hosts) rather than the minimal (3,1).
	res := Fig12(Config{Seed: 1, Scale: 0.3, Reps: 1, Check: true})
	one := cell(t, res, findRow(t, res, "1"), "j_per_gbit")
	eight := cell(t, res, findRow(t, res, "8"), "j_per_gbit")
	if eight >= one {
		t.Errorf("BCube energy overhead with 8 subflows (%.1f) not below 1 subflow (%.1f)", eight, one)
	}
}

func TestFig13FatTreeNoBigSaving(t *testing.T) {
	skipIfShort(t)
	res := Fig13(tiny)
	one := cell(t, res, findRow(t, res, "1"), "j_per_gbit")
	eight := cell(t, res, findRow(t, res, "8"), "j_per_gbit")
	// "Fails to save energy": overhead does not drop much (allow 15% noise).
	if eight < 0.85*one {
		t.Errorf("FatTree overhead dropped %.1f -> %.1f with subflows; paper says no saving", one, eight)
	}
}

func TestFig14VL2NoBigSaving(t *testing.T) {
	skipIfShort(t)
	res := Fig14(tiny)
	one := cell(t, res, findRow(t, res, "1"), "j_per_gbit")
	eight := cell(t, res, findRow(t, res, "8"), "j_per_gbit")
	if eight < 0.85*one {
		t.Errorf("VL2 overhead dropped %.1f -> %.1f with subflows; paper says no saving", one, eight)
	}
}

func TestFig15ExtendedDTSSaves(t *testing.T) {
	skipIfShort(t)
	res := Fig15(tiny)
	for _, kind := range []string{"fattree", "vl2"} {
		saving := cell(t, res, findRow(t, res, kind, "dtsep-lia"), "saving_vs_lia_pct")
		if saving <= -10 {
			t.Errorf("%s: extended DTS uses %.0f%% MORE energy than LIA", kind, -saving)
		}
	}
}

func TestFig16ThroughputComparable(t *testing.T) {
	skipIfShort(t)
	res := Fig16(tiny)
	for _, kind := range []string{"fattree", "vl2"} {
		diff := cell(t, res, findRow(t, res, kind, "dts-lia"), "vs_lia_pct")
		if diff < -30 {
			t.Errorf("%s: DTS throughput %.0f%% below LIA; paper says comparable", kind, diff)
		}
	}
}

func TestAblationCRows(t *testing.T) {
	skipIfShort(t)
	res := AblationC(tiny)
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// Condition 1 holds for c <= 1 at the design-point ratio and fails
	// beyond it.
	if res.Rows[1][3] != "true" {
		t.Errorf("c=1 should satisfy Condition 1: %v", res.Rows[1])
	}
	if res.Rows[3][3] != "false" {
		t.Errorf("c=2 should violate Condition 1: %v", res.Rows[3])
	}
	// Throughput grows with c (aggressiveness knob).
	lo := cell(t, res, 0, "throughput_mbps")
	hi := cell(t, res, 3, "throughput_mbps")
	if hi <= lo {
		t.Errorf("throughput at c=2 (%.1f) not above c=0.5 (%.1f)", hi, lo)
	}
}

func TestAblationKappaTradeoff(t *testing.T) {
	skipIfShort(t)
	res := AblationKappa(tiny)
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// More price weight -> smaller share on the priced path (the tradeoff
	// direction the compensative term controls).
	free := cell(t, res, 0, "priced_path_share")
	harsh := cell(t, res, len(res.Rows)-1, "priced_path_share")
	if harsh >= free {
		t.Errorf("priced-path share at kappa=2e-3 (%.3f) not below kappa=0's (%.3f)", harsh, free)
	}
}

func TestAblationHystartReducesLoss(t *testing.T) {
	skipIfShort(t)
	res := AblationHystart(tiny)
	on := cell(t, res, findRow(t, res, "true"), "rtx")
	off := cell(t, res, findRow(t, res, "false"), "rtx")
	if off <= on {
		t.Errorf("retransmissions without guard (%.0f) not above guarded (%.0f)", off, on)
	}
}

func TestAblationPathselTradeoff(t *testing.T) {
	skipIfShort(t)
	res := AblationPathsel(tiny)
	liaT := cell(t, res, findRow(t, res, "lia"), "throughput_mbps")
	selT := cell(t, res, findRow(t, res, "lia+selector"), "throughput_mbps")
	liaP := cell(t, res, findRow(t, res, "lia"), "mean_power_w")
	selP := cell(t, res, findRow(t, res, "lia+selector"), "mean_power_w")
	if selT >= liaT {
		t.Errorf("selector throughput %.2f not below full MPTCP's %.2f", selT, liaT)
	}
	if selP >= liaP {
		t.Errorf("selector power %.2f W not below full MPTCP's %.2f W", selP, liaP)
	}
}

// TestFaultsAxisSliceMatchesFullGrid is the contract behind the campaign's
// finer-grained units: running one (scenario, algorithm) slice of the
// faults suite yields rows byte-identical to the same rows of the full
// grid, because nothing in a run's identity depends on grid position.
func TestFaultsAxisSliceMatchesFullGrid(t *testing.T) {
	skipIfShort(t)
	full := FigFaults(tiny)

	scenarioCfg := tiny
	scenarioCfg.Scenario = "flap"
	slice := FigFaults(scenarioCfg)
	var want [][]string
	for _, row := range full.Rows {
		if row[0] == "flap" {
			want = append(want, row)
		}
	}
	if len(slice.Rows) != len(want) {
		t.Fatalf("scenario slice has %d rows, want %d", len(slice.Rows), len(want))
	}
	for i := range want {
		if strings.Join(slice.Rows[i], "|") != strings.Join(want[i], "|") {
			t.Errorf("scenario-slice row %d = %v, full-grid twin %v", i, slice.Rows[i], want[i])
		}
	}

	cellCfg := tiny
	cellCfg.Scenario = "outage"
	cellCfg.Algorithm = "dts"
	one := FigFaults(cellCfg)
	if len(one.Rows) != 1 {
		t.Fatalf("single-cell run has %d rows, want 1", len(one.Rows))
	}
	for _, row := range full.Rows {
		if row[0] == "outage" && row[1] == "dts" {
			if strings.Join(one.Rows[0], "|") != strings.Join(row, "|") {
				t.Errorf("single-cell row %v, full-grid twin %v", one.Rows[0], row)
			}
			return
		}
	}
	t.Fatal("full grid has no outage/dts row")
}

// TestFilterAxisUnknownValueEmpty pins the filter's miss behaviour: a value
// the figure does not have selects nothing (the campaign never generates
// one, but a stale manifest must degrade to an empty table, not a panic).
func TestFilterAxisUnknownValueEmpty(t *testing.T) {
	cfg := tiny
	cfg.Algorithm = "no-such-alg"
	if res := FigFaults(cfg); len(res.Rows) != 0 {
		t.Errorf("unknown algorithm filter produced %d rows, want 0", len(res.Rows))
	}
}

func TestFigFaultsTransfersComplete(t *testing.T) {
	res := FigFaults(tiny)
	if len(res.Rows) != 3*len(faultsAlgorithms) {
		t.Fatalf("faults has %d rows, want 3 scenarios x %d algorithms", len(res.Rows), len(faultsAlgorithms))
	}
	horizon := 15.0 // tiny scale clamps at the 15 s floor
	for i, row := range res.Rows {
		completed := cell(t, res, i, "completed_s")
		if completed <= 0 || completed >= horizon {
			t.Errorf("%s/%s: completed_s = %.2f; transfer must finish despite the fault (horizon %.0f s)",
				row[0], row[1], completed, horizon)
		}
		if g := cell(t, res, i, "goodput_mbps"); g <= 0 {
			t.Errorf("%s/%s: zero goodput", row[0], row[1])
		}
		if j := cell(t, res, i, "j_per_gbit"); j <= 0 {
			t.Errorf("%s/%s: zero energy", row[0], row[1])
		}
	}
	// The outage schedule must actually trigger failover for at least some
	// algorithms (path1 is dead for a third of the horizon).
	totalReinj := 0.0
	for i, row := range res.Rows {
		if row[0] == "outage" {
			totalReinj += cell(t, res, i, "reinj_segs")
		}
	}
	if totalReinj == 0 {
		t.Error("no algorithm re-injected any segments under the outage scenario")
	}
}

func TestFig17DTSSavesOnHandset(t *testing.T) {
	skipIfShort(t)
	res := Fig17(Config{Seed: 1, Scale: 0.3, Reps: 2, Check: true})
	dts := cell(t, res, findRow(t, res, "dts"), "energy_saving_vs_lia_pct")
	dtsep := cell(t, res, findRow(t, res, "dtsep"), "energy_saving_vs_lia_pct")
	if dts <= -5 && dtsep <= -5 {
		t.Errorf("neither DTS (%.1f%%) nor DTS-EP (%.1f%%) saves handset energy vs LIA", dts, dtsep)
	}
}
