package exp

import (
	"fmt"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/stats"
	"mptcpsim/internal/supervise"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

// This file reproduces §VI-C-1: the EC2 experiment (Fig. 10) and the
// htsim-style datacenter simulations (Figs. 12-16).

// Fig10 runs permutation transfers on the EC2 VPC under four algorithms
// and reports aggregate energy and completion time.
func Fig10(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig10",
		Title:   "EC2 VPC (4x256 Mb/s ENIs per host): aggregate energy per algorithm",
		Columns: []string{"alg", "paths", "mean_completion_s", "aggregate_j", "saving_vs_tcp_pct"},
		Notes: []string{
			"paper expectation: the multipath algorithms save up to ~70% of the single-path algorithms' aggregate energy; DTS ~ LIA",
		},
	}
	hosts := cfg.scaled(40, 8)
	transfer := cfg.scaledBytes(10<<30, 16<<20)

	type outcome struct {
		joules   float64
		meanDone float64
		events   uint64
	}
	algs := []struct {
		name  string
		paths int
	}{
		{name: "reno", paths: 1},
		{name: "dctcp", paths: 1},
		{name: "lia", paths: 4},
		{name: "dts-lia", paths: 4},
	}
	outcomes := runPar(cfg, res, len(algs), func(i int, wd *supervise.Watchdog) outcome {
		a := algs[i]
		eng := sim.NewEngine(cfg.Seed)
		wd.Attach(eng)
		vpc := topo.NewEC2VPC(eng, topo.EC2Config{Hosts: hosts, MarkThreshold: 20})
		perm := workload.Permutation(eng, hosts)
		obs := cfg.observe(eng, "fig10", fmt.Sprintf("ec2-%dhosts", hosts), a.name, cfg.Seed)

		remaining := hosts
		meters := make([]*energy.Meter, hosts)
		var doneSum float64
		for h := 0; h < hosts; h++ {
			h := h
			conn := mptcp.MustNew(eng,
				mptcp.Config{Algorithm: a.name, TransferBytes: transfer},
				uint64(h+1), vpc.Paths(h, perm[h], a.paths)...)
			meters[h] = meterFor(eng, energy.NewXeon(), conn)
			if h == 0 {
				obs.Conn("host0.", conn)
				obs.Meter("host0.host", meters[h])
			}
			conn.OnComplete = func(at sim.Time) {
				meters[h].Stop()
				doneSum += at.Seconds()
				remaining--
				if remaining == 0 {
					eng.Stop()
				}
			}
			conn.Start()
		}
		obs.Start()
		eng.Run(4000 * sim.Second)
		var joules float64
		for _, m := range meters {
			m.Flush() // transfers the horizon cut off still owe their residual
			joules += m.Joules()
		}
		obs.Summary("aggregate_j", joules)
		obs.Summary("mean_completion_s", doneSum/float64(hosts))
		obs.Close()
		return outcome{joules: joules, meanDone: doneSum / float64(hosts), events: eng.Processed()}
	})
	base := outcomes[0].joules // algs[0] is reno
	for i, a := range algs {
		o := outcomes[i]
		res.Events += o.events
		res.AddRow(a.name, fmt.Sprintf("%d", a.paths),
			fmtF(o.meanDone, 2), fmtF(o.joules, 0),
			fmtF(stats.RelChange(base, o.joules)*-100, 1))
	}
	return res
}

// dcNet is the common surface of the three datacenter topologies.
type dcNet interface {
	Hosts() int
	Paths(src, dst, n int) []*netem.Path
}

// dcBuild constructs a datacenter topology sized by the scale knob.
func dcBuild(eng *sim.Engine, kind string, scale float64) dcNet {
	full := scale >= 0.75
	switch kind {
	case "fattree":
		k := 4
		if full {
			k = 8
		}
		ft, err := topo.NewFatTree(eng, topo.FatTreeConfig{K: k})
		if err != nil {
			panic(err)
		}
		return ft
	case "vl2":
		c := topo.VL2Config{HostsPerToR: 2, ToRs: 8, Aggs: 4, Ints: 4}
		if full {
			c = topo.VL2Config{} // paper scale: 64 ToRs, 8 aggs, 8 ints
		}
		v, err := topo.NewVL2(eng, c)
		if err != nil {
			panic(err)
		}
		return v
	case "bcube":
		c := topo.BCubeConfig{N: 3, K: 1}
		switch {
		case full:
			c = topo.BCubeConfig{} // paper scale: BCube(5,2)
		case scale >= 0.12:
			c = topo.BCubeConfig{N: 3, K: 2} // 27 hosts, 3 NICs each
		}
		b, err := topo.NewBCube(eng, c)
		if err != nil {
			panic(err)
		}
		return b
	default:
		panic("unknown datacenter topology " + kind)
	}
}

// dcPricedLinks enables the Eq. 6 energy price on a topology's
// switch-to-switch links, when it has any.
func dcPricedLinks(net dcNet) {
	type switched interface{ SwitchLinks() []*netem.Link }
	sw, ok := net.(switched)
	if !ok {
		return
	}
	for _, l := range sw.SwitchLinks() {
		l.SetPrice(1.0, 0.05, l.QueueLimit()/4)
	}
}

// dcRun runs one random-destination experiment, matching the paper's
// workload ("each host sends a long-lived MPTCP flow to another host,
// chosen at random"): destinations may collide, which is precisely why
// extra subflows cannot add capacity in the single-NIC FatTree/VL2 hosts
// but keep helping BCube's multi-NIC servers. It returns aggregate energy
// (J), aggregate goodput (bytes) and the mean per-connection throughput
// (b/s). obs (which may be nil) records host 0's connection and meter plus
// the aggregate outcome, and is closed before dcRun returns.
func dcRun(net dcNet, eng *sim.Engine, alg string, subflows int, horizon sim.Time, priced bool, obs *expObs) (joules float64, bytes uint64, meanTput float64) {
	if priced {
		dcPricedLinks(net)
	}
	hosts := net.Hosts()
	conns := make([]*mptcp.Conn, 0, hosts)
	meters := make([]*energy.Meter, 0, hosts)
	for h := 0; h < hosts; h++ {
		dst := eng.Rand().Intn(hosts - 1)
		if dst >= h {
			dst++
		}
		conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: alg},
			uint64(h+1), net.Paths(h, dst, subflows)...)
		conns = append(conns, conn)
		meters = append(meters, meterFor(eng, energy.NewI7(), conn))
		if h == 0 {
			obs.Conn("host0.", conn)
			obs.Meter("host0.host", meters[h])
		}
		conn.Start()
	}
	obs.Start()
	eng.Run(horizon)
	for i, c := range conns {
		meters[i].Flush()
		joules += meters[i].Joules()
		bytes += c.AckedBytes()
		meanTput += c.MeanThroughputBps()
	}
	meanTput /= float64(hosts)
	obs.Summary("aggregate_j", joules)
	obs.Summary("agg_goodput_mbps", float64(bytes)*8/horizon.Seconds()/1e6)
	obs.Close()
	return joules, bytes, meanTput
}

// dcOverheadSweep produces one of Figs. 12-14: energy overhead (J per
// gigabit delivered) of LIA as the subflow count grows.
func dcOverheadSweep(cfg Config, kind, expect string) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      map[string]string{"bcube": "fig12", "fattree": "fig13", "vl2": "fig14"}[kind],
		Title:   fmt.Sprintf("Energy overhead of LIA vs subflow count, %s", kind),
		Columns: []string{"subflows", "agg_goodput_mbps", "aggregate_j", "j_per_gbit"},
		Notes:   []string{expect},
	}
	horizon := cfg.scaledTime(60*sim.Second, 10*sim.Second)
	reps := cfg.reps(3)
	subflows := []int{1, 2, 4, 8}
	outs := runPar(cfg, res, len(subflows)*reps, func(i int, wd *supervise.Watchdog) dcOut {
		nsub, r := subflows[i/reps], i%reps
		eng := sim.NewEngine(cfg.Seed + int64(r))
		wd.Attach(eng)
		net := dcBuild(eng, kind, cfg.Scale)
		obs := cfg.observe(eng, res.ID, fmt.Sprintf("%s-%dsub", kind, nsub), "lia", cfg.Seed+int64(r))
		j, b, _ := dcRun(net, eng, "lia", nsub, horizon, false, obs)
		return dcOut{joules: j, bytes: b, events: eng.Processed()}
	})
	for s, nsub := range subflows {
		var joules, tput float64
		var bytes uint64
		for r := 0; r < reps; r++ {
			o := outs[s*reps+r]
			joules += o.joules
			bytes += o.bytes
			tput += float64(o.bytes) * 8 / horizon.Seconds()
			res.Events += o.events
		}
		joules /= float64(reps)
		bytes /= uint64(reps)
		tput /= float64(reps)
		res.AddRow(fmt.Sprintf("%d", nsub), fmtF(tput/1e6, 0),
			fmtF(joules, 0), fmtF(energy.PerGigabit(joules, bytes), 1))
	}
	return res
}

// dcOut is one datacenter run's payload on the pool.
type dcOut struct {
	joules float64
	bytes  uint64
	events uint64
}

// Fig12 is the BCube sweep (paper: more subflows reduce energy overhead).
func Fig12(cfg Config) *Result {
	return dcOverheadSweep(cfg, "bcube",
		"paper expectation: increasing subflows greatly reduces energy overhead in BCube (server-centric capacity grows with subflows)")
}

// Fig13 is the FatTree sweep (paper: no energy saving from more subflows).
func Fig13(cfg Config) *Result {
	return dcOverheadSweep(cfg, "fattree",
		"paper expectation: increasing subflows fails to save energy in FatTree")
}

// Fig14 is the VL2 sweep (paper: no energy saving from more subflows).
func Fig14(cfg Config) *Result {
	return dcOverheadSweep(cfg, "vl2",
		"paper expectation: increasing subflows fails to save energy in VL2")
}

// dcCompareAlgs runs the priced FatTree/VL2 experiment behind Figs. 15-16:
// LIA vs DTS vs extended DTS with 8 subflows. Run records (if any) are
// filed under res.ID, and events accumulate straight onto res — Fig15 and
// Fig16 re-run the same experiment independently.
func dcCompareAlgs(cfg Config, res *Result) map[string]map[string][3]float64 {
	cfg = cfg.withDefaults()
	horizon := cfg.scaledTime(60*sim.Second, 10*sim.Second)
	reps := cfg.reps(3)
	kinds := []string{"fattree", "vl2"}
	algs := []string{"lia", "dts-lia", "dtsep-lia"}
	outs := runPar(cfg, res, len(kinds)*len(algs)*reps, func(i int, wd *supervise.Watchdog) dcOut {
		kind := kinds[i/(len(algs)*reps)]
		alg := algs[i/reps%len(algs)]
		r := i % reps
		eng := sim.NewEngine(cfg.Seed + int64(r))
		wd.Attach(eng)
		net := dcBuild(eng, kind, cfg.Scale)
		obs := cfg.observe(eng, res.ID, fmt.Sprintf("%s-priced-8sub", kind), alg, cfg.Seed+int64(r))
		j, b, _ := dcRun(net, eng, alg, 8, horizon, true, obs)
		return dcOut{joules: j, bytes: b, events: eng.Processed()}
	})
	out := make(map[string]map[string][3]float64)
	for k, kind := range kinds {
		out[kind] = make(map[string][3]float64)
		for a, alg := range algs {
			var joules, tput float64
			var bytes uint64
			for r := 0; r < reps; r++ {
				o := outs[(k*len(algs)+a)*reps+r]
				joules += o.joules
				bytes += o.bytes
				tput += float64(o.bytes) * 8 / horizon.Seconds()
				res.Events += o.events
			}
			joules /= float64(reps)
			bytes /= uint64(reps)
			tput /= float64(reps)
			out[kind][alg] = [3]float64{energy.PerGigabit(joules, bytes), tput, joules}
		}
	}
	return out
}

// Fig15 reports the energy saving of the extended DTS in FatTree and VL2.
func Fig15(cfg Config) *Result {
	res := &Result{
		ID:      "fig15",
		Title:   "Extended DTS (Eq. 9) energy, FatTree and VL2, 8 subflows",
		Columns: []string{"topology", "alg", "j_per_gbit", "saving_vs_lia_pct"},
		Notes: []string{
			"paper expectation: the extended algorithm saves up to ~20% energy cost vs LIA",
		},
	}
	data := dcCompareAlgs(cfg, res)
	for _, kind := range []string{"fattree", "vl2"} {
		base := data[kind]["lia"][0]
		for _, alg := range []string{"lia", "dts-lia", "dtsep-lia"} {
			v := data[kind][alg]
			res.AddRow(kind, alg, fmtF(v[0], 1),
				fmtF(stats.RelChange(base, v[0])*-100, 1))
		}
	}
	return res
}

// Fig16 reports the aggregated throughput of the same runs.
func Fig16(cfg Config) *Result {
	res := &Result{
		ID:      "fig16",
		Title:   "Aggregated throughput, FatTree and VL2, 8 subflows",
		Columns: []string{"topology", "alg", "agg_goodput_mbps", "vs_lia_pct"},
		Notes: []string{
			"paper expectation: DTS gets as good utilization as LIA",
		},
	}
	data := dcCompareAlgs(cfg, res)
	for _, kind := range []string{"fattree", "vl2"} {
		base := data[kind]["lia"][1]
		for _, alg := range []string{"lia", "dts-lia", "dtsep-lia"} {
			v := data[kind][alg]
			res.AddRow(kind, alg, fmtF(v[1]/1e6, 0),
				fmtF(stats.RelChange(base, v[1])*100, 1))
		}
	}
	return res
}
