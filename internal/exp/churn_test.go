package exp

import (
	"strconv"
	"strings"
	"testing"
)

// churnRowInts parses the count columns of one churn row.
func churnRowInts(t *testing.T, row []string) (offered, completed, shed, cut, peak int) {
	t.Helper()
	ints := make([]int, 5)
	for i, col := range []int{2, 3, 4, 5, 6} {
		v, err := strconv.Atoi(row[col])
		if err != nil {
			t.Fatalf("row %v column %d: %v", row, col, err)
		}
		ints[i] = v
	}
	return ints[0], ints[1], ints[2], ints[3], ints[4]
}

func TestFigChurnSmoke(t *testing.T) {
	skipIfShort(t)
	res := FigChurn(tiny)
	if want := len(churnScenarios) * len(churnAlgorithms); len(res.Rows) != want {
		t.Fatalf("churn has %d rows, want %d", len(res.Rows), want)
	}
	var totalOffered uint64
	for _, row := range res.Rows {
		offered, completed, shed, cut, peak := churnRowInts(t, row)
		totalOffered += uint64(offered)
		// The zero-silent-loss contract, per row.
		if completed+shed+cut != offered {
			t.Errorf("%s/%s: %d + %d + %d != %d offered", row[0], row[1], completed, shed, cut, offered)
		}
		if peak <= 0 || completed <= 0 {
			t.Errorf("%s/%s: degenerate run: peak %d, completed %d", row[0], row[1], peak, completed)
		}
		switch row[0] {
		case "open":
			if shed != 0 {
				t.Errorf("open/%s: uncapped regime shed %d flows", row[1], shed)
			}
		case "overload":
			if shed == 0 {
				t.Errorf("overload/%s: shed nothing; overload lost its teeth", row[1])
			}
		}
		// Completed flows yield positive percentile columns.
		for _, col := range []int{7, 8, 9, 10} {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v <= 0 {
				t.Errorf("%s/%s: column %d = %q, want positive", row[0], row[1], col, row[col])
			}
		}
	}
	if res.Flows != totalOffered {
		t.Errorf("Result.Flows = %d, rows sum to %d", res.Flows, totalOffered)
	}
	if res.Events == 0 {
		t.Error("Result.Events is zero")
	}
}

func TestFigChurnDeterministicAcrossWorkerCounts(t *testing.T) {
	skipIfShort(t)
	seq, seqEvents := renderWith(t, "churn", tiny, 1)
	par, parEvents := renderWith(t, "churn", tiny, 8)
	if seq != par {
		t.Errorf("churn table differs between Workers=1 and Workers=8:\n--- j=1 ---\n%s--- j=8 ---\n%s", seq, par)
	}
	if seqEvents == 0 || seqEvents != parEvents {
		t.Errorf("event counts differ: %d (j=1) vs %d (j=8)", seqEvents, parEvents)
	}
}

// TestFigChurnAxisSliceMatchesFullGrid extends the campaign-unit contract
// to churn: a single (scenario, algorithm) cell is byte-identical to its
// twin row in the full grid.
func TestFigChurnAxisSliceMatchesFullGrid(t *testing.T) {
	skipIfShort(t)
	full := FigChurn(tiny)
	cellCfg := tiny
	cellCfg.Scenario = "overload"
	cellCfg.Algorithm = "olia"
	one := FigChurn(cellCfg)
	if len(one.Rows) != 1 {
		t.Fatalf("single-cell run has %d rows, want 1", len(one.Rows))
	}
	for _, row := range full.Rows {
		if row[0] == "overload" && row[1] == "olia" {
			if strings.Join(one.Rows[0], "|") != strings.Join(row, "|") {
				t.Errorf("single-cell row %v, full-grid twin %v", one.Rows[0], row)
			}
			return
		}
	}
	t.Fatal("full grid has no overload/olia row")
}
