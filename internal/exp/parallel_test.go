package exp

import (
	"sync"
	"testing"
)

// These tests pin the parallel runner's contract: the worker count must be
// invisible in every rendered byte of a figure's output, because seeds
// derive from run identity (figure parameters, repetition index) and rows
// collect by submission index. They deliberately run in -short mode too, so
// `go test -race -short` exercises the pool under the race detector.

// renderWith runs the experiment with the given worker count and returns
// the rendered table.
func renderWith(t *testing.T, id string, cfg Config, workers int) (string, uint64) {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	cfg.Workers = workers
	res := e.Run(cfg)
	return res.String(), res.Events
}

func TestFigFaultsDeterministicAcrossWorkerCounts(t *testing.T) {
	// 24 runs (3 scenarios x 8 algorithms) — plenty of pool contention.
	seq, seqEvents := renderWith(t, "faults", tiny, 1)
	par, parEvents := renderWith(t, "faults", tiny, 8)
	if seq != par {
		t.Errorf("faults table differs between Workers=1 and Workers=8:\n--- j=1 ---\n%s--- j=8 ---\n%s", seq, par)
	}
	if seqEvents == 0 || seqEvents != parEvents {
		t.Errorf("event counts differ: %d (j=1) vs %d (j=8)", seqEvents, parEvents)
	}
}

func TestFig3aDeterministicAcrossWorkerCounts(t *testing.T) {
	skipIfShort(t) // fixed-size transfers; too heavy under the race detector
	seq, seqEvents := renderWith(t, "fig3a", tiny, 1)
	par, parEvents := renderWith(t, "fig3a", tiny, 8)
	if seq != par {
		t.Errorf("fig3a table differs between Workers=1 and Workers=8:\n--- j=1 ---\n%s--- j=8 ---\n%s", seq, par)
	}
	if seqEvents == 0 || seqEvents != parEvents {
		t.Errorf("event counts differ: %d (j=1) vs %d (j=8)", seqEvents, parEvents)
	}
}

func TestConcurrentExperimentsAreIndependent(t *testing.T) {
	// Two experiment runs sharing no engine must not influence each other
	// through hidden package-level state (e.g. misuse of netem's packet
	// pool would let one engine's in-flight packet surface in another).
	// Two different experiments, so each has a distinct table to corrupt.
	// Reference outputs, computed alone:
	want1, _ := renderWith(t, "fig2", tiny, 1)
	want2, _ := renderWith(t, "fig4", tiny, 1)

	// Now both concurrently, each itself running parallel workers.
	var got1, got2 string
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); got1, _ = renderWith(t, "fig2", tiny, 4) }()
	go func() { defer wg.Done(); got2, _ = renderWith(t, "fig4", tiny, 4) }()
	wg.Wait()
	if got1 != want1 {
		t.Errorf("concurrent run 1 diverged from solo run:\n--- solo ---\n%s--- concurrent ---\n%s", want1, got1)
	}
	if got2 != want2 {
		t.Errorf("concurrent run 2 diverged from solo run:\n--- solo ---\n%s--- concurrent ---\n%s", want2, got2)
	}
}
