package exp

import (
	"context"
	"strings"
	"testing"

	"mptcpsim/internal/supervise"
)

// A figure run under an already-cancelled context must dispatch nothing,
// mark the Result interrupted and note every skipped run — the signal a
// resumable campaign uses to refuse checkpointing a partial table.
func TestFigureInterruptedBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sup := range []*supervise.Supervisor{nil, supervise.New(supervise.Budget{})} {
		res := Fig1(Config{Seed: 1, Scale: 0.05, Workers: 2, Sup: sup, Ctx: ctx})
		if !res.Interrupted {
			t.Fatalf("sup=%v: cancelled figure not marked Interrupted", sup != nil)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("sup=%v: cancelled figure produced %d rows", sup != nil, len(res.Rows))
		}
		var skipped int
		for _, n := range res.Notes {
			if strings.Contains(n, "skipped: interrupted") {
				skipped++
			}
		}
		if skipped != 5 { // Fig1 has five runs
			t.Fatalf("sup=%v: %d skip notes, want 5 (notes: %v)", sup != nil, skipped, res.Notes)
		}
	}
}

// A nil or background context must not change a figure's output: the
// historical Config zero value keeps producing the byte-identical table.
func TestFigureBackgroundCtxIdentical(t *testing.T) {
	base := Fig1(Config{Seed: 1, Scale: 0.05, Workers: 1})
	withCtx := Fig1(Config{Seed: 1, Scale: 0.05, Workers: 1, Ctx: context.Background()})
	if base.String() != withCtx.String() {
		t.Fatalf("background ctx changed the table:\n%s\nvs\n%s", base, withCtx)
	}
	if base.Interrupted || withCtx.Interrupted {
		t.Fatal("uncancelled figure marked Interrupted")
	}
}
