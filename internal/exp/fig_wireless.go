package exp

import (
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/stats"
	"mptcpsim/internal/supervise"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

// This file reproduces §VI-C-2: the heterogeneous wireless experiment
// (Fig. 17). A mobile sender uses a WiFi path (10 Mb/s, 40 ms) and a 4G
// path (20 Mb/s, 100 ms) with 50-packet DropTail queues and a 64 KB
// receive buffer, under bursty cross traffic on both links, exactly the
// paper's ns-2 setup; handset energy comes from the Nexus radio models.

// fig17Run executes one 200 s (scaled) run and returns goodput (b/s),
// handset energy (J) and events processed. expID names the figure the run
// record (if any) is filed under.
func fig17Run(cfg Config, wd *supervise.Watchdog, expID string, seed int64, alg string, horizon sim.Time, priceLTE bool) (tputBps, joules float64, events uint64) {
	eng := sim.NewEngine(seed)
	wd.Attach(eng)
	het := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
	if priceLTE {
		// The compensative parameter prices the energy-expensive 4G hop:
		// the LTE radio's high base power maps to a standing per-packet
		// price plus a queue-pressure term.
		for _, l := range het.Paths()[1].Forward {
			l.SetPrice(2.0, 0.1, 12)
		}
	}
	// Cross traffic on both links, scaled to each link's capacity so both
	// paths flip between Good and Bad states.
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(0)}, workload.ParetoConfig{
		RateBps: 8 * netem.Mbps,
	}).Start()
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(1)}, workload.ParetoConfig{
		RateBps: 16 * netem.Mbps,
	}).Start()

	const rwnd64KB = 45 // 64 KiB / 1448-byte segments
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: alg, RwndSegments: rwnd64KB},
		1, het.Paths()...)
	meter := newHandsetMeter(eng, conn, true)
	scenario := "hetwireless"
	if priceLTE {
		scenario = "hetwireless-priced"
	}
	obs := cfg.observe(eng, expID, scenario, alg, seed)
	obs.Conn("", conn)
	obs.Sample("host.joules", func() float64 { return meter.joules })
	obs.Start()
	conn.Start()
	eng.Run(horizon)
	obs.Summary("throughput_mbps", conn.MeanThroughputBps()/1e6)
	obs.Summary("energy_j", meter.joules)
	obs.Close()
	return conn.MeanThroughputBps(), meter.joules, eng.Processed()
}

// Fig17 compares LIA, DTS and the extended DTS on handset energy and
// throughput.
func Fig17(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig17",
		Title:   "Heterogeneous wireless (WiFi 10 Mb/s/40 ms + 4G 20 Mb/s/100 ms)",
		Columns: []string{"alg", "throughput_mbps", "j_per_gbit", "energy_saving_vs_lia_pct", "tput_vs_lia_pct"},
		Notes: []string{
			"paper expectation: DTS saves up to ~30% energy vs LIA, with an energy-throughput tradeoff",
		},
	}
	horizon := cfg.scaledTime(200*sim.Second, 40*sim.Second)
	reps := cfg.reps(5)

	perGbit := make(map[string]float64)
	tputs := make(map[string]float64)
	algs := []string{"lia", "dts", "dts-lia", "dtsep"}
	type wlOut struct {
		tput, joules float64
		events       uint64
	}
	outs := runPar(cfg, res, len(algs)*reps, func(i int, wd *supervise.Watchdog) wlOut {
		alg, r := algs[i/reps], i%reps
		tp, j, ev := fig17Run(cfg, wd, "fig17", cfg.Seed+int64(r), alg, horizon, alg == "dtsep")
		return wlOut{tput: tp, joules: j, events: ev}
	})
	for a, alg := range algs {
		var tput, joules float64
		for r := 0; r < reps; r++ {
			o := outs[a*reps+r]
			tput += o.tput
			joules += o.joules
			res.Events += o.events
		}
		tput /= float64(reps)
		joules /= float64(reps)
		gbits := tput * horizon.Seconds() / 1e9
		perGbit[alg] = joules / gbits
		tputs[alg] = tput
	}
	for _, alg := range algs {
		res.AddRow(alg,
			fmtF(tputs[alg]/1e6, 2),
			fmtF(perGbit[alg], 1),
			fmtF(stats.RelChange(perGbit["lia"], perGbit[alg])*-100, 1),
			fmtF(stats.RelChange(tputs["lia"], tputs[alg])*100, 1))
	}
	return res
}
