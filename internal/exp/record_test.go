package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fig1Records runs Fig1 with run-record export into a fresh temp dir and
// returns every produced file keyed by name.
func fig1Records(t *testing.T, workers int) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	Fig1(Config{Seed: 1, Scale: 0.1, Workers: workers, OutDir: dir, Check: true})
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestRecordsIdenticalAcrossWorkers pins the determinism contract: run
// records depend only on (experiment, scenario, algorithm, seed), never on
// how many runs execute concurrently around them.
func TestRecordsIdenticalAcrossWorkers(t *testing.T) {
	serial := fig1Records(t, 1)
	parallel := fig1Records(t, 8)
	if len(serial) == 0 {
		t.Fatal("no records produced")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("j=1 produced %d files, j=8 produced %d", len(serial), len(parallel))
	}
	for name, want := range serial {
		got, ok := parallel[name]
		if !ok {
			t.Errorf("j=8 run missing %s", name)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between j=1 and j=8", name)
		}
	}
}

// TestFig1GoldenRecord byte-compares the fig1 TCP-baseline record against
// the committed golden. A diff means either an intended schema/series change
// (regenerate the golden and bump obsv.SchemaVersion if line shapes moved)
// or an unintended change to the simulation trajectory or record encoding.
//
// Regenerate with:
//
//	go run ./cmd/mptcp-bench -exp fig1 -scale 0.1 -seed 1 -out internal/exp/testdata
//	(keep only the fig1_reno_tcp-1nic-1sub_seed1.* pair)
func TestFig1GoldenRecord(t *testing.T) {
	files := fig1Records(t, 4)
	for _, name := range []string{
		"fig1_reno_tcp-1nic-1sub_seed1.jsonl",
		"fig1_reno_tcp-1nic-1sub_seed1.csv",
	} {
		want, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("golden missing: %v", err)
		}
		got, ok := files[name]
		if !ok {
			t.Fatalf("fig1 did not produce %s (got %d files)", name, len(files))
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs from committed golden (see test comment to regenerate)", name)
		}
	}
}
