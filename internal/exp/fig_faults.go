package exp

import (
	"fmt"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/faults"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/supervise"
	"mptcpsim/internal/topo"
)

// This file adds the robustness suite the paper's ns-2 handover/degradation
// discussion (§V-D) implies but no figure tabulates: how each algorithm
// rides out a path outage, a flapping path, and a WiFi→cellular handover.
// Every algorithm runs the identical deterministic fault schedule, so the
// comparison isolates the congestion controller (failure detection and
// re-injection are shared transport machinery).

// faultsAlgorithms and faultsScenarios are the suite's axes. Both are
// declared splittable on the Experiment (every run's seed is cfg.Seed plus
// its repetition index, and its record name carries its own algorithm and
// scenario — nothing depends on grid position), so a campaign can schedule
// each (scenario, algorithm) cell as its own unit.
var (
	faultsAlgorithms = []string{"ewtcp", "coupled", "lia", "olia", "balia", "cubic", "vegas", "wvegas", "dts", "dts-lia"}
	faultsScenarios  = []string{"outage", "flap", "handover"}
)

// faultsOutcome is one run's scoreboard.
type faultsOutcome struct {
	completedS  float64
	goodputMbps float64
	jPerGbit    float64
	reinjected  float64
	events      uint64
}

// runFaultScenario executes one algorithm under one fault scenario. Fault
// instants are fractions of the horizon so every Scale still exercises
// failure, survival and recovery before the transfer would finish.
func runFaultScenario(cfg Config, wd *supervise.Watchdog, seed int64, alg, scenario string, horizon sim.Time) faultsOutcome {
	eng := sim.NewEngine(seed)
	wd.Attach(eng)
	obs := cfg.observe(eng, "faults", scenario, alg, seed)
	var conn *mptcp.Conn
	var joules func() float64
	flush := func() {}

	// Size the transfer so the fault hits mid-transfer AND the faulted
	// path's return (outage heals, flap cycles) still matters before the
	// transfer ends — otherwise outage and flap are indistinguishable and
	// both reduce to "lose one path". Two thirds of the horizon at
	// single-path speed achieves that while leaving slack to finish. The
	// handover scenario uses a lower estimate: its surviving LTE path has
	// a 200 ms RTT, where coupled window growth delivers far less than
	// line rate over these horizons.
	bytes := int64(20e6 / 8 * horizon.Seconds() * 2 / 3)
	if scenario == "handover" {
		bytes = int64(6e6 / 8 * horizon.Seconds() / 3)
	}

	switch scenario {
	case "outage", "flap":
		tp := topo.NewTwoPath(eng, topo.TwoPathConfig{Rate: 20 * netem.Mbps, QueueLimit: 50})
		conn = mptcp.MustNew(eng, mptcp.Config{Algorithm: alg, TransferBytes: bytes}, 1, tp.Paths()...)
		m := meterFor(eng, energy.NewI7(), conn)
		joules = m.Joules
		flush = m.Flush
		obs.Meter("host", m)
		if scenario == "outage" {
			faults.Apply(eng, tp.Paths()[1], faults.Outage{Down: horizon / 6, Up: horizon / 2})
		} else {
			faults.Apply(eng, tp.Paths()[1], faults.Flap{
				Start: horizon / 6, Period: horizon / 6, DownFor: horizon / 18,
			})
		}
	case "handover":
		// No 64 KB receive-window cap here (unlike Fig. 17): the LTE path's
		// 100 ms RTT would pin it at ~5 Mb/s and the completion times would
		// measure the buffer, not the failover.
		het := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
		conn = mptcp.MustNew(eng, mptcp.Config{Algorithm: alg, TransferBytes: bytes}, 1, het.Paths()...)
		m := newHandsetMeter(eng, conn, true)
		joules = func() float64 { return m.joules }
		obs.Sample("host.joules", joules)
		// The user walks away from the AP: WiFi degrades to 1 Mb/s and
		// 100 ms per hop, drops entirely, then comes back and recovers as
		// they return — the paper's mobility story as a fault schedule.
		faults.Apply(eng, het.Paths()[0],
			faults.Ramp{Start: horizon / 6, Duration: horizon / 6, RateTo: netem.Mbps, DelayTo: 100 * sim.Millisecond},
			faults.Outage{Down: horizon / 3, Up: 2 * horizon / 3},
			faults.Ramp{Start: 2 * horizon / 3, Duration: horizon / 12, RateTo: 10 * netem.Mbps, DelayTo: 20 * sim.Millisecond},
		)
	default:
		panic("exp: unknown fault scenario " + scenario)
	}

	obs.Conn("", conn)
	obs.Start()
	conn.Start()
	eng.Run(horizon)
	flush()

	completed := horizon
	if conn.Done() {
		completed = conn.CompletedAt()
	}
	out := faultsOutcome{
		completedS: completed.Seconds(),
		reinjected: float64(conn.ReinjectedSegs()),
		events:     eng.Processed(),
	}
	if completed > 0 {
		out.goodputMbps = float64(conn.AckedBytes()) * 8 / completed.Seconds() / 1e6
	}
	out.jPerGbit = energy.PerGigabit(joules(), conn.AckedBytes())
	obs.Summary("completed_s", out.completedS)
	obs.Summary("goodput_mbps", out.goodputMbps)
	obs.Summary("j_per_gbit", out.jPerGbit)
	obs.Summary("reinjected_segs", out.reinjected)
	obs.Close()
	return out
}

// FigFaults runs the robustness suite: every algorithm against the same
// outage, flap and handover schedules.
func FigFaults(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "faults",
		Title:   "Robustness: path outage, flapping and WiFi handover",
		Columns: []string{"scenario", "alg", "completed_s", "goodput_mbps", "j_per_gbit", "reinj_segs"},
		Notes: []string{
			"fixed transfer under identical deterministic fault schedules; lower completed_s and j_per_gbit are better",
			"outage/flap: 2x20 Mb/s paths, path1 faulted; handover: WiFi degrades, dies and returns while LTE persists",
		},
	}
	horizon := cfg.scaledTime(60*sim.Second, 15*sim.Second)
	reps := cfg.reps(3)
	algs := filterAxis(faultsAlgorithms, cfg.Algorithm)
	scenarios := filterAxis(faultsScenarios, cfg.Scenario)
	outs := runPar(cfg, res, len(scenarios)*len(algs)*reps, func(i int, wd *supervise.Watchdog) faultsOutcome {
		scenario := scenarios[i/(len(algs)*reps)]
		alg := algs[i/reps%len(algs)]
		r := i % reps
		return runFaultScenario(cfg, wd, cfg.Seed+int64(r), alg, scenario, horizon)
	})
	for s, scenario := range scenarios {
		for a, alg := range algs {
			var acc faultsOutcome
			for r := 0; r < reps; r++ {
				o := outs[(s*len(algs)+a)*reps+r]
				acc.completedS += o.completedS
				acc.goodputMbps += o.goodputMbps
				acc.jPerGbit += o.jPerGbit
				acc.reinjected += o.reinjected
				res.Events += o.events
			}
			n := float64(reps)
			res.AddRow(scenario, alg,
				fmtF(acc.completedS/n, 2),
				fmtF(acc.goodputMbps/n, 2),
				fmtF(acc.jPerGbit/n, 1),
				fmt.Sprintf("%.0f", acc.reinjected/n))
		}
	}
	return res
}
