package exp

import (
	"fmt"

	"mptcpsim/internal/core"
	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/pathsel"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/supervise"
	"mptcpsim/internal/tcp"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

// This file holds the ablation studies DESIGN.md calls out: the DTS
// constant c (the Pareto-optimality/fairness knob of §V-B), the extended
// algorithm's price weight κ_s (the energy/throughput tradeoff of Eq. 9),
// and the transport's slow-start exit guard.

func replaceAlg(conn *mptcp.Conn, alg core.Algorithm) { conn.SetAlgorithm(alg) }

func tcpConfigHystart(disable bool) tcp.Config {
	return tcp.Config{DisableHystart: disable}
}

// shiftRunWith runs the Fig. 5b scenario with an explicit algorithm
// instance (for parameterized variants outside the registry). Algorithm
// instances carry per-run state, so callers running on the pool must
// construct a fresh instance per run. expID and scenario identify the run
// record when Config.OutDir is set.
func shiftRunWith(cfg Config, wd *supervise.Watchdog, expID, scenario string, seed int64, alg core.Algorithm, horizon sim.Time) (tputBps, joules float64, events uint64) {
	eng := sim.NewEngine(seed)
	wd.Attach(eng)
	tp := topo.NewTwoPath(eng, topo.TwoPathConfig{Rate: 50 * netem.Mbps})
	for i := 0; i < 2; i++ {
		workload.NewParetoOnOff(eng, []*netem.Link{tp.CrossEntry(i)}, workload.ParetoConfig{}).Start()
	}
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia"}, 1, tp.Paths()...)
	replaceAlg(conn, alg)
	meter := meterFor(eng, energy.NewI7(), conn)
	obs := cfg.observe(eng, expID, scenario, alg.Name(), seed)
	obs.Conn("", conn)
	obs.Meter("host", meter)
	obs.Start()
	conn.Start()
	eng.Run(horizon)
	meter.Flush()
	obs.Summary("throughput_mbps", conn.MeanThroughputBps()/1e6)
	obs.Summary("energy_j", meter.Joules())
	obs.Close()
	return conn.MeanThroughputBps(), meter.Joules(), eng.Processed()
}

// AblationC sweeps the DTS constant c. c < 1 under-uses the fair share;
// c > 1 violates the TCP-friendliness condition (ψ_h > 1 at equilibrium);
// the paper picks c = 1.
func AblationC(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "abl-c",
		Title:   "Ablation: DTS constant c (psi = c*eps)",
		Columns: []string{"c", "throughput_mbps", "j_per_gbit", "cond1_at_eq"},
		Notes: []string{
			"§V-B: c = 1 satisfies both the Pareto-optimality and the fairness condition; the sweep shows what each side of it costs",
		},
	}
	horizon := cfg.scaledTime(300*sim.Second, 60*sim.Second)
	reps := cfg.reps(3)
	cs := []float64{0.5, 1.0, 1.5, 2.0}
	outs := runPar(cfg, res, len(cs)*reps, func(i int, wd *supervise.Watchdog) ablOut {
		c, r := cs[i/reps], i%reps
		// A fresh DTS instance per run: algorithm state is per-connection.
		tp, j, ev := shiftRunWith(cfg, wd, "abl-c", fmt.Sprintf("burst-c%g", c), cfg.Seed+int64(r), &core.DTS{C: c}, horizon)
		return ablOut{tput: tp, joules: j, events: ev}
	})
	for ci, c := range cs {
		var tput, joules float64
		for r := 0; r < reps; r++ {
			o := outs[ci*reps+r]
			tput += o.tput
			joules += o.joules
			res.Events += o.events
		}
		tput /= float64(reps)
		joules /= float64(reps)
		// Condition 1 evaluated at the design-point equilibrium ratio 1/2.
		eq := []core.View{{Cwnd: 20, SRTT: 0.04, LastRTT: 0.04, BaseRTT: 0.02}}
		cond := core.SatisfiesCondition1(&core.DTS{C: c}, eq, 1e-9)
		res.AddRow(fmtF(c, 1), fmtF(tput/1e6, 1),
			fmtF(joules/(tput*horizon.Seconds()/1e9), 1),
			fmt.Sprintf("%v", cond))
	}
	return res
}

// ablOut is one ablation run's payload on the pool.
type ablOut struct {
	tput, joules float64
	events       uint64
}

// AblationKappa sweeps the Eq. 9 price weight κ_s on a two-path wired
// scenario whose second path is priced (the energy-expensive route): the
// compensative term must progressively vacate it, trading throughput for
// a lower share on the costly path. Loss-based congestion avoidance is
// active here, which is where the φ term operates (a purely
// receive-window-limited flow never consults it).
func AblationKappa(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "abl-kappa",
		Title:   "Ablation: price weight kappa of the extended DTS (Eq. 9)",
		Columns: []string{"kappa", "throughput_mbps", "priced_path_share"},
		Notes: []string{
			"larger kappa vacates the priced (energy-expensive) path more aggressively: smaller share there, lower throughput",
		},
	}
	horizon := cfg.scaledTime(120*sim.Second, 30*sim.Second)
	reps := cfg.reps(3)
	kappas := []float64{0, 1e-4, 5e-4, 2e-3}
	type kappaOut struct {
		tput, share float64
		events      uint64
	}
	outs := runPar(cfg, res, len(kappas)*reps, func(i int, wd *supervise.Watchdog) kappaOut {
		kappa, r := kappas[i/reps], i%reps
		tp, sh, ev := pricedShiftRun(cfg, wd, fmt.Sprintf("priced-kappa%g", kappa), cfg.Seed+int64(r), core.NewDTSEPLIA(kappa), horizon)
		return kappaOut{tput: tp, share: sh, events: ev}
	})
	for ki, kappa := range kappas {
		var tput, share float64
		for r := 0; r < reps; r++ {
			o := outs[ki*reps+r]
			tput += o.tput
			share += o.share
			res.Events += o.events
		}
		res.AddRow(fmt.Sprintf("%.0e", kappa),
			fmtF(tput/float64(reps)/1e6, 1),
			fmtF(share/float64(reps), 3))
	}
	return res
}

// pricedShiftRun runs two clean 50 Mb/s paths with the second one charged
// an energy price, returning goodput and the priced path's traffic share.
func pricedShiftRun(cfg Config, wd *supervise.Watchdog, scenario string, seed int64, alg core.Algorithm, horizon sim.Time) (tputBps, pricedShare float64, events uint64) {
	eng := sim.NewEngine(seed)
	wd.Attach(eng)
	tp := topo.NewTwoPath(eng, topo.TwoPathConfig{Rate: 50 * netem.Mbps})
	for _, l := range tp.Paths()[1].Forward {
		l.SetPrice(1.0, 0.05, 25)
	}
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia"}, 1, tp.Paths()...)
	replaceAlg(conn, alg)
	obs := cfg.observe(eng, "abl-kappa", scenario, alg.Name(), seed)
	obs.Conn("", conn)
	obs.Start()
	conn.Start()
	eng.Run(horizon)
	a0 := float64(conn.Subflows()[0].Acked())
	a1 := float64(conn.Subflows()[1].Acked())
	share := 0.0
	if a0+a1 > 0 {
		share = a1 / (a0 + a1)
	}
	obs.Summary("throughput_mbps", conn.MeanThroughputBps()/1e6)
	obs.Summary("priced_path_share", share)
	obs.Close()
	if a0+a1 == 0 {
		return 0, 0, eng.Processed()
	}
	return conn.MeanThroughputBps(), share, eng.Processed()
}

// AblationHystart compares the transport with and without the delay-based
// slow-start exit on a deep-buffered path.
func AblationHystart(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "abl-hystart",
		Title:   "Ablation: delay-based slow-start exit",
		Columns: []string{"hystart", "completion_s", "loss_events", "rtx"},
		Notes: []string{
			"without the guard, slow start overshoots deep buffers into mass loss; recovery machinery absorbs it but pays in retransmissions",
		},
	}
	transfer := cfg.scaledBytes(256<<20, 8<<20)
	variants := []bool{false, true}
	res.addRows(runPar(cfg, res, len(variants), func(i int, wd *supervise.Watchdog) runRow {
		disable := variants[i]
		eng := sim.NewEngine(cfg.Seed)
		wd.Attach(eng)
		fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 100 * netem.Mbps, Delay: 20 * sim.Millisecond, QueueLimit: 1500})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 100 * netem.Mbps, Delay: 20 * sim.Millisecond})
		p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
		conn := mptcp.MustNew(eng, mptcp.Config{
			Algorithm:     "reno",
			TransferBytes: transfer,
			Transport:     tcpConfigHystart(disable),
		}, 1, p)
		obs := cfg.observe(eng, "abl-hystart", fmt.Sprintf("hystart-%v", !disable), "reno", cfg.Seed)
		obs.Conn("", conn)
		obs.Start()
		conn.OnComplete = func(sim.Time) { eng.Stop() }
		conn.Start()
		eng.Run(600 * sim.Second)
		st := conn.Subflows()[0].Stats()
		obs.Summary("completion_s", conn.CompletedAt().Seconds())
		obs.Summary("loss_events", float64(st.LossEvents))
		obs.Summary("rtx", float64(st.PktsRtx))
		obs.Close()
		return runRow{events: eng.Processed(), cells: []string{
			fmt.Sprintf("%v", !disable),
			fmtF(conn.CompletedAt().Seconds(), 2),
			fmt.Sprintf("%d", st.LossEvents),
			fmt.Sprintf("%d", st.PktsRtx)}}
	}))
	return res
}

// AblationPathsel compares the paper's two design families head to head
// on the wireless scenario (§II): congestion-control designs (LIA, the
// Modified-LIA DTS) against an eMPTCP-style energy-aware path selector.
// The selector should post the lowest handset power but also the lowest
// throughput — the QoS loss the paper cites as motivation for the
// congestion-control approach.
func AblationPathsel(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "abl-pathsel",
		Title:   "Ablation: congestion control vs energy-aware path selection",
		Columns: []string{"approach", "throughput_mbps", "mean_power_w", "j_per_gbit"},
		Notes: []string{
			"§II: path-selection schedulers (Pluntke et al., eMPTCP) save energy by dropping to one interface, losing MPTCP's aggregation",
		},
	}
	horizon := cfg.scaledTime(200*sim.Second, 40*sim.Second)
	reps := cfg.reps(3)
	approaches := []string{"lia", "dts-lia", "lia+selector"}
	outs := runPar(cfg, res, len(approaches)*reps, func(i int, wd *supervise.Watchdog) ablOut {
		approach, r := approaches[i/reps], i%reps
		tp, j, ev := pathselRun(cfg, wd, cfg.Seed+int64(r), approach, horizon)
		return ablOut{tput: tp, joules: j, events: ev}
	})
	for ai, approach := range approaches {
		var tput, joules float64
		for r := 0; r < reps; r++ {
			o := outs[ai*reps+r]
			tput += o.tput
			joules += o.joules
			res.Events += o.events
		}
		tput /= float64(reps)
		joules /= float64(reps)
		res.AddRow(approach, fmtF(tput/1e6, 2),
			fmtF(joules/horizon.Seconds(), 2),
			fmtF(joules/(tput*horizon.Seconds()/1e9), 1))
	}
	return res
}

// pathselRun runs the Fig. 17 wireless scenario with the given approach.
func pathselRun(cfg Config, wd *supervise.Watchdog, seed int64, approach string, horizon sim.Time) (tputBps, joules float64, events uint64) {
	eng := sim.NewEngine(seed)
	wd.Attach(eng)
	het := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(0)}, workload.ParetoConfig{
		RateBps: 8 * netem.Mbps,
	}).Start()
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(1)}, workload.ParetoConfig{
		RateBps: 16 * netem.Mbps,
	}).Start()
	alg := approach
	if approach == "lia+selector" {
		alg = "lia"
	}
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: alg, RwndSegments: 45}, 1, het.Paths()...)
	if approach == "lia+selector" {
		pathsel.New(eng, conn, []energy.Model{energy.NewWiFi(), energy.NewLTE()},
			pathsel.Config{}).Start()
	}
	meter := newHandsetMeter(eng, conn, true)
	obs := cfg.observe(eng, "abl-pathsel", "hetwireless", approach, seed)
	obs.Conn("", conn)
	obs.Sample("host.joules", func() float64 { return meter.joules })
	obs.Start()
	conn.Start()
	eng.Run(horizon)
	obs.Summary("throughput_mbps", conn.MeanThroughputBps()/1e6)
	obs.Summary("energy_j", meter.joules)
	obs.Close()
	return conn.MeanThroughputBps(), meter.joules, eng.Processed()
}

// fig17RunWith is fig17Run with an explicit algorithm instance.
func fig17RunWith(seed int64, alg core.Algorithm, horizon sim.Time) (tputBps, joules float64, events uint64) {
	eng := sim.NewEngine(seed)
	het := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
	for _, l := range het.Paths()[1].Forward {
		l.SetPrice(2.0, 0.1, 12)
	}
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(0)}, workload.ParetoConfig{
		RateBps: 8 * netem.Mbps,
	}).Start()
	workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(1)}, workload.ParetoConfig{
		RateBps: 16 * netem.Mbps,
	}).Start()
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia", RwndSegments: 45}, 1, het.Paths()...)
	replaceAlg(conn, alg)
	meter := newHandsetMeter(eng, conn, true)
	conn.Start()
	eng.Run(horizon)
	return conn.MeanThroughputBps(), meter.joules, eng.Processed()
}
