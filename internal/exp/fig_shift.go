package exp

import (
	"fmt"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/stats"
	"mptcpsim/internal/supervise"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

// This file reproduces §VI-A and §VI-B: the Fig. 5a multi-user sharing
// experiment (Fig. 6) and the Fig. 5b traffic-shifting experiments
// (Figs. 7-9).

// fig6Algorithms are the four TCP-friendly algorithms the paper compares.
// The axis is declared splittable on the Experiment: every run's engine
// seeds from cfg.Seed alone, so one algorithm's rows are byte-identical
// whether the figure runs the full grid or a Config.Algorithm slice.
var fig6Algorithms = []string{"lia", "olia", "balia", "ecmtcp"}

// Fig6 runs N parallel MPTCP users (16 MB each) against 2N TCP users over
// the two-bottleneck scenario and reports the box-whisker summary of
// per-user energy for each algorithm.
func Fig6(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig6",
		Title:   "Per-user energy, N MPTCP + 2N TCP users on two bottlenecks",
		Columns: []string{"N", "alg", "min_j", "q1_j", "median_j", "q3_j", "max_j", "outliers"},
		Notes: []string{
			"paper expectation: OLIA (the Pareto-optimal one) consumes the least average energy, more clearly as N grows",
		},
	}
	transfer := cfg.scaledBytes(16<<20, 2<<20)
	type spec struct {
		n   int
		alg string
	}
	var specs []spec
	for _, fullN := range []int{10, 20, 50, 100} {
		n := cfg.scaled(fullN, 4)
		for _, alg := range filterAxis(fig6Algorithms, cfg.Algorithm) {
			specs = append(specs, spec{n: n, alg: alg})
		}
	}
	res.addRows(runPar(cfg, res, len(specs), func(i int, wd *supervise.Watchdog) runRow {
		sp := specs[i]
		energies, events := fig6UserEnergies(cfg, wd, sp.n, sp.alg, transfer)
		b := stats.NewBox(energies)
		return runRow{events: events, cells: []string{
			fmt.Sprintf("%d", sp.n), sp.alg,
			fmtF(b.Min, 1), fmtF(b.Q1, 1), fmtF(b.Median, 1),
			fmtF(b.Q3, 1), fmtF(b.Max, 1), fmt.Sprintf("%d", len(b.Outliers))}}
	}))
	return res
}

// fig6UserEnergies runs one Fig. 5a experiment and returns the per-user
// energy consumption of the N MPTCP transfers plus the events processed.
// When records are exported, user 0 is the observed connection (one record
// per run; the other users are statistically equivalent).
func fig6UserEnergies(cfg Config, wd *supervise.Watchdog, n int, alg string, transfer int64) ([]float64, uint64) {
	eng := sim.NewEngine(cfg.Seed)
	wd.Attach(eng)
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{Users: 3 * n})
	obs := cfg.observe(eng, "fig6", fmt.Sprintf("dumbbell-%dusers", n), alg, cfg.Seed)

	remaining := n
	meters := make([]*energy.Meter, n)
	for u := 0; u < n; u++ {
		u := u
		conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: alg, TransferBytes: transfer},
			uint64(u+1), d.MPTCPPaths(u)...)
		meters[u] = meterFor(eng, energy.NewI7(), conn)
		if u == 0 {
			obs.Conn("user0.", conn)
			obs.Meter("user0.host", meters[u])
		}
		conn.OnComplete = func(sim.Time) {
			meters[u].Stop()
			remaining--
			if remaining == 0 {
				eng.Stop()
			}
		}
		conn.Start()
	}
	// 2N long-lived TCP users, N per bottleneck.
	for u := 0; u < n; u++ {
		t0 := mptcp.MustNew(eng, mptcp.Config{Algorithm: "reno"}, uint64(1000+u), d.TCPPath(n+u, 0))
		t1 := mptcp.MustNew(eng, mptcp.Config{Algorithm: "reno"}, uint64(2000+u), d.TCPPath(2*n+u, 1))
		t0.Start()
		t1.Start()
	}
	obs.Start()
	eng.Run(600 * sim.Second)

	out := make([]float64, n)
	for u, m := range meters {
		m.Flush() // integrate the residual for transfers cut off by the horizon
		out[u] = m.Joules()
	}
	obs.Summary("user0_energy_j", out[0])
	obs.Close()
	return out, eng.Processed()
}

// fig7Algorithms are the existing algorithms compared for traffic shifting
// (plus the uncoupled cubic/vegas baselines, which shift nothing by design
// and anchor the comparison).
var fig7Algorithms = []string{"lia", "olia", "balia", "ecmtcp", "cubic", "vegas", "wvegas"}

// shiftRun runs one Fig. 5b experiment: an MPTCP connection over two paths
// with Pareto bursty cross traffic on each, returning mean goodput (b/s),
// sender energy (J) and events processed. expID names the figure the run
// record (if any) is filed under.
func shiftRun(cfg Config, wd *supervise.Watchdog, expID string, seed int64, alg string, horizon sim.Time) (tputBps, joules float64, events uint64) {
	eng := sim.NewEngine(seed)
	wd.Attach(eng)
	// 45 Mb/s bursts on a 50 Mb/s path genuinely flip it to the Bad
	// state of Fig. 5b; on a faster path they would barely register.
	tp := topo.NewTwoPath(eng, topo.TwoPathConfig{Rate: 50 * netem.Mbps})
	for i := 0; i < 2; i++ {
		cross := workload.NewParetoOnOff(eng, []*netem.Link{tp.CrossEntry(i)}, workload.ParetoConfig{
			RateBps: 45 * netem.Mbps,
			MeanOff: 10 * sim.Second,
			MeanOn:  5 * sim.Second,
		})
		cross.Start()
	}
	conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: alg}, 1, tp.Paths()...)
	meter := meterFor(eng, energy.NewI7(), conn)
	obs := cfg.observe(eng, expID, "burst-twopath", alg, seed)
	obs.Conn("", conn)
	obs.Meter("host", meter)
	obs.Start()
	conn.Start()
	eng.Run(horizon)
	meter.Flush()
	obs.Summary("throughput_mbps", conn.MeanThroughputBps()/1e6)
	obs.Summary("energy_j", meter.Joules())
	obs.Close()
	return conn.MeanThroughputBps(), meter.Joules(), eng.Processed()
}

// Fig7 compares the existing algorithms' shifting behaviour under bursty
// cross traffic.
func Fig7(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig7",
		Title:   "Existing algorithms under Pareto bursty cross traffic (Fig. 5b)",
		Columns: []string{"alg", "throughput_mbps", "energy_j", "j_per_gbit"},
		Notes: []string{
			"paper expectation: LIA outperforms the other existing algorithms in traffic shifting",
		},
	}
	horizon := cfg.scaledTime(300*sim.Second, 60*sim.Second)
	reps := cfg.reps(5)
	type shiftOut struct {
		tput, joules float64
		events       uint64
	}
	// One pool run per (algorithm, repetition); the seed depends only on
	// the repetition index, exactly as the sequential loops derived it.
	outs := runPar(cfg, res, len(fig7Algorithms)*reps, func(i int, wd *supervise.Watchdog) shiftOut {
		alg, r := fig7Algorithms[i/reps], i%reps
		tp, j, ev := shiftRun(cfg, wd, "fig7", cfg.Seed+int64(r), alg, horizon)
		return shiftOut{tput: tp, joules: j, events: ev}
	})
	for a, alg := range fig7Algorithms {
		var tput, joules float64
		for r := 0; r < reps; r++ {
			o := outs[a*reps+r]
			tput += o.tput
			joules += o.joules
			res.Events += o.events
		}
		tput /= float64(reps)
		joules /= float64(reps)
		gbits := tput * horizon.Seconds() / 1e9
		res.AddRow(alg, fmtF(tput/1e6, 1), fmtF(joules, 1), fmtF(joules/gbits, 1))
	}
	return res
}

// Fig8 traces throughput and cumulative energy of LIA and DTS over one
// Fig. 5b run.
func Fig8(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig8",
		Title:   "Trace of LIA vs modified LIA (DTS) under bursty cross traffic",
		Columns: []string{"alg", "t_s", "goodput_mbps", "energy_j"},
		Notes: []string{
			"paper expectation: the modified LIA tracks LIA's throughput while accumulating less energy",
		},
	}
	horizon := cfg.scaledTime(300*sim.Second, 60*sim.Second)
	const samples = 10
	algs := []string{"lia", "dts-lia"}
	type traceOut struct {
		rows   [][]string
		events uint64
	}
	// The per-sample stepping is inherently sequential within one run, so
	// the pool fans out over algorithms only.
	traces := runPar(cfg, res, len(algs), func(ai int, wd *supervise.Watchdog) traceOut {
		alg := algs[ai]
		eng := sim.NewEngine(cfg.Seed)
		wd.Attach(eng)
		// 45 Mb/s bursts on a 50 Mb/s path genuinely flip it to the Bad
		// state of Fig. 5b; on a faster path they would barely register.
		tp := topo.NewTwoPath(eng, topo.TwoPathConfig{Rate: 50 * netem.Mbps})
		for i := 0; i < 2; i++ {
			workload.NewParetoOnOff(eng, []*netem.Link{tp.CrossEntry(i)}, workload.ParetoConfig{}).Start()
		}
		conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: alg}, 1, tp.Paths()...)
		meter := meterFor(eng, energy.NewI7(), conn)
		obs := cfg.observe(eng, "fig8", "burst-twopath", alg, cfg.Seed)
		obs.Conn("", conn)
		obs.Meter("host", meter)
		obs.Start()
		conn.Start()
		var out traceOut
		var lastBytes uint64
		step := horizon / samples
		for i := 1; i <= samples; i++ {
			eng.Run(step * sim.Time(i))
			delta := conn.AckedBytes() - lastBytes
			lastBytes = conn.AckedBytes()
			out.rows = append(out.rows, []string{alg, fmtF((step * sim.Time(i)).Seconds(), 0),
				fmtF(float64(delta)*8/step.Seconds()/1e6, 1),
				fmtF(meter.Joules(), 1)})
		}
		meter.Flush()
		obs.Summary("energy_j", meter.Joules())
		obs.Close()
		out.events = eng.Processed()
		return out
	})
	for _, tr := range traces {
		res.Rows = append(res.Rows, tr.rows...)
		res.Events += tr.events
	}
	return res
}

// Fig9 quantifies DTS's energy saving over LIA across repeated Fig. 5b
// runs.
func Fig9(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig9",
		Title:   "DTS vs LIA in the Fig. 5b scenario",
		Columns: []string{"alg", "throughput_mbps", "j_per_gbit", "saving_vs_lia_pct"},
		Notes: []string{
			"paper expectation: DTS reduces energy by up to ~20% versus LIA without degrading throughput",
			"dts is the literal psi=c*eps of Eq. 5; dts-lia is the kernel 'Modified LIA' of Fig. 8 (LIA increase scaled by eps); dts-taylor is Algorithm 1's integer port",
		},
	}
	horizon := cfg.scaledTime(300*sim.Second, 60*sim.Second)
	reps := cfg.reps(10)

	perGbit := make(map[string]float64)
	tputs := make(map[string]float64)
	algs := []string{"lia", "dts", "dts-lia", "dts-taylor"}
	type shiftOut struct {
		tput, joules float64
		events       uint64
	}
	outs := runPar(cfg, res, len(algs)*reps, func(i int, wd *supervise.Watchdog) shiftOut {
		alg, r := algs[i/reps], i%reps
		tp, j, ev := shiftRun(cfg, wd, "fig9", cfg.Seed+int64(r), alg, horizon)
		return shiftOut{tput: tp, joules: j, events: ev}
	})
	for a, alg := range algs {
		var tput, joules float64
		for r := 0; r < reps; r++ {
			o := outs[a*reps+r]
			tput += o.tput
			joules += o.joules
			res.Events += o.events
		}
		tput /= float64(reps)
		joules /= float64(reps)
		perGbit[alg] = joules / (tput * horizon.Seconds() / 1e9)
		tputs[alg] = tput
	}
	for _, alg := range algs {
		saving := stats.RelChange(perGbit["lia"], perGbit[alg]) * -100
		res.AddRow(alg, fmtF(tputs[alg]/1e6, 1), fmtF(perGbit[alg], 1), fmtF(saving, 1))
	}
	return res
}
