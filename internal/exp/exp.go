// Package exp reproduces the paper's evaluation: one runner per figure,
// each building its scenario from the substrate packages, running it on
// the simulator and reporting the same rows/series the paper plots.
//
// Runners accept a Scale knob so the test suite and benchmarks can run
// reduced versions (fewer users, shorter horizons) while cmd/mptcp-bench
// -full reproduces the published parameters. Absolute joules depend on the
// calibrated power models; the comparisons — which algorithm wins and by
// roughly what factor — are the reproduction target (see EXPERIMENTS.md).
package exp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/runner"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/supervise"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives every random choice; equal seeds reproduce runs exactly.
	Seed int64
	// Scale in (0, 1] shrinks user counts, transfer sizes and horizons;
	// 1.0 is the published configuration.
	Scale float64
	// Reps overrides the repetition count where the paper averages
	// several runs (0 keeps the experiment's scaled default).
	Reps int
	// Workers sizes the run pool: independent simulation runs within a
	// figure execute concurrently, each on its own engine. 0 means one
	// worker per CPU; 1 reproduces the historical sequential execution.
	// Output tables are byte-identical for every value (seeds derive from
	// run identity, results collect by submission index).
	Workers int
	// Algorithm and Scenario restrict a figure to one value of its
	// declared axis (Experiment.Algorithms / Experiment.Scenarios); empty
	// runs the full grid. Figures that declare an axis derive every run's
	// identity — seed, topology, record name — from the axis value alone,
	// never from grid position, so a filtered run's rows and records are
	// byte-identical to the same slice of an unfiltered run. Figures
	// without a declared axis ignore the filter. Campaigns use this to
	// schedule within-figure slices as independent resumable units.
	Algorithm string
	Scenario  string
	// OutDir, when set, writes one run record per (algorithm, scenario,
	// seed) under it: <exp>_<alg>_<scenario>_seed<N>.jsonl plus a matching
	// .csv (see internal/obsv). Record contents derive only from each run's
	// own engine, so they are byte-identical for every Workers value.
	OutDir string
	// SampleInterval is the record sampling period (0 takes
	// obsv.DefaultInterval).
	SampleInterval sim.Time
	// Check runs the internal/check invariant checker on every run,
	// panicking at the first violation (surfaced by the worker pool with
	// the failing run's identity). The test suite and CI keep it on; it is
	// exposed as -check on cmd/mptcp-bench.
	Check bool
	// Sup, when set, supervises every pool run: panics and invariant trips
	// are quarantined into the supervisor (the failing row is dropped and
	// noted on the Result) instead of aborting the whole experiment, and
	// the supervisor's Budget bounds each run's wall clock and event count.
	// Nil keeps the historical fail-fast behaviour: the first panic
	// propagates to the caller.
	Sup *supervise.Supervisor
	// Ctx, when set, lets the caller stop a figure mid-flight: once it is
	// cancelled the pool dispatches no further runs, in-flight runs drain
	// to completion (their records flush normally), and every skipped run
	// drops its row with a note and marks the Result Interrupted. Nil runs
	// to completion (context.Background).
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = runner.DefaultWorkers()
	}
	return c
}

// runPar fans n independent run closures of one figure over the config's
// worker pool. Closures must not share engines or any mutable state; each
// derives everything (including its seed) from its index, and must attach
// the given watchdog to the engine it builds (Attach is nil-safe, so the
// unsupervised path passes wd = nil).
//
// With cfg.Sup set, each index runs under the supervisor: a failed index
// yields the zero T (figures collecting runRow drop it via addRows) and a
// deterministic note on res, ordered by index regardless of Workers. With
// cfg.Sup nil, the first captured panic is re-raised — the historical
// fail-fast contract the test suite relies on.
//
// With cfg.Ctx cancelled, runs the pool never started are skipped: each
// drops its row with a note and the Result is marked Interrupted, so a
// campaign knows the table is partial and must not checkpoint it.
func runPar[T any](cfg Config, res *Result, n int, fn func(i int, wd *supervise.Watchdog) T) []T {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Sup == nil {
		out, errs := runner.MapErrCtx(ctx, cfg.Workers, n, func(i int) (T, error) {
			return fn(i, nil), nil
		})
		for _, err := range errs {
			var pe *runner.PanicError
			if errors.As(err, &pe) {
				panic(pe.Value)
			}
		}
		noteSkipped(res, errs)
		return out
	}
	reports := make([]supervise.Report, n)
	out, errs := runner.MapErrCtx(ctx, cfg.Workers, n, func(i int) (T, error) {
		var v T
		rep := cfg.Sup.Run(supervise.RunID{
			Seed:     cfg.Seed,
			Scenario: fmt.Sprintf("%s[%d]", res.ID, i),
			Phase:    res.ID,
		}, func(wd *supervise.Watchdog) error {
			v = fn(i, wd)
			return nil
		})
		reports[i] = rep
		if rep.Outcome.Failed() {
			var zero T
			return zero, rep.Err
		}
		return v, nil
	})
	for i, rep := range reports {
		if errs != nil && errors.Is(errs[i], runner.ErrSkipped) {
			continue // noted below, no report exists
		}
		if rep.Outcome.Failed() {
			res.Notes = append(res.Notes,
				fmt.Sprintf("run %s[%d] %s: %s", res.ID, i, rep.Outcome, rep.Err.Msg))
		}
	}
	noteSkipped(res, errs)
	return out
}

// noteSkipped marks the Result interrupted and notes every run the pool
// skipped after cancellation, in index order.
func noteSkipped(res *Result, errs []error) {
	for i, err := range errs {
		if errors.Is(err, runner.ErrSkipped) {
			res.Interrupted = true
			res.Notes = append(res.Notes,
				fmt.Sprintf("run %s[%d] skipped: interrupted before start", res.ID, i))
		}
	}
}

// scaled returns n scaled down, never below min.
func (c Config) scaled(n int, min int) int {
	v := int(float64(n) * c.Scale)
	if v < min {
		v = min
	}
	return v
}

// scaledTime shrinks a duration, never below min.
func (c Config) scaledTime(d, min sim.Time) sim.Time {
	v := sim.Time(float64(d) * c.Scale)
	if v < min {
		v = min
	}
	return v
}

// scaledBytes shrinks a transfer size, never below min.
func (c Config) scaledBytes(b, min int64) int64 {
	v := int64(float64(b) * c.Scale)
	if v < min {
		v = min
	}
	return v
}

// reps returns the repetition count.
func (c Config) reps(def int) int {
	if c.Reps > 0 {
		return c.Reps
	}
	r := int(float64(def) * c.Scale)
	if r < 1 {
		r = 1
	}
	return r
}

// Result is a rendered experiment outcome.
type Result struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the paper's expected qualitative outcome and any scale
	// substitutions, for EXPERIMENTS.md.
	Notes []string
	// Events counts the simulation events processed across every run of
	// the experiment; cmd/mptcp-bench reports it (with wall-clock) in the
	// BENCH JSON. It is not part of the rendered table.
	Events uint64
	// Flows counts the workload flows the experiment offered, for the
	// population-scale runs; cmd/mptcp-bench derives a flows/sec figure
	// from it so cmd/bench-diff can gate churn-path regressions. Zero for
	// figures without a flow population.
	Flows uint64
	// Interrupted reports that Config.Ctx was cancelled before every run
	// of the figure was dispatched: the table is missing rows (each noted)
	// and must not be treated as the figure's deterministic output —
	// campaigns re-run interrupted units instead of checkpointing them.
	Interrupted bool
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// runRow is one parallel run's rendered table row plus its event count;
// figures whose runs map 1:1 to rows collect these from the pool.
type runRow struct {
	cells  []string
	events uint64
}

// addRows appends pool-collected rows in submission order and accumulates
// their event counts. Rows with nil cells — quarantined runs under a
// supervisor — are dropped: the table keeps only the runs that finished,
// and the Result's notes name the missing ones.
func (r *Result) addRows(rows []runRow) {
	for _, row := range rows {
		if row.cells == nil {
			continue
		}
		r.AddRow(row.cells...)
		r.Events += row.events
	}
}

// String renders an aligned text table.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiment couples a figure ID with its runner and its splittable axes.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) *Result

	// Algorithms and Scenarios declare the figure's independently runnable
	// axis values: the runner honors Config.Algorithm/Config.Scenario
	// filters over them, and every run derives its identity from the axis
	// value rather than its grid position. Empty means the axis cannot be
	// split (the figure either has no such axis or couples runs across it,
	// like fig17's rows computed relative to the lia baseline).
	Algorithms []string
	Scenarios  []string
}

// filterAxis returns the axis values a filter selects: all of them when the
// filter is empty, the single matching value otherwise, and none when the
// filter names a value the figure does not have.
func filterAxis(values []string, filter string) []string {
	if filter == "" {
		return values
	}
	for _, v := range values {
		if v == filter {
			return []string{v}
		}
	}
	return nil
}

var experiments = []Experiment{
	{ID: "fig1", Title: "CPU power vs number of subflows (TCP vs MPTCP)", Run: Fig1},
	{ID: "fig2", Title: "Nexus 5 power in data transfers (TCP vs MPTCP)", Run: Fig2},
	{ID: "fig3a", Title: "Energy & power vs throughput, wired Ethernet", Run: Fig3a},
	{ID: "fig3b", Title: "Energy & power vs throughput, WiFi", Run: Fig3b},
	{ID: "fig4", Title: "CPU power vs path delay", Run: Fig4},
	{ID: "fig6", Title: "Energy of LIA/OLIA/Balia/ecMTCP with N users (box)", Run: Fig6, Algorithms: fig6Algorithms},
	{ID: "fig7", Title: "Traffic shifting under bursty cross traffic", Run: Fig7},
	{ID: "fig8", Title: "Trace of LIA vs modified LIA (DTS)", Run: Fig8},
	{ID: "fig9", Title: "DTS energy saving vs LIA", Run: Fig9},
	{ID: "fig10", Title: "EC2 VPC: TCP vs DCTCP vs LIA vs DTS", Run: Fig10},
	{ID: "fig12", Title: "Energy overhead of LIA vs subflows, BCube", Run: Fig12},
	{ID: "fig13", Title: "Energy overhead of LIA vs subflows, FatTree", Run: Fig13},
	{ID: "fig14", Title: "Energy overhead of LIA vs subflows, VL2", Run: Fig14},
	{ID: "fig15", Title: "Extended DTS energy saving in FatTree/VL2", Run: Fig15},
	{ID: "fig16", Title: "Aggregated throughput of DTS vs LIA in FatTree/VL2", Run: Fig16},
	{ID: "fig17", Title: "Heterogeneous wireless: DTS/DTS-EP vs LIA", Run: Fig17},
	{ID: "faults", Title: "Robustness: path outage, flapping and WiFi handover", Run: FigFaults, Algorithms: faultsAlgorithms, Scenarios: faultsScenarios},
	{ID: "churn", Title: "Population churn: open-loop arrivals on FatTree, per-flow FCT/energy", Run: FigChurn, Algorithms: churnAlgorithms, Scenarios: churnScenarios},
	{ID: "abl-c", Title: "Ablation: DTS constant c", Run: AblationC},
	{ID: "abl-kappa", Title: "Ablation: Eq. 9 price weight kappa", Run: AblationKappa},
	{ID: "abl-hystart", Title: "Ablation: slow-start delay guard", Run: AblationHystart},
	{ID: "abl-pathsel", Title: "Ablation: congestion control vs path selection", Run: AblationPathsel},
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// All returns the experiments in figure order.
func All() []Experiment {
	out := make([]Experiment, len(experiments))
	copy(out, experiments)
	return out
}

// IDs returns the sorted experiment IDs.
func IDs() []string {
	ids := make([]string, 0, len(experiments))
	for _, e := range experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// meterFor attaches an energy meter with the given model to a set of
// connections and starts it.
func meterFor(eng *sim.Engine, model energy.Model, conns ...*mptcp.Conn) *energy.Meter {
	m := energy.NewMeter(eng, model, energy.ConnProbe(conns...), 0)
	m.Start()
	return m
}

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
