package exp

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mptcpsim/internal/supervise"
)

// buildWithInjectedFailure runs a 9-index pool with index 4 panicking,
// under a supervisor, at the given worker count.
func buildWithInjectedFailure(workers int) (*Result, *supervise.Supervisor) {
	sup := supervise.New(supervise.Budget{})
	cfg := Config{Seed: 1, Workers: workers, Sup: sup}.withDefaults()
	res := &Result{ID: "inject-test"}
	res.addRows(runPar(cfg, res, 9, func(i int, wd *supervise.Watchdog) runRow {
		if i == 4 {
			panic("injected failure at index 4")
		}
		return runRow{cells: []string{fmt.Sprintf("row%d", i)}, events: uint64(i + 1)}
	}))
	return res, sup
}

// TestRunParQuarantineDeterministicAcrossWorkers is the regression test the
// MapErr migration demands: with an injected failing index, j=1 and j=8
// must produce byte-identical tables, notes and event counts — the failing
// row dropped, the other eight intact, the quarantine noted once.
func TestRunParQuarantineDeterministicAcrossWorkers(t *testing.T) {
	seq, seqSup := buildWithInjectedFailure(1)
	par, parSup := buildWithInjectedFailure(8)

	if len(seq.Rows) != 8 {
		t.Fatalf("j=1 kept %d rows, want 8 (one quarantined)", len(seq.Rows))
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Fatalf("rows differ across worker counts:\nj=1: %v\nj=8: %v", seq.Rows, par.Rows)
	}
	if !reflect.DeepEqual(seq.Notes, par.Notes) {
		t.Fatalf("notes differ across worker counts:\nj=1: %v\nj=8: %v", seq.Notes, par.Notes)
	}
	if seq.Events != par.Events {
		t.Fatalf("events differ: j=1 %d, j=8 %d", seq.Events, par.Events)
	}
	if len(seq.Notes) != 1 || !strings.Contains(seq.Notes[0], "inject-test[4]") {
		t.Fatalf("notes = %v, want one note naming index 4", seq.Notes)
	}
	for _, sup := range []*supervise.Supervisor{seqSup, parSup} {
		c := sup.Counts()
		if c.OK != 8 || c.Quarantined != 1 {
			t.Fatalf("supervisor counts = %v, want ok=8 quarantined=1", c)
		}
	}
}

// TestRunParFailFastWithoutSupervisor pins the legacy contract: with no
// supervisor, the injected panic propagates to the caller in every mode.
func TestRunParFailFastWithoutSupervisor(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				if r := recover(); r != "injected" {
					t.Fatalf("workers=%d: recovered %v, want the injected panic", workers, r)
				}
			}()
			cfg := Config{Seed: 1, Workers: workers}.withDefaults()
			res := &Result{ID: "failfast-test"}
			runPar(cfg, res, 6, func(i int, wd *supervise.Watchdog) int {
				if i == 3 {
					panic("injected")
				}
				return i
			})
			t.Fatalf("workers=%d: runPar returned despite panic", workers)
		}()
	}
}

// TestSupervisedFigureSurvivesBudgetTrip runs a real (tiny) figure under a
// supervisor whose event budget no run can satisfy: every run must be
// quarantined as over-budget, the figure must return a table instead of
// panicking, and the notes must say what happened.
func TestSupervisedFigureSurvivesBudgetTrip(t *testing.T) {
	sup := supervise.New(supervise.Budget{Events: 50})
	cfg := Config{Seed: 1, Scale: 0.02, Workers: 2, Sup: sup}
	res := Fig1(cfg)
	if len(res.Rows) != 0 {
		t.Fatalf("all runs were over budget, but %d rows survived", len(res.Rows))
	}
	c := sup.Counts()
	if c.OverBudget == 0 || c.OK != 0 {
		t.Fatalf("counts = %v, want every run over-budget", c)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "over-budget") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes carry no over-budget entry: %v", res.Notes)
	}
}
