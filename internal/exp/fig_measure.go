package exp

import (
	"fmt"

	"mptcpsim/internal/supervise"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
)

// This file reproduces the measurement study of §III: Figs. 1-4.

// twoNICPaths builds the paper's testbed machine pair: two NICs, one
// disjoint path per NIC. Queues are sized to at least the
// bandwidth-delay product, as NIC rings and switch buffers on a real
// testbed are; a far-below-BDP buffer would collapse throughput at the
// gigabit rates of Fig. 3a.
func twoNICPaths(eng *sim.Engine, rate int64, delay sim.Time) []*netem.Path {
	qlimit := int(rate * int64(4*delay) / (8 * 1500 * int64(sim.Second)))
	if qlimit < 100 {
		qlimit = 100
	}
	mk := func(name string) *netem.Path {
		fwd := netem.NewLink(eng, netem.LinkConfig{Name: name + "-f", Rate: rate, Delay: delay, QueueLimit: qlimit})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "-r", Rate: rate, Delay: delay, QueueLimit: qlimit})
		return &netem.Path{Name: name, Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	}
	return []*netem.Path{mk("nic0"), mk("nic1")}
}

// fixedQueuePaths is twoNICPaths with an explicit queue limit, for sweeps
// where the buffer must stay constant across rows.
func fixedQueuePaths(eng *sim.Engine, rate int64, delay sim.Time, qlimit int) []*netem.Path {
	mk := func(name string) *netem.Path {
		fwd := netem.NewLink(eng, netem.LinkConfig{Name: name + "-f", Rate: rate, Delay: delay, QueueLimit: qlimit})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "-r", Rate: rate, Delay: delay, QueueLimit: qlimit})
		return &netem.Path{Name: name, Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	}
	return []*netem.Path{mk("nic0"), mk("nic1")}
}

// repeatPaths fans n subflows over the given physical paths round-robin
// (the kernel path manager's num_subflows).
func repeatPaths(paths []*netem.Path, n int) []*netem.Path {
	out := make([]*netem.Path, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, paths[i%len(paths)])
	}
	return out
}

// Fig1 measures sender CPU power for classic TCP (one NIC) and MPTCP with
// a growing number of subflows across two 100 Mb/s NICs.
func Fig1(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig1",
		Title:   "CPU power vs number of subflows (i7-3770, 2x100 Mb/s NICs)",
		Columns: []string{"config", "subflows", "throughput_mbps", "power_w"},
		Notes: []string{
			"paper expectation: MPTCP consumes more CPU power than TCP, and power grows with the subflow count",
		},
	}
	horizon := cfg.scaledTime(30*sim.Second, 5*sim.Second)

	specs := []struct {
		label     string
		nsub      int
		singleNIC bool
	}{
		{"tcp-1nic", 1, true},
		{"mptcp-2nic", 2, false},
		{"mptcp-2nic", 4, false},
		{"mptcp-2nic", 6, false},
		{"mptcp-2nic", 8, false},
	}
	res.addRows(runPar(cfg, res, len(specs), func(i int, wd *supervise.Watchdog) runRow {
		sp := specs[i]
		eng := sim.NewEngine(cfg.Seed)
		wd.Attach(eng)
		paths := twoNICPaths(eng, 100*netem.Mbps, 150*sim.Microsecond)
		if sp.singleNIC {
			paths = paths[:1]
		}
		conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: algFor(sp.nsub)}, 1, repeatPaths(paths, sp.nsub)...)
		meter := meterFor(eng, energy.NewI7(), conn)
		obs := cfg.observe(eng, "fig1", fmt.Sprintf("%s-%dsub", sp.label, sp.nsub), algFor(sp.nsub), cfg.Seed)
		obs.Conn("", conn)
		obs.Meter("host", meter)
		obs.Start()
		conn.Start()
		eng.Run(horizon)
		meter.Flush()
		obs.Summary("throughput_mbps", conn.MeanThroughputBps()/1e6)
		obs.Summary("power_w", meter.MeanPower())
		obs.Close()
		return runRow{events: eng.Processed(), cells: []string{
			sp.label, fmt.Sprintf("%d", sp.nsub),
			fmtF(conn.MeanThroughputBps()/1e6, 1), fmtF(meter.MeanPower(), 2)}}
	}))
	return res
}

// algFor picks plain TCP for one subflow and LIA (the kernel default) for
// several.
func algFor(nsub int) string {
	if nsub == 1 {
		return "reno"
	}
	return "lia"
}

// Fig2 measures Nexus 5 handset power for TCP over WiFi, TCP over LTE and
// MPTCP over both, using the composite radio model.
func Fig2(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig2",
		Title:   "Nexus 5 power in data transfers",
		Columns: []string{"config", "throughput_mbps", "power_w"},
		Notes: []string{
			"paper expectation: MPTCP (WiFi+LTE) largely increases handset power over single-radio TCP",
		},
	}
	horizon := cfg.scaledTime(30*sim.Second, 5*sim.Second)

	specs := []struct {
		label           string
		useWiFi, useLTE bool
	}{
		{"tcp-wifi", true, false},
		{"tcp-lte", false, true},
		{"mptcp-wifi+lte", true, true},
	}
	res.addRows(runPar(cfg, res, len(specs), func(i int, wd *supervise.Watchdog) runRow {
		sp := specs[i]
		eng := sim.NewEngine(cfg.Seed)
		wd.Attach(eng)
		het := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
		var paths []*netem.Path
		if sp.useWiFi {
			paths = append(paths, het.Paths()[0])
		}
		if sp.useLTE {
			paths = append(paths, het.Paths()[1])
		}
		alg := "lia"
		if len(paths) == 1 {
			alg = "reno"
		}
		conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: alg}, 1, paths...)
		meter := newHandsetMeter(eng, conn, sp.useWiFi && sp.useLTE)
		obs := cfg.observe(eng, "fig2", sp.label, alg, cfg.Seed)
		obs.Conn("", conn)
		obs.Sample("host.joules", func() float64 { return meter.joules })
		obs.Start()
		conn.Start()
		eng.Run(horizon)
		obs.Summary("throughput_mbps", conn.MeanThroughputBps()/1e6)
		obs.Summary("power_w", meter.MeanPower())
		obs.Close()
		return runRow{events: eng.Processed(), cells: []string{
			sp.label, fmtF(conn.MeanThroughputBps()/1e6, 1), fmtF(meter.MeanPower(), 2)}}
	}))
	return res
}

// handsetMeter integrates the Nexus composite model with per-radio
// throughput attribution (subflow 0 = WiFi when both radios are up).
type handsetMeter struct {
	eng    *sim.Engine
	model  *energy.NexusModel
	conn   *mptcp.Conn
	both   bool
	last   []int64
	joules float64
	lastT  sim.Time
}

func newHandsetMeter(eng *sim.Engine, conn *mptcp.Conn, both bool) *handsetMeter {
	m := &handsetMeter{
		eng:   eng,
		model: energy.NewNexus(),
		conn:  conn,
		both:  both,
		last:  make([]int64, len(conn.Subflows())),
	}
	m.lastT = eng.Now()
	eng.After(energy.DefaultInterval, m.tick)
	return m
}

func (m *handsetMeter) tick() {
	now := m.eng.Now()
	dt := now - m.lastT
	m.lastT = now
	var samples [2]energy.Sample // [wifi, lte]
	for i, s := range m.conn.Subflows() {
		acked := s.Acked()
		delta := acked - m.last[i]
		m.last[i] = acked
		tput := float64(delta) * 1448 * 8 / dt.Seconds()
		radio := 0
		if m.both && i == 1 || !m.both && s.Path().Name == "lte" {
			radio = 1
		}
		samples[radio].ThroughputBps += tput
		samples[radio].Subflows++
	}
	m.joules += m.model.PowerSplit(samples[0], samples[1]) * dt.Seconds()
	m.eng.After(energy.DefaultInterval, m.tick)
}

func (m *handsetMeter) MeanPower() float64 {
	if m.eng.Now() <= 0 {
		return 0
	}
	return m.joules / m.eng.Now().Seconds()
}

// Fig3a transfers a fixed amount of data over Ethernet at increasing
// available bandwidth and reports power and total energy.
func Fig3a(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig3a",
		Title:   "Energy & power vs throughput, wired (10 GB transfer)",
		Columns: []string{"bandwidth_mbps", "throughput_mbps", "power_w", "energy_j", "time_s"},
		Notes: []string{
			"paper expectation: power rises only ~15% from 200 Mb/s to 1 Gb/s; total energy falls with throughput",
			fmt.Sprintf("transfer scaled to %.0f MB", float64(cfg.scaledBytes(10<<30, 64<<20))/(1<<20)),
		},
	}
	transfer := cfg.scaledBytes(10<<30, 64<<20)

	rates := []int64{200, 400, 600, 800, 1000}
	res.addRows(runPar(cfg, res, len(rates), func(i int, wd *supervise.Watchdog) runRow {
		mbps := rates[i]
		eng := sim.NewEngine(cfg.Seed)
		wd.Attach(eng)
		paths := twoNICPaths(eng, mbps/2*netem.Mbps, 150*sim.Microsecond)
		conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia", TransferBytes: transfer}, 1, paths...)
		meter := meterFor(eng, energy.NewI7(), conn)
		obs := cfg.observe(eng, "fig3a", fmt.Sprintf("wired-%dmbps", mbps), "lia", cfg.Seed)
		obs.Conn("", conn)
		obs.Meter("host", meter)
		obs.Start()
		var done sim.Time
		conn.OnComplete = func(at sim.Time) {
			done = at
			meter.Stop()
			eng.Stop()
		}
		conn.Start()
		eng.Run(2000 * sim.Second)
		if done == 0 {
			done = eng.Now()
			meter.Flush()
		}
		obs.Summary("energy_j", meter.Joules())
		obs.Summary("time_s", done.Seconds())
		obs.Close()
		return runRow{events: eng.Processed(), cells: []string{
			fmt.Sprintf("%d", mbps),
			fmtF(conn.MeanThroughputBps()/1e6, 1),
			fmtF(meter.MeanPower(), 2),
			fmtF(meter.Joules(), 1),
			fmtF(done.Seconds(), 2)}}
	}))
	return res
}

// Fig3b downloads a fixed amount of data over WiFi at increasing rates.
func Fig3b(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig3b",
		Title:   "Energy & power vs throughput, WiFi (500 MB download)",
		Columns: []string{"bandwidth_mbps", "throughput_mbps", "power_w", "energy_j", "time_s"},
		Notes: []string{
			"paper expectation: WiFi power rises sharply (~90% from 10 to 50 Mb/s)",
			fmt.Sprintf("transfer scaled to %.0f MB", float64(cfg.scaledBytes(500<<20, 16<<20))/(1<<20)),
		},
	}
	transfer := cfg.scaledBytes(500<<20, 16<<20)

	rates := []int64{10, 20, 30, 40, 50}
	res.addRows(runPar(cfg, res, len(rates), func(i int, wd *supervise.Watchdog) runRow {
		mbps := rates[i]
		eng := sim.NewEngine(cfg.Seed)
		wd.Attach(eng)
		fwd := netem.NewLink(eng, netem.LinkConfig{Name: "wifi-f", Rate: mbps * netem.Mbps, Delay: 20 * sim.Millisecond, QueueLimit: 100})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: "wifi-r", Rate: mbps * netem.Mbps, Delay: 20 * sim.Millisecond, QueueLimit: 100})
		p := &netem.Path{Name: "wifi", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
		conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "reno", TransferBytes: transfer}, 1, p)
		meter := meterFor(eng, energy.NewWiFi(), conn)
		obs := cfg.observe(eng, "fig3b", fmt.Sprintf("wifi-%dmbps", mbps), "reno", cfg.Seed)
		obs.Conn("", conn)
		obs.Meter("host", meter)
		obs.Start()
		var done sim.Time
		conn.OnComplete = func(at sim.Time) {
			done = at
			meter.Stop()
			eng.Stop()
		}
		conn.Start()
		eng.Run(4000 * sim.Second)
		if done == 0 {
			done = eng.Now()
			meter.Flush()
		}
		obs.Summary("energy_j", meter.Joules())
		obs.Summary("time_s", done.Seconds())
		obs.Close()
		return runRow{events: eng.Processed(), cells: []string{
			fmt.Sprintf("%d", mbps),
			fmtF(conn.MeanThroughputBps()/1e6, 1),
			fmtF(meter.MeanPower(), 2),
			fmtF(meter.Joules(), 1),
			fmtF(done.Seconds(), 2)}}
	}))
	return res
}

// Fig4 measures CPU power across path delays at fixed throughput. The
// paper raised delay by adding subflows per path (a kernel-scheduling
// side effect a packet simulator does not exhibit); here the delay knob
// is turned directly, which is the quantity Fig. 4 actually plots. This
// figure is a calibration anchor for the power model's RTT term (see
// EXPERIMENTS.md).
func Fig4(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:      "fig4",
		Title:   "CPU power vs path delay at fixed throughput",
		Columns: []string{"delay_ms", "mean_rtt_ms", "throughput_mbps", "power_w"},
		Notes: []string{
			"paper expectation: the flow on high-RTT paths consumes more CPU power at equal throughput",
			"the paper's num_subflows knob raises delay via kernel scheduling; the simulator turns the propagation-delay knob directly",
		},
	}
	horizon := cfg.scaledTime(30*sim.Second, 5*sim.Second)

	// Small delay steps with a fixed queue: large propagation delays would
	// make LIA's coupled recovery span the whole horizon and throughput
	// would no longer be held fixed (the paper's testbed delays are small).
	delays := []sim.Time{500 * sim.Microsecond, 2 * sim.Millisecond, 5 * sim.Millisecond}
	res.addRows(runPar(cfg, res, len(delays), func(i int, wd *supervise.Watchdog) runRow {
		delay := delays[i]
		eng := sim.NewEngine(cfg.Seed)
		wd.Attach(eng)
		paths := fixedQueuePaths(eng, 100*netem.Mbps, delay, 100)
		conn := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia"}, 1, paths...)
		meter := meterFor(eng, energy.NewI7(), conn)
		obs := cfg.observe(eng, "fig4", fmt.Sprintf("delay-%dus", delay/sim.Microsecond), "lia", cfg.Seed)
		obs.Conn("", conn)
		obs.Meter("host", meter)
		obs.Start()
		conn.Start()
		// Discard the startup transient so the longer-RTT runs are
		// measured at the same steady throughput as the short ones.
		warmup := horizon
		eng.Run(warmup)
		bytes0, joules0 := conn.AckedBytes(), meter.Joules()
		eng.Run(warmup + horizon)
		meter.Flush()
		window := horizon.Seconds()
		tput := float64(conn.AckedBytes()-bytes0) * 8 / window
		power := (meter.Joules() - joules0) / window
		obs.Summary("throughput_mbps", tput/1e6)
		obs.Summary("power_w", power)
		obs.Close()
		return runRow{events: eng.Processed(), cells: []string{
			fmtF(delay.Seconds()*1000, 1),
			fmtF(conn.MeanSRTTSeconds()*1000, 1),
			fmtF(tput/1e6, 1),
			fmtF(power, 2)}}
	}))
	return res
}
