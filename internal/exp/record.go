package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mptcpsim/internal/check"
	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/obsv"
	"mptcpsim/internal/sim"
)

// expObs is the per-run observation hook: an obsv.Recorder streaming to one
// JSONL file under Config.OutDir (plus the retained rows its CSV twin is
// written from at Close), and/or an invariant checker when Config.Check is
// set. A nil *expObs is valid and inert, so run closures register
// observables unconditionally and observation only happens when requested.
type expObs struct {
	rec  *obsv.Recorder
	file *os.File
	base string // path without extension

	inv *check.Invariants
}

// observe opens the observation hook for one (experiment, scenario,
// algorithm, seed) run, or returns nil when the config neither exports
// records nor checks invariants. The returned observer is not yet sampling:
// register observables (Conn, Meter, Sample), then call Start before running
// the engine and Close after. Failures panic — record export is explicitly
// requested, and a partial record set silently missing runs would be worse
// than stopping; invariant violations likewise panic (FailFast) so the
// worker pool surfaces them with the failing run's identity.
func (c Config) observe(eng *sim.Engine, expID, scenario, alg string, seed int64) *expObs {
	if c.OutDir == "" && !c.Check {
		return nil
	}
	o := &expObs{}
	if c.Check {
		o.inv = check.New(eng)
		o.inv.FailFast = true
	}
	if c.OutDir == "" {
		return o
	}
	if err := os.MkdirAll(c.OutDir, 0o755); err != nil {
		panic(fmt.Errorf("exp: creating record dir: %w", err))
	}
	o.base = filepath.Join(c.OutDir, fmt.Sprintf("%s_%s_%s_seed%d", slug(expID), slug(alg), slug(scenario), seed))
	f, err := os.Create(o.base + ".jsonl")
	if err != nil {
		panic(fmt.Errorf("exp: creating record: %w", err))
	}
	o.file = f
	o.rec = obsv.NewRecorder(eng, obsv.Meta{
		Experiment: expID,
		Scenario:   scenario,
		Algorithm:  alg,
		Seed:       seed,
		Scale:      c.Scale,
	}, obsv.Options{Interval: c.SampleInterval, Stream: f, Retain: true})
	return o
}

// Conn registers the standard per-connection and per-subflow series, and —
// when invariant checking is on — the connection, its subflows and their
// paths' links with the checker.
func (o *expObs) Conn(prefix string, conn *mptcp.Conn) {
	if o == nil {
		return
	}
	if o.rec != nil {
		o.rec.WatchConn(prefix, conn)
	}
	if o.inv != nil {
		o.inv.Watch(prefix, conn)
	}
}

// Meter registers a host energy meter's power and energy series.
func (o *expObs) Meter(prefix string, m *energy.Meter) {
	if o == nil {
		return
	}
	if o.rec != nil {
		o.rec.WatchMeter(prefix, m)
	}
	if o.inv != nil {
		o.inv.WatchMeter(prefix, m)
	}
}

// Sample registers one extra named series.
func (o *expObs) Sample(name string, fn func() float64) {
	if o == nil || o.rec == nil {
		return
	}
	o.rec.AddSampler(name, fn)
}

// Flow streams one per-flow outcome line to the run record (bounded: the
// recorder never retains flow lines).
func (o *expObs) Flow(f obsv.Flow) {
	if o == nil || o.rec == nil {
		return
	}
	o.rec.EmitFlow(f)
}

// Inv exposes the run's invariant checker (nil when checking is off), for
// subsystems like the flow manager that watch and unwatch a churning
// population themselves.
func (o *expObs) Inv() *check.Invariants {
	if o == nil {
		return nil
	}
	return o.inv
}

// Summary records a scalar outcome for the record's summary line.
func (o *expObs) Summary(name string, v float64) {
	if o == nil || o.rec == nil {
		return
	}
	o.rec.SetSummary(name, v)
}

// Start freezes the series set and begins sampling and checking.
func (o *expObs) Start() {
	if o == nil {
		return
	}
	if o.rec != nil {
		o.rec.Start()
	}
	if o.inv != nil {
		o.inv.Start()
	}
}

// Close evaluates the invariants one final time, completes the JSONL
// record, writes the CSV twin and releases the file.
func (o *expObs) Close() {
	if o == nil {
		return
	}
	if o.inv != nil {
		o.inv.Final()
	}
	if o.rec == nil {
		return
	}
	err := o.rec.Close()
	if cerr := o.file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		panic(fmt.Errorf("exp: writing record %s.jsonl: %w", o.base, err))
	}
	cf, err := os.Create(o.base + ".csv")
	if err != nil {
		panic(fmt.Errorf("exp: creating record CSV: %w", err))
	}
	err = obsv.WriteCSV(cf, o.rec.Series(), o.rec.Rows())
	if cerr := cf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		panic(fmt.Errorf("exp: writing record %s.csv: %w", o.base, err))
	}
}

// slug normalizes a record filename component: lower case, with anything
// outside [a-z0-9._-] collapsed to '-'.
func slug(s string) string {
	s = strings.ToLower(s)
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}
