package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got := Map(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map[int](4, 0, func(int) int { return 1 }); got != nil {
		t.Errorf("Map with n=0 returned %v, want nil", got)
	}
}

func TestMapRunsEveryIndexExactlyOnce(t *testing.T) {
	var calls [257]atomic.Int32
	Map(7, len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("index %d ran %d times, want 1", i, n)
		}
	}
}

func TestMapCapsWorkersAtN(t *testing.T) {
	// More workers than items must still execute every item once; the
	// easiest observable contract is correct output.
	got := Map(64, 3, func(i int) int { return i })
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("got %v, want [0 1 2]", got)
	}
}

func TestMapRepanicsOnCaller(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != sentinel {
					t.Errorf("workers=%d: recovered %v, want sentinel", workers, r)
				}
			}()
			Map(workers, 8, func(i int) int {
				if i == 3 {
					panic(sentinel)
				}
				return i
			})
			t.Errorf("workers=%d: Map returned instead of panicking", workers)
		}()
	}
}

func TestMapErrCollectsPerIndexErrors(t *testing.T) {
	sentinel := errors.New("bad index")
	for _, workers := range []int{1, 4} {
		out, errs := MapErr(workers, 10, func(i int) (int, error) {
			if i%3 == 1 {
				return 0, sentinel
			}
			return i * 2, nil
		})
		if errs == nil {
			t.Fatalf("workers=%d: errs is nil despite failures", workers)
		}
		for i := 0; i < 10; i++ {
			if i%3 == 1 {
				if !errors.Is(errs[i], sentinel) {
					t.Errorf("workers=%d: errs[%d] = %v, want sentinel", workers, i, errs[i])
				}
			} else {
				if errs[i] != nil {
					t.Errorf("workers=%d: errs[%d] = %v, want nil", workers, i, errs[i])
				}
				if out[i] != i*2 {
					t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], i*2)
				}
			}
		}
	}
}

func TestMapErrNilWhenClean(t *testing.T) {
	_, errs := MapErr(4, 32, func(i int) (int, error) { return i, nil })
	if errs != nil {
		t.Errorf("errs = %v, want nil on a clean batch", errs)
	}
}

func TestMapErrCapturesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, errs := MapErr(workers, 8, func(i int) (int, error) {
			if i == 3 {
				panic("boom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(errs[3], &pe) {
			t.Fatalf("workers=%d: errs[3] = %v, want *PanicError", workers, errs[3])
		}
		if pe.Index != 3 || pe.Value != "boom" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError = {%d %v stack:%d}, want index 3, value boom, a stack",
				workers, pe.Index, pe.Value, len(pe.Stack))
		}
		// Every other index still ran: failures must not abort the batch.
		for i := 0; i < 8; i++ {
			if i == 3 {
				continue
			}
			if errs[i] != nil || out[i] != i {
				t.Errorf("workers=%d: index %d = (%d, %v), want (%d, nil)", workers, i, out[i], errs[i], i)
			}
		}
	}
}

func TestMapErrDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) ([]int, []error) {
		return MapErr(workers, 64, func(i int) (int, error) {
			if i == 17 {
				panic(i)
			}
			if i%11 == 5 {
				return 0, errors.New("e")
			}
			return i * i, nil
		})
	}
	out1, errs1 := run(1)
	out8, errs8 := run(8)
	for i := range out1 {
		if out1[i] != out8[i] {
			t.Errorf("out[%d]: j=1 %d vs j=8 %d", i, out1[i], out8[i])
		}
		if (errs1[i] == nil) != (errs8[i] == nil) {
			t.Errorf("errs[%d]: j=1 %v vs j=8 %v", i, errs1[i], errs8[i])
		}
	}
}

func TestFirstErr(t *testing.T) {
	if err := FirstErr(nil); err != nil {
		t.Errorf("FirstErr(nil) = %v", err)
	}
	sentinel := errors.New("x")
	if err := FirstErr([]error{nil, sentinel, errors.New("y")}); err != sentinel {
		t.Errorf("FirstErr = %v, want the first non-nil error", err)
	}
}

func TestMapErrCtxSkipsAfterCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 64
		var started atomic.Int32
		// Cancel once a handful of indices have started; every index that
		// never ran must come back as ErrSkipped, and every started index
		// must keep its real result.
		out, errs := MapErrCtx(ctx, workers, n, func(i int) (int, error) {
			if started.Add(1) == int32(workers) {
				cancel()
			}
			return i + 1, nil
		})
		cancel()
		var ran, skipped int
		for i := 0; i < n; i++ {
			if errs != nil && errs[i] != nil {
				if !errors.Is(errs[i], ErrSkipped) {
					t.Fatalf("workers=%d: errs[%d] = %v, want ErrSkipped", workers, i, errs[i])
				}
				if !errors.Is(errs[i], context.Canceled) {
					t.Fatalf("workers=%d: errs[%d] does not wrap the cancellation cause", workers, i)
				}
				if out[i] != 0 {
					t.Fatalf("workers=%d: skipped index %d has result %d", workers, i, out[i])
				}
				skipped++
				continue
			}
			if out[i] != i+1 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], i+1)
			}
			ran++
		}
		if skipped == 0 {
			t.Fatalf("workers=%d: cancellation skipped nothing (ran=%d)", workers, ran)
		}
		if int(started.Load()) != ran {
			t.Fatalf("workers=%d: %d fns started but %d results kept", workers, started.Load(), ran)
		}
	}
}

func TestMapErrCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, errs := MapErrCtx(ctx, 4, 8, func(i int) (int, error) {
		t.Errorf("fn(%d) ran under a cancelled context", i)
		return 0, nil
	})
	if len(out) != 8 || errs == nil {
		t.Fatalf("got %d results, errs=%v", len(out), errs)
	}
	for i, err := range errs {
		if !errors.Is(err, ErrSkipped) {
			t.Fatalf("errs[%d] = %v, want ErrSkipped", i, err)
		}
	}
}

func TestMapCtxDoneFlags(t *testing.T) {
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		out, done := MapCtx(ctx, workers, 32, func(i int) int {
			if started.Add(1) == int32(workers) {
				cancel()
			}
			return i
		})
		cancel()
		if done == nil {
			t.Fatalf("workers=%d: cancellation reported no skipped indices", workers)
		}
		var ran int
		for i, ok := range done {
			if ok {
				if out[i] != i {
					t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], i)
				}
				ran++
			}
		}
		if ran != int(started.Load()) {
			t.Fatalf("workers=%d: done flags %d but %d fns started", workers, ran, started.Load())
		}
	}
}

func TestMapCtxUncancelledAllocatesNoDoneSlice(t *testing.T) {
	_, done := MapCtx(context.Background(), 4, 16, func(i int) int { return i })
	if done != nil {
		t.Fatalf("uncancelled MapCtx returned done flags: %v", done)
	}
}
