package runner

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got := Map(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map[int](4, 0, func(int) int { return 1 }); got != nil {
		t.Errorf("Map with n=0 returned %v, want nil", got)
	}
}

func TestMapRunsEveryIndexExactlyOnce(t *testing.T) {
	var calls [257]atomic.Int32
	Map(7, len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("index %d ran %d times, want 1", i, n)
		}
	}
}

func TestMapCapsWorkersAtN(t *testing.T) {
	// More workers than items must still execute every item once; the
	// easiest observable contract is correct output.
	got := Map(64, 3, func(i int) int { return i })
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("got %v, want [0 1 2]", got)
	}
}

func TestMapRepanicsOnCaller(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != sentinel {
					t.Errorf("workers=%d: recovered %v, want sentinel", workers, r)
				}
			}()
			Map(workers, 8, func(i int) int {
				if i == 3 {
					panic(sentinel)
				}
				return i
			})
			t.Errorf("workers=%d: Map returned instead of panicking", workers)
		}()
	}
}
