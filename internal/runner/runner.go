// Package runner fans independent simulation runs out across CPU cores.
//
// Parallelism in this codebase lives at the run level, never inside a run:
// each sim.Engine is single-threaded and owns its whole scenario, so a
// worker executes one engine start to finish with no locks on the hot path.
// Determinism is preserved by construction — every run derives its seed from
// its own identity (figure parameters, repetition index), never from the
// worker that happens to execute it, and results are collected by submission
// index so output is byte-identical for any worker count.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool width used when a caller passes workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(0) … fn(n-1) across at most workers goroutines and returns
// the results ordered by index. fn must be safe to call concurrently with
// itself on distinct indices (for simulation runs: build your own engine,
// share nothing). workers <= 0 means DefaultWorkers; workers == 1 runs
// inline on the calling goroutine, which is the reference execution the
// determinism tests compare against.
//
// A panic in any fn is re-raised on the calling goroutine once the other
// workers have drained, so figure runners keep their fail-fast behaviour.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &panicValue{r})
						}
					}()
					out[i] = fn(i)
				}()
				if panicked.Load() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.(*panicValue).v)
	}
	return out
}

// panicValue wraps a recovered value so a nil panic payload still registers
// in the atomic.Value.
type panicValue struct{ v any }
