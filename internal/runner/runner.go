// Package runner fans independent simulation runs out across CPU cores.
//
// Parallelism in this codebase lives at the run level, never inside a run:
// each sim.Engine is single-threaded and owns its whole scenario, so a
// worker executes one engine start to finish with no locks on the hot path.
// Determinism is preserved by construction — every run derives its seed from
// its own identity (figure parameters, repetition index), never from the
// worker that happens to execute it, and results are collected by submission
// index so output is byte-identical for any worker count.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool width used when a caller passes workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ErrSkipped marks an index that was never started because the context was
// cancelled before the pool reached it. Callers distinguish "this run
// failed" from "this run never happened and is safe to re-dispatch later"
// with errors.Is(err, ErrSkipped) — the distinction resumable campaigns
// are built on.
var ErrSkipped = errors.New("runner: skipped after cancellation")

// Map runs fn(0) … fn(n-1) across at most workers goroutines and returns
// the results ordered by index. fn must be safe to call concurrently with
// itself on distinct indices (for simulation runs: build your own engine,
// share nothing). workers <= 0 means DefaultWorkers; workers == 1 runs
// inline on the calling goroutine, which is the reference execution the
// determinism tests compare against.
//
// A panic in any fn is re-raised on the calling goroutine once the other
// workers have drained, so figure runners keep their fail-fast behaviour.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out, _ := MapCtx(context.Background(), workers, n, fn)
	return out
}

// MapCtx is Map with cooperative cancellation: once ctx is cancelled no new
// index is dispatched, but indices already running finish normally and keep
// their results — a draining stop, never an abandoning one. The second
// return reports per index whether fn ran: done[i] is false only for
// indices skipped by cancellation (done is nil when every index ran, so the
// uncancelled path allocates nothing extra).
//
// Like Map, a panic is re-raised after the pool drains; cancellation does
// not suppress it.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) T) ([]T, []bool) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	var (
		skippedMu sync.Mutex
		done      []bool
	)
	skip := func(i int) {
		skippedMu.Lock()
		if done == nil {
			done = make([]bool, n)
			for j := range done {
				done[j] = true
			}
		}
		done[i] = false
		skippedMu.Unlock()
	}
	if workers == 1 {
		for i := range out {
			if ctx.Err() != nil {
				skip(i)
				continue
			}
			out[i] = fn(i)
		}
		return out, done
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil || panicked.Load() != nil {
					skip(i)
					continue
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &panicValue{r})
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.(*panicValue).v)
	}
	return out, done
}

// panicValue wraps a recovered value so a nil panic payload still registers
// in the atomic.Value.
type panicValue struct{ v any }

// PanicError is a panic recovered by MapErr, carrying the failing index,
// the panic payload and the goroutine stack at the point of the panic.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: fn(%d) panicked: %v", e.Index, e.Value)
}

// MapErr is Map for runs that may fail individually: fn returns (result,
// error), a panic in fn is captured as a *PanicError instead of re-raised,
// and — unlike Map — the remaining indices still run after a failure. It
// returns the results and errors both ordered by index (errs[i] is nil for
// indices that succeeded, and errs is nil when every index did), so a
// campaign degrades to partial results instead of losing the whole batch to
// one bad run. Like Map, workers == 1 executes inline in index order and
// is the reference for the determinism tests; panics are captured in every
// mode so the two paths stay behaviour-identical.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, []error) {
	return MapErrCtx(context.Background(), workers, n, fn)
}

// MapErrCtx is MapErr with cooperative cancellation: once ctx is cancelled
// no new index is dispatched — indices already running finish and keep
// their results and errors, and every index that never started gets
// errs[i] satisfying errors.Is(err, ErrSkipped). A skipped index is not a
// failed run: it is safe to re-dispatch on a later attempt, which is how
// a resumable campaign drains in-flight work on SIGINT without losing it.
func MapErrCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, []error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	var (
		errsMu sync.Mutex
		errs   []error
	)
	setErr := func(i int, err error) {
		errsMu.Lock()
		if errs == nil {
			errs = make([]error, n)
		}
		errs[i] = err
		errsMu.Unlock()
	}
	one := func(i int) {
		if ctx.Err() != nil {
			setErr(i, fmt.Errorf("%w: %w", ErrSkipped, context.Cause(ctx)))
			return
		}
		defer func() {
			if r := recover(); r != nil {
				setErr(i, &PanicError{Index: i, Value: r, Stack: debug.Stack()})
			}
		}()
		v, err := fn(i)
		out[i] = v
		if err != nil {
			setErr(i, err)
		}
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			one(i)
		}
		return out, errs
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				one(i)
			}
		}()
	}
	wg.Wait()
	return out, errs
}

// FirstErr returns the first non-nil error of a MapErr error slice, or nil.
func FirstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
