package pathsel

import (
	"testing"

	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
)

// hetConn builds the WiFi+LTE connection with per-radio models.
func hetConn(t *testing.T, eng *sim.Engine, alg string) (*mptcp.Conn, []energy.Model) {
	t.Helper()
	het := topo.NewHetWireless(eng, topo.HetWirelessConfig{})
	conn, err := mptcp.New(eng, mptcp.Config{Algorithm: alg}, 1, het.Paths()...)
	if err != nil {
		t.Fatal(err)
	}
	return conn, []energy.Model{energy.NewWiFi(), energy.NewLTE()}
}

func TestSelectorSuspendsExpensiveLTE(t *testing.T) {
	// On an uncongested WiFi+LTE pair, WiFi is far cheaper per bit (LTE's
	// 1.3 W base dwarfs WiFi's ~0.4 W at these rates): the eMPTCP-style
	// selector must converge to WiFi-only, like the schedulers the paper
	// reviews in §II.
	eng := sim.NewEngine(1)
	conn, models := hetConn(t, eng, "lia")
	sel := New(eng, conn, models, Config{})
	conn.Start()
	sel.Start()
	eng.Run(30 * sim.Second)

	if conn.SubflowEnabled(1) {
		t.Error("LTE subflow still enabled; selector should have suspended it")
	}
	if !conn.SubflowEnabled(0) {
		t.Error("WiFi subflow suspended; the cheapest path must stay on")
	}
	if sel.Decisions() < 25 {
		t.Errorf("only %d decision rounds in 30 s at 1 Hz", sel.Decisions())
	}
	if sel.Suspensions() == 0 {
		t.Error("no suspension decisions recorded")
	}
}

func TestSelectorTradesThroughputForEnergy(t *testing.T) {
	// The paper's §II point: the path-selection baseline saves energy but
	// loses MPTCP's aggregation. Compare plain LIA against LIA+selector.
	run := func(withSelector bool) (tputBps, joules float64) {
		eng := sim.NewEngine(2)
		conn, models := hetConn(t, eng, "lia")
		// Per-radio metering: attribute each subflow's bytes to its own
		// interface model (the composite Nexus model split by hand).
		nexus := energy.NewNexus()
		var last [2]int64
		var acc float64
		lastT := eng.Now()
		var tick func()
		tick = func() {
			dt := eng.Now() - lastT
			lastT = eng.Now()
			var samples [2]energy.Sample
			for i, sub := range conn.Subflows() {
				d := sub.Acked() - last[i]
				last[i] = sub.Acked()
				samples[i] = energy.Sample{
					ThroughputBps: float64(d) * 1448 * 8 / dt.Seconds(),
					Subflows:      1,
				}
			}
			acc += nexus.PowerSplit(samples[0], samples[1]) * dt.Seconds()
			eng.ScheduleAfter(energy.DefaultInterval, tick)
		}
		eng.ScheduleAfter(energy.DefaultInterval, tick)
		if withSelector {
			New(eng, conn, models, Config{}).Start()
		}
		conn.Start()
		eng.Run(60 * sim.Second)
		return conn.MeanThroughputBps(), acc
	}
	tputFull, joulesFull := run(false)
	tputSel, joulesSel := run(true)

	if tputSel >= tputFull {
		t.Errorf("selector throughput %.1f Mb/s not below full MPTCP's %.1f (QoS cost missing)",
			tputSel/1e6, tputFull/1e6)
	}
	perGbitFull := joulesFull / (tputFull * 60 / 1e9)
	perGbitSel := joulesSel / (tputSel * 60 / 1e9)
	if perGbitSel >= perGbitFull {
		t.Errorf("selector energy %.1f J/Gb not below full MPTCP's %.1f (energy saving missing)",
			perGbitSel, perGbitFull)
	}
}

func TestSelectorStops(t *testing.T) {
	eng := sim.NewEngine(1)
	conn, models := hetConn(t, eng, "lia")
	sel := New(eng, conn, models, Config{})
	conn.Start()
	sel.Start()
	eng.Run(5 * sim.Second)
	sel.Stop()
	n := sel.Decisions()
	eng.Run(15 * sim.Second)
	if sel.Decisions() != n {
		t.Error("selector kept deciding after Stop")
	}
}

func TestSelectorKeepsCheapestWhenAllExpensive(t *testing.T) {
	// Two LTE-like interfaces: both expensive, but one must stay enabled.
	eng := sim.NewEngine(1)
	conn, _ := hetConn(t, eng, "lia")
	models := []energy.Model{energy.NewLTE(), energy.NewLTE()}
	sel := New(eng, conn, models, Config{Threshold: 1.01})
	conn.Start()
	sel.Start()
	eng.Run(20 * sim.Second)
	if !conn.SubflowEnabled(0) && !conn.SubflowEnabled(1) {
		t.Fatal("selector suspended every path")
	}
}
