// Package pathsel implements the energy-aware path-selection baseline the
// paper contrasts with congestion-control approaches (§II): schedulers in
// the style of Pluntke et al. (MobiArch 2011) and Lim et al.'s eMPTCP
// (CoNEXT 2015) estimate each interface's energy cost and suspend the
// expensive ones, saving energy at the price of aggregate bandwidth — the
// QoS loss the paper uses to motivate congestion-control designs instead.
package pathsel

import (
	"mptcpsim/internal/energy"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
)

// Config parameterizes the selector.
type Config struct {
	// Period is how often paths are re-evaluated (default 1 s, matching
	// eMPTCP's decision epochs).
	Period sim.Time
	// Threshold suspends a path whose estimated energy per bit exceeds
	// the cheapest path's by this factor (default 1.5).
	Threshold float64
	// MinRateBps is the throughput below which a path's estimate is
	// treated as idle and the path given a chance (default 100 kb/s).
	MinRateBps float64
}

func (c Config) withDefaults() Config {
	if c.Period == 0 {
		c.Period = sim.Second
	}
	if c.Threshold == 0 {
		c.Threshold = 1.5
	}
	if c.MinRateBps == 0 {
		c.MinRateBps = 100e3
	}
	return c
}

// Selector periodically estimates each subflow's energy per bit from its
// interface power model and suspends paths that are too expensive
// relative to the cheapest one. The cheapest path always stays enabled.
type Selector struct {
	eng    *sim.Engine
	conn   *mptcp.Conn
	models []energy.Model // one per subflow, same order
	cfg    Config

	lastAcked []int64
	decisions int
	suspended int
	tickFn    func()
	stopped   bool
}

// New creates a selector for conn; models[i] is the power model of
// subflow i's interface.
func New(eng *sim.Engine, conn *mptcp.Conn, models []energy.Model, cfg Config) *Selector {
	s := &Selector{
		eng:       eng,
		conn:      conn,
		models:    models,
		cfg:       cfg.withDefaults(),
		lastAcked: make([]int64, len(conn.Subflows())),
	}
	s.tickFn = s.tick
	return s
}

// Start begins periodic path evaluation.
func (s *Selector) Start() {
	s.eng.ScheduleAfter(s.cfg.Period, s.tickFn)
}

// Stop halts the selector after the current period.
func (s *Selector) Stop() { s.stopped = true }

// Decisions reports how many evaluation rounds have run.
func (s *Selector) Decisions() int { return s.decisions }

// Suspensions reports how many path-suspension decisions were taken.
func (s *Selector) Suspensions() int { return s.suspended }

func (s *Selector) tick() {
	if s.stopped {
		return
	}
	s.decisions++
	costs := s.costs()

	cheapest := 0
	for r, c := range costs {
		if c < costs[cheapest] {
			cheapest = r
		}
	}
	for r := range costs {
		enable := r == cheapest || costs[r] <= costs[cheapest]*s.cfg.Threshold
		if !enable && s.conn.SubflowEnabled(r) {
			s.suspended++
		}
		s.conn.SetSubflowEnabled(r, enable)
	}
	s.eng.ScheduleAfter(s.cfg.Period, s.tickFn)
}

// costs estimates joules per bit for each subflow over the last period:
// the interface's power at the observed rate divided by that rate. Idle
// or suspended paths are probed with their power at MinRateBps, so a
// suspended path can win back its slot when conditions change.
func (s *Selector) costs() []float64 {
	subs := s.conn.Subflows()
	costs := make([]float64, len(subs))
	for r, sub := range subs {
		acked := sub.Acked()
		delta := acked - s.lastAcked[r]
		s.lastAcked[r] = acked
		rate := float64(delta) * 1448 * 8 / s.cfg.Period.Seconds()
		if rate < s.cfg.MinRateBps {
			rate = s.cfg.MinRateBps
		}
		p := s.models[r].Power(energy.Sample{
			ThroughputBps:  rate,
			Subflows:       1,
			MeanRTTSeconds: sub.SRTT().Seconds(),
		})
		costs[r] = p / rate
	}
	return costs
}
