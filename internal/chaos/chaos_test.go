package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mptcpsim/internal/supervise"
)

// TestGenerateDeterministic pins that scenario i depends only on (seed, i)
// and that every organically generated scenario at least builds: a
// generator that emits unbuildable scenarios would pollute the quarantine
// with its own bugs.
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 40; i++ {
		a, b := GenerateAt(1, i), GenerateAt(1, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("GenerateAt(1, %d) not deterministic:\n%+v\n%+v", i, a, b)
		}
		if _, err := a.Build(); err != nil {
			t.Errorf("scenario %d (%s) does not build: %v", i, a, err)
		}
	}
	if reflect.DeepEqual(GenerateAt(1, 0), GenerateAt(2, 0)) {
		t.Fatalf("different campaign seeds produced the same scenario")
	}
}

// shortBudget is a generous deterministic budget for test scenarios.
func shortBudget() supervise.Budget {
	return supervise.Budget{Wall: 30 * time.Second, Events: DefaultMaxEvents}
}

// runScenario executes sc under a fresh supervisor and returns the report.
func runScenario(t *testing.T, sc Scenario) supervise.Report {
	t.Helper()
	sup := supervise.New(shortBudget())
	return sup.Run(supervise.RunID{Seed: sc.Seed, Scenario: "test", Phase: "chaos"},
		func(wd *supervise.Watchdog) error { return sc.Run(wd) })
}

// baseScenario is a small twopath scenario used as the failpoint carrier.
func baseScenario() Scenario {
	return Scenario{
		Seed: 7, Topo: "twopath", Subflows: 3, Algorithm: "lia",
		RateMbps: [2]int64{20, 10}, DelayMs: 10, QueueLimit: 100,
		HorizonMs: 2000, Cross: true,
		Faults: "path0:loss@500ms=0.02;path1:delay@800ms=40ms",
	}
}

func TestTripFailpointSignature(t *testing.T) {
	sc := baseScenario()
	sc.Failpoint = "trip@1s"
	rep := runScenario(t, sc)
	if rep.Outcome != supervise.Quarantined {
		t.Fatalf("outcome = %v, want Quarantined", rep.Outcome)
	}
	if sig := Signature(rep.Err); sig != "invariant.chaos.failpoint" {
		t.Fatalf("signature = %q, want invariant.chaos.failpoint (msg: %s)", sig, rep.Err.Msg)
	}
}

func TestPanicFailpointQuarantined(t *testing.T) {
	sc := baseScenario()
	sc.Failpoint = "panic@1s"
	rep := runScenario(t, sc)
	if rep.Outcome != supervise.Quarantined || rep.Err.Kind != supervise.KindPanic {
		t.Fatalf("outcome = %v kind = %v, want quarantined panic", rep.Outcome, rep.Err)
	}
	if sig := Signature(rep.Err); sig != "panic" {
		t.Fatalf("signature = %q, want panic", sig)
	}
	if len(rep.Err.Stack) == 0 {
		t.Fatalf("panic failure carries no stack")
	}
}

// TestSpinFailpointTimesOut pins that a simulated hang is ended by the wall
// deadline and classified as a timeout, not retried.
func TestSpinFailpointTimesOut(t *testing.T) {
	sc := baseScenario()
	sc.Failpoint = "spin@200ms=400ms"
	sup := supervise.New(supervise.Budget{Wall: 100 * time.Millisecond, CheckEvery: 0})
	rep := sup.Run(supervise.RunID{Seed: sc.Seed, Scenario: "spin", Phase: "chaos"},
		func(wd *supervise.Watchdog) error { return sc.Run(wd) })
	if rep.Outcome != supervise.TimedOut {
		t.Fatalf("outcome = %v, want TimedOut (err: %+v)", rep.Outcome, rep.Err)
	}
	if sig := Signature(rep.Err); sig != "timeout" {
		t.Fatalf("signature = %q, want timeout", sig)
	}
}

// TestShrinkMinimisesTripScenario checks the shrinker strips the noise —
// fault clauses, cross traffic, extra subflows — while preserving the
// failure signature, and that the shrunk scenario still reproduces.
func TestShrinkMinimisesTripScenario(t *testing.T) {
	sc := baseScenario()
	sc.Failpoint = "trip@700ms"
	rep := runScenario(t, sc)
	if !rep.Outcome.Failed() {
		t.Fatalf("carrier scenario did not fail")
	}
	sig := Signature(rep.Err)

	shrunk, runs := Shrink(sc, sig, shortBudget(), DefaultShrinkRuns)
	if runs == 0 {
		t.Fatalf("shrink spent no runs")
	}
	if shrunk.Faults != "" {
		t.Errorf("faults survived shrinking: %q", shrunk.Faults)
	}
	if shrunk.Cross {
		t.Errorf("cross traffic survived shrinking")
	}
	if shrunk.Subflows > 1 {
		t.Errorf("subflows = %d after shrinking, want 1", shrunk.Subflows)
	}
	if shrunk.HorizonMs >= sc.HorizonMs {
		t.Errorf("horizon did not shrink: %dms", shrunk.HorizonMs)
	}
	rep2 := runScenario(t, shrunk)
	if !rep2.Outcome.Failed() || Signature(rep2.Err) != sig {
		t.Fatalf("shrunk scenario does not reproduce %q: %+v", sig, rep2.Err)
	}
}

// TestGenerateChurnScenarios pins that the generator arms churn populations
// on a reasonable fraction of datacenter scenarios, that churn scenarios
// run clean organically, and that churn is never generated for single-route
// topologies.
func TestGenerateChurnScenarios(t *testing.T) {
	churned := 0
	for i := 0; i < 60; i++ {
		sc := GenerateAt(3, i)
		switch sc.Topo {
		case "fattree", "vl2", "bcube":
		default:
			if sc.ChurnFlows > 0 {
				t.Fatalf("scenario %d (%s): churn on single-route topology", i, sc)
			}
		}
		if sc.ChurnFlows > 0 {
			churned++
		}
	}
	if churned == 0 {
		t.Fatal("60 scenarios generated no churn population")
	}

	// One churn scenario end to end: clean run, and the accounting check in
	// Run actually executes (CutLive balances the ledger at the horizon).
	sc := Scenario{
		Seed: 11, Topo: "fattree", Arity: 4, Subflows: 2, Algorithm: "lia",
		HorizonMs: 1500, ChurnFlows: 300, ChurnRate: 300, ChurnCap: 40,
		Faults: "path0:down@400ms,up@900ms",
	}
	rep := runScenario(t, sc)
	if rep.Outcome.Failed() {
		t.Fatalf("churn scenario failed: %+v", rep.Err)
	}
}

// TestShrinkChurnScenario pins the churn-specific shrink stages: the
// population halves away when it is irrelevant to the failure, and the
// twopath collapse clears every churn field.
func TestShrinkChurnScenario(t *testing.T) {
	sc := Scenario{
		Seed: 13, Topo: "fattree", Arity: 4, Subflows: 3, Algorithm: "olia",
		HorizonMs: 2000, ChurnFlows: 400, ChurnRate: 300, ChurnCap: 50,
		Faults:    "path0:loss@500ms=0.02",
		Failpoint: "trip@700ms",
	}
	rep := runScenario(t, sc)
	if !rep.Outcome.Failed() {
		t.Fatal("carrier scenario did not fail")
	}
	sig := Signature(rep.Err)

	shrunk, runs := Shrink(sc, sig, shortBudget(), DefaultShrinkRuns)
	if runs == 0 {
		t.Fatal("shrink spent no runs")
	}
	if shrunk.ChurnFlows != 0 || shrunk.ChurnRate != 0 || shrunk.ChurnCap != 0 {
		t.Errorf("churn fields survived shrinking: flows=%d rate=%g cap=%d",
			shrunk.ChurnFlows, shrunk.ChurnRate, shrunk.ChurnCap)
	}
	rep2 := runScenario(t, shrunk)
	if !rep2.Outcome.Failed() || Signature(rep2.Err) != sig {
		t.Fatalf("shrunk scenario does not reproduce %q: %+v", sig, rep2.Err)
	}
}

// TestSoakDeterministicAcrossWorkers is the acceptance criterion: a
// campaign with injected failures yields identical scenarios, failure
// indexes, signatures and artifacts at every pool width.
func TestSoakDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (*SoakResult, string) {
		dir := t.TempDir()
		res, err := Soak(SoakConfig{
			Seed: 1, Count: 10, Workers: workers, Dir: dir, Inject: 5,
		})
		if err != nil {
			t.Fatalf("Soak(workers=%d): %v", workers, err)
		}
		return res, dir
	}
	seq, seqDir := run(1)
	par, parDir := run(4)

	if seq.Scenarios != 10 || par.Scenarios != 10 {
		t.Fatalf("scenario counts: %d vs %d, want 10", seq.Scenarios, par.Scenarios)
	}
	// Inject=5 arms scenarios 4 (trip) and 9 (panic); organic failures, if
	// any, are deterministic too.
	if len(seq.Failures) < 2 {
		t.Fatalf("j=1 quarantined %d scenarios, want at least the 2 injected", len(seq.Failures))
	}
	if len(seq.Failures) != len(par.Failures) {
		t.Fatalf("failure counts differ: j=1 %d, j=4 %d", len(seq.Failures), len(par.Failures))
	}
	for i := range seq.Failures {
		a, b := seq.Failures[i], par.Failures[i]
		if a.Index != b.Index || a.Signature != b.Signature || a.Outcome != b.Outcome {
			t.Errorf("failure %d differs: j=1 {%d %s %s}, j=4 {%d %s %s}",
				i, a.Index, a.Signature, a.Outcome, b.Index, b.Signature, b.Outcome)
		}
	}
	if seq.Counts != par.Counts {
		t.Fatalf("supervisor counts differ: %v vs %v", seq.Counts, par.Counts)
	}

	// Artifacts must be byte-identical (paths differ by temp dir).
	for _, f := range seq.Failures {
		if f.Artifact == "" {
			t.Fatalf("failure %d has no artifact", f.Index)
		}
		a, err := os.ReadFile(f.Artifact)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(parDir, filepath.Base(f.Artifact)))
		if err != nil {
			t.Fatalf("j=4 artifact missing: %v", err)
		}
		if string(a) != string(b) {
			t.Errorf("artifact %s differs across worker counts", filepath.Base(f.Artifact))
		}
	}
	_ = seqDir
}

// TestArtifactRoundTrip is the quarantine round-trip the satellite demands:
// a soak writes an artifact, and replaying it reproduces the same invariant
// trip.
func TestArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res, err := Soak(SoakConfig{Seed: 42, Count: 2, Workers: 2, Dir: dir, Inject: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) < 2 {
		t.Fatalf("quarantined %d scenarios, want 2 (trip + panic injected)", len(res.Failures))
	}
	for _, f := range res.Failures {
		rr, err := Replay(f.Artifact, supervise.Budget{})
		if err != nil {
			t.Fatalf("Replay(%s): %v", f.Artifact, err)
		}
		if !rr.Match {
			t.Errorf("replay of %s observed %q, artifact records %q",
				filepath.Base(f.Artifact), rr.Signature, rr.Artifact.Signature)
		}
	}
}

// TestSoakRequiresBound pins the config validation.
func TestSoakRequiresBound(t *testing.T) {
	if _, err := Soak(SoakConfig{Seed: 1}); err == nil {
		t.Fatal("Soak without Count or Duration succeeded")
	}
}

func TestDecodeArtifactRejects(t *testing.T) {
	if _, err := DecodeArtifact([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := DecodeArtifact([]byte(`{"version": 99}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestQuarantineCorpus replays every committed artifact: each must still
// fail with its recorded signature. This is the regression net for the
// nightly soak — a behaviour change that un-reproduces a quarantined
// failure fails here first.
func TestQuarantineCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "quarantine", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("quarantine corpus is empty; expected at least one committed artifact")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			rr, err := Replay(path, supervise.Budget{})
			if err != nil {
				t.Fatal(err)
			}
			if !rr.Match {
				t.Fatalf("observed %q, artifact records %q", rr.Signature, rr.Artifact.Signature)
			}
		})
	}
}

// TestFailpointParseErrors pins that malformed failpoints are build errors,
// not panics.
func TestFailpointParseErrors(t *testing.T) {
	for _, fp := range []string{"panic", "panic@xyz", "spin@1s", "spin@1s=bad", "explode@1s"} {
		sc := baseScenario()
		sc.Failpoint = fp
		if err := sc.Run(nil); err == nil || !strings.Contains(err.Error(), "failpoint") {
			t.Errorf("failpoint %q: err = %v, want failpoint error", fp, err)
		}
	}
}

// FuzzDecodeArtifact fuzzes the replay decode path: arbitrary bytes must
// produce an error or a valid artifact, never a panic.
func FuzzDecodeArtifact(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"signature":"panic","scenario":{"seed":1,"topo":"twopath","subflows":2,"algorithm":"lia","horizon_ms":1000}}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`not json`))
	seed, _ := json.Marshal(Artifact{Version: 1, Signature: "invariant.chaos.failpoint", Scenario: baseScenario()})
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArtifact(data)
		if err == nil && a == nil {
			t.Fatal("nil artifact with nil error")
		}
	})
}
