// Package chaos generates adversarial simulation scenarios and keeps the
// ones that break. A seeded generator samples topology, algorithm, link
// parameters, workload and a random fault schedule; each scenario runs
// under internal/check invariants and an internal/supervise watchdog. A
// failing scenario is shrunk — fewer fault clauses, less cross traffic,
// fewer subflows, a smaller topology, a shorter horizon — to a minimal
// repro that still fails with the same signature, then written as a
// replayable JSON artifact into a quarantine corpus (see mptcp-sim -soak
// and -replay).
//
// Determinism: scenario i of a campaign depends only on (campaign seed, i),
// and every run seeds its own engine from the scenario, so soak results are
// identical for any worker count — with one caveat: the wall-clock timeout
// is a nondeterministic backstop against true hangs, and campaigns that
// need strict determinism should bound runs by event budget (they do by
// default).
package chaos

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"time"

	"mptcpsim/internal/check"
	"mptcpsim/internal/faults"
	"mptcpsim/internal/flows"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/supervise"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/workload"
)

// Scenario is one generated chaos run, fully determined by its fields: the
// JSON encoding is the replay format. Fault schedules use the -fault
// grammar (see internal/faults.Parse) so a quarantined artifact can be
// reproduced by hand with mptcp-sim flags.
type Scenario struct {
	Seed       int64    `json:"seed"`
	Topo       string   `json:"topo"` // twopath | hetwireless | fattree | vl2 | bcube
	Arity      int      `json:"arity,omitempty"`
	Subflows   int      `json:"subflows"`
	Algorithm  string   `json:"algorithm"`
	RateMbps   [2]int64 `json:"rate_mbps,omitempty"` // twopath per-path rates
	DelayMs    int      `json:"delay_ms,omitempty"`
	QueueLimit int      `json:"queue_limit,omitempty"`
	LossProb   float64  `json:"loss_prob,omitempty"`
	HorizonMs  int      `json:"horizon_ms"`
	TransferMB int      `json:"transfer_mb,omitempty"` // 0 = long-lived source
	Cross      bool     `json:"cross,omitempty"`       // Pareto on-off cross traffic
	Faults     string   `json:"faults,omitempty"`      // faults.Parse grammar
	// Failpoint deliberately breaks the run to exercise the quarantine
	// machinery: "panic@T" panics mid-run, "spin@T=D" burns D of wall
	// clock (a simulated hang), "trip@T" injects a synthetic invariant
	// violation. Empty for organically generated scenarios.
	Failpoint string `json:"failpoint,omitempty"`
	// ChurnFlows, when positive on a datacenter topology, runs an open-loop
	// flow population (internal/flows) alongside the measured connection:
	// up to ChurnFlows flows arrive Poisson at ChurnRate flows/sec across
	// random host pairs, admission-capped at ChurnCap concurrent flows
	// (0 = uncapped). The run fails if the population's flow accounting
	// breaks (offered != completed + shed + cut).
	ChurnFlows int     `json:"churn_flows,omitempty"`
	ChurnRate  float64 `json:"churn_rate,omitempty"`
	ChurnCap   int     `json:"churn_cap,omitempty"`
}

func (sc Scenario) String() string {
	s := fmt.Sprintf("%s/%s sub=%d seed=%d horizon=%dms", sc.Topo, sc.Algorithm, sc.Subflows, sc.Seed, sc.HorizonMs)
	if sc.ChurnFlows > 0 {
		s += fmt.Sprintf(" churn=%d@%.0f/s cap=%d", sc.ChurnFlows, sc.ChurnRate, sc.ChurnCap)
	}
	if sc.Faults != "" {
		s += " faults=" + sc.Faults
	}
	if sc.Failpoint != "" {
		s += " failpoint=" + sc.Failpoint
	}
	return s
}

// Horizon returns the run horizon in simulated time.
func (sc Scenario) Horizon() sim.Time { return sim.Time(sc.HorizonMs) * sim.Millisecond }

// chaosAlgorithms is the pool the generator samples; it spans loss-based,
// delay-based and energy-aware controllers plus single-path baselines.
var chaosAlgorithms = []string{
	"reno", "cubic", "ewtcp", "coupled", "lia", "olia", "balia", "ecmtcp",
	"vegas", "wvegas", "dts", "dts-lia", "dtsep", "dtsep-lia",
}

// GenerateAt derives scenario i of a campaign from the campaign seed. The
// derivation depends only on (seed, i), never on which worker runs it.
func GenerateAt(seed int64, i int) Scenario {
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + int64(i)*0x1CE4E5B9 + 0x4F6CDD1D))
	sc := Scenario{
		Seed:      seed + int64(i),
		Algorithm: chaosAlgorithms[rng.Intn(len(chaosAlgorithms))],
	}
	switch p := rng.Intn(10); {
	case p < 4:
		sc.Topo = "twopath"
	case p < 6:
		sc.Topo = "hetwireless"
	case p < 8:
		sc.Topo = "fattree"
	case p < 9:
		sc.Topo = "vl2"
	default:
		sc.Topo = "bcube"
	}
	switch sc.Topo {
	case "twopath":
		sc.Subflows = 2 + rng.Intn(3)
		sc.RateMbps = [2]int64{int64(5 + rng.Intn(96)), int64(5 + rng.Intn(96))}
		sc.DelayMs = 2 + rng.Intn(80)
		sc.QueueLimit = 20 + rng.Intn(180)
		sc.HorizonMs = 2000 + rng.Intn(6000)
		sc.Cross = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			sc.LossProb = float64(rng.Intn(40)) / 1000 // up to 4%
		}
		if rng.Intn(2) == 0 {
			sc.TransferMB = 1 + rng.Intn(8)
		}
	case "hetwireless":
		sc.Subflows = 2
		sc.HorizonMs = 2000 + rng.Intn(6000)
		sc.Cross = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			sc.LossProb = float64(rng.Intn(40)) / 1000
		}
	case "fattree":
		sc.Arity = 2 * (1 + rng.Intn(2)) // K = 2 or 4
		sc.Subflows = 1 + rng.Intn(4)
		sc.HorizonMs = 1000 + rng.Intn(2000)
		genChurn(rng, &sc)
	case "vl2":
		sc.Arity = 2 + rng.Intn(3) // ToRs
		sc.Subflows = 1 + rng.Intn(4)
		sc.HorizonMs = 1000 + rng.Intn(2000)
		genChurn(rng, &sc)
	case "bcube":
		sc.Arity = 2 + rng.Intn(2) // N
		sc.Subflows = 1 + rng.Intn(3)
		sc.HorizonMs = 1000 + rng.Intn(2000)
		genChurn(rng, &sc)
	}
	sc.Faults = genFaults(rng, sc)
	return sc
}

// genChurn arms an open-loop churn population on half of the datacenter
// scenarios: an arrival rate crossed with an admission cap (present or
// absent), so fault schedules run against both uncapped growth and
// deterministic shedding.
func genChurn(rng *rand.Rand, sc *Scenario) {
	if rng.Intn(2) != 0 {
		return
	}
	sc.ChurnFlows = 100 + rng.Intn(700)
	sc.ChurnRate = float64(100 + rng.Intn(400))
	if rng.Intn(2) == 0 {
		sc.ChurnCap = 20 + rng.Intn(80)
	}
}

// genFaults samples 0-2 clauses of the -fault grammar, every instant
// strictly inside the horizon so Validate accepts the schedule.
func genFaults(rng *rand.Rand, sc Scenario) string {
	n := rng.Intn(3)
	if n == 0 {
		return ""
	}
	at := func(lo, hi float64) string {
		f := lo + rng.Float64()*(hi-lo)
		return fmt.Sprintf("%dms", int(f*float64(sc.HorizonMs)))
	}
	targets := 2
	if sc.Subflows < 2 {
		targets = 1
	}
	var clauses []string
	for c := 0; c < n; c++ {
		target := fmt.Sprintf("path%d", rng.Intn(targets))
		var d string
		switch rng.Intn(5) {
		case 0:
			d = fmt.Sprintf("down@%s,up@%s", at(0.1, 0.4), at(0.5, 0.9))
		case 1:
			// period 20-30% of horizon, down for a third of the period
			p := sc.HorizonMs / 5
			d = fmt.Sprintf("flap@%s+%dms/%dms", at(0.1, 0.3), p, p/3)
		case 2:
			d = fmt.Sprintf("loss@%s=%.3f", at(0.2, 0.8), float64(rng.Intn(80))/1000)
		case 3:
			d = fmt.Sprintf("rate@%s=%dMbps", at(0.2, 0.8), 1+rng.Intn(50))
		default:
			d = fmt.Sprintf("delay@%s=%dms", at(0.2, 0.8), 1+rng.Intn(150))
		}
		clauses = append(clauses, target+":"+d)
	}
	return strings.Join(clauses, ";")
}

// built is a constructed scenario ready to run.
type built struct {
	eng   *sim.Engine
	conn  *mptcp.Conn
	paths []*netem.Path // the connection's path list; fault targets resolve here
	// mkChurn, when the scenario carries a churn population, creates the
	// flow manager. It is a deferred constructor rather than a manager
	// because the invariant checker the population registers with is
	// created by Run, after Build.
	mkChurn func(inv *check.Invariants) (*flows.Manager, error)
}

// repeat fans n subflows over the physical paths round-robin.
func repeat(paths []*netem.Path, n int) []*netem.Path {
	out := make([]*netem.Path, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, paths[i%len(paths)])
	}
	return out
}

// Build constructs the scenario's engine, topology, workload and fault
// schedule. Errors (bad algorithm, unresolvable fault target, schedule past
// horizon) are returned, not panicked: in a soak they quarantine just the
// one scenario.
func (sc Scenario) Build() (*built, error) {
	if sc.Subflows < 1 {
		return nil, fmt.Errorf("chaos: scenario needs at least one subflow, got %d", sc.Subflows)
	}
	if sc.HorizonMs <= 0 {
		return nil, fmt.Errorf("chaos: scenario needs a positive horizon, got %dms", sc.HorizonMs)
	}
	eng := sim.NewEngine(sc.Seed)
	var paths []*netem.Path
	var mkChurn func(inv *check.Invariants) (*flows.Manager, error)
	switch sc.Topo {
	case "twopath":
		tp := topo.NewTwoPath(eng, topo.TwoPathConfig{
			Rates:      [2]int64{sc.RateMbps[0] * netem.Mbps, sc.RateMbps[1] * netem.Mbps},
			Delay:      sim.Time(sc.DelayMs) * sim.Millisecond,
			QueueLimit: sc.QueueLimit,
		})
		if sc.LossProb > 0 {
			for _, l := range tp.Paths()[0].Forward {
				l.SetLossProb(sc.LossProb)
			}
		}
		if sc.Cross {
			for i := 0; i < 2; i++ {
				workload.NewParetoOnOff(eng, []*netem.Link{tp.CrossEntry(i)}, workload.ParetoConfig{
					RateBps: sc.RateMbps[i] * netem.Mbps * 9 / 10,
				}).Start()
			}
		}
		paths = repeat(tp.Paths(), sc.Subflows)
	case "hetwireless":
		het := topo.NewHetWireless(eng, topo.HetWirelessConfig{WiFiLoss: sc.LossProb})
		if sc.Cross {
			workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(0)}, workload.ParetoConfig{
				RateBps: 8 * netem.Mbps,
			}).Start()
			workload.NewParetoOnOff(eng, []*netem.Link{het.CrossEntry(1)}, workload.ParetoConfig{
				RateBps: 16 * netem.Mbps,
			}).Start()
		}
		paths = repeat(het.Paths(), sc.Subflows)
	case "fattree", "vl2", "bcube":
		net, err := sc.buildDC(eng)
		if err != nil {
			return nil, err
		}
		hosts := net.Hosts()
		if hosts < 2 {
			return nil, fmt.Errorf("chaos: %s arity %d yields %d hosts", sc.Topo, sc.Arity, hosts)
		}
		dst := 1 + eng.Rand().Intn(hosts-1)
		paths = net.Paths(0, dst, sc.Subflows)
		if sc.ChurnFlows > 0 {
			mkChurn = func(inv *check.Invariants) (*flows.Manager, error) {
				return flows.New(eng, net, flows.Config{
					Algorithm:     sc.Algorithm,
					TotalFlows:    sc.ChurnFlows,
					MaxConcurrent: sc.ChurnCap,
					Arrivals:      flows.Poisson{Rate: sc.ChurnRate},
					Check:         inv,
				})
			}
		}
	default:
		return nil, fmt.Errorf("chaos: unknown topology %q", sc.Topo)
	}
	if sc.ChurnFlows > 0 && mkChurn == nil {
		return nil, fmt.Errorf("chaos: churn population needs a datacenter topology, not %q", sc.Topo)
	}

	cfg := mptcp.Config{Algorithm: sc.Algorithm, TransferBytes: int64(sc.TransferMB) << 20}
	conn, err := mptcp.New(eng, cfg, 1, paths...)
	if err != nil {
		return nil, err
	}

	if sc.Faults != "" {
		pfs, err := faults.Parse(sc.Faults)
		if err != nil {
			return nil, err
		}
		if err := faults.Validate(pfs, paths, sc.Horizon()); err != nil {
			return nil, err
		}
		for _, pf := range pfs {
			p, err := faults.Resolve(pf.Target, paths)
			if err != nil {
				return nil, err
			}
			faults.Apply(eng, p, pf.Faults...)
		}
	}
	return &built{eng: eng, conn: conn, paths: paths, mkChurn: mkChurn}, nil
}

// dcNet is the common surface of the three datacenter topologies.
type dcNet interface {
	Hosts() int
	Paths(src, dst, n int) []*netem.Path
}

func (sc Scenario) buildDC(eng *sim.Engine) (dcNet, error) {
	switch sc.Topo {
	case "fattree":
		return topo.NewFatTree(eng, topo.FatTreeConfig{K: sc.Arity})
	case "vl2":
		a := sc.Arity / 2
		if a < 2 {
			a = 2
		}
		return topo.NewVL2(eng, topo.VL2Config{HostsPerToR: 2, ToRs: sc.Arity, Aggs: a, Ints: a})
	default:
		return topo.NewBCube(eng, topo.BCubeConfig{N: sc.Arity, K: 1})
	}
}

// Run executes the scenario under invariant checking, with the watchdog
// (nil-safe) attached to the engine. It returns the build error, the
// failpoint's effect, or the collected invariant violations; a panic out of
// the engine propagates to the supervisor as usual.
func (sc Scenario) Run(wd *supervise.Watchdog) error {
	b, err := sc.Build()
	if err != nil {
		return err
	}
	wd.Attach(b.eng)
	inv := check.New(b.eng)
	inv.Watch("conn", b.conn)
	inv.WatchPaths(b.paths...)
	var mgr *flows.Manager
	if b.mkChurn != nil {
		if mgr, err = b.mkChurn(inv); err != nil {
			return err
		}
	}
	if err := sc.installFailpoint(b.eng, inv); err != nil {
		return err
	}
	inv.Start()
	b.conn.Start()
	if mgr != nil {
		mgr.Start()
	}
	b.eng.Run(sc.Horizon())
	if mgr != nil {
		// The horizon cuts whatever is still live; after that the zero-
		// silent-loss ledger must balance, faults and all.
		mgr.CutLive()
		st := mgr.Stats()
		if st.Offered != st.Completed+st.ShedCapacity+st.Cut {
			return fmt.Errorf("chaos: churn accounting broken: %d offered != %d completed + %d shed + %d cut",
				st.Offered, st.Completed, st.ShedCapacity, st.Cut)
		}
	}
	inv.Final()
	return inv.Err()
}

// installFailpoint arms the scenario's deliberate failure, if any.
func (sc Scenario) installFailpoint(eng *sim.Engine, inv *check.Invariants) error {
	if sc.Failpoint == "" {
		return nil
	}
	kind, arg, ok := strings.Cut(sc.Failpoint, "@")
	if !ok {
		return fmt.Errorf("chaos: failpoint %q has no @time", sc.Failpoint)
	}
	switch kind {
	case "panic":
		at, err := time.ParseDuration(arg)
		if err != nil {
			return fmt.Errorf("chaos: failpoint %q: %v", sc.Failpoint, err)
		}
		eng.Schedule(sim.FromDuration(at), func() {
			panic(fmt.Sprintf("chaos: injected panic failpoint at %v", at))
		})
	case "spin":
		atStr, durStr, ok := strings.Cut(arg, "=")
		if !ok {
			return fmt.Errorf("chaos: spin failpoint %q needs @time=duration", sc.Failpoint)
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return fmt.Errorf("chaos: failpoint %q: %v", sc.Failpoint, err)
		}
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return fmt.Errorf("chaos: failpoint %q: %v", sc.Failpoint, err)
		}
		eng.Schedule(sim.FromDuration(at), func() {
			// A simulated hang: burn real wall clock inside one event so
			// only the wall-deadline watchdog can end the run.
			time.Sleep(d)
		})
	case "trip":
		at, err := time.ParseDuration(arg)
		if err != nil {
			return fmt.Errorf("chaos: failpoint %q: %v", sc.Failpoint, err)
		}
		simAt := sim.FromDuration(at)
		eng.Schedule(simAt, func() {
			inv.Inject(check.Violation{T: simAt, Invariant: "chaos.failpoint", Detail: "injected violation"})
		})
	default:
		return fmt.Errorf("chaos: unknown failpoint %q (want panic/spin/trip)", kind)
	}
	return nil
}

// invariantRe extracts the invariant name out of a check failure message,
// in both its shapes (the FailFast panic and the collected Err summary);
// Violation.String renders "t=1.234s name: detail".
var invariantRe = regexp.MustCompile(`t=\d+\.\d+s ([a-zA-Z0-9._-]+):`)

// Signature classifies a RunError into a stable failure signature: the
// shrinker only accepts a smaller scenario that fails with the SAME
// signature, and quarantine artifacts are named by it.
func Signature(re *supervise.RunError) string {
	if re == nil {
		return ""
	}
	switch re.Kind {
	case supervise.KindTimeout:
		return "timeout"
	case supervise.KindBudget:
		return "budget"
	}
	if m := invariantRe.FindStringSubmatch(re.Msg); m != nil {
		return "invariant." + m[1]
	}
	if re.Kind == supervise.KindPanic {
		return "panic"
	}
	return "error"
}
