package chaos

import (
	"strings"

	"mptcpsim/internal/supervise"
)

// DefaultShrinkRuns caps how many candidate runs a shrink may spend; each
// candidate is a full (budgeted) simulation, so the cap bounds shrink cost
// for scenarios that resist minimisation.
const DefaultShrinkRuns = 64

// shrinker tracks the budget and the signature a candidate must preserve.
type shrinker struct {
	sig    string
	budget supervise.Budget
	runs   int
	max    int
}

// reproduces runs the candidate under an isolated supervisor (no retries:
// chaos failures are deterministic by construction) and reports whether it
// fails with the same signature as the original.
func (sh *shrinker) reproduces(sc Scenario) bool {
	if sh.runs >= sh.max {
		return false
	}
	sh.runs++
	sup := supervise.New(sh.budget)
	rep := sup.Run(supervise.RunID{Seed: sc.Seed, Scenario: "shrink", Phase: "chaos"},
		func(wd *supervise.Watchdog) error { return sc.Run(wd) })
	if !rep.Outcome.Failed() {
		return false
	}
	return Signature(rep.Err) == sh.sig
}

// Shrink reduces a failing scenario to a smaller one that fails with the
// same signature. The reduction order — documented in EXPERIMENTS.md and
// relied on by the corpus tests — is:
//
//  1. drop fault clauses one at a time (greedy, to a fixed point)
//  2. drop cross traffic, then halve the churn population toward zero
//  3. reduce subflows toward 2, then 1
//  4. shrink the topology arity
//  5. collapse datacenter/wireless topologies to twopath (clearing any
//     remaining churn fields — twopath has no host population)
//  6. halve the horizon (down to 500ms)
//
// Every candidate is accepted only if it still fails with the original
// signature; at most maxRuns (<=0 means DefaultShrinkRuns) candidates are
// tried. Returns the smallest accepted scenario and the number of runs
// spent. If nothing shrinks, the original comes back unchanged.
func Shrink(sc Scenario, sig string, budget supervise.Budget, maxRuns int) (Scenario, int) {
	if maxRuns <= 0 {
		maxRuns = DefaultShrinkRuns
	}
	sh := &shrinker{sig: sig, budget: budget, max: maxRuns}
	cur := sc

	// 1. Fault clauses, greedily to a fixed point.
	for changed := true; changed && cur.Faults != ""; {
		changed = false
		clauses := strings.Split(cur.Faults, ";")
		for i := range clauses {
			cand := cur
			rest := make([]string, 0, len(clauses)-1)
			rest = append(rest, clauses[:i]...)
			rest = append(rest, clauses[i+1:]...)
			cand.Faults = strings.Join(rest, ";")
			if sh.reproduces(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}

	// 2. Cross traffic.
	if cur.Cross {
		cand := cur
		cand.Cross = false
		if sh.reproduces(cand) {
			cur = cand
		}
	}

	// 2b. Churn population: halve toward zero. Below ~25 flows the
	// population is noise, so the tail collapses straight to none (which
	// also clears the rate and cap — a churn-free scenario carries no
	// churn knobs).
	for cur.ChurnFlows > 0 {
		cand := cur
		cand.ChurnFlows /= 2
		if cand.ChurnFlows < 25 {
			cand.ChurnFlows = 0
		}
		if cand.ChurnFlows == 0 {
			cand.ChurnRate, cand.ChurnCap = 0, 0
		}
		if !sh.reproduces(cand) {
			break
		}
		cur = cand
	}

	// 3. Subflows.
	for _, n := range []int{2, 1} {
		if cur.Subflows > n {
			cand := cur
			cand.Subflows = n
			if sh.reproduces(cand) {
				cur = cand
			}
		}
	}

	// 4. Arity.
	for {
		cand := cur
		switch cur.Topo {
		case "fattree":
			if cur.Arity <= 2 {
				goto arityDone
			}
			cand.Arity = cur.Arity - 2 // K stays even
		case "vl2", "bcube":
			if cur.Arity <= 2 {
				goto arityDone
			}
			cand.Arity = cur.Arity - 1
		default:
			goto arityDone
		}
		if !sh.reproduces(cand) {
			goto arityDone
		}
		cur = cand
	}
arityDone:

	// 5. Topology collapse. Twopath has a single measured route, so any
	// surviving churn population must go with the datacenter fabric.
	if cur.Topo != "twopath" {
		cand := cur
		cand.Topo = "twopath"
		cand.Arity = 0
		cand.RateMbps = [2]int64{10, 10}
		cand.DelayMs = 10
		cand.QueueLimit = 100
		cand.ChurnFlows, cand.ChurnRate, cand.ChurnCap = 0, 0, 0
		if cand.Subflows < 2 {
			cand.Subflows = 2
		}
		if sh.reproduces(cand) {
			cur = cand
		}
	}

	// 6. Horizon.
	for cur.HorizonMs > 1000 {
		cand := cur
		cand.HorizonMs = cur.HorizonMs / 2
		if cand.HorizonMs < 500 {
			cand.HorizonMs = 500
		}
		if !sh.reproduces(cand) {
			break
		}
		cur = cand
	}

	return cur, sh.runs
}
