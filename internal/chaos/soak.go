package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mptcpsim/internal/runner"
	"mptcpsim/internal/supervise"
)

// ArtifactVersion is bumped when the artifact schema changes; Replay
// refuses versions it does not know.
const ArtifactVersion = 1

// Artifact is a quarantined failure: the shrunk scenario that reproduces
// it, the original scenario it was shrunk from, and the failure record.
// Artifacts are plain JSON so they can be committed as a regression corpus
// (internal/chaos/testdata/quarantine) and replayed with mptcp-sim -replay.
type Artifact struct {
	Version    int                `json:"version"`
	Signature  string             `json:"signature"`
	Scenario   Scenario           `json:"scenario"`
	Original   Scenario           `json:"original"`
	Failure    supervise.RunError `json:"failure"`
	ShrinkRuns int                `json:"shrink_runs"`
}

// Filename returns the canonical artifact name, derived from the signature
// and the shrunk scenario's seed so distinct failures do not collide.
func (a *Artifact) Filename() string {
	sig := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, strings.ToLower(a.Signature))
	return fmt.Sprintf("chaos_%s_seed%d.json", sig, a.Scenario.Seed)
}

// WriteArtifact writes the artifact into dir (created if needed) under its
// canonical filename and returns the full path.
func WriteArtifact(dir string, a *Artifact) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, a.Filename())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// DecodeArtifact parses artifact JSON; it is the fuzz surface for the
// replay path (FuzzDecodeArtifact), so it must never panic on hostile
// input.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("chaos: bad artifact: %w", err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("chaos: artifact version %d, this build understands %d", a.Version, ArtifactVersion)
	}
	return &a, nil
}

// LoadArtifact reads and decodes an artifact file.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeArtifact(data)
}

// ReplayResult is the outcome of re-running a quarantined scenario.
type ReplayResult struct {
	Artifact  *Artifact
	Outcome   supervise.Outcome
	Signature string // observed signature, "" when the run came back clean
	Match     bool   // observed signature == recorded signature
}

// Replay re-runs an artifact's shrunk scenario under the given budget (zero
// fields fall back to the soak defaults) and reports whether the recorded
// failure reproduces. A replay that comes back clean or fails differently
// sets Match=false — the regression the corpus tests and -replay exit codes
// key on.
func Replay(path string, budget supervise.Budget) (*ReplayResult, error) {
	a, err := LoadArtifact(path)
	if err != nil {
		return nil, err
	}
	if budget.Wall == 0 {
		budget.Wall = DefaultRunTimeout
	}
	if budget.Events == 0 {
		budget.Events = DefaultMaxEvents
	}
	sup := supervise.New(budget)
	rep := sup.Run(supervise.RunID{Seed: a.Scenario.Seed, Scenario: "replay", Phase: "chaos"},
		func(wd *supervise.Watchdog) error { return a.Scenario.Run(wd) })
	res := &ReplayResult{Artifact: a, Outcome: rep.Outcome}
	if rep.Outcome.Failed() {
		res.Signature = Signature(rep.Err)
	}
	res.Match = res.Signature == a.Signature
	return res, nil
}

// Soak defaults; generous enough that organic scenarios never trip them.
const (
	DefaultRunTimeout = 30 * time.Second
	DefaultMaxEvents  = 20_000_000
)

// SoakConfig controls a chaos campaign.
type SoakConfig struct {
	Seed     int64
	Count    int           // scenarios to run (count mode)
	Duration time.Duration // wall-clock budget (duration mode, when Count==0)
	Workers  int           // pool width; results are identical for any value
	Dir      string        // quarantine directory for failure artifacts ("" = don't write)
	Timeout  time.Duration // per-run wall deadline (0 = DefaultRunTimeout)
	// MaxEvents bounds each run's engine events — the deterministic
	// counterpart of Timeout (0 = DefaultMaxEvents).
	MaxEvents uint64
	// Inject arms a failpoint on every Inject-th scenario (0 = none),
	// cycling through trip and panic; soak self-test mode.
	Inject int
	Log    func(format string, args ...any) // nil = silent
	// Ctx stops the campaign cooperatively: once cancelled, no further
	// scenarios are dispatched, in-flight ones drain, and the result (with
	// Interrupted set) covers exactly the scenarios that ran. Nil means
	// never cancelled.
	Ctx context.Context
}

// SoakFailure is one quarantined scenario of a campaign.
type SoakFailure struct {
	Index     int                `json:"index"`
	Signature string             `json:"signature"`
	Outcome   string             `json:"outcome"`
	Error     supervise.RunError `json:"error"`
	Artifact  string             `json:"artifact,omitempty"`
	// Shrunk reports whether shrinking found a strictly smaller scenario
	// still failing with the same signature.
	Shrunk     bool `json:"shrunk"`
	ShrinkRuns int  `json:"shrink_runs"`
}

// SoakResult summarises a campaign.
type SoakResult struct {
	Scenarios int                   `json:"scenarios"`
	Counts    supervise.Counts      `json:"counts"`
	Failures  []SoakFailure         `json:"failures,omitempty"`
	Sup       *supervise.Supervisor `json:"-"`
	// Interrupted: the campaign was cancelled before finishing; Scenarios
	// counts only the runs that actually executed.
	Interrupted bool `json:"interrupted,omitempty"`
}

// Failed reports whether any scenario was quarantined.
func (r *SoakResult) Failed() bool { return len(r.Failures) > 0 }

// Soak runs a chaos campaign: Count scenarios (or batches until Duration
// elapses), each generated by GenerateAt(Seed, i) and executed under
// invariants and the campaign supervisor. Failures are shrunk sequentially
// in index order after the pool drains, so artifacts and the result are
// deterministic for any Workers value (wall timeouts excepted — the event
// budget is the deterministic bound).
func Soak(cfg SoakConfig) (*SoakResult, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultRunTimeout
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runner.DefaultWorkers()
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	budget := supervise.Budget{Wall: cfg.Timeout, Events: cfg.MaxEvents}
	sup := supervise.New(budget)
	res := &SoakResult{Sup: sup}

	// runBatch executes scenarios [start, start+n) and reports their
	// failures plus how many actually ran (cancellation skips the rest).
	runBatch := func(start, n int) ([]SoakFailure, int) {
		type slot struct {
			rep supervise.Report
			sc  Scenario
			ran bool
		}
		slots := make([]slot, n)
		runner.MapErrCtx(ctx, cfg.Workers, n, func(i int) (struct{}, error) {
			sc := GenerateAt(cfg.Seed, start+i)
			cfg.applyInjection(&sc, start+i)
			rep := sup.Run(supervise.RunID{
				Seed:     sc.Seed,
				Scenario: fmt.Sprintf("chaos[%d]", start+i),
				Phase:    "chaos",
			}, func(wd *supervise.Watchdog) error { return sc.Run(wd) })
			slots[i] = slot{rep: rep, sc: sc, ran: true}
			return struct{}{}, nil
		})
		ran := 0
		var fails []SoakFailure
		for i, sl := range slots {
			if !sl.ran {
				continue
			}
			ran++
			if !sl.rep.Outcome.Failed() {
				continue
			}
			sig := Signature(sl.rep.Err)
			logf("chaos[%d] %s: %s — shrinking", start+i, sl.rep.Outcome, sig)
			shrunk, runs := Shrink(sl.sc, sig, budget, DefaultShrinkRuns)
			// Stacks carry goroutine ids and pool frames, which depend on
			// Workers; drop them so failure records and artifacts are
			// byte-identical at every pool width.
			failure := *sl.rep.Err
			failure.Stack = ""
			f := SoakFailure{
				Index:      start + i,
				Signature:  sig,
				Outcome:    sl.rep.Outcome.String(),
				Error:      failure,
				Shrunk:     shrunk != sl.sc,
				ShrinkRuns: runs,
			}
			if cfg.Dir != "" {
				a := &Artifact{
					Version:    ArtifactVersion,
					Signature:  sig,
					Scenario:   shrunk,
					Original:   sl.sc,
					Failure:    failure,
					ShrinkRuns: runs,
				}
				path, err := WriteArtifact(cfg.Dir, a)
				if err != nil {
					logf("chaos[%d]: writing artifact: %v", start+i, err)
				} else {
					f.Artifact = path
					logf("chaos[%d] quarantined -> %s", start+i, path)
				}
			}
			fails = append(fails, f)
		}
		return fails, ran
	}

	switch {
	case cfg.Count > 0:
		fails, ran := runBatch(0, cfg.Count)
		res.Failures = fails
		res.Scenarios = ran
	case cfg.Duration > 0:
		batch := cfg.Workers * 4
		if batch < 8 {
			batch = 8
		}
		deadline := time.Now().Add(cfg.Duration)
		for start := 0; time.Now().Before(deadline) && ctx.Err() == nil; start += batch {
			fails, ran := runBatch(start, batch)
			res.Failures = append(res.Failures, fails...)
			res.Scenarios += ran
		}
	default:
		return nil, fmt.Errorf("chaos: soak needs a Count or a Duration")
	}
	res.Counts = sup.Counts()
	res.Interrupted = ctx.Err() != nil
	return res, nil
}

// applyInjection arms the self-test failpoint on every Inject-th scenario,
// alternating a synthetic invariant trip and a panic. Spin (the hang
// failpoint) is excluded: its detection depends on wall clock, which would
// make campaign results nondeterministic.
func (cfg SoakConfig) applyInjection(sc *Scenario, i int) {
	if cfg.Inject <= 0 || (i+1)%cfg.Inject != 0 {
		return
	}
	at := sc.HorizonMs / 2
	if ((i+1)/cfg.Inject)%2 == 1 {
		sc.Failpoint = fmt.Sprintf("trip@%dms", at)
	} else {
		sc.Failpoint = fmt.Sprintf("panic@%dms", at)
	}
}
