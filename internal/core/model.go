package core

import "math"

// This file implements Eq. 3 of the paper — the general fluid model
//
//	dx_r/dt = ψ_r(x_s)·x_r² / (RTT_r²·(Σ_k x_k)²) − β_r(x_s)·λ_r·x_r² − φ_r(x_s)
//
// as an executable window-evolution policy, plus the ψ_r decompositions of
// the existing algorithms the paper derives in §IV.
//
// Conversion from fluid to per-ACK form: with x_r = w_r/RTT_r and ACKs
// arriving at rate x_r, the per-ACK window increment is (dw_r/dt)/x_r =
// ψ_r·w_r / (RTT_r²·(Σ_k x_k)²), exactly the update in Algorithm 1. The
// loss term β_r·λ_r·x_r² corresponds to a multiplicative decrease
// w_r ← (1−β_r)·w_r per loss event, and the compensative term φ_r to a
// per-ACK decrement RTT_r·φ_r/x_r.

// ParamFunc evaluates one of the model parameters (ψ, β) for subflow r.
type ParamFunc func(flows []View, r int) float64

// Model is an Eq. 3 instance. Psi is required; Beta defaults to the TCP
// standard 1/2 (Condition 1); PhiPerAck defaults to zero. PhiPerAck is the
// compensative term already converted to a per-ACK window decrement.
type Model struct {
	ModelName string
	Psi       ParamFunc
	Beta      ParamFunc
	PhiPerAck ParamFunc
}

var _ Algorithm = (*Model)(nil)

// Name implements Algorithm.
func (m *Model) Name() string { return m.ModelName }

// Increase implements Algorithm with the per-ACK form of Eq. 3.
func (m *Model) Increase(flows []View, r int) float64 {
	f := flows[r]
	sum := SumRates(flows)
	if f.SRTT <= 0 || sum <= 0 {
		return 0
	}
	inc := m.Psi(flows, r) * f.Cwnd / (f.SRTT * f.SRTT * sum * sum)
	if m.PhiPerAck != nil {
		inc -= m.PhiPerAck(flows, r)
	}
	return inc
}

// Decrease implements Algorithm: w_r ← (1−β_r)·w_r.
func (m *Model) Decrease(flows []View, r int) float64 {
	beta := 0.5
	if m.Beta != nil {
		beta = m.Beta(flows, r)
	}
	return flows[r].Cwnd * (1 - beta)
}

// The ψ_r decompositions of §IV. Each, fed through Model, reproduces the
// corresponding algorithm's congestion-avoidance increase (without the
// per-ACK caps some RFC implementations add; see the equivalence tests).

// PsiOLIA is ψ_r = 1 (the OLIA increase without its α_r shifting term).
func PsiOLIA(flows []View, r int) float64 { return 1 }

// PsiEWTCP is ψ_r = (Σ_k x_k)² / (x_r²·√n): per-ack increase a/w_r with
// a = 1/√n.
func PsiEWTCP(flows []View, r int) float64 {
	x := flows[r].Rate()
	if x <= 0 {
		return 0
	}
	sum := SumRates(flows)
	n := float64(len(flows))
	return sum * sum / (x * x * math.Sqrt(n))
}

// PsiCoupled is ψ_r = RTT_r²·(Σ_k x_k)² / (Σ_k w_k)²: per-ack increase
// 1/w_total.
func PsiCoupled(flows []View, r int) float64 {
	f := flows[r]
	sum := SumRates(flows)
	wTotal := SumCwnd(flows)
	if wTotal <= 0 {
		return 0
	}
	return f.SRTT * f.SRTT * sum * sum / (wTotal * wTotal)
}

// PsiLIA is ψ_r = max_k(w_k/RTT_k²)·RTT_r²/w_r: per-ack increase
// α/w_total with the RFC 6356 α (before the min(·, 1/w_r) cap).
func PsiLIA(flows []View, r int) float64 {
	f := flows[r]
	if f.Cwnd <= 0 {
		return 0
	}
	var maxTerm float64
	for _, k := range flows {
		if k.SRTT <= 0 {
			continue
		}
		if t := k.Cwnd / (k.SRTT * k.SRTT); t > maxTerm {
			maxTerm = t
		}
	}
	return maxTerm * f.SRTT * f.SRTT / f.Cwnd
}

// PsiECMTCP is ψ_r = RTT_r³·(Σ_k x_k)² / (n·min_k RTT_k·w_r·Σ_k w_k),
// the paper's decomposition of ecMTCP's traffic-shifting increase.
func PsiECMTCP(flows []View, r int) float64 {
	f := flows[r]
	if f.Cwnd <= 0 {
		return 0
	}
	minRTT := 0.0
	for _, k := range flows {
		if k.SRTT > 0 && (minRTT == 0 || k.SRTT < minRTT) {
			minRTT = k.SRTT
		}
	}
	if minRTT == 0 {
		return 0
	}
	sum := SumRates(flows)
	n := float64(len(flows))
	wTotal := SumCwnd(flows)
	if wTotal <= 0 {
		return 0
	}
	return f.SRTT * f.SRTT * f.SRTT * sum * sum / (n * minRTT * f.Cwnd * wTotal)
}

// PsiBalia is the ψ_r that makes Eq. 3 reproduce Balia's increase:
// ψ_r = ((1+α_r)/2)·((4+α_r)/5) with α_r = max_k x_k / x_r.
func PsiBalia(flows []View, r int) float64 {
	a := baliaAlpha(flows, r)
	return (1 + a) / 2 * (4 + a) / 5
}

// PsiDTS is ψ_r = c·ε_r, the paper's Delay-based Traffic Shifting parameter
// with c = 1 (Pareto-optimality/fairness choice of §V-B).
func PsiDTS(flows []View, r int) float64 {
	return EpsExact(rttRatio(flows[r]))
}

// PsiUncoupled is ψ_r = (Σ_k x_k)² / x_r²: per-ack increase 1/w_r on every
// subflow independently — n uncoupled TCP flows. This is the fluid stand-in
// for the per-subflow CUBIC family: at a DropTail equilibrium the loss rate
// adjusts so each uncoupled flow holds its fair share of its bottleneck
// regardless of how aggressively it probes, which is exactly the capacity
// split the conformance harness checks.
func PsiUncoupled(flows []View, r int) float64 {
	x := flows[r].Rate()
	if x <= 0 {
		return 0
	}
	sum := SumRates(flows)
	return sum * sum / (x * x)
}
