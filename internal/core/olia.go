package core

// OLIA — the Opportunistic Linked-Increases Algorithm (Khalili et al.,
// CoNEXT 2012) — is the Pareto-optimal algorithm of the paper's Fig. 6
// comparison. Per ACK on path r:
//
//	w_r += w_r/RTT_r² / (Σ_k w_k/RTT_k)² + α_r/w_r
//
// where α_r opportunistically moves window growth to the "best" paths
// (largest inter-loss-estimated rate) that do not already hold the largest
// window. Loss halves the subflow window.

const oliaDefaultInterval = 1 << 20 // loss interval before any loss is seen

type oliaPathState struct {
	sinceLoss    float64 // packets acked since the most recent loss
	lastInterval float64 // packets between the previous two losses
}

// OLIA implements the opportunistic linked-increases algorithm.
type OLIA struct {
	paths []oliaPathState
}

// NewOLIA returns an OLIA instance.
func NewOLIA() *OLIA { return &OLIA{} }

// Name implements Algorithm.
func (*OLIA) Name() string { return "olia" }

func (o *OLIA) grow(n int) {
	for len(o.paths) < n {
		o.paths = append(o.paths, oliaPathState{})
	}
}

// interLoss returns ℓ_r, the smoothed inter-loss interval in packets (the
// kernel's max of the current and previous interval).
func (o *OLIA) interLoss(r int) float64 {
	s := o.paths[r]
	l := s.sinceLoss
	if s.lastInterval > l {
		l = s.lastInterval
	}
	if l <= 0 {
		l = oliaDefaultInterval
	}
	return l
}

// OnAck implements AckObserver.
func (o *OLIA) OnAck(flows []View, r int, ackedPkts int, ece bool) {
	o.grow(len(flows))
	o.paths[r].sinceLoss += float64(ackedPkts)
}

// OnLoss implements LossObserver.
func (o *OLIA) OnLoss(flows []View, r int) {
	o.grow(len(flows))
	o.paths[r].lastInterval = o.paths[r].sinceLoss
	o.paths[r].sinceLoss = 0
}

// alpha returns α_r per the OLIA definition.
func (o *OLIA) alpha(flows []View, r int) float64 {
	o.grow(len(flows))
	n := float64(len(flows))

	// B: paths maximizing the rate proxy ℓ_k²/RTT_k. M: paths with the
	// largest window.
	var bestProxy, maxW float64
	for k, f := range flows {
		if f.SRTT <= 0 {
			continue
		}
		l := o.interLoss(k)
		if p := l * l / f.SRTT; p > bestProxy {
			bestProxy = p
		}
		if f.Cwnd > maxW {
			maxW = f.Cwnd
		}
	}
	const tol = 1e-9
	var nBnotM, nM int
	inB := make([]bool, len(flows))
	inM := make([]bool, len(flows))
	for k, f := range flows {
		if f.SRTT <= 0 {
			continue
		}
		l := o.interLoss(k)
		inB[k] = l*l/f.SRTT >= bestProxy*(1-tol)
		inM[k] = f.Cwnd >= maxW*(1-tol)
		if inM[k] {
			nM++
		}
		if inB[k] && !inM[k] {
			nBnotM++
		}
	}
	if nBnotM == 0 {
		return 0 // every best path already has the largest window
	}
	switch {
	case inB[r] && !inM[r]:
		return 1 / (n * float64(nBnotM))
	case inM[r]:
		return -1 / (n * float64(nM))
	default:
		return 0
	}
}

// Increase implements Algorithm.
func (o *OLIA) Increase(flows []View, r int) float64 {
	f := flows[r]
	if f.Cwnd <= 0 || f.SRTT <= 0 {
		return 0
	}
	sum := SumRates(flows)
	if sum <= 0 {
		return 0
	}
	base := f.Cwnd / (f.SRTT * f.SRTT * sum * sum)
	return base + o.alpha(flows, r)/f.Cwnd
}

// Decrease implements Algorithm.
func (*OLIA) Decrease(flows []View, r int) float64 { return flows[r].Cwnd / 2 }

var (
	_ Algorithm    = (*OLIA)(nil)
	_ AckObserver  = (*OLIA)(nil)
	_ LossObserver = (*OLIA)(nil)
)
