package core

import "math"

// MPTCP-CUBIC: per-subflow CUBIC (RFC 8312, after the ndn-dpdk and quic
// implementations) — each subflow runs an independent CUBIC window law, the
// uncoupled loss-based baseline the paper's coupled algorithms are measured
// against. The window follows W_cubic(t) = C·(t−K)³ + W_max around the
// plateau W_max recorded at the last decrease, concave below it, convex
// above; fast convergence shrinks the plateau when a flow gives up
// bandwidth twice in a row; and the TCP-friendly region W_est(t) =
// W_max·β + α·t/RTT keeps short-RTT paths at least as aggressive as Reno.
//
// CUBIC is the one algorithm in the registry whose increase is a function
// of wall-clock time rather than of the views alone, so it implements
// ClockUser; without an injected clock it degrades to the Reno increase.

const (
	cubicC    = 0.4 // plateau curvature (segments/s³), RFC 8312 §5
	cubicBeta = 0.7 // multiplicative decrease: w ← β·w
	// cubicAlpha is the AIMD increase rate that makes the TCP-friendly
	// region's average loss response equal Reno's: 3(1−β)/(1+β).
	cubicAlpha = 3 * (1 - cubicBeta) / (1 + cubicBeta)
)

// cubicFlow is one subflow's epoch state, reset on every decrease/timeout.
type cubicFlow struct {
	wMax     float64 // plateau of the current epoch
	wLastMax float64 // plateau before fast convergence shrank it
	k        float64 // time to reach the plateau, cbrt(wMax·(1−β)/C)
	epoch    float64 // clock seconds at epoch start
	hasEpoch bool
}

// Cubic implements per-subflow CUBIC.
type Cubic struct {
	clock func() float64
	st    []cubicFlow
}

// NewCubic returns an MPTCP-CUBIC instance.
func NewCubic() *Cubic { return &Cubic{} }

// Name implements Algorithm.
func (*Cubic) Name() string { return "cubic" }

// SetClock implements ClockUser.
func (c *Cubic) SetClock(now func() float64) { c.clock = now }

func (c *Cubic) ensure(n int) {
	for len(c.st) < n {
		c.st = append(c.st, cubicFlow{})
	}
}

// wCubic evaluates the cubic window law t seconds into the epoch.
func (st *cubicFlow) wCubic(t float64) float64 {
	d := t - st.k
	return st.wMax + cubicC*d*d*d
}

// wEst evaluates the TCP-friendly (Reno-equivalent) window estimate.
func (st *cubicFlow) wEst(t, rtt float64) float64 {
	if rtt <= 0 {
		return 0
	}
	return st.wMax*cubicBeta + cubicAlpha*(t/rtt)
}

// Increase implements Algorithm: the per-ACK increment that moves the
// window toward max(W_cubic, W_est) within one RTT, capped at 0.5 so a
// long-idle epoch cannot step the window explosively.
func (c *Cubic) Increase(flows []View, r int) float64 {
	f := flows[r]
	if f.Cwnd <= 0 {
		return 0
	}
	if c.clock == nil {
		return 1 / f.Cwnd
	}
	c.ensure(len(flows))
	st := &c.st[r]
	now := c.clock()
	if !st.hasEpoch {
		// First avoidance ACK without a preceding loss (or after a timeout
		// wiped the epoch): probe convexly from the current window.
		st.hasEpoch = true
		st.epoch = now
		st.wMax = f.Cwnd
		st.k = 0
	}
	t := now - st.epoch
	target := st.wCubic(t)
	if est := st.wEst(t, f.SRTT); est > target {
		target = est // TCP-friendly region
	}
	inc := (target - f.Cwnd) / f.Cwnd
	if inc <= 0 {
		return 0
	}
	if inc > 0.5 {
		inc = 0.5
	}
	return inc
}

// Decrease implements Algorithm: record the plateau (with fast
// convergence if the flow never regained the previous one), restart the
// epoch at the decrease, and shrink to β·w.
func (c *Cubic) Decrease(flows []View, r int) float64 {
	c.ensure(len(flows))
	st := &c.st[r]
	w := flows[r].Cwnd
	if w < st.wLastMax {
		// Fast convergence: the flow lost again below the old plateau, so
		// release bandwidth by aiming below the current window.
		st.wLastMax = w
		st.wMax = w * (1 + cubicBeta) / 2
	} else {
		st.wMax = w
		st.wLastMax = w
	}
	st.k = math.Cbrt(st.wMax * (1 - cubicBeta) / cubicC)
	st.hasEpoch = false
	if c.clock != nil {
		st.epoch = c.clock()
		st.hasEpoch = true
	}
	return w * cubicBeta
}

// OnTimeout implements TimeoutObserver: an RTO (or path failure) discards
// the epoch entirely — the window restarts from the minimum and the old
// plateau no longer describes the path.
func (c *Cubic) OnTimeout(flows []View, r int) {
	c.ensure(len(flows))
	c.st[r] = cubicFlow{}
}

// Introspect implements Introspector: the epoch quantities behind the
// current increase.
func (c *Cubic) Introspect(flows []View, r int) map[string]float64 {
	m := make(map[string]float64, 5)
	c.IntrospectInto(flows, r, m)
	return m
}

// IntrospectInto implements IntrospectorInto.
func (c *Cubic) IntrospectInto(flows []View, r int, out map[string]float64) {
	c.ensure(len(flows))
	st := &c.st[r]
	var t float64
	if st.hasEpoch && c.clock != nil {
		t = c.clock() - st.epoch
	}
	out["w_max"] = st.wMax
	out["w_last_max"] = st.wLastMax
	out["k"] = st.k
	out["w_cubic"] = st.wCubic(t)
	out["w_est"] = st.wEst(t, flows[r].SRTT)
}

var (
	_ Algorithm        = (*Cubic)(nil)
	_ ClockUser        = (*Cubic)(nil)
	_ TimeoutObserver  = (*Cubic)(nil)
	_ IntrospectorInto = (*Cubic)(nil)
)
