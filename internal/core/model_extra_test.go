package core

import (
	"math"
	"testing"
	"testing/quick"
)

// ecMTCP's psi shifts RATE toward low-RTT (low-energy) paths: the
// per-ACK window increment can be larger on the slow path (RTT_r^3
// numerator), but in rate space — increment x ACK-rate / RTT, the fluid
// dx/dt — the fast path grows faster.
func TestPsiECMTCPFavorsLowRTTPath(t *testing.T) {
	m := &Model{ModelName: "ecmtcp", Psi: PsiECMTCP}
	flows := []View{v(20, 0.02), v(20, 0.1)}
	rateGrowth := func(r int) float64 {
		return m.Increase(flows, r) * flows[r].Rate() / flows[r].SRTT
	}
	if fast, slow := rateGrowth(0), rateGrowth(1); fast <= slow {
		t.Errorf("ecMTCP rate growth on fast path (%v) not above slow path (%v)", fast, slow)
	}
}

func TestPsiECMTCPDegenerateStates(t *testing.T) {
	if got := PsiECMTCP([]View{{Cwnd: 0, SRTT: 0.1}}, 0); got != 0 {
		t.Errorf("psi with zero window = %v, want 0", got)
	}
	if got := PsiECMTCP([]View{{Cwnd: 10, SRTT: 0}}, 0); got != 0 {
		t.Errorf("psi with zero RTT = %v, want 0", got)
	}
}

// Property: every psi decomposition is finite and non-negative over sane
// state space.
func TestPsiDecompositionsFiniteProperty(t *testing.T) {
	psis := map[string]ParamFunc{
		"olia":    PsiOLIA,
		"ewtcp":   PsiEWTCP,
		"coupled": PsiCoupled,
		"lia":     PsiLIA,
		"ecmtcp":  PsiECMTCP,
		"balia":   PsiBalia,
		"dts":     PsiDTS,
	}
	f := func(w1, w2, w3 uint8, r1, r2, r3 uint8) bool {
		flows := []View{
			v(float64(w1%120)+1, float64(r1%150+1)/1000),
			v(float64(w2%120)+1, float64(r2%150+1)/1000),
			v(float64(w3%120)+1, float64(r3%150+1)/1000),
		}
		for name, psi := range psis {
			for r := range flows {
				got := psi(flows, r)
				if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
					t.Logf("%s: psi = %v at %v", name, got, flows)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The Modified-LIA variant inherits LIA's cap: its increase never exceeds
// 2x the uncoupled 1/w (eps is bounded by 2).
func TestDTSLIABoundedByTwiceUncoupled(t *testing.T) {
	d := NewDTSLIA()
	f := func(w1, w2 uint8, r1, r2 uint8) bool {
		flows := []View{
			v(float64(w1%120)+2, float64(r1%150+1)/1000),
			v(float64(w2%120)+2, float64(r2%150+1)/1000),
		}
		for r := range flows {
			if d.Increase(flows, r) > 2/flows[r].Cwnd+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDTSEPLIAPricePenalty(t *testing.T) {
	d := NewDTSEPLIA(0.001)
	free := []View{v(10, 0.1), v(10, 0.1)}
	priced := []View{v(10, 0.1), v(10, 0.1)}
	priced[1].Price = 3
	base := NewDTSLIA()
	if got, want := d.Increase(priced, 1), base.Increase(free, 1)-0.001*10*3; !almostEq(got, want, 1e-12) {
		t.Errorf("priced increase = %v, want %v", got, want)
	}
	if d.Increase(priced, 0) != base.Increase(free, 0) {
		t.Error("price on path 1 leaked into path 0")
	}
}

// wVegas rate-share weights converge toward the observed split.
func TestWVegasWeightsTrackRates(t *testing.T) {
	w := NewWVegas()
	flows := []View{v(30, 0.1), v(10, 0.1)} // 3:1 rate split
	for i := 0; i < 50; i++ {
		w.OnRound(flows, 0)
	}
	if len(w.weights) != 2 {
		t.Fatalf("weights not initialized: %v", w.weights)
	}
	if math.Abs(w.weights[0]-0.75) > 0.05 || math.Abs(w.weights[1]-0.25) > 0.05 {
		t.Errorf("weights = %v, want ~[0.75 0.25]", w.weights)
	}
}

// Condition 2 demonstrated numerically for OLIA: psi = 1 derives from the
// utility U_s = -1/(RTT_r^2 x_r) summed over paths (the known OLIA
// potential): theta_r * dU/dx_r must equal psi*x^2/(RTT^2 (sum x)^2) with
// theta_r = x_r^2 * (sum x)^2 * RTT^2 ... i.e. the defining identity holds
// with a positive theta, which is what Condition 2 requires.
func TestCondition2WitnessForOLIA(t *testing.T) {
	flows := []View{v(10, 0.05), v(30, 0.2)}
	sum := SumRates(flows)
	for r, fl := range flows {
		x := fl.Rate()
		// dU/dx_r for U = -sum_k 1/(RTT_k^2 x_k) is 1/(RTT_r^2 x_r^2) > 0.
		dU := 1 / (fl.SRTT * fl.SRTT * x * x)
		// Required: theta * dU = psi * x^2 / (RTT^2 (sum x)^2) with psi=1.
		rhs := 1 * x * x / (fl.SRTT * fl.SRTT * sum * sum)
		theta := rhs / dU
		if theta <= 0 || math.IsInf(theta, 0) || math.IsNaN(theta) {
			t.Errorf("path %d: no positive theta witness (%v)", r, theta)
		}
		// And the witness matches the paper's stated theta = x_r^2 * ... form
		// up to the (sum x)^2 normalization: theta = x^4/(sum x)^2.
		want := x * x * x * x / (sum * sum)
		if math.Abs(theta-want)/want > 1e-9 {
			t.Errorf("path %d: theta = %v, want x^4/(sum x)^2 = %v", r, theta, want)
		}
	}
}
