package core

import "testing"

// The per-ACK increase is the hottest algorithm call in the simulator;
// these benches compare the algorithms' costs (the ablation behind the
// paper's remark that path-selection schemes carry computational overhead
// while congestion-control changes are nearly free).

func benchIncrease(b *testing.B, name string) {
	b.Helper()
	alg := MustNew(name)
	flows := []View{
		{Cwnd: 30, SRTT: 0.03, LastRTT: 0.031, BaseRTT: 0.02},
		{Cwnd: 12, SRTT: 0.08, LastRTT: 0.083, BaseRTT: 0.05},
		{Cwnd: 55, SRTT: 0.012, LastRTT: 0.012, BaseRTT: 0.01},
	}
	if obs, ok := alg.(AckObserver); ok {
		obs.OnAck(flows, 0, 1, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += alg.Increase(flows, i%len(flows))
	}
	if sink == 0 {
		b.Fatal("increase always zero")
	}
}

func BenchmarkIncreaseReno(b *testing.B)   { benchIncrease(b, "reno") }
func BenchmarkIncreaseLIA(b *testing.B)    { benchIncrease(b, "lia") }
func BenchmarkIncreaseOLIA(b *testing.B)   { benchIncrease(b, "olia") }
func BenchmarkIncreaseBalia(b *testing.B)  { benchIncrease(b, "balia") }
func BenchmarkIncreaseECMTCP(b *testing.B) { benchIncrease(b, "ecmtcp") }
func BenchmarkIncreaseDTS(b *testing.B)    { benchIncrease(b, "dts") }
func BenchmarkIncreaseDTSLIA(b *testing.B) { benchIncrease(b, "dts-lia") }
func BenchmarkIncreaseDTSTaylor(b *testing.B) {
	benchIncrease(b, "dts-taylor")
}

func BenchmarkEpsExact(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += EpsExact(float64(i%100) / 100)
	}
	_ = sink
}

func BenchmarkEpsTaylor(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += EpsTaylor(int64(i % 100))
	}
	_ = sink
}
