package core

import "math"

// This file implements the paper's §V-A design conditions as executable
// checks, used by tests and by the ablation benches.
//
// Condition 1 (TCP-friendliness): at equilibrium, ψ_h(x*) ≤ 1 on the best
// path h = argmax_k x_k*, β_h = 1/2 and φ_h = 0. Then the connection's
// aggregate equilibrium throughput √(2ψ_h/λ_h)/RTT_h never exceeds the
// √(2/λ_h)/RTT_h a regular TCP would obtain on the best path.
//
// Condition 2 (Pareto-optimality): ψ derives from a concave utility via
// θ_r(x*)·∂U_s/∂x_r = ψ_r·x_r²/(RTT_r²(Σx)²) at the utility maximizer.

// EffectivePsi recovers the traffic-shifting parameter an algorithm is
// using at the given state by inverting the per-ACK form of Eq. 3:
// ψ_r = Δw_r · RTT_r² · (Σ_k x_k)² / w_r.
func EffectivePsi(alg Algorithm, flows []View, r int) float64 {
	f := flows[r]
	if f.Cwnd <= 0 || f.SRTT <= 0 {
		return 0
	}
	sum := SumRates(flows)
	if sum <= 0 {
		return 0
	}
	return alg.Increase(flows, r) * f.SRTT * f.SRTT * sum * sum / f.Cwnd
}

// BestPath returns h = argmax_k x_k, the subflow with the highest rate.
func BestPath(flows []View) int {
	best, bestRate := 0, -1.0
	for k, f := range flows {
		if x := f.Rate(); x > bestRate {
			best, bestRate = k, x
		}
	}
	return best
}

// SatisfiesCondition1 reports whether the algorithm's effective ψ on the
// best path at the given state stays within the TCP-friendly bound ψ_h ≤ 1
// (with tolerance tol for floating-point evaluation).
func SatisfiesCondition1(alg Algorithm, flows []View, tol float64) bool {
	h := BestPath(flows)
	return EffectivePsi(alg, flows, h) <= 1+tol
}

// FriendlyThroughputBound returns the equilibrium aggregate-throughput
// ratio between the multipath connection and a regular TCP on the best
// path, √(ψ_h): Condition 1 requires it to be at most 1.
func FriendlyThroughputBound(alg Algorithm, flows []View) float64 {
	h := BestPath(flows)
	psi := EffectivePsi(alg, flows, h)
	if psi <= 0 {
		return 0
	}
	return math.Sqrt(psi)
}
