package core

import (
	"math"
	"testing"
	"testing/quick"
)

// v builds a View in congestion avoidance with equal last/smoothed RTT.
func v(cwnd, rtt float64) View {
	return View{Cwnd: cwnd, SSThresh: cwnd, SRTT: rtt, LastRTT: rtt, BaseRTT: rtt}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("registered %d algorithms, want 16: %v", len(names), names)
	}
	for _, n := range names {
		a, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if a.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, a.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("New of unknown algorithm succeeded")
	}
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew of unknown name did not panic")
		}
	}()
	MustNew("nope")
}

func TestRenoIsClassicAIMD(t *testing.T) {
	r := NewReno()
	flows := []View{v(10, 0.1)}
	if got := r.Increase(flows, 0); got != 0.1 {
		t.Errorf("Increase = %v, want 1/w = 0.1", got)
	}
	if got := r.Decrease(flows, 0); got != 5 {
		t.Errorf("Decrease = %v, want w/2 = 5", got)
	}
}

func TestSinglePathReducesToReno(t *testing.T) {
	// On one path every TCP-friendly multipath algorithm should behave as
	// Reno (the design requirement of RFC 6356 §3).
	flows := []View{v(20, 0.05)}
	want := 1.0 / 20
	for _, name := range []string{"lia", "olia", "balia"} {
		alg := MustNew(name)
		if got := alg.Increase(flows, 0); !almostEq(got, want, 1e-9) {
			t.Errorf("%s single-path increase = %v, want %v", name, got, want)
		}
		if got := alg.Decrease(flows, 0); !almostEq(got, 10, 1e-9) {
			t.Errorf("%s single-path decrease = %v, want 10", name, got)
		}
	}
}

func TestDTSAtEquilibriumRatioIsReno(t *testing.T) {
	// DTS is designed so that at the equilibrium expectation
	// baseRTT/RTT = 1/2 (where eps = 1) the increase equals Reno's 1/w
	// on a single path — the fairness choice c = 1 of §V-B.
	f := View{Cwnd: 20, SRTT: 0.1, LastRTT: 0.1, BaseRTT: 0.05}
	d := NewDTS()
	if got := d.Increase([]View{f}, 0); !almostEq(got, 1.0/20, 1e-9) {
		t.Errorf("DTS increase at ratio 1/2 = %v, want 1/w = 0.05", got)
	}
	if got := d.Decrease([]View{f}, 0); !almostEq(got, 10, 1e-9) {
		t.Errorf("DTS decrease = %v, want 10", got)
	}
}

func TestLIAAlphaSymmetricPaths(t *testing.T) {
	// Two identical paths: alpha = w_total·(w/rtt²)/(2w/rtt)² = 1/2, so the
	// coupled increase alpha/w_total = 1/(2·w_total) — half of Reno's rate
	// split over two subflows, keeping the pair TCP-friendly.
	l := NewLIA()
	flows := []View{v(10, 0.1), v(10, 0.1)}
	if a := l.Alpha(flows); !almostEq(a, 0.5, 1e-9) {
		t.Errorf("Alpha = %v, want 0.5", a)
	}
	if inc := l.Increase(flows, 0); !almostEq(inc, 0.025, 1e-9) {
		t.Errorf("Increase = %v, want alpha/w_total = 0.025", inc)
	}
}

func TestLIACapNeverExceedsUncoupledTCP(t *testing.T) {
	// A tiny window on a fast path can push alpha/w_total above 1/w_r; the
	// RFC caps it.
	l := NewLIA()
	flows := []View{v(2, 0.001), v(50, 0.2)}
	inc := l.Increase(flows, 0)
	if inc > 1.0/2+1e-12 {
		t.Errorf("Increase = %v exceeds uncoupled 1/w = 0.5", inc)
	}
}

func TestEWTCPWeights(t *testing.T) {
	e := NewEWTCP()
	flows := []View{v(10, 0.1), v(10, 0.1), v(10, 0.1), v(10, 0.1)}
	// a = 1/sqrt(4) = 0.5 -> increase = 0.5/10.
	if got := e.Increase(flows, 0); !almostEq(got, 0.05, 1e-9) {
		t.Errorf("Increase = %v, want 0.05", got)
	}
}

func TestCoupledUsesTotalWindow(t *testing.T) {
	c := NewCoupled()
	flows := []View{v(10, 0.1), v(30, 0.1)}
	if got := c.Increase(flows, 0); !almostEq(got, 1.0/40, 1e-9) {
		t.Errorf("Increase = %v, want 1/w_total = 0.025", got)
	}
	if got := c.Decrease(flows, 0); !almostEq(got, 10-20, 1e-9) {
		t.Errorf("Decrease = %v, want w_r - w_total/2 = -10 (floored by transport)", got)
	}
}

func TestOLIAAlphaShiftsTowardBestPath(t *testing.T) {
	o := NewOLIA()
	// Path 0: small window but clean (no losses -> huge inter-loss
	// interval). Path 1: big window, lossy.
	flows := []View{v(5, 0.1), v(20, 0.1)}
	o.OnAck(flows, 0, 1000, false)
	o.OnAck(flows, 1, 1000, false)
	o.OnLoss(flows, 1)
	o.OnAck(flows, 1, 10, false)

	a0 := o.alpha(flows, 0)
	a1 := o.alpha(flows, 1)
	if a0 <= 0 {
		t.Errorf("alpha on best-but-small path = %v, want > 0", a0)
	}
	if a1 >= 0 {
		t.Errorf("alpha on max-window path = %v, want < 0", a1)
	}
	// With n=2, |B\M|=1, |M|=1: alpha = +1/2, -1/2.
	if !almostEq(a0, 0.5, 1e-9) || !almostEq(a1, -0.5, 1e-9) {
		t.Errorf("alphas = %v, %v, want +0.5, -0.5", a0, a1)
	}
}

func TestOLIAAlphaZeroWhenBestIsMax(t *testing.T) {
	o := NewOLIA()
	flows := []View{v(10, 0.1), v(10, 0.1)}
	// Symmetric, lossless: every path is best and max -> no shifting.
	if a := o.alpha(flows, 0); a != 0 {
		t.Errorf("alpha = %v, want 0 in symmetric state", a)
	}
}

func TestBaliaAlphaAndIncrease(t *testing.T) {
	b := NewBalia()
	flows := []View{v(10, 0.1), v(10, 0.1)}
	// Symmetric: alpha=1, increase = x/rtt/(2x)^2 · 1 · 1 = 1/(4·w) = 0.025.
	if got := b.Increase(flows, 0); !almostEq(got, 0.025, 1e-9) {
		t.Errorf("Increase = %v, want 0.025", got)
	}
	// Decrease with alpha=1: w - w/2 = 5.
	if got := b.Decrease(flows, 0); !almostEq(got, 5, 1e-9) {
		t.Errorf("Decrease = %v, want 5", got)
	}
}

func TestBaliaDecreaseCap(t *testing.T) {
	b := NewBalia()
	// Path 0 much slower than path 1: alpha huge, capped at 1.5.
	flows := []View{v(2, 0.5), v(100, 0.01)}
	got := b.Decrease(flows, 0)
	want := 2 - 2.0/2*1.5
	if !almostEq(got, want, 1e-9) {
		t.Errorf("Decrease = %v, want %v (alpha capped at 1.5)", got, want)
	}
}

// --- §IV decompositions: ψ through the model reproduces the algorithms ---

func TestModelDecompositionMatchesDirectForms(t *testing.T) {
	states := [][]View{
		{v(10, 0.1), v(10, 0.1)},
		{v(8, 0.04), v(25, 0.2)},
		{v(3, 0.01), v(14, 0.08), v(40, 0.3)},
	}
	tests := []struct {
		name   string
		psi    ParamFunc
		direct Algorithm
	}{
		{name: "ewtcp", psi: PsiEWTCP, direct: NewEWTCP()},
		{name: "balia", psi: PsiBalia, direct: NewBalia()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := &Model{ModelName: tt.name, Psi: tt.psi}
			for _, flows := range states {
				for r := range flows {
					got := m.Increase(flows, r)
					want := tt.direct.Increase(flows, r)
					if !almostEq(got, want, 1e-12+1e-9*want) {
						t.Errorf("state %v subflow %d: model %v, direct %v",
							flows, r, got, want)
					}
				}
			}
		})
	}
}

func TestPsiCoupledKellyVoiceForm(t *testing.T) {
	// The paper's "Coupled" decomposition is Kelly & Voice's fluid
	// algorithm: per ACK Δw_r = w_r/(Σ_k w_k)². On a single path it
	// coincides with the NSDI'11 per-ACK form 1/w_total (our direct
	// Coupled); on multiple paths the discretizations differ.
	m := &Model{ModelName: "coupled-model", Psi: PsiCoupled}
	states := [][]View{
		{v(10, 0.1), v(30, 0.2)},
		{v(10, 0.1)},
	}
	for _, flows := range states {
		for r := range flows {
			got := m.Increase(flows, r)
			want := flows[r].Cwnd / (SumCwnd(flows) * SumCwnd(flows))
			if !almostEq(got, want, 1e-12) {
				t.Errorf("subflow %d: model %v, want w_r/w_total² = %v", r, got, want)
			}
		}
	}
	single := []View{v(10, 0.1)}
	if got, want := m.Increase(single, 0), NewCoupled().Increase(single, 0); !almostEq(got, want, 1e-12) {
		t.Errorf("single path: model %v, direct %v", got, want)
	}
}

func TestPsiLIAMatchesUncappedLIA(t *testing.T) {
	m := &Model{ModelName: "lia-model", Psi: PsiLIA}
	l := NewLIA()
	// A state where the RFC cap is not binding.
	flows := []View{v(10, 0.1), v(12, 0.12)}
	for r := range flows {
		got := m.Increase(flows, r)
		want := l.Alpha(flows) / SumCwnd(flows)
		if !almostEq(got, want, 1e-12) {
			t.Errorf("subflow %d: model %v, uncapped LIA %v", r, got, want)
		}
	}
}

func TestPsiOLIAMatchesOLIABaseTerm(t *testing.T) {
	m := &Model{ModelName: "olia-model", Psi: PsiOLIA}
	o := NewOLIA()
	flows := []View{v(10, 0.1), v(10, 0.1)}
	// Symmetric lossless state: alpha_r = 0, OLIA = base term = model.
	for r := range flows {
		if got, want := m.Increase(flows, r), o.Increase(flows, r); !almostEq(got, want, 1e-12) {
			t.Errorf("subflow %d: model %v, OLIA %v", r, got, want)
		}
	}
}

func TestModelDefaultBetaHalves(t *testing.T) {
	m := &Model{ModelName: "m", Psi: PsiOLIA}
	flows := []View{v(12, 0.1)}
	if got := m.Decrease(flows, 0); got != 6 {
		t.Errorf("Decrease = %v, want 6", got)
	}
}

func TestModelPhiSubtracts(t *testing.T) {
	phi := func(flows []View, r int) float64 { return 0.01 }
	m := &Model{ModelName: "m", Psi: PsiOLIA, PhiPerAck: phi}
	base := &Model{ModelName: "b", Psi: PsiOLIA}
	flows := []View{v(12, 0.1)}
	if got, want := m.Increase(flows, 0), base.Increase(flows, 0)-0.01; !almostEq(got, want, 1e-12) {
		t.Errorf("Increase with phi = %v, want %v", got, want)
	}
}

// --- DTS ---

func TestEpsExactShape(t *testing.T) {
	if got := EpsExact(0.5); !almostEq(got, 1, 1e-12) {
		t.Errorf("EpsExact(0.5) = %v, want 1", got)
	}
	if got := EpsExact(1); got < 1.98 {
		t.Errorf("EpsExact(1) = %v, want ~1.987", got)
	}
	if got := EpsExact(0); got > 0.02 {
		t.Errorf("EpsExact(0) = %v, want ~0.013", got)
	}
	// Clamping.
	if EpsExact(-1) != EpsExact(0) || EpsExact(2) != EpsExact(1) {
		t.Error("EpsExact does not clamp ratio to [0,1]")
	}
}

func TestEpsExactMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		r1, r2 := float64(a%101)/100, float64(b%101)/100
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		e1, e2 := EpsExact(r1), EpsExact(r2)
		return e1 <= e2+1e-12 && e1 > 0 && e2 < 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEpsTaylorTracksExactNearCenter(t *testing.T) {
	// Algorithm 1's third-order fixed-point expansion is the kernel port of
	// Eq. 5. A third-order Taylor of e^x around 0 is only trustworthy for
	// |x| <= ~1, i.e. ratio in [0.40, 0.60]; outside, the kernel form
	// saturates (clamped at 0 below, approaching 2 above), which the next
	// test checks.
	for pct := int64(40); pct <= 60; pct++ {
		exact := EpsExact(float64(pct) / 100)
		taylor := float64(EpsTaylor(pct)) / 100
		if math.Abs(exact-taylor) > 0.08 {
			t.Errorf("ratio %d%%: exact %v vs taylor %v", pct, exact, taylor)
		}
	}
}

func TestEpsTaylorSaturation(t *testing.T) {
	if got := EpsTaylor(0); got != 0 {
		t.Errorf("EpsTaylor(0) = %v, want clamped 0", got)
	}
	if got := EpsTaylor(100); got < 185 || got > 200 {
		t.Errorf("EpsTaylor(100) = %v, want near 200", got)
	}
	if got := EpsTaylor(50); got != 100 {
		t.Errorf("EpsTaylor(50) = %v, want exactly 100 (eps=1)", got)
	}
}

func TestEpsTaylorBoundsProperty(t *testing.T) {
	f := func(p int16) bool {
		e := EpsTaylor(int64(p))
		return e >= 0 && e <= 200
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDTSSuppressesInflatedPath(t *testing.T) {
	d := NewDTS()
	good := View{Cwnd: 10, SRTT: 0.1, LastRTT: 0.1, BaseRTT: 0.1}
	// Same path, RTT inflated 4x by queueing: ratio 0.25 -> eps ~ 0.15.
	bad := View{Cwnd: 10, SRTT: 0.4, LastRTT: 0.4, BaseRTT: 0.1}
	flows := []View{good, bad}
	incGood := d.Increase(flows, 0)
	incBad := d.Increase(flows, 1)
	if incBad >= incGood {
		t.Errorf("DTS grows inflated path (%v) at least as fast as clean path (%v)",
			incBad, incGood)
	}
	// eps alone (excluding the rtt^2 weighting) must also shrink.
	if d.Eps(bad) >= d.Eps(good) {
		t.Errorf("eps(bad)=%v >= eps(good)=%v", d.Eps(bad), d.Eps(good))
	}
}

func TestDTSTaylorVariantCloseToExact(t *testing.T) {
	exact := NewDTS()
	taylor := &DTS{C: 1, Taylor: true}
	flows := []View{
		{Cwnd: 10, SRTT: 0.12, LastRTT: 0.12, BaseRTT: 0.07},
		{Cwnd: 10, SRTT: 0.2, LastRTT: 0.2, BaseRTT: 0.1},
	}
	for r := range flows {
		e, ty := exact.Increase(flows, r), taylor.Increase(flows, r)
		if e == 0 || math.Abs(e-ty)/e > 0.1 {
			t.Errorf("subflow %d: exact %v vs taylor %v", r, e, ty)
		}
	}
}

func TestDTSEPPricePenalty(t *testing.T) {
	d := NewDTSEP(0.001)
	free := []View{v(10, 0.1), v(10, 0.1)}
	priced := []View{v(10, 0.1), v(10, 0.1)}
	priced[0].Price = 5
	if got, want := d.Increase(priced, 0), NewDTS().Increase(free, 0)-0.001*10*5; !almostEq(got, want, 1e-12) {
		t.Errorf("priced increase = %v, want %v", got, want)
	}
	if d.Increase(priced, 1) != NewDTS().Increase(free, 1) {
		t.Error("price on path 0 affected path 1's increase")
	}
}

// --- wVegas ---

func TestWVegasRoundAdjustment(t *testing.T) {
	w := NewWVegas()
	// Two symmetric paths with no queueing: diff=0 < alpha -> grow by 1.
	flows := []View{v(10, 0.1), v(10, 0.1)}
	flows[0].InSlowStart = false
	cwnd, _ := w.OnRound(flows, 0)
	if cwnd != 11 {
		t.Errorf("cwnd after underutilized round = %v, want 11", cwnd)
	}
	// Heavy queueing: base 0.1, rtt 0.3 -> diff = 10*0.2/0.3 = 6.67 > alpha=5.
	congested := []View{
		{Cwnd: 10, SSThresh: 10, SRTT: 0.3, LastRTT: 0.3, BaseRTT: 0.1},
		v(10, 0.3),
	}
	cwnd, _ = w.OnRound(congested, 0)
	if cwnd != 9 {
		t.Errorf("cwnd after congested round = %v, want 9", cwnd)
	}
}

func TestWVegasSlowStartExit(t *testing.T) {
	w := NewWVegas()
	flows := []View{{Cwnd: 20, SSThresh: 1e9, SRTT: 0.2, LastRTT: 0.2, BaseRTT: 0.1, InSlowStart: true}}
	cwnd, ssthresh := w.OnRound(flows, 0)
	if ssthresh >= 1e9 {
		t.Error("wVegas did not exit slow start despite queueing")
	}
	if cwnd >= 20 {
		t.Errorf("cwnd = %v on slow-start exit, want halved", cwnd)
	}
}

func TestWVegasIncreaseIsZeroPerAck(t *testing.T) {
	w := NewWVegas()
	if w.Increase([]View{v(10, 0.1)}, 0) != 0 {
		t.Error("wVegas must not react per ACK")
	}
}

// --- DCTCP ---

func TestDCTCPAlphaConverges(t *testing.T) {
	d := NewDCTCP()
	flows := []View{v(10, 0.1)}
	// Rounds with no marks drive alpha toward 0.
	for i := 0; i < 200; i++ {
		d.OnAck(flows, 0, 10, false)
		d.OnRound(flows, 0)
	}
	if d.Alpha() > 0.01 {
		t.Errorf("alpha = %v after markless rounds, want ~0", d.Alpha())
	}
	// Fully-marked rounds drive it back toward 1.
	for i := 0; i < 200; i++ {
		d.OnAck(flows, 0, 10, true)
		d.OnRound(flows, 0)
	}
	if d.Alpha() < 0.99 {
		t.Errorf("alpha = %v after marked rounds, want ~1", d.Alpha())
	}
}

func TestDCTCPWindowReduction(t *testing.T) {
	d := NewDCTCP()
	flows := []View{v(100, 0.1)}
	// Half the ACKs marked for a while.
	var cwnd float64
	for i := 0; i < 50; i++ {
		d.OnAck(flows, 0, 5, true)
		d.OnAck(flows, 0, 5, false)
		cwnd, _ = d.OnRound(flows, 0)
	}
	want := 100 * (1 - d.Alpha()/2)
	if !almostEq(cwnd, want, 1e-9) {
		t.Errorf("cwnd = %v, want %v with alpha=%v", cwnd, want, d.Alpha())
	}
	if d.Alpha() < 0.3 || d.Alpha() > 0.7 {
		t.Errorf("alpha = %v with 50%% marks, want ~0.5", d.Alpha())
	}
}

func TestDCTCPNoMarksNoReduction(t *testing.T) {
	d := NewDCTCP()
	flows := []View{v(40, 0.1)}
	d.OnAck(flows, 0, 10, false)
	cwnd, _ := d.OnRound(flows, 0)
	if cwnd != 40 {
		t.Errorf("cwnd = %v after clean round, want unchanged 40", cwnd)
	}
}

// --- Conditions (§V-A) ---

func TestCondition1ForFriendlyAlgorithms(t *testing.T) {
	// Condition 1 is an equilibrium property: evaluate at equilibrium-like
	// states. For LIA any window allocation with all subflows sharing the
	// best path's w/RTT² works; for DTS the equilibrium has
	// E[baseRTT/RTT] = 1/2 (eps = 1).
	eqDTS := func(cwnd, rtt float64) View {
		return View{Cwnd: cwnd, SRTT: rtt, LastRTT: rtt, BaseRTT: rtt / 2}
	}
	liaStates := [][]View{
		{v(10, 0.1), v(10, 0.1)},
		{v(6, 0.03), v(22, 0.15)}, // equal w/RTT² on the best path is not required; alpha caps it
		{v(10, 0.1), v(10, 0.1), v(10, 0.1)},
	}
	for _, flows := range liaStates {
		if !SatisfiesCondition1(MustNew("lia"), flows, 1e-9) {
			h := BestPath(flows)
			t.Errorf("lia violates Condition 1 at %v: psi_h = %v",
				flows, EffectivePsi(MustNew("lia"), flows, h))
		}
	}
	dtsStates := [][]View{
		{eqDTS(10, 0.1), eqDTS(10, 0.1)},
		{eqDTS(6, 0.03), eqDTS(22, 0.15)},
	}
	for _, flows := range dtsStates {
		if !SatisfiesCondition1(MustNew("dts"), flows, 1e-9) {
			h := BestPath(flows)
			t.Errorf("dts violates Condition 1 at %v: psi_h = %v",
				flows, EffectivePsi(MustNew("dts"), flows, h))
		}
	}
}

func TestEffectivePsiRecoversModelPsi(t *testing.T) {
	m := &Model{ModelName: "m", Psi: func([]View, int) float64 { return 0.7 }}
	flows := []View{v(10, 0.1), v(20, 0.2)}
	for r := range flows {
		if got := EffectivePsi(m, flows, r); !almostEq(got, 0.7, 1e-9) {
			t.Errorf("EffectivePsi = %v, want 0.7", got)
		}
	}
}

func TestFriendlyThroughputBound(t *testing.T) {
	// EWTCP with n=4 on symmetric paths has psi = (4x)^2/(x^2*2) = 8 on
	// each path -> bound sqrt(8) ~ 2.83 > 1: not TCP-friendly (as known).
	flows := []View{v(10, 0.1), v(10, 0.1), v(10, 0.1), v(10, 0.1)}
	if b := FriendlyThroughputBound(NewEWTCP(), flows); b <= 1 {
		t.Errorf("EWTCP bound = %v, expected > 1 (not friendly)", b)
	}
	if b := FriendlyThroughputBound(NewLIA(), flows); b > 1+1e-9 {
		t.Errorf("LIA bound = %v, want <= 1", b)
	}
}

// --- cross-algorithm properties ---

func TestIncreaseNonNegativeProperty(t *testing.T) {
	// OLIA is deliberately excluded: its alpha_r term makes the increase
	// negative on max-window paths, which is how it shifts traffic.
	algs := []string{"reno", "ewtcp", "coupled", "lia", "balia", "ecmtcp", "dts"}
	f := func(w1, w2 uint8, r1, r2 uint8) bool {
		flows := []View{
			v(float64(w1%200)+1, float64(r1%200+1)/1000),
			v(float64(w2%200)+1, float64(r2%200+1)/1000),
		}
		for _, name := range algs {
			alg := MustNew(name)
			for r := range flows {
				if alg.Increase(flows, r) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecreaseShrinksWindowProperty(t *testing.T) {
	algs := []string{"reno", "dctcp", "ewtcp", "coupled", "lia", "olia", "balia", "ecmtcp", "wvegas", "dts", "dtsep"}
	f := func(w1, w2 uint8, r1, r2 uint8) bool {
		flows := []View{
			v(float64(w1%200)+1, float64(r1%200+1)/1000),
			v(float64(w2%200)+1, float64(r2%200+1)/1000),
		}
		for _, name := range algs {
			alg := MustNew(name)
			for r := range flows {
				if alg.Decrease(flows, r) >= flows[r].Cwnd {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestViewRate(t *testing.T) {
	if got := v(10, 0.1).Rate(); !almostEq(got, 100, 1e-9) {
		t.Errorf("Rate = %v, want 100", got)
	}
	var zero View
	if zero.Rate() != 0 {
		t.Error("zero View should have zero rate")
	}
}

func TestSums(t *testing.T) {
	flows := []View{v(10, 0.1), v(20, 0.2)}
	if got := SumCwnd(flows); got != 30 {
		t.Errorf("SumCwnd = %v, want 30", got)
	}
	if got := SumRates(flows); !almostEq(got, 200, 1e-9) {
		t.Errorf("SumRates = %v, want 200", got)
	}
}
