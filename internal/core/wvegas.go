package core

// wVegas — weighted Vegas (Cao, Xu & Fu, ICNP 2012) — is the delay-based
// algorithm of the paper's model with step size δ = 1: it adjusts each
// subflow's window once per RTT round toward a per-path queueing backlog
// target α_r = weight_r·totalAlpha, where the weights track each subflow's
// share of the aggregate rate. λ_r is the delay-based path price
// q_r = RTT_r − baseRTT_r.

const (
	wvegasTotalAlpha = 10.0 // packets of queue backlog budget, per the paper
	wvegasGamma      = 1.0  // slow-start exit threshold (packets of backlog)
	wvegasWeightGain = 0.5  // EWMA gain for the rate-share weights
)

// WVegas implements weighted Vegas.
type WVegas struct {
	weights []float64
}

// NewWVegas returns a wVegas instance.
func NewWVegas() *WVegas { return &WVegas{} }

// Name implements Algorithm.
func (*WVegas) Name() string { return "wvegas" }

// Increase implements Algorithm. wVegas does not react per ACK in
// congestion avoidance; all adjustment happens in OnRound.
func (*WVegas) Increase(flows []View, r int) float64 { return 0 }

// Decrease implements Algorithm: packet loss still halves the window.
func (*WVegas) Decrease(flows []View, r int) float64 { return flows[r].Cwnd / 2 }

// diff returns the Vegas backlog estimate for subflow r in packets:
// w_r·(RTT_r − baseRTT_r)/RTT_r.
func (*WVegas) diff(f View) float64 {
	rtt := f.LastRTT
	if rtt <= 0 {
		rtt = f.SRTT
	}
	if rtt <= 0 || f.BaseRTT <= 0 {
		return 0
	}
	q := rtt - f.BaseRTT
	if q < 0 {
		q = 0
	}
	return f.Cwnd * q / rtt
}

func (v *WVegas) updateWeights(flows []View) {
	for len(v.weights) < len(flows) {
		v.weights = append(v.weights, 1/float64(len(flows)))
	}
	sum := SumRates(flows)
	if sum <= 0 {
		return
	}
	for k, f := range flows {
		share := f.Rate() / sum
		v.weights[k] = (1-wvegasWeightGain)*v.weights[k] + wvegasWeightGain*share
	}
}

// OnRound implements RoundTuner: once per RTT, compare the backlog estimate
// with the weighted target and move the window by one packet.
func (v *WVegas) OnRound(flows []View, r int) (cwnd, ssthresh float64) {
	v.updateWeights(flows)
	f := flows[r]
	cwnd, ssthresh = f.Cwnd, f.SSThresh

	d := v.diff(f)
	if f.InSlowStart {
		// Leave slow start as soon as queueing builds up.
		if d > wvegasGamma {
			ssthresh = f.Cwnd
			cwnd = f.Cwnd / 2
			if cwnd < 2 {
				cwnd = 2
			}
		}
		return cwnd, ssthresh
	}

	alpha := v.weights[r] * wvegasTotalAlpha
	switch {
	case d < alpha:
		cwnd = f.Cwnd + 1
	case d > alpha:
		cwnd = f.Cwnd - 1
		if cwnd < 2 {
			cwnd = 2
		}
	}
	// Keep ssthresh below cwnd so the transport stays in congestion
	// avoidance; Vegas-style control owns the window from here on.
	if ssthresh > cwnd {
		ssthresh = cwnd
	}
	return cwnd, ssthresh
}

// Introspect implements Introspector: the backlog estimate λ-side quantity
// diff_r, the rate-share weight and the per-path backlog target α_r.
func (v *WVegas) Introspect(flows []View, r int) map[string]float64 {
	m := make(map[string]float64, 3)
	v.IntrospectInto(flows, r, m)
	return m
}

// IntrospectInto implements IntrospectorInto.
func (v *WVegas) IntrospectInto(flows []View, r int, out map[string]float64) {
	f := flows[r]
	weight := 1 / float64(len(flows))
	if r < len(v.weights) {
		weight = v.weights[r]
	}
	out["diff"] = v.diff(f)
	out["weight"] = weight
	out["alpha"] = weight * wvegasTotalAlpha
}

var (
	_ Algorithm        = (*WVegas)(nil)
	_ RoundTuner       = (*WVegas)(nil)
	_ IntrospectorInto = (*WVegas)(nil)
)
