package core

// wVegas — weighted Vegas (Cao, Xu & Fu, ICNP 2012) — is the delay-based
// algorithm of the paper's model with step size δ = 1: it adjusts each
// subflow's window once per RTT round toward a per-path queueing backlog
// target α_r = weight_r·totalAlpha, where the weights track each subflow's
// share of the aggregate rate. λ_r is the delay-based path price
// q_r = RTT_r − baseRTT_r.

const (
	wvegasTotalAlpha = 10.0 // packets of queue backlog budget, per the paper
	wvegasGamma      = 1.0  // slow-start exit threshold (packets of backlog)
	wvegasWeightGain = 0.5  // EWMA gain for the rate-share weights
)

// WVegas implements weighted Vegas.
type WVegas struct {
	// weights is the rate-share weight vector; its sum is held at exactly 1
	// over the live subflows (renormalized on every membership change and
	// preserved by the EWMA update, which averages toward shares that
	// themselves sum to 1). down marks subflows whose path was declared
	// dead; their weight is pinned at 0 until the path revives.
	weights []float64
	down    []bool
}

// NewWVegas returns a wVegas instance.
func NewWVegas() *WVegas { return &WVegas{} }

// Name implements Algorithm.
func (*WVegas) Name() string { return "wvegas" }

// Increase implements Algorithm. wVegas does not react per ACK in
// congestion avoidance; all adjustment happens in OnRound.
func (*WVegas) Increase(flows []View, r int) float64 { return 0 }

// Decrease implements Algorithm: packet loss still halves the window.
func (*WVegas) Decrease(flows []View, r int) float64 { return flows[r].Cwnd / 2 }

// diff returns the Vegas backlog estimate for subflow r in packets:
// w_r·(RTT_r − baseRTT_r)/RTT_r.
func (*WVegas) diff(f View) float64 {
	rtt := f.LastRTT
	if rtt <= 0 {
		rtt = f.SRTT
	}
	if rtt <= 0 || f.BaseRTT <= 0 {
		return 0
	}
	q := rtt - f.BaseRTT
	if q < 0 {
		q = 0
	}
	return f.Cwnd * q / rtt
}

// ensure grows the weight vector to n subflows; newcomers enter with an
// equal share and the whole vector is renormalized back to Σ = 1.
func (v *WVegas) ensure(n int) {
	if len(v.weights) >= n {
		return
	}
	for len(v.weights) < n {
		v.weights = append(v.weights, 1/float64(n))
		v.down = append(v.down, false)
	}
	v.renormalize()
}

// renormalize pins dead subflows at weight 0 and rescales the live ones to
// sum to exactly 1. If every live weight is 0 (e.g. right after a mass
// failure) the live flows split the budget evenly.
func (v *WVegas) renormalize() {
	var sum float64
	live := 0
	for k := range v.weights {
		if v.down[k] {
			v.weights[k] = 0
			continue
		}
		live++
		sum += v.weights[k]
	}
	if live == 0 {
		return
	}
	if sum <= 0 {
		for k := range v.weights {
			if !v.down[k] {
				v.weights[k] = 1 / float64(live)
			}
		}
		return
	}
	for k := range v.weights {
		if !v.down[k] {
			v.weights[k] /= sum
		}
	}
}

func (v *WVegas) updateWeights(flows []View) {
	v.ensure(len(flows))
	// EWMA toward the live rate shares: both the weights and the shares sum
	// to 1 over the live set, so the update preserves Σ weights = 1 without
	// a per-round renormalization.
	var sum float64
	for k, f := range flows {
		if !v.down[k] {
			sum += f.Rate()
		}
	}
	if sum <= 0 {
		return
	}
	for k, f := range flows {
		if v.down[k] {
			continue
		}
		share := f.Rate() / sum
		v.weights[k] = (1-wvegasWeightGain)*v.weights[k] + wvegasWeightGain*share
	}
}

// OnSubflowDown implements MembershipObserver: a dead subflow's weight is
// redistributed to the survivors so Σ weights = 1 over the live set —
// without this, the dead path keeps a slice of the backlog budget forever
// and the survivors under-fill their targets.
func (v *WVegas) OnSubflowDown(r int) {
	v.ensure(r + 1)
	v.down[r] = true
	v.renormalize()
}

// OnSubflowUp implements MembershipObserver: the revived subflow rejoins
// with an equal share carved out of the survivors.
func (v *WVegas) OnSubflowUp(r int) {
	v.ensure(r + 1)
	v.down[r] = false
	live := 0
	for k := range v.down {
		if !v.down[k] {
			live++
		}
	}
	v.weights[r] = 1 / float64(live)
	v.renormalize()
}

// Weights implements Weighted. The slice is owned by the algorithm; the
// caller must not modify it.
func (v *WVegas) Weights() []float64 { return v.weights }

// OnRound implements RoundTuner: once per RTT, compare the backlog estimate
// with the weighted target and move the window by one packet.
func (v *WVegas) OnRound(flows []View, r int) (cwnd, ssthresh float64) {
	v.updateWeights(flows)
	f := flows[r]
	cwnd, ssthresh = f.Cwnd, f.SSThresh

	d := v.diff(f)
	if f.InSlowStart {
		// Leave slow start as soon as queueing builds up.
		if d > wvegasGamma {
			ssthresh = f.Cwnd
			cwnd = f.Cwnd / 2
			if cwnd < 2 {
				cwnd = 2
			}
		}
		return cwnd, ssthresh
	}

	alpha := v.weights[r] * wvegasTotalAlpha
	switch {
	case d < alpha:
		cwnd = f.Cwnd + 1
	case d > alpha:
		cwnd = f.Cwnd - 1
		if cwnd < 2 {
			cwnd = 2
		}
	}
	// Keep ssthresh below cwnd so the transport stays in congestion
	// avoidance; Vegas-style control owns the window from here on.
	if ssthresh > cwnd {
		ssthresh = cwnd
	}
	return cwnd, ssthresh
}

// Introspect implements Introspector: the backlog estimate λ-side quantity
// diff_r, the rate-share weight and the per-path backlog target α_r.
func (v *WVegas) Introspect(flows []View, r int) map[string]float64 {
	m := make(map[string]float64, 3)
	v.IntrospectInto(flows, r, m)
	return m
}

// IntrospectInto implements IntrospectorInto.
func (v *WVegas) IntrospectInto(flows []View, r int, out map[string]float64) {
	f := flows[r]
	weight := 1 / float64(len(flows))
	if r < len(v.weights) {
		weight = v.weights[r]
	}
	out["diff"] = v.diff(f)
	out["weight"] = weight
	out["alpha"] = weight * wvegasTotalAlpha
}

var (
	_ Algorithm          = (*WVegas)(nil)
	_ RoundTuner         = (*WVegas)(nil)
	_ IntrospectorInto   = (*WVegas)(nil)
	_ MembershipObserver = (*WVegas)(nil)
	_ Weighted           = (*WVegas)(nil)
)
