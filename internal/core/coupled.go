package core

import "math"

// EWTCP (Honda et al., PFLDNeT 2009) runs an equally-weighted TCP on each
// subflow: per-ACK increase a/w_r with a = 1/√n, halve on loss. It shares
// a bottleneck fairly with regular TCP when all subflows cross it, but does
// not shift traffic between paths.
type EWTCP struct{}

// NewEWTCP returns an EWTCP instance.
func NewEWTCP() *EWTCP { return &EWTCP{} }

// Name implements Algorithm.
func (*EWTCP) Name() string { return "ewtcp" }

// Increase implements Algorithm.
func (*EWTCP) Increase(flows []View, r int) float64 {
	if flows[r].Cwnd <= 0 {
		return 0
	}
	return 1 / (math.Sqrt(float64(len(flows))) * flows[r].Cwnd)
}

// Decrease implements Algorithm.
func (*EWTCP) Decrease(flows []View, r int) float64 { return flows[r].Cwnd / 2 }

// Coupled is the fully-coupled algorithm of Kelly & Voice / Han et al.:
// per-ACK increase 1/w_total, and a loss on any path reduces the subflow by
// half the *total* window. It pools resources aggressively but flops all
// traffic onto the currently best path.
type Coupled struct{}

// NewCoupled returns a fully-coupled instance.
func NewCoupled() *Coupled { return &Coupled{} }

// Name implements Algorithm.
func (*Coupled) Name() string { return "coupled" }

// Increase implements Algorithm.
func (*Coupled) Increase(flows []View, r int) float64 {
	wTotal := SumCwnd(flows)
	if wTotal <= 0 {
		return 0
	}
	return 1 / wTotal
}

// Decrease implements Algorithm: w_r ← w_r − w_total/2 (floored by the
// transport's minimum window).
func (*Coupled) Decrease(flows []View, r int) float64 {
	return flows[r].Cwnd - SumCwnd(flows)/2
}

// LIA is the Linked-Increases Algorithm of RFC 6356 (Wischik et al., NSDI
// 2011), the MPTCP kernel default: per-ACK increase min(α/w_total, 1/w_r)
// with α = w_total·max_k(w_k/RTT_k²)/(Σ_k w_k/RTT_k)², halve on loss.
type LIA struct{}

// NewLIA returns a LIA instance.
func NewLIA() *LIA { return &LIA{} }

// Name implements Algorithm.
func (*LIA) Name() string { return "lia" }

// Alpha returns the RFC 6356 aggressiveness parameter α for the connection.
func (*LIA) Alpha(flows []View) float64 {
	var maxTerm float64
	for _, k := range flows {
		if k.SRTT <= 0 {
			continue
		}
		if t := k.Cwnd / (k.SRTT * k.SRTT); t > maxTerm {
			maxTerm = t
		}
	}
	sum := SumRates(flows)
	if sum <= 0 {
		return 0
	}
	return SumCwnd(flows) * maxTerm / (sum * sum)
}

// Increase implements Algorithm.
func (l *LIA) Increase(flows []View, r int) float64 {
	f := flows[r]
	wTotal := SumCwnd(flows)
	if f.Cwnd <= 0 || wTotal <= 0 {
		return 0
	}
	coupled := l.Alpha(flows) / wTotal
	uncoupled := 1 / f.Cwnd
	return math.Min(coupled, uncoupled)
}

// Decrease implements Algorithm.
func (*LIA) Decrease(flows []View, r int) float64 { return flows[r].Cwnd / 2 }

var (
	_ Algorithm = (*EWTCP)(nil)
	_ Algorithm = (*Coupled)(nil)
	_ Algorithm = (*LIA)(nil)
)
