package core

import (
	"math"
	"testing"
)

// fakeClock is a settable clock for driving CUBIC through simulated time.
type fakeClock struct{ now float64 }

func (c *fakeClock) fn() func() float64 { return func() float64 { return c.now } }

func TestCubicFallsBackToRenoWithoutClock(t *testing.T) {
	c := NewCubic()
	flows := []View{v(10, 0.1)}
	if got := c.Increase(flows, 0); !almostEq(got, 0.1, 1e-12) {
		t.Errorf("clockless Increase = %g, want Reno 1/w = 0.1", got)
	}
}

func TestCubicDecreaseAndFastConvergence(t *testing.T) {
	clk := &fakeClock{}
	c := NewCubic()
	c.SetClock(clk.fn())
	flows := []View{v(100, 0.1)}

	// First loss at w=100: no prior plateau, so wMax = w and the window
	// shrinks to β·w.
	if got := c.Decrease(flows, 0); !almostEq(got, 70, 1e-9) {
		t.Fatalf("Decrease(100) = %g, want β·w = 70", got)
	}
	wantK := math.Cbrt(100 * (1 - cubicBeta) / cubicC)
	if got := c.st[0].k; !almostEq(got, wantK, 1e-9) {
		t.Errorf("K = %g, want %g", got, wantK)
	}

	// Second loss below the old plateau (w=80 < wLastMax=100): fast
	// convergence aims the new plateau below the current window.
	flows[0].Cwnd = 80
	c.Decrease(flows, 0)
	if got := c.st[0].wMax; !almostEq(got, 80*(1+cubicBeta)/2, 1e-9) {
		t.Errorf("fast-convergence wMax = %g, want %g", got, 80*(1+cubicBeta)/2)
	}
}

func TestCubicConcaveConvexGrowth(t *testing.T) {
	clk := &fakeClock{}
	c := NewCubic()
	c.SetClock(clk.fn())
	flows := []View{v(100, 0.05)} // short RTT keeps W_est out of the way early

	c.Decrease(flows, 0) // plateau at 100, K = cbrt(100·0.3/0.4) ≈ 4.22s
	flows[0].Cwnd = 70
	k := c.st[0].k

	// Concave region (t < K): growth toward the plateau, slowing as the
	// window approaches it.
	clk.now = k / 2
	early := c.Increase(flows, 0)
	if early <= 0 {
		t.Fatalf("no growth in the concave region: %g", early)
	}
	flows[0].Cwnd = 99
	clk.now = k * 0.95
	nearPlateau := c.Increase(flows, 0)
	if nearPlateau >= early {
		t.Errorf("growth did not slow near the plateau: %g then %g", early, nearPlateau)
	}

	// Convex region (t > K): growth accelerates past the plateau.
	flows[0].Cwnd = 101
	clk.now = k + 2
	convex1 := c.Increase(flows, 0)
	clk.now = k + 4
	convex2 := c.Increase(flows, 0)
	if convex2 <= convex1 {
		t.Errorf("convex growth did not accelerate: %g then %g", convex1, convex2)
	}

	// The per-ack increment is capped so a long-idle epoch cannot step the
	// window explosively.
	clk.now = k + 1000
	if got := c.Increase(flows, 0); got > 0.5 {
		t.Errorf("Increase = %g, want capped at 0.5", got)
	}
}

func TestCubicTCPFriendlyRegion(t *testing.T) {
	clk := &fakeClock{}
	c := NewCubic()
	c.SetClock(clk.fn())
	// Small window, short RTT: standard Reno would regrow faster than the
	// flat early cubic curve, so W_est = wMax·β + α·t/RTT overtakes W_cubic
	// and the TCP-friendly region drives the increase.
	flows := []View{v(10, 0.1)}
	c.Decrease(flows, 0)
	flows[0].Cwnd = 7

	clk.now = 0.3 // well before K = cbrt(10·0.3/0.4) ≈ 1.96s
	st := &c.st[0]
	if st.wEst(0.3, 0.1) <= st.wCubic(0.3) {
		t.Fatalf("test premise broken: wEst %g not above wCubic %g", st.wEst(0.3, 0.1), st.wCubic(0.3))
	}
	want := (st.wEst(0.3, 0.1) - 7) / 7
	if got := c.Increase(flows, 0); !almostEq(got, want, 1e-9) {
		t.Errorf("TCP-friendly Increase = %g, want %g (driven by W_est)", got, want)
	}
}

func TestCubicTimeoutResetsEpoch(t *testing.T) {
	clk := &fakeClock{}
	c := NewCubic()
	c.SetClock(clk.fn())
	flows := []View{v(100, 0.1)}
	c.Decrease(flows, 0)
	if c.st[0].wMax == 0 {
		t.Fatal("decrease left no plateau")
	}
	c.OnTimeout(flows, 0)
	if c.st[0].wMax != 0 || c.st[0].hasEpoch || c.st[0].wLastMax != 0 {
		t.Errorf("timeout did not reset the epoch: %+v", c.st[0])
	}
}

func TestCubicIntrospection(t *testing.T) {
	clk := &fakeClock{}
	c := NewCubic()
	c.SetClock(clk.fn())
	flows := []View{v(100, 0.1)}
	c.Decrease(flows, 0)
	m := c.Introspect(flows, 0)
	for _, key := range []string{"w_max", "w_last_max", "k", "w_cubic", "w_est"} {
		if _, ok := m[key]; !ok {
			t.Errorf("introspection missing %q", key)
		}
	}
	if m["w_max"] != 100 {
		t.Errorf("w_max = %g, want 100", m["w_max"])
	}
}

func TestVegasSteersBacklogIntoBand(t *testing.T) {
	alg := NewVegas()

	// Backlog below α (no queueing): +1 per round.
	f := View{Cwnd: 20, SSThresh: 10, SRTT: 0.1, LastRTT: 0.1, BaseRTT: 0.1}
	if cwnd, _ := alg.OnRound([]View{f}, 0); !almostEq(cwnd, 21, 1e-9) {
		t.Errorf("cwnd below α: %g, want +1 → 21", cwnd)
	}

	// Backlog inside [α, β]: hold. diff = 20·(0.115−0.1)/0.115 ≈ 2.6.
	f = View{Cwnd: 20, SSThresh: 10, SRTT: 0.115, LastRTT: 0.115, BaseRTT: 0.1}
	if cwnd, _ := alg.OnRound([]View{f}, 0); !almostEq(cwnd, 20, 1e-9) {
		t.Errorf("cwnd inside band: %g, want hold at 20", cwnd)
	}

	// Backlog above β: −1. diff = 20·(0.14−0.1)/0.14 ≈ 5.7.
	f = View{Cwnd: 20, SSThresh: 10, SRTT: 0.14, LastRTT: 0.14, BaseRTT: 0.1}
	if cwnd, _ := alg.OnRound([]View{f}, 0); !almostEq(cwnd, 19, 1e-9) {
		t.Errorf("cwnd above band: %g, want −1 → 19", cwnd)
	}

	// Slow start exits once backlog exceeds γ.
	f = View{Cwnd: 20, SSThresh: 100, SRTT: 0.12, LastRTT: 0.12, BaseRTT: 0.1, InSlowStart: true}
	cwnd, ssthresh := alg.OnRound([]View{f}, 0)
	if ssthresh != 20 || !almostEq(cwnd, 10, 1e-9) {
		t.Errorf("slow-start exit: cwnd=%g ssthresh=%g, want 10/20", cwnd, ssthresh)
	}
}

func TestVegasLossHalvesWindow(t *testing.T) {
	alg := NewVegas()
	if got := alg.Decrease([]View{v(30, 0.1)}, 0); !almostEq(got, 15, 1e-9) {
		t.Errorf("Decrease = %g, want w/2 = 15", got)
	}
}

func sumWeights(ws []float64) float64 {
	var s float64
	for _, w := range ws {
		s += w
	}
	return s
}

// TestWVegasWeightsRenormalizeOnDeath is the failing-before regression for
// the weight-accounting fix: before it, a dead subflow kept its weight
// slice forever (Σ over the survivors < 1), starving the survivors'
// backlog targets.
func TestWVegasWeightsRenormalizeOnDeath(t *testing.T) {
	alg := NewWVegas()
	flows := []View{v(10, 0.1), v(10, 0.1), v(10, 0.1)}
	alg.OnRound(flows, 0)
	if got := sumWeights(alg.Weights()); !almostEq(got, 1, 1e-9) {
		t.Fatalf("Σweights = %g after first round, want 1", got)
	}

	alg.OnSubflowDown(2)
	ws := alg.Weights()
	if ws[2] != 0 {
		t.Errorf("dead subflow weight = %g, want 0", ws[2])
	}
	if got := sumWeights(ws); !almostEq(got, 1, 1e-9) {
		t.Errorf("Σweights = %g after subflow death, want renormalized to 1", got)
	}

	// Rounds while one subflow is down keep the sum pinned and the dead
	// weight at 0 even though the dead flow still appears in the views.
	for i := 0; i < 50; i++ {
		alg.OnRound(flows, 0)
	}
	ws = alg.Weights()
	if ws[2] != 0 {
		t.Errorf("dead subflow weight crept back to %g", ws[2])
	}
	if got := sumWeights(ws); !almostEq(got, 1, 1e-9) {
		t.Errorf("Σweights = %g after rounds with a dead subflow, want 1", got)
	}

	// Revival re-admits the subflow with a real share and Σ stays 1.
	alg.OnSubflowUp(2)
	ws = alg.Weights()
	if ws[2] <= 0 {
		t.Errorf("revived subflow weight = %g, want > 0", ws[2])
	}
	if got := sumWeights(ws); !almostEq(got, 1, 1e-9) {
		t.Errorf("Σweights = %g after revival, want 1", got)
	}
}

// TestWVegasWeightSumPreservedByRounds pins the EWMA invariant the checker
// relies on: round updates keep Σ weights = 1 exactly (up to float
// rounding) with no membership events at all.
func TestWVegasWeightSumPreservedByRounds(t *testing.T) {
	alg := NewWVegas()
	flows := []View{v(30, 0.05), v(10, 0.2)}
	for i := 0; i < 200; i++ {
		alg.OnRound(flows, 0)
		if got := sumWeights(alg.Weights()); math.Abs(got-1) > 1e-9 {
			t.Fatalf("round %d: Σweights = %g drifted from 1", i, got)
		}
	}
	ws := alg.Weights()
	if ws[0] <= ws[1] {
		t.Errorf("faster subflow did not earn the larger weight: %v", ws)
	}
}

func TestPsiUncoupledIsRenoPerSubflow(t *testing.T) {
	flows := []View{v(10, 0.1), v(20, 0.2)}
	m := &Model{ModelName: "uncoupled", Psi: PsiUncoupled}
	for r, f := range flows {
		want := 1 / f.Cwnd
		if got := m.Increase(flows, r); !almostEq(got, want, 1e-12) {
			t.Errorf("subflow %d: Increase = %g, want 1/w = %g", r, got, want)
		}
	}
}
