package core

// Single-path baselines: Reno (classic TCP, the paper's "TCP" baseline) and
// DCTCP (the datacenter baseline of Fig. 10). Applied to one subflow they
// ignore the rest of the connection.

// Reno is classic AIMD: +1/w per ACK, halve on loss.
type Reno struct{}

// NewReno returns the classic TCP congestion-avoidance policy.
func NewReno() *Reno { return &Reno{} }

// Name implements Algorithm.
func (*Reno) Name() string { return "reno" }

// Increase implements Algorithm.
func (*Reno) Increase(flows []View, r int) float64 {
	if flows[r].Cwnd <= 0 {
		return 0
	}
	return 1 / flows[r].Cwnd
}

// Decrease implements Algorithm.
func (*Reno) Decrease(flows []View, r int) float64 { return flows[r].Cwnd / 2 }

// dctcpGain is the alpha EWMA gain g from the DCTCP paper.
const dctcpGain = 1.0 / 16

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM 2010): Reno
// increase, mark-fraction-proportional decrease. The transport feeds ECN
// echoes through OnAck and round boundaries through OnRound.
type DCTCP struct {
	alpha       float64
	ackedRound  int
	markedRound int
}

// NewDCTCP returns a DCTCP instance with alpha starting at 1 (conservative,
// as in the reference implementation).
func NewDCTCP() *DCTCP { return &DCTCP{alpha: 1} }

// Name implements Algorithm.
func (*DCTCP) Name() string { return "dctcp" }

// Increase implements Algorithm (same additive increase as Reno).
func (*DCTCP) Increase(flows []View, r int) float64 {
	if flows[r].Cwnd <= 0 {
		return 0
	}
	return 1 / flows[r].Cwnd
}

// Decrease implements Algorithm: packet loss still halves the window.
func (*DCTCP) Decrease(flows []View, r int) float64 { return flows[r].Cwnd / 2 }

// OnAck implements AckObserver, accumulating the mark fraction of the
// current round.
func (d *DCTCP) OnAck(flows []View, r int, ackedPkts int, ece bool) {
	d.ackedRound += ackedPkts
	if ece {
		d.markedRound += ackedPkts
	}
}

// OnRound implements RoundTuner: update alpha from the round's mark
// fraction and, if any packet was marked, shrink cwnd by alpha/2.
func (d *DCTCP) OnRound(flows []View, r int) (cwnd, ssthresh float64) {
	f := flows[r]
	cwnd, ssthresh = f.Cwnd, f.SSThresh
	if d.ackedRound == 0 {
		return cwnd, ssthresh
	}
	frac := float64(d.markedRound) / float64(d.ackedRound)
	d.alpha = (1-dctcpGain)*d.alpha + dctcpGain*frac
	if d.markedRound > 0 {
		cwnd = f.Cwnd * (1 - d.alpha/2)
		if cwnd < 1 {
			cwnd = 1
		}
		ssthresh = cwnd
	}
	d.ackedRound, d.markedRound = 0, 0
	return cwnd, ssthresh
}

// Alpha exposes the current mark-fraction estimate (for tests and traces).
func (d *DCTCP) Alpha() float64 { return d.alpha }

// Introspect implements Introspector: the mark-fraction estimate that
// scales DCTCP's multiplicative decrease.
func (d *DCTCP) Introspect(flows []View, r int) map[string]float64 {
	return map[string]float64{"alpha": d.alpha}
}

// IntrospectInto implements IntrospectorInto.
func (d *DCTCP) IntrospectInto(flows []View, r int, out map[string]float64) {
	out["alpha"] = d.alpha
}

var (
	_ Algorithm        = (*DCTCP)(nil)
	_ AckObserver      = (*DCTCP)(nil)
	_ RoundTuner       = (*DCTCP)(nil)
	_ IntrospectorInto = (*DCTCP)(nil)
	_ Algorithm        = (*Reno)(nil)
)
