// Package core implements the paper's primary contribution: the general
// multipath congestion-control model of Eq. 3 — window evolution decomposed
// into a traffic-shifting parameter ψ_r, a decrease parameter β_r, a loss
// signal λ_r and a compensative parameter φ_r — together with the existing
// algorithms it generalizes (EWTCP, Coupled, LIA, OLIA, Balia, ecMTCP,
// wVegas), the single-path baselines (Reno, DCTCP), and the paper's new
// designs: DTS (Delay-based Traffic Shifting, Eq. 5 / Algorithm 1) and the
// extended DTS with the energy-proportional price term (Eq. 6–9).
//
// Algorithms are pure window-evolution policies: the transport layer
// (internal/tcp, internal/mptcp) keeps a View per subflow current and asks
// the algorithm how the congestion window changes on ACKs and losses.
// Algorithm values are per-connection: create one instance per connection
// via New.
package core

import (
	"fmt"
	"sort"
)

// View is the congestion-control-visible state of one subflow. RTTs are in
// seconds, windows in packets (MSS units).
type View struct {
	Cwnd     float64 // congestion window
	SSThresh float64
	SRTT     float64 // smoothed RTT
	LastRTT  float64 // most recent RTT sample
	BaseRTT  float64 // minimum RTT observed on the path
	Price    float64 // echoed per-path energy price (0 unless charged)

	InSlowStart bool
}

// Rate returns the subflow's current sending rate x_r = w_r / RTT_r in
// packets per second, the quantity the paper's fluid model works with.
func (v View) Rate() float64 {
	if v.SRTT <= 0 {
		return 0
	}
	return v.Cwnd / v.SRTT
}

// SumRates returns Σ_k x_k over all subflows of the connection.
func SumRates(flows []View) float64 {
	var sum float64
	for _, f := range flows {
		sum += f.Rate()
	}
	return sum
}

// SumCwnd returns Σ_k w_k over all subflows.
func SumCwnd(flows []View) float64 {
	var sum float64
	for _, f := range flows {
		sum += f.Cwnd
	}
	return sum
}

// Algorithm is a (possibly coupled) congestion-control algorithm. Increase
// and Decrease are consulted by the transport in congestion avoidance;
// standard slow start is handled by the transport itself.
type Algorithm interface {
	Name() string

	// Increase returns the congestion-window increment, in packets, applied
	// for one newly acknowledged segment on subflow r.
	Increase(flows []View, r int) float64

	// Decrease returns the new congestion window for subflow r after a loss
	// event (the transport floors it at its minimum window).
	Decrease(flows []View, r int) float64
}

// AckObserver is implemented by algorithms that maintain internal state per
// acknowledgement (OLIA's loss intervals, DCTCP's mark fraction). ece
// reports whether the ACK carried an ECN echo.
type AckObserver interface {
	OnAck(flows []View, r int, ackedPkts int, ece bool)
}

// LossObserver is implemented by algorithms that track loss events beyond
// the window decrease itself.
type LossObserver interface {
	OnLoss(flows []View, r int)
}

// Introspector is implemented by algorithms that expose their internal
// tunable components — the quantities the paper's model decomposes window
// evolution into (ψ_r, ε_r, per-path prices, mark fractions) — for
// observability. The returned map holds the components for subflow r
// evaluated against the current views; keys are stable for the lifetime of
// the instance so samplers can fix their series set up front. The map is
// freshly allocated per call and may be retained by the caller.
type Introspector interface {
	Introspect(flows []View, r int) map[string]float64
}

// IntrospectorInto is an optional extension of Introspector: the same
// component map written into a caller-owned map instead of a freshly
// allocated one. Samplers on the hot path reuse one map per subflow across
// ticks, so steady-state introspection allocates nothing. Implementations
// overwrite their stable key set and leave other keys untouched.
type IntrospectorInto interface {
	Introspector
	IntrospectInto(flows []View, r int, out map[string]float64)
}

// ClockUser is implemented by algorithms whose window law is a function of
// elapsed wall-clock time (CUBIC). The transport injects its clock (in
// seconds) right after construction; an algorithm left without a clock
// falls back to a time-free approximation.
type ClockUser interface {
	SetClock(now func() float64)
}

// TimeoutObserver is implemented by algorithms that must reset internal
// state when subflow r suffers a retransmission timeout or its path is
// declared failed (CUBIC discards its cubic epoch — the pre-timeout
// plateau no longer describes the path).
type TimeoutObserver interface {
	OnTimeout(flows []View, r int)
}

// MembershipObserver is implemented by algorithms with cross-subflow state
// that must react when a subflow leaves service (path declared dead) or
// rejoins (path revived) — wVegas renormalizes its rate-share weights so
// they keep summing to one over the live set.
type MembershipObserver interface {
	OnSubflowDown(r int)
	OnSubflowUp(r int)
}

// Weighted is implemented by algorithms that maintain an explicit
// per-subflow weight vector with Σ weights = 1 (wVegas); the invariant
// checker bounds the sum. The returned slice is owned by the algorithm and
// must not be modified by the caller.
type Weighted interface {
	Weights() []float64
}

// RoundTuner is implemented by algorithms that adjust the window once per
// RTT round rather than per ACK (wVegas — the paper's δ=1 case — and
// DCTCP's alpha update). The transport calls OnRound at each round boundary
// of subflow r; the returned values replace cwnd and ssthresh.
type RoundTuner interface {
	OnRound(flows []View, r int) (cwnd, ssthresh float64)
}

// Factory creates a fresh per-connection Algorithm instance.
type Factory func() Algorithm

var registry = map[string]Factory{
	"reno":       func() Algorithm { return NewReno() },
	"cubic":      func() Algorithm { return NewCubic() },
	"vegas":      func() Algorithm { return NewVegas() },
	"dctcp":      func() Algorithm { return NewDCTCP() },
	"ewtcp":      func() Algorithm { return NewEWTCP() },
	"coupled":    func() Algorithm { return NewCoupled() },
	"lia":        func() Algorithm { return NewLIA() },
	"olia":       func() Algorithm { return NewOLIA() },
	"balia":      func() Algorithm { return NewBalia() },
	"ecmtcp":     func() Algorithm { return NewECMTCP() },
	"wvegas":     func() Algorithm { return NewWVegas() },
	"dts":        func() Algorithm { return NewDTS() },
	"dts-taylor": func() Algorithm { return &DTS{C: 1, Taylor: true} },
	"dts-lia":    func() Algorithm { return NewDTSLIA() },
	"dtsep":      func() Algorithm { return NewDTSEP(DefaultKappa) },
	"dtsep-lia":  func() Algorithm { return NewDTSEPLIA(DefaultKappa) },
}

// New creates a per-connection instance of the named algorithm.
func New(name string) (Algorithm, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown congestion control algorithm %q", name)
	}
	return f(), nil
}

// MustNew is New for callers with a known-valid name; it panics otherwise.
func MustNew(name string) Algorithm {
	a, err := New(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Names lists the registered algorithms in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
