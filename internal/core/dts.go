package core

import "math"

// DTS is the paper's contribution: Delay-based Traffic Shifting (§V-B,
// Algorithm 1). The traffic-shifting parameter is ψ_r = c·ε_r with
//
//	ε_r = 2 / (1 + e^{−10·(baseRTT_r/RTT_r − 1/2)})        (Eq. 5)
//
// an increasing logistic function of baseRTT_r/RTT_r: a path whose RTT is
// inflated by queueing (ratio → 0) gets ε→0 and stops growing, while a
// recovering low-delay path (ratio → 1) grows with ε→2. With c = 1 and
// E[baseRTT/RTT] = 1/2, ψ satisfies the TCP-friendliness condition
// (Condition 1) in expectation.
//
// Per ACK on path r (derived from Eq. 3 exactly as Algorithm 1 states):
//
//	w_r += c·ε_r · (w_r/RTT_r²) / (Σ_k w_k/RTT_k)²
//
// and each loss halves the subflow window (β = 1/2).

// EpsExact evaluates Eq. 5 at ratio = baseRTT_r/RTT_r in floating point.
func EpsExact(ratio float64) float64 {
	if ratio < 0 {
		ratio = 0
	} else if ratio > 1 {
		ratio = 1
	}
	return 2 / (1 + math.Exp(-10*(ratio-0.5)))
}

// EpsTaylor evaluates Eq. 5 the way Algorithm 1's kernel implementation
// does: integer fixed-point arithmetic with a third-order Taylor expansion
// of e^x around 0, all values scaled by 100. ratioPct is
// 100·baseRTT_r/RTT_r. The approximation is accurate near ratio = 1/2 and
// intentionally saturates outside (the kernel clamps negative numerators).
func EpsTaylor(ratioPct int64) int64 {
	if ratioPct < 0 {
		ratioPct = 0
	} else if ratioPct > 100 {
		ratioPct = 100
	}
	// x = 10·ratio − 5, carried in tenths: p = 10·ratioPct/100 − 5 = x.
	// numerator = 100·e^x ≈ 100 + 100x + 50x² + 17x³ (integer, x in units).
	x := (ratioPct - 50) / 10 // integer part of x in [-5, 5]
	frac := (ratioPct - 50) % 10
	// Work in hundredths to keep the fractional part of x: X = 100·x.
	X := x*100 + frac*10
	num := 100 + X + 50*X*X/10000 + 17*X*X*X/1000000
	if num < 0 {
		num = 0
	}
	den := 100 + num
	return 2 * 100 * num / den // ε scaled by 100
}

// DTS implements the Delay-based Traffic Shifting algorithm.
type DTS struct {
	// C is the Pareto-optimality constant c in ψ_r = c·ε_r. The paper picks
	// c = 1 so the fairness condition also holds.
	C float64
	// Taylor, when set, evaluates ε_r with the kernel's integer
	// approximation instead of the exact logistic (the ablation of
	// Algorithm 1's fixed-point port).
	Taylor bool
}

// NewDTS returns DTS with the paper's parameters (c = 1, exact ε).
func NewDTS() *DTS { return &DTS{C: 1} }

// Name implements Algorithm.
func (d *DTS) Name() string {
	if d.Taylor {
		return "dts-taylor"
	}
	return "dts"
}

// rttRatio returns baseRTT_r/RTT_r using the latest sample, as Algorithm 1
// does with current_rtt.
func rttRatio(f View) float64 {
	rtt := f.LastRTT
	if rtt <= 0 {
		rtt = f.SRTT
	}
	if rtt <= 0 || f.BaseRTT <= 0 {
		return 1
	}
	r := f.BaseRTT / rtt
	if r > 1 {
		r = 1
	}
	return r
}

// Eps returns the ε_r value DTS would use for subflow state f.
func (d *DTS) Eps(f View) float64 {
	ratio := rttRatio(f)
	if d.Taylor {
		return float64(EpsTaylor(int64(math.Round(ratio*100)))) / 100
	}
	return EpsExact(ratio)
}

// Increase implements Algorithm.
func (d *DTS) Increase(flows []View, r int) float64 {
	f := flows[r]
	if f.SRTT <= 0 {
		return 0
	}
	sum := SumRates(flows)
	if sum <= 0 {
		return 0
	}
	return d.C * d.Eps(f) * f.Cwnd / (f.SRTT * f.SRTT * sum * sum)
}

// Decrease implements Algorithm.
func (*DTS) Decrease(flows []View, r int) float64 { return flows[r].Cwnd / 2 }

// Introspect implements Introspector: the Eq. 5 components driving subflow
// r's window growth — the RTT ratio, ε_r and the traffic-shifting parameter
// ψ_r = c·ε_r.
func (d *DTS) Introspect(flows []View, r int) map[string]float64 {
	m := make(map[string]float64, 3)
	d.IntrospectInto(flows, r, m)
	return m
}

// IntrospectInto implements IntrospectorInto.
func (d *DTS) IntrospectInto(flows []View, r int, out map[string]float64) {
	f := flows[r]
	eps := d.Eps(f)
	out["rtt_ratio"] = rttRatio(f)
	out["eps"] = eps
	out["psi"] = d.C * eps
}

var _ Algorithm = (*DTS)(nil)
var _ IntrospectorInto = (*DTS)(nil)

// DTSLIA is the "Modified LIA" variant of DTS that the paper's kernel
// experiments plot (Fig. 8): LIA's coupled increase scaled by the Eq. 5
// delay factor, w_r += ε_r·min(α/w_total, 1/w_r) per ACK. §V-B's ψ = c·ε
// reading replaces LIA's ψ entirely (the DTS type above); this variant
// instead composes ε with LIA's aggressiveness, which preserves LIA's
// strong loss-based shifting — the property the paper highlights in
// Fig. 7 — while ε steers traffic off delay-inflated paths. Both are
// provided; EXPERIMENTS.md compares them.
type DTSLIA struct {
	lia LIA
	dts DTS
}

// NewDTSLIA returns the Modified-LIA DTS variant.
func NewDTSLIA() *DTSLIA { return &DTSLIA{dts: DTS{C: 1}} }

// Name implements Algorithm.
func (*DTSLIA) Name() string { return "dts-lia" }

// Increase implements Algorithm.
func (d *DTSLIA) Increase(flows []View, r int) float64 {
	return d.dts.Eps(flows[r]) * d.lia.Increase(flows, r)
}

// Decrease implements Algorithm.
func (d *DTSLIA) Decrease(flows []View, r int) float64 {
	return d.lia.Decrease(flows, r)
}

// Introspect implements Introspector: the delay factor ε_r plus the LIA
// increase it scales.
func (d *DTSLIA) Introspect(flows []View, r int) map[string]float64 {
	m := make(map[string]float64, 3)
	d.IntrospectInto(flows, r, m)
	return m
}

// IntrospectInto implements IntrospectorInto.
func (d *DTSLIA) IntrospectInto(flows []View, r int, out map[string]float64) {
	f := flows[r]
	out["rtt_ratio"] = rttRatio(f)
	out["eps"] = d.dts.Eps(f)
	out["lia_inc"] = d.lia.Increase(flows, r)
}

var _ Algorithm = (*DTSLIA)(nil)
var _ IntrospectorInto = (*DTSLIA)(nil)

// DefaultKappa is the default weight κ_s of the energy price in the
// extended algorithm (Eq. 9), calibrated so the compensative term bends the
// equilibrium without starving subflows.
const DefaultKappa = 2e-4

// DTSEP is the extended DTS of §V-C: Eq. 9 adds the compensative term
// φ_r = κ_s·x_r²·∂U_ep/∂x_r to the DTS window evolution, where U_ep
// (Eq. 6) prices traffic on switch-to-switch links proportionally to their
// energy cost ρ and queue excess. Links accumulate that price on data
// packets in transit and receivers echo it on ACKs; converted per ACK the
// term is a decrement κ_s·w_r·price_r.
type DTSEP struct {
	DTS

	// Kappa is the price weight κ_s.
	Kappa float64
}

// NewDTSEP returns the extended algorithm with price weight kappa.
func NewDTSEP(kappa float64) *DTSEP {
	return &DTSEP{DTS: DTS{C: 1}, Kappa: kappa}
}

// Name implements Algorithm.
func (*DTSEP) Name() string { return "dtsep" }

// Increase implements Algorithm: the DTS increase minus the per-ACK
// compensative term.
func (d *DTSEP) Increase(flows []View, r int) float64 {
	inc := d.DTS.Increase(flows, r)
	return inc - d.Kappa*flows[r].Cwnd*flows[r].Price
}

// Introspect implements Introspector: the DTS components plus the echoed
// path price and the per-ACK compensative decrement φ_r it induces.
func (d *DTSEP) Introspect(flows []View, r int) map[string]float64 {
	m := make(map[string]float64, 5)
	d.IntrospectInto(flows, r, m)
	return m
}

// IntrospectInto implements IntrospectorInto.
func (d *DTSEP) IntrospectInto(flows []View, r int, out map[string]float64) {
	d.DTS.IntrospectInto(flows, r, out)
	out["price"] = flows[r].Price
	out["phi"] = d.Kappa * flows[r].Cwnd * flows[r].Price
}

var _ Algorithm = (*DTSEP)(nil)
var _ IntrospectorInto = (*DTSEP)(nil)

// DTSEPLIA is the extended algorithm built on the Modified-LIA variant:
// DTSLIA's increase minus the Eq. 9 compensative term.
type DTSEPLIA struct {
	DTSLIA

	// Kappa is the price weight κ_s.
	Kappa float64
}

// NewDTSEPLIA returns the extended Modified-LIA variant.
func NewDTSEPLIA(kappa float64) *DTSEPLIA {
	return &DTSEPLIA{DTSLIA: *NewDTSLIA(), Kappa: kappa}
}

// Name implements Algorithm.
func (*DTSEPLIA) Name() string { return "dtsep-lia" }

// Increase implements Algorithm.
func (d *DTSEPLIA) Increase(flows []View, r int) float64 {
	return d.DTSLIA.Increase(flows, r) - d.Kappa*flows[r].Cwnd*flows[r].Price
}

// Introspect implements Introspector: the Modified-LIA components plus the
// price-driven compensative decrement.
func (d *DTSEPLIA) Introspect(flows []View, r int) map[string]float64 {
	m := make(map[string]float64, 5)
	d.IntrospectInto(flows, r, m)
	return m
}

// IntrospectInto implements IntrospectorInto.
func (d *DTSEPLIA) IntrospectInto(flows []View, r int, out map[string]float64) {
	d.DTSLIA.IntrospectInto(flows, r, out)
	out["price"] = flows[r].Price
	out["phi"] = d.Kappa * flows[r].Cwnd * flows[r].Price
}

var _ Algorithm = (*DTSEPLIA)(nil)
var _ IntrospectorInto = (*DTSEPLIA)(nil)
