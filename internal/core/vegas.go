package core

// Plain TCP Vegas (Brakmo & Peterson, JSAC 1995), applied per subflow: the
// uncoupled delay-based baseline next to wVegas. Each subflow holds its own
// backlog estimate diff_r = w_r·(RTT_r − baseRTT_r)/RTT_r between α and β
// packets, with no cross-subflow weight coupling — exactly what wVegas
// reduces to when the weights are frozen at 1 per path, and the natural
// control to measure the weighted variant's traffic shifting against.

const (
	vegasAlpha = 2.0 // grow while fewer than α packets are queued
	vegasBeta  = 4.0 // shrink when more than β packets are queued
	vegasGamma = 1.0 // slow-start exit threshold (packets of backlog)
)

// Vegas implements per-subflow plain Vegas.
type Vegas struct{}

// NewVegas returns a plain-Vegas instance.
func NewVegas() *Vegas { return &Vegas{} }

// Name implements Algorithm.
func (*Vegas) Name() string { return "vegas" }

// Increase implements Algorithm. Vegas does not react per ACK in
// congestion avoidance; all adjustment happens in OnRound.
func (*Vegas) Increase(flows []View, r int) float64 { return 0 }

// Decrease implements Algorithm: packet loss still halves the window.
func (*Vegas) Decrease(flows []View, r int) float64 { return flows[r].Cwnd / 2 }

// diff returns the Vegas backlog estimate for subflow r in packets.
func (*Vegas) diff(f View) float64 {
	rtt := f.LastRTT
	if rtt <= 0 {
		rtt = f.SRTT
	}
	if rtt <= 0 || f.BaseRTT <= 0 {
		return 0
	}
	q := rtt - f.BaseRTT
	if q < 0 {
		q = 0
	}
	return f.Cwnd * q / rtt
}

// OnRound implements RoundTuner: once per RTT, steer the backlog into
// [α, β] by one packet.
func (v *Vegas) OnRound(flows []View, r int) (cwnd, ssthresh float64) {
	f := flows[r]
	cwnd, ssthresh = f.Cwnd, f.SSThresh

	d := v.diff(f)
	if f.InSlowStart {
		// Leave slow start as soon as queueing builds up.
		if d > vegasGamma {
			ssthresh = f.Cwnd
			cwnd = f.Cwnd / 2
			if cwnd < 2 {
				cwnd = 2
			}
		}
		return cwnd, ssthresh
	}

	switch {
	case d < vegasAlpha:
		cwnd = f.Cwnd + 1
	case d > vegasBeta:
		cwnd = f.Cwnd - 1
		if cwnd < 2 {
			cwnd = 2
		}
	}
	// Keep ssthresh below cwnd so the transport stays in congestion
	// avoidance; Vegas-style control owns the window from here on.
	if ssthresh > cwnd {
		ssthresh = cwnd
	}
	return cwnd, ssthresh
}

// Introspect implements Introspector: the backlog estimate and its target
// band.
func (v *Vegas) Introspect(flows []View, r int) map[string]float64 {
	m := make(map[string]float64, 3)
	v.IntrospectInto(flows, r, m)
	return m
}

// IntrospectInto implements IntrospectorInto.
func (v *Vegas) IntrospectInto(flows []View, r int, out map[string]float64) {
	out["diff"] = v.diff(flows[r])
	out["alpha"] = vegasAlpha
	out["beta"] = vegasBeta
}

var (
	_ Algorithm        = (*Vegas)(nil)
	_ RoundTuner       = (*Vegas)(nil)
	_ IntrospectorInto = (*Vegas)(nil)
)
