package core

import "math"

// Balia — the Balanced Linked Adaptation algorithm (Peng, Walid, Hwang &
// Low, SIGMETRICS 2013 / ToN 2016) — balances TCP-friendliness,
// responsiveness and window oscillation. With x_r = w_r/RTT_r and
// α_r = max_k x_k / x_r:
//
//	per ACK:  w_r += (x_r/RTT_r) / (Σ_k x_k)² · (1+α_r)/2 · (4+α_r)/5
//	per loss: w_r -= (w_r/2) · min(α_r, 3/2)
type Balia struct{}

// NewBalia returns a Balia instance.
func NewBalia() *Balia { return &Balia{} }

// Name implements Algorithm.
func (*Balia) Name() string { return "balia" }

func baliaAlpha(flows []View, r int) float64 {
	x := flows[r].Rate()
	if x <= 0 {
		return 1
	}
	var maxRate float64
	for _, f := range flows {
		if xr := f.Rate(); xr > maxRate {
			maxRate = xr
		}
	}
	return maxRate / x
}

// Increase implements Algorithm.
func (*Balia) Increase(flows []View, r int) float64 {
	f := flows[r]
	if f.SRTT <= 0 {
		return 0
	}
	sum := SumRates(flows)
	if sum <= 0 {
		return 0
	}
	a := baliaAlpha(flows, r)
	return f.Rate() / f.SRTT / (sum * sum) * (1 + a) / 2 * (4 + a) / 5
}

// Decrease implements Algorithm.
func (*Balia) Decrease(flows []View, r int) float64 {
	f := flows[r]
	a := baliaAlpha(flows, r)
	return f.Cwnd - f.Cwnd/2*math.Min(a, 1.5)
}

var _ Algorithm = (*Balia)(nil)

// NewECMTCP returns ecMTCP (Le et al., IEEE Communications Letters 2012),
// the energy-aware shifting algorithm, expressed through the paper's §IV
// decomposition ψ_r = RTT_r³(Σ_k x_k)² / (n·min_k RTT_k·w_r·Σ_k w_k) with
// the standard halving decrease.
func NewECMTCP() Algorithm {
	return &Model{ModelName: "ecmtcp", Psi: PsiECMTCP}
}
