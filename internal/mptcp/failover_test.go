package mptcp

import (
	"testing"

	"mptcpsim/internal/faults"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// The headline robustness scenario: one of two paths dies mid-transfer and
// comes back later. The transfer must complete with every byte accounted
// for exactly once — the dead subflow's unacked data re-injected on the
// survivor — and the subflow must return to service after the path heals.
func TestTransferSurvivesPathOutage(t *testing.T) {
	eng := sim.NewEngine(1)
	p1 := makePath(eng, "p1", 10*netem.Mbps, 10*sim.Millisecond, 50)
	p2 := makePath(eng, "p2", 10*netem.Mbps, 10*sim.Millisecond, 50)
	const segs = 8000
	c := newConn(t, eng, Config{Algorithm: "lia", TransferBytes: segs * 1448}, 1, p1, p2)
	faults.Apply(eng, p2, faults.Outage{Down: sim.Second, Up: 4 * sim.Second})

	failedMidRun := false
	eng.Schedule(3500*sim.Millisecond, func() { failedMidRun = c.SubflowFailed(1) })

	c.Start()
	eng.Run(60 * sim.Second)

	if !c.Done() {
		t.Fatalf("transfer did not complete: acked %d bytes, sub1 %+v",
			c.AckedBytes(), c.Subflows()[1].Stats())
	}
	if got := c.AckedBytes(); got != segs*1448 {
		t.Errorf("AckedBytes = %d, want exactly %d (no double counting)", got, segs*1448)
	}
	if c.ackedSegs != segs {
		t.Errorf("ackedSegs = %d, want exactly %d", c.ackedSegs, segs)
	}
	if !failedMidRun {
		t.Error("subflow 1 not marked failed while its path was down")
	}
	st := c.Subflows()[1].Stats()
	if st.Fails < 1 || st.Revivals < 1 {
		t.Errorf("sub1 Fails=%d Revivals=%d, want >=1 each", st.Fails, st.Revivals)
	}
	if c.SubflowFailed(1) {
		t.Error("subflow 1 still marked failed after the path healed")
	}
	if c.ReinjectedSegs() == 0 {
		t.Error("no segments were re-injected despite a mid-transfer outage")
	}
	// The revived subflow actually carried load again: its cumulative ACK
	// must exceed what it had when it froze (everything sent before t=1s).
	if acked := c.Subflows()[1].Acked(); acked < 100 {
		t.Errorf("sub1 acked only %d segments; revival carried no data", acked)
	}
}

// Permanent failure: graceful degradation to single-path TCP.
func TestTransferDegradesToSinglePath(t *testing.T) {
	eng := sim.NewEngine(1)
	p1 := makePath(eng, "p1", 10*netem.Mbps, 10*sim.Millisecond, 50)
	p2 := makePath(eng, "p2", 10*netem.Mbps, 10*sim.Millisecond, 50)
	const segs = 2000
	c := newConn(t, eng, Config{Algorithm: "olia", TransferBytes: segs * 1448}, 1, p1, p2)
	faults.Apply(eng, p2, faults.Outage{Down: 500 * sim.Millisecond}) // never up

	c.Start()
	eng.Run(60 * sim.Second)

	if !c.Done() {
		t.Fatalf("transfer stalled after permanent single-path failure: acked %d bytes", c.AckedBytes())
	}
	if got := c.AckedBytes(); got != segs*1448 {
		t.Errorf("AckedBytes = %d, want exactly %d", got, segs*1448)
	}
	if !c.SubflowFailed(1) {
		t.Error("subflow 1 revived through a permanently dead path")
	}
	if st := c.Subflows()[1].Stats(); st.Probes == 0 {
		t.Error("dead subflow never probed for recovery")
	}
}

// Same seed + same fault schedule (including stochastic Gilbert-Elliott
// loss) must reproduce byte-identical results.
func TestFaultScheduleReproducible(t *testing.T) {
	run := func() (uint64, sim.Time, uint64, uint64) {
		eng := sim.NewEngine(99)
		p1 := makePath(eng, "p1", 10*netem.Mbps, 10*sim.Millisecond, 50)
		p2 := makePath(eng, "p2", 10*netem.Mbps, 30*sim.Millisecond, 50)
		c := MustNew(eng, Config{Algorithm: "dts", TransferBytes: 4000 * 1448}, 1, p1, p2)
		faults.Apply(eng, p2,
			faults.Flap{Start: sim.Second, Period: 3 * sim.Second, DownFor: sim.Second, Count: 3},
			faults.GilbertElliott{Start: 0, PGoodBad: 0.1, PBadGood: 0.3, LossBad: 0.3},
		)
		c.Start()
		eng.Run(120 * sim.Second)
		s1, s2 := c.Subflows()[0].Stats(), c.Subflows()[1].Stats()
		return c.AckedBytes(), c.CompletedAt(), s1.PktsSent + s1.PktsRtx, s2.Timeouts + s2.Probes
	}
	b1, t1, x1, y1 := run()
	b2, t2, x2, y2 := run()
	if b1 != b2 || t1 != t2 || x1 != x2 || y1 != y2 {
		t.Errorf("same seed diverged under fault schedule: (%d,%v,%d,%d) vs (%d,%v,%d,%d)",
			b1, t1, x1, y1, b2, t2, x2, y2)
	}
}

func TestTransferBytesAppLimitedMutuallyExclusive(t *testing.T) {
	eng := sim.NewEngine(1)
	p := makePath(eng, "p", 10*netem.Mbps, sim.Millisecond, 10)
	_, err := New(eng, Config{Algorithm: "lia", TransferBytes: 1 << 20, AppLimited: true}, 1, p)
	if err == nil {
		t.Fatal("New accepted TransferBytes together with AppLimited")
	}
}
