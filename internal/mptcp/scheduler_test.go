package mptcp

import (
	"testing"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

func TestLowRTTPathCarriesMoreWhenRwndBound(t *testing.T) {
	// Under a binding connection-level window, the pull-based scheduler
	// lets the faster ACK clock win: the low-RTT subflow must carry the
	// clear majority of the data (the Linux default scheduler's effect).
	eng := sim.NewEngine(1)
	fast := makePath(eng, "fast", 50*netem.Mbps, 5*sim.Millisecond, 200)
	slow := makePath(eng, "slow", 50*netem.Mbps, 80*sim.Millisecond, 200)
	c := MustNew(eng, Config{Algorithm: "lia", RwndSegments: 40}, 1, fast, slow)
	c.Start()
	eng.Run(30 * sim.Second)

	fastAcked := float64(c.Subflows()[0].Acked())
	slowAcked := float64(c.Subflows()[1].Acked())
	if fastAcked < 3*slowAcked {
		t.Errorf("fast path carried %.0f segs vs slow %.0f; expected heavy low-RTT preference under rwnd limit",
			fastAcked, slowAcked)
	}
}

func TestAppLimitedProduceDrivesTransfer(t *testing.T) {
	eng := sim.NewEngine(1)
	p := makePath(eng, "p", 10*netem.Mbps, 5*sim.Millisecond, 100)
	c := MustNew(eng, Config{Algorithm: "reno", AppLimited: true}, 1, p)
	c.Start()
	eng.Run(sim.Second)
	if c.AckedBytes() != 0 {
		t.Fatalf("app-limited connection sent %d bytes with nothing produced", c.AckedBytes())
	}
	eng.At(eng.Now(), func() { c.Produce(100 * 1448) })
	eng.Run(5 * sim.Second)
	if got := c.AckedBytes(); got != 100*1448 {
		t.Errorf("acked %d bytes, want exactly the produced 144800", got)
	}
}

func TestMeanSRTTAveragesSubflows(t *testing.T) {
	eng := sim.NewEngine(1)
	p1 := makePath(eng, "p1", 10*netem.Mbps, 5*sim.Millisecond, 100)
	p2 := makePath(eng, "p2", 10*netem.Mbps, 45*sim.Millisecond, 100)
	c := MustNew(eng, Config{Algorithm: "lia"}, 1, p1, p2)
	c.Start()
	eng.Run(10 * sim.Second)
	mean := c.MeanSRTTSeconds()
	s1 := c.Subflows()[0].SRTT().Seconds()
	s2 := c.Subflows()[1].SRTT().Seconds()
	want := (s1 + s2) / 2
	if mean < want*0.99 || mean > want*1.01 {
		t.Errorf("MeanSRTT = %v, want %v", mean, want)
	}
}
