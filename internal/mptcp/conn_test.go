package mptcp

import (
	"math"
	"testing"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/tcp"
)

// makePath builds a symmetric two-way path over a single bidirectional link
// pair with the given forward rate, one-way delay and queue limit.
func makePath(eng *sim.Engine, name string, rate int64, delay sim.Time, qlimit int) *netem.Path {
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: name + "-fwd", Rate: rate, Delay: delay, QueueLimit: qlimit})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "-rev", Rate: rate, Delay: delay, QueueLimit: qlimit})
	return &netem.Path{Name: name, Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
}

func newConn(t *testing.T, eng *sim.Engine, cfg Config, id uint64, paths ...*netem.Path) *Conn {
	t.Helper()
	c, err := New(eng, cfg, id, paths...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSinglePathTransferCompletes(t *testing.T) {
	eng := sim.NewEngine(1)
	p := makePath(eng, "p", 10*netem.Mbps, 10*sim.Millisecond, 100)
	c := newConn(t, eng, Config{Algorithm: "reno", TransferBytes: 1 << 20}, 1, p)
	var doneAt sim.Time
	c.OnComplete = func(at sim.Time) { doneAt = at }
	c.Start()
	eng.Run(60 * sim.Second)

	if !c.Done() {
		t.Fatal("1 MiB transfer over 10 Mb/s did not complete in 60 s")
	}
	if doneAt != c.CompletedAt() || doneAt == 0 {
		t.Errorf("completion callback at %v, CompletedAt %v", doneAt, c.CompletedAt())
	}
	// 1 MiB over 10 Mb/s is ~0.84 s minimum; slow start adds a little.
	if doneAt < 800*sim.Millisecond || doneAt > 3*sim.Second {
		t.Errorf("completed at %v, want roughly 0.9-2 s", doneAt.Duration())
	}
	if got := c.AckedBytes(); got < 1<<20 {
		t.Errorf("acked %d bytes, want >= 1 MiB", got)
	}
}

func TestLongFlowFillsBottleneck(t *testing.T) {
	eng := sim.NewEngine(1)
	p := makePath(eng, "p", 20*netem.Mbps, 5*sim.Millisecond, 100)
	c := newConn(t, eng, Config{Algorithm: "reno"}, 1, p)
	c.Start()
	eng.Run(10 * sim.Second)

	tput := c.MeanThroughputBps()
	if tput < 0.85*20e6 || tput > 20e6 {
		t.Errorf("long Reno flow got %.1f Mb/s of a 20 Mb/s bottleneck", tput/1e6)
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	eng := sim.NewEngine(1)
	// Big pipe, no losses: watch cwnd after a few RTTs of slow start.
	p := makePath(eng, "p", netem.Gbps, 20*sim.Millisecond, 10000)
	c := newConn(t, eng, Config{Algorithm: "reno"}, 1, p)
	c.Start()
	// ~5 RTTs in: cwnd should be around 10 * 2^5.
	eng.Run(210 * sim.Millisecond)
	cwnd := c.Subflows()[0].Cwnd()
	if cwnd < 100 || cwnd > 1000 {
		t.Errorf("cwnd after ~5 RTTs of slow start = %v, want roughly 10*2^5", cwnd)
	}
}

func TestLossTriggersFastRetransmitNotTimeout(t *testing.T) {
	eng := sim.NewEngine(1)
	// Small queue forces periodic drops.
	p := makePath(eng, "p", 10*netem.Mbps, 10*sim.Millisecond, 16)
	c := newConn(t, eng, Config{Algorithm: "reno"}, 1, p)
	c.Start()
	eng.Run(20 * sim.Second)

	st := c.Subflows()[0].Stats()
	if st.LossEvents == 0 {
		t.Fatal("no loss events despite a 16-packet queue")
	}
	if st.Timeouts > st.LossEvents/2 {
		t.Errorf("timeouts (%d) not rare relative to fast retransmits (%d)",
			st.Timeouts, st.LossEvents)
	}
	// The flow keeps using the link well despite losses.
	if tput := c.MeanThroughputBps(); tput < 0.7*10e6 {
		t.Errorf("lossy-bottleneck throughput %.1f Mb/s, want > 7", tput/1e6)
	}
}

func TestSurvivesHeavyRandomLoss(t *testing.T) {
	eng := sim.NewEngine(1)
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 10 * netem.Mbps, Delay: 10 * sim.Millisecond, LossProb: 0.05})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 10 * netem.Mbps, Delay: 10 * sim.Millisecond})
	p := &netem.Path{Name: "lossy", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	c := newConn(t, eng, Config{Algorithm: "reno", TransferBytes: 256 << 10}, 1, p)
	c.Start()
	eng.Run(120 * sim.Second)
	if !c.Done() {
		t.Fatalf("transfer stalled under 5%% random loss: acked %d bytes, stats %+v",
			c.AckedBytes(), c.Subflows()[0].Stats())
	}
}

func TestRTTEstimatorTracksPath(t *testing.T) {
	eng := sim.NewEngine(1)
	p := makePath(eng, "p", 100*netem.Mbps, 25*sim.Millisecond, 1000)
	c := newConn(t, eng, Config{Algorithm: "reno", TransferBytes: 64 << 10}, 1, p)
	c.Start()
	eng.Run(10 * sim.Second)

	s := c.Subflows()[0]
	base := p.BaseRTT(1500, 52)
	if s.BaseRTT() < base || s.BaseRTT() > base+5*sim.Millisecond {
		t.Errorf("BaseRTT = %v, path floor %v", s.BaseRTT().Duration(), base.Duration())
	}
	if s.SRTT() < base || s.SRTT() > 2*base {
		t.Errorf("SRTT = %v, want near %v on an unloaded path", s.SRTT().Duration(), base.Duration())
	}
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	eng := sim.NewEngine(1)
	// One shared bottleneck link forward; separate reverse links.
	shared := netem.NewLink(eng, netem.LinkConfig{Name: "btl", Rate: 20 * netem.Mbps, Delay: 10 * sim.Millisecond, QueueLimit: 60})
	mk := func(name string) *netem.Path {
		rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "-rev", Rate: 100 * netem.Mbps, Delay: 10 * sim.Millisecond})
		return &netem.Path{Name: name, Forward: []*netem.Link{shared}, Reverse: []*netem.Link{rev}}
	}
	c1 := newConn(t, eng, Config{Algorithm: "reno"}, 1, mk("a"))
	c2 := newConn(t, eng, Config{Algorithm: "reno"}, 2, mk("b"))
	c1.Start()
	c2.Start()
	eng.Run(30 * sim.Second)

	t1, t2 := c1.MeanThroughputBps(), c2.MeanThroughputBps()
	if t1+t2 < 0.85*20e6 {
		t.Errorf("aggregate %.1f Mb/s, want near 20", (t1+t2)/1e6)
	}
	ratio := t1 / t2
	if ratio < 0.6 || ratio > 1.67 {
		t.Errorf("unfair share: %.1f vs %.1f Mb/s", t1/1e6, t2/1e6)
	}
}

func TestMPTCPAggregatesDisjointPaths(t *testing.T) {
	for _, alg := range []string{"lia", "olia", "balia", "dts"} {
		t.Run(alg, func(t *testing.T) {
			eng := sim.NewEngine(1)
			p1 := makePath(eng, "p1", 10*netem.Mbps, 10*sim.Millisecond, 100)
			p2 := makePath(eng, "p2", 10*netem.Mbps, 10*sim.Millisecond, 100)
			c := newConn(t, eng, Config{Algorithm: alg}, 1, p1, p2)
			c.Start()
			eng.Run(20 * sim.Second)
			tput := c.MeanThroughputBps()
			if tput < 0.75*20e6 {
				t.Errorf("%s aggregate over two 10 Mb/s paths = %.1f Mb/s, want > 15", alg, tput/1e6)
			}
		})
	}
}

func TestLIAFriendlyAtSharedBottleneck(t *testing.T) {
	eng := sim.NewEngine(1)
	// MPTCP with both subflows through the shared bottleneck, against one
	// regular TCP. RFC 6356 goal: MPTCP takes no more than a regular TCP
	// would on its best path.
	shared := netem.NewLink(eng, netem.LinkConfig{Name: "btl", Rate: 20 * netem.Mbps, Delay: 10 * sim.Millisecond, QueueLimit: 60})
	mk := func(name string) *netem.Path {
		rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "-rev", Rate: 100 * netem.Mbps, Delay: 10 * sim.Millisecond})
		return &netem.Path{Name: name, Forward: []*netem.Link{shared}, Reverse: []*netem.Link{rev}}
	}
	mp := newConn(t, eng, Config{Algorithm: "lia"}, 1, mk("m1"), mk("m2"))
	tcpFlow := newConn(t, eng, Config{Algorithm: "reno"}, 2, mk("t"))
	mp.Start()
	tcpFlow.Start()
	eng.Run(40 * sim.Second)

	mpT, tcpT := mp.MeanThroughputBps(), tcpFlow.MeanThroughputBps()
	// Real LIA exceeds the RFC's aspirational <=1x goal — Khalili et al.
	// (the OLIA paper) measure up to ~2x over the fair share, which is this
	// paper's motivation for Pareto-optimal designs. Assert LIA stays in
	// the empirically observed band rather than the idealized one.
	if mpT > 1.8*tcpT {
		t.Errorf("LIA (%.1f Mb/s) starved TCP (%.1f Mb/s) beyond the known ~1.5x aggressiveness",
			mpT/1e6, tcpT/1e6)
	}
	if mpT < 0.6*tcpT {
		t.Errorf("LIA (%.1f Mb/s) got starved by TCP (%.1f Mb/s)", mpT/1e6, tcpT/1e6)
	}
	if mpT+tcpT < 0.85*20e6 {
		t.Errorf("aggregate %.1f Mb/s, want near 20", (mpT+tcpT)/1e6)
	}
}

func TestSharedBottleneckAggressivenessBands(t *testing.T) {
	run := func(alg string) float64 {
		eng := sim.NewEngine(7)
		shared := netem.NewLink(eng, netem.LinkConfig{Name: "btl", Rate: 20 * netem.Mbps, Delay: 10 * sim.Millisecond, QueueLimit: 60})
		mk := func(name string) *netem.Path {
			rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "-rev", Rate: 100 * netem.Mbps, Delay: 10 * sim.Millisecond})
			return &netem.Path{Name: name, Forward: []*netem.Link{shared}, Reverse: []*netem.Link{rev}}
		}
		mp := MustNew(eng, Config{Algorithm: alg}, 1, mk("m1"), mk("m2"))
		tcpFlow := MustNew(eng, Config{Algorithm: "reno"}, 2, mk("t"))
		mp.Start()
		tcpFlow.Start()
		eng.Run(120 * sim.Second)
		return mp.MeanThroughputBps() / tcpFlow.MeanThroughputBps()
	}
	// Theory for two equal-RTT subflows at one bottleneck (Mathis-style):
	// EWTCP's per-ACK increase a/w with a = 1/sqrt(n) gives each subflow
	// sqrt(a) of a TCP's rate, i.e. an aggregate n^(3/4) ~ 1.68x for n=2;
	// LIA sits between the RFC's 1x goal and its measured ~1.5-2x
	// aggressiveness (Khalili et al.). DropTail synchronization makes
	// single runs noisy, hence the generous bands over a 120 s horizon.
	rEW, rLIA := run("ewtcp"), run("lia")
	if rEW < 1.3 || rEW > 2.5 {
		t.Errorf("EWTCP/TCP ratio %.2f, want ~1.68", rEW)
	}
	if rLIA < 0.7 || rLIA > 2.2 {
		t.Errorf("LIA/TCP ratio %.2f, want within the known [1, 2] band", rLIA)
	}
	if rLIA >= rEW {
		t.Errorf("LIA ratio %.2f >= EWTCP ratio %.2f; coupling should reduce aggressiveness", rLIA, rEW)
	}
}

func TestRwndCapsTotalInflight(t *testing.T) {
	eng := sim.NewEngine(1)
	p1 := makePath(eng, "p1", 100*netem.Mbps, 50*sim.Millisecond, 1000)
	p2 := makePath(eng, "p2", 100*netem.Mbps, 50*sim.Millisecond, 1000)
	const rwnd = 44 // 64 KiB / 1448
	c := newConn(t, eng, Config{Algorithm: "lia", RwndSegments: rwnd}, 1, p1, p2)
	c.Start()
	for at := sim.Second; at <= 10*sim.Second; at += 100 * sim.Millisecond {
		eng.Run(at)
		if got := c.inflight(); got > rwnd {
			t.Fatalf("inflight %d exceeds rwnd %d at %v", got, rwnd, at.Duration())
		}
	}
	// And the cap should actually bind on this long fat path (BDP >> rwnd).
	tput := c.MeanThroughputBps()
	maxByRwnd := float64(rwnd) * 1448 * 8 / 0.1 // rwnd per RTT
	if tput > 1.2*maxByRwnd {
		t.Errorf("throughput %.1f Mb/s exceeds rwnd-limited bound %.1f", tput/1e6, maxByRwnd/1e6)
	}
}

func TestWVegasKeepsQueuesShort(t *testing.T) {
	run := func(alg string) int {
		eng := sim.NewEngine(1)
		fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 10 * netem.Mbps, Delay: 20 * sim.Millisecond, QueueLimit: 200})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 10 * netem.Mbps, Delay: 20 * sim.Millisecond})
		p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
		c := MustNew(eng, Config{Algorithm: alg}, 1, p)
		c.Start()
		peak := 0
		for at := 5 * sim.Second; at <= 15*sim.Second; at += 50 * sim.Millisecond {
			eng.Run(at)
			if q := fwd.QueueLen(); q > peak {
				peak = q
			}
		}
		return peak
	}
	vegasQ, renoQ := run("wvegas"), run("reno")
	if vegasQ >= renoQ {
		t.Errorf("wVegas peak queue %d >= Reno peak queue %d; delay-based control should keep queues shorter", vegasQ, renoQ)
	}
	if vegasQ > 30 {
		t.Errorf("wVegas peak queue %d, want small (total alpha is 10 packets)", vegasQ)
	}
}

func TestDCTCPKeepsQueueShorterThanReno(t *testing.T) {
	run := func(alg string) float64 {
		eng := sim.NewEngine(1)
		fwd := netem.NewLink(eng, netem.LinkConfig{
			Name: "f", Rate: 100 * netem.Mbps, Delay: sim.Millisecond,
			QueueLimit: 200, MarkThreshold: 20,
		})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 100 * netem.Mbps, Delay: sim.Millisecond})
		p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
		c := MustNew(eng, Config{Algorithm: alg}, 1, p)
		c.Start()
		var sum float64
		n := 0
		for at := 2 * sim.Second; at <= 10*sim.Second; at += 10 * sim.Millisecond {
			eng.Run(at)
			sum += float64(fwd.QueueLen())
			n++
		}
		return sum / float64(n)
	}
	dctcpQ, renoQ := run("dctcp"), run("reno")
	if dctcpQ >= renoQ/2 {
		t.Errorf("DCTCP mean queue %.1f not well below Reno's %.1f", dctcpQ, renoQ)
	}
}

func TestDTSShiftsTrafficOffDelayedPath(t *testing.T) {
	// Path 1 gets heavy cross traffic (modelled as a slower drained queue by
	// halving its rate mid-run is complex; instead give it a standing queue
	// via a competing long flow). DTS should put a larger share of its
	// window on the clean path than LIA does.
	run := func(alg string) (clean, congested float64) {
		eng := sim.NewEngine(3)
		p1 := makePath(eng, "clean", 20*netem.Mbps, 10*sim.Millisecond, 100)
		p2 := makePath(eng, "busy", 20*netem.Mbps, 10*sim.Millisecond, 100)
		// Competing Reno flow congesting p2's forward link.
		comp := MustNew(eng, Config{Algorithm: "reno"}, 9,
			&netem.Path{Name: "comp", Forward: p2.Forward,
				Reverse: []*netem.Link{netem.NewLink(eng, netem.LinkConfig{Name: "crev", Rate: 100 * netem.Mbps, Delay: 10 * sim.Millisecond})}})
		mp := MustNew(eng, Config{Algorithm: alg}, 1, p1, p2)
		comp.Start()
		mp.Start()
		eng.Run(30 * sim.Second)
		subs := mp.Subflows()
		return float64(subs[0].Acked()), float64(subs[1].Acked())
	}
	dtsClean, dtsBusy := run("dts")
	liaClean, liaBusy := run("lia")
	dtsShare := dtsClean / (dtsClean + dtsBusy)
	liaShare := liaClean / (liaClean + liaBusy)
	if dtsShare <= liaShare {
		t.Errorf("DTS clean-path share %.2f <= LIA's %.2f; DTS should shift more traffic to the low-delay path",
			dtsShare, liaShare)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, float64) {
		eng := sim.NewEngine(42)
		p1 := makePath(eng, "p1", 10*netem.Mbps, 10*sim.Millisecond, 50)
		p2 := makePath(eng, "p2", 10*netem.Mbps, 30*sim.Millisecond, 50)
		c := MustNew(eng, Config{Algorithm: "lia"}, 1, p1, p2)
		c.Start()
		eng.Run(10 * sim.Second)
		return c.AckedBytes(), c.Subflows()[0].Cwnd()
	}
	b1, w1 := run()
	b2, w2 := run()
	if b1 != b2 || math.Abs(w1-w2) > 0 {
		t.Errorf("identical seeds diverged: bytes %d vs %d, cwnd %v vs %v", b1, b2, w1, w2)
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	if _, err := New(eng, Config{Algorithm: "lia"}, 1); err == nil {
		t.Error("New with no paths succeeded")
	}
	p := makePath(eng, "p", 10*netem.Mbps, sim.Millisecond, 10)
	if _, err := New(eng, Config{Algorithm: "bogus"}, 1, p); err == nil {
		t.Error("New with unknown algorithm succeeded")
	}
}

func TestFinitePreciseByteCount(t *testing.T) {
	eng := sim.NewEngine(1)
	p := makePath(eng, "p", 10*netem.Mbps, 5*sim.Millisecond, 100)
	// 10000 bytes with MSS 1000 = exactly 10 segments.
	c := newConn(t, eng, Config{
		Algorithm:     "reno",
		TransferBytes: 10000,
		Transport:     mustTransport(1000),
	}, 1, p)
	c.Start()
	eng.Run(10 * sim.Second)
	if !c.Done() {
		t.Fatal("tiny transfer did not complete")
	}
	if got := c.Subflows()[0].Stats().PktsSent; got != 10 {
		t.Errorf("sent %d new segments, want exactly 10", got)
	}
}

func mustTransport(mss int) (cfg tcp.Config) {
	cfg.MSS = mss
	return cfg
}
