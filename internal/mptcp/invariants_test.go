package mptcp

import (
	"testing"
	"testing/quick"

	"mptcpsim/internal/faults"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// Property: for any mix of path rates/delays/queues and any algorithm, a
// finite transfer either completes with exactly the requested segments
// acked, or the byte conservation invariant holds mid-flight: segments
// acked never exceed segments sent, and sent never exceeds the budget.
func TestConservationProperty(t *testing.T) {
	algs := []string{"lia", "olia", "balia", "dts", "dts-lia", "ewtcp", "wvegas"}
	f := func(seed int64, r1, r2 uint8, d1, d2 uint8, q uint8, algPick uint8) bool {
		eng := sim.NewEngine(seed)
		mk := func(name string, r, d, ql int) *netem.Path {
			fwd := netem.NewLink(eng, netem.LinkConfig{Name: name, Rate: int64(r) * netem.Mbps, Delay: sim.Time(d) * sim.Millisecond, QueueLimit: ql})
			rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "r", Rate: int64(r) * netem.Mbps, Delay: sim.Time(d) * sim.Millisecond, QueueLimit: ql})
			return &netem.Path{Name: name, Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
		}
		p1 := mk("a", int(r1%50)+2, int(d1%40)+1, int(q%60)+4)
		p2 := mk("b", int(r2%50)+2, int(d2%40)+1, int(q%60)+4)
		alg := algs[int(algPick)%len(algs)]
		const segs = 200
		c := MustNew(eng, Config{
			Algorithm:     alg,
			TransferBytes: segs * 1448,
		}, 1, p1, p2)
		c.Start()
		eng.Run(20 * sim.Second)

		if c.ackedSegs > c.sentSegs {
			t.Logf("%s: acked %d > sent %d", alg, c.ackedSegs, c.sentSegs)
			return false
		}
		if c.sentSegs > segs {
			t.Logf("%s: sent %d > budget %d", alg, c.sentSegs, segs)
			return false
		}
		if c.Done() && c.ackedSegs != segs {
			t.Logf("%s: done with %d acked", alg, c.ackedSegs)
			return false
		}
		// Subflow-level sanity.
		for _, s := range c.Subflows() {
			if s.Cwnd() < 1 {
				t.Logf("%s: cwnd %f < 1", alg, s.Cwnd())
				return false
			}
			if s.Outstanding() < 0 {
				t.Logf("%s: negative pipe %d", alg, s.Outstanding())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: transfers over sane paths eventually complete, whatever the
// algorithm — no algorithm deadlocks the transport.
func TestLivenessProperty(t *testing.T) {
	f := func(seed int64, algPick uint8) bool {
		algs := []string{"reno", "dctcp", "coupled", "lia", "olia", "balia", "ecmtcp", "wvegas", "dts", "dts-lia", "dtsep", "ewtcp"}
		alg := algs[int(algPick)%len(algs)]
		eng := sim.NewEngine(seed)
		p1 := makePath(eng, "p1", 10*netem.Mbps, 10*sim.Millisecond, 30)
		p2 := makePath(eng, "p2", 5*netem.Mbps, 30*sim.Millisecond, 30)
		paths := []*netem.Path{p1, p2}
		if alg == "reno" || alg == "dctcp" {
			paths = paths[:1]
		}
		c := MustNew(eng, Config{Algorithm: alg, TransferBytes: 1 << 20}, 1, paths...)
		c.Start()
		eng.Run(120 * sim.Second)
		if !c.Done() {
			t.Logf("%s: stalled with %d bytes acked", alg, c.AckedBytes())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: under arbitrary outages and flapping on one path (the other
// kept clean so delivery is always possible), every finite transfer still
// completes, no segment is counted twice (acked segments land exactly on
// the budget), and goodput accounting matches the bytes delivered.
func TestFaultScheduleProperty(t *testing.T) {
	algs := []string{"lia", "olia", "balia", "dts", "ewtcp"}
	f := func(seed int64, downAt, downFor, flapPeriod, flapDown uint8, algPick uint8) bool {
		eng := sim.NewEngine(seed)
		p1 := makePath(eng, "clean", 10*netem.Mbps, 10*sim.Millisecond, 50)
		p2 := makePath(eng, "faulty", 10*netem.Mbps, 20*sim.Millisecond, 50)
		alg := algs[int(algPick)%len(algs)]
		const segs = 300
		c := MustNew(eng, Config{Algorithm: alg, TransferBytes: segs * 1448}, 1, p1, p2)

		// One outage plus one flap train, all shapes fuzzed. Durations are
		// kept within the run horizon so healing is also exercised.
		down := sim.Time(downAt%10) * 500 * sim.Millisecond
		dur := sim.Time(downFor%8+1) * 500 * sim.Millisecond
		period := sim.Time(flapPeriod%6+2) * sim.Second
		pDown := sim.Time(flapDown%3+1) * 500 * sim.Millisecond
		faults.Apply(eng, p2,
			faults.Outage{Down: down, Up: down + dur},
			faults.Flap{Start: down + dur + sim.Second, Period: period, DownFor: pDown, Count: 4},
		)
		c.Start()
		eng.Run(120 * sim.Second)

		if !c.Done() {
			t.Logf("%s seed=%d down=%v+%v: stalled at %d bytes (sub1 %+v)",
				alg, seed, down.Duration(), dur.Duration(), c.AckedBytes(), c.Subflows()[1].Stats())
			return false
		}
		if c.ackedSegs != segs {
			t.Logf("%s: ackedSegs %d != budget %d (double count or loss)", alg, c.ackedSegs, segs)
			return false
		}
		if c.sentSegs > segs {
			t.Logf("%s: sentSegs %d > budget %d", alg, c.sentSegs, segs)
			return false
		}
		if got := c.AckedBytes(); got != segs*1448 {
			t.Logf("%s: goodput bytes %d != %d", alg, got, segs*1448)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the connection-level receive window is never violated, for
// any window size.
func TestRwndNeverViolatedProperty(t *testing.T) {
	f := func(seed int64, rwndRaw uint8) bool {
		rwnd := int64(rwndRaw%60) + 4
		eng := sim.NewEngine(seed)
		p1 := makePath(eng, "p1", 50*netem.Mbps, 20*sim.Millisecond, 200)
		p2 := makePath(eng, "p2", 50*netem.Mbps, 40*sim.Millisecond, 200)
		c := MustNew(eng, Config{Algorithm: "lia", RwndSegments: rwnd}, 1, p1, p2)
		c.Start()
		ok := true
		for at := sim.Second; at <= 8*sim.Second; at += 250 * sim.Millisecond {
			eng.Run(at)
			if c.inflight() > rwnd {
				ok = false
				break
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
