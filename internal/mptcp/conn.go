// Package mptcp implements the MPTCP connection layer: one connection
// spreads over multiple subflows (internal/tcp senders on distinct
// netem.Paths) whose congestion windows evolve under a shared, possibly
// coupled core.Algorithm. The connection enforces the connection-level
// receive window across subflows and accounts for transfer completion.
//
// Data scheduling is pull-based: a subflow pulls a new segment whenever its
// own window and the connection-level window have room, so low-RTT subflows
// — whose ACK clock runs faster — naturally pull more data, approximating
// the Linux default lowest-RTT scheduler. Connection-level reassembly is
// not modelled beyond the shared receive-window cap, the standard
// simplification for congestion-control studies (htsim does the same).
package mptcp

import (
	"fmt"

	"mptcpsim/internal/core"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/tcp"
	"mptcpsim/internal/trace"
)

// Config configures a connection.
type Config struct {
	// Transport is the per-subflow TCP parameterization.
	Transport tcp.Config

	// Algorithm names the congestion-control algorithm (see core.Names).
	Algorithm string

	// RwndSegments caps the total segments in flight across all subflows
	// (the connection-level receive window). 0 means unlimited.
	RwndSegments int64

	// TransferBytes is the amount of application data to send; 0 means an
	// unlimited (long-lived) source.
	TransferBytes int64

	// AppLimited, when set, makes the connection send only data the
	// application has produced via Produce (a streaming source), instead
	// of an infinite backlog. Mutually exclusive with TransferBytes.
	AppLimited bool
}

// Conn is one MPTCP connection (or, with a single path and a single-path
// algorithm, a regular TCP connection).
type Conn struct {
	eng  *sim.Engine
	cfg  Config
	alg  core.Algorithm
	subs []*tcp.Subflow

	totalSegs    int64 // 0 = unlimited
	producedSegs int64 // app-limited mode: segments made available
	sentSegs     int64
	ackedSegs    int64

	done        bool
	completedAt sim.Time

	// OnComplete, when set, fires once when the whole transfer is acked.
	OnComplete func(at sim.Time)

	// ctl is the per-subflow control block, indexed by subflow ID. One
	// contiguous slice replaces the former parallel failed / disabled /
	// reinjectCredit slices, so the per-ack scheduling checks touch one
	// cache line per subflow instead of three.
	ctl            []subCtl
	reinjectedSegs int64

	goodput *trace.RateMeter
	views   []core.View
}

// subCtl is the per-subflow scheduling state the coordinator consults on
// every send and ack.
type subCtl struct {
	// disabled gates new data (path-selection baselines suspend expensive
	// paths); in-flight data still drains.
	disabled bool

	// Failover bookkeeping. When a subflow declares its path dead it hands
	// back its unacked segments: sentSegs is decremented by that amount
	// (the re-injection — surviving subflows may now send that much more
	// new data) and the same amount is recorded as the dead subflow's
	// reinjectCredit. Acks later arriving on that subflow (its probes, or
	// its go-back-N resends after revival) are discounted against the
	// remaining credit before they count toward ackedSegs or goodput, so
	// a segment delivered both by the revived subflow and by a re-injected
	// copy is never counted twice.
	failed         bool
	reinjectCredit int64
}

// New assembles a connection with one subflow per path. flowID tags packets
// for tracing.
func New(eng *sim.Engine, cfg Config, flowID uint64, paths ...*netem.Path) (*Conn, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("mptcp: connection needs at least one path")
	}
	if cfg.TransferBytes > 0 && cfg.AppLimited {
		return nil, fmt.Errorf("mptcp: Config.TransferBytes and Config.AppLimited are mutually exclusive; use TransferBytes for a fixed-size transfer or AppLimited with Produce for a streaming source")
	}
	alg, err := core.New(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		eng:     eng,
		cfg:     cfg,
		goodput: trace.NewRateMeter(eng, 1),
		views:   make([]core.View, len(paths)),
		ctl:     make([]subCtl, len(paths)),
	}
	c.SetAlgorithm(alg)
	mss := cfg.Transport.MSS
	if mss == 0 {
		mss = 1448
	}
	if cfg.TransferBytes > 0 {
		c.totalSegs = (cfg.TransferBytes + int64(mss) - 1) / int64(mss)
	}
	for i, p := range paths {
		c.subs = append(c.subs, tcp.NewSubflow(eng, cfg.Transport, c, flowID, i, p))
	}
	return c, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(eng *sim.Engine, cfg Config, flowID uint64, paths ...*netem.Path) *Conn {
	c, err := New(eng, cfg, flowID, paths...)
	if err != nil {
		panic(err)
	}
	return c
}

// SetAlgorithm swaps the congestion-control algorithm instance; call it
// before Start (used for parameterized variants outside the registry).
// Time-aware algorithms (core.ClockUser, e.g. CUBIC) receive the engine
// clock here.
func (c *Conn) SetAlgorithm(alg core.Algorithm) {
	if cu, ok := alg.(core.ClockUser); ok {
		cu.SetClock(func() float64 { return c.eng.Now().Seconds() })
	}
	c.alg = alg
}

// Start begins the transfer on every subflow.
func (c *Conn) Start() {
	for _, s := range c.subs {
		s.Start()
	}
}

// Alg implements tcp.Coordinator.
func (c *Conn) Alg() core.Algorithm { return c.alg }

// Views implements tcp.Coordinator. The returned slice is reused between
// calls; algorithms must not retain it.
func (c *Conn) Views() []core.View {
	for i, s := range c.subs {
		c.views[i] = s.View()
	}
	return c.views
}

// AllowSend implements tcp.Coordinator.
func (c *Conn) AllowSend(r int) bool {
	if c.totalSegs > 0 && c.sentSegs >= c.totalSegs {
		return false
	}
	if c.cfg.AppLimited && c.sentSegs >= c.producedSegs {
		return false
	}
	if c.cfg.RwndSegments > 0 && c.inflight() >= c.cfg.RwndSegments {
		return false
	}
	if ctl := &c.ctl[r]; ctl.disabled || ctl.failed {
		return false
	}
	return true
}

// SetSubflowEnabled gates new data on subflow r (in-flight data still
// drains). Path-selection baselines use it to suspend expensive paths.
func (c *Conn) SetSubflowEnabled(r int, enabled bool) {
	c.ctl[r].disabled = !enabled
	if enabled {
		c.subs[r].Start()
	}
}

// SubflowEnabled reports whether subflow r may send new data.
func (c *Conn) SubflowEnabled(r int) bool {
	return !c.ctl[r].disabled
}

// NoteSend implements tcp.Coordinator. It is called once per unique
// segment (retransmissions are not re-charged), so sentSegs counts
// distinct application segments handed to subflows.
func (c *Conn) NoteSend(r int) { c.sentSegs++ }

// NoteAcked implements tcp.Coordinator. Acks on a subflow carrying
// re-injection credit are discounted against it first (see the failover
// fields): those segments were handed back to the connection when the
// subflow failed, so counting them again would double-book delivery.
func (c *Conn) NoteAcked(r int, pkts int) {
	counted := int64(pkts)
	if disc := c.ctl[r].reinjectCredit; disc > 0 {
		if disc > counted {
			disc = counted
		}
		c.ctl[r].reinjectCredit -= disc
		counted -= disc
	}
	if counted <= 0 {
		return
	}
	c.ackedSegs += counted
	mss := c.cfg.Transport.MSS
	if mss == 0 {
		mss = 1448
	}
	c.goodput.Count(int(counted) * mss)
	if !c.done && c.totalSegs > 0 && c.ackedSegs >= c.totalSegs {
		c.done = true
		c.completedAt = c.eng.Now()
		if c.OnComplete != nil {
			c.OnComplete(c.completedAt)
		}
	}
}

// NoteFailed implements tcp.Coordinator: subflow r declared its path dead
// with unacked segments outstanding. The connection takes that data back —
// sentSegs drops so surviving subflows may send it afresh — and records the
// matching ack discount. A subflow that failed before with credit still
// unconsumed is only charged the delta, keeping the credit equal to the
// frozen range even across repeated fail/revive cycles.
func (c *Conn) NoteFailed(r int, unacked int64) {
	c.ctl[r].failed = true
	newCredit := unacked - c.ctl[r].reinjectCredit
	if newCredit < 0 {
		newCredit = 0
	}
	c.sentSegs -= newCredit
	c.ctl[r].reinjectCredit += newCredit
	c.reinjectedSegs += newCredit
	if obs, ok := c.alg.(core.MembershipObserver); ok {
		obs.OnSubflowDown(r)
	}
	// Kick the survivors: the freed budget is theirs to claim right now.
	for i, s := range c.subs {
		if i != r && !c.ctl[i].failed {
			s.Start()
		}
	}
}

// NoteRevived implements tcp.Coordinator: subflow r's path healed and the
// subflow is back in service (it restarts itself; we only lift the gate).
func (c *Conn) NoteRevived(r int) {
	c.ctl[r].failed = false
	if obs, ok := c.alg.(core.MembershipObserver); ok {
		obs.OnSubflowUp(r)
	}
}

// SubflowFailed reports whether subflow r is currently marked dead.
func (c *Conn) SubflowFailed(r int) bool { return c.ctl[r].failed }

// ReinjectedSegs reports the total segments handed back by failing
// subflows for re-injection on survivors over the connection's lifetime.
func (c *Conn) ReinjectedSegs() int64 { return c.reinjectedSegs }

// SentSegs reports the distinct application segments currently charged to
// the connection: incremented once per new segment (never for
// retransmissions) and decremented when a failing subflow hands its unacked
// range back for re-injection. The conservation identity
// Σ_r MaxSent_r = SentSegs + ReinjectedSegs holds at every instant;
// internal/check asserts it.
func (c *Conn) SentSegs() int64 { return c.sentSegs }

// AckedSegs reports the segments counted as delivered at the connection
// level (acks consumed by re-injection credit excluded, so a segment
// delivered both by a revived subflow and by its re-injected copy counts
// once).
func (c *Conn) AckedSegs() int64 { return c.ackedSegs }

// ReinjectCredits returns a copy of the per-subflow re-injection credits:
// the number of future acks on each subflow that will be discounted because
// the segments they cover were handed back at failure time.
func (c *Conn) ReinjectCredits() []int64 {
	out := make([]int64, len(c.ctl))
	for i := range c.ctl {
		out[i] = c.ctl[i].reinjectCredit
	}
	return out
}

func (c *Conn) inflight() int64 {
	var sum int64
	for _, s := range c.subs {
		sum += s.Inflight()
	}
	return sum
}

// Produce makes bytes of application data available to an AppLimited
// connection and kicks the subflows so they pick it up immediately.
func (c *Conn) Produce(bytes int64) {
	mss := c.cfg.Transport.MSS
	if mss == 0 {
		mss = 1448
	}
	c.producedSegs += (bytes + int64(mss) - 1) / int64(mss)
	for _, s := range c.subs {
		s.Start()
	}
}

// ProducedBytes reports the application data made available so far.
func (c *Conn) ProducedBytes() int64 {
	mss := c.cfg.Transport.MSS
	if mss == 0 {
		mss = 1448
	}
	return c.producedSegs * int64(mss)
}

// Subflows returns the connection's subflows.
func (c *Conn) Subflows() []*tcp.Subflow { return c.subs }

// Done reports whether a finite transfer has fully completed.
func (c *Conn) Done() bool { return c.done }

// CompletedAt returns the completion instant of a finite transfer (zero
// until Done).
func (c *Conn) CompletedAt() sim.Time { return c.completedAt }

// AckedBytes returns the goodput delivered so far in bytes.
func (c *Conn) AckedBytes() uint64 { return c.goodput.TotalBytes() }

// Goodput returns the connection's goodput meter.
func (c *Conn) Goodput() *trace.RateMeter { return c.goodput }

// MeanThroughputBps returns the average goodput over [0, now] in bits per
// second (or over [0, completion] for finished transfers).
func (c *Conn) MeanThroughputBps() float64 {
	end := c.eng.Now()
	if c.done {
		end = c.completedAt
	}
	if end <= 0 {
		return 0
	}
	return float64(c.AckedBytes()) * 8 * float64(sim.Second) / float64(end)
}

// MeanSRTTSeconds returns the average smoothed RTT across subflows.
func (c *Conn) MeanSRTTSeconds() float64 {
	var sum float64
	for _, s := range c.subs {
		sum += s.SRTT().Seconds()
	}
	return sum / float64(len(c.subs))
}

var _ tcp.Coordinator = (*Conn)(nil)
