// Package workload provides the traffic generators of the paper's
// evaluation: unresponsive cross traffic with Pareto-distributed bursts
// (the Fig. 5b / Fig. 7-9 scenario generator), constant-bit-rate sources,
// and permutation traffic matrices for the datacenter experiments.
package workload

import (
	"math"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// Sink is a packet endpoint that counts what arrives.
type Sink struct {
	Pkts  uint64
	Bytes uint64
}

// Receive implements netem.Endpoint.
func (s *Sink) Receive(p *netem.Packet) {
	s.Pkts++
	s.Bytes += uint64(p.Size)
	p.Release()
}

var _ netem.Endpoint = (*Sink)(nil)

// CBR injects fixed-size packets at a constant bit rate into a route.
type CBR struct {
	eng     *sim.Engine
	route   []*netem.Link
	sink    *Sink
	pool    netem.Pool
	rate    int64
	pktSize int
	sent    uint64
	stopped bool
	timer   sim.Timer
}

// NewCBR creates a constant-bit-rate source over the given links.
func NewCBR(eng *sim.Engine, route []*netem.Link, rateBps int64, pktSize int) *CBR {
	if pktSize <= 0 {
		pktSize = 1500
	}
	return &CBR{eng: eng, route: route, sink: &Sink{}, rate: rateBps, pktSize: pktSize}
}

// Start begins transmission.
func (c *CBR) Start() { c.emit() }

// Stop halts transmission and cancels the pending emit event.
func (c *CBR) Stop() {
	c.stopped = true
	c.timer.Stop()
}

// Sent reports packets injected.
func (c *CBR) Sent() uint64 { return c.sent }

// Delivered reports packets that survived to the sink.
func (c *CBR) Delivered() uint64 { return c.sink.Pkts }

func (c *CBR) interval() sim.Time {
	return sim.Time(int64(c.pktSize) * 8 * int64(sim.Second) / c.rate)
}

func (c *CBR) emit() {
	if c.stopped {
		return
	}
	p := c.pool.Get()
	p.Size = c.pktSize
	p.SentAt = c.eng.Now()
	p.SetRoute(c.route, c.sink)
	p.Send()
	c.sent++
	c.timer = c.eng.After(c.interval(), c.emit)
}

// ParetoOnOff is the paper's bursty cross-traffic generator (§VI-B): the
// source alternates Off and On periods; Off durations are exponential with
// the given mean (bursts "occur at random intervals"), On durations are
// Pareto-distributed with the given mean, and during On it transmits at a
// fixed rate.
type ParetoOnOff struct {
	eng     *sim.Engine
	route   []*netem.Link
	sink    *Sink
	pool    netem.Pool
	rate    int64
	pktSize int

	meanOff sim.Time
	meanOn  sim.Time
	shape   float64

	active  bool
	stopped bool
	sent    uint64
	onTime  sim.Time

	// Live timer handles, cancelled by Stop: the pending Off-gap, the
	// current burst's tick chain, and the current burst's end event. A
	// stopped generator must leave nothing in the event heap — a live gap
	// timer would otherwise fire a whole post-Stop burst.
	gapTimer  sim.Timer
	tickTimer sim.Timer
	endTimer  sim.Timer
}

// ParetoConfig parameterizes the generator; zero values take the paper's
// settings (45 Mb/s bursts, mean gap 10 s, mean burst 5 s, shape 1.5).
type ParetoConfig struct {
	RateBps int64
	PktSize int
	MeanOff sim.Time
	MeanOn  sim.Time
	Shape   float64
}

// NewParetoOnOff creates the generator over the given links.
func NewParetoOnOff(eng *sim.Engine, route []*netem.Link, cfg ParetoConfig) *ParetoOnOff {
	if cfg.RateBps == 0 {
		cfg.RateBps = 45 * netem.Mbps
	}
	if cfg.PktSize == 0 {
		cfg.PktSize = 1500
	}
	if cfg.MeanOff == 0 {
		cfg.MeanOff = 10 * sim.Second
	}
	if cfg.MeanOn == 0 {
		cfg.MeanOn = 5 * sim.Second
	}
	if cfg.Shape == 0 {
		cfg.Shape = 1.5
	}
	return &ParetoOnOff{
		eng:     eng,
		route:   route,
		sink:    &Sink{},
		rate:    cfg.RateBps,
		pktSize: cfg.PktSize,
		meanOff: cfg.MeanOff,
		meanOn:  cfg.MeanOn,
		shape:   cfg.Shape,
	}
}

// Start begins the Off/On cycle (starting Off).
func (p *ParetoOnOff) Start() { p.scheduleOn() }

// Stop halts the generator and cancels its pending events, so a stopped
// source neither bursts again nor keeps the event heap populated.
func (p *ParetoOnOff) Stop() {
	p.stopped = true
	p.active = false
	p.gapTimer.Stop()
	p.tickTimer.Stop()
	p.endTimer.Stop()
}

// Active reports whether a burst is in progress.
func (p *ParetoOnOff) Active() bool { return p.active }

// Sent reports packets injected so far.
func (p *ParetoOnOff) Sent() uint64 { return p.sent }

// OnTime reports the cumulative burst duration so far.
func (p *ParetoOnOff) OnTime() sim.Time { return p.onTime }

func (p *ParetoOnOff) scheduleOn() {
	if p.stopped {
		return
	}
	gap := p.expDuration(p.meanOff)
	p.gapTimer = p.eng.After(gap, p.burst)
}

func (p *ParetoOnOff) burst() {
	if p.stopped {
		return
	}
	dur := p.paretoDuration()
	p.active = true
	p.onTime += dur
	end := p.eng.Now() + dur
	interval := sim.Time(int64(p.pktSize) * 8 * int64(sim.Second) / p.rate)
	// One emit closure per burst, reused along the whole chain (the old code
	// allocated one per packet). Each burst's chain captures its own end, so
	// a straggler tick from a finished burst stays inert even if the next
	// burst has already begun.
	var tick func()
	tick = func() {
		if p.stopped || p.eng.Now() >= end {
			return
		}
		pkt := p.pool.Get()
		pkt.Size = p.pktSize
		pkt.SentAt = p.eng.Now()
		pkt.SetRoute(p.route, p.sink)
		pkt.Send()
		p.sent++
		p.tickTimer = p.eng.After(interval, tick)
	}
	tick()
	p.endTimer = p.eng.At(end, func() {
		p.active = false
		p.scheduleOn()
	})
}

// expDuration draws an exponential duration with the given mean.
func (p *ParetoOnOff) expDuration(mean sim.Time) sim.Time {
	u := p.eng.Rand().Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return sim.Time(float64(mean) * -math.Log(u))
}

// paretoDuration draws a Pareto duration with the configured mean and
// shape: scale = mean·(shape-1)/shape.
func (p *ParetoOnOff) paretoDuration() sim.Time {
	scale := float64(p.meanOn) * (p.shape - 1) / p.shape
	u := p.eng.Rand().Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return sim.Time(scale / math.Pow(u, 1/p.shape))
}

// Permutation returns a random permutation of n hosts with no fixed points
// (every host sends to a different host), drawn from the engine's RNG.
func Permutation(eng *sim.Engine, n int) []int {
	if n < 2 {
		return nil
	}
	perm := eng.Rand().Perm(n)
	// Repair fixed points by swapping with a neighbour.
	for i, v := range perm {
		if v == i {
			j := (i + 1) % n
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return perm
}
