package workload

import (
	"math"
	"testing"
	"testing/quick"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

func testLink(eng *sim.Engine, rate int64) *netem.Link {
	return netem.NewLink(eng, netem.LinkConfig{
		Name: "w", Rate: rate, Delay: sim.Millisecond, QueueLimit: 1000,
	})
}

func TestCBRRate(t *testing.T) {
	eng := sim.NewEngine(1)
	l := testLink(eng, netem.Gbps)
	c := NewCBR(eng, []*netem.Link{l}, 12*netem.Mbps, 1500)
	c.Start()
	eng.Run(10 * sim.Second)
	// 12 Mb/s for 10 s = 15 MB = 10000 packets of 1500 B.
	if got := c.Sent(); got < 9990 || got > 10010 {
		t.Errorf("sent %d packets, want ~10000", got)
	}
	if c.Delivered() < c.Sent()-5 {
		t.Errorf("delivered %d of %d on an uncongested link", c.Delivered(), c.Sent())
	}
}

func TestCBRStop(t *testing.T) {
	eng := sim.NewEngine(1)
	l := testLink(eng, netem.Gbps)
	c := NewCBR(eng, []*netem.Link{l}, 10*netem.Mbps, 1500)
	c.Start()
	eng.At(sim.Second, c.Stop)
	eng.Run(10 * sim.Second)
	want := uint64(10e6) / (1500 * 8)
	if got := c.Sent(); got > want+2 {
		t.Errorf("sent %d packets after Stop at 1 s, want <= ~%d", got, want)
	}
}

func TestParetoOnOffDutyCycle(t *testing.T) {
	eng := sim.NewEngine(42)
	l := testLink(eng, netem.Gbps)
	p := NewParetoOnOff(eng, []*netem.Link{l}, ParetoConfig{
		RateBps: 45 * netem.Mbps,
		MeanOff: 10 * sim.Second,
		MeanOn:  5 * sim.Second,
	})
	p.Start()
	const horizon = 2000 * sim.Second
	eng.Run(horizon)

	// Expected duty cycle 5/(10+5) = 1/3. Pareto(1.5) has infinite
	// variance, so accept a wide band over this horizon.
	duty := float64(p.OnTime()) / float64(horizon)
	if duty < 0.15 || duty > 0.6 {
		t.Errorf("duty cycle %.2f, want around 1/3", duty)
	}
	// Rate during bursts should be ~45 Mb/s: sent bytes / on-time.
	rate := float64(p.Sent()) * 1500 * 8 / p.OnTime().Seconds()
	if math.Abs(rate-45e6) > 2e6 {
		t.Errorf("burst rate %.1f Mb/s, want 45", rate/1e6)
	}
}

func TestParetoOnOffStops(t *testing.T) {
	eng := sim.NewEngine(7)
	l := testLink(eng, netem.Gbps)
	p := NewParetoOnOff(eng, []*netem.Link{l}, ParetoConfig{})
	p.Start()
	eng.At(30*sim.Second, p.Stop)
	eng.Run(60 * sim.Second)
	at30 := p.Sent()
	eng.Run(200 * sim.Second)
	if p.Sent() != at30 {
		t.Errorf("generator kept sending after Stop: %d -> %d", at30, p.Sent())
	}
}

// TestParetoOnOffStopCancelsPendingEvents is the regression test for the
// timer leak: Stop used to only set a flag, leaving the Off-gap (or burst
// tick/end) timer live in the event heap — a zombie event that could fire a
// whole post-Stop burst and kept a "drained" engine from ever emptying.
func TestParetoOnOffStopCancelsPendingEvents(t *testing.T) {
	// Stop during the Off gap: the pending burst timer must be cancelled.
	eng := sim.NewEngine(7)
	l := testLink(eng, netem.Gbps)
	p := NewParetoOnOff(eng, []*netem.Link{l}, ParetoConfig{})
	p.Start()
	if eng.Pending() == 0 {
		t.Fatal("Start scheduled nothing")
	}
	p.Stop()
	if n := eng.Pending(); n != 0 {
		t.Errorf("Stop during Off gap left %d events in the heap", n)
	}

	// Stop mid-burst: the tick chain and the burst-end event must both go.
	// A probe event halts the engine as soon as a burst is in progress.
	eng = sim.NewEngine(7)
	l = testLink(eng, netem.Gbps)
	p = NewParetoOnOff(eng, []*netem.Link{l}, ParetoConfig{})
	p.Start()
	var watch func()
	watch = func() {
		if p.Active() {
			eng.Stop()
			return
		}
		eng.ScheduleAfter(sim.Millisecond, watch)
	}
	eng.ScheduleAfter(sim.Millisecond, watch)
	eng.Run(1000 * sim.Second)
	if !p.Active() {
		t.Fatal("generator never entered a burst")
	}
	p.Stop()
	if p.Active() {
		t.Error("generator still Active after Stop")
	}
	at := p.Sent()
	// Packets already in flight still traverse the link, but generation has
	// ceased and nothing the generator owns is left behind: the heap drains
	// completely instead of carrying burst timers to their natural expiry.
	eng.Run(2000 * sim.Second)
	if p.Sent() != at {
		t.Errorf("generator kept sending after mid-burst Stop: %d -> %d", at, p.Sent())
	}
	if n := eng.Pending(); n != 0 {
		t.Errorf("%d events left in the heap after drain", n)
	}
}

func TestParetoDurationMean(t *testing.T) {
	eng := sim.NewEngine(3)
	p := NewParetoOnOff(eng, nil, ParetoConfig{MeanOn: 5 * sim.Second, Shape: 2.5})
	// Shape 2.5 has finite variance; the sample mean should approach 5 s.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.paretoDuration().Seconds()
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.5 {
		t.Errorf("Pareto sample mean %.2f s, want ~5 s", mean)
	}
}

func TestExpDurationMean(t *testing.T) {
	eng := sim.NewEngine(3)
	p := NewParetoOnOff(eng, nil, ParetoConfig{})
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.expDuration(10 * sim.Second).Seconds()
	}
	if mean := sum / n; math.Abs(mean-10) > 0.5 {
		t.Errorf("exponential sample mean %.2f s, want ~10 s", mean)
	}
}

func TestPermutationProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%60) + 2
		eng := sim.NewEngine(seed)
		perm := Permutation(eng, n)
		if len(perm) != n {
			return false
		}
		seen := make([]bool, n)
		for i, v := range perm {
			if v == i || v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPermutationTrivialSizes(t *testing.T) {
	eng := sim.NewEngine(1)
	if Permutation(eng, 1) != nil {
		t.Error("Permutation(1) should be nil (no non-self mapping exists)")
	}
	if got := Permutation(eng, 2); len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("Permutation(2) = %v, want [1 0]", got)
	}
}

func TestSinkCounts(t *testing.T) {
	var s Sink
	s.Receive(&netem.Packet{Size: 100})
	s.Receive(&netem.Packet{Size: 200})
	if s.Pkts != 2 || s.Bytes != 300 {
		t.Errorf("sink counted %d pkts %d bytes, want 2/300", s.Pkts, s.Bytes)
	}
}
