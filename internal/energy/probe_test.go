package energy

import (
	"math"
	"testing"

	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// The Eq. 2 per-path form: a connection splitting traffic unevenly across
// a short and a long path must report a traffic-weighted RTT closer to
// the path that carries more.
func TestConnProbeTrafficWeightedRTT(t *testing.T) {
	eng := sim.NewEngine(1)
	mk := func(name string, rate int64, delay sim.Time) *netem.Path {
		fwd := netem.NewLink(eng, netem.LinkConfig{Name: name, Rate: rate, Delay: delay, QueueLimit: 200})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "r", Rate: rate, Delay: delay, QueueLimit: 200})
		return &netem.Path{Name: name, Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	}
	// Fast path carries ~5x the traffic of the slow one.
	fast := mk("fast", 50*netem.Mbps, 5*sim.Millisecond)
	slow := mk("slow", 10*netem.Mbps, 60*sim.Millisecond)
	c := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia"}, 1, fast, slow)
	probe := ConnProbe(c)
	c.Start()

	var weighted float64
	eng.At(20*sim.Second, func() { weighted = probe(20 * sim.Second).MeanRTTSeconds })
	eng.Run(20 * sim.Second)

	s0 := c.Subflows()[0].SRTT().Seconds()
	s1 := c.Subflows()[1].SRTT().Seconds()
	plain := (s0 + s1) / 2
	if weighted >= plain {
		t.Errorf("traffic-weighted RTT %.1fms not below unweighted mean %.1fms (fast %.1f, slow %.1f)",
			weighted*1000, plain*1000, s0*1000, s1*1000)
	}
	if weighted < s0 || weighted > s1 {
		t.Errorf("weighted RTT %.1fms outside [fast %.1f, slow %.1f]",
			weighted*1000, s0*1000, s1*1000)
	}
}

func TestMeterDefaultInterval(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMeter(eng, Constant(2), func(sim.Time) Sample { return Sample{} }, 0)
	m.Start()
	eng.Run(sim.Second)
	if math.Abs(m.Joules()-2) > 0.05 {
		t.Errorf("Joules = %v over 1s at 2W with default interval, want ~2", m.Joules())
	}
}

func TestXeonAboveI7(t *testing.T) {
	s := Sample{ThroughputBps: 100e6, Subflows: 2, MeanRTTSeconds: 0.01}
	if NewXeon().Power(s) <= NewI7().Power(s) {
		t.Error("Xeon server power not above the desktop i7")
	}
}
