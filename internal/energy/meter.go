package energy

import (
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/tcp"
	"mptcpsim/internal/trace"
)

// DefaultInterval is the power sampling period (10 ms of simulated time,
// matching RAPL-style polling).
const DefaultInterval = 10 * sim.Millisecond

// Probe produces the instantaneous Sample a Meter feeds its power model.
// The probe's window is the meter's sampling interval.
type Probe func(window sim.Time) Sample

// Meter integrates a power model over simulated time: every interval it
// probes the host's activity, evaluates the model and accumulates
// P·Δt joules, optionally recording the power time series.
type Meter struct {
	eng      *sim.Engine
	model    Model
	probe    Probe
	interval sim.Time

	joules   float64
	lastTick sim.Time
	stopped  bool
	tickFn   func()

	// Trace, when set before Start, receives (time, watts) samples.
	Trace *trace.Series
}

// NewMeter creates a meter; interval 0 takes DefaultInterval.
func NewMeter(eng *sim.Engine, model Model, probe Probe, interval sim.Time) *Meter {
	if interval <= 0 {
		interval = DefaultInterval
	}
	m := &Meter{eng: eng, model: model, probe: probe, interval: interval}
	m.tickFn = m.tick
	return m
}

// Start begins periodic sampling. The meter reschedules itself until Stop
// is called or the engine's horizon cuts it off.
func (m *Meter) Start() {
	m.lastTick = m.eng.Now()
	m.eng.ScheduleAfter(m.interval, m.tickFn)
}

// Stop halts sampling after the current interval.
func (m *Meter) Stop() { m.stopped = true }

func (m *Meter) tick() {
	if m.stopped {
		return
	}
	now := m.eng.Now()
	dt := now - m.lastTick
	m.lastTick = now
	watts := m.model.Power(m.probe(dt))
	m.joules += watts * dt.Seconds()
	if m.Trace != nil {
		m.Trace.Add(now, watts)
	}
	m.eng.ScheduleAfter(m.interval, m.tickFn)
}

// Joules returns the energy integrated so far.
func (m *Meter) Joules() float64 { return m.joules }

// MeanPower returns the average power over the metered span so far.
func (m *Meter) MeanPower() float64 {
	elapsed := m.eng.Now()
	if elapsed <= 0 {
		return 0
	}
	return m.joules / elapsed.Seconds()
}

// ConnProbe builds a Probe over a set of connections terminating at one
// host: throughput is the sum of their goodput over the window; RTT is the
// traffic-weighted mean across subflows, matching Eq. 2's per-path form
// Σ_r P_r(τ_r, RTT_r) — a path only contributes its delay in proportion to
// the traffic it carries. Completed connections stop contributing.
func ConnProbe(conns ...*mptcp.Conn) Probe {
	var lastBytes uint64
	lastAcked := make(map[*tcp.Subflow]int64)
	return func(window sim.Time) Sample {
		var total uint64
		var subflows int
		var rttWeighted, weight, rttPlain float64
		for _, c := range conns {
			total += c.AckedBytes()
			if c.Done() {
				continue
			}
			for _, s := range c.Subflows() {
				subflows++
				rtt := s.SRTT().Seconds()
				rttPlain += rtt
				acked := s.Acked()
				d := float64(acked - lastAcked[s])
				lastAcked[s] = acked
				rttWeighted += d * rtt
				weight += d
			}
		}
		delta := total - lastBytes
		lastBytes = total
		smp := Sample{Subflows: subflows}
		if window > 0 {
			smp.ThroughputBps = float64(delta) * 8 / window.Seconds()
		}
		switch {
		case weight > 0:
			smp.MeanRTTSeconds = rttWeighted / weight
		case subflows > 0:
			smp.MeanRTTSeconds = rttPlain / float64(subflows)
		}
		return smp
	}
}

// PerGigabit converts joules and delivered bytes into the energy-overhead
// metric of Figs. 12-15: joules per gigabit of goodput. It returns 0 when
// nothing was delivered.
func PerGigabit(joules float64, bytes uint64) float64 {
	gbits := float64(bytes) * 8 / 1e9
	if gbits <= 0 {
		return 0
	}
	return joules / gbits
}
