package energy

import (
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/tcp"
	"mptcpsim/internal/trace"
)

// DefaultInterval is the power sampling period (10 ms of simulated time,
// matching RAPL-style polling).
const DefaultInterval = 10 * sim.Millisecond

// Probe produces the instantaneous Sample a Meter feeds its power model.
// The probe's window is the meter's sampling interval.
type Probe func(window sim.Time) Sample

// Meter integrates a power model over simulated time: every interval it
// probes the host's activity, evaluates the model and accumulates
// P·Δt joules, optionally recording the power time series.
//
// The meter only accounts for time while it is running: Start marks the
// beginning of the metered span, Stop integrates the residual partial
// interval and halts sampling, and MeanPower divides by the metered span —
// not the engine clock — so a meter started mid-run reports the correct
// average. Start while running is a no-op (no double-counting); Start after
// Stop resumes metering, extending the same accumulators.
type Meter struct {
	eng      *sim.Engine
	model    Model
	probe    Probe
	interval sim.Time

	joules   float64
	metered  sim.Time // total span integrated so far
	lastTick sim.Time
	started  bool
	stopped  bool
	armed    bool // a tick is scheduled and will fire
	tickFn   func()

	// Trace, when set before Start, receives (time, watts) samples.
	Trace *trace.Series
}

// NewMeter creates a meter; interval 0 takes DefaultInterval.
func NewMeter(eng *sim.Engine, model Model, probe Probe, interval sim.Time) *Meter {
	if interval <= 0 {
		interval = DefaultInterval
	}
	m := &Meter{eng: eng, model: model, probe: probe, interval: interval}
	m.tickFn = m.tick
	return m
}

// Start begins periodic sampling. The meter reschedules itself until Stop
// is called or the engine's horizon cuts it off. Calling Start on a running
// meter is a no-op; calling it after Stop resumes metering from now.
func (m *Meter) Start() {
	if m.started && !m.stopped {
		return
	}
	m.started = true
	m.stopped = false
	m.lastTick = m.eng.Now()
	if !m.armed {
		m.armed = true
		m.eng.ScheduleAfter(m.interval, m.tickFn)
	}
}

// Stop integrates the residual partial interval since the last tick and
// halts sampling. Stop on an idle meter is a no-op.
func (m *Meter) Stop() {
	if !m.started || m.stopped {
		return
	}
	m.Flush()
	m.stopped = true
}

// Flush integrates the span since the last tick immediately, without
// waiting for the next scheduled tick. Call it after the engine's horizon
// cuts sampling off (eng.Run returned before the final tick fired) so
// Joules and MeanPower cover the full run rather than dropping the last
// partial interval. Flushing a stopped or never-started meter is a no-op.
func (m *Meter) Flush() {
	if !m.started || m.stopped {
		return
	}
	now := m.eng.Now()
	dt := now - m.lastTick
	if dt <= 0 {
		return
	}
	m.lastTick = now
	m.metered += dt
	watts := m.model.Power(m.probe(dt))
	m.joules += watts * dt.Seconds()
	if m.Trace != nil {
		m.Trace.Add(now, watts)
	}
}

func (m *Meter) tick() {
	m.armed = false
	if m.stopped {
		return
	}
	m.Flush()
	m.armed = true
	m.eng.ScheduleAfter(m.interval, m.tickFn)
}

// Joules returns the energy integrated so far.
func (m *Meter) Joules() float64 { return m.joules }

// MeanPower returns the average power over the metered span so far — the
// time the meter was actually running, not the engine clock, so a meter
// started mid-run is not diluted by the unmetered prefix.
func (m *Meter) MeanPower() float64 {
	if m.metered <= 0 {
		return 0
	}
	return m.joules / m.metered.Seconds()
}

// ConnProbe builds a Probe over a set of connections terminating at one
// host: throughput is the sum of their goodput over the window; RTT is the
// traffic-weighted mean across subflows, matching Eq. 2's per-path form
// Σ_r P_r(τ_r, RTT_r) — a path only contributes its delay in proportion to
// the traffic it carries. Completed connections stop contributing.
func ConnProbe(conns ...*mptcp.Conn) Probe {
	var lastBytes uint64
	lastAcked := make(map[*tcp.Subflow]int64)
	return func(window sim.Time) Sample {
		var total uint64
		var subflows int
		var rttWeighted, weight, rttPlain float64
		for _, c := range conns {
			total += c.AckedBytes()
			if c.Done() {
				continue
			}
			for _, s := range c.Subflows() {
				subflows++
				rtt := s.SRTT().Seconds()
				rttPlain += rtt
				acked := s.Acked()
				d := float64(acked - lastAcked[s])
				lastAcked[s] = acked
				rttWeighted += d * rtt
				weight += d
			}
		}
		delta := total - lastBytes
		lastBytes = total
		smp := Sample{Subflows: subflows}
		if window > 0 {
			smp.ThroughputBps = float64(delta) * 8 / window.Seconds()
		}
		switch {
		case weight > 0:
			smp.MeanRTTSeconds = rttWeighted / weight
		case subflows > 0:
			smp.MeanRTTSeconds = rttPlain / float64(subflows)
		}
		return smp
	}
}

// PerGigabit converts joules and delivered bytes into the energy-overhead
// metric of Figs. 12-15: joules per gigabit of goodput. It returns 0 when
// nothing was delivered.
func PerGigabit(joules float64, bytes uint64) float64 {
	gbits := float64(bytes) * 8 / 1e9
	if gbits <= 0 {
		return 0
	}
	return joules / gbits
}
