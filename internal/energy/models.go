// Package energy implements the power/energy side of the paper: parametric
// host power models P_r(τ_r, RTT_r) calibrated to the paper's RAPL and
// Nexus-5 measurements (§III), and meters that integrate power over
// simulated time to produce the E_total of Eq. 2.
//
// Calibration anchors, taken from the paper's figures:
//   - Fig. 1: MPTCP consumes more CPU power than TCP and power grows with
//     the subflow count (per-subflow processing cost).
//   - Fig. 3a (Ethernet): power rises only ~15% from 200 Mb/s to 1 Gb/s —
//     a flat, sub-linear (square-root) dependence; total energy of a fixed
//     transfer therefore *falls* with throughput.
//   - Fig. 3b (WiFi): power rises ~90% from 10 to 50 Mb/s — linear with a
//     steep slope.
//   - Fig. 4: at fixed throughput, higher-RTT paths cost more CPU power.
//   - LTE model: Huang et al. (MobiSys 2012) — high base power when the
//     radio is active, small per-Mb/s slope for downlink.
package energy

import "math"

// Sample carries the instantaneous observables a power model maps to watts.
type Sample struct {
	// ThroughputBps is the host's current transport goodput in bits/s.
	ThroughputBps float64
	// Subflows is the number of active subflows terminating at the host.
	Subflows int
	// MeanRTTSeconds is the mean smoothed RTT across those subflows.
	MeanRTTSeconds float64
}

// Model maps host activity to instantaneous power in watts.
type Model interface {
	Name() string
	Power(s Sample) float64
}

// CPUModel is the wired-host CPU power model (the paper's RAPL package
// power): idle floor, a sub-linear throughput term, a per-subflow
// processing cost (Fig. 1) and an RTT-dependent term (Fig. 4 — more
// outstanding state and retransmission bookkeeping on long paths).
type CPUModel struct {
	ModelName string
	Idle      float64 // watts at zero traffic
	TputCoef  float64 // watts at RefRate (added as sqrt(τ/RefRate))
	RefRate   float64 // bits/s normalization
	PerFlow   float64 // watts per active subflow
	RTTCoef   float64 // watts per (τ/RefRate)·(RTT/RefRTT)
	RefRTT    float64 // seconds
}

// Name implements Model.
func (m *CPUModel) Name() string { return m.ModelName }

// Power implements Model.
func (m *CPUModel) Power(s Sample) float64 {
	p := m.Idle
	if s.ThroughputBps > 0 {
		norm := s.ThroughputBps / m.RefRate
		p += m.TputCoef * math.Sqrt(norm)
		p += m.RTTCoef * norm * (s.MeanRTTSeconds / m.RefRTT)
	}
	p += m.PerFlow * float64(s.Subflows)
	return p
}

// NewI7 returns the Quad-core i7-3770 model of the paper's testbed,
// calibrated so 200 Mb/s -> 1 Gb/s raises power by ~15-20% at LAN RTTs
// (Fig. 3a) while path delay changes power measurably at fixed throughput
// (Fig. 4) — the premise Eq. 2 builds on.
func NewI7() *CPUModel {
	return &CPUModel{
		ModelName: "i7-3770",
		Idle:      5.0,
		TputCoef:  2.0,
		RefRate:   1e9,
		PerFlow:   0.1,
		RTTCoef:   55.0,
		RefRTT:    0.1,
	}
}

// NewXeon returns the Octa-core Xeon E5-2680 v2 model (the paper's second
// machine type and the EC2 c4.xlarge host CPU): higher floor, same shape.
func NewXeon() *CPUModel {
	return &CPUModel{
		ModelName: "xeon-e5",
		Idle:      18.0,
		TputCoef:  6.0,
		RefRate:   1e9,
		PerFlow:   0.15,
		RTTCoef:   90.0,
		RefRTT:    0.1,
	}
}

// RadioModel is an affine radio power model: Base watts whenever the
// interface is active plus Slope watts per bit/s. WiFi and LTE instances
// follow the paper's Fig. 3b and Huang et al.'s LTE measurements.
type RadioModel struct {
	ModelName string
	IdleW     float64 // power when the interface carries no traffic
	Base      float64 // power when active
	Slope     float64 // watts per bit/s
}

// Name implements Model.
func (m *RadioModel) Name() string { return m.ModelName }

// Power implements Model.
func (m *RadioModel) Power(s Sample) float64 {
	if s.ThroughputBps <= 0 {
		return m.IdleW
	}
	return m.Base + m.Slope*s.ThroughputBps
}

// NewWiFi returns the WiFi radio model, calibrated so 10 -> 50 Mb/s raises
// power by ~90% (Fig. 3b).
func NewWiFi() *RadioModel {
	return &RadioModel{
		ModelName: "wifi",
		IdleW:     0.05,
		Base:      0.30,
		Slope:     8.7e-9, // 0.0087 W per Mb/s
	}
}

// NewLTE returns the LTE radio model after Huang et al. (MobiSys 2012):
// ~1.29 W base when the radio is in CONNECTED, ~52 mW per downlink Mb/s.
func NewLTE() *RadioModel {
	return &RadioModel{
		ModelName: "lte",
		IdleW:     0.03,
		Base:      1.288,
		Slope:     5.2e-8,
	}
}

// NexusModel composes the Nexus 5 of Fig. 2: SoC base power plus the WiFi
// and LTE radios, fed by per-interface samples.
type NexusModel struct {
	SoC  float64
	WiFi Model
	LTE  Model
}

// NewNexus returns the Fig. 2 handset model.
func NewNexus() *NexusModel {
	return &NexusModel{SoC: 0.45, WiFi: NewWiFi(), LTE: NewLTE()}
}

// Name implements Model (for the composite as a whole).
func (m *NexusModel) Name() string { return "nexus5" }

// Power implements Model, treating the sample as WiFi-only traffic.
func (m *NexusModel) Power(s Sample) float64 {
	return m.PowerSplit(s, Sample{})
}

// PowerSplit evaluates the handset with separate WiFi and LTE activity.
func (m *NexusModel) PowerSplit(wifi, lte Sample) float64 {
	return m.SoC + m.WiFi.Power(wifi) + m.LTE.Power(lte)
}

// Constant is a fixed-power model, useful in tests and as a switch/port
// energy stand-in.
type Constant float64

// Name implements Model.
func (c Constant) Name() string { return "constant" }

// Power implements Model.
func (c Constant) Power(Sample) float64 { return float64(c) }
