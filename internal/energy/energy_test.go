package energy

import (
	"math"
	"testing"
	"testing/quick"

	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/trace"
)

func TestCPUModelFig3aShape(t *testing.T) {
	// Fig. 3a: from 200 Mb/s to 1 Gb/s the package power rises by roughly
	// 15% — flat, sub-linear growth. The testbed is a LAN, so sub-ms RTTs.
	m := NewI7()
	low := m.Power(Sample{ThroughputBps: 200e6, Subflows: 2, MeanRTTSeconds: 0.0005})
	high := m.Power(Sample{ThroughputBps: 1000e6, Subflows: 2, MeanRTTSeconds: 0.0005})
	rise := (high - low) / low
	if rise < 0.10 || rise > 0.30 {
		t.Errorf("power rise 200M->1G = %.0f%%, want ~15-20%%", rise*100)
	}
}

func TestCPUModelFig1SubflowCost(t *testing.T) {
	// Fig. 1: power increases with the number of subflows; MPTCP (2+) above
	// TCP (1).
	m := NewI7()
	prev := 0.0
	for n := 1; n <= 8; n++ {
		p := m.Power(Sample{ThroughputBps: 100e6, Subflows: n, MeanRTTSeconds: 0.02})
		if p <= prev {
			t.Fatalf("power with %d subflows (%.2f W) not above %d subflows (%.2f W)",
				n, p, n-1, prev)
		}
		prev = p
	}
}

func TestCPUModelFig4RTTCost(t *testing.T) {
	// Fig. 4: at equal throughput, the high-RTT path costs more power.
	m := NewI7()
	low := m.Power(Sample{ThroughputBps: 100e6, Subflows: 2, MeanRTTSeconds: 0.02})
	high := m.Power(Sample{ThroughputBps: 100e6, Subflows: 2, MeanRTTSeconds: 0.1})
	if high <= low {
		t.Errorf("high-RTT power %.2f W <= low-RTT power %.2f W", high, low)
	}
}

func TestWiFiModelFig3bShape(t *testing.T) {
	// Fig. 3b: 10 -> 50 Mb/s raises WiFi power by ~90%.
	m := NewWiFi()
	low := m.Power(Sample{ThroughputBps: 10e6})
	high := m.Power(Sample{ThroughputBps: 50e6})
	rise := (high - low) / low
	if rise < 0.7 || rise > 1.1 {
		t.Errorf("WiFi power rise 10->50 Mb/s = %.0f%%, want ~90%%", rise*100)
	}
}

func TestLTEBaseDominates(t *testing.T) {
	// Huang et al.: the LTE radio's connected-state base power dwarfs the
	// per-bit cost at tens of Mb/s, and idle is far below active.
	m := NewLTE()
	idle := m.Power(Sample{})
	active := m.Power(Sample{ThroughputBps: 1e6})
	if active < 20*idle {
		t.Errorf("active LTE %.2f W not >> idle %.3f W", active, idle)
	}
	at20 := m.Power(Sample{ThroughputBps: 20e6})
	if at20 > 2*active {
		t.Errorf("LTE slope too steep: %.2f W at 20 Mb/s vs %.2f W at 1 Mb/s", at20, active)
	}
}

func TestNexusComposite(t *testing.T) {
	m := NewNexus()
	idle := m.PowerSplit(Sample{}, Sample{})
	wifiOnly := m.PowerSplit(Sample{ThroughputBps: 20e6}, Sample{})
	both := m.PowerSplit(Sample{ThroughputBps: 20e6}, Sample{ThroughputBps: 20e6})
	if !(idle < wifiOnly && wifiOnly < both) {
		t.Errorf("want idle < wifi-only < wifi+lte, got %.2f, %.2f, %.2f", idle, wifiOnly, both)
	}
	// Fig. 2's headline: MPTCP (both radios) costs much more than WiFi TCP.
	if both < wifiOnly+1 {
		t.Errorf("adding the LTE radio gained only %.2f W; expected > 1 W", both-wifiOnly)
	}
}

func TestPowerMonotoneInThroughputProperty(t *testing.T) {
	models := []Model{NewI7(), NewXeon(), NewWiFi(), NewLTE()}
	f := func(a, b uint32, flows uint8) bool {
		t1, t2 := float64(a%1000)*1e6, float64(b%1000)*1e6
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		n := int(flows%8) + 1
		for _, m := range models {
			p1 := m.Power(Sample{ThroughputBps: t1, Subflows: n, MeanRTTSeconds: 0.05})
			p2 := m.Power(Sample{ThroughputBps: t2, Subflows: n, MeanRTTSeconds: 0.05})
			if p1 > p2+1e-9 {
				return false
			}
			if p1 <= 0 || p2 <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeterIntegratesConstantPower(t *testing.T) {
	eng := sim.NewEngine(1)
	probe := func(sim.Time) Sample { return Sample{} }
	m := NewMeter(eng, Constant(7), probe, 10*sim.Millisecond)
	m.Start()
	eng.Run(2 * sim.Second)
	if math.Abs(m.Joules()-14) > 0.2 {
		t.Errorf("Joules = %.3f, want 7 W * 2 s = 14 J", m.Joules())
	}
	if math.Abs(m.MeanPower()-7) > 0.1 {
		t.Errorf("MeanPower = %.3f, want 7 W", m.MeanPower())
	}
}

func TestMeterStop(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMeter(eng, Constant(1), func(sim.Time) Sample { return Sample{} }, 10*sim.Millisecond)
	m.Start()
	eng.At(sim.Second, m.Stop)
	eng.Run(5 * sim.Second)
	if math.Abs(m.Joules()-1) > 0.05 {
		t.Errorf("Joules = %.3f after Stop at 1 s, want ~1", m.Joules())
	}
	if eng.Pending() > 1 {
		t.Errorf("meter left %d events pending after Stop", eng.Pending())
	}
}

func TestMeterTrace(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMeter(eng, Constant(3), func(sim.Time) Sample { return Sample{} }, 100*sim.Millisecond)
	m.Trace = &trace.Series{Name: "power"}
	m.Start()
	eng.Run(sim.Second)
	if m.Trace.Len() != 10 {
		t.Errorf("trace has %d samples over 1 s at 100 ms, want 10", m.Trace.Len())
	}
	if m.Trace.Mean() != 3 {
		t.Errorf("trace mean %.2f, want 3", m.Trace.Mean())
	}
}

func TestConnProbeMeasuresGoodput(t *testing.T) {
	eng := sim.NewEngine(1)
	mk := func(name string) *netem.Path {
		fwd := netem.NewLink(eng, netem.LinkConfig{Name: name, Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "r", Rate: 10 * netem.Mbps, Delay: 5 * sim.Millisecond})
		return &netem.Path{Name: name, Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	}
	c := mptcp.MustNew(eng, mptcp.Config{Algorithm: "lia"}, 1, mk("a"), mk("b"))
	probe := ConnProbe(c)
	c.Start()

	var mid Sample
	eng.At(5*sim.Second, func() { mid = probe(5 * sim.Second) })
	eng.Run(5 * sim.Second)

	if mid.Subflows != 2 {
		t.Errorf("probe saw %d subflows, want 2", mid.Subflows)
	}
	if mid.ThroughputBps < 0.7*20e6 || mid.ThroughputBps > 20e6 {
		t.Errorf("probe throughput %.1f Mb/s, want near 20", mid.ThroughputBps/1e6)
	}
	if mid.MeanRTTSeconds <= 0 {
		t.Error("probe RTT not positive")
	}
}

func TestConnProbeDropsCompletedConns(t *testing.T) {
	eng := sim.NewEngine(1)
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "f", Rate: 10 * netem.Mbps, Delay: sim.Millisecond})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "r", Rate: 10 * netem.Mbps, Delay: sim.Millisecond})
	p := &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	c := mptcp.MustNew(eng, mptcp.Config{Algorithm: "reno", TransferBytes: 100 << 10}, 1, p)
	probe := ConnProbe(c)
	c.Start()
	eng.Run(30 * sim.Second)
	if !c.Done() {
		t.Fatal("transfer did not complete")
	}
	s := probe(sim.Second)
	if s.Subflows != 0 {
		t.Errorf("completed connection still reports %d subflows", s.Subflows)
	}
}

func TestPerGigabit(t *testing.T) {
	if got := PerGigabit(50, 125e6); math.Abs(got-50) > 1e-9 { // 1 Gb delivered
		t.Errorf("PerGigabit = %v, want 50", got)
	}
	if PerGigabit(50, 0) != 0 {
		t.Error("PerGigabit with zero bytes should be 0")
	}
}

func TestEnergyFallsWithThroughputForFixedTransfer(t *testing.T) {
	// The central observation behind Eq. 2 and Fig. 3a: for a fixed amount
	// of data on a wired host, higher throughput means less total energy,
	// because power is nearly flat in throughput while time shrinks.
	m := NewI7()
	transferBits := 8e9 // 1 GB
	energyAt := func(tput float64) float64 {
		p := m.Power(Sample{ThroughputBps: tput, Subflows: 2, MeanRTTSeconds: 0.02})
		return p * transferBits / tput
	}
	if e200, e1000 := energyAt(200e6), energyAt(1000e6); e1000 >= e200 {
		t.Errorf("energy at 1 Gb/s (%.0f J) not below energy at 200 Mb/s (%.0f J)", e1000, e200)
	}
}

func TestMeterMeanPowerMidRunStart(t *testing.T) {
	// Regression: MeanPower used to divide by the engine clock, so a meter
	// started at t=3s that then ran 1 s at 5 W reported 5/4 W instead of 5 W.
	eng := sim.NewEngine(1)
	m := NewMeter(eng, Constant(5), func(sim.Time) Sample { return Sample{} }, 10*sim.Millisecond)
	eng.At(3*sim.Second, m.Start)
	eng.Run(4 * sim.Second)
	m.Flush()
	if math.Abs(m.Joules()-5) > 0.05 {
		t.Errorf("Joules = %.3f for 5 W over 1 s metered, want 5", m.Joules())
	}
	if math.Abs(m.MeanPower()-5) > 0.05 {
		t.Errorf("MeanPower = %.3f for a meter started mid-run, want 5 W", m.MeanPower())
	}
}

func TestMeterStopResidual(t *testing.T) {
	// Regression: Stop used to drop the partial interval since the last
	// tick. A coarse-interval meter stopped off-cadence must integrate the
	// same energy as a fine-interval one on constant power.
	stopAt := 1045 * sim.Millisecond
	joulesWith := func(interval sim.Time) float64 {
		eng := sim.NewEngine(1)
		m := NewMeter(eng, Constant(2), func(sim.Time) Sample { return Sample{} }, interval)
		m.Start()
		eng.At(stopAt, m.Stop)
		eng.Run(3 * sim.Second)
		return m.Joules()
	}
	fine, coarse := joulesWith(sim.Millisecond), joulesWith(250*sim.Millisecond)
	want := 2 * stopAt.Seconds()
	if math.Abs(fine-want) > 1e-6 {
		t.Errorf("fine-interval Joules = %.6f, want %.6f", fine, want)
	}
	if math.Abs(coarse-want) > 1e-6 {
		t.Errorf("coarse-interval Joules = %.6f, want %.6f (residual dropped?)", coarse, want)
	}
}

func TestMeterFlushResidualAtHorizon(t *testing.T) {
	// The engine horizon can cut the final tick off; Flush integrates the
	// remainder so the record covers the full run.
	eng := sim.NewEngine(1)
	m := NewMeter(eng, Constant(4), func(sim.Time) Sample { return Sample{} }, 300*sim.Millisecond)
	m.Start()
	eng.Run(sim.Second) // ticks at 0.3, 0.6, 0.9; 0.1 s residual pending
	if got := m.Joules(); math.Abs(got-3.6) > 1e-9 {
		t.Fatalf("Joules before Flush = %.3f, want 3.6", got)
	}
	m.Flush()
	if got := m.Joules(); math.Abs(got-4) > 1e-9 {
		t.Errorf("Joules after Flush = %.3f, want 4 W * 1 s = 4", got)
	}
	m.Flush() // same-instant flush must not double-count
	if got := m.Joules(); math.Abs(got-4) > 1e-9 {
		t.Errorf("Joules after second Flush = %.3f, want 4", got)
	}
}

func TestMeterDoubleStart(t *testing.T) {
	// Regression: a second Start used to schedule a second tick chain,
	// doubling both the event load and (via duplicated intervals) the trace.
	eng := sim.NewEngine(1)
	m := NewMeter(eng, Constant(1), func(sim.Time) Sample { return Sample{} }, 100*sim.Millisecond)
	m.Trace = &trace.Series{Name: "p"}
	m.Start()
	eng.At(500*sim.Millisecond, m.Start) // must be a no-op while running
	eng.Run(sim.Second)
	if m.Trace.Len() != 10 {
		t.Errorf("trace has %d samples, want 10 (double-Start doubled the tick chain?)", m.Trace.Len())
	}
	if math.Abs(m.Joules()-1) > 1e-9 {
		t.Errorf("Joules = %.3f, want 1", m.Joules())
	}
}

func TestMeterRestartAfterStop(t *testing.T) {
	// Start after Stop resumes metering: joules and the metered span extend,
	// and the gap contributes neither.
	eng := sim.NewEngine(1)
	m := NewMeter(eng, Constant(3), func(sim.Time) Sample { return Sample{} }, 10*sim.Millisecond)
	m.Start()
	eng.At(sim.Second, m.Stop)
	eng.At(3*sim.Second, m.Start)
	eng.Run(4 * sim.Second)
	m.Flush()
	// 1 s metered + 1 s gap-free restart span = 2 s at 3 W.
	if math.Abs(m.Joules()-6) > 0.05 {
		t.Errorf("Joules = %.3f across Stop/Start, want 6", m.Joules())
	}
	if math.Abs(m.MeanPower()-3) > 0.05 {
		t.Errorf("MeanPower = %.3f across Stop/Start, want 3 W", m.MeanPower())
	}
}
