package faults

import (
	"testing"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

func twoWayPath(eng *sim.Engine) *netem.Path {
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "fwd", Rate: 10 * netem.Mbps, Delay: sim.Millisecond})
	rev := netem.NewLink(eng, netem.LinkConfig{Name: "rev", Rate: 10 * netem.Mbps, Delay: sim.Millisecond})
	return &netem.Path{Name: "p", Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
}

func TestOutageDownUp(t *testing.T) {
	eng := sim.NewEngine(1)
	p := twoWayPath(eng)
	Apply(eng, p, Outage{Down: 2 * sim.Second, Up: 5 * sim.Second})

	check := func(at sim.Time, down bool) {
		eng.Schedule(at, func() {
			for _, l := range PathLinks(p) {
				if l.Down() != down {
					t.Errorf("t=%v: link %s Down=%v, want %v", at.Duration(), l.Name(), l.Down(), down)
				}
			}
		})
	}
	check(sim.Second, false)
	check(3*sim.Second, true)
	check(6*sim.Second, false)
	eng.Run(10 * sim.Second)
}

func TestPermanentOutageAndLinkUp(t *testing.T) {
	eng := sim.NewEngine(1)
	p := twoWayPath(eng)
	Apply(eng, p, Outage{Down: sim.Second}) // Up unset: permanent
	Apply(eng, p, LinkUp{At: 4 * sim.Second})
	eng.Schedule(3*sim.Second, func() {
		if !p.Forward[0].Down() {
			t.Error("permanent outage not in effect at t=3s")
		}
	})
	eng.Run(10 * sim.Second)
	if p.Forward[0].Down() {
		t.Error("LinkUp did not revive the permanent outage")
	}
}

func TestFlapCyclesAndCount(t *testing.T) {
	eng := sim.NewEngine(1)
	p := twoWayPath(eng)
	// Down for 1s out of every 4s, starting at t=2: down [2,3), [6,7), done.
	Apply(eng, p, Flap{Start: 2 * sim.Second, Period: 4 * sim.Second, DownFor: sim.Second, Count: 2})
	downAt := func(at sim.Time) bool { return p.Forward[0].Down() }
	var samples []bool
	for _, at := range []sim.Time{sim.Second, 2500 * sim.Millisecond, 4 * sim.Second,
		6500 * sim.Millisecond, 8 * sim.Second, 10500 * sim.Millisecond} {
		at := at
		eng.Schedule(at, func() { samples = append(samples, downAt(at)) })
	}
	eng.Run(12 * sim.Second)
	want := []bool{false, true, false, true, false, false}
	for i, w := range want {
		if samples[i] != w {
			t.Errorf("sample %d: down=%v, want %v (flap must stop after Count cycles)", i, samples[i], w)
		}
	}
}

func TestFlapRejectsBadShape(t *testing.T) {
	eng := sim.NewEngine(1)
	p := twoWayPath(eng)
	// DownFor >= Period would never bring the link up; Schedule must refuse.
	Apply(eng, p, Flap{Start: 0, Period: sim.Second, DownFor: sim.Second})
	eng.Run(5 * sim.Second)
	if p.Forward[0].Down() {
		t.Error("degenerate flap was scheduled")
	}
}

func TestGilbertElliottRestoresConfiguredLoss(t *testing.T) {
	eng := sim.NewEngine(1)
	fwd := netem.NewLink(eng, netem.LinkConfig{Name: "fwd", Rate: 10 * netem.Mbps, Delay: sim.Millisecond, LossProb: 0.01})
	links := []*netem.Link{fwd}
	ApplyLinks(eng, links, GilbertElliott{
		Start: sim.Second, End: 5 * sim.Second,
		PGoodBad: 0.5, PBadGood: 0.5, LossGood: 0, LossBad: 0.9,
	})
	sawChange := false
	for i := 0; i < 40; i++ {
		eng.Schedule(sim.Second+sim.Time(i)*100*sim.Millisecond+50*sim.Millisecond, func() {
			if p := fwd.LossProb(); p == 0 || p == 0.9 {
				sawChange = true
			}
		})
	}
	eng.Run(10 * sim.Second)
	if !sawChange {
		t.Error("Gilbert-Elliott chain never drove the loss probability")
	}
	if got := fwd.LossProb(); got != 0.01 {
		t.Errorf("LossProb = %v after End, want configured 0.01 restored", got)
	}
}

func TestRampInterpolatesRateAndDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	p := twoWayPath(eng)
	Apply(eng, p, Ramp{
		Start: sim.Second, Duration: 2 * sim.Second, Steps: 4,
		RateTo: 2 * netem.Mbps, DelayTo: 101 * sim.Millisecond,
	})
	var midRate int64
	eng.Schedule(2*sim.Second+sim.Millisecond, func() { midRate = p.Forward[0].Rate() })
	eng.Run(5 * sim.Second)
	l := p.Forward[0]
	if l.Rate() != 2*netem.Mbps {
		t.Errorf("final rate = %d, want ramp target %d", l.Rate(), 2*netem.Mbps)
	}
	if l.Delay() != 101*sim.Millisecond {
		t.Errorf("final delay = %v, want ramp target 101ms", l.Delay().Duration())
	}
	if midRate <= 2*netem.Mbps || midRate >= 10*netem.Mbps {
		t.Errorf("mid-ramp rate = %d, want strictly between endpoints", midRate)
	}
}

func TestFaultScheduleDeterminism(t *testing.T) {
	// The same seed must produce the identical loss-probability trajectory
	// from the stochastic Gilbert-Elliott fault.
	run := func(seed int64) []float64 {
		eng := sim.NewEngine(seed)
		p := twoWayPath(eng)
		Apply(eng, p, GilbertElliott{PGoodBad: 0.3, PBadGood: 0.3, LossBad: 0.5})
		var got []float64
		for i := 0; i < 50; i++ {
			eng.Schedule(sim.Time(i)*100*sim.Millisecond+50*sim.Millisecond, func() {
				got = append(got, p.Forward[0].LossProb())
			})
		}
		eng.Run(6 * sim.Second)
		return got
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParseSpec(t *testing.T) {
	pfs, err := Parse("path1:down@2s,up@5s;wifi:flap@1s+6s/500ms,rate@5s=2Mbps,delay@5s=150ms,loss@3s=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if len(pfs) != 2 {
		t.Fatalf("parsed %d clauses, want 2", len(pfs))
	}
	if pfs[0].Target != "path1" || len(pfs[0].Faults) != 1 {
		t.Fatalf("clause 0 = %+v", pfs[0])
	}
	o, ok := pfs[0].Faults[0].(Outage)
	if !ok || o.Down != 2*sim.Second || o.Up != 5*sim.Second {
		t.Errorf("clause 0 fault = %#v, want Outage 2s→5s", pfs[0].Faults[0])
	}
	if pfs[1].Target != "wifi" || len(pfs[1].Faults) != 4 {
		t.Fatalf("clause 1 = %+v", pfs[1])
	}
	f, ok := pfs[1].Faults[0].(Flap)
	if !ok || f.Start != sim.Second || f.Period != 6*sim.Second || f.DownFor != 500*sim.Millisecond {
		t.Errorf("flap = %#v", pfs[1].Faults[0])
	}
	r, ok := pfs[1].Faults[1].(SetRate)
	if !ok || r.Rate != 2*netem.Mbps {
		t.Errorf("rate = %#v", pfs[1].Faults[1])
	}
}

func TestParsePermanentDownAndErrors(t *testing.T) {
	pfs, err := Parse("p:down@3s")
	if err != nil {
		t.Fatal(err)
	}
	if o := pfs[0].Faults[0].(Outage); o.Up != 0 {
		t.Errorf("unpaired down parsed as %#v, want permanent outage", o)
	}
	for _, bad := range []string{
		"", "noclauses", "p:", "p:down", "p:sideways@2s",
		"p:up@2s,down@3s,up@1s", // up not after down
		"p:loss@2s=1.5",         // out of range
		"p:flap@1s+1s/2s",       // DownFor > Period
		"p:rate@1s=0Mbps",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestParseRateUnits(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"500Kbps", 500 * netem.Kbps},
		{"2Mbps", 2 * netem.Mbps},
		{"1.5Gbps", 1500 * netem.Mbps},
		{"750000", 750000},
		{"10bps", 10},
	} {
		got, err := ParseRate(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseRate(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
}

func TestResolveTargets(t *testing.T) {
	eng := sim.NewEngine(1)
	p0, p1 := twoWayPath(eng), twoWayPath(eng)
	p0.Name, p1.Name = "wifi", "lte"
	paths := []*netem.Path{p0, p1}
	for _, tc := range []struct {
		target string
		want   *netem.Path
	}{{"wifi", p0}, {"lte", p1}, {"path0", p0}, {"path1", p1}, {"1", p1}} {
		got, err := Resolve(tc.target, paths)
		if err != nil || got != tc.want {
			t.Errorf("Resolve(%q) = %v, %v; want %s", tc.target, got, err, tc.want.Name)
		}
	}
	if _, err := Resolve("dsl", paths); err == nil {
		t.Error("Resolve of unknown target succeeded")
	}
}
