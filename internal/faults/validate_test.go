package faults

import (
	"errors"
	"testing"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

func namedPaths(eng *sim.Engine, names ...string) []*netem.Path {
	out := make([]*netem.Path, len(names))
	for i, name := range names {
		fwd := netem.NewLink(eng, netem.LinkConfig{Name: name + "-fwd", Rate: 10 * netem.Mbps, Delay: sim.Millisecond})
		rev := netem.NewLink(eng, netem.LinkConfig{Name: name + "-rev", Rate: 10 * netem.Mbps, Delay: sim.Millisecond})
		out[i] = &netem.Path{Name: name, Forward: []*netem.Link{fwd}, Reverse: []*netem.Link{rev}}
	}
	return out
}

func TestValidate(t *testing.T) {
	eng := sim.NewEngine(1)
	paths := namedPaths(eng, "wifi", "lte")
	horizon := 10 * sim.Second

	cases := []struct {
		name    string
		spec    string
		horizon sim.Time
		wantErr error
	}{
		{"ok in-window", "wifi:down@2s,up@5s", horizon, nil},
		{"ok by index", "path1:loss@3s=0.05", horizon, nil},
		{"ok bare index", "0:rate@1s=2Mbps", horizon, nil},
		{"unknown name", "dsl:down@2s", horizon, ErrUnknownTarget},
		{"index out of range", "path7:down@2s", horizon, ErrUnknownTarget},
		{"outage past horizon", "wifi:down@12s", horizon, ErrPastHorizon},
		{"up past horizon", "wifi:up@10s", horizon, ErrPastHorizon},
		{"loss at horizon", "wifi:loss@10s=0.5", horizon, ErrPastHorizon},
		{"flap past horizon", "lte:flap@11s+4s/1s", horizon, ErrPastHorizon},
		{"delay past horizon", "lte:delay@20s=50ms", horizon, ErrPastHorizon},
		{"no horizon check when zero", "wifi:down@12s", 0, nil},
		{"unknown target beats horizon skip", "dsl:down@12s", 0, ErrUnknownTarget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pfs, err := Parse(tc.spec)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.spec, err)
			}
			err = Validate(pfs, paths, tc.horizon)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate(%q) = %v, want nil", tc.spec, err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Validate(%q) = %v, want %v", tc.spec, err, tc.wantErr)
			}
		})
	}
}

// TestResolveNamedError pins that Resolve itself wraps ErrUnknownTarget, so
// CLI callers that bypass Validate still get a matchable error.
func TestResolveNamedError(t *testing.T) {
	eng := sim.NewEngine(1)
	paths := namedPaths(eng, "wifi")
	if _, err := Resolve("nope", paths); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("Resolve unknown = %v, want ErrUnknownTarget", err)
	}
	if p, err := Resolve("wifi", paths); err != nil || p != paths[0] {
		t.Fatalf("Resolve(wifi) = %v, %v", p, err)
	}
}

// TestFaultWindow pins the per-type activity windows Validate relies on.
func TestFaultWindow(t *testing.T) {
	cases := []struct {
		f          Fault
		start, end sim.Time
	}{
		{Outage{Down: 2 * sim.Second, Up: 5 * sim.Second}, 2 * sim.Second, 5 * sim.Second},
		{Outage{Down: 2 * sim.Second}, 2 * sim.Second, 2 * sim.Second},
		{LinkUp{At: sim.Second}, sim.Second, sim.Second},
		{Flap{Start: sim.Second, Period: 4 * sim.Second, DownFor: sim.Second, Count: 3},
			sim.Second, sim.Second + 2*4*sim.Second + sim.Second},
		{Flap{Start: sim.Second, Period: 4 * sim.Second, DownFor: sim.Second}, sim.Second, horizonForever},
		{GilbertElliott{Start: sim.Second, End: 3 * sim.Second}, sim.Second, 3 * sim.Second},
		{GilbertElliott{Start: sim.Second}, sim.Second, horizonForever},
		{Ramp{Start: sim.Second, Duration: 2 * sim.Second}, sim.Second, 3 * sim.Second},
		{SetLoss{At: sim.Second}, sim.Second, sim.Second},
		{SetRate{At: sim.Second}, sim.Second, sim.Second},
		{SetDelay{At: sim.Second}, sim.Second, sim.Second},
	}
	for _, tc := range cases {
		start, end := faultWindow(tc.f)
		if start != tc.start || end != tc.end {
			t.Errorf("faultWindow(%#v) = (%v, %v), want (%v, %v)", tc.f, start, end, tc.start, tc.end)
		}
	}
}
