package faults

import (
	"errors"
	"fmt"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// Named validation errors. Callers match them with errors.Is to distinguish
// a bad schedule from other setup failures.
var (
	// ErrUnknownTarget: a clause names a path absent from the topology.
	ErrUnknownTarget = errors.New("faults: unknown target path")
	// ErrPastHorizon: a fault only acts at or after the scenario horizon,
	// so it could never fire — almost always a typo in the schedule.
	ErrPastHorizon = errors.New("faults: schedule extends past horizon")
)

// start and end report the window in which a fault acts. end is the instant
// of its last state change; endless faults (unbounded flaps, chains with
// End = 0) return horizonForever.
const horizonForever = sim.Time(-1)

func faultWindow(f Fault) (start, end sim.Time) {
	switch f := f.(type) {
	case Outage:
		if f.Up > f.Down {
			return f.Down, f.Up
		}
		return f.Down, f.Down
	case LinkUp:
		return f.At, f.At
	case Flap:
		if f.Count <= 0 {
			return f.Start, horizonForever
		}
		return f.Start, f.Start + sim.Time(f.Count-1)*f.Period + f.DownFor
	case GilbertElliott:
		if f.End > 0 {
			return f.Start, f.End
		}
		return f.Start, horizonForever
	case Ramp:
		return f.Start, f.Start + f.Duration
	case SetLoss:
		return f.At, f.At
	case SetRate:
		return f.At, f.At
	case SetDelay:
		return f.At, f.At
	default:
		return 0, horizonForever
	}
}

// Validate checks parsed fault clauses against the scenario they will run
// in: every target must resolve in paths, and every fault must start before
// horizon (a fault whose first action is at or past the horizon would
// silently never fire). horizon <= 0 skips the horizon check. It returns
// the first problem found, wrapping ErrUnknownTarget or ErrPastHorizon.
func Validate(pfs []PathFaults, paths []*netem.Path, horizon sim.Time) error {
	for _, pf := range pfs {
		if _, err := Resolve(pf.Target, paths); err != nil {
			return err
		}
		if horizon <= 0 {
			continue
		}
		for _, f := range pf.Faults {
			start, _ := faultWindow(f)
			if start >= horizon {
				return fmt.Errorf("%w: %s fault %s starts at %.3fs, horizon is %.3fs",
					ErrPastHorizon, pf.Target, describe(f), start.Seconds(), horizon.Seconds())
			}
		}
	}
	return nil
}

// describe names a fault for error messages without dumping its full struct.
func describe(f Fault) string {
	switch f.(type) {
	case Outage:
		return "outage"
	case LinkUp:
		return "up"
	case Flap:
		return "flap"
	case GilbertElliott:
		return "gilbert-elliott"
	case Ramp:
		return "ramp"
	case SetLoss:
		return "loss"
	case SetRate:
		return "rate"
	case SetDelay:
		return "delay"
	default:
		return fmt.Sprintf("%T", f)
	}
}
