package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// PathFaults is one parsed clause of a fault spec: the faults to apply to
// one named path.
type PathFaults struct {
	Target string
	Faults []Fault
}

// Parse turns a command-line fault spec into per-path fault lists. The
// grammar, clauses separated by ';':
//
//	clause    = target ':' directive (',' directive)*
//	target    = path name, "pathN", or a bare index
//	directive = "down@T" | "up@T"            (paired in order; an unpaired
//	                                          down is a permanent outage)
//	          | "flap@START+PERIOD/DOWNFOR"  (e.g. flap@2s+4s/1s)
//	          | "loss@T=P"                   (e.g. loss@3s=0.05)
//	          | "rate@T=R"                   (e.g. rate@5s=2Mbps)
//	          | "delay@T=D"                  (e.g. delay@5s=150ms)
//
// Times and durations use Go duration syntax; rates accept Kbps/Mbps/Gbps
// suffixes or plain bits per second.
//
//	-fault "path1:down@2s,up@5s"
//	-fault "wifi:rate@5s=2Mbps,delay@5s=150ms;lte:flap@1s+6s/500ms"
func Parse(spec string) ([]PathFaults, error) {
	var out []PathFaults
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		target, rest, ok := strings.Cut(clause, ":")
		target = strings.TrimSpace(target)
		if !ok || target == "" || strings.TrimSpace(rest) == "" {
			return nil, fmt.Errorf("faults: clause %q is not target:directives", clause)
		}
		pf := PathFaults{Target: target}
		var openDown sim.Time
		haveDown := false
		flushDown := func() {
			if haveDown {
				pf.Faults = append(pf.Faults, Outage{Down: openDown})
				haveDown = false
			}
		}
		for _, d := range strings.Split(rest, ",") {
			d = strings.TrimSpace(d)
			kind, arg, ok := strings.Cut(d, "@")
			if !ok {
				return nil, fmt.Errorf("faults: directive %q has no @time", d)
			}
			switch kind {
			case "down":
				flushDown()
				t, err := parseTime(arg)
				if err != nil {
					return nil, fmt.Errorf("faults: %q: %v", d, err)
				}
				openDown, haveDown = t, true
			case "up":
				t, err := parseTime(arg)
				if err != nil {
					return nil, fmt.Errorf("faults: %q: %v", d, err)
				}
				if haveDown {
					if t <= openDown {
						return nil, fmt.Errorf("faults: up@%s not after down@%s", arg, openDown.Duration())
					}
					pf.Faults = append(pf.Faults, Outage{Down: openDown, Up: t})
					haveDown = false
				} else {
					pf.Faults = append(pf.Faults, LinkUp{At: t})
				}
			case "flap":
				f, err := parseFlap(arg)
				if err != nil {
					return nil, fmt.Errorf("faults: %q: %v", d, err)
				}
				pf.Faults = append(pf.Faults, f)
			case "loss", "rate", "delay":
				at, val, ok := strings.Cut(arg, "=")
				if !ok {
					return nil, fmt.Errorf("faults: directive %q needs @time=value", d)
				}
				t, err := parseTime(at)
				if err != nil {
					return nil, fmt.Errorf("faults: %q: %v", d, err)
				}
				switch kind {
				case "loss":
					p, err := strconv.ParseFloat(val, 64)
					if err != nil || p < 0 || p > 1 {
						return nil, fmt.Errorf("faults: %q: loss probability must be in [0,1]", d)
					}
					pf.Faults = append(pf.Faults, SetLoss{At: t, Prob: p})
				case "rate":
					r, err := ParseRate(val)
					if err != nil {
						return nil, fmt.Errorf("faults: %q: %v", d, err)
					}
					pf.Faults = append(pf.Faults, SetRate{At: t, Rate: r})
				case "delay":
					dur, err := parseTime(val)
					if err != nil {
						return nil, fmt.Errorf("faults: %q: %v", d, err)
					}
					pf.Faults = append(pf.Faults, SetDelay{At: t, Delay: dur})
				}
			default:
				return nil, fmt.Errorf("faults: unknown directive %q (want down/up/flap/loss/rate/delay)", kind)
			}
		}
		flushDown()
		out = append(out, pf)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faults: empty spec")
	}
	return out, nil
}

// parseFlap parses START+PERIOD/DOWNFOR.
func parseFlap(arg string) (Flap, error) {
	start, rest, ok := strings.Cut(arg, "+")
	if !ok {
		return Flap{}, fmt.Errorf("flap wants START+PERIOD/DOWNFOR")
	}
	period, downFor, ok := strings.Cut(rest, "/")
	if !ok {
		return Flap{}, fmt.Errorf("flap wants START+PERIOD/DOWNFOR")
	}
	s, err := parseTime(start)
	if err != nil {
		return Flap{}, err
	}
	p, err := parseTime(period)
	if err != nil {
		return Flap{}, err
	}
	d, err := parseTime(downFor)
	if err != nil {
		return Flap{}, err
	}
	if d <= 0 || d >= p {
		return Flap{}, fmt.Errorf("flap down time %v must be positive and below the period %v", d.Duration(), p.Duration())
	}
	return Flap{Start: s, Period: p, DownFor: d}, nil
}

func parseTime(s string) (sim.Time, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative time %v", d)
	}
	return sim.FromDuration(d), nil
}

// ParseRate parses a bandwidth with an optional Kbps/Mbps/Gbps suffix
// (case-insensitive); a bare number is bits per second.
func ParseRate(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	lower := strings.ToLower(s)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"kbps", netem.Kbps}, {"mbps", netem.Mbps}, {"gbps", netem.Gbps}, {"bps", 1}} {
		if strings.HasSuffix(lower, u.suffix) {
			mult = u.mult
			s = s[:len(s)-len(u.suffix)]
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	// Fractional rates below one bit per second truncate to zero, which
	// would divide-by-zero the link's serialization time.
	r := int64(v * float64(mult))
	if r < 1 {
		return 0, fmt.Errorf("rate %q is below 1 bps", s)
	}
	return r, nil
}

// Resolve matches a parsed clause target against a path list: by exact path
// name, by "pathN", or by bare index.
func Resolve(target string, paths []*netem.Path) (*netem.Path, error) {
	for _, p := range paths {
		if p.Name == target {
			return p, nil
		}
	}
	idxStr := strings.TrimPrefix(target, "path")
	if idx, err := strconv.Atoi(idxStr); err == nil && idx >= 0 && idx < len(paths) {
		return paths[idx], nil
	}
	names := make([]string, len(paths))
	for i, p := range paths {
		names[i] = fmt.Sprintf("%s (path%d)", p.Name, i)
	}
	return nil, fmt.Errorf("%w: no path %q; have %s", ErrUnknownTarget, target, strings.Join(names, ", "))
}
