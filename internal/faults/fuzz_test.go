package faults

import (
	"errors"
	"testing"

	"mptcpsim/internal/sim"
)

// FuzzParse feeds arbitrary fault specs to the command-line parser. Parse
// must never panic, and anything it accepts must be usable: at least one
// clause, every clause with a non-empty target and at least one fault.
func FuzzParse(f *testing.F) {
	for _, spec := range []string{
		"path1:down@2s,up@5s",
		"wifi:rate@5s=2Mbps,delay@5s=150ms;lte:flap@1s+6s/500ms",
		"path0:loss@3s=0.05",
		"0:down@1s",
		"p:up@0s;p:down@1s,down@2s",
		"path0:flap@2s+4s/1s",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		pfs, err := Parse(spec)
		if err != nil {
			return
		}
		if len(pfs) == 0 {
			t.Fatalf("Parse(%q) accepted an empty schedule", spec)
		}
		for _, pf := range pfs {
			if pf.Target == "" {
				t.Fatalf("Parse(%q) accepted a clause with an empty target", spec)
			}
			if len(pf.Faults) == 0 {
				t.Fatalf("Parse(%q) accepted clause %q with no faults", spec, pf.Target)
			}
		}
	})
}

// FuzzParseRate checks the bandwidth parser: no panics, and every accepted
// rate is strictly positive (a zero or negative line rate would wedge the
// link's transmission-time arithmetic).
func FuzzParseRate(f *testing.F) {
	for _, s := range []string{"2Mbps", "250kbps", "1.5Gbps", "9600", "10bps", "-1Mbps"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRate(s)
		if err != nil {
			return
		}
		if r <= 0 {
			t.Fatalf("ParseRate(%q) accepted non-positive rate %d", s, r)
		}
	})
}

// FuzzValidate drives the schedule validator with arbitrary specs against a
// fixed two-path topology. Validate must never panic, and any error it
// returns must be one of the named sentinels so callers can match it.
func FuzzValidate(f *testing.F) {
	for _, spec := range []string{
		"wifi:down@2s,up@5s", // valid, in window
		"dsl:down@2s",        // ErrUnknownTarget: no such name
		"path7:down@2s",      // ErrUnknownTarget: index out of range
		"wifi:down@12s",      // ErrPastHorizon: outage after horizon
		"wifi:loss@10s=0.5",  // ErrPastHorizon: exactly at horizon
		"lte:flap@11s+4s/1s", // ErrPastHorizon: flap starts late
		"lte:delay@20s=50ms", // ErrPastHorizon: delay change after end
		"0:rate@1s=2Mbps",    // valid, bare-index target
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		pfs, err := Parse(spec)
		if err != nil {
			return
		}
		eng := sim.NewEngine(1)
		paths := namedPaths(eng, "wifi", "lte")
		verr := Validate(pfs, paths, 10*sim.Second)
		if verr != nil && !errors.Is(verr, ErrUnknownTarget) && !errors.Is(verr, ErrPastHorizon) {
			t.Fatalf("Validate(%q) returned unnamed error %v", spec, verr)
		}
	})
}
