// Package faults provides deterministic, engine-driven fault injection for
// netem links and paths: one-shot outages, periodic flapping,
// Gilbert-Elliott two-state burst loss, and mobility ramps that degrade
// rate/delay over a window (the WiFi↔cellular handover of the paper's
// heterogeneous-wireless evaluation). Every state change runs as a
// simulation event on the run's engine, so runs with fault schedules stay
// byte-for-byte reproducible under a fixed seed.
package faults

import (
	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
)

// Fault is one composable element of a fault schedule. Schedule installs
// the fault's events on eng; every event acts on all of links.
type Fault interface {
	Schedule(eng *sim.Engine, links []*netem.Link)
}

// PathLinks returns the links a path-level fault acts on: both directions.
// A dead medium silences ACKs as well as data, which is what forces the
// sender onto its retransmission timer and, eventually, failover.
func PathLinks(p *netem.Path) []*netem.Link {
	out := make([]*netem.Link, 0, len(p.Forward)+len(p.Reverse))
	out = append(out, p.Forward...)
	return append(out, p.Reverse...)
}

// Apply schedules faults against every link of p, both directions.
func Apply(eng *sim.Engine, p *netem.Path, fs ...Fault) {
	links := PathLinks(p)
	for _, f := range fs {
		f.Schedule(eng, links)
	}
}

// ApplyLinks schedules faults against an explicit link set (e.g. forward
// direction only).
func ApplyLinks(eng *sim.Engine, links []*netem.Link, fs ...Fault) {
	for _, f := range fs {
		f.Schedule(eng, links)
	}
}

// Outage takes the links down at Down and, if Up > Down, back up at Up.
// Up <= Down leaves them down for the rest of the run.
type Outage struct {
	Down sim.Time
	Up   sim.Time
}

// Schedule implements Fault.
func (o Outage) Schedule(eng *sim.Engine, links []*netem.Link) {
	eng.Schedule(o.Down, func() {
		for _, l := range links {
			l.SetDown()
		}
	})
	if o.Up > o.Down {
		eng.Schedule(o.Up, func() {
			for _, l := range links {
				l.SetUp()
			}
		})
	}
}

// LinkUp brings the links up at At (pairs with a prior permanent Outage,
// or is a no-op on links already up).
type LinkUp struct {
	At sim.Time
}

// Schedule implements Fault.
func (u LinkUp) Schedule(eng *sim.Engine, links []*netem.Link) {
	eng.Schedule(u.At, func() {
		for _, l := range links {
			l.SetUp()
		}
	})
}

// Flap cycles the links down/up: each cycle starting at Start+k*Period
// holds the links down for DownFor, then up for the rest of the Period.
// Count bounds the number of cycles; 0 flaps for the whole run (cycles are
// scheduled lazily, so an unbounded flap only generates events up to the
// engine's horizon).
type Flap struct {
	Start   sim.Time
	Period  sim.Time
	DownFor sim.Time
	Count   int
}

// Schedule implements Fault.
func (f Flap) Schedule(eng *sim.Engine, links []*netem.Link) {
	if f.Period <= 0 || f.DownFor <= 0 || f.DownFor >= f.Period {
		return
	}
	cycle := 0
	var downFn func()
	downFn = func() {
		for _, l := range links {
			l.SetDown()
		}
		eng.ScheduleAfter(f.DownFor, func() {
			for _, l := range links {
				l.SetUp()
			}
		})
		cycle++
		if f.Count <= 0 || cycle < f.Count {
			eng.ScheduleAfter(f.Period, downFn)
		}
	}
	eng.Schedule(f.Start, downFn)
}

// GilbertElliott drives the links' random-loss probability with the
// classic two-state burst-loss chain: in the Good state packets drop with
// LossGood, in the Bad state with LossBad; every Tick the state flips
// Good→Bad with PGoodBad and Bad→Good with PBadGood, sampled from the
// engine's seeded RNG. At End (0 = never) the chain stops and each link's
// configured loss probability is restored.
type GilbertElliott struct {
	Start, End sim.Time
	Tick       sim.Time // sampling period; default 100 ms
	PGoodBad   float64  // per-tick Good→Bad transition probability
	PBadGood   float64  // per-tick Bad→Good transition probability
	LossGood   float64  // loss probability in the Good state
	LossBad    float64  // loss probability in the Bad state
}

// Schedule implements Fault.
func (g GilbertElliott) Schedule(eng *sim.Engine, links []*netem.Link) {
	tick := g.Tick
	if tick <= 0 {
		tick = 100 * sim.Millisecond
	}
	bad := false
	var saved []float64
	var tickFn func()
	tickFn = func() {
		if g.End > 0 && eng.Now() >= g.End {
			for i, l := range links {
				l.SetLossProb(saved[i])
			}
			return
		}
		if bad {
			if eng.Rand().Float64() < g.PBadGood {
				bad = false
			}
		} else if eng.Rand().Float64() < g.PGoodBad {
			bad = true
		}
		p := g.LossGood
		if bad {
			p = g.LossBad
		}
		for _, l := range links {
			l.SetLossProb(p)
		}
		eng.ScheduleAfter(tick, tickFn)
	}
	eng.Schedule(g.Start, func() {
		saved = make([]float64, len(links))
		for i, l := range links {
			saved[i] = l.LossProb()
		}
		tickFn()
	})
}

// Ramp linearly interpolates the links' rate and/or delay from their values
// at Start to the given targets over [Start, Start+Duration], in Steps
// steps — a mobility model: a radio link degrading (or recovering) as the
// user moves, the paper's handover scenario. Zero targets leave that knob
// untouched.
type Ramp struct {
	Start    sim.Time
	Duration sim.Time
	Steps    int      // default 20
	RateTo   int64    // target line rate; 0 = keep
	DelayTo  sim.Time // target one-way delay; 0 = keep
}

// Schedule implements Fault.
func (r Ramp) Schedule(eng *sim.Engine, links []*netem.Link) {
	steps := r.Steps
	if steps <= 0 {
		steps = 20
	}
	if r.Duration <= 0 || (r.RateTo <= 0 && r.DelayTo <= 0) {
		return
	}
	eng.Schedule(r.Start, func() {
		rate0 := make([]int64, len(links))
		delay0 := make([]sim.Time, len(links))
		for i, l := range links {
			rate0[i] = l.Rate()
			delay0[i] = l.Delay()
		}
		for s := 1; s <= steps; s++ {
			frac := float64(s) / float64(steps)
			at := r.Start + sim.Time(float64(r.Duration)*frac)
			eng.Schedule(at, func() {
				for i, l := range links {
					if r.RateTo > 0 {
						rate := rate0[i] + int64(float64(r.RateTo-rate0[i])*frac)
						if rate < 1 {
							rate = 1
						}
						l.SetRate(rate)
					}
					if r.DelayTo > 0 {
						l.SetDelay(delay0[i] + sim.Time(float64(r.DelayTo-delay0[i])*frac))
					}
				}
			})
		}
	})
}

// SetLoss sets the loss probability at an instant (a one-shot degradation).
type SetLoss struct {
	At   sim.Time
	Prob float64
}

// Schedule implements Fault.
func (s SetLoss) Schedule(eng *sim.Engine, links []*netem.Link) {
	eng.Schedule(s.At, func() {
		for _, l := range links {
			l.SetLossProb(s.Prob)
		}
	})
}

// SetRate sets the line rate at an instant.
type SetRate struct {
	At   sim.Time
	Rate int64
}

// Schedule implements Fault.
func (s SetRate) Schedule(eng *sim.Engine, links []*netem.Link) {
	if s.Rate <= 0 {
		return
	}
	eng.Schedule(s.At, func() {
		for _, l := range links {
			l.SetRate(s.Rate)
		}
	})
}

// SetDelay sets the one-way propagation delay at an instant.
type SetDelay struct {
	At    sim.Time
	Delay sim.Time
}

// Schedule implements Fault.
func (s SetDelay) Schedule(eng *sim.Engine, links []*netem.Link) {
	eng.Schedule(s.At, func() {
		for _, l := range links {
			l.SetDelay(s.Delay)
		}
	})
}
